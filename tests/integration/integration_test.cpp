// Cross-module integration tests: full reduce-then-verify pipelines, the
// paper's key qualitative claims exercised end-to-end at test-friendly
// problem sizes.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/input_correlated.hpp"
#include "mor/pmtbr.hpp"
#include "mor/prima.hpp"
#include "mor/tbr.hpp"
#include "signal/correlation.hpp"
#include "signal/transient.hpp"
#include "signal/waveform.hpp"

namespace pmtbr {
namespace {

using la::cd;
using la::index;
using mor::Band;

TEST(Integration, ReduceThenTransientMatchesFull) {
  // Pipeline: generate -> PMTBR -> transient on both -> outputs agree.
  const auto sys = circuit::make_rc_line({.segments = 40});
  mor::PmtbrOptions opts;
  opts.bands = {Band{0.0, 2e9}};
  opts.num_samples = 16;
  opts.truncation_tol = 1e-10;
  const auto red = mor::pmtbr(sys, opts);
  EXPECT_LT(red.model.system.n(), sys.n() / 3);

  signal::TransientOptions topts;
  topts.t_end = 2e-8;
  topts.steps = 500;
  const auto input = [](double t) {
    return std::vector<double>{t > 1e-9 ? 1.0 : 0.0};  // delayed step
  };
  const auto full = signal::simulate(sys, input, topts);
  const auto reduced = signal::simulate(red.model.system, input, topts);
  const auto err = signal::compare_outputs(full, reduced);
  EXPECT_LT(err.max_abs, 1e-4 * err.max_ref);
}

TEST(Integration, PmtbrBeatsPrimaOnSpiralResistance) {
  // The Fig. 7 claim at test scale: equal order, PMTBR's Re{Z} error below
  // PRIMA's over the band.
  circuit::SpiralParams sp;
  sp.turns = 12;
  const auto sys = circuit::make_spiral(sp);
  const auto grid = mor::logspace_grid(1e8, 3e10, 25);

  mor::PrimaOptions popts;
  popts.num_moments = 6;  // SISO: order 6
  const auto pr = mor::prima(sys, popts);

  mor::PmtbrOptions mopts;
  mopts.bands = {Band{0.0, 3e10}};
  mopts.num_samples = 20;
  mopts.fixed_order = 6;
  const auto pm = mor::pmtbr(sys, mopts);

  const auto err_prima =
      mor::entry_error_series(sys, pr.model.system, grid, 0, 0, /*real_part_only=*/true);
  const auto err_pmtbr =
      mor::entry_error_series(sys, pm.model.system, grid, 0, 0, /*real_part_only=*/true);
  double max_prima = 0, max_pmtbr = 0;
  for (double v : err_prima) max_prima = std::max(max_prima, v);
  for (double v : err_pmtbr) max_pmtbr = std::max(max_pmtbr, v);
  EXPECT_LT(max_pmtbr, max_prima);
}

TEST(Integration, FrequencySelectivePmtbrBeatsTbrInBand) {
  // The Fig. 11 claim at test scale: a small in-band PMTBR model beats a
  // larger global TBR model inside the band of interest (energy
  // coordinates; the out-of-band shield-cavity features trap TBR's effort).
  circuit::ConnectorParams cp;
  cp.pins = 4;
  cp.sections = 4;
  const auto sys = to_energy_standard(circuit::make_connector(cp));
  const Band focus{0.0, 8e9};
  const auto grid = mor::linspace_grid(1e8, 8e9, 25);

  mor::PmtbrOptions popts;
  popts.bands = {focus};
  popts.num_samples = 25;
  popts.fixed_order = 14;
  const auto pm = mor::pmtbr(sys, popts);

  mor::TbrOptions topts;
  topts.fixed_order = 18;  // larger order, but global effort
  const auto tb = mor::tbr(sys, topts);

  const auto err_pm = mor::compare_on_grid(sys, pm.model.system, grid);
  const auto err_tb = mor::compare_on_grid(sys, tb.model.system, grid);
  EXPECT_LT(err_pm.max_abs, err_tb.max_abs);
}

TEST(Integration, CorrelatedBeatsUncorrelatedAtEqualOrder) {
  // The Fig. 13 claim at test scale: with correlated inputs, the input-
  // correlated model at order q beats uninformed TBR at the same order on
  // the trained stimulus class.
  circuit::MultiportRcParams mp;
  mp.lines = 12;
  mp.segments = 4;
  const auto sys = circuit::make_multiport_rc(mp);

  signal::SquareWaveSpec spec;
  spec.period = 4e-9;
  spec.rise_time = 2e-10;
  spec.dither_fraction = 0.1;
  std::vector<double> phases;
  for (index k = 0; k < 12; ++k) phases.push_back(static_cast<double>(k % 3) * 0.7e-9);
  Rng rng(991);
  const double t_end = 2e-8;
  const auto bank = signal::make_square_bank(spec, t_end, phases, rng);
  const auto samples = signal::sample_waveforms(bank, t_end, 300);

  const index q = 8;
  mor::InputCorrelatedOptions icopts;
  icopts.bands = {Band{0.0, 2e9}};
  icopts.num_freq_samples = 10;
  icopts.fixed_order = q;
  icopts.draws_per_frequency = 0;  // deterministic blocked variant
  const auto ic = mor::input_correlated_tbr(sys, samples, icopts);

  mor::TbrOptions topts;
  topts.fixed_order = q;
  const auto tb = mor::tbr(sys, topts);

  signal::TransientOptions topts2;
  topts2.t_end = t_end;
  topts2.steps = 600;
  const auto in = signal::bank_input(bank);
  const auto full = signal::simulate(sys, in, topts2);
  const auto r_ic = signal::simulate(ic.model.system, in, topts2);
  const auto r_tb = signal::simulate(tb.model.system, in, topts2);

  const auto e_ic = signal::compare_outputs(full, r_ic);
  const auto e_tb = signal::compare_outputs(full, r_tb);
  EXPECT_LT(e_ic.rms, e_tb.rms);
}

TEST(Integration, OutOfClassInputsDegradeCorrelatedModel) {
  // The Fig. 14 claim: inputs far outside the trained correlation class are
  // reproduced visibly worse than in-class inputs by the same model.
  circuit::MultiportRcParams mp;
  mp.lines = 10;
  mp.segments = 4;
  const auto sys = circuit::make_multiport_rc(mp);

  signal::SquareWaveSpec spec;
  spec.period = 4e-9;
  spec.rise_time = 2e-10;
  spec.dither_fraction = 0.05;
  const double t_end = 2e-8;

  // Trained class: all ports in phase.
  std::vector<double> phases_in(10, 0.0);
  Rng rng_train(55);
  const auto bank_train = signal::make_square_bank(spec, t_end, phases_in, rng_train);
  const auto samples = signal::sample_waveforms(bank_train, t_end, 250);

  mor::InputCorrelatedOptions icopts;
  icopts.bands = {Band{0.0, 2e9}};
  icopts.num_freq_samples = 8;
  icopts.fixed_order = 6;
  const auto ic = mor::input_correlated_tbr(sys, samples, icopts);

  // Out-of-class: completely re-randomized phases.
  Rng rng_phase(77);
  std::vector<double> phases_out;
  for (index k = 0; k < 10; ++k) phases_out.push_back(rng_phase.uniform(0.0, spec.period));
  Rng rng_wave(56);
  const auto bank_out = signal::make_square_bank(spec, t_end, phases_out, rng_wave);

  signal::TransientOptions topts;
  topts.t_end = t_end;
  topts.steps = 500;
  const auto full_in = signal::simulate(sys, signal::bank_input(bank_train), topts);
  const auto red_in = signal::simulate(ic.model.system, signal::bank_input(bank_train), topts);
  const auto full_out = signal::simulate(sys, signal::bank_input(bank_out), topts);
  const auto red_out = signal::simulate(ic.model.system, signal::bank_input(bank_out), topts);

  const auto e_in = signal::compare_outputs(full_in, red_in);
  const auto e_out = signal::compare_outputs(full_out, red_out);
  EXPECT_GT(e_out.rms, 2.0 * e_in.rms);
}

TEST(Integration, SubstrateCompression) {
  // The Fig. 15 claim at test scale: a handful of states reproduces a
  // many-port substrate network under correlated bulk-current stimuli.
  circuit::SubstrateParams sp;
  sp.grid = 8;
  sp.num_ports = 30;
  const auto sys = circuit::make_substrate(sp);

  Rng rng(13);
  signal::BulkCurrentSpec bc;
  bc.num_ports = 30;
  bc.num_sources = 3;
  const double t_end = 4e-8;
  const auto bank = signal::make_bulk_currents(bc, t_end, rng);
  const auto samples = signal::sample_waveforms(bank, t_end, 200);

  mor::InputCorrelatedOptions icopts;
  icopts.bands = {Band{0.0, 1e9}};
  icopts.num_freq_samples = 8;
  icopts.fixed_order = 8;
  const auto ic = mor::input_correlated_tbr(sys, samples, icopts);
  EXPECT_EQ(ic.model.system.n(), 8);  // 30 ports -> 8 states

  signal::TransientOptions topts;
  topts.t_end = t_end;
  topts.steps = 500;
  const auto in = signal::bank_input(bank);
  const auto full = signal::simulate(sys, in, topts);
  const auto red = signal::simulate(ic.model.system, in, topts);
  const auto err = signal::compare_outputs(full, red);
  EXPECT_LT(err.max_abs, 0.05 * err.max_ref);
}

TEST(Integration, PmtbrHsvEstimatesGiveUsableErrorPrediction) {
  // Paper Sec. V-B: trailing singular values predict the achievable error.
  const auto sys = circuit::make_rc_line({.segments = 30});
  mor::PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 25;
  opts.fixed_order = 6;
  const auto res = mor::pmtbr(sys, opts);

  // Estimated bound analogue: 2 * sum of truncated hankel estimates.
  double est = 0;
  for (std::size_t i = 6; i < res.hankel_estimates.size(); ++i) est += res.hankel_estimates[i];
  est *= 2.0;

  const auto err = mor::compare_on_grid(sys, res.model.system,
                                        mor::logspace_grid(1e6, 1e10, 30));
  // The estimate should be within a couple orders of magnitude of the truth
  // and not wildly optimistic.
  EXPECT_LT(err.max_abs, 1e3 * (est + 1e-300) + 1e-12);
}

}  // namespace
}  // namespace pmtbr
