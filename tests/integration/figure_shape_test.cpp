// Figure-shape regression tests: downsized, seconds-scale versions of the
// EXPERIMENTS.md headline claims for Figs. 5, 6 and 3, run as tier-1 tests
// so a regression in the sampling engine (quadrature weights, realification,
// compressor ordering) fails CI instead of silently bending a bench curve.
//
// The full-size curves live in bench_fig05_hsv_convergence,
// bench_fig06_subspace_angle and bench_fig03_mesh_ports; these tests shrink
// the circuits (clock tree levels 7 -> 5, mesh 12x12 -> 8x8) but assert the
// same qualitative shape with thresholds calibrated against the measured
// values quoted in EXPERIMENTS.md. Everything is deterministic: fixed
// generator parameters, deterministic sampling grids, no seeds consumed.
#include <gtest/gtest.h>

#include <vector>

#include "circuit/generators.hpp"
#include "la/matrix.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "signal/subspace.hpp"

namespace pmtbr {
namespace {

// Fig. 5: PMTBR singular-value estimates track the exact Hankel singular
// values through many decades, and *underestimate the tail* (the paper's
// finite-bandwidth observation).
TEST(FigureShape, Fig5HsvEstimatesTrackExactThenUnderestimateTail) {
  circuit::ClockTreeParams p;
  p.levels = 6;  // 127 states; ~8 numerically meaningful HSVs
  const auto sys = to_symmetric_standard(circuit::make_clock_tree(p));

  const auto exact = mor::hankel_singular_values(sys);

  mor::PmtbrOptions opts;
  opts.bands = {mor::Band{1e4, 1e13}};
  opts.scheme = mor::SamplingScheme::kLogarithmic;
  opts.num_samples = 40;
  const auto res = mor::pmtbr(sys, opts);
  const auto& est = res.hankel_estimates;

  ASSERT_GE(exact.size(), 8u);
  ASSERT_GE(est.size(), 8u);

  // Indices 2..7 track the exact values closely (calibrated: measured
  // ratios 0.89..0.99; a 2x window leaves room for FP-flag variation while
  // still failing on any systematic weight error). Index 1 is deliberately
  // excluded: the sampled band cuts off the dc-dominant mode, so sigma_1 is
  // underestimated — checked separately below.
  for (std::size_t i = 1; i < 7; ++i) {
    ASSERT_GT(exact[i], 0.0);
    const double ratio = est[i] / exact[i];
    EXPECT_GT(ratio, 0.5) << "estimate lost track at index " << i;
    EXPECT_LT(ratio, 2.0) << "estimate overshoots at index " << i;
  }
  // The leading estimate never exceeds the exact value (finite bandwidth
  // only removes Gramian mass; measured ratio 0.47).
  EXPECT_LE(est[0], exact[0] * 1.05);

  // The estimates span many decades of decay while staying ordered
  // (measured: ~8.6 decades from index 1 to index 7).
  EXPECT_GT(est[0] / est[6], 1e4);

  // Tail underestimation: past the sampled bandwidth the estimate collapses
  // far below the exact value (measured: est 2e-26 vs exact 3e-12).
  ASSERT_GT(exact[7], 0.0);
  EXPECT_LT(est[7], exact[7] * 1e-2);
}

// Fig. 6: the angle between the exact TBR second principal vector and the
// leading PMTBR subspace decreases rapidly with the sample count, then
// plateaus at the finite-bandwidth floor.
TEST(FigureShape, Fig6SubspaceAngleDecreasesThenPlateaus) {
  circuit::ClockTreeParams p;
  p.levels = 6;
  const auto sys = to_symmetric_standard(circuit::make_clock_tree(p));

  // Order 7 = the number of numerically meaningful HSVs at this size (8
  // would be capped with a warning).
  mor::TbrOptions topts;
  topts.fixed_order = 7;
  const auto exact = mor::tbr(sys, topts);
  la::MatD v2(sys.n(), 1);
  for (la::index i = 0; i < sys.n(); ++i) v2(i, 0) = exact.model.v(i, 1);

  const std::vector<la::index> counts{1, 2, 3, 4, 8, 32};
  std::vector<double> angle;
  for (const la::index ns : counts) {
    mor::PmtbrOptions opts;
    // Band chosen so the finite-bandwidth floor is well above numerical
    // zero: the tree responds above 5 GHz, so the angle cannot vanish.
    opts.bands = {mor::Band{0.0, 5e9}};
    opts.num_samples = ns;
    opts.fixed_order = 7;
    const auto res = mor::pmtbr(sys, opts);
    angle.push_back(signal::subspace_angle(v2, res.model.v));
  }

  // Rapid monotone descent while samples still add information (measured:
  // 1.9e-1 -> 3.2e-3 -> 8.3e-6, a factor >= 39 per added sample; require 10).
  EXPECT_LT(angle[1], angle[0] / 10.0);
  EXPECT_LT(angle[2], angle[1] / 10.0);

  // Plateau: from 3 samples on, the angle sits at the finite-bandwidth
  // floor (measured 8.27e-6 +- 1% out to 32 samples) — piling on samples
  // neither helps nor hurts, and the floor stays far above zero.
  for (std::size_t k = 3; k < counts.size(); ++k) {
    EXPECT_LT(angle[k], angle[2] * 3.0) << "floor rose at ns=" << counts[k];
    EXPECT_GT(angle[k], angle[2] / 3.0) << "floor kept descending at ns=" << counts[k];
  }
  EXPECT_GT(angle.back(), 1e-9);  // a genuine bandwidth floor, not roundoff
}

// Fig. 3: for a fixed relative error bound, the required TBR order grows
// with the number of ports (multi-input systems are intrinsically harder).
TEST(FigureShape, Fig3OrderForFixedBoundGrowsWithPortCount) {
  const std::vector<la::index> port_counts{2, 4, 8, 16};
  std::vector<la::index> order_needed;
  for (const la::index ports : port_counts) {
    circuit::RcMeshParams mp;
    mp.rows = 8;
    mp.cols = 8;
    mp.num_ports = ports;
    const auto hsv = mor::hankel_singular_values(circuit::make_rc_mesh(mp));
    const double total = mor::tbr_error_bound(hsv, 0);
    ASSERT_GT(total, 0.0);
    la::index q = 0;
    while (q < static_cast<la::index>(hsv.size()) &&
           mor::tbr_error_bound(hsv, q) > 0.2 * total)
      ++q;
    order_needed.push_back(q);
  }

  for (std::size_t i = 0; i + 1 < order_needed.size(); ++i)
    EXPECT_GT(order_needed[i + 1], order_needed[i])
        << "order for 20% bound did not grow from " << port_counts[i] << " to "
        << port_counts[i + 1] << " ports";
  // The growth is substantial, not incidental: 16 ports need at least twice
  // the order 2 ports do (full size measures 4 -> 23 from 4 to 32 ports).
  EXPECT_GE(order_needed.back(), 2 * order_needed.front());
}

}  // namespace
}  // namespace pmtbr
