// Graceful-degradation integration tests (docs/ROBUSTNESS.md): deterministic
// fault-injection sweeps through the PMTBR sampling pipeline, genuine
// pole-hit recovery on a lossless LC resonator bank, the coverage floor,
// AC-sweep point dropping, and the manifest plumbing.
//
// Everything here is deterministic: injection decisions are a pure function
// of (seed, site, sample shift), so each test computes the exact set of
// condemned samples in advance via util::fault::decide and asserts the
// pipeline dropped exactly those — independent of thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "la/matrix.hpp"
#include "mor/pmtbr.hpp"
#include "mor/sampling.hpp"
#include "signal/ac.hpp"
#include "sparse/csr.hpp"
#include "util/faultinject.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/manifest.hpp"
#include "util/status.hpp"

namespace pmtbr {
namespace {

namespace fault = util::fault;
using la::index;

// These tests arm their own injection sites and assert exact drop sets, so
// they must not inherit whatever PMTBR_FAULTS the environment carries (the
// CI fault-injection job runs this suite with env faults armed).
class Robustness : public ::testing::Test {
 protected:
  void SetUp() override { fault::clear(); }
  void TearDown() override { fault::clear(); }
};

std::uint64_t sample_key(const mor::FrequencySample& fs) {
  return fault::shift_key(fs.s.real(), fs.s.imag());
}

// Indices the splu.pivot site would condemn at (p, seed) for this sample set.
std::vector<std::size_t> condemned_set(const std::vector<mor::FrequencySample>& samples, double p,
                                       std::uint64_t seed) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < samples.size(); ++i)
    if (fault::decide(p, seed, fault::Site::kSpluPivot, sample_key(samples[i]))) out.push_back(i);
  return out;
}

// First seed whose condemned set has exactly `want` members (deterministic:
// the injection hash is fixed).
std::uint64_t seed_with_drops(const std::vector<mor::FrequencySample>& samples, double p,
                              std::size_t want, std::vector<std::size_t>& condemned) {
  for (std::uint64_t seed = 1; seed < 500; ++seed) {
    condemned = condemned_set(samples, p, seed);
    if (condemned.size() == want) return seed;
  }
  ADD_FAILURE() << "no seed under 500 condemns exactly " << want << " samples";
  return 0;
}

// Max relative magnitude error of `model` against a reference descriptor
// sweep over `freqs` (both sweeps clean — call outside fault guards).
double ac_error(const DescriptorSystem& ref, const mor::DenseSystem& model,
                const std::vector<double>& freqs) {
  const auto a = signal::ac_sweep(ref, freqs);
  const auto b = signal::ac_sweep(model, freqs);
  EXPECT_EQ(a.size(), b.size());
  double scale = 0.0;
  for (const auto& pt : a) scale = std::max(scale, pt.magnitude);
  double err = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
    err = std::max(err, std::abs(a[i].magnitude - b[i].magnitude) / scale);
  return err;
}

std::vector<double> log_grid(double f_lo, double f_hi, std::size_t count) {
  std::vector<double> f(count);
  for (std::size_t i = 0; i < count; ++i)
    f[i] = f_lo * std::pow(f_hi / f_lo, static_cast<double>(i) / static_cast<double>(count - 1));
  return f;
}

// Fault sweep on the RC mesh: condemn k of N quadrature samples and require
// the run to complete, drop exactly the condemned set, redistribute their
// weight, and stay within 10x of the clean run's AC error envelope.
void run_mesh_fault_sweep(std::size_t want_drops) {
  circuit::RcMeshParams mp;
  mp.rows = 8;
  mp.cols = 8;
  const auto sys = circuit::make_rc_mesh(mp);

  const auto samples = mor::sample_bands({mor::Band{1e6, 1e9}}, 24, mor::SamplingScheme::kLogarithmic);
  ASSERT_EQ(samples.size(), 24u);

  mor::PmtbrOptions opts;
  opts.fixed_order = 10;

  const auto clean = mor::pmtbr_with_samples(sys, samples, opts);
  EXPECT_FALSE(clean.degradation.degraded());
  EXPECT_EQ(clean.degradation.samples_attempted, 24);
  EXPECT_DOUBLE_EQ(clean.degradation.coverage, 1.0);

  const double p = want_drops == 1 ? 0.05 : 0.25;
  std::vector<std::size_t> condemned;
  const std::uint64_t seed = seed_with_drops(samples, p, want_drops, condemned);
  ASSERT_EQ(condemned.size(), want_drops);

  mor::PmtbrResult degraded;
  {
    // Force every replay onto the full-factor path so the per-sample
    // splu.pivot decision governs each solve, then condemn `p` of them.
    fault::ScopedFault replays(fault::Site::kSpluRefactor, 1.0);
    fault::ScopedFault pivots(fault::Site::kSpluPivot, p, seed);
    degraded = mor::pmtbr_with_samples(sys, samples, opts);
  }

  // Exactly the precomputed set dropped, each after the full retry ladder.
  EXPECT_EQ(degraded.degradation.samples_attempted, 24);
  ASSERT_EQ(static_cast<std::size_t>(degraded.degradation.samples_dropped), want_drops);
  ASSERT_EQ(degraded.degradation.failures.size(), want_drops);
  for (std::size_t i = 0; i < want_drops; ++i) {
    EXPECT_EQ(static_cast<std::size_t>(degraded.degradation.failures[i].sample), condemned[i]);
    EXPECT_EQ(degraded.degradation.failures[i].status.code(), util::ErrorCode::kInjectedFault);
  }
  EXPECT_EQ(degraded.degradation.retries,
            static_cast<index>(want_drops) * opts.resilience.max_retries);
  EXPECT_EQ(degraded.degradation.reweights, 1);  // single window, reweighted once
  EXPECT_EQ(degraded.samples_used.size(), samples.size() - want_drops);
  EXPECT_GT(degraded.degradation.coverage, 0.5);
  EXPECT_LT(degraded.degradation.coverage, 1.0);

  // Figure-shape invariants survive the degradation: the singular-value
  // estimates stay positive and ordered, and the spectrum still decays.
  const auto& est = degraded.hankel_estimates;
  ASSERT_GE(est.size(), 8u);
  EXPECT_GT(est[0], 0.0);
  for (std::size_t i = 1; i < est.size(); ++i) EXPECT_LE(est[i], est[i - 1]);
  EXPECT_GT(est[0] / std::max(est[7], 1e-300), 1e2);

  // Accuracy: the degraded ROM stays within 10x of the clean error envelope.
  const auto freqs = log_grid(1e6, 1e9, 15);
  const double err_clean = ac_error(sys, clean.model.system, freqs);
  const double err_fault = ac_error(sys, degraded.model.system, freqs);
  EXPECT_LT(err_fault, 10.0 * std::max(err_clean, 1e-10))
      << "clean err " << err_clean << ", degraded err " << err_fault;

  // The manifest records the exact degradation stats.
  const auto extra = mor::degradation_extra(degraded.degradation);
  EXPECT_EQ(extra.first, "degradation");
  const std::string manifest = obs::manifest_json("robustness_sweep", {extra});
  EXPECT_NE(manifest.find("\"degradation\""), std::string::npos);
  EXPECT_NE(manifest.find("\"samples_dropped\""), std::string::npos);
  EXPECT_NE(manifest.find("\"injected_fault\""), std::string::npos);
  EXPECT_NE(manifest.find("\"coverage\""), std::string::npos);
}

TEST_F(Robustness, MeshFaultSweepSingleSample) { run_mesh_fault_sweep(1); }

TEST_F(Robustness, MeshFaultSweepQuarterOfSamples) { run_mesh_fault_sweep(6); }

// Lossless LC resonator bank with all values exact powers of two, so the
// pencil at the resonant shift s = j/sqrt(LC) is singular in exact floating
// point — a genuine pole hit, no injection. The retry at s(1+eps) must
// recover the sample; nothing is dropped.
TEST_F(Robustness, LcPoleHitRecoversViaRetry) {
  // Three resonators: omega0 = 2^19, 2^20, 2^21 rad/s.
  const double kC = std::ldexp(1.0, -30);
  const std::vector<double> kL = {std::ldexp(1.0, -8), std::ldexp(1.0, -10),
                                  std::ldexp(1.0, -12)};
  const index n = static_cast<index>(2 * kL.size());
  sparse::Triplets<double> te(n, n), ta(n, n);
  la::MatD b(n, 1);
  for (std::size_t k = 0; k < kL.size(); ++k) {
    const index v = static_cast<index>(2 * k), i = v + 1;
    te.add(v, v, kC);
    te.add(i, i, kL[k]);
    ta.add(v, i, -1.0);
    ta.add(i, v, 1.0);
    b(v, 0) = 1.0;
  }
  la::MatD c(1, n);
  for (index j = 0; j < n; ++j) c(0, j) = b(j, 0);
  const DescriptorSystem sys(sparse::CsrD(te), sparse::CsrD(ta), b, c);

  const double w0 = std::ldexp(1.0, 20);  // exactly on the middle resonance
  const auto mk = [](double w) { return mor::FrequencySample{la::cd(0.0, w), 1.0}; };
  const std::vector<mor::FrequencySample> pole_hit = {mk(std::ldexp(1.0, 19) * 1.5), mk(w0),
                                                      mk(std::ldexp(1.0, 21) * 1.25)};

  mor::PmtbrOptions opts;
  opts.fixed_order = 4;
  const auto res = mor::pmtbr_with_samples(sys, pole_hit, opts);

  EXPECT_EQ(res.degradation.samples_dropped, 0);
  EXPECT_EQ(res.degradation.samples_ok, 3);
  EXPECT_GE(res.degradation.retries, 1);  // the pole sample needed the ladder
  EXPECT_TRUE(res.degradation.degraded());
  ASSERT_EQ(res.samples_used.size(), 3u);

  // The clean reference samples at exactly the shift the retry ladder lands
  // on, so the two ROM transfer functions must agree tightly.
  const double w_retry = w0 * (1.0 + opts.resilience.retry_shift_eps);
  const std::vector<mor::FrequencySample> off_pole = {pole_hit[0], mk(w_retry), pole_hit[2]};
  const auto ref = mor::pmtbr_with_samples(sys, off_pole, opts);
  EXPECT_FALSE(ref.degradation.degraded());

  for (const double w : {std::ldexp(1.0, 18), std::ldexp(1.0, 20) * 1.1, std::ldexp(1.0, 22)}) {
    const la::cd h_fault = res.model.system.transfer(la::cd(0.0, w))(0, 0);
    const la::cd h_ref = ref.model.system.transfer(la::cd(0.0, w))(0, 0);
    EXPECT_NEAR(std::abs(h_fault - h_ref), 0.0, 1e-8 * std::max(std::abs(h_ref), 1.0));
  }

  // Manifest records the recovery.
  const std::string json = mor::degradation_extra(res.degradation).second;
  EXPECT_NE(json.find("\"retries\""), std::string::npos);
}

TEST_F(Robustness, CoverageFloorThrowsStatusError) {
  circuit::RcMeshParams mp;
  mp.rows = 4;
  mp.cols = 4;
  const auto sys = circuit::make_rc_mesh(mp);
  const auto samples = mor::sample_bands({mor::Band{1e6, 1e9}}, 8, mor::SamplingScheme::kLogarithmic);

  // Every pencil factorization condemned: no sample can even seed the
  // symbolic analysis.
  {
    fault::ScopedFault pivots(fault::Site::kSpluPivot, 1.0);
    try {
      mor::pmtbr_with_samples(sys, samples, {});
      FAIL() << "expected StatusError";
    } catch (const util::StatusError& e) {
      EXPECT_EQ(e.status().code(), util::ErrorCode::kCoverageFloor);
    }
  }

  // A single drop violates a min_coverage of 1.
  std::vector<std::size_t> condemned;
  const std::uint64_t seed = seed_with_drops(samples, 0.1, 1, condemned);
  mor::PmtbrOptions strict;
  strict.resilience.min_coverage = 1.0;
  {
    fault::ScopedFault replays(fault::Site::kSpluRefactor, 1.0);
    fault::ScopedFault pivots(fault::Site::kSpluPivot, 0.1, seed);
    EXPECT_THROW(mor::pmtbr_with_samples(sys, samples, strict), util::StatusError);
  }

  // Same config with the default floor completes.
  {
    fault::ScopedFault replays(fault::Site::kSpluRefactor, 1.0);
    fault::ScopedFault pivots(fault::Site::kSpluPivot, 0.1, seed);
    const auto res = mor::pmtbr_with_samples(sys, samples, {});
    EXPECT_EQ(res.degradation.samples_dropped, 1);
  }
}

TEST_F(Robustness, AcSweepDropsCondemnedPointsAndKeepsTheRest) {
  circuit::RcMeshParams mp;
  mp.rows = 4;
  mp.cols = 4;
  const auto sys = circuit::make_rc_mesh(mp);
  const auto freqs = log_grid(1e6, 1e9, 20);

  // Which grid points would the pivot site condemn? (AC keys by shift
  // j*2*pi*f, re = 0.)
  std::vector<mor::FrequencySample> as_samples;
  for (const double f : freqs)
    as_samples.push_back({la::cd(0.0, 2.0 * std::numbers::pi * f), 1.0});
  std::vector<std::size_t> condemned;
  const std::uint64_t seed = seed_with_drops(as_samples, 0.2, 4, condemned);

  const std::int64_t dropped_before = obs::counter_value(obs::Counter::kAcPointsDropped);
  std::vector<signal::AcPoint> out;
  {
    fault::ScopedFault replays(fault::Site::kSpluRefactor, 1.0);
    fault::ScopedFault pivots(fault::Site::kSpluPivot, 0.2, seed);
    out = signal::ac_sweep(sys, freqs);
  }
  ASSERT_EQ(out.size(), freqs.size() - condemned.size());
  EXPECT_EQ(obs::counter_value(obs::Counter::kAcPointsDropped),
            dropped_before + static_cast<std::int64_t>(condemned.size()));

  // Survivors are exactly the non-condemned frequencies, in grid order.
  std::vector<double> expect;
  for (std::size_t i = 0; i < freqs.size(); ++i)
    if (std::find(condemned.begin(), condemned.end(), i) == condemned.end())
      expect.push_back(freqs[i]);
  ASSERT_EQ(out.size(), expect.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_DOUBLE_EQ(out[i].f_hz, expect[i]);
}

TEST_F(Robustness, CleanRunReportsNoDegradation) {
  circuit::RcLineParams lp;
  lp.segments = 30;
  const auto sys = circuit::make_rc_line(lp);
  const auto res = mor::pmtbr(sys, {});
  EXPECT_FALSE(res.degradation.degraded());
  EXPECT_EQ(res.degradation.samples_dropped, 0);
  EXPECT_EQ(res.degradation.retries, 0);
  EXPECT_EQ(res.degradation.reweights, 0);
  EXPECT_DOUBLE_EQ(res.degradation.coverage, 1.0);
  EXPECT_TRUE(res.degradation.failures.empty());

  const std::string json = mor::degradation_extra(res.degradation).second;
  EXPECT_NE(json.find("\"samples_dropped\""), std::string::npos);
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
}

}  // namespace
}  // namespace pmtbr
