// Final coverage pass: option paths and cross-module behaviours not
// exercised elsewhere.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "circuit/parser.hpp"
#include "circuit/writer.hpp"
#include "la/ops.hpp"
#include "lyap/lyapunov.hpp"
#include "mor/cross_gramian.hpp"
#include "mor/error.hpp"
#include "mor/input_correlated.hpp"
#include "mor/mpproj.hpp"
#include "mor/pmtbr.hpp"
#include "mor/prima.hpp"
#include "mor/tbr.hpp"
#include "signal/waveform.hpp"

namespace pmtbr {
namespace {

using la::cd;
using la::index;
using mor::Band;

TEST(Coverage, WithPortsKeepingAllOutputs) {
  circuit::RcMeshParams p;
  p.rows = 4;
  p.cols = 4;
  p.num_ports = 3;
  const auto sys = circuit::make_rc_mesh(p);
  const auto sub = sys.with_ports({1}, /*restrict_outputs=*/false);
  EXPECT_EQ(sub.num_inputs(), 1);
  EXPECT_EQ(sub.num_outputs(), 3);
  // Column 1 of the full transfer matrix is preserved.
  const cd s(0.0, 2.0 * std::numbers::pi * 1e9);
  const auto h_full = sys.transfer(s);
  const auto h_sub = sub.transfer(s);
  for (index i = 0; i < 3; ++i)
    EXPECT_LT(std::abs(h_sub(i, 0) - h_full(i, 1)), 1e-12 * std::abs(h_full(i, 1)) + 1e-18);
}

TEST(Coverage, PrimaNonzeroExpansionPoint) {
  const auto sys = circuit::make_rc_line({.segments = 15});
  mor::PrimaOptions opts;
  opts.num_moments = 4;
  opts.s0 = 2.0 * std::numbers::pi * 1e9;
  const auto res = mor::prima(sys, opts);
  // Accuracy is best near the expansion point.
  const cd s(0.0, opts.s0);
  const cd hf = sys.transfer(s)(0, 0);
  const cd hr = res.model.system.transfer(s)(0, 0);
  EXPECT_LT(std::abs(hf - hr) / std::abs(hf), 1e-8);
}

TEST(Coverage, PrimaDeflationOnSmallSystem) {
  // Requesting more moments than the state dimension supports must deflate
  // gracefully (basis capped at n).
  const auto sys = circuit::make_rc_line({.segments = 3});
  mor::PrimaOptions opts;
  opts.num_moments = 20;
  const auto res = mor::prima(sys, opts);
  EXPECT_LE(res.model.system.n(), sys.n());
}

TEST(Coverage, MpprojRespectsMaxOrderMidBlock) {
  circuit::RcMeshParams p;
  p.rows = 4;
  p.cols = 4;
  p.num_ports = 3;  // 3 columns per sample: the cap lands mid-block
  const auto sys = circuit::make_rc_mesh(p);
  const auto samples = mor::sample_band(Band{0.0, 1e10}, 5, mor::SamplingScheme::kUniform);
  mor::MpprojOptions opts;
  opts.max_order = 7;
  const auto res = mor::mpproj(sys, samples, opts);
  EXPECT_EQ(res.model.system.n(), 7);
}

TEST(Coverage, CrossGramianMaxOrderCap) {
  const auto sys = circuit::make_rc_line({.segments = 15});
  mor::CrossGramianOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 10;
  opts.truncation_tol = 0.0;  // would keep everything...
  opts.max_order = 3;         // ...but the cap wins
  const auto res = mor::cross_gramian_pmtbr(sys, opts);
  EXPECT_LE(res.model.system.n(), 3);
}

TEST(Coverage, InputCorrelatedMaxOrderAndTolInteraction) {
  circuit::MultiportRcParams p;
  p.lines = 6;
  p.segments = 3;
  const auto sys = circuit::make_multiport_rc(p);
  Rng rng(404);
  signal::SquareWaveSpec spec;
  spec.period = 4e-9;
  const auto bank = signal::make_square_bank(spec, 1e-8, std::vector<double>(6, 0.0), rng);
  const auto samples = signal::sample_waveforms(bank, 1e-8, 100);

  mor::InputCorrelatedOptions opts;
  opts.bands = {Band{0.0, 2e9}};
  opts.num_freq_samples = 6;
  opts.draws_per_frequency = 0;
  opts.truncation_tol = 1e-14;  // very tight...
  opts.max_order = 4;           // ...but capped
  const auto res = mor::input_correlated_tbr(sys, samples, opts);
  EXPECT_LE(res.model.system.n(), 4);
  EXPECT_GE(res.input_rank, 1);
}

TEST(Coverage, LyapunovOptionsRespectIterationCap) {
  lyap::LyapunovOptions opts;
  opts.max_iterations = 1;  // cannot converge in one step for this system
  la::MatD a{{-1.0, 100.0}, {0.0, -2.0}};
  la::MatD q{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_THROW(lyap::solve_lyapunov(a, q, opts), std::runtime_error);
}

TEST(Coverage, TbrErrorBoundEdgeOrders) {
  const std::vector<double> hsv{4.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mor::tbr_error_bound(hsv, 0), 14.0);
  EXPECT_DOUBLE_EQ(mor::tbr_error_bound(hsv, 3), 0.0);
  EXPECT_DOUBLE_EQ(mor::tbr_error_bound(hsv, 99), 0.0);
}

TEST(Coverage, WriterHandlesGeneratedRlc) {
  // Serialize a generator output's netlist equivalent: build a small RLC by
  // hand, round-trip, and compare at several frequencies.
  circuit::Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  const auto n3 = nl.add_node();
  nl.add_resistor(n1, n2, 12.0);
  const auto l1 = nl.add_inductor(n2, n3, 1.5e-9);
  const auto l2 = nl.add_inductor(n3, 0, 0.5e-9);
  nl.add_mutual(l1, l2, 0.3e-9);
  for (auto nd : {n1, n2, n3}) nl.add_capacitor(nd, 0, 1e-12);
  nl.add_resistor(n3, 0, 75.0);
  nl.add_port(n1);
  nl.add_port(n3);

  const auto round = circuit::parse_netlist_string(circuit::netlist_to_string(nl));
  const auto s1 = circuit::assemble_mna(nl);
  const auto s2 = circuit::assemble_mna(round);
  for (const double f : {1e8, 2e9, 2e10}) {
    const cd s(0.0, 2.0 * std::numbers::pi * f);
    EXPECT_LT(la::max_abs_diff(s1.transfer(s), s2.transfer(s)),
              1e-9 * la::norm_fro(s1.transfer(s)));
  }
}

TEST(Coverage, PmtbrOnMultiBandUnion) {
  // Two disjoint bands of interest (Algorithm 2 proper).
  const auto sys = circuit::make_peec({.sections = 12});
  mor::PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e8}, Band{5e8, 8e8}};
  opts.num_samples = 16;
  opts.fixed_order = 10;
  const auto res = mor::pmtbr(sys, opts);
  // Accurate inside both bands.
  for (const auto& band : opts.bands) {
    const auto grid = mor::linspace_grid(std::max(band.f_lo, 1e6), band.f_hi, 10);
    const auto err = mor::compare_on_grid(sys, res.model.system, grid);
    EXPECT_LT(err.max_rel, 0.05) << "band " << band.f_lo << "-" << band.f_hi;
  }
}

TEST(Coverage, SampleUsageRecorded) {
  const auto sys = circuit::make_rc_line({.segments = 8});
  mor::PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e9}};
  opts.num_samples = 7;
  opts.fixed_order = 3;
  const auto res = mor::pmtbr(sys, opts);
  EXPECT_EQ(res.samples_used.size(), 7u);
  for (const auto& fs : res.samples_used) EXPECT_GT(fs.weight, 0.0);
}

TEST(Coverage, HankelEstimatesAreSquaredSingularValues) {
  const auto sys = circuit::make_rc_line({.segments = 10});
  mor::PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 6;
  opts.fixed_order = 3;
  const auto res = mor::pmtbr(sys, opts);
  ASSERT_EQ(res.hankel_estimates.size(), res.model.singular_values.size());
  for (std::size_t i = 0; i < res.hankel_estimates.size(); ++i)
    EXPECT_DOUBLE_EQ(res.hankel_estimates[i],
                     res.model.singular_values[i] * res.model.singular_values[i]);
}

}  // namespace
}  // namespace pmtbr
