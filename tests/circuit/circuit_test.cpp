// Netlist / MNA assembly tests: analytic transfer functions, passivity
// structure, and descriptor-system plumbing.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/descriptor.hpp"
#include "circuit/netlist.hpp"
#include "la/eig_sym.hpp"
#include "la/lu.hpp"
#include "la/ops.hpp"
#include "helpers.hpp"

namespace pmtbr::circuit {
namespace {

using la::cd;
using la::MatD;

TEST(Netlist, NodeBookkeeping) {
  Netlist nl;
  EXPECT_EQ(nl.add_node(), 1);
  EXPECT_EQ(nl.add_node(), 2);
  nl.ensure_node(10);
  EXPECT_EQ(nl.num_nodes(), 10);
}

TEST(Netlist, RejectsBadElements) {
  Netlist nl;
  const auto n1 = nl.add_node();
  EXPECT_THROW(nl.add_resistor(n1, n1, 1.0), std::invalid_argument);
  EXPECT_THROW(nl.add_resistor(n1, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(nl.add_capacitor(n1, 5, 1e-12), std::invalid_argument);
  EXPECT_THROW(nl.add_port(0), std::invalid_argument);
}

TEST(Netlist, MutualRequiresKnownInductors) {
  Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  const auto l0 = nl.add_inductor(n1, n2, 1e-9);
  EXPECT_THROW(nl.add_mutual(l0, 5, 1e-10), std::invalid_argument);
  EXPECT_THROW(nl.add_mutual(l0, l0, 1e-10), std::invalid_argument);
}

TEST(Mna, ParallelRcAnalytic) {
  // One node: R and C to ground, current port. Z(s) = R / (1 + sRC).
  Netlist nl;
  const auto n1 = nl.add_node();
  const double r = 100.0, c = 1e-12;
  nl.add_resistor(n1, 0, r);
  nl.add_capacitor(n1, 0, c);
  nl.add_port(n1);
  const DescriptorSystem sys = assemble_mna(nl);
  EXPECT_EQ(sys.n(), 1);
  for (const double f : {0.0, 1e8, 1e9, 1e10}) {
    const cd s(0.0, 2.0 * std::numbers::pi * f);
    const cd z = sys.transfer(s)(0, 0);
    const cd expected = r / (1.0 + s * r * c);
    EXPECT_NEAR(std::abs(z - expected), 0.0, 1e-9 * std::abs(expected));
  }
}

TEST(Mna, SeriesRlcAnalytic) {
  // Port -> node1; R from node1 to node2, L from node2 to ground, C from
  // node1 to ground. Z(s) = (R + sL) || (1/(sC)).
  Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  const double r = 2.0, l = 1e-9, c = 1e-12;
  nl.add_resistor(n1, n2, r);
  nl.add_inductor(n2, 0, l);
  nl.add_capacitor(n1, 0, c);
  nl.add_port(n1);
  const DescriptorSystem sys = assemble_mna(nl);
  EXPECT_EQ(sys.n(), 3);  // 2 nodes + 1 inductor current
  for (const double f : {1e7, 1e9, 2e10}) {
    const cd s(0.0, 2.0 * std::numbers::pi * f);
    const cd zrl = r + s * l;
    const cd zc = 1.0 / (s * c);
    const cd expected = zrl * zc / (zrl + zc);
    const cd z = sys.transfer(s)(0, 0);
    EXPECT_NEAR(std::abs(z - expected), 0.0, 1e-8 * std::abs(expected));
  }
}

TEST(Mna, ReciprocityTwoPortRc) {
  // RC network: Z12 == Z21 (reciprocal network).
  Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  const auto n3 = nl.add_node();
  nl.add_resistor(n1, n2, 10.0);
  nl.add_resistor(n2, n3, 20.0);
  nl.add_resistor(n2, 0, 30.0);
  nl.add_capacitor(n1, 0, 1e-12);
  nl.add_capacitor(n2, 0, 2e-12);
  nl.add_capacitor(n3, 0, 1e-12);
  nl.add_port(n1);
  nl.add_port(n3);
  const DescriptorSystem sys = assemble_mna(nl);
  const la::MatC h = sys.transfer(cd(0.0, 1e9));
  EXPECT_NEAR(std::abs(h(0, 1) - h(1, 0)), 0.0, 1e-12 * std::abs(h(0, 1)));
}

TEST(Mna, PassivityStructure) {
  // E = E^T >= 0 and A + A^T <= 0 for an RLC netlist with mutuals.
  Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  const auto n3 = nl.add_node();
  nl.add_resistor(n1, n2, 5.0);
  const auto l1 = nl.add_inductor(n2, n3, 1e-9);
  const auto l2 = nl.add_inductor(n3, 0, 2e-9);
  nl.add_mutual(l1, l2, 0.5e-9);
  nl.add_capacitor(n1, 0, 1e-12);
  nl.add_capacitor(n2, 0, 1e-12);
  nl.add_capacitor(n3, 0, 1e-12);
  nl.add_port(n1);
  const DescriptorSystem sys = assemble_mna(nl);

  const MatD e = sys.e().to_dense();
  EXPECT_LT(la::max_abs_diff(e, la::transpose(e)), 1e-15);
  const auto eige = la::eig_sym(e);
  EXPECT_GE(eige.values.back(), -1e-18);

  MatD sym_a = sys.a().to_dense();
  sym_a += la::transpose(sys.a().to_dense());
  const auto eiga = la::eig_sym(sym_a);
  EXPECT_LE(eiga.values.front(), 1e-15);
}

TEST(Mna, BEqualsCTransposed) {
  Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  nl.add_resistor(n1, n2, 1.0);
  nl.add_capacitor(n1, 0, 1e-12);
  nl.add_capacitor(n2, 0, 1e-12);
  nl.add_port(n2);
  nl.add_port(n1);
  const DescriptorSystem sys = assemble_mna(nl);
  EXPECT_LT(la::max_abs_diff(sys.b(), la::transpose(sys.c())), 1e-15);
}

TEST(Descriptor, WithPortsRestricts) {
  Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  const auto n3 = nl.add_node();
  nl.add_resistor(n1, n2, 1.0);
  nl.add_resistor(n2, n3, 1.0);
  nl.add_resistor(n3, 0, 1.0);
  for (auto nd : {n1, n2, n3}) nl.add_capacitor(nd, 0, 1e-12);
  nl.add_port(n1);
  nl.add_port(n2);
  nl.add_port(n3);
  const DescriptorSystem sys = assemble_mna(nl);
  const DescriptorSystem sub = sys.with_ports({0, 2});
  EXPECT_EQ(sub.num_inputs(), 2);
  EXPECT_EQ(sub.num_outputs(), 2);
  const la::MatC h_full = sys.transfer(cd(0.0, 1e9));
  const la::MatC h_sub = sub.transfer(cd(0.0, 1e9));
  EXPECT_NEAR(std::abs(h_sub(0, 0) - h_full(0, 0)), 0.0, 1e-13 * std::abs(h_full(0, 0)));
  EXPECT_NEAR(std::abs(h_sub(1, 1) - h_full(2, 2)), 0.0, 1e-13 * std::abs(h_full(2, 2)));
}

TEST(Descriptor, DenseStandardMatchesTransfer) {
  Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  nl.add_resistor(n1, n2, 3.0);
  nl.add_resistor(n2, 0, 5.0);
  nl.add_capacitor(n1, 0, 1e-12);
  nl.add_capacitor(n2, 0, 2e-12);
  nl.add_port(n1);
  const DescriptorSystem sys = assemble_mna(nl);
  const DenseStandard d = to_dense_standard(sys);
  const cd s(0.0, 3e9);
  // H = C (sI - Ad)^{-1} Bd
  la::MatC pencil(2, 2);
  for (la::index i = 0; i < 2; ++i)
    for (la::index j = 0; j < 2; ++j) pencil(i, j) = (i == j ? s : cd{0}) - cd(d.a(i, j));
  const la::MatC x = la::LuC(pencil).solve(la::to_complex(d.b));
  const cd h_dense = la::matmul(la::to_complex(d.c), x)(0, 0);
  const cd h_sparse = sys.transfer(s)(0, 0);
  EXPECT_NEAR(std::abs(h_dense - h_sparse), 0.0, 1e-10 * std::abs(h_sparse));
}

TEST(Descriptor, TransposeSolveConsistent) {
  Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  nl.add_resistor(n1, n2, 1.0);
  nl.add_resistor(n2, 0, 2.0);
  nl.add_capacitor(n1, 0, 1e-12);
  nl.add_capacitor(n2, 0, 1e-12);
  nl.add_port(n1);
  const DescriptorSystem sys = assemble_mna(nl);
  const cd s(0.0, 1e9);
  // (sE-A)^{-T} rhs  ==  transpose path check via dense.
  la::MatC rhs(2, 1);
  rhs(0, 0) = cd(1.0, 0.5);
  rhs(1, 0) = cd(-2.0, 1.0);
  const la::MatC xt = sys.solve_shifted_transpose(s, rhs);
  const la::MatC dense = sparse::shifted_pencil(s, sys.e(), sys.a()).to_dense();
  const la::MatC back = la::matmul(la::transpose(dense), xt);
  EXPECT_NEAR(std::abs(back(0, 0) - rhs(0, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(back(1, 0) - rhs(1, 0)), 0.0, 1e-12);
}

}  // namespace
}  // namespace pmtbr::circuit
