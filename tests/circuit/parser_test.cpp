// Netlist text parser tests: value suffixes, card forms, node naming,
// mutual resolution, and error reporting.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/parser.hpp"

namespace pmtbr::circuit {
namespace {

using la::cd;

TEST(ParseValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_value("4.7"), 4.7);
  EXPECT_DOUBLE_EQ(parse_value("-2e3"), -2000.0);
}

TEST(ParseValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_value("1.5p"), 1.5e-12);
  EXPECT_DOUBLE_EQ(parse_value("2n"), 2e-9);
  EXPECT_DOUBLE_EQ(parse_value("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(parse_value("4m"), 4e-3);
  EXPECT_DOUBLE_EQ(parse_value("5k"), 5e3);
  EXPECT_DOUBLE_EQ(parse_value("6MEG"), 6e6);
  EXPECT_DOUBLE_EQ(parse_value("7g"), 7e9);
  EXPECT_DOUBLE_EQ(parse_value("8f"), 8e-15);
  EXPECT_DOUBLE_EQ(parse_value("9T"), 9e12);
}

TEST(ParseValue, TrailingUnitsIgnored) {
  EXPECT_DOUBLE_EQ(parse_value("1kohm"), 1e3);
  EXPECT_DOUBLE_EQ(parse_value("2pF"), 2e-12);
}

TEST(ParseValue, Malformed) {
  EXPECT_THROW(parse_value("abc"), std::invalid_argument);
  EXPECT_THROW(parse_value("1.5x"), std::invalid_argument);
  EXPECT_THROW(parse_value(""), std::invalid_argument);
}

TEST(Parser, SimpleRcNetwork) {
  const auto nl = parse_netlist_string(R"(
* simple RC
R1 in out 1k
C1 out 0 2p
.port in
.end
)");
  EXPECT_EQ(nl.num_nodes(), 2);
  EXPECT_EQ(nl.num_ports(), 1);
  ASSERT_EQ(nl.conductances().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.conductances()[0].value, 1e-3);
  ASSERT_EQ(nl.capacitors().size(), 1u);
  EXPECT_DOUBLE_EQ(nl.capacitors()[0].value, 2e-12);
}

TEST(Parser, GroundAliases) {
  const auto nl = parse_netlist_string("R1 a gnd 10\nR2 a 0 10\n.port a\n");
  // Both resistors tie node a to ground: only one non-ground node.
  EXPECT_EQ(nl.num_nodes(), 1);
  EXPECT_EQ(nl.conductances().size(), 2u);
}

TEST(Parser, CaseInsensitiveNodesAndCards) {
  const auto nl = parse_netlist_string("r1 N1 N2 5\nR2 n1 0 5\nc1 N2 0 1p\n.PORT n2\n");
  EXPECT_EQ(nl.num_nodes(), 2);
  EXPECT_EQ(nl.num_ports(), 1);
}

TEST(Parser, MutualCouplingResolved) {
  const auto nl = parse_netlist_string(R"(
L1 a b 4n
L2 b 0 1n
K1 L1 L2 0.5
C1 a 0 1p
C2 b 0 1p
.port a
)");
  ASSERT_EQ(nl.mutuals().size(), 1u);
  // M = k * sqrt(L1*L2) = 0.5 * 2e-9.
  EXPECT_NEAR(nl.mutuals()[0].m, 1e-9, 1e-18);
}

TEST(Parser, ParsedCircuitAssemblesAndMatchesAnalytic) {
  const auto nl = parse_netlist_string(R"(
R1 n1 0 100
C1 n1 0 1p
.port n1
)");
  const auto sys = assemble_mna(nl);
  const cd s(0.0, 2.0 * std::numbers::pi * 1e9);
  const cd z = sys.transfer(s)(0, 0);
  const cd expected = 100.0 / (1.0 + s * 100.0 * 1e-12);
  EXPECT_LT(std::abs(z - expected) / std::abs(expected), 1e-10);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist_string("R1 a 0 10\nbogus card here\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsBadCards) {
  EXPECT_THROW(parse_netlist_string("R1 a 0\n"), std::invalid_argument);          // missing value
  EXPECT_THROW(parse_netlist_string("K1 L1 L2 0.5\n"), std::invalid_argument);    // unknown L
  EXPECT_THROW(parse_netlist_string("K1 L1 L1 1.5\n"), std::invalid_argument);    // |k| >= 1
  EXPECT_THROW(parse_netlist_string(".port 0\n"), std::invalid_argument);         // ground port
  EXPECT_THROW(parse_netlist_string(".weird x\n"), std::invalid_argument);        // directive
  EXPECT_THROW(parse_netlist_string("R1 a a 5\n"), std::invalid_argument);        // same node
  EXPECT_THROW(parse_netlist_string(".end\nR1 a 0 5\n"), std::invalid_argument);  // after .end
  EXPECT_THROW(parse_netlist_string("L1 a 0 1n\nL1 b 0 1n\n"), std::invalid_argument);  // dup L
}

TEST(Parser, CommentsAndBlankLines) {
  const auto nl = parse_netlist_string(R"(
* full line comment
; another comment style

R1 a 0 50 * trailing comment
.port a
)");
  EXPECT_EQ(nl.conductances().size(), 1u);
}

}  // namespace
}  // namespace pmtbr::circuit
