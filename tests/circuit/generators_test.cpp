// Benchmark-circuit generator tests: expected sizes, port counts, stability
// of the dense standard form, invertible E, and passivity structure.
#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "la/eig_sym.hpp"
#include "la/lu.hpp"
#include "la/ops.hpp"
#include "la/schur.hpp"

namespace pmtbr::circuit {
namespace {

using la::index;
using la::MatD;

void expect_standard_invariants(const DescriptorSystem& sys) {
  // E invertible (all generators guarantee it).
  EXPECT_NO_THROW(la::LuD{sys.e().to_dense()});
  // Symmetric E, PSD; A + A^T negative semidefinite.
  const MatD e = sys.e().to_dense();
  EXPECT_LT(la::max_abs_diff(e, la::transpose(e)), 1e-18 * (1.0 + la::norm_inf(e)));
  MatD sa = sys.a().to_dense();
  sa += la::transpose(sys.a().to_dense());
  const auto eig = la::eig_sym(sa);
  EXPECT_LE(eig.values.front(), 1e-12);
}

void expect_stable(const DescriptorSystem& sys) {
  const DenseStandard d = to_dense_standard(sys);
  const auto poles = la::eigenvalues(d.a);
  // Stability up to eigensolver round-off, which scales with the spectral
  // radius (circuit time constants span many decades).
  const double tol = 1e-10 * std::abs(poles.front());
  for (const auto& p : poles) EXPECT_LT(p.real(), tol);
}

TEST(Generators, RcLineShape) {
  RcLineParams p;
  p.segments = 10;
  p.far_end_port = true;
  const auto sys = make_rc_line(p);
  EXPECT_EQ(sys.n(), 11);  // 11 nodes, no inductors
  EXPECT_EQ(sys.num_inputs(), 2);
  expect_standard_invariants(sys);
  expect_stable(sys);
}

TEST(Generators, RcMeshShapeAndPorts) {
  RcMeshParams p;
  p.rows = 6;
  p.cols = 6;
  p.num_ports = 8;
  const auto sys = make_rc_mesh(p);
  EXPECT_EQ(sys.n(), 36);
  EXPECT_EQ(sys.num_inputs(), 8);
  EXPECT_LT(la::max_abs_diff(sys.b(), la::transpose(sys.c())), 1e-15);
  expect_standard_invariants(sys);
  expect_stable(sys);
}

TEST(Generators, RcMeshPortCountSweep) {
  for (const index ports : {4, 16, 64}) {
    RcMeshParams p;
    p.num_ports = ports;
    const auto sys = make_rc_mesh(p);
    EXPECT_EQ(sys.num_inputs(), ports);
    EXPECT_EQ(sys.n(), 144);
  }
}

TEST(Generators, ClockTreeShape) {
  ClockTreeParams p;
  p.levels = 5;
  const auto sys = make_clock_tree(p);
  EXPECT_EQ(sys.n(), 63);  // 2^6 - 1 nodes
  EXPECT_EQ(sys.num_inputs(), 1);
  expect_standard_invariants(sys);
  expect_stable(sys);
}

TEST(Generators, MultiportRcShape) {
  MultiportRcParams p;
  p.lines = 8;
  p.segments = 4;
  const auto sys = make_multiport_rc(p);
  EXPECT_EQ(sys.n(), 8 * 5);
  EXPECT_EQ(sys.num_inputs(), 8);
  expect_standard_invariants(sys);
  expect_stable(sys);
}

TEST(Generators, SpiralShapeAndStability) {
  SpiralParams p;
  p.turns = 8;
  const auto sys = make_spiral(p);
  // Nodes: 9 junctions + 8 internal mids; states += 8 inductor currents.
  EXPECT_EQ(sys.n(), 9 + 8 + 8);
  EXPECT_EQ(sys.num_inputs(), 1);
  expect_standard_invariants(sys);
  expect_stable(sys);
}

TEST(Generators, SpiralRejectsOverCoupling) {
  SpiralParams p;
  p.coupling = 0.4;
  EXPECT_THROW(make_spiral(p), std::invalid_argument);
}

TEST(Generators, PeecShapeAndResonances) {
  PeecParams p;
  p.sections = 10;
  const auto sys = make_peec(p);
  EXPECT_EQ(sys.num_inputs(), 1);
  expect_standard_invariants(sys);
  expect_stable(sys);
  // High-Q: at least some poles close to the imaginary axis relative to
  // their magnitude.
  const DenseStandard d = to_dense_standard(sys);
  bool found_highq = false;
  for (const auto& pol : la::eigenvalues(d.a)) {
    if (std::abs(pol.imag()) > 20.0 * std::abs(pol.real())) found_highq = true;
  }
  EXPECT_TRUE(found_highq);
}

TEST(Generators, PeecSeededReproducibility) {
  PeecParams p;
  p.sections = 6;
  const auto s1 = make_peec(p);
  const auto s2 = make_peec(p);
  EXPECT_LT(la::max_abs_diff(s1.e().to_dense(), s2.e().to_dense()), 0.0 + 1e-300);
}

TEST(Generators, ConnectorShape) {
  ConnectorParams p;
  p.pins = 4;
  p.sections = 3;
  p.cavity_branches = false;
  const auto sys = make_connector(p);
  // Per pin: 4 section nodes + 3 mids = 7 nodes, 3 coils.
  EXPECT_EQ(sys.n(), 4 * (7 + 3));
  EXPECT_EQ(sys.num_inputs(), 3);
  expect_standard_invariants(sys);
  expect_stable(sys);
}

TEST(Generators, ConnectorCavityBranchesAddStates) {
  ConnectorParams with, without;
  with.pins = without.pins = 4;
  with.sections = without.sections = 3;
  without.cavity_branches = false;
  // Each cavity branch: 2 nodes + 1 inductor current = 3 states; branches
  // on the two ported pins, one per section node.
  EXPECT_EQ(make_connector(with).n(), make_connector(without).n() + 2 * 3 * 3);
  expect_standard_invariants(make_connector(with));
  expect_stable(make_connector(with));
}

TEST(Generators, EnergyStandardPreservesTransfer) {
  ConnectorParams p;
  p.pins = 3;
  p.sections = 2;
  const auto sys = make_connector(p);
  const auto esys = to_energy_standard(sys);
  const la::cd s(0.0, 2.0 * 3.14159265358979 * 3e9);
  const auto h1 = sys.transfer(s);
  const auto h2 = esys.transfer(s);
  EXPECT_LT(la::max_abs_diff(h1, h2), 1e-8 * la::norm_fro(h1));
}

TEST(Generators, SubstrateShapeAndPorts) {
  SubstrateParams p;
  p.grid = 8;
  p.num_ports = 20;
  const auto sys = make_substrate(p);
  EXPECT_EQ(sys.n(), 64);
  EXPECT_EQ(sys.num_inputs(), 20);
  expect_standard_invariants(sys);
  expect_stable(sys);
}

TEST(Generators, SubstrateSeedChangesPorts) {
  SubstrateParams p1, p2;
  p1.grid = p2.grid = 6;
  p1.num_ports = p2.num_ports = 5;
  p2.seed = p1.seed + 1;
  const auto s1 = make_substrate(p1);
  const auto s2 = make_substrate(p2);
  EXPECT_GT(la::max_abs_diff(s1.b(), s2.b()), 0.5);
}

}  // namespace
}  // namespace pmtbr::circuit
