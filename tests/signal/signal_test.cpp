// Waveform, correlation, transient, AC-sweep, and subspace-angle tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/netlist.hpp"
#include "mor/error.hpp"
#include "signal/ac.hpp"
#include "signal/correlation.hpp"
#include "signal/subspace.hpp"
#include "signal/transient.hpp"
#include "signal/waveform.hpp"
#include "helpers.hpp"

namespace pmtbr::signal {
namespace {

using la::index;
using la::MatD;

TEST(Waveform, LinearInterpolation) {
  Waveform w({0.0, 1.0, 2.0}, {0.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(1.5), 2.0);
  EXPECT_DOUBLE_EQ(w.value(5.0), 2.0);
}

TEST(Waveform, RejectsUnsortedTimes) {
  EXPECT_THROW(Waveform({1.0, 0.0}, {0.0, 1.0}), std::invalid_argument);
}

TEST(Waveform, SquareWaveTogglesBetweenRails) {
  Rng rng(81);
  SquareWaveSpec spec;
  spec.period = 1e-9;
  spec.rise_time = 2e-11;
  spec.dither_fraction = 0.0;
  const auto w = make_square_wave(spec, 5e-9, rng);
  // Mid-high and mid-low plateau checks (first cycle: rise at 0, fall at T/2).
  EXPECT_NEAR(w.value(0.25e-9), 1.0, 1e-9);
  EXPECT_NEAR(w.value(0.75e-9), 0.0, 1e-9);
}

TEST(Waveform, DitherStaysBounded) {
  Rng rng(82);
  SquareWaveSpec spec;
  spec.period = 1e-9;
  spec.dither_fraction = 0.1;
  const auto w = make_square_wave(spec, 2e-8, rng);
  for (double v : w.values()) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(Waveform, BankPhasesShiftWaves) {
  Rng rng(83);
  SquareWaveSpec spec;
  spec.period = 2e-9;
  spec.dither_fraction = 0.0;
  const auto bank = make_square_bank(spec, 1e-8, {0.0, 1e-9}, rng);
  ASSERT_EQ(bank.size(), 2u);
  // Half-period phase offset: when one is high, the other is low.
  EXPECT_NEAR(bank[0].value(0.5e-9), 1.0, 1e-9);
  EXPECT_NEAR(bank[1].value(0.5e-9), 0.0, 1e-9);
}

TEST(Waveform, BulkCurrentsHaveLowRank) {
  Rng rng(84);
  BulkCurrentSpec spec;
  spec.num_ports = 30;
  spec.num_sources = 3;
  const auto bank = make_bulk_currents(spec, 5e-8, rng);
  ASSERT_EQ(bank.size(), 30u);
  const MatD u = sample_waveforms(bank, 5e-8, 150);
  EXPECT_LE(effective_rank(u, 1e-6), 3);
}

TEST(Correlation, MatrixMatchesDefinition) {
  MatD u{{1, -1}, {1, 1}};
  const MatD k = correlation_matrix(u);
  EXPECT_DOUBLE_EQ(k(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(k(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(k(1, 1), 1.0);
}

TEST(Correlation, SpectrumMatchesEigenvalues) {
  pmtbr::Rng rng(85);
  const MatD u = pmtbr::testing::random_matrix(4, 50, rng);
  const auto spec = correlation_spectrum(u);
  const MatD k = correlation_matrix(u);
  double trace = 0;
  for (index i = 0; i < 4; ++i) trace += k(i, i);
  double sum = 0;
  for (double v : spec) sum += v;
  EXPECT_NEAR(trace, sum, 1e-10 * trace);
}

TEST(Transient, RcStepResponseAnalytic) {
  // Single RC: v(t) = R*(1 - e^{-t/RC}) for unit step current input.
  circuit::Netlist nl;
  const auto n1 = nl.add_node();
  const double r = 1000.0, c = 1e-12;
  nl.add_resistor(n1, 0, r);
  nl.add_capacitor(n1, 0, c);
  nl.add_port(n1);
  const auto sys = circuit::assemble_mna(nl);

  TransientOptions opts;
  opts.t_end = 5e-9;
  opts.steps = 2000;
  const auto res = simulate(
      sys, [](double) { return std::vector<double>{1.0}; }, opts);
  const double tau = r * c;
  for (const index k : {500, 1000, 2000}) {
    const double t = res.times[static_cast<std::size_t>(k)];
    const double expected = r * (1.0 - std::exp(-t / tau));
    EXPECT_NEAR(res.outputs(k, 0), expected, 2e-3 * r) << "t=" << t;
  }
}

TEST(Transient, DenseMatchesSparseOnSameModel) {
  const auto sys = [&] {
    circuit::Netlist nl;
    const auto n1 = nl.add_node();
    const auto n2 = nl.add_node();
    nl.add_resistor(n1, n2, 50.0);
    nl.add_resistor(n2, 0, 100.0);
    nl.add_capacitor(n1, 0, 1e-12);
    nl.add_capacitor(n2, 0, 2e-12);
    nl.add_port(n1);
    return circuit::assemble_mna(nl);
  }();
  const mor::DenseSystem dense(sys.e().to_dense(), sys.a().to_dense(), sys.b(), sys.c());

  TransientOptions opts;
  opts.t_end = 1e-9;
  opts.steps = 300;
  const auto input = [](double t) {
    return std::vector<double>{std::sin(2.0 * std::numbers::pi * 3e9 * t)};
  };
  const auto rs = simulate(sys, input, opts);
  const auto rd = simulate(dense, input, opts);
  const auto err = compare_outputs(rs, rd);
  EXPECT_LT(err.max_abs, 1e-10 * std::max(err.max_ref, 1e-30));
}

TEST(Transient, ZeroInputStaysZero) {
  const auto sys = [&] {
    circuit::Netlist nl;
    const auto n1 = nl.add_node();
    nl.add_resistor(n1, 0, 10.0);
    nl.add_capacitor(n1, 0, 1e-12);
    nl.add_port(n1);
    return circuit::assemble_mna(nl);
  }();
  TransientOptions opts;
  opts.t_end = 1e-9;
  opts.steps = 50;
  const auto res = simulate(
      sys, [](double) { return std::vector<double>{0.0}; }, opts);
  for (index k = 0; k <= 50; ++k) EXPECT_DOUBLE_EQ(res.outputs(k, 0), 0.0);
}

TEST(Ac, SweepMatchesAnalyticRc) {
  circuit::Netlist nl;
  const auto n1 = nl.add_node();
  const double r = 100.0, c = 1e-12;
  nl.add_resistor(n1, 0, r);
  nl.add_capacitor(n1, 0, c);
  nl.add_port(n1);
  const auto sys = circuit::assemble_mna(nl);
  const auto pts = ac_sweep(sys, {1e9});
  const double w = 2.0 * std::numbers::pi * 1e9;
  const double expected = r / std::sqrt(1.0 + w * w * r * r * c * c);
  EXPECT_NEAR(pts[0].magnitude, expected, 1e-9 * expected);
  EXPECT_LT(pts[0].phase_rad, 0.0);  // capacitive lag
}

TEST(Subspace, IdenticalSubspacesZeroAngle) {
  pmtbr::Rng rng(86);
  const MatD a = pmtbr::testing::random_matrix(10, 3, rng);
  EXPECT_NEAR(subspace_angle(a, a), 0.0, 1e-7);
}

TEST(Subspace, OrthogonalVectorsRightAngle) {
  MatD a(4, 1), b(4, 1);
  a(0, 0) = 1.0;
  b(1, 0) = 1.0;
  EXPECT_NEAR(subspace_angle(a, b), std::numbers::pi / 2.0, 1e-12);
}

TEST(Subspace, KnownFortyFiveDegrees) {
  MatD a(2, 1), b(2, 1);
  a(0, 0) = 1.0;
  b(0, 0) = 1.0;
  b(1, 0) = 1.0;
  EXPECT_NEAR(subspace_angle(a, b), std::numbers::pi / 4.0, 1e-12);
}

TEST(Subspace, VectorInsideLargerSubspace) {
  // A vector lying inside a 2-d subspace: angle 0.
  MatD v(3, 1), s(3, 2);
  v(0, 0) = 1.0;
  v(1, 0) = 1.0;
  s(0, 0) = 1.0;
  s(1, 1) = 1.0;
  EXPECT_NEAR(subspace_angle(v, s), 0.0, 1e-7);
}

TEST(Subspace, AnglesAscendingAndBounded) {
  pmtbr::Rng rng(87);
  const MatD a = pmtbr::testing::random_matrix(12, 4, rng);
  const MatD b = pmtbr::testing::random_matrix(12, 4, rng);
  const auto angles = principal_angles(a, b);
  for (std::size_t i = 1; i < angles.size(); ++i) EXPECT_GE(angles[i], angles[i - 1]);
  for (double th : angles) {
    EXPECT_GE(th, -1e-12);
    EXPECT_LE(th, std::numbers::pi / 2.0 + 1e-12);
  }
}

}  // namespace
}  // namespace pmtbr::signal
