// Additional signal-layer coverage: bank adapters, bulk-current
// determinism, adjoint solves, and transient consistency properties.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "circuit/netlist.hpp"
#include "la/ops.hpp"
#include "signal/correlation.hpp"
#include "signal/transient.hpp"
#include "signal/waveform.hpp"

namespace pmtbr::signal {
namespace {

using la::cd;
using la::index;

TEST(BankInput, EvaluatesAllChannels) {
  Waveform w1({0.0, 1.0}, {0.0, 2.0});
  Waveform w2({0.0, 1.0}, {1.0, 1.0});
  const auto in = bank_input({w1, w2});
  const auto u = in(0.5);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_DOUBLE_EQ(u[0], 1.0);
  EXPECT_DOUBLE_EQ(u[1], 1.0);
}

TEST(BulkCurrents, SeededDeterminism) {
  BulkCurrentSpec spec;
  spec.num_ports = 10;
  spec.num_sources = 2;
  Rng r1(5), r2(5);
  const auto b1 = make_bulk_currents(spec, 2e-8, r1);
  const auto b2 = make_bulk_currents(spec, 2e-8, r2);
  for (std::size_t k = 0; k < b1.size(); ++k)
    for (std::size_t i = 0; i < b1[k].values().size(); ++i)
      EXPECT_DOUBLE_EQ(b1[k].values()[i], b2[k].values()[i]);
}

TEST(BulkCurrents, AmplitudeScales) {
  BulkCurrentSpec spec;
  spec.num_ports = 5;
  spec.num_sources = 2;
  spec.amplitude = 1e-3;
  Rng rng(6);
  const auto bank = make_bulk_currents(spec, 2e-8, rng);
  double peak = 0;
  for (const auto& w : bank)
    for (const double v : w.values()) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 1e-4);
  EXPECT_LT(peak, 1e-1);
}

TEST(Correlation, RankOneForIdenticalWaves) {
  // All ports driven by the same waveform scaled differently: rank 1.
  Waveform base({0.0, 1e-9, 2e-9, 3e-9}, {0.0, 1.0, 0.5, 1.0});
  la::MatD u(3, 50);
  for (index l = 0; l < 50; ++l) {
    const double t = 3e-9 * static_cast<double>(l) / 49.0;
    const double v = base.value(t);
    u(0, l) = v;
    u(1, l) = 2.0 * v;
    u(2, l) = -0.5 * v;
  }
  EXPECT_EQ(effective_rank(u, 1e-10), 1);
}

TEST(Transient, LinearityInInput) {
  const auto sys = [&] {
    circuit::Netlist nl;
    const auto n1 = nl.add_node();
    const auto n2 = nl.add_node();
    nl.add_resistor(n1, n2, 100.0);
    nl.add_resistor(n2, 0, 50.0);
    nl.add_capacitor(n1, 0, 1e-12);
    nl.add_capacitor(n2, 0, 2e-12);
    nl.add_port(n1);
    return circuit::assemble_mna(nl);
  }();
  TransientOptions opts;
  opts.t_end = 1e-9;
  opts.steps = 200;
  const auto u1 = [](double t) { return std::vector<double>{std::sin(3e9 * t)}; };
  const auto u2 = [&](double t) { return std::vector<double>{2.0 * std::sin(3e9 * t)}; };
  const auto r1 = simulate(sys, u1, opts);
  const auto r2 = simulate(sys, u2, opts);
  for (index k = 0; k <= opts.steps; k += 20)
    EXPECT_NEAR(r2.outputs(k, 0), 2.0 * r1.outputs(k, 0), 1e-9 * (1.0 + std::abs(r1.outputs(k, 0))));
}

TEST(Transient, StepConvergesToDcGain) {
  // Long simulation: output approaches R_dc * I.
  circuit::Netlist nl;
  const auto n1 = nl.add_node();
  nl.add_resistor(n1, 0, 200.0);
  nl.add_capacitor(n1, 0, 1e-12);
  nl.add_port(n1);
  const auto sys = circuit::assemble_mna(nl);
  TransientOptions opts;
  opts.t_end = 1e-8;  // 50 time constants
  opts.steps = 500;
  const auto res = simulate(
      sys, [](double) { return std::vector<double>{1.0}; }, opts);
  EXPECT_NEAR(res.outputs(opts.steps, 0), 200.0, 0.01);
}

TEST(Transient, RejectsBadOptions) {
  const auto sys = circuit::make_rc_line({.segments = 3});
  TransientOptions bad;
  bad.steps = 0;
  EXPECT_THROW(simulate(sys, [](double) { return std::vector<double>{0.0}; }, bad),
               std::invalid_argument);
}

TEST(Transient, RejectsWrongInputWidth) {
  const auto sys = circuit::make_rc_line({.segments = 3});
  TransientOptions opts;
  opts.t_end = 1e-9;
  opts.steps = 10;
  EXPECT_THROW(simulate(sys, [](double) { return std::vector<double>{1.0, 2.0}; }, opts),
               std::invalid_argument);
}

TEST(DescriptorAdjoint, SolvesConjugateTransposedSystem) {
  const auto sys = circuit::make_rc_line({.segments = 6});
  const cd s(0.0, 2.0 * std::numbers::pi * 1e9);
  la::MatC rhs(sys.n(), 1);
  for (index i = 0; i < sys.n(); ++i) rhs(i, 0) = cd(1.0, static_cast<double>(i));
  const la::MatC x = sys.solve_shifted_adjoint(s, rhs);
  const la::MatC dense = sparse::shifted_pencil(s, sys.e(), sys.a()).to_dense();
  const la::MatC back = la::matmul(la::adjoint(dense), x);
  EXPECT_LT(la::max_abs_diff(back, rhs), 1e-9 * la::norm_fro(rhs));
}

}  // namespace
}  // namespace pmtbr::signal
