// VIOLATION: releasing a capability that is not held (double unlock).
// Must be rejected by -Werror=thread-safety.
#include "util/mutex.hpp"

void double_unlock(pmtbr::util::Mutex& mu) {
  mu.lock();
  mu.unlock();
  mu.unlock();  // mu no longer held
}
