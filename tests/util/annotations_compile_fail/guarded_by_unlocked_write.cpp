// VIOLATION: writing a PMTBR_GUARDED_BY member after the scoped lock
// has already been destroyed. Must be rejected by -Werror=thread-safety.
#include "util/mutex.hpp"

struct Guarded {
  pmtbr::util::Mutex mu;
  int value PMTBR_GUARDED_BY(mu) = 0;
};

void racy_write(Guarded& g) {
  {
    pmtbr::util::MutexLock lock(g.mu);
    g.value = 1;  // fine: lock held
  }
  g.value = 2;  // lock released at end of block
}
