// VIOLATION: reading a PMTBR_GUARDED_BY member without holding its
// mutex. Must be rejected by -Werror=thread-safety.
#include "util/mutex.hpp"

struct Guarded {
  pmtbr::util::Mutex mu;
  int value PMTBR_GUARDED_BY(mu) = 0;
};

int racy_read(Guarded& g) {
  return g.value;  // no lock held
}
