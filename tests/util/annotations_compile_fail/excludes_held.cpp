// VIOLATION: calling a PMTBR_EXCLUDES(mu) function while holding mu —
// the self-deadlock shape the annotation exists to prevent. Must be
// rejected by -Werror=thread-safety.
#include "util/mutex.hpp"

struct Guarded {
  pmtbr::util::Mutex mu;
  int value PMTBR_GUARDED_BY(mu) = 0;

  void bump() PMTBR_EXCLUDES(mu) {
    pmtbr::util::MutexLock lock(mu);
    ++value;
  }
};

void deadlock(Guarded& g) {
  pmtbr::util::MutexLock lock(g.mu);
  g.bump();  // would self-deadlock: bump() re-acquires mu
}
