// Positive control for the negative-compile harness: correct usage of
// every construct the violation snippets abuse. This TU must compile
// cleanly under -Werror=thread-safety — if it does not, the harness
// flags would reject good code and the WILL_FAIL results next to it
// would be meaningless.
#include "util/mutex.hpp"

struct Guarded {
  pmtbr::util::Mutex mu;
  int value PMTBR_GUARDED_BY(mu) = 0;

  int get() PMTBR_REQUIRES(mu) { return value; }
  void bump() PMTBR_EXCLUDES(mu) {
    pmtbr::util::MutexLock lock(mu);
    ++value;
  }
};

int use_correctly(Guarded& g) {
  g.bump();
  pmtbr::util::MutexLock lock(g.mu);
  return g.get() + g.value;
}

int use_unique_lock(Guarded& g) {
  pmtbr::util::UniqueLock lock(g.mu);
  const int v = g.value;
  lock.unlock();
  return v;
}
