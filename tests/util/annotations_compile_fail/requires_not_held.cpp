// VIOLATION: calling a PMTBR_REQUIRES(mu) function without holding mu.
// Must be rejected by -Werror=thread-safety.
#include "util/mutex.hpp"

struct Guarded {
  pmtbr::util::Mutex mu;
  int value PMTBR_GUARDED_BY(mu) = 0;

  int get() PMTBR_REQUIRES(mu) { return value; }
};

int call_without_lock(Guarded& g) {
  return g.get();  // precondition mu not satisfied
}
