// CancelToken semantics and their contract with parallel_try_map and the
// pmtbr sampling loops (docs/SERVING.md): a cancelled run aborts at a
// checkpoint with the right Status, produces no partial result or
// degradation bookkeeping, and leaks no pool tasks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "circuit/generators.hpp"
#include "mor/pmtbr.hpp"
#include "util/cancel.hpp"
#include "util/obs/counters.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr {
namespace {

using util::CancelToken;
using util::ErrorCode;
using util::StatusError;

TEST(CancelToken, DefaultIsInert) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancel_requested());
  EXPECT_FALSE(t.deadline_passed());
  EXPECT_FALSE(t.cancelled());
  EXPECT_TRUE(t.check().is_ok());
  t.request_cancel();  // no-op, must not crash
  t.set_deadline(std::chrono::steady_clock::now());
  EXPECT_FALSE(t.cancelled());
  EXPECT_NO_THROW(t.throw_if_cancelled());
}

TEST(CancelToken, RequestCancelIsSharedAndIdempotent) {
  CancelToken t = CancelToken::make();
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.cancelled());
  CancelToken copy = t;  // copies observe the same state
  copy.request_cancel();
  copy.request_cancel();
  EXPECT_TRUE(t.cancel_requested());
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.check().code(), ErrorCode::kCancelled);
  EXPECT_THROW(t.throw_if_cancelled(), StatusError);
}

TEST(CancelToken, DeadlineReportsDeadlineExceeded) {
  CancelToken t = CancelToken::make();
  t.set_deadline(std::chrono::steady_clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(t.deadline_passed());
  EXPECT_TRUE(t.check().is_ok());
  t.set_deadline(std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(t.deadline_passed());
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.check().code(), ErrorCode::kDeadlineExceeded);
}

TEST(CancelToken, ExplicitCancelWinsOverDeadline) {
  CancelToken t = CancelToken::make();
  t.set_deadline(std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  t.request_cancel();
  EXPECT_EQ(t.check().code(), ErrorCode::kCancelled);
}

TEST(ParallelTryMapCancel, PreCancelledTokenSkipsEveryTask) {
  CancelToken t = CancelToken::make();
  t.request_cancel();
  std::atomic<int> invocations{0};
  auto out = util::parallel_try_map<int>(
      64,
      [&](la::index i) -> util::Expected<int> {
        invocations.fetch_add(1);
        return static_cast<int>(i);
      },
      t);
  EXPECT_EQ(invocations.load(), 0);
  ASSERT_EQ(out.size(), 64u);
  for (const auto& slot : out) {
    EXPECT_FALSE(slot.is_ok());
    EXPECT_EQ(slot.status().code(), ErrorCode::kCancelled);  // "task never ran"
  }
}

TEST(ParallelTryMapCancel, InertTokenRunsEverything) {
  std::atomic<int> invocations{0};
  auto out = util::parallel_try_map<int>(32, [&](la::index i) -> util::Expected<int> {
    invocations.fetch_add(1);
    return static_cast<int>(i) * 2;
  });
  EXPECT_EQ(invocations.load(), 32);
  for (la::index i = 0; i < 32; ++i) {
    ASSERT_TRUE(out[static_cast<std::size_t>(i)].is_ok());
    EXPECT_EQ(out[static_cast<std::size_t>(i)].value(), static_cast<int>(i) * 2);
  }
}

TEST(PmtbrCancel, PreCancelledRunAbortsBeforeAnyWork) {
  const DescriptorSystem sys = circuit::make_rc_line({.segments = 40});
  obs::reset_counters();

  mor::PmtbrOptions opts;
  opts.num_samples = 16;
  opts.cancel = CancelToken::make();
  opts.cancel.request_cancel();
  try {
    mor::pmtbr(sys, opts);
    FAIL() << "expected StatusError(kCancelled)";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kCancelled);
  }
  // The abort happens at the first checkpoint: nothing sampled, nothing
  // absorbed, no degradation bookkeeping — i.e. no partial progress that
  // could leak into a manifest.
  EXPECT_EQ(obs::counter_value(obs::Counter::kPmtbrSamples), 0);
  EXPECT_EQ(obs::counter_value(obs::Counter::kPmtbrSamplesDropped), 0);
  EXPECT_EQ(obs::counter_value(obs::Counter::kPmtbrWeightReweights), 0);
  EXPECT_EQ(obs::counter_value(obs::Counter::kCompressorColumnsKept), 0);
}

TEST(PmtbrCancel, PreCancelledAdaptiveRunAborts) {
  const DescriptorSystem sys = circuit::make_rc_line({.segments = 30});
  mor::PmtbrOptions opts;
  opts.cancel = CancelToken::make();
  opts.cancel.request_cancel();
  try {
    mor::pmtbr_adaptive(sys, {.initial_samples = 4, .max_samples = 16}, opts);
    FAIL() << "expected StatusError(kCancelled)";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kCancelled);
  }
}

TEST(PmtbrCancel, ExpiredDeadlineSurfacesDeadlineExceeded) {
  const DescriptorSystem sys = circuit::make_rc_line({.segments = 40});
  mor::PmtbrOptions opts;
  opts.num_samples = 16;
  opts.cancel = CancelToken::make();
  opts.cancel.set_deadline(std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  try {
    mor::pmtbr(sys, opts);
    FAIL() << "expected StatusError(kDeadlineExceeded)";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kDeadlineExceeded);
  }
}

// Cancelling from another thread mid-run: the run must abort at a
// checkpoint with kCancelled and leave no degradation bookkeeping (the
// post-map checkpoint fires before degrade_window). The exact cancellation
// instant races with the solves, so a fast machine may occasionally finish
// a run before the cancel lands — the test retries with a larger workload
// and requires at least one observed cancellation.
TEST(PmtbrCancel, MidRunCancelFromAnotherThread) {
  const DescriptorSystem sys = circuit::make_rc_mesh({.rows = 16, .cols = 16});
  bool observed_cancel = false;
  for (int attempt = 0; attempt < 5 && !observed_cancel; ++attempt) {
    obs::reset_counters();
    mor::PmtbrOptions opts;
    opts.num_samples = 96 << attempt;  // escalate until cancel wins the race
    opts.cancel = CancelToken::make();

    std::atomic<bool> done{false};
    std::thread canceller([&] {
      // Wait for the sampling map to actually start before cancelling.
      while (!done.load() && obs::counter_value(obs::Counter::kShiftedSolve) == 0)
        std::this_thread::yield();
      opts.cancel.request_cancel();
    });
    try {
      mor::pmtbr(sys, opts);
    } catch (const StatusError& e) {
      EXPECT_EQ(e.status().code(), ErrorCode::kCancelled);
      observed_cancel = true;
      // Cancelled between map and absorption: no drop/reweight bookkeeping.
      EXPECT_EQ(obs::counter_value(obs::Counter::kPmtbrSamplesDropped), 0);
      EXPECT_EQ(obs::counter_value(obs::Counter::kPmtbrWeightReweights), 0);
    }
    done.store(true);
    canceller.join();
  }
  EXPECT_TRUE(observed_cancel);

  // The pool must come out fully functional — no leaked or wedged tasks.
  std::atomic<int> ran{0};
  auto out = util::parallel_try_map<int>(128, [&](la::index i) -> util::Expected<int> {
    ran.fetch_add(1);
    return static_cast<int>(i);
  });
  EXPECT_EQ(ran.load(), 128);
  for (const auto& slot : out) EXPECT_TRUE(slot.is_ok());
}

}  // namespace
}  // namespace pmtbr
