// Error-taxonomy and fault-injection unit tests: Status/Expected semantics,
// deterministic injection decisions, spec parsing, and the scoped guards
// the robustness tests build on (docs/ROBUSTNESS.md).
#include "util/faultinject.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/obs/counters.hpp"
#include "util/status.hpp"

namespace pmtbr::util {
namespace {

TEST(Status, DefaultIsOkAndErrorCarriesCodeMessageDetail) {
  Status ok;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.code(), ErrorCode::kOk);
  EXPECT_EQ(ok.to_string(), "ok");

  Status err = Status(ErrorCode::kDegeneratePivot, "pivot too small").with_detail(17, 1e-14);
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.code(), ErrorCode::kDegeneratePivot);
  EXPECT_EQ(err.detail_index(), 17);
  EXPECT_DOUBLE_EQ(err.detail_value(), 1e-14);
  EXPECT_EQ(err.to_string(), "degenerate_pivot: pivot too small");
}

TEST(Status, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kSingularMatrix), "singular_matrix");
  EXPECT_STREQ(error_code_name(ErrorCode::kInjectedFault), "injected_fault");
  EXPECT_STREQ(error_code_name(ErrorCode::kCoverageFloor), "coverage_floor");
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "cancelled");
}

TEST(Status, StatusErrorIsARuntimeErrorCarryingTheStatus) {
  try {
    throw StatusError(Status(ErrorCode::kSingularMatrix, "exact pole"));
  } catch (const std::runtime_error& e) {  // legacy catch sites keep working
    EXPECT_STREQ(e.what(), "singular_matrix: exact pole");
  }
  try {
    throw StatusError(Status(ErrorCode::kNoConvergence, "budget"));
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), ErrorCode::kNoConvergence);
  }
}

TEST(Expected, DefaultIsCancelledValueRoundTripsErrorThrows) {
  Expected<int> never_ran;
  EXPECT_FALSE(never_ran.is_ok());
  EXPECT_EQ(never_ran.status().code(), ErrorCode::kCancelled);

  Expected<int> ok = 42;
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(ok.status().is_ok());

  Expected<int> bad = Status(ErrorCode::kNonFinite, "nan");
  EXPECT_THROW(bad.value(), StatusError);
}

class FaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::clear(); }
  void TearDown() override { fault::clear(); }
};

TEST_F(FaultInjectTest, DisabledByDefault) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fail(fault::Site::kSpluPivot, 123));
  EXPECT_FALSE(fault::should_fail(fault::Site::kSvdConverge));
}

TEST_F(FaultInjectTest, ScopedFaultArmsAndRestores) {
  {
    fault::ScopedFault guard(fault::Site::kSpluPivot, 1.0, 7);
    EXPECT_TRUE(fault::enabled());
    EXPECT_TRUE(fault::should_fail(fault::Site::kSpluPivot, 1));
    // Other sites stay dark.
    EXPECT_FALSE(fault::should_fail(fault::Site::kSvdConverge, 1));
  }
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::should_fail(fault::Site::kSpluPivot, 1));
}

TEST_F(FaultInjectTest, ZeroProbabilityNeverFires) {
  fault::ScopedFault guard(fault::Site::kSpluRefactor, 0.0, 3);
  for (std::uint64_t k = 0; k < 100; ++k)
    EXPECT_FALSE(fault::should_fail(fault::Site::kSpluRefactor, k));
}

TEST_F(FaultInjectTest, KeyedDecisionsMatchThePureDecideFunction) {
  constexpr double kP = 0.3;
  constexpr std::uint64_t kSeed = 99;
  fault::ScopedFault guard(fault::Site::kSpluPivot, kP, kSeed);
  int fired = 0;
  for (std::uint64_t k = 0; k < 500; ++k) {
    const bool hit = fault::should_fail(fault::Site::kSpluPivot, k);
    EXPECT_EQ(hit, fault::decide(kP, kSeed, fault::Site::kSpluPivot, k)) << k;
    fired += hit ? 1 : 0;
  }
  // Roughly p of the keys fire (hash uniformity, loose bounds).
  EXPECT_GT(fired, 100);
  EXPECT_LT(fired, 200);
  // Same (seed, site, key) → same decision, always.
  for (std::uint64_t k = 0; k < 20; ++k)
    EXPECT_EQ(fault::decide(kP, kSeed, fault::Site::kSpluPivot, k),
              fault::decide(kP, kSeed, fault::Site::kSpluPivot, k));
}

TEST_F(FaultInjectTest, KeyScopeDrivesKeylessQueries) {
  constexpr double kP = 0.5;
  constexpr std::uint64_t kSeed = 11;
  // Find one key that fires and one that doesn't.
  std::uint64_t hot = 0, cold = 0;
  bool have_hot = false, have_cold = false;
  for (std::uint64_t k = 0; k < 64 && !(have_hot && have_cold); ++k) {
    if (fault::decide(kP, kSeed, fault::Site::kEigConverge, k)) {
      hot = k;
      have_hot = true;
    } else {
      cold = k;
      have_cold = true;
    }
  }
  ASSERT_TRUE(have_hot && have_cold);

  fault::ScopedFault guard(fault::Site::kEigConverge, kP, kSeed);
  {
    fault::KeyScope scope(hot);
    EXPECT_TRUE(fault::should_fail(fault::Site::kEigConverge));
  }
  {
    fault::KeyScope scope(cold);
    EXPECT_FALSE(fault::should_fail(fault::Site::kEigConverge));
    {  // nested scopes stack and restore
      fault::KeyScope inner(hot);
      EXPECT_TRUE(fault::should_fail(fault::Site::kEigConverge));
    }
    EXPECT_FALSE(fault::should_fail(fault::Site::kEigConverge));
  }
}

TEST_F(FaultInjectTest, ShiftKeyDistinguishesShifts) {
  const std::uint64_t a = fault::shift_key(0.0, 1.0);
  const std::uint64_t b = fault::shift_key(0.0, 2.0);
  const std::uint64_t c = fault::shift_key(1.0, 0.0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, fault::shift_key(0.0, 1.0));
}

TEST_F(FaultInjectTest, ConfigureParsesSpecsAndRejectsGarbage) {
  EXPECT_EQ(fault::configure("splu.pivot:p=0.25:seed=7,svd.converge"), "");
  EXPECT_TRUE(fault::enabled());
  // svd.converge defaults to p=1: every key fires.
  EXPECT_TRUE(fault::should_fail(fault::Site::kSvdConverge, 5));
  EXPECT_EQ(fault::should_fail(fault::Site::kSpluPivot, 5),
            fault::decide(0.25, 7, fault::Site::kSpluPivot, 5));

  EXPECT_NE(fault::configure("not.a.site:p=1"), "");
  EXPECT_NE(fault::configure("splu.pivot:p=nope"), "");
  EXPECT_NE(fault::configure("splu.pivot:p=2.0"), "");

  fault::clear();
  EXPECT_FALSE(fault::enabled());
}

TEST_F(FaultInjectTest, FiredInjectionsBumpTheCounter) {
  const std::int64_t before = obs::counter_value(obs::Counter::kFaultsInjected);
  fault::ScopedFault guard(fault::Site::kPoolTask, 1.0, 1);
  EXPECT_TRUE(fault::should_fail(fault::Site::kPoolTask, 42));
  EXPECT_TRUE(fault::should_fail(fault::Site::kPoolTask, 43));
  EXPECT_EQ(obs::counter_value(obs::Counter::kFaultsInjected), before + 2);
}

}  // namespace
}  // namespace pmtbr::util
