// Unit tests for the caching substrate (docs/SERVING.md): content
// fingerprints, the PMTBR_CACHE_BYTES budget parser, the byte-bounded LRU
// with pinning, and the single-flight gate's leader/follower protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/fingerprint.hpp"
#include "util/lru.hpp"

namespace pmtbr::util {
namespace {

TEST(Fingerprint, OrderAndSpanBoundarySensitivity) {
  FingerprintHasher ab, ba;
  ab.mix(1);
  ab.mix(2);
  ba.mix(2);
  ba.mix(1);
  EXPECT_NE(ab.digest(), ba.digest());  // position counter: order matters

  // Moving a boundary between two mixed spans changes the digest even
  // though the flattened element sequence is identical.
  FingerprintHasher split_21, split_12;
  split_21.mix_ints(std::vector<int>{1, 2});
  split_21.mix_ints(std::vector<int>{3});
  split_12.mix_ints(std::vector<int>{1});
  split_12.mix_ints(std::vector<int>{2, 3});
  EXPECT_NE(split_21.digest(), split_12.digest());

  FingerprintHasher empty, one_zero;
  one_zero.mix(0);
  EXPECT_NE(empty.digest(), one_zero.digest());
}

TEST(Fingerprint, DeterministicAndBitPatternExact) {
  FingerprintHasher a, b;
  for (FingerprintHasher* h : {&a, &b}) {
    h->mix_double(1.0 / 3.0);
    h->mix_i64(-7);
    h->mix_bool(true);
  }
  EXPECT_EQ(a.digest(), b.digest());

  // Doubles hash by bit pattern, so even +0.0 / -0.0 are distinct — a
  // fingerprint match implies bit-identical inputs.
  FingerprintHasher pos, neg;
  pos.mix_double(0.0);
  neg.mix_double(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());
}

TEST(Fingerprint, HexIs32LowercaseDigits) {
  const Fingerprint f{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(f.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(Fingerprint{}.hex(), std::string(32, '0'));
}

TEST(Fingerprint, CombineIsOrderSensitive) {
  const Fingerprint a{1, 2};
  const Fingerprint b{3, 4};
  EXPECT_NE(fingerprint_combine(a, b), fingerprint_combine(b, a));
  EXPECT_EQ(fingerprint_combine(a, b), fingerprint_combine(a, b));
}

// Saves/restores PMTBR_CACHE_BYTES so the budget tests cannot leak into
// other tests (or inherit CI's ambient value).
class CacheByteBudget : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("PMTBR_CACHE_BYTES");
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
  }
  void TearDown() override {
    if (had_)
      setenv("PMTBR_CACHE_BYTES", saved_.c_str(), 1);
    else
      unsetenv("PMTBR_CACHE_BYTES");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST_F(CacheByteBudget, ParsesPlainAndSuffixedValues) {
  unsetenv("PMTBR_CACHE_BYTES");
  EXPECT_EQ(cache_byte_budget(7), 7u);
  setenv("PMTBR_CACHE_BYTES", "4096", 1);
  EXPECT_EQ(cache_byte_budget(7), 4096u);
  setenv("PMTBR_CACHE_BYTES", "64k", 1);
  EXPECT_EQ(cache_byte_budget(7), std::size_t{64} << 10);
  setenv("PMTBR_CACHE_BYTES", "3M", 1);
  EXPECT_EQ(cache_byte_budget(7), std::size_t{3} << 20);
  setenv("PMTBR_CACHE_BYTES", "2g", 1);
  EXPECT_EQ(cache_byte_budget(7), std::size_t{2} << 30);
  setenv("PMTBR_CACHE_BYTES", "0", 1);
  EXPECT_EQ(cache_byte_budget(7), 0u);  // explicit disable
}

TEST_F(CacheByteBudget, MalformedValuesFallBack) {
  setenv("PMTBR_CACHE_BYTES", "12kb", 1);  // trailing junk
  EXPECT_EQ(cache_byte_budget(7), 7u);
  setenv("PMTBR_CACHE_BYTES", "-1", 1);
  EXPECT_EQ(cache_byte_budget(7), 7u);
  setenv("PMTBR_CACHE_BYTES", "", 1);
  EXPECT_EQ(cache_byte_budget(7), 7u);
  setenv("PMTBR_CACHE_BYTES", "99999999999999999999999", 1);  // overflow
  EXPECT_EQ(cache_byte_budget(7), 7u);
}

using IntCache = LruCache<int, int>;

TEST(LruCacheTest, DisabledCacheIgnoresPuts) {
  IntCache cache({0, 0});
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.put(1, 10, 8).inserted);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedPastByteBudget) {
  IntCache cache({0, 100});
  cache.put(1, 10, 40);
  cache.put(2, 20, 40);
  EXPECT_EQ(*cache.get(1), 10);  // 1 is now most recently used
  const EvictionReport ev = cache.put(3, 30, 40);
  EXPECT_TRUE(ev.inserted);
  EXPECT_EQ(ev.count, 1);
  EXPECT_EQ(ev.bytes, 40);
  EXPECT_FALSE(cache.get(2).has_value());  // 2 was LRU
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());

  const CacheStats st = cache.stats();
  EXPECT_EQ(st.entries, 2);
  EXPECT_EQ(st.bytes, 80);
  EXPECT_EQ(st.evictions, 1);
}

TEST(LruCacheTest, EntryCapEvictsIndependentlyOfBytes) {
  IntCache cache({2, 1 << 20});
  cache.put(1, 10, 1);
  cache.put(2, 20, 1);
  cache.put(3, 30, 1);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(LruCacheTest, ReplacingAKeyReportsReleasedBytes) {
  IntCache cache({0, 100});
  cache.put(1, 10, 60);
  const EvictionReport ev = cache.put(1, 11, 50);
  EXPECT_TRUE(ev.inserted);
  EXPECT_EQ(ev.count, 0);
  EXPECT_EQ(ev.replaced_bytes, 60);
  EXPECT_EQ(*cache.get(1), 11);
  EXPECT_EQ(cache.stats().bytes, 50);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(LruCacheTest, PinnedEntriesSurviveEviction) {
  IntCache cache({0, 80});
  cache.put(1, 10, 40);
  ASSERT_TRUE(cache.pin(1));
  cache.put(2, 20, 40);
  cache.put(3, 30, 40);  // over budget: 2 (unpinned LRU) goes, 1 stays
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());

  EXPECT_TRUE(cache.unpin(1));
  EXPECT_FALSE(cache.unpin(1));  // pins don't go negative
  EXPECT_FALSE(cache.pin(99));   // absent key
}

TEST(LruCacheTest, ClearKeepsMonotonicTotals) {
  IntCache cache({0, 100});
  cache.put(1, 10, 10);
  (void)cache.get(1);
  (void)cache.get(2);
  cache.add_coalesced(3);
  cache.clear();
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.entries, 0);
  EXPECT_EQ(st.bytes, 0);
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.coalesced, 3);
  EXPECT_FALSE(cache.get(1).has_value());
}

using IntFlight = SingleFlight<int, std::shared_ptr<const int>>;

TEST(SingleFlightGate, LeaderPublishesFollowersJoin) {
  IntFlight gate;
  bool leader = false;
  auto flight = gate.begin(7, leader);
  ASSERT_TRUE(leader);

  bool second = true;
  auto joined = gate.begin(7, second);
  EXPECT_FALSE(second);
  EXPECT_EQ(joined.get(), flight.get());

  gate.publish(7, flight, std::make_shared<const int>(42));
  const auto value =
      IntFlight::wait(*joined, std::chrono::milliseconds(1), [] { return false; });
  ASSERT_TRUE(value.has_value());
  ASSERT_NE(*value, nullptr);
  EXPECT_EQ(**value, 42);

  // The flight retired with publish: the next begin starts fresh.
  bool again = false;
  (void)gate.begin(7, again);
  EXPECT_TRUE(again);
}

TEST(SingleFlightGate, AbandonedFlightReturnsEmptyValue) {
  IntFlight gate;
  bool leader = false;
  auto flight = gate.begin(1, leader);
  ASSERT_TRUE(leader);
  gate.publish(1, flight, nullptr);  // leader failed/cancelled
  const auto value =
      IntFlight::wait(*flight, std::chrono::milliseconds(1), [] { return false; });
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, nullptr);
}

TEST(SingleFlightGate, WaitAbortsOnPredicate) {
  IntFlight gate;
  bool leader = false;
  auto flight = gate.begin(1, leader);
  ASSERT_TRUE(leader);
  const auto value =
      IntFlight::wait(*flight, std::chrono::milliseconds(1), [] { return true; });
  EXPECT_FALSE(value.has_value());
  gate.publish(1, flight, std::make_shared<const int>(0));  // leave no dangling flight
}

TEST(SingleFlightGate, ConcurrentBeginElectsExactlyOneLeader) {
  IntFlight gate;
  constexpr int kThreads = 8;
  std::atomic<int> begun{0};
  std::atomic<int> leaders{0};
  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      bool leader = false;
      auto flight = gate.begin(5, leader);
      begun.fetch_add(1, std::memory_order_relaxed);
      if (leader) {
        leaders.fetch_add(1, std::memory_order_relaxed);
        // Publish only after every thread has joined the flight, so a late
        // begin() can never start a second flight and elect a second leader.
        while (begun.load(std::memory_order_relaxed) < kThreads) std::this_thread::yield();
        gate.publish(5, flight, std::make_shared<const int>(99));
        served.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const auto value =
          IntFlight::wait(*flight, std::chrono::milliseconds(1), [] { return false; });
      if (value.has_value() && *value != nullptr && **value == 99)
        served.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(served.load(), kThreads);
}

}  // namespace
}  // namespace pmtbr::util
