// Thread-pool unit tests: coverage of the index range, deterministic
// parallel_map placement, exception propagation, empty ranges, nested
// usage, and the PMTBR_NUM_THREADS resolution rules.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/faultinject.hpp"
#include "util/status.hpp"

namespace pmtbr::util {
namespace {

TEST(ThreadPool, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, 0, [&](index) { ++calls; });
  pool.parallel_for(5, 5, [&](index) { ++calls; });
  pool.parallel_for(7, 3, [&](index) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr index kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](index i) { ++hits[static_cast<std::size_t>(i)]; });
  for (index i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST(ThreadPool, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](index i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(0, 8, [&](index) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](index i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a failed job and accepts new work.
  std::atomic<int> calls{0};
  pool.parallel_for(0, 10, [&](index) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, NestedParallelForCompletesSerially) {
  ThreadPool pool(4);
  constexpr index kOuter = 8;
  constexpr index kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(0, kOuter, [&](index o) {
    // Nested calls must run inline instead of deadlocking on the queue.
    pool.parallel_for(0, kInner,
                      [&](index i) { ++hits[static_cast<std::size_t>(o * kInner + i)]; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelMapPlacesResultsByIndex) {
  set_global_threads(4);
  const auto out = parallel_map<index>(64, [](index i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (index i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  set_global_threads(resolve_num_threads(nullptr));
}

TEST(ThreadPool, SetGlobalThreadsControlsPoolSize) {
  set_global_threads(3);
  EXPECT_EQ(global_pool().size(), 3);
  set_global_threads(1);
  EXPECT_EQ(global_pool().size(), 1);
  set_global_threads(resolve_num_threads(nullptr));
}

TEST(ThreadPool, ResolveNumThreadsParsesEnvOverride) {
  EXPECT_EQ(resolve_num_threads("4"), 4);
  EXPECT_EQ(resolve_num_threads("1"), 1);
  const int hw = resolve_num_threads(nullptr);
  EXPECT_GE(hw, 1);
  // Garbage, non-positive, and absurd values fall back to hardware.
  EXPECT_EQ(resolve_num_threads("zero"), hw);
  EXPECT_EQ(resolve_num_threads("4x"), hw);
  EXPECT_EQ(resolve_num_threads("0"), hw);
  EXPECT_EQ(resolve_num_threads("-2"), hw);
  EXPECT_EQ(resolve_num_threads("99999"), hw);
  EXPECT_EQ(resolve_num_threads(""), hw);
}

TEST(ParallelTryMap, OneFailingTaskDoesNotPoisonSiblings) {
  const auto out = parallel_try_map<int>(100, [](index i) -> Expected<int> {
    if (i == 37) throw std::runtime_error("boom");
    if (i == 53) return Status(ErrorCode::kNonFinite, "bad sample");
    return static_cast<int>(i) * 2;
  });
  ASSERT_EQ(out.size(), 100u);
  for (index i = 0; i < 100; ++i) {
    const auto& slot = out[static_cast<std::size_t>(i)];
    if (i == 37) {
      ASSERT_FALSE(slot.is_ok());
      EXPECT_EQ(slot.status().code(), ErrorCode::kUnhandledException);
      EXPECT_EQ(slot.status().message(), "boom");
    } else if (i == 53) {
      ASSERT_FALSE(slot.is_ok());
      EXPECT_EQ(slot.status().code(), ErrorCode::kNonFinite);
    } else {
      ASSERT_TRUE(slot.is_ok()) << i;
      EXPECT_EQ(slot.value(), static_cast<int>(i) * 2);
    }
  }
}

TEST(ParallelTryMap, StatusErrorKeepsItsTaxonomyCode) {
  const auto out = parallel_try_map<int>(4, [](index i) -> Expected<int> {
    if (i == 2)
      throw StatusError(Status(ErrorCode::kSingularMatrix, "pole hit").with_detail(9, 1e-18));
    return 1;
  });
  ASSERT_FALSE(out[2].is_ok());
  EXPECT_EQ(out[2].status().code(), ErrorCode::kSingularMatrix);
  EXPECT_EQ(out[2].status().detail_index(), 9);
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{3}})
    EXPECT_TRUE(out[k].is_ok());
}

TEST(ParallelTryMap, PoolTaskInjectionFailsOnlyCondemnedSlots) {
  fault::ScopedFault guard(fault::Site::kPoolTask, 0.5, 21);
  const auto out = parallel_try_map<int>(64, [](index i) -> Expected<int> {
    return static_cast<int>(i);
  });
  int injected = 0;
  for (index i = 0; i < 64; ++i) {
    const bool condemned = fault::decide(0.5, 21, fault::Site::kPoolTask,
                                         static_cast<std::uint64_t>(i));
    const auto& slot = out[static_cast<std::size_t>(i)];
    EXPECT_EQ(slot.is_ok(), !condemned) << i;
    if (!slot.is_ok()) {
      EXPECT_EQ(slot.status().code(), ErrorCode::kInjectedFault);
      ++injected;
    }
  }
  EXPECT_GT(injected, 0);
}

}  // namespace
}  // namespace pmtbr::util
