// Thread-pool unit tests: coverage of the index range, deterministic
// parallel_map placement, exception propagation, empty ranges, nested
// usage, and the PMTBR_NUM_THREADS resolution rules.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pmtbr::util {
namespace {

TEST(ThreadPool, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, 0, [&](index) { ++calls; });
  pool.parallel_for(5, 5, [&](index) { ++calls; });
  pool.parallel_for(7, 3, [&](index) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr index kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](index i) { ++hits[static_cast<std::size_t>(i)]; });
  for (index i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST(ThreadPool, NonZeroBeginIsRespected) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(10, 20, [&](index i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(0, 8, [&](index) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](index i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a failed job and accepts new work.
  std::atomic<int> calls{0};
  pool.parallel_for(0, 10, [&](index) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, NestedParallelForCompletesSerially) {
  ThreadPool pool(4);
  constexpr index kOuter = 8;
  constexpr index kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(0, kOuter, [&](index o) {
    // Nested calls must run inline instead of deadlocking on the queue.
    pool.parallel_for(0, kInner,
                      [&](index i) { ++hits[static_cast<std::size_t>(o * kInner + i)]; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelMapPlacesResultsByIndex) {
  set_global_threads(4);
  const auto out = parallel_map<index>(64, [](index i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (index i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  set_global_threads(resolve_num_threads(nullptr));
}

TEST(ThreadPool, SetGlobalThreadsControlsPoolSize) {
  set_global_threads(3);
  EXPECT_EQ(global_pool().size(), 3);
  set_global_threads(1);
  EXPECT_EQ(global_pool().size(), 1);
  set_global_threads(resolve_num_threads(nullptr));
}

TEST(ThreadPool, ResolveNumThreadsParsesEnvOverride) {
  EXPECT_EQ(resolve_num_threads("4"), 4);
  EXPECT_EQ(resolve_num_threads("1"), 1);
  const int hw = resolve_num_threads(nullptr);
  EXPECT_GE(hw, 1);
  // Garbage, non-positive, and absurd values fall back to hardware.
  EXPECT_EQ(resolve_num_threads("zero"), hw);
  EXPECT_EQ(resolve_num_threads("4x"), hw);
  EXPECT_EQ(resolve_num_threads("0"), hw);
  EXPECT_EQ(resolve_num_threads("-2"), hw);
  EXPECT_EQ(resolve_num_threads("99999"), hw);
  EXPECT_EQ(resolve_num_threads(""), hw);
}

}  // namespace
}  // namespace pmtbr::util
