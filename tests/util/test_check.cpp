// Contract-macro tests: exception types, message contents (expression,
// message, file:line), NDEBUG gating, and the runtime finite-check switch.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "la/matrix.hpp"
#include "util/check.hpp"

namespace pmtbr {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Check, RequireThrowsInvalidArgumentWithLocation) {
  try {
    PMTBR_REQUIRE(1 < 0, "impossible ordering");
    FAIL() << "PMTBR_REQUIRE did not throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 < 0"), std::string::npos) << what;
    EXPECT_NE(what.find("impossible ordering"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp:"), std::string::npos) << what;
  }
}

TEST(Check, RequirePassesOnTrueCondition) {
  EXPECT_NO_THROW(PMTBR_REQUIRE(2 + 2 == 4, "arithmetic"));
}

TEST(Check, EnsureThrowsRuntimeErrorWithLocation) {
  try {
    PMTBR_ENSURE(false, "did not converge");
    FAIL() << "PMTBR_ENSURE did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did not converge"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp:"), std::string::npos) << what;
  }
}

TEST(Check, EnsureIsNotInvalidArgument) {
  // The two always-on tiers must stay distinguishable for callers that
  // catch precondition violations separately from internal failures.
  EXPECT_THROW(PMTBR_ENSURE(false, "x"), std::runtime_error);
  try {
    PMTBR_ENSURE(false, "x");
  } catch (const std::invalid_argument&) {
    FAIL() << "PMTBR_ENSURE threw invalid_argument";
  } catch (const std::runtime_error&) {
  }
}

TEST(Check, DebugAssertGatedByNdebug) {
#ifdef NDEBUG
  EXPECT_NO_THROW(PMTBR_DEBUG_ASSERT(false, "compiled out"));
#else
  EXPECT_THROW(PMTBR_DEBUG_ASSERT(false, "active in debug"), std::logic_error);
  EXPECT_NO_THROW(PMTBR_DEBUG_ASSERT(true, "passes"));
#endif
}

TEST(Check, DebugAssertDoesNotEvaluateConditionUnderNdebug) {
#ifdef NDEBUG
  int evals = 0;
  PMTBR_DEBUG_ASSERT((++evals, true), "side effect");
  EXPECT_EQ(evals, 0);
#else
  GTEST_SKIP() << "condition is evaluated in debug builds by design";
#endif
}

TEST(Check, FiniteCheckRespectsRuntimeSwitch) {
  la::MatD m(2, 2, 1.0);
  m(1, 1) = kNan;
  {
    contracts::ScopedFiniteChecks off(false);
    EXPECT_NO_THROW(PMTBR_CHECK_FINITE(m, "switched off"));
  }
  {
    contracts::ScopedFiniteChecks on(true);
    EXPECT_THROW(PMTBR_CHECK_FINITE(m, "switched on"), std::runtime_error);
  }
}

TEST(Check, FiniteCheckCatchesInfinity) {
  contracts::ScopedFiniteChecks on(true);
  la::MatD m(3, 1, 0.0);
  EXPECT_NO_THROW(PMTBR_CHECK_FINITE(m, "all finite"));
  m(2, 0) = kInf;
  EXPECT_THROW(PMTBR_CHECK_FINITE(m, "has inf"), std::runtime_error);
}

TEST(Check, FiniteCheckMessageNamesTheObject) {
  contracts::ScopedFiniteChecks on(true);
  la::MatD weights(1, 1, kNan);
  try {
    PMTBR_CHECK_FINITE(weights, "sampling weights");
    FAIL() << "PMTBR_CHECK_FINITE did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("weights"), std::string::npos) << what;
    EXPECT_NE(what.find("sampling weights"), std::string::npos) << what;
  }
}

TEST(Check, ScopedFiniteChecksRestoresPreviousState) {
  const bool before = contracts::finite_checks_enabled();
  {
    contracts::ScopedFiniteChecks flip(!before);
    EXPECT_EQ(contracts::finite_checks_enabled(), !before);
    {
      contracts::ScopedFiniteChecks nested(before);
      EXPECT_EQ(contracts::finite_checks_enabled(), before);
    }
    EXPECT_EQ(contracts::finite_checks_enabled(), !before);
  }
  EXPECT_EQ(contracts::finite_checks_enabled(), before);
}

TEST(Check, IsFiniteScalarOverloads) {
  EXPECT_TRUE(la::is_finite(1.0));
  EXPECT_FALSE(la::is_finite(kNan));
  EXPECT_FALSE(la::is_finite(kInf));
  EXPECT_TRUE(la::is_finite(la::cd(1.0, -2.0)));
  EXPECT_FALSE(la::is_finite(la::cd(0.0, kNan)));
}

}  // namespace
}  // namespace pmtbr
