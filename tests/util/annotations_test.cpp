// Runtime coverage for the capability-annotated concurrency wrappers
// (util/mutex.hpp). The thread-safety attributes themselves are no-ops
// under GCC — their enforcement is exercised by the clang-gated
// negative-compile harness in tests/util/annotations_compile_fail/ —
// so these tests pin down the runtime semantics: mutual exclusion,
// scoped release, UniqueLock relock/unlock, and condition-variable
// wakeups through the wrapper types.
#include "util/mutex.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pmtbr::util {
namespace {

// Guarded state lives in a struct so the annotations sit on data members,
// the only position clang accepts them in.
struct Counter {
  Mutex mu;
  long value PMTBR_GUARDED_BY(mu) = 0;
};

TEST(Mutex, ProvidesMutualExclusion) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(c.mu);
        ++c.value;
      }
    });
  }
  for (auto& w : workers) w.join();
  MutexLock lock(c.mu);
  EXPECT_EQ(c.value, static_cast<long>(kThreads) * kIters);
}

TEST(Mutex, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread contender([&mu] { EXPECT_FALSE(mu.try_lock()); });
  contender.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexLock, ReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  // A second scoped acquisition must not deadlock.
  MutexLock lock(mu);
  SUCCEED();
}

TEST(UniqueLock, OwnsLockTracksState) {
  Mutex mu;
  UniqueLock lock(mu);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  EXPECT_TRUE(mu.try_lock());  // really released
  mu.unlock();
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

struct Gate {
  Mutex mu;
  ConditionVariable cv;
  bool ready PMTBR_GUARDED_BY(mu) = false;
  int awake PMTBR_GUARDED_BY(mu) = 0;
};

TEST(ConditionVariable, WaitWakesOnNotify) {
  Gate gate;
  std::thread producer([&gate] {
    MutexLock lock(gate.mu);
    gate.ready = true;
    gate.cv.notify_one();
  });
  {
    UniqueLock lock(gate.mu);
    while (!gate.ready) gate.cv.wait(lock);
    EXPECT_TRUE(gate.ready);
    EXPECT_TRUE(lock.owns_lock());  // wait reacquires before returning
  }
  producer.join();
}

TEST(ConditionVariable, NotifyAllWakesEveryWaiter) {
  Gate gate;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&gate] {
      UniqueLock lock(gate.mu);
      while (!gate.ready) gate.cv.wait(lock);
      ++gate.awake;
    });
  }
  {
    MutexLock lock(gate.mu);
    gate.ready = true;
  }
  gate.cv.notify_all();
  for (auto& w : waiters) w.join();
  MutexLock lock(gate.mu);
  EXPECT_EQ(gate.awake, kWaiters);
}

}  // namespace
}  // namespace pmtbr::util
