#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace pmtbr {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 5; ++i)
    if (a.uniform() != b.uniform()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, PermutationIsValid) {
  Rng rng(4);
  const auto p = rng.permutation(20);
  std::vector<char> seen(20, 0);
  for (auto v : p) {
    ASSERT_LT(v, 20u);
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.row(std::vector<double>{1.0, 2.5});
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(Csv, RejectsWrongWidth) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_THROW(w.row(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Csv, FormatDoubleRoundTrips) {
  const double v = 1.234567890123e-7;
  EXPECT_NEAR(std::stod(format_double(v)), v, 1e-20);
}

TEST(Cli, ParsesOptionsAndPositional) {
  const char* argv[] = {"prog", "--alpha=2.5", "--flag", "pos1", "--n=7"};
  ArgParser args(5, argv);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(args.get_int("n", 0), 7);
  EXPECT_EQ(args.get("none", "d"), "d");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

}  // namespace
}  // namespace pmtbr
