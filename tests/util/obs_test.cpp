// Observability layer tests: counters, scoped tracing, the shared JSON
// emitter, run manifests, and the counter semantics the solver stack
// promises (symbolic-cache hits, thread-pool accounting) — including
// concurrent stress that must stay clean under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "sparse/factor_cache.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/json.hpp"
#include "util/obs/manifest.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::obs {
namespace {

// Restores the trace flag and wipes counters/trace stats around each test so
// suites stay order-independent within one process.
class ObsEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = trace_enabled();
    set_trace_enabled(false);
    reset_counters();
    reset_trace();
  }
  void TearDown() override {
    set_trace_enabled(was_enabled_);
    reset_counters();
    reset_trace();
  }

 private:
  bool was_enabled_ = false;
};

using ObsCounters = ObsEnv;
using ObsTrace = ObsEnv;
using ObsManifest = ObsEnv;
using ObsSymbolicCache = ObsEnv;
using ObsThreadPool = ObsEnv;

TEST_F(ObsCounters, AddValueAndReset) {
  EXPECT_EQ(counter_value(Counter::kPmtbrSamples), 0);
  counter_add(Counter::kPmtbrSamples);
  counter_add(Counter::kPmtbrSamples, 41);
  EXPECT_EQ(counter_value(Counter::kPmtbrSamples), 42);
  reset_counters();
  EXPECT_EQ(counter_value(Counter::kPmtbrSamples), 0);
}

TEST_F(ObsCounters, SnapshotCoversEveryCounterWithUniqueNames) {
  counter_add(Counter::kGemmFlops, 1000);
  const auto snap = counters_snapshot();
  ASSERT_EQ(static_cast<int>(snap.size()), kNumCounters);
  std::set<std::string> names;
  for (const auto& [name, value] : snap) {
    EXPECT_FALSE(name.empty());
    // snake_case, JSON-key safe.
    for (const char ch : name)
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch == '_')
          << name;
    names.insert(name);
  }
  EXPECT_EQ(static_cast<int>(names.size()), kNumCounters) << "duplicate counter name";
  bool found = false;
  for (const auto& [name, value] : snap)
    if (name == "gemm_flops") {
      found = true;
      EXPECT_EQ(value, 1000);
    }
  EXPECT_TRUE(found);
}

TEST_F(ObsTrace, DisabledScopesRecordNothing) {
  {
    PMTBR_TRACE_SCOPE("should_not_appear");
  }
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(ObsTrace, NestedScopesAggregateByFullPath) {
  set_trace_enabled(true);
  for (int rep = 0; rep < 3; ++rep) {
    PMTBR_TRACE_SCOPE("outer");
    {
      PMTBR_TRACE_SCOPE("inner");
    }
    {
      PMTBR_TRACE_SCOPE("inner");
    }
  }
  const auto snap = trace_snapshot();
  ASSERT_EQ(snap.size(), 2u);  // sorted by path
  EXPECT_EQ(snap[0].path, "outer");
  EXPECT_EQ(snap[0].count, 3);
  EXPECT_EQ(snap[1].path, "outer/inner");
  EXPECT_EQ(snap[1].count, 6);
  EXPECT_GE(snap[0].seconds, 0.0);
  EXPECT_GE(snap[0].seconds, snap[1].seconds * 0.999);  // parent encloses children

  reset_trace();
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(ObsTrace, WorkerThreadsCarryIndependentPaths) {
  set_trace_enabled(true);
  util::ThreadPool pool(3);
  constexpr util::index kIters = 64;
  {
    PMTBR_TRACE_SCOPE("caller_root");
    pool.parallel_for(0, kIters, [](util::index) { PMTBR_TRACE_SCOPE("work"); });
  }
  long long total_work = 0;
  for (const auto& s : trace_snapshot()) {
    // Chunks run by the caller nest under its open scope; chunks claimed by
    // workers start a fresh chain. Either way the leaf is "work".
    if (s.path == "work" || s.path == "caller_root/work") total_work += s.count;
  }
  EXPECT_EQ(total_work, kIters);
}

TEST(ObsJson, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(json_escape("line\nfeed"), "line\\nfeed");
}

TEST(ObsJson, DoublesAreLocaleIndependentAndFinite) {
  EXPECT_EQ(json_double(0.0), "0.0");
  EXPECT_EQ(json_double(-3.0), "-3.0");
  const std::string half = json_double(0.5);
  EXPECT_NE(half.find('.'), std::string::npos);
  EXPECT_EQ(half.find(','), std::string::npos);  // never locale decimal comma
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(std::nan("")), "null");
  // Round-trips exactly through to_chars shortest form.
  EXPECT_EQ(std::stod(json_double(6.02e23)), 6.02e23);
}

TEST(ObsJson, WriterEmitsWellFormedNesting) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("name");
  w.value("a \"quoted\" label");
  w.key("count");
  w.value(static_cast<std::int64_t>(7));
  w.key("items");
  w.begin_array();
  w.value(1.5);
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  w.done();
  const std::string s = out.str();
  EXPECT_NE(s.find("\"name\": \"a \\\"quoted\\\" label\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"count\": 7"), std::string::npos) << s;
  EXPECT_NE(s.find("1.5"), std::string::npos) << s;
  EXPECT_NE(s.find("true"), std::string::npos) << s;
  EXPECT_NE(s.find("null"), std::string::npos) << s;
  // Balanced delimiters.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'), std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['), std::count(s.begin(), s.end(), ']'));
}

TEST_F(ObsManifest, ContainsSchemaCountersAndExtras) {
  counter_add(Counter::kShiftedSolve, 5);
  set_trace_enabled(true);
  {
    PMTBR_TRACE_SCOPE("manifest_scope");
  }
  const std::string json = manifest_json(
      "unit_test", {{"seed", "1234"}, {"tag", "\"quick\""}});
  EXPECT_NE(json.find("\"schema\": \"pmtbr-manifest/1\""), std::string::npos);
  EXPECT_NE(json.find("\"run\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"git_describe\""), std::string::npos);
  EXPECT_NE(json.find("\"shifted_solve\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 1234"), std::string::npos);
  EXPECT_NE(json.find("\"tag\": \"quick\""), std::string::npos);
  EXPECT_NE(json.find("manifest_scope"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(ObsManifest, WriteManifestProducesReadableFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "pmtbr_obs_manifest_test.json").string();
  ASSERT_TRUE(write_manifest(path, "file_test"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), manifest_json("file_test"));
  std::remove(path.c_str());
}

TEST_F(ObsSymbolicCache, HitsEqualShiftCountMinusOne) {
  // The shifted-pencil symbolic analysis is built exactly once per system;
  // every subsequent solve — at ANY shift — reuses it. N distinct shifts
  // must therefore record 1 miss and N-1 hits.
  circuit::RcMeshParams mp;
  mp.rows = 6;
  mp.cols = 6;
  mp.num_ports = 4;
  const auto sys = circuit::make_rc_mesh(mp);
  const la::MatC rhs = la::to_complex(sys.b());

  // An identically parameterized mesh from an earlier test shares this
  // system's content fingerprint; drop any warm numeric factors so the
  // factor counts below see a cold cache.
  sparse::FactorCache::global().clear();
  reset_counters();
  constexpr int kShifts = 6;
  for (int k = 0; k < kShifts; ++k)
    (void)sys.solve_shifted(la::cd(0.0, 1e9 * (k + 1)), rhs);

  EXPECT_EQ(counter_value(Counter::kSymbolicCacheMiss), 1);
  EXPECT_EQ(counter_value(Counter::kSymbolicCacheHit), kShifts - 1);
  EXPECT_EQ(counter_value(Counter::kShiftedSolve), kShifts);
  EXPECT_GE(counter_value(Counter::kSparseLuFullFactor) +
                counter_value(Counter::kSparseLuRefactor),
            kShifts);
}

TEST_F(ObsThreadPool, CountersStayConsistentWhenNestedWorkThrows) {
  util::ThreadPool pool(4);
  reset_counters();

  std::atomic<int> inner_iters{0};
  EXPECT_THROW(
      pool.parallel_for(0, 8,
                        [&](util::index i) {
                          // Nested parallel_for: inline when this chunk runs
                          // on a worker, a fresh fan-out when it runs on the
                          // caller thread (which is not a pool task).
                          pool.parallel_for(0, 4, [&](util::index) {
                            inner_iters.fetch_add(1, std::memory_order_relaxed);
                          });
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // Every nested call ran to completion (4 iterations) before the outer
  // exception unwound, and each one was recorded exactly once: either as an
  // inline run or as a pooled fan-out beyond the outer one.
  ASSERT_EQ(inner_iters.load() % 4, 0);
  const auto fanouts = counter_value(Counter::kPoolParallelFor);
  EXPECT_GE(fanouts, 1);
  EXPECT_EQ(counter_value(Counter::kPoolInlineFor) + (fanouts - 1),
            inner_iters.load() / 4);
  // Chunk attribution covers at least the work that actually started and
  // never exceeds the outer range plus the nested pooled ranges.
  const auto chunks = counter_value(Counter::kPoolChunksCaller) +
                      counter_value(Counter::kPoolChunksWorker);
  EXPECT_GE(chunks, 1);
  EXPECT_LE(chunks, 8 + 4 * (fanouts - 1));

  // The pool is fully usable after the exception unwound.
  std::atomic<int> after{0};
  pool.parallel_for(0, 16, [&](util::index) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 16);
}

TEST_F(ObsThreadPool, ConcurrentCounterAndTraceStress) {
  // Hammers counters and trace scopes from every pool thread at once; the
  // totals must be exact and the run must be clean under TSan.
  set_trace_enabled(true);
  util::ThreadPool pool(4);
  constexpr util::index kIters = 512;
  reset_counters();
  pool.parallel_for(0, kIters, [](util::index) {
    PMTBR_TRACE_SCOPE("stress");
    {
      PMTBR_TRACE_SCOPE("leaf");
      counter_add(Counter::kPmtbrSamples);
    }
    counter_add(Counter::kAcSweepPoints, 2);
  });
  EXPECT_EQ(counter_value(Counter::kPmtbrSamples), kIters);
  EXPECT_EQ(counter_value(Counter::kAcSweepPoints), 2 * kIters);

  long long stress = 0, leaf = 0;
  for (const auto& s : trace_snapshot()) {
    if (s.path.ends_with("stress")) stress += s.count;
    if (s.path.ends_with("leaf")) leaf += s.count;
  }
  EXPECT_EQ(stress, kIters);
  EXPECT_EQ(leaf, kIters);
}

}  // namespace
}  // namespace pmtbr::obs
