// Symbolic/numeric LU split: one SymbolicLu analysis must produce correct
// numeric factorizations across many shifts of the same pencil pattern.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "circuit/generators.hpp"
#include "la/lu.hpp"
#include "la/ops.hpp"
#include "sparse/csr.hpp"
#include "sparse/splu.hpp"

namespace pmtbr::sparse {
namespace {

using la::cd;
using la::index;

std::vector<cd> random_rhs(index n) {
  std::vector<cd> b(static_cast<std::size_t>(n));
  for (index i = 0; i < n; ++i)
    b[static_cast<std::size_t>(i)] =
        cd(std::sin(static_cast<double>(i) + 1.0), std::cos(2.0 * static_cast<double>(i)));
  return b;
}

double relative_residual(const CsrC& a, const std::vector<cd>& x, const std::vector<cd>& b) {
  const auto ax = a.matvec(x);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    num += std::norm(ax[i] - b[i]);
    den += std::norm(b[i]);
  }
  return std::sqrt(num / den);
}

TEST(SymbolicLu, OneAnalysisServesManyShifts) {
  circuit::RcLineParams p;
  p.segments = 60;
  const auto sys = circuit::make_rc_line(p);

  // Shifts spanning six decades — far from the representative used for the
  // symbolic analysis.
  const std::vector<cd> shifts{cd(0.0, 1e6), cd(0.0, 1e9), cd(0.0, 1e12), cd(1e7, 5e8)};
  const SymbolicLuC symbolic(shifted_pencil(shifts.front(), sys.e(), sys.a()), sys.ordering());
  EXPECT_EQ(symbolic.n(), sys.n());
  EXPECT_GT(symbolic.nnz_factors(), 0u);

  const auto b = random_rhs(sys.n());
  for (const cd s : shifts) {
    const CsrC pencil = shifted_pencil(s, sys.e(), sys.a());
    const auto lu = SparseLuC::try_refactor(symbolic, pencil);
    ASSERT_TRUE(lu.has_value()) << "refactor rejected shift " << s.real() << "+" << s.imag() << "i";
    EXPECT_LT(relative_residual(pencil, lu->solve(b), b), 1e-10);
  }
}

TEST(SymbolicLu, RefactorMatchesFullFactorization) {
  circuit::RcMeshParams p;
  p.rows = 8;
  p.cols = 8;
  p.num_ports = 2;
  const auto sys = circuit::make_rc_mesh(p);

  const cd s0(0.0, 2e9);
  const cd s1(0.0, 7e10);
  const SymbolicLuC symbolic(shifted_pencil(s0, sys.e(), sys.a()), sys.ordering());
  const CsrC pencil = shifted_pencil(s1, sys.e(), sys.a());
  const auto refac = SparseLuC::try_refactor(symbolic, pencil);
  ASSERT_TRUE(refac.has_value());
  const SparseLuC full(pencil, sys.ordering());

  const auto b = random_rhs(sys.n());
  const auto x_re = refac->solve(b);
  const auto x_full = full.solve(b);
  for (std::size_t i = 0; i < x_re.size(); ++i)
    EXPECT_LT(std::abs(x_re[i] - x_full[i]), 1e-9 * (1.0 + std::abs(x_full[i]))) << i;
}

TEST(SymbolicLu, RefactorSupportsTransposeAndAdjointSolves) {
  circuit::RcLineParams p;
  p.segments = 25;
  const auto sys = circuit::make_rc_line(p);

  const cd s0(0.0, 1e8);
  const cd s1(0.0, 4e10);
  const SymbolicLuC symbolic(shifted_pencil(s0, sys.e(), sys.a()), sys.ordering());
  const CsrC pencil = shifted_pencil(s1, sys.e(), sys.a());
  const auto lu = SparseLuC::try_refactor(symbolic, pencil);
  ASSERT_TRUE(lu.has_value());

  const la::MatC dense = pencil.to_dense();
  const auto b = random_rhs(sys.n());

  // A^T x = b via dense reference.
  const la::LuC dense_t(la::transpose(dense));
  const auto xt = lu->solve_transpose(b);
  const auto xt_ref = dense_t.solve(b);
  for (std::size_t i = 0; i < xt.size(); ++i)
    EXPECT_LT(std::abs(xt[i] - xt_ref[i]), 1e-8 * (1.0 + std::abs(xt_ref[i])));

  // A^H x = b via dense reference.
  const la::LuC dense_h(la::adjoint(dense));
  const auto xh = lu->solve_adjoint(b);
  const auto xh_ref = dense_h.solve(b);
  for (std::size_t i = 0; i < xh.size(); ++i)
    EXPECT_LT(std::abs(xh[i] - xh_ref[i]), 1e-8 * (1.0 + std::abs(xh_ref[i])));
}

TEST(SymbolicLu, SymbolicHarvestedFromFullFactorization) {
  circuit::RcLineParams p;
  p.segments = 30;
  const auto sys = circuit::make_rc_line(p);

  const cd s0(0.0, 1e9);
  const CsrC pencil0 = shifted_pencil(s0, sys.e(), sys.a());
  const SparseLuC full(pencil0, sys.ordering());
  const SymbolicLuC symbolic = full.symbolic();

  const cd s1(0.0, 3e11);
  const CsrC pencil1 = shifted_pencil(s1, sys.e(), sys.a());
  const auto lu = SparseLuC::try_refactor(symbolic, pencil1);
  ASSERT_TRUE(lu.has_value());
  const auto b = random_rhs(sys.n());
  EXPECT_LT(relative_residual(pencil1, lu->solve(b), b), 1e-10);
}

TEST(SymbolicLu, RejectsPatternMismatch) {
  circuit::RcLineParams p;
  p.segments = 10;
  const auto sys = circuit::make_rc_line(p);
  const SymbolicLuC symbolic(shifted_pencil(cd(0.0, 1e9), sys.e(), sys.a()), sys.ordering());

  circuit::RcLineParams p2;
  p2.segments = 12;  // different size
  const auto other = circuit::make_rc_line(p2);
  EXPECT_THROW(SparseLuC::try_refactor(symbolic, shifted_pencil(cd(0.0, 1e9), other.e(), other.a())),
               std::invalid_argument);
}

}  // namespace
}  // namespace pmtbr::sparse
