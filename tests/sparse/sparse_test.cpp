// CSR storage, combine/shifted-pencil, RCM ordering, and sparse LU tests.
#include <gtest/gtest.h>

#include "la/lu.hpp"
#include "la/ops.hpp"
#include "sparse/csr.hpp"
#include "sparse/rcm.hpp"
#include "sparse/splu.hpp"
#include "helpers.hpp"

namespace pmtbr::sparse {
namespace {

using la::MatD;
using pmtbr::Rng;

CsrD tridiag(index n, double diag, double off) {
  Triplets<double> t(n, n);
  for (index i = 0; i < n; ++i) {
    t.add(i, i, diag);
    if (i + 1 < n) {
      t.add(i, i + 1, off);
      t.add(i + 1, i, off);
    }
  }
  return CsrD(t);
}

CsrD random_sparse(index n, double density, Rng& rng) {
  Triplets<double> t(n, n);
  for (index i = 0; i < n; ++i) {
    t.add(i, i, 4.0 + rng.uniform());  // keep it comfortably nonsingular
    for (index j = 0; j < n; ++j)
      if (i != j && rng.uniform() < density) t.add(i, j, rng.normal());
  }
  return CsrD(t);
}

TEST(Csr, TripletsSumDuplicates) {
  Triplets<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.5);
  t.add(1, 0, -1.0);
  const CsrD m(t);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(Csr, ZeroEntriesSkipped) {
  Triplets<double> t(2, 2);
  t.add(0, 1, 0.0);
  EXPECT_EQ(t.nnz(), 0u);
}

TEST(Csr, OutOfRangeThrows) {
  Triplets<double> t(2, 2);
  EXPECT_THROW(t.add(2, 0, 1.0), std::invalid_argument);
}

TEST(Csr, MatvecMatchesDense) {
  Rng rng(41);
  const CsrD m = random_sparse(20, 0.2, rng);
  const MatD d = m.to_dense();
  const auto x = rng.normal_vec(20);
  const auto ys = m.matvec(x);
  const auto yd = la::matvec(d, x);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Csr, MatvecTransposeMatchesDense) {
  Rng rng(42);
  const CsrD m = random_sparse(15, 0.3, rng);
  const MatD dt = la::transpose(m.to_dense());
  const auto x = rng.normal_vec(15);
  const auto ys = m.matvec_transpose(x);
  const auto yd = la::matvec(dt, x);
  for (std::size_t i = 0; i < 15; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Csr, CombineUnionPattern) {
  Triplets<double> ta(2, 2), tb(2, 2);
  ta.add(0, 0, 1.0);
  tb.add(1, 1, 2.0);
  tb.add(0, 0, 3.0);
  const CsrD c = combine(2.0, CsrD(ta), -1.0, CsrD(tb));
  EXPECT_DOUBLE_EQ(c.at(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), -2.0);
}

TEST(Csr, ShiftedPencil) {
  Triplets<double> te(2, 2), ta(2, 2);
  te.add(0, 0, 2.0);
  ta.add(0, 0, -1.0);
  ta.add(1, 1, -3.0);
  const CsrC p = shifted_pencil(la::cd(0.0, 1.0), CsrD(te), CsrD(ta));
  EXPECT_NEAR(p.at(0, 0).real(), 1.0, 1e-15);   // -(-1)
  EXPECT_NEAR(p.at(0, 0).imag(), 2.0, 1e-15);   // 1i * 2
  EXPECT_NEAR(p.at(1, 1).real(), 3.0, 1e-15);
}

TEST(Rcm, PermutationIsValid) {
  Rng rng(43);
  const CsrD m = random_sparse(30, 0.1, rng);
  const auto p = rcm_ordering(m);
  ASSERT_EQ(p.size(), 30u);
  std::vector<char> seen(30, 0);
  for (index v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 30);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

TEST(Rcm, ReducesTridiagonalBandwidthUnderShuffle) {
  // A shuffled tridiagonal matrix: RCM should recover bandwidth O(1).
  const index n = 40;
  Rng rng(44);
  const auto shuffle = rng.permutation(static_cast<std::size_t>(n));
  Triplets<double> t(n, n);
  const auto sid = [&](index i) { return static_cast<index>(shuffle[static_cast<std::size_t>(i)]); };
  for (index i = 0; i < n; ++i) {
    t.add(sid(i), sid(i), 4.0);
    if (i + 1 < n) {
      t.add(sid(i), sid(i + 1), -1.0);
      t.add(sid(i + 1), sid(i), -1.0);
    }
  }
  const CsrD m(t);
  const auto p = rcm_ordering(m);
  const CsrD pm = permute_symmetric(m, p);
  index bw = 0;
  for (index i = 0; i < n; ++i)
    for (index k = pm.row_ptr()[static_cast<std::size_t>(i)];
         k < pm.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
      bw = std::max(bw, std::abs(i - pm.col_idx()[static_cast<std::size_t>(k)]));
  EXPECT_LE(bw, 3);
}

TEST(Rcm, InvertPermutationRoundTrip) {
  std::vector<index> p{2, 0, 1};
  const auto inv = invert_permutation(p);
  EXPECT_EQ(inv[2], 0);
  EXPECT_EQ(inv[0], 1);
  EXPECT_EQ(inv[1], 2);
}

TEST(SparseLu, SolvesTridiagonal) {
  const index n = 25;
  const CsrD m = tridiag(n, 4.0, -1.0);
  const SparseLuD lu(m);
  Rng rng(45);
  const auto b = rng.normal_vec(static_cast<std::size_t>(n));
  const auto x = lu.solve(b);
  const auto back = m.matvec(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b[i], 1e-11);
}

TEST(SparseLu, MatchesDenseLuOnRandom) {
  Rng rng(46);
  const CsrD m = random_sparse(30, 0.15, rng);
  const auto b = rng.normal_vec(30);
  const auto xs = SparseLuD(m).solve(b);
  const auto xd = la::LuD(m.to_dense()).solve(b);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseLu, WithRcmOrdering) {
  Rng rng(47);
  const CsrD m = random_sparse(40, 0.08, rng);
  const auto b = rng.normal_vec(40);
  const auto x = SparseLuD(m, rcm_ordering(m)).solve(b);
  const auto back = m.matvec(x);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_NEAR(back[i], b[i], 1e-9);
}

TEST(SparseLu, TransposeSolve) {
  Rng rng(48);
  const CsrD m = random_sparse(20, 0.2, rng);
  const auto b = rng.normal_vec(20);
  const auto x = SparseLuD(m).solve_transpose(b);
  const auto back = m.matvec_transpose(x);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
}

TEST(SparseLu, ComplexShiftedSystem) {
  const index n = 30;
  const CsrD e = tridiag(n, 1.0, 0.1);
  const CsrD a = tridiag(n, -2.0, 0.5);
  const la::cd s(0.3, 2.0);
  const CsrC pencil = shifted_pencil(s, e, a);
  const SparseLuC lu(pencil);
  std::vector<la::cd> b(static_cast<std::size_t>(n));
  Rng rng(49);
  for (auto& v : b) v = la::cd(rng.normal(), rng.normal());
  const auto x = lu.solve(b);
  const auto back = pencil.matvec(x);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(back[i].real(), b[i].real(), 1e-10);
    EXPECT_NEAR(back[i].imag(), b[i].imag(), 1e-10);
  }
}

TEST(SparseLu, AdjointSolve) {
  const index n = 12;
  const CsrD e = tridiag(n, 1.0, 0.2);
  const CsrD a = tridiag(n, -3.0, 0.7);
  const CsrC pencil = shifted_pencil(la::cd(0.0, 1.5), e, a);
  const SparseLuC lu(pencil);
  std::vector<la::cd> b(static_cast<std::size_t>(n), la::cd(1.0, -1.0));
  const auto x = lu.solve_adjoint(b);
  // Verify A^H x = b via dense adjoint.
  const la::MatC dh = la::adjoint(pencil.to_dense());
  const auto back = la::matvec(dh, x);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(back[i].real(), b[i].real(), 1e-10);
    EXPECT_NEAR(back[i].imag(), b[i].imag(), 1e-10);
  }
}

TEST(SparseLu, SingularThrows) {
  Triplets<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 1.0);  // second row empty -> structurally singular
  const CsrD m(t);
  EXPECT_THROW(SparseLuD{m}, std::runtime_error);
}

class SparseLuSizes : public ::testing::TestWithParam<int> {};

TEST_P(SparseLuSizes, ResidualSmallWithOrdering) {
  const index n = GetParam();
  Rng rng(500 + static_cast<std::uint64_t>(n));
  const CsrD m = random_sparse(n, 4.0 / static_cast<double>(n), rng);
  const auto b = rng.normal_vec(static_cast<std::size_t>(n));
  const auto x = SparseLuD(m, rcm_ordering(m)).solve(b);
  const auto back = m.matvec(x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(back[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLuSizes, ::testing::Values(5, 10, 50, 100, 300));

}  // namespace
}  // namespace pmtbr::sparse
