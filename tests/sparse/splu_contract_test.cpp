// Sparse LU failure modes: singular and structurally rank-deficient inputs
// must fail loudly with std::runtime_error (internal ENSURE tier), shape
// violations with std::invalid_argument, and NaN values are caught at the
// factorization boundary when finite checks are on.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/splu.hpp"

namespace pmtbr::sparse {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

CsrD identity_csr(index n) {
  Triplets<double> t(n, n);
  for (index i = 0; i < n; ++i) t.add(i, i, 1.0);
  return CsrD(t);
}

TEST(SpluContract, NumericallySingularThrowsRuntimeError) {
  // Rank 1: second row is a copy of the first. Every pivot candidate in the
  // second column vanishes after elimination.
  Triplets<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 2.0);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::runtime_error);
}

TEST(SpluContract, StructurallyRankDeficientThrowsRuntimeError) {
  // Row 1 has no entries at all: no amount of pivoting can produce a
  // nonzero pivot for it.
  Triplets<double> t(3, 3);
  t.add(0, 0, 2.0);
  t.add(2, 2, 3.0);
  t.add(0, 2, 1.0);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::runtime_error);
}

TEST(SpluContract, EmptyColumnThrowsRuntimeError) {
  // Column 1 is structurally empty — the transposed deficiency.
  Triplets<double> t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 0, 2.0);
  t.add(1, 2, 1.0);
  t.add(2, 2, 5.0);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::runtime_error);
}

TEST(SpluContract, NonSquareThrowsInvalidArgument) {
  Triplets<double> t(2, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::invalid_argument);
}

TEST(SpluContract, RhsLengthMismatchThrowsInvalidArgument) {
  const SparseLuD lu(identity_csr(3));
  EXPECT_THROW(lu.solve(std::vector<double>(2, 1.0)), std::invalid_argument);
  EXPECT_THROW(lu.solve_transpose(std::vector<double>(4, 1.0)), std::invalid_argument);
}

TEST(SpluContract, BadPermutationLengthThrowsInvalidArgument) {
  EXPECT_THROW(SparseLuD(identity_csr(3), std::vector<index>{0, 1}), std::invalid_argument);
}

TEST(SpluContract, NanValueCaughtWhenFiniteChecksOn) {
  contracts::ScopedFiniteChecks on(true);
  Triplets<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, kNan);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::runtime_error);
}

TEST(SpluContract, WellPosedSystemStillSolves) {
  const SparseLuD lu(identity_csr(4));
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  const auto x = lu.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

}  // namespace
}  // namespace pmtbr::sparse
