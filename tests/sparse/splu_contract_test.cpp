// Sparse LU failure modes: singular and structurally rank-deficient inputs
// must fail loudly with std::runtime_error (internal ENSURE tier), shape
// violations with std::invalid_argument, and NaN values are caught at the
// factorization boundary when finite checks are on.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/splu.hpp"
#include "util/faultinject.hpp"
#include "util/status.hpp"

namespace pmtbr::sparse {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

CsrD identity_csr(index n) {
  Triplets<double> t(n, n);
  for (index i = 0; i < n; ++i) t.add(i, i, 1.0);
  return CsrD(t);
}

TEST(SpluContract, NumericallySingularThrowsRuntimeError) {
  // Rank 1: second row is a copy of the first. Every pivot candidate in the
  // second column vanishes after elimination.
  Triplets<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 2.0);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::runtime_error);
}

TEST(SpluContract, StructurallyRankDeficientThrowsRuntimeError) {
  // Row 1 has no entries at all: no amount of pivoting can produce a
  // nonzero pivot for it.
  Triplets<double> t(3, 3);
  t.add(0, 0, 2.0);
  t.add(2, 2, 3.0);
  t.add(0, 2, 1.0);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::runtime_error);
}

TEST(SpluContract, EmptyColumnThrowsRuntimeError) {
  // Column 1 is structurally empty — the transposed deficiency.
  Triplets<double> t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 0, 2.0);
  t.add(1, 2, 1.0);
  t.add(2, 2, 5.0);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::runtime_error);
}

TEST(SpluContract, NonSquareThrowsInvalidArgument) {
  Triplets<double> t(2, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::invalid_argument);
}

TEST(SpluContract, RhsLengthMismatchThrowsInvalidArgument) {
  const SparseLuD lu(identity_csr(3));
  EXPECT_THROW(lu.solve(std::vector<double>(2, 1.0)), std::invalid_argument);
  EXPECT_THROW(lu.solve_transpose(std::vector<double>(4, 1.0)), std::invalid_argument);
}

TEST(SpluContract, BadPermutationLengthThrowsInvalidArgument) {
  EXPECT_THROW(SparseLuD(identity_csr(3), std::vector<index>{0, 1}), std::invalid_argument);
}

TEST(SpluContract, NanValueCaughtWhenFiniteChecksOn) {
  contracts::ScopedFiniteChecks on(true);
  Triplets<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, kNan);
  EXPECT_THROW(SparseLuD{CsrD(t)}, std::runtime_error);
}

TEST(SpluContract, WellPosedSystemStillSolves) {
  const SparseLuD lu(identity_csr(4));
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  const auto x = lu.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

CsrD dense2x2(double a00, double a01, double a10, double a11) {
  Triplets<double> t(2, 2);
  t.add(0, 0, a00);
  t.add(0, 1, a01);
  t.add(1, 0, a10);
  t.add(1, 1, a11);
  return CsrD(t);
}

TEST(SpluStatus, FactorReportsSingularityWithDetail) {
  Triplets<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 2.0);
  const auto lu = SparseLuD::factor(CsrD(t));
  ASSERT_FALSE(lu.is_ok());
  EXPECT_EQ(lu.status().code(), util::ErrorCode::kSingularMatrix);
  EXPECT_EQ(lu.status().detail_index(), 1);  // elimination dies in column 1
}

TEST(SpluStatus, RefactorRejectsDegenerateFrozenPivotWithDetail) {
  // Representative prefers the diagonal pivot in column 0; the replayed
  // values make that frozen pivot 16 orders below the column's best
  // candidate — far under the default refactor_pivot_tol of 1e-10.
  const auto base = SparseLuD::factor(dense2x2(1.0, 2.0, 3.0, 4.0));
  ASSERT_TRUE(base.is_ok());
  const SymbolicLuD symbolic = base.value().symbolic();

  const CsrD shaky = dense2x2(1e-16, 1.0, 1.0, 1.0);
  const auto replay = SparseLuD::refactor(symbolic, shaky);
  ASSERT_FALSE(replay.is_ok());
  EXPECT_EQ(replay.status().code(), util::ErrorCode::kDegeneratePivot);
  EXPECT_EQ(replay.status().detail_index(), 0);  // the degenerate pivot position
  EXPECT_NEAR(replay.status().detail_value(), 1e-16, 1e-18);
  // The optional-based legacy entry point agrees.
  EXPECT_FALSE(SparseLuD::try_refactor(symbolic, shaky).has_value());
}

TEST(SpluStatus, RefactorPivotTolIsAnHonestKnob) {
  const auto base = SparseLuD::factor(dense2x2(1.0, 2.0, 3.0, 4.0));
  ASSERT_TRUE(base.is_ok());
  const SymbolicLuD symbolic = base.value().symbolic();

  // tol = 0 accepts even the degenerate replay (caller opted out) and the
  // factors still solve the system they were given.
  const CsrD shaky = dense2x2(1e-16, 1.0, 1.0, 1.0);
  SolveOptions accept_all;
  accept_all.refactor_pivot_tol = 0.0;
  const auto forced = SparseLuD::refactor(symbolic, shaky, accept_all);
  ASSERT_TRUE(forced.is_ok());

  // tol = 1 rejects a replay whose frozen pivot is merely 2x below the best
  // candidate; the default accepts it.
  const CsrD mild = dense2x2(0.5, 1.0, 1.0, 1.0);
  SolveOptions strict;
  strict.refactor_pivot_tol = 1.0;
  EXPECT_FALSE(SparseLuD::refactor(symbolic, mild, strict).is_ok());
  EXPECT_TRUE(SparseLuD::refactor(symbolic, mild).is_ok());
}

TEST(SpluStatus, InjectionSitesFireDeterministically) {
  {
    util::fault::ScopedFault guard(util::fault::Site::kSpluPivot, 1.0);
    const auto lu = SparseLuD::factor(identity_csr(3));
    ASSERT_FALSE(lu.is_ok());
    EXPECT_EQ(lu.status().code(), util::ErrorCode::kInjectedFault);
  }
  const auto base = SparseLuD::factor(identity_csr(3));
  ASSERT_TRUE(base.is_ok());
  {
    util::fault::ScopedFault guard(util::fault::Site::kSpluRefactor, 1.0);
    const auto replay = SparseLuD::refactor(base.value().symbolic(), identity_csr(3));
    ASSERT_FALSE(replay.is_ok());
    EXPECT_EQ(replay.status().code(), util::ErrorCode::kInjectedFault);
  }
  // Guards gone: both paths work again.
  EXPECT_TRUE(SparseLuD::factor(identity_csr(3)).is_ok());
  EXPECT_TRUE(SparseLuD::refactor(base.value().symbolic(), identity_csr(3)).is_ok());
}

}  // namespace
}  // namespace pmtbr::sparse
