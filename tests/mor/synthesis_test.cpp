// Pole/residue extraction, Foster RC synthesis, and the full
// reduce -> synthesize -> serialize -> parse -> verify round trip.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "circuit/parser.hpp"
#include "circuit/writer.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/synthesis.hpp"
#include "mor/tbr.hpp"

namespace pmtbr::mor {
namespace {

TEST(PoleResidue, FirstOrderAnalytic) {
  // H(s) = 6 / (s + 2): pole -2, residue 6.
  MatD a{{-2.0}}, b{{3.0}}, c{{2.0}};
  const auto pr = pole_residue(DenseSystem::standard(a, b, c));
  ASSERT_EQ(pr.poles.size(), 1u);
  EXPECT_NEAR(pr.poles[0].real(), -2.0, 1e-12);
  EXPECT_NEAR(pr.residues[0].real(), 6.0, 1e-12);
}

TEST(PoleResidue, MatchesTransferOnGrid) {
  const auto sys = circuit::make_rc_line({.segments = 12});
  TbrOptions opts;
  opts.fixed_order = 5;
  const auto red = tbr(sys, opts);
  const auto pr = pole_residue(red.model.system);
  for (const double f : {1e7, 1e8, 1e9, 1e10}) {
    const cd s(0.0, 2.0 * std::numbers::pi * f);
    const cd direct = red.model.system.transfer(s)(0, 0);
    const cd via_pr = evaluate(pr, s);
    EXPECT_LT(std::abs(direct - via_pr) / std::abs(direct), 1e-7) << "f=" << f;
  }
}

TEST(PoleResidue, DescriptorFormHandled) {
  MatD e{{2.0}}, a{{-4.0}}, b{{1.0}}, c{{1.0}};
  const auto pr = pole_residue(DenseSystem(e, a, b, c));
  // H = 1/(2s+4) = 0.5/(s+2).
  EXPECT_NEAR(pr.poles[0].real(), -2.0, 1e-12);
  EXPECT_NEAR(pr.residues[0].real(), 0.5, 1e-12);
}

TEST(Foster, SingleTermIsParallelRc) {
  PoleResidue pr;
  pr.poles = {cd(-1e9, 0.0)};
  pr.residues = {cd(1e12, 0.0)};
  const auto nl = synthesize_foster_rc(pr);
  const auto sys = circuit::assemble_mna(nl);
  // Z(s) = r/(s+p) with C = 1/r, R = r/p.
  for (const double f : {1e7, 1e9}) {
    const cd s(0.0, 2.0 * std::numbers::pi * f);
    const cd z = sys.transfer(s)(0, 0);
    const cd expected = 1e12 / (s + 1e9);
    EXPECT_LT(std::abs(z - expected) / std::abs(expected), 1e-10);
  }
}

TEST(Foster, RejectsNonRcFunctions) {
  PoleResidue complex_pole;
  complex_pole.poles = {cd(-1e8, 1e9)};
  complex_pole.residues = {cd(1.0, 0.0)};
  EXPECT_THROW(synthesize_foster_rc(complex_pole), std::invalid_argument);

  PoleResidue unstable;
  unstable.poles = {cd(1e8, 0.0)};
  unstable.residues = {cd(1.0, 0.0)};
  EXPECT_THROW(synthesize_foster_rc(unstable), std::invalid_argument);

  PoleResidue negative_residue;
  negative_residue.poles = {cd(-1e8, 0.0)};
  negative_residue.residues = {cd(-1.0, 0.0)};
  EXPECT_THROW(synthesize_foster_rc(negative_residue), std::invalid_argument);
}

TEST(Foster, FullRoundTripReduceSynthesizeParse) {
  // The complete macromodeling flow: RC line -> PMTBR -> pole/residue ->
  // Foster netlist -> serialize -> parse -> MNA -> compare against the
  // original full model.
  const auto full = circuit::make_rc_line({.segments = 40});

  PmtbrOptions opts;
  opts.bands = {Band{0.0, 2e9}};
  opts.num_samples = 16;
  opts.fixed_order = 5;
  const auto red = pmtbr(full, opts);

  const auto pr = pole_residue(red.model.system);
  const auto synth_nl = synthesize_foster_rc(pr);
  const std::string text = circuit::netlist_to_string(synth_nl);
  const auto parsed = circuit::parse_netlist_string(text);
  const auto synth_sys = circuit::assemble_mna(parsed);

  for (const double f : {1e6, 1e8, 1e9}) {
    const cd s(0.0, 2.0 * std::numbers::pi * f);
    const cd h_full = full.transfer(s)(0, 0);
    const cd h_synth = synth_sys.transfer(s)(0, 0);
    EXPECT_LT(std::abs(h_full - h_synth) / std::abs(h_full), 1e-3) << "f=" << f;
  }
}

TEST(Writer, RoundTripPreservesElements) {
  circuit::Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  nl.add_resistor(n1, n2, 42.0);
  nl.add_capacitor(n2, 0, 3.3e-12);
  const auto l1 = nl.add_inductor(n1, 0, 2e-9);
  const auto l2 = nl.add_inductor(n2, 0, 8e-9);
  nl.add_mutual(l1, l2, 2e-9);  // k = 0.5
  nl.add_port(n1);

  const auto parsed = circuit::parse_netlist_string(circuit::netlist_to_string(nl));
  ASSERT_EQ(parsed.conductances().size(), 1u);
  EXPECT_NEAR(1.0 / parsed.conductances()[0].value, 42.0, 1e-12);
  ASSERT_EQ(parsed.capacitors().size(), 1u);
  EXPECT_NEAR(parsed.capacitors()[0].value, 3.3e-12, 1e-24);
  ASSERT_EQ(parsed.mutuals().size(), 1u);
  EXPECT_NEAR(parsed.mutuals()[0].m, 2e-9, 1e-18);
  EXPECT_EQ(parsed.num_ports(), 1);

  // Transfer functions must agree exactly.
  const auto s1 = circuit::assemble_mna(nl);
  const auto s2 = circuit::assemble_mna(parsed);
  const cd s(0.0, 2.0 * std::numbers::pi * 1e9);
  EXPECT_LT(std::abs(s1.transfer(s)(0, 0) - s2.transfer(s)(0, 0)),
            1e-9 * std::abs(s1.transfer(s)(0, 0)));
}

}  // namespace
}  // namespace pmtbr::mor
