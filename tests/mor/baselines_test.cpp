// PRIMA / MPPROJ / cross-Gramian / input-correlated algorithm tests.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "la/lu.hpp"
#include "la/ops.hpp"
#include "mor/cross_gramian.hpp"
#include "mor/error.hpp"
#include "mor/input_correlated.hpp"
#include "mor/mpproj.hpp"
#include "mor/pmtbr.hpp"
#include "mor/prima.hpp"
#include "signal/correlation.hpp"
#include "signal/transient.hpp"
#include "signal/waveform.hpp"

namespace pmtbr::mor {
namespace {

// Dense block moments of the descriptor system about s0 = 0:
//   m_k = C (A^{-1} E)^k A^{-1} B.
std::vector<MatD> dense_moments(const MatD& e, const MatD& a, const MatD& b, const MatD& c,
                                index count) {
  const la::LuD lua(a);
  std::vector<MatD> out;
  MatD r = lua.solve(b);
  for (index k = 0; k < count; ++k) {
    out.push_back(la::matmul(c, r));
    r = lua.solve(la::matmul(e, r));
  }
  return out;
}

TEST(Prima, MatchesBlockMoments) {
  const auto sys = circuit::make_rc_line({.segments = 12, .far_end_port = true});
  PrimaOptions opts;
  opts.num_moments = 3;
  const auto res = prima(sys, opts);
  const auto& rm = res.model.system;

  const auto full = dense_moments(sys.e().to_dense(), sys.a().to_dense(), sys.b(), sys.c(),
                                  opts.num_moments);
  const auto red = dense_moments(rm.e(), rm.a(), rm.b(), rm.c(), opts.num_moments);
  for (index k = 0; k < opts.num_moments; ++k) {
    const double scale = la::norm_fro(full[static_cast<std::size_t>(k)]);
    EXPECT_LT(la::max_abs_diff(full[static_cast<std::size_t>(k)], red[static_cast<std::size_t>(k)]),
              1e-7 * scale)
        << "moment " << k;
  }
}

TEST(Prima, ModelSizeIsMomentsTimesPorts) {
  circuit::MultiportRcParams p;
  p.lines = 6;
  p.segments = 5;
  const auto sys = circuit::make_multiport_rc(p);
  PrimaOptions opts;
  opts.num_moments = 2;
  const auto res = prima(sys, opts);
  EXPECT_EQ(res.model.system.n(), 12);  // the port-count blowup
}

TEST(Prima, ReducedRcIsStableAndAccurateAtDc) {
  const auto sys = circuit::make_rc_line({.segments = 25});
  PrimaOptions opts;
  opts.num_moments = 4;
  const auto res = prima(sys, opts);
  EXPECT_TRUE(res.model.system.is_stable(-1e-9));
  const cd h0f = sys.transfer(cd(0.0, 1e3))(0, 0);
  const cd h0r = res.model.system.transfer(cd(0.0, 1e3))(0, 0);
  EXPECT_LT(std::abs(h0f - h0r) / std::abs(h0f), 1e-9);
}

TEST(Mpproj, InterpolatesAtSamplePoints) {
  const auto sys = circuit::make_rc_line({.segments = 18});
  std::vector<FrequencySample> samples{{cd(0.0, 1e9), 1.0}, {cd(0.0, 5e9), 1.0}};
  const auto res = mpproj(sys, samples);
  for (const auto& fs : samples) {
    const cd hf = sys.transfer(fs.s)(0, 0);
    const cd hr = res.model.system.transfer(fs.s)(0, 0);
    EXPECT_LT(std::abs(hf - hr) / std::abs(hf), 1e-8);
  }
}

TEST(Mpproj, PmtbrBeatsMpprojAtEqualOrder) {
  // The Fig. 10 phenomenon: with redundant samples, MPPROJ wastes order on
  // near-duplicate directions while PMTBR's SVD prunes them.
  circuit::PeecParams pp;
  pp.sections = 15;
  const auto sys = circuit::make_peec(pp);
  const Band band{0.0, 1e9};
  const index order = 10;

  PmtbrOptions popts;
  popts.bands = {band};
  popts.num_samples = 30;
  popts.fixed_order = order;
  const auto pm = pmtbr(sys, popts);

  // MPPROJ gets the first samples until its basis hits the same order.
  const auto samples = sample_band(band, 30, SamplingScheme::kUniform);
  MpprojOptions mopts;
  mopts.max_order = order;
  const auto mp = mpproj(sys, samples, mopts);

  const auto grid = linspace_grid(1e6, 1e9, 40);
  const auto e_pm = compare_on_grid(sys, pm.model.system, grid);
  const auto e_mp = compare_on_grid(sys, mp.model.system, grid);
  EXPECT_LE(e_pm.max_abs, e_mp.max_abs * 1.2);
}

TEST(CrossGramian, SisoMatchesPmtbrQuality) {
  const auto sys = circuit::make_rc_line({.segments = 20});
  CrossGramianOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 12;
  opts.fixed_order = 6;
  const auto res = cross_gramian_pmtbr(sys, opts);
  const auto err = compare_on_grid(sys, res.model.system, logspace_grid(1e6, 1e10, 20));
  EXPECT_LT(err.max_rel, 1e-4);
}

TEST(CrossGramian, NonsymmetricSystemReduces) {
  // Connector slice: the ports are reciprocal, but the RLC MNA A-matrix is
  // nonsymmetric, exercising the two-sided path.
  circuit::ConnectorParams cp;
  cp.pins = 3;
  cp.sections = 3;
  cp.cavity_branches = false;
  const auto sys = circuit::make_connector(cp);
  CrossGramianOptions opts;
  opts.bands = {Band{0.0, 5e9}};
  opts.num_samples = 15;
  opts.fixed_order = 12;
  const auto res = cross_gramian_pmtbr(sys, opts);
  const auto err = compare_on_grid(sys, res.model.system, linspace_grid(1e8, 5e9, 15));
  EXPECT_LT(err.max_rel, 0.05);
}

TEST(CrossGramian, EigenvalueEstimatesDescending) {
  const auto sys = circuit::make_rc_line({.segments = 10});
  CrossGramianOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 8;
  opts.fixed_order = 4;
  const auto res = cross_gramian_pmtbr(sys, opts);
  for (std::size_t i = 1; i < res.eigenvalue_estimates.size(); ++i)
    EXPECT_GE(std::abs(res.eigenvalue_estimates[i - 1]),
              std::abs(res.eigenvalue_estimates[i]) - 1e-18);
}

class InputCorrelatedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    circuit::MultiportRcParams p;
    p.lines = 8;
    p.segments = 5;
    sys_ = circuit::make_multiport_rc(p);

    // Correlated inputs: all ports driven by dithered square waves sharing
    // one clock; two distinct phase groups -> low effective rank.
    signal::SquareWaveSpec spec;
    spec.period = 4e-9;
    spec.rise_time = 2e-10;
    spec.dither_fraction = 0.1;
    std::vector<double> phases;
    for (index k = 0; k < 8; ++k) phases.push_back(static_cast<double>(k % 2) * 1e-9);
    Rng rng(77);
    bank_ = signal::make_square_bank(spec, t_end_, phases, rng);
    samples_ = signal::sample_waveforms(bank_, t_end_, 200);
  }

  DescriptorSystem sys_;
  double t_end_ = 2e-8;
  std::vector<signal::Waveform> bank_;
  MatD samples_;
};

TEST_F(InputCorrelatedFixture, InputEnsembleEnergyConcentrated) {
  // Dither adds full-rank noise at a low level; the test property is that
  // the correlation energy concentrates in the two phase-group directions.
  const auto spec = signal::correlation_spectrum(samples_);
  ASSERT_GE(spec.size(), 3u);
  EXPECT_LT(spec[2], 0.05 * spec[0]);
  EXPECT_GE(signal::effective_rank(samples_, 1e-3), 1);
}

TEST_F(InputCorrelatedFixture, SmallModelTracksFullUnderTrainedInputs) {
  InputCorrelatedOptions opts;
  opts.bands = {Band{0.0, 2e9}};
  opts.num_freq_samples = 12;
  opts.fixed_order = 10;
  opts.seed = 99;
  const auto res = input_correlated_tbr(sys_, samples_, opts);

  signal::TransientOptions topts;
  topts.t_end = t_end_;
  topts.steps = 400;
  const auto in = signal::bank_input(bank_);
  const auto full = signal::simulate(sys_, in, topts);
  const auto red = signal::simulate(res.model.system, in, topts);
  const auto err = signal::compare_outputs(full, red);
  EXPECT_LT(err.max_abs, 0.05 * err.max_ref);
}

TEST_F(InputCorrelatedFixture, DeterministicVariantWorksToo) {
  InputCorrelatedOptions opts;
  opts.bands = {Band{0.0, 2e9}};
  opts.num_freq_samples = 12;
  opts.draws_per_frequency = 0;  // blocked deterministic variant
  opts.fixed_order = 10;
  const auto res = input_correlated_tbr(sys_, samples_, opts);
  EXPECT_EQ(res.model.system.n(), 10);
  EXPECT_GE(res.input_rank, 1);
}

TEST_F(InputCorrelatedFixture, SeedReproducibility) {
  InputCorrelatedOptions opts;
  opts.fixed_order = 6;
  opts.seed = 5;
  const auto r1 = input_correlated_tbr(sys_, samples_, opts);
  const auto r2 = input_correlated_tbr(sys_, samples_, opts);
  EXPECT_LT(la::max_abs_diff(r1.model.v, r2.model.v), 1e-300);
}

TEST_F(InputCorrelatedFixture, RejectsWrongPortCount) {
  InputCorrelatedOptions opts;
  EXPECT_THROW(input_correlated_tbr(sys_, MatD(3, 10), opts), std::invalid_argument);
}

}  // namespace
}  // namespace pmtbr::mor
