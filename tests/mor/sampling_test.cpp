#include "mor/sampling.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

namespace pmtbr::mor {
namespace {

TEST(GaussLegendre, WeightsSumToTwo) {
  for (const index n : {1, 2, 5, 10, 20}) {
    std::vector<double> x, w;
    gauss_legendre(n, x, w);
    double sum = 0;
    for (double v : w) sum += v;
    EXPECT_NEAR(sum, 2.0, 1e-12) << "n=" << n;
  }
}

TEST(GaussLegendre, IntegratesPolynomialsExactly) {
  // n-point GL is exact through degree 2n-1: check x^4 with n=3.
  std::vector<double> x, w;
  gauss_legendre(3, x, w);
  double integral = 0;
  for (std::size_t i = 0; i < x.size(); ++i) integral += w[i] * std::pow(x[i], 4);
  EXPECT_NEAR(integral, 2.0 / 5.0, 1e-13);
}

TEST(GaussLegendre, NodesSymmetric) {
  std::vector<double> x, w;
  gauss_legendre(4, x, w);
  std::sort(x.begin(), x.end());
  EXPECT_NEAR(x[0], -x[3], 1e-13);
  EXPECT_NEAR(x[1], -x[2], 1e-13);
}

TEST(SampleBand, UniformCoversBandWithTotalWeight) {
  const Band band{1e6, 1e9};
  const auto s = sample_band(band, 10, SamplingScheme::kUniform);
  ASSERT_EQ(s.size(), 10u);
  double wsum = 0;
  for (const auto& fs : s) {
    EXPECT_GE(fs.s.imag(), 2.0 * std::numbers::pi * band.f_lo);
    EXPECT_LE(fs.s.imag(), 2.0 * std::numbers::pi * band.f_hi);
    EXPECT_DOUBLE_EQ(fs.s.real(), 0.0);
    wsum += fs.weight;
  }
  // Total weight = band width in rad/s.
  EXPECT_NEAR(wsum, 2.0 * std::numbers::pi * (band.f_hi - band.f_lo), 1e-3 * wsum);
}

TEST(SampleBand, LogWeightsApproximateBandWidth) {
  const Band band{1e3, 1e9};
  const auto s = sample_band(band, 200, SamplingScheme::kLogarithmic);
  double wsum = 0;
  for (const auto& fs : s) wsum += fs.weight;
  const double expected = 2.0 * std::numbers::pi * (band.f_hi - band.f_lo);
  EXPECT_NEAR(wsum / expected, 1.0, 0.05);
}

TEST(SampleBand, GaussLegendreWeightsExact) {
  const Band band{0.0, 1e9};
  const auto s = sample_band(band, 8, SamplingScheme::kGaussLegendre);
  double wsum = 0;
  for (const auto& fs : s) wsum += fs.weight;
  EXPECT_NEAR(wsum, 2.0 * std::numbers::pi * 1e9, 1.0);
}

TEST(SampleBand, RejectsBadBand) {
  EXPECT_THROW(sample_band({1e9, 1e6}, 4, SamplingScheme::kUniform), std::invalid_argument);
  EXPECT_THROW(sample_band({0.0, 1e9}, 0, SamplingScheme::kUniform), std::invalid_argument);
}

TEST(SampleBands, AllocatesProportionally) {
  const std::vector<Band> bands{{0.0, 1e9}, {3e9, 4e9}};  // equal widths
  const auto s = sample_bands(bands, 10, SamplingScheme::kUniform);
  EXPECT_EQ(s.size(), 10u);
  index in_first = 0;
  for (const auto& fs : s)
    if (fs.s.imag() <= 2.0 * std::numbers::pi * 1e9) ++in_first;
  EXPECT_EQ(in_first, 5);
}

TEST(SampleBands, AtLeastOnePerBand) {
  const std::vector<Band> bands{{0.0, 1e12}, {2e12, 2.000001e12}};  // tiny 2nd band
  const auto s = sample_bands(bands, 5, SamplingScheme::kUniform);
  index in_second = 0;
  for (const auto& fs : s)
    if (fs.s.imag() > 2.0 * std::numbers::pi * 1.5e12) ++in_second;
  EXPECT_GE(in_second, 1);
}

}  // namespace
}  // namespace pmtbr::mor
