// Tests for the sweep / truncation / weighting APIs added around the core
// algorithms.
#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"

namespace pmtbr::mor {
namespace {

TEST(TbrTruncate, MatchesDirectTbrAtSameOrder) {
  circuit::RcMeshParams p;
  p.rows = 5;
  p.cols = 5;
  p.num_ports = 2;
  const auto sys = circuit::make_rc_mesh(p);

  TbrOptions full_opts;
  full_opts.fixed_order = 12;
  const auto full = tbr(sys, full_opts);

  for (const index q : {3, 6, 9}) {
    TbrOptions direct_opts;
    direct_opts.fixed_order = q;
    const auto direct = tbr(sys, direct_opts);
    const auto trunc = tbr_truncate(sys, full, q);
    EXPECT_NEAR(trunc.error_bound, direct.error_bound, 1e-9 * (1.0 + direct.error_bound));
    // Same transfer function (states may differ by sign).
    const auto grid = logspace_grid(1e6, 1e11, 10);
    for (const double f : grid) {
      const la::cd s(0.0, 2.0 * 3.14159265358979 * f);
      const la::cd hd = direct.model.system.transfer(s)(0, 0);
      const la::cd ht = trunc.model.system.transfer(s)(0, 0);
      EXPECT_LT(std::abs(hd - ht), 1e-7 * std::abs(hd) + 1e-14);
    }
  }
}

TEST(TbrTruncate, RejectsBadOrder) {
  const auto sys = circuit::make_rc_line({.segments = 8});
  TbrOptions opts;
  opts.fixed_order = 4;
  const auto full = tbr(sys, opts);
  EXPECT_THROW(tbr_truncate(sys, full, 5), std::invalid_argument);
  EXPECT_THROW(tbr_truncate(sys, full, 0), std::invalid_argument);
}

TEST(OrderSweep, MatchesIndividualCalls) {
  const auto sys = circuit::make_rc_line({.segments = 25});
  const auto samples = sample_band(Band{0.0, 1e10}, 12, SamplingScheme::kUniform);
  const std::vector<index> orders{2, 5, 8};
  const auto sweep = pmtbr_order_sweep(sys, samples, orders);
  ASSERT_EQ(sweep.size(), 3u);
  for (std::size_t i = 0; i < orders.size(); ++i) {
    PmtbrOptions opts;
    opts.fixed_order = orders[i];
    const auto direct = pmtbr_with_samples(sys, samples, opts);
    EXPECT_EQ(sweep[i].model.system.n(), direct.model.system.n());
    EXPECT_LT(la::max_abs_diff(sweep[i].model.v, direct.model.v), 1e-12);
  }
}

TEST(OrderSweep, ClampsToRank) {
  const auto sys = circuit::make_rc_line({.segments = 10});
  const auto samples = sample_band(Band{0.0, 1e10}, 2, SamplingScheme::kUniform);
  const auto sweep = pmtbr_order_sweep(sys, samples, {100});
  EXPECT_LE(sweep[0].model.system.n(), 4);  // 2 complex samples -> rank <= 4
}

TEST(FrequencyWeighting, BiasesAccuracyTowardWeightedBand) {
  // Weight the lower half of the band 100x: the low band must come out more
  // accurate than with uniform weighting, at the same small order.
  const auto sys = circuit::make_peec({.sections = 12});
  const Band band{0.0, 1e9};
  const auto low_grid = linspace_grid(1e6, 4e8, 20);

  PmtbrOptions plain;
  plain.bands = {band};
  plain.num_samples = 24;
  plain.fixed_order = 6;
  const auto res_plain = pmtbr(sys, plain);

  PmtbrOptions weighted = plain;
  weighted.weight_fn = [](double f_hz) { return f_hz < 4e8 ? 100.0 : 1.0; };
  const auto res_weighted = pmtbr(sys, weighted);

  const auto e_plain = compare_on_grid(sys, res_plain.model.system, low_grid);
  const auto e_weighted = compare_on_grid(sys, res_weighted.model.system, low_grid);
  EXPECT_LT(e_weighted.max_abs, e_plain.max_abs);
}

TEST(FrequencyWeighting, ZeroWeightDropsSamples) {
  const auto sys = circuit::make_rc_line({.segments = 10});
  PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 10;
  opts.fixed_order = 3;
  opts.weight_fn = [](double f_hz) { return f_hz < 5e9 ? 1.0 : 0.0; };
  const auto res = pmtbr(sys, opts);
  EXPECT_EQ(res.samples_used.size(), 5u);
}

TEST(FrequencyWeighting, NegativeWeightRejected) {
  const auto sys = circuit::make_rc_line({.segments = 5});
  PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e9}};
  opts.num_samples = 4;
  opts.weight_fn = [](double) { return -1.0; };
  EXPECT_THROW(pmtbr(sys, opts), std::invalid_argument);
}

TEST(EnergyStandard, DiagonalDispatchEqualsSymmetricStandard) {
  const auto sys = circuit::make_rc_line({.segments = 12});
  const auto e1 = to_energy_standard(sys);
  const auto e2 = to_symmetric_standard(sys);
  EXPECT_LT(la::max_abs_diff(e1.a().to_dense(), e2.a().to_dense()), 1e-14);
  EXPECT_LT(la::max_abs_diff(e1.b(), e2.b()), 1e-14);
}

TEST(EnergyStandard, ImprovesRlcPmtbrAccuracy) {
  // The connector observation at test scale: energy coordinates give the
  // one-sided SVD the physically right norm.
  circuit::ConnectorParams cp;
  cp.pins = 4;
  cp.sections = 4;
  const auto raw = circuit::make_connector(cp);
  const auto esys = to_energy_standard(raw);
  const auto grid = linspace_grid(1e8, 8e9, 20);

  PmtbrOptions opts;
  opts.bands = {Band{0.0, 8e9}};
  opts.num_samples = 25;
  opts.fixed_order = 14;
  const auto r_raw = pmtbr(raw, opts);
  const auto r_energy = pmtbr(esys, opts);

  const auto e_raw = compare_on_grid(raw, r_raw.model.system, grid);
  const auto e_energy = compare_on_grid(esys, r_energy.model.system, grid);
  EXPECT_LT(e_energy.max_rel, e_raw.max_rel);
}

}  // namespace
}  // namespace pmtbr::mor
