// PMTBR algorithm tests: interpolation, convergence to TBR, order control,
// frequency selectivity, and passivity-friendly projection.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "signal/subspace.hpp"

namespace pmtbr::mor {
namespace {

TEST(Pmtbr, InterpolatesAtSamplePointsWithoutTruncation) {
  // With no truncation the projection space contains every sample vector,
  // so the reduced transfer function interpolates H at the sample points.
  circuit::RcLineParams p;
  p.segments = 20;
  const auto sys = circuit::make_rc_line(p);

  std::vector<FrequencySample> samples{{cd(0.0, 2e9), 1.0}, {cd(0.0, 9e9), 1.0}};
  PmtbrOptions opts;
  opts.fixed_order = 4;  // 2 samples × (re+im) = full sample space
  opts.truncation_tol = 0;
  const auto res = pmtbr_with_samples(sys, samples, opts);

  for (const auto& fs : samples) {
    const cd h_full = sys.transfer(fs.s)(0, 0);
    const cd h_red = res.model.system.transfer(fs.s)(0, 0);
    EXPECT_NEAR(std::abs(h_full - h_red) / std::abs(h_full), 0.0, 1e-8);
  }
}

TEST(Pmtbr, HankelEstimatesTrackExactHsv) {
  // Paper Fig. 5: estimated singular values follow the exact ones. The
  // identification "σ(ZW)² ≈ Hankel singular values" holds in symmetric
  // coordinates (paper Sec. III-A), which the E^{1/2} transform provides
  // for RC networks.
  circuit::ClockTreeParams p;
  p.levels = 5;
  const auto sys = to_symmetric_standard(circuit::make_clock_tree(p));

  PmtbrOptions opts;
  // Log sampling across the full dynamic range of the tree (poles span
  // ~1e6..1e13 rad/s); a narrow band underestimates the HSV tail, which is
  // the finite-bandwidth effect Fig. 5 itself shows.
  opts.bands = {Band{1e4, 1e13}};
  opts.scheme = SamplingScheme::kLogarithmic;
  opts.num_samples = 80;
  const auto res = pmtbr(sys, opts);
  const auto exact = hankel_singular_values(sys);

  ASSERT_GE(res.hankel_estimates.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const double ratio = res.hankel_estimates[i] / exact[i];
    EXPECT_GT(ratio, 0.1) << "hsv " << i;
    EXPECT_LT(ratio, 10.0) << "hsv " << i;
  }
}

TEST(Pmtbr, SubspaceConvergesToTbrWithMoreSamples) {
  // Paper Fig. 6: the angle between PMTBR and TBR subspaces decreases as
  // samples are added (in symmetric coordinates, where the one-sided
  // sampled Gramian and the balancing subspace coincide asymptotically).
  circuit::ClockTreeParams p;
  p.levels = 5;
  const auto sys = to_symmetric_standard(circuit::make_clock_tree(p));
  TbrOptions topts;
  topts.fixed_order = 4;
  const auto exact = tbr(sys, topts);

  double angle_few = 0, angle_many = 0;
  for (const index ns : {2, 48}) {
    PmtbrOptions opts;
    opts.bands = {Band{1e6, 1e12}};
    opts.scheme = SamplingScheme::kLogarithmic;
    opts.num_samples = ns;
    opts.fixed_order = 4;
    const auto res = pmtbr(sys, opts);
    const double angle = signal::subspace_angle(exact.model.v, res.model.v);
    if (ns == 2)
      angle_few = angle;
    else
      angle_many = angle;
  }
  EXPECT_LT(angle_many, angle_few);
  // The residual angle is the finite-bandwidth plateau the paper describes
  // for Fig. 6 — small but not zero.
  EXPECT_LT(angle_many, 0.15);
}

TEST(Pmtbr, AccuracyImprovesWithOrder) {
  const auto sys = circuit::make_rc_line({.segments = 40});
  const auto grid = logspace_grid(1e6, 2e10, 25);
  double prev = 1e300;
  for (const index q : {2, 4, 8}) {
    PmtbrOptions opts;
    opts.bands = {Band{0.0, 2e10}};
    opts.num_samples = 20;
    opts.fixed_order = q;
    const auto res = pmtbr(sys, opts);
    const auto err = compare_on_grid(sys, res.model.system, grid);
    EXPECT_LT(err.max_rel, prev * 1.5);
    prev = err.max_rel;
  }
  EXPECT_LT(prev, 1e-4);
}

TEST(Pmtbr, OrderControlMatchesTolerance) {
  const auto sys = circuit::make_rc_line({.segments = 30});
  PmtbrOptions tight, loose;
  tight.bands = loose.bands = {Band{0.0, 1e10}};
  tight.num_samples = loose.num_samples = 20;
  tight.truncation_tol = 1e-10;
  loose.truncation_tol = 1e-3;
  const auto rt = pmtbr(sys, tight);
  const auto rl = pmtbr(sys, loose);
  EXPECT_GT(rt.model.system.n(), rl.model.system.n());
}

TEST(Pmtbr, AdaptiveStopsEarly) {
  const auto sys = circuit::make_rc_line({.segments = 30});
  PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 60;
  opts.truncation_tol = 1e-6;
  opts.adaptive_excess = 2.0;
  const auto res = pmtbr(sys, opts);
  EXPECT_LT(res.samples_used.size(), 60u);
  // And the model is still accurate.
  const auto err = compare_on_grid(sys, res.model.system, logspace_grid(1e6, 1e10, 20));
  EXPECT_LT(err.max_rel, 1e-3);
}

TEST(Pmtbr, FrequencySelectiveBeatsGlobalInBand) {
  // Reduce a resonant system targeting a low band; the in-band error of the
  // band-focused model must beat a same-order model sampled far out of band.
  circuit::PeecParams pp;
  pp.sections = 12;
  const auto sys = circuit::make_peec(pp);

  const Band focus{0.0, 2e8};
  const auto grid = linspace_grid(1e6, 2e8, 30);

  PmtbrOptions in_band;
  in_band.bands = {focus};
  in_band.num_samples = 16;
  in_band.fixed_order = 8;
  const auto res_in = pmtbr(sys, in_band);

  PmtbrOptions wide;
  wide.bands = {Band{5e9, 5e10}};  // effort spent at high frequencies
  wide.num_samples = 16;
  wide.fixed_order = 8;
  const auto res_wide = pmtbr(sys, wide);

  const auto err_in = compare_on_grid(sys, res_in.model.system, grid);
  const auto err_wide = compare_on_grid(sys, res_wide.model.system, grid);
  EXPECT_LT(err_in.max_abs, err_wide.max_abs);
}

TEST(Pmtbr, CongruenceReducedRlcIsStable) {
  circuit::SpiralParams sp;
  sp.turns = 10;
  const auto sys = circuit::make_spiral(sp);
  PmtbrOptions opts;
  opts.bands = {Band{0.0, 5e10}};
  opts.num_samples = 15;
  opts.fixed_order = 8;
  const auto res = pmtbr(sys, opts);
  EXPECT_TRUE(res.model.system.is_stable(-1e-9));
}

TEST(Pmtbr, BasisIsOrthonormal) {
  const auto sys = circuit::make_rc_line({.segments = 15});
  PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 8;
  opts.fixed_order = 5;
  const auto res = pmtbr(sys, opts);
  const MatD g = la::matmul(la::transpose(res.model.v), res.model.v);
  EXPECT_LT(la::max_abs_diff(g, MatD::identity(g.rows())), 1e-10);
}

TEST(Pmtbr, SingularEMatrixHandled) {
  // A node without a grounded capacitor makes E singular; PMTBR must not
  // care (paper Sec. V-A). Build such a netlist manually.
  circuit::Netlist nl;
  const auto n1 = nl.add_node();
  const auto n2 = nl.add_node();
  const auto n3 = nl.add_node();
  nl.add_resistor(n1, n2, 10.0);
  nl.add_resistor(n2, n3, 10.0);
  nl.add_resistor(n3, 0, 10.0);
  nl.add_capacitor(n1, 0, 1e-12);
  nl.add_capacitor(n3, 0, 1e-12);  // n2 has no capacitor -> singular E
  nl.add_port(n1);
  const auto sys = circuit::assemble_mna(nl);

  PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 6;
  opts.fixed_order = 2;
  const auto res = pmtbr(sys, opts);
  const cd s(0.0, 2.0 * std::numbers::pi * 1e9);
  const cd h_full = sys.transfer(s)(0, 0);
  const cd h_red = res.model.system.transfer(s)(0, 0);
  EXPECT_LT(std::abs(h_full - h_red) / std::abs(h_full), 1e-2);
}

}  // namespace
}  // namespace pmtbr::mor
