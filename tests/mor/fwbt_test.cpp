// Frequency-weighted balanced truncation tests.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "mor/error.hpp"
#include "mor/fwbt.hpp"
#include "mor/tbr.hpp"

namespace pmtbr::mor {
namespace {

TEST(Butterworth, DcGainIsUnity) {
  for (const index order : {1, 2, 4}) {
    const auto w = butterworth_lowpass(order, 1e9, 1);
    const la::cd h0 = w.transfer(la::cd(0.0, 1.0))(0, 0);
    EXPECT_NEAR(std::abs(h0), 1.0, 1e-6) << "order " << order;
  }
}

TEST(Butterworth, CutoffIsMinus3dB) {
  const auto w = butterworth_lowpass(3, 1e9, 1);
  const la::cd hc = w.transfer(la::cd(0.0, 2.0 * std::numbers::pi * 1e9))(0, 0);
  EXPECT_NEAR(std::abs(hc), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(Butterworth, RolloffMatchesOrder) {
  const index order = 2;
  const auto w = butterworth_lowpass(order, 1e9, 1);
  const double h10 = std::abs(w.transfer(la::cd(0.0, 2.0 * std::numbers::pi * 1e10))(0, 0));
  const double h100 = std::abs(w.transfer(la::cd(0.0, 2.0 * std::numbers::pi * 1e11))(0, 0));
  // -40 dB/decade for order 2.
  EXPECT_NEAR(std::log10(h10 / h100), 2.0, 0.05);
}

TEST(Butterworth, StableAllOrders) {
  for (const index order : {1, 3, 5, 8}) {
    const auto w = butterworth_lowpass(order, 2e9, 1);
    EXPECT_TRUE(w.is_stable()) << "order " << order;
  }
}

TEST(Butterworth, MimoChannelsAreDecoupled) {
  const auto w = butterworth_lowpass(2, 1e9, 3);
  EXPECT_EQ(w.n(), 6);
  EXPECT_EQ(w.num_inputs(), 3);
  const la::MatC h = w.transfer(la::cd(0.0, 1e9));
  for (index i = 0; i < 3; ++i) {
    for (index j = 0; j < 3; ++j) {
      if (i != j) {
        EXPECT_LT(std::abs(h(i, j)), 1e-12);
      }
    }
  }
}

TEST(Fwbt, IdentityWeightsMatchTbr) {
  circuit::RcMeshParams p;
  p.rows = 4;
  p.cols = 4;
  p.num_ports = 2;
  const auto sys = circuit::make_rc_mesh(p);

  TbrOptions topts;
  topts.fixed_order = 5;
  const auto t = tbr(sys, topts);
  FwbtOptions fopts;
  fopts.fixed_order = 5;
  const auto f = fwbt(sys, std::nullopt, std::nullopt, fopts);

  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(f.weighted_hsv[i] / t.hsv[i], 1.0, 1e-8) << "hsv " << i;
  const auto grid = logspace_grid(1e6, 1e11, 10);
  const auto et = compare_on_grid(sys, t.model.system, grid);
  const auto ef = compare_on_grid(sys, f.model.system, grid);
  EXPECT_NEAR(et.max_rel, ef.max_rel, 1e-6 * (1.0 + et.max_rel));
}

TEST(Fwbt, LowpassWeightImprovesInBandAccuracy) {
  // The classical frequency-weighting effect: at equal (small) order, the
  // weighted truncation is better inside the weight's passband.
  circuit::PeecParams pp;
  pp.sections = 12;
  const auto sys = to_energy_standard(circuit::make_peec(pp));
  const double f_band = 2e8;
  const auto in_grid = linspace_grid(1e6, f_band, 20);
  const index q = 6;

  TbrOptions topts;
  topts.fixed_order = q;
  const auto plain = tbr(sys, topts);

  FwbtOptions fopts;
  fopts.fixed_order = q;
  const auto wi = butterworth_lowpass(3, f_band, static_cast<index>(sys.num_inputs()));
  const auto wo = butterworth_lowpass(3, f_band, static_cast<index>(sys.num_outputs()));
  const auto weighted = fwbt(sys, wi, wo, fopts);

  const auto e_plain = compare_on_grid(sys, plain.model.system, in_grid);
  const auto e_weighted = compare_on_grid(sys, weighted.model.system, in_grid);
  EXPECT_LT(e_weighted.max_abs, e_plain.max_abs);
}

TEST(Fwbt, RejectsMismatchedWeight) {
  const auto sys = circuit::make_rc_line({.segments = 8});
  const auto w2 = butterworth_lowpass(2, 1e9, 2);  // two channels vs one port
  EXPECT_THROW(fwbt(sys, w2, std::nullopt, {}), std::invalid_argument);
  EXPECT_THROW(fwbt(sys, std::nullopt, w2, {}), std::invalid_argument);
}

TEST(Fwbt, WeightedHsvDescending) {
  const auto sys = circuit::make_rc_line({.segments = 12});
  const auto wi = butterworth_lowpass(2, 1e9, 1);
  const auto res = fwbt(sys, wi, std::nullopt, {});
  for (std::size_t i = 1; i < res.weighted_hsv.size(); ++i)
    EXPECT_GE(res.weighted_hsv[i - 1], res.weighted_hsv[i]);
}

}  // namespace
}  // namespace pmtbr::mor
