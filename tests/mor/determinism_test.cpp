// Determinism of the parallel sampling pipeline: PMTBR at 4 threads must
// produce bit-identical reduced models to PMTBR at 1 thread. The pipeline
// guarantees this by freezing the symbolic pivot order before fan-out and
// committing sample blocks in sample order.
#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "mor/pmtbr.hpp"
#include "mor/sampling.hpp"
#include "signal/ac.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::mor {
namespace {

// Restores the default pool size even if a test fails mid-way.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { util::set_global_threads(n); }
  ~ScopedThreads() { util::set_global_threads(util::resolve_num_threads(nullptr)); }
};

DescriptorSystem mesh_system() {
  circuit::RcMeshParams p;
  p.rows = 10;
  p.cols = 10;
  p.num_ports = 3;
  return circuit::make_rc_mesh(p);
}

void expect_bit_identical(const MatD& a, const MatD& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (la::index i = 0; i < a.rows(); ++i)
    for (la::index j = 0; j < a.cols(); ++j)
      EXPECT_EQ(a(i, j), b(i, j)) << "entry (" << i << ", " << j << ")";
}

PmtbrResult run_pmtbr(int threads, bool adaptive_stop) {
  ScopedThreads guard(threads);
  const auto sys = mesh_system();  // fresh system: no caches shared across runs
  PmtbrOptions opts;
  opts.bands = {Band{1e5, 5e10}};
  opts.num_samples = 16;
  opts.fixed_order = 8;
  if (adaptive_stop) {
    opts.adaptive_excess = 2.0;
    opts.min_samples = 4;
    opts.fixed_order = -1;
    opts.truncation_tol = 1e-6;
  }
  return pmtbr(sys, opts);
}

TEST(ParallelDeterminism, PmtbrMatchesSerialBitForBit) {
  const auto serial = run_pmtbr(1, false);
  const auto parallel = run_pmtbr(4, false);

  expect_bit_identical(serial.model.v, parallel.model.v);
  expect_bit_identical(serial.model.system.a(), parallel.model.system.a());
  expect_bit_identical(serial.model.system.b(), parallel.model.system.b());
  expect_bit_identical(serial.model.system.c(), parallel.model.system.c());
  expect_bit_identical(serial.model.system.e(), parallel.model.system.e());
  ASSERT_EQ(serial.model.singular_values.size(), parallel.model.singular_values.size());
  for (std::size_t i = 0; i < serial.model.singular_values.size(); ++i)
    EXPECT_EQ(serial.model.singular_values[i], parallel.model.singular_values[i]);
}

TEST(ParallelDeterminism, AdaptiveStopCommitsIdenticalSamplePrefix) {
  const auto serial = run_pmtbr(1, true);
  const auto parallel = run_pmtbr(4, true);

  ASSERT_EQ(serial.samples_used.size(), parallel.samples_used.size());
  for (std::size_t i = 0; i < serial.samples_used.size(); ++i) {
    EXPECT_EQ(serial.samples_used[i].s, parallel.samples_used[i].s);
    EXPECT_EQ(serial.samples_used[i].weight, parallel.samples_used[i].weight);
  }
  expect_bit_identical(serial.model.v, parallel.model.v);
  expect_bit_identical(serial.model.system.a(), parallel.model.system.a());
}

TEST(ParallelDeterminism, OrderSweepMatchesSerial) {
  const auto samples = sample_bands({Band{1e6, 1e10}}, 12, SamplingScheme::kLogarithmic);
  const std::vector<la::index> orders{2, 4, 8};

  std::vector<PmtbrResult> serial, parallel;
  {
    ScopedThreads guard(1);
    serial = pmtbr_order_sweep(mesh_system(), samples, orders);
  }
  {
    ScopedThreads guard(4);
    parallel = pmtbr_order_sweep(mesh_system(), samples, orders);
  }
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    expect_bit_identical(serial[k].model.v, parallel[k].model.v);
    expect_bit_identical(serial[k].model.system.a(), parallel[k].model.system.a());
  }
}

TEST(ParallelDeterminism, AcSweepMatchesSerial) {
  std::vector<double> freqs;
  for (int k = 0; k < 40; ++k) freqs.push_back(1e6 * std::pow(10.0, 0.1 * k));

  std::vector<signal::AcPoint> serial, parallel;
  {
    ScopedThreads guard(1);
    serial = signal::ac_sweep(mesh_system(), freqs, 0, 0);
  }
  {
    ScopedThreads guard(4);
    parallel = signal::ac_sweep(mesh_system(), freqs, 0, 0);
  }
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].f_hz, parallel[i].f_hz);
    EXPECT_EQ(serial[i].magnitude, parallel[i].magnitude);
    EXPECT_EQ(serial[i].phase_rad, parallel[i].phase_rad);
  }
}

TEST(ParallelDeterminism, ConcurrentShiftedSolvesOnOneSystemAreSafe) {
  // Hammer one DescriptorSystem's lazy caches from many pool tasks at once
  // (exactly what the sampling pipeline does); under TSan this doubles as
  // the race check for ordering()/symbolic caching.
  const auto sys = mesh_system();
  ScopedThreads guard(4);
  const la::MatC b = la::to_complex(sys.b());
  const auto results = util::parallel_map<la::MatC>(16, [&](la::index i) {
    return sys.solve_shifted(la::cd(0.0, 1e7 * static_cast<double>(i + 1)), b);
  });
  // Spot-check against fresh serial solves.
  for (la::index i : {la::index{0}, la::index{7}, la::index{15}}) {
    const auto ref = sys.solve_shifted(la::cd(0.0, 1e7 * static_cast<double>(i + 1)), b);
    EXPECT_LT(la::max_abs_diff(results[static_cast<std::size_t>(i)], ref), 1e-12);
  }
}

}  // namespace
}  // namespace pmtbr::mor
