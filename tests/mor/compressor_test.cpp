#include "mor/compressor.hpp"

#include <gtest/gtest.h>

#include "la/ops.hpp"
#include "la/svd.hpp"
#include "helpers.hpp"

namespace pmtbr::mor {
namespace {

using pmtbr::Rng;

TEST(Compressor, MatchesDirectSvdSingularValues) {
  Rng rng(61);
  const MatD a = testing::random_matrix(20, 8, rng);
  IncrementalCompressor comp(20);
  comp.add_columns(a);
  const auto s_inc = comp.singular_values();
  const auto s_dir = la::singular_values(a);
  ASSERT_EQ(s_inc.size(), s_dir.size());
  for (std::size_t i = 0; i < s_dir.size(); ++i)
    EXPECT_NEAR(s_inc[i], s_dir[i], 1e-10 * (1.0 + s_dir[0]));
}

TEST(Compressor, IncrementalEqualsBatch) {
  Rng rng(62);
  const MatD a = testing::random_matrix(15, 10, rng);
  IncrementalCompressor batch(15), incr(15);
  batch.add_columns(a);
  for (la::index j = 0; j < a.cols(); ++j) incr.add_columns(a.columns(j, j + 1));
  const auto sb = batch.singular_values();
  const auto si = incr.singular_values();
  ASSERT_EQ(sb.size(), si.size());
  for (std::size_t i = 0; i < sb.size(); ++i) EXPECT_NEAR(sb[i], si[i], 1e-10 * (1.0 + sb[0]));
}

TEST(Compressor, DeflatesDependentColumns) {
  Rng rng(63);
  const MatD g = testing::random_matrix(12, 3, rng);
  IncrementalCompressor comp(12);
  comp.add_columns(g);
  comp.add_columns(g);  // exact repeats add no rank
  EXPECT_EQ(comp.rank(), 3);
  EXPECT_EQ(comp.columns_absorbed(), 6);
}

TEST(Compressor, BasisIsOrthonormalAndDominant) {
  Rng rng(64);
  // Construct a matrix with known dominant direction.
  MatD a = testing::random_matrix(10, 6, rng);
  for (la::index i = 0; i < 10; ++i) a(i, 0) *= 100.0;
  IncrementalCompressor comp(10);
  comp.add_columns(a);
  const MatD v = comp.basis(2);
  EXPECT_EQ(v.cols(), 2);
  EXPECT_LT(testing::orthonormality_defect(v), 1e-11);
  // Dominant left singular vector must be captured: ||V^T u1|| ~ 1.
  const auto f = la::svd(a);
  double proj = 0;
  for (la::index j = 0; j < 2; ++j) {
    double d = 0;
    for (la::index i = 0; i < 10; ++i) d += v(i, j) * f.u(i, 0);
    proj += d * d;
  }
  EXPECT_NEAR(proj, 1.0, 1e-8);
}

TEST(Compressor, OrderForToleranceBoundaries) {
  IncrementalCompressor comp(5);
  MatD a(5, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1e-3;
  a(2, 2) = 1e-9;
  comp.add_columns(a);
  EXPECT_EQ(comp.order_for_tolerance(1e-1), 1);   // tail 1e-3+1e-9 < 0.1
  EXPECT_EQ(comp.order_for_tolerance(1e-6), 2);   // need to drop below 1e-6
  EXPECT_EQ(comp.order_for_tolerance(1e-12), 3);
}

TEST(Compressor, RejectsBadInput) {
  IncrementalCompressor comp(4);
  EXPECT_THROW(comp.add_columns(MatD(3, 1)), std::invalid_argument);
  EXPECT_THROW(comp.basis(1), std::runtime_error);  // nothing absorbed yet
}

TEST(Compressor, RankNeverExceedsDimension) {
  Rng rng(65);
  IncrementalCompressor comp(4);
  comp.add_columns(testing::random_matrix(4, 10, rng));
  EXPECT_LE(comp.rank(), 4);
  EXPECT_EQ(comp.columns_absorbed(), 10);
}

TEST(Compressor, BlockedAndReferenceModesAgree) {
  Rng rng(66);
  // Graded-novelty stream: a dominant block, a rescaled repeat (partially
  // novel numerically), and a fresh block. Both modes must report the same
  // rank, the same R-factor singular values, and the same dominant span.
  const la::index n = 40;
  const MatD a = testing::random_matrix(n, 6, rng);
  MatD mixed = testing::random_matrix(n, 6, rng, 1e-3);
  mixed += a;
  const MatD fresh = testing::random_matrix(n, 5, rng);

  IncrementalCompressor blocked(n, 1e-13, CompressorMode::kBlocked);
  IncrementalCompressor reference(n, 1e-13, CompressorMode::kReference);
  for (auto* comp : {&blocked, &reference}) {
    comp->add_columns(a);
    comp->add_columns(mixed);
    comp->add_columns(fresh);
  }
  EXPECT_EQ(blocked.rank(), reference.rank());
  EXPECT_EQ(blocked.columns_absorbed(), reference.columns_absorbed());

  const auto sb = blocked.singular_values();
  const auto sr = reference.singular_values();
  ASSERT_EQ(sb.size(), sr.size());
  for (std::size_t i = 0; i < sb.size(); ++i) EXPECT_NEAR(sb[i], sr[i], 1e-9 * (1.0 + sb[0]));

  // Dominant subspaces coincide: principal-angle cosines of the two order-6
  // bases are all ~1.
  const MatD vb = blocked.basis(6);
  const MatD vr = reference.basis(6);
  EXPECT_LT(testing::orthonormality_defect(vb), 1e-11);
  const auto cosines = la::singular_values(la::matmul_at(vb, vr));
  ASSERT_FALSE(cosines.empty());
  EXPECT_GT(cosines.back(), 1.0 - 1e-8);
}

TEST(Compressor, FullyDeflatedBlockAddsNoRank) {
  Rng rng(67);
  const la::index n = 30;
  const MatD a = testing::random_matrix(n, 5, rng);
  IncrementalCompressor comp(n, 1e-10, CompressorMode::kBlocked);
  const double first = comp.add_columns(a);
  EXPECT_GT(first, 0.0);
  const la::index rank_before = comp.rank();

  // Exact linear combinations of absorbed columns: residual is roundoff,
  // the early-exit path skips the factorization, and rank must not move.
  MatD combo(n, 4);
  for (la::index j = 0; j < combo.cols(); ++j)
    for (la::index i = 0; i < n; ++i)
      combo(i, j) = a(i, j % a.cols()) + 0.5 * a(i, (j + 1) % a.cols());
  const double res = comp.add_columns(combo);
  EXPECT_EQ(comp.rank(), rank_before);
  EXPECT_LT(res, 1e-10 * la::norm_fro(combo));
  EXPECT_EQ(comp.columns_absorbed(), 9);
}

}  // namespace
}  // namespace pmtbr::mor
