// DenseSystem / projection / error-metric layer tests.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "mor/error.hpp"
#include "mor/state_space.hpp"
#include "helpers.hpp"

namespace pmtbr::mor {
namespace {

TEST(DenseSystem, KnownTwoStatePoles) {
  // dx/dt = [[-1, 0], [0, -5]] x: poles at -1, -5.
  MatD a{{-1, 0}, {0, -5}};
  MatD b(2, 1, 1.0);
  MatD c(1, 2, 1.0);
  const auto sys = DenseSystem::standard(a, b, c);
  const auto p = sys.poles();
  EXPECT_NEAR(p[0].real(), -5.0, 1e-12);
  EXPECT_NEAR(p[1].real(), -1.0, 1e-12);
  EXPECT_TRUE(sys.is_stable());
  EXPECT_FALSE(sys.is_stable(2.0));  // margin beyond the slowest pole
}

TEST(DenseSystem, TransferOfFirstOrderSection) {
  // H(s) = c b / (s - a) for scalar system.
  MatD a{{-2.0}};
  MatD b{{3.0}};
  MatD c{{4.0}};
  const auto sys = DenseSystem::standard(a, b, c);
  const cd s(0.0, 1.0);
  const cd h = sys.transfer(s)(0, 0);
  const cd expected = 12.0 / (s + 2.0);
  EXPECT_LT(std::abs(h - expected), 1e-14);
}

TEST(DenseSystem, DescriptorFormTransfer) {
  // E = 2I doubles the effective time constant.
  MatD e{{2.0}};
  MatD a{{-2.0}};
  MatD b{{1.0}};
  MatD c{{1.0}};
  const DenseSystem sys(e, a, b, c);
  const cd s(0.0, 3.0);
  const cd h = sys.transfer(s)(0, 0);
  EXPECT_LT(std::abs(h - 1.0 / (s * 2.0 + 2.0)), 1e-14);
}

TEST(DenseSystem, ShapeChecksThrow) {
  EXPECT_THROW(DenseSystem(MatD(2, 2), MatD(3, 3), MatD(3, 1), MatD(1, 3)),
               std::invalid_argument);
  EXPECT_THROW(DenseSystem::standard(MatD{{1.0}}, MatD(2, 1), MatD(1, 1)),
               std::invalid_argument);
}

TEST(Project, IdentityBasisReproducesSystem) {
  const auto sys = circuit::make_rc_line({.segments = 6});
  const MatD v = MatD::identity(sys.n());
  const auto red = project_congruence(sys, v);
  EXPECT_LT(la::max_abs_diff(red.a(), sys.a().to_dense()), 1e-14);
  EXPECT_LT(la::max_abs_diff(red.e(), sys.e().to_dense()), 1e-14);
}

TEST(Project, MatchesDenseArithmetic) {
  const auto sys = circuit::make_rc_line({.segments = 8});
  Rng rng(71);
  const MatD v = testing::random_matrix(sys.n(), 3, rng);
  const MatD w = testing::random_matrix(sys.n(), 3, rng);
  const auto red = project(sys, v, w);
  const MatD expected_a =
      la::matmul(la::transpose(w), la::matmul(sys.a().to_dense(), v));
  EXPECT_LT(la::max_abs_diff(red.a(), expected_a), 1e-10);
}

TEST(Project, RejectsMismatchedBases) {
  const auto sys = circuit::make_rc_line({.segments = 5});
  EXPECT_THROW(project(sys, MatD(3, 2), MatD(3, 2)), std::invalid_argument);
  EXPECT_THROW(project(sys, MatD(sys.n(), 2), MatD(sys.n(), 3)), std::invalid_argument);
}

TEST(SparseTimesDense, MatchesDense) {
  const auto sys = circuit::make_rc_line({.segments = 7});
  Rng rng(72);
  const MatD v = testing::random_matrix(sys.n(), 4, rng);
  const MatD got = sparse_times_dense(sys.e(), v);
  const MatD expected = la::matmul(sys.e().to_dense(), v);
  EXPECT_LT(la::max_abs_diff(got, expected), 1e-12);
}

TEST(ErrorGrids, LinspaceEndpointsAndSpacing) {
  const auto g = linspace_grid(1.0, 5.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 1.0);
  EXPECT_DOUBLE_EQ(g.back(), 5.0);
  EXPECT_DOUBLE_EQ(g[1] - g[0], 1.0);
}

TEST(ErrorGrids, LogspaceRatios) {
  const auto g = logspace_grid(1.0, 1e4, 5);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_NEAR(g[i] / g[i - 1], 10.0, 1e-10);
}

TEST(ErrorGrids, RejectBadSpecs) {
  EXPECT_THROW(linspace_grid(5.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace_grid(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(linspace_grid(1.0, 2.0, 1), std::invalid_argument);
}

TEST(CompareOnGrid, ZeroErrorForIdenticalSystems) {
  const auto sys = circuit::make_rc_line({.segments = 10});
  const DenseSystem dense(sys.e().to_dense(), sys.a().to_dense(), sys.b(), sys.c());
  const auto err = compare_on_grid(sys, dense, logspace_grid(1e6, 1e10, 8));
  EXPECT_LT(err.max_rel, 1e-10);
}

TEST(CompareOnGrid, PortMismatchThrows) {
  const auto sys = circuit::make_rc_line({.segments = 5});
  const DenseSystem wrong = DenseSystem::standard(MatD{{-1.0}}, MatD(1, 2, 1.0), MatD(2, 1, 1.0));
  EXPECT_THROW(compare_on_grid(sys, wrong, {1e9}), std::invalid_argument);
}

TEST(EntryErrorSeries, RealPartOnlySelectsResistance) {
  const auto sys = circuit::make_rc_line({.segments = 5});
  // A deliberately wrong model: zero response.
  const DenseSystem zero =
      DenseSystem::standard(MatD{{-1.0}}, MatD(1, 1, 0.0), MatD(1, 1, 0.0));
  const auto grid = std::vector<double>{1e9};
  const auto abs_err = entry_error_series(sys, zero, grid, 0, 0, false);
  const auto re_err = entry_error_series(sys, zero, grid, 0, 0, true);
  const cd h = sys.transfer(cd(0.0, 2.0 * std::numbers::pi * 1e9))(0, 0);
  EXPECT_NEAR(abs_err[0], std::abs(h), 1e-12);
  EXPECT_NEAR(re_err[0], std::abs(h.real()), 1e-12);
}

}  // namespace
}  // namespace pmtbr::mor
