// Tests for the extension modules: PVL, passivity checks, and adaptive
// bisection sampling.
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "la/lu.hpp"
#include "la/ops.hpp"
#include "mor/error.hpp"
#include "mor/passivity.hpp"
#include "mor/pmtbr.hpp"
#include "mor/pvl.hpp"
#include "mor/tbr.hpp"

namespace pmtbr::mor {
namespace {

std::vector<MatD> dense_moments(const MatD& e, const MatD& a, const MatD& b, const MatD& c,
                                index count) {
  const la::LuD lua(a);
  std::vector<MatD> out;
  MatD r = lua.solve(b);
  for (index k = 0; k < count; ++k) {
    out.push_back(la::matmul(c, r));
    r = lua.solve(la::matmul(e, r));
  }
  return out;
}

TEST(Pvl, MatchesTwoQMoments) {
  const auto sys = circuit::make_rc_line({.segments = 15});
  PvlOptions opts;
  opts.order = 4;
  const auto res = pvl(sys, opts);
  ASSERT_EQ(res.steps_completed, 4);

  const auto full =
      dense_moments(sys.e().to_dense(), sys.a().to_dense(), sys.b(), sys.c(), 2 * opts.order);
  const auto& rm = res.model.system;
  const auto red = dense_moments(rm.e(), rm.a(), rm.b(), rm.c(), 2 * opts.order);
  for (index k = 0; k < 2 * opts.order; ++k) {
    const double scale = std::abs(full[static_cast<std::size_t>(k)](0, 0));
    EXPECT_NEAR(red[static_cast<std::size_t>(k)](0, 0), full[static_cast<std::size_t>(k)](0, 0),
                1e-6 * scale)
        << "moment " << k;
  }
}

TEST(Pvl, MatchesMomentsAtNonzeroExpansion) {
  const auto sys = circuit::make_rc_line({.segments = 12});
  PvlOptions opts;
  opts.order = 3;
  opts.s0 = 2e9;
  const auto res = pvl(sys, opts);
  // Compare transfer values near s0 instead of raw moments (simpler and
  // equally diagnostic): Padé accuracy is extreme close to the expansion.
  for (const double f : {2.9e8, 3.3e8}) {
    const la::cd s(opts.s0, 2.0 * std::numbers::pi * f);
    const la::cd hf = sys.transfer(s)(0, 0);
    const la::cd hr = res.model.system.transfer(s)(0, 0);
    EXPECT_LT(std::abs(hf - hr) / std::abs(hf), 1e-8);
  }
}

TEST(Pvl, TransferAccuracyAcrossBand) {
  const auto sys = circuit::make_rc_line({.segments = 40});
  PvlOptions opts;
  opts.order = 8;
  const auto res = pvl(sys, opts);
  // Padé about 0 is excellent at low frequency.
  const auto grid = logspace_grid(1e5, 1e9, 15);
  const auto err = compare_on_grid(sys, res.model.system, grid);
  EXPECT_LT(err.max_rel, 1e-6);
}

TEST(Pvl, KrylovExhaustionStopsEarly) {
  // A 3-state SISO system cannot support 10 Lanczos steps.
  const auto sys = circuit::make_rc_line({.segments = 2});
  PvlOptions opts;
  opts.order = 10;
  const auto res = pvl(sys, opts);
  EXPECT_LE(res.steps_completed, 3);
  // And the small model is exact (full Krylov space) up to the breakdown
  // tolerance's round-off.
  const la::cd s(0.0, 2.0 * std::numbers::pi * 1e9);
  const la::cd hf = sys.transfer(s)(0, 0);
  const la::cd hr = res.model.system.transfer(s)(0, 0);
  EXPECT_LT(std::abs(hf - hr) / std::abs(hf), 1e-6);
}

TEST(Pvl, RejectsMimo) {
  circuit::RcMeshParams p;
  p.rows = 3;
  p.cols = 3;
  p.num_ports = 2;
  const auto sys = circuit::make_rc_mesh(p);
  EXPECT_THROW(pvl(sys, {}), std::invalid_argument);
}

TEST(Passivity, MnaIsStructurallyPassive) {
  const auto sys = circuit::make_spiral({.turns = 6});
  EXPECT_TRUE(is_structurally_passive(sys));
}

TEST(Passivity, CongruenceReducedRlcPassesGridCheck) {
  const auto sys = circuit::make_spiral({.turns = 10});
  PmtbrOptions opts;
  opts.bands = {Band{0.0, 5e10}};
  opts.num_samples = 15;
  opts.fixed_order = 8;
  const auto red = pmtbr(sys, opts);
  const auto rep = check_passivity(red.model.system, logspace_grid(1e6, 1e11, 25));
  EXPECT_TRUE(rep.stable);
  EXPECT_TRUE(rep.dissipative_on_grid) << "min dissipation " << rep.min_dissipation << " at "
                                       << rep.worst_frequency_hz;
}

TEST(Passivity, NegatedModelFailsDissipativity) {
  const auto sys = circuit::make_rc_line({.segments = 10});
  PmtbrOptions opts;
  opts.bands = {Band{0.0, 1e10}};
  opts.num_samples = 8;
  opts.fixed_order = 4;
  const auto red = pmtbr(sys, opts);
  // Flip the output sign: H -> -H is active.
  MatD c = red.model.system.c();
  c *= -1.0;
  const DenseSystem flipped(red.model.system.e(), red.model.system.a(), red.model.system.b(), c);
  const auto rep = check_passivity(flipped, logspace_grid(1e6, 1e10, 10));
  EXPECT_FALSE(rep.dissipative_on_grid);
}

TEST(Passivity, TbrModelNotStructurallyPassiveButOftenDissipative) {
  const auto sys = circuit::make_rc_line({.segments = 20});
  TbrOptions opts;
  opts.fixed_order = 5;
  const auto red = tbr(sys, opts);
  // Balanced coordinates destroy the MNA structure...
  const auto desc = from_dense(red.model.system.a(), red.model.system.b(), red.model.system.c());
  EXPECT_FALSE(is_structurally_passive(desc));
  // ...but the RC TBR model still checks out dissipative on the grid
  // (symmetric systems: TBR preserves passivity, paper Sec. III-A).
  const auto rep = check_passivity(red.model.system, logspace_grid(1e6, 1e10, 10));
  EXPECT_TRUE(rep.stable);
  EXPECT_TRUE(rep.dissipative_on_grid);
}

TEST(Adaptive, StopsWithinBudgetAndIsAccurate) {
  const auto sys = circuit::make_peec({.sections = 15});
  AdaptiveOptions aopts;
  aopts.band = {0.0, 1e9};
  aopts.initial_samples = 4;
  aopts.max_samples = 40;
  aopts.novelty_tol = 1e-6;
  PmtbrOptions opts;
  opts.truncation_tol = 1e-8;
  const auto res = pmtbr_adaptive(sys, aopts, opts);
  EXPECT_LE(res.samples_used.size(), 40u);
  EXPECT_GE(res.samples_used.size(), 4u);
  const auto err = compare_on_grid(sys, res.model.system, linspace_grid(1e6, 1e9, 30));
  EXPECT_LT(err.max_rel, 1e-2);
}

TEST(Adaptive, BeatsUniformAtEqualBudget) {
  // On a resonant system, concentrating samples where the response has
  // structure should beat blind uniform sampling at the same sample count.
  const auto sys = circuit::make_peec({.sections = 20});
  const Band band{0.0, 1e9};
  const auto grid = linspace_grid(1e6, 1e9, 40);

  AdaptiveOptions aopts;
  aopts.band = band;
  aopts.initial_samples = 4;
  aopts.max_samples = 16;
  aopts.novelty_tol = 0.0;  // spend the whole budget
  PmtbrOptions opts;
  opts.fixed_order = 14;
  const auto ada = pmtbr_adaptive(sys, aopts, opts);

  PmtbrOptions uopts;
  uopts.bands = {band};
  uopts.num_samples = static_cast<index>(ada.samples_used.size());
  uopts.fixed_order = 14;
  const auto uni = pmtbr(sys, uopts);

  const auto e_ada = compare_on_grid(sys, ada.model.system, grid);
  const auto e_uni = compare_on_grid(sys, uni.model.system, grid);
  EXPECT_LE(e_ada.max_abs, 2.0 * e_uni.max_abs);  // never catastrophically worse
}

TEST(Adaptive, RespectsNoveltyTolerance) {
  // A smooth single-pole system saturates immediately: nearly no bisection.
  const auto sys = circuit::make_rc_line({.segments = 5});
  AdaptiveOptions aopts;
  aopts.band = {0.0, 1e9};
  aopts.initial_samples = 4;
  aopts.max_samples = 64;
  aopts.novelty_tol = 1e-4;
  const auto res = pmtbr_adaptive(sys, aopts, {});
  EXPECT_LT(res.samples_used.size(), 20u);
}

}  // namespace
}  // namespace pmtbr::mor
