// Randomized differential suite (label: slow): PMTBR versus the exact dense
// TBR baseline over seeded random passive RC / RLC networks, plus
// end-to-end agreement of the two compressor modes through the serving
// path. The networks are generated as netlist text (exercising the parser
// and MNA assembly), are passive by construction (hence stable), and carry
// a grounded capacitor at every node plus diagonal inductances, so E is
// invertible and the TBR baseline applies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/parser.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace pmtbr::mor {
namespace {

using circuit::try_assemble_netlist;

// Random passive RC network: a resistor chain through every node (connected
// by construction), extra random cross resistors, and a grounded capacitor
// at every node. Ports at both ends of the chain.
std::string random_rc_netlist(Rng& rng, index nodes, bool with_inductors) {
  std::ostringstream os;
  os << "* random " << (with_inductors ? "RLC" : "RC") << " network\n";
  int card = 0;
  for (index i = 1; i < nodes; ++i)
    os << "R" << ++card << " n" << i << " n" << (i + 1) << " "
       << rng.uniform(50.0, 200.0) << "\n";
  const index extra = nodes / 3;
  for (index k = 0; k < extra; ++k) {
    const index a = rng.uniform_int(1, nodes);
    index b = rng.uniform_int(1, nodes);
    if (a == b) b = (b % nodes) + 1;
    os << "R" << ++card << " n" << a << " n" << b << " "
       << rng.uniform(100.0, 500.0) << "\n";
  }
  // Resistive grounding at every fourth node: without it G is singular (a
  // DC-floating island), A = -G has a zero eigenvalue, and the Lyapunov
  // sign iteration behind the TBR baseline cannot converge.
  for (index i = 1; i <= nodes; i += 4)
    os << "R" << ++card << " n" << i << " 0 " << rng.uniform(500.0, 2000.0) << "\n";
  for (index i = 1; i <= nodes; ++i)
    os << "C" << i << " n" << i << " 0 " << rng.uniform(0.5e-12, 2e-12) << "\n";
  if (with_inductors) {
    // A few series inductor branches between random node pairs; their
    // currents add diagonal L entries to E, keeping it invertible, and the
    // network stays passive (hence stable).
    const index coils = std::max<index>(1, nodes / 8);
    for (index k = 0; k < coils; ++k) {
      const index a = rng.uniform_int(1, nodes);
      index b = rng.uniform_int(1, nodes);
      if (a == b) b = (b % nodes) + 1;
      os << "L" << k + 1 << " n" << a << " n" << b << " "
         << rng.uniform(0.5e-9, 2e-9) << "\n";
    }
  }
  os << ".port n1\n.port n" << nodes << "\n.end\n";
  return os.str();
}

struct Tolerances {
  double envelope_factor;  // PMTBR max error vs max(TBR error, Glover bound)
  double abs_floor;        // relative to the in-band transfer scale
};

// PMTBR at the TBR-chosen order must track the exact baseline to within a
// modest factor of the larger of the baseline's achieved error and its
// Glover bound (the paper's claim: near-TBR accuracy in band without
// Gramians). The factor absorbs quadrature error on hard spectra.
void check_system(const std::string& netlist, std::uint64_t seed, Tolerances tol) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto sys = try_assemble_netlist(netlist);
  ASSERT_TRUE(sys.is_ok()) << sys.status().to_string();
  const DescriptorSystem& full = sys.value();

  TbrOptions topts;
  topts.fixed_order = 8;
  const TbrResult baseline = tbr(full, topts);
  ASSERT_EQ(baseline.model.system.a().rows(), 8);

  const double f_hi = 2e9;
  PmtbrOptions popts;
  popts.bands = {Band{0.0, f_hi}};
  popts.num_samples = 48;
  popts.fixed_order = 8;
  const PmtbrResult reduced = pmtbr(full, popts);
  ASSERT_EQ(reduced.model.system.a().rows(), 8);

  const std::vector<double> grid = logspace_grid(1e6, f_hi, 25);
  const ErrorStats pmtbr_err = compare_on_grid(full, reduced.model.system, grid);
  const ErrorStats tbr_err = compare_on_grid(full, baseline.model.system, grid);

  const double bound = tbr_error_bound(baseline.hsv, 8);
  const double envelope = tol.envelope_factor * std::max(tbr_err.max_abs, bound) +
                          tol.abs_floor * pmtbr_err.h_inf_scale;
  EXPECT_LE(pmtbr_err.max_abs, envelope)
      << "pmtbr max_abs=" << pmtbr_err.max_abs << " tbr max_abs=" << tbr_err.max_abs
      << " glover=" << bound << " scale=" << pmtbr_err.h_inf_scale;
  // Both reductions must be sane in the first place.
  EXPECT_GT(pmtbr_err.h_inf_scale, 0.0);
  EXPECT_TRUE(std::isfinite(pmtbr_err.max_abs));
}

TEST(Differential, PmtbrTracksTbrOnRandomRcNetworks) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const index nodes = static_cast<index>(rng.uniform_int(18, 36));
    check_system(random_rc_netlist(rng, nodes, false), seed,
                 {.envelope_factor = 10.0, .abs_floor = 1e-10});
  }
}

TEST(Differential, PmtbrTracksTbrOnRandomRlcNetworks) {
  for (std::uint64_t seed = 101; seed <= 108; ++seed) {
    Rng rng(seed);
    const index nodes = static_cast<index>(rng.uniform_int(16, 28));
    check_system(random_rc_netlist(rng, nodes, true), seed,
                 {.envelope_factor = 10.0, .abs_floor = 1e-10});
  }
}

// kReference and kBlocked compressor modes must agree end-to-end THROUGH
// THE SERVICE PATH: same netlist submitted twice with only the mode
// flipped, reduced transfer functions compared on the grid.
TEST(Differential, CompressorModesAgreeThroughService) {
  serve::ReductionService svc({.runners = 2, .max_queue = 16});
  for (std::uint64_t seed = 201; seed <= 206; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const index nodes = static_cast<index>(rng.uniform_int(18, 30));
    const std::string netlist = random_rc_netlist(rng, nodes, seed % 2 == 0);

    PmtbrOptions base;
    base.bands = {Band{0.0, 2e9}};
    base.num_samples = 32;
    base.fixed_order = 6;

    PmtbrOptions ref = base;
    ref.compressor = CompressorMode::kReference;
    PmtbrOptions blk = base;
    blk.compressor = CompressorMode::kBlocked;

    auto req_ref = serve::job_from_netlist(netlist, ref, "ref");
    auto req_blk = serve::job_from_netlist(netlist, blk, "blk");
    ASSERT_TRUE(req_ref.is_ok());
    ASSERT_TRUE(req_blk.is_ok());
    auto id_ref = svc.submit(std::move(req_ref).value());
    auto id_blk = svc.submit(std::move(req_blk).value());
    ASSERT_TRUE(id_ref.is_ok());
    ASSERT_TRUE(id_blk.is_ok());
    const serve::JobResult r_ref = svc.wait(id_ref.value());
    const serve::JobResult r_blk = svc.wait(id_blk.value());
    ASSERT_EQ(r_ref.outcome, serve::JobOutcome::kCompleted) << r_ref.status.to_string();
    ASSERT_EQ(r_blk.outcome, serve::JobOutcome::kCompleted) << r_blk.status.to_string();

    // Same subspace, hence (numerically) the same reduced transfer.
    const std::vector<double> grid = logspace_grid(1e6, 2e9, 25);
    const auto h_ref = transfer_series(r_ref.reduction.model.system, grid);
    const auto h_blk = transfer_series(r_blk.reduction.model.system, grid);
    double scale = 0.0;
    for (const auto& h : h_ref)
      for (index i = 0; i < h.rows(); ++i)
        for (index j = 0; j < h.cols(); ++j) scale = std::max(scale, std::abs(h(i, j)));
    ASSERT_GT(scale, 0.0);
    double worst = 0.0;
    for (std::size_t g = 0; g < grid.size(); ++g)
      for (index i = 0; i < h_ref[g].rows(); ++i)
        for (index j = 0; j < h_ref[g].cols(); ++j)
          worst = std::max(worst, std::abs(h_ref[g](i, j) - h_blk[g](i, j)));
    EXPECT_LE(worst, 1e-6 * scale) << "modes diverge: worst=" << worst;

    // The estimated Hankel spectra agree too.
    const auto& sv_ref = r_ref.reduction.hankel_estimates;
    const auto& sv_blk = r_blk.reduction.hankel_estimates;
    ASSERT_EQ(sv_ref.size(), sv_blk.size());
    for (std::size_t i = 0; i < sv_ref.size(); ++i)
      EXPECT_NEAR(sv_ref[i], sv_blk[i], 1e-9 * (1.0 + sv_ref[0]));
  }
}

}  // namespace
}  // namespace pmtbr::mor
