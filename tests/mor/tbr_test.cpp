// Exact-TBR baseline tests: Glover bound, exactness at full order, HSV
// invariance, and monotone growth of the bound with added ports (the
// paper's Fig. 3 phenomenon in miniature).
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "mor/error.hpp"
#include "mor/tbr.hpp"
#include "helpers.hpp"

namespace pmtbr::mor {
namespace {

using pmtbr::Rng;

DescriptorSystem small_mesh(index ports) {
  circuit::RcMeshParams p;
  p.rows = 5;
  p.cols = 5;
  p.num_ports = ports;
  return circuit::make_rc_mesh(p);
}

TEST(Tbr, HsvDescendingAndPositive) {
  const auto sys = small_mesh(3);
  const auto hsv = hankel_singular_values(sys);
  ASSERT_EQ(hsv.size(), static_cast<std::size_t>(sys.n()));
  for (std::size_t i = 1; i < hsv.size(); ++i) EXPECT_GE(hsv[i - 1], hsv[i]);
  EXPECT_GT(hsv[0], 0.0);
}

TEST(Tbr, FullOrderIsExact) {
  const auto sys = small_mesh(2);
  TbrOptions opts;
  opts.fixed_order = sys.n();
  const auto res = tbr(sys, opts);
  const auto grid = logspace_grid(1e6, 1e11, 20);
  const auto err = compare_on_grid(sys, res.model.system, grid);
  EXPECT_LT(err.max_rel, 1e-6);
}

TEST(Tbr, GloverBoundHolds) {
  const auto sys = small_mesh(2);
  for (const index q : {2, 4, 8}) {
    TbrOptions opts;
    opts.fixed_order = q;
    const auto res = tbr(sys, opts);
    // Observed H-infinity error on a grid must respect the bound.
    const auto grid = logspace_grid(1e5, 1e12, 60);
    const auto err = compare_on_grid(sys, res.model.system, grid);
    EXPECT_LE(err.max_abs, res.error_bound * (1.0 + 1e-6))
        << "order " << q << ": observed " << err.max_abs << " bound " << res.error_bound;
  }
}

TEST(Tbr, ErrorBoundMonotoneInOrder) {
  const auto sys = small_mesh(4);
  const auto hsv = hankel_singular_values(sys);
  for (index q = 1; q + 1 < static_cast<index>(hsv.size()); ++q)
    EXPECT_GE(tbr_error_bound(hsv, q), tbr_error_bound(hsv, q + 1) - 1e-18);
}

TEST(Tbr, BoundGrowsWithPortCount) {
  // More ports => larger controllable space => slower HSV decay (Fig. 3).
  const auto hsv4 = hankel_singular_values(small_mesh(4));
  const auto hsv16 = hankel_singular_values(small_mesh(16));
  const index q = 6;
  EXPECT_GT(tbr_error_bound(hsv16, q) / hsv16[0], tbr_error_bound(hsv4, q) / hsv4[0]);
}

TEST(Tbr, HsvInvariantUnderStateScaling) {
  // Similarity transformation must not change the Hankel singular values.
  Rng rng(71);
  const MatD a = testing::random_stable(8, rng);
  const MatD b = testing::random_matrix(8, 2, rng);
  const MatD c = testing::random_matrix(2, 8, rng);
  const auto r1 = tbr_dense(a, b, c, {});

  MatD t(8, 8);  // diagonal scaling
  for (index i = 0; i < 8; ++i) t(i, i) = std::pow(10.0, (i % 4) - 2);
  MatD tinv(8, 8);
  for (index i = 0; i < 8; ++i) tinv(i, i) = 1.0 / t(i, i);
  const MatD a2 = la::matmul(t, la::matmul(a, tinv));
  const MatD b2 = la::matmul(t, b);
  const MatD c2 = la::matmul(c, tinv);
  const auto r2 = tbr_dense(a2, b2, c2, {});

  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NEAR(r1.hsv[i] / r2.hsv[i], 1.0, 1e-6) << "hsv index " << i;
}

TEST(Tbr, ReducedModelIsBalanced) {
  // The reduced system of a balanced truncation satisfies W^T V = I, so
  // E_r = I; check Er is identity.
  const auto sys = small_mesh(2);
  TbrOptions opts;
  opts.fixed_order = 5;
  const auto res = tbr(sys, opts);
  const MatD wv = la::matmul(la::transpose(res.model.w), res.model.v);
  EXPECT_LT(la::max_abs_diff(wv, MatD::identity(5)), 1e-8);
}

TEST(Tbr, ErrorTolSelectsSmallOrder) {
  const auto sys = small_mesh(1);
  TbrOptions opts;
  opts.error_tol = 1e-4;
  const auto res = tbr(sys, opts);
  EXPECT_LT(res.model.system.n(), sys.n() / 2);
  EXPECT_GE(res.model.system.n(), 1);
}

TEST(Tbr, StableReducedModels) {
  const auto sys = small_mesh(3);
  for (const index q : {1, 3, 6}) {
    TbrOptions opts;
    opts.fixed_order = q;
    const auto res = tbr(sys, opts);
    EXPECT_TRUE(res.model.system.is_stable()) << "order " << q;
  }
}

}  // namespace
}  // namespace pmtbr::mor
