// Contracts on the MOR entry points: option validation on pmtbr and its
// wrappers, basis-shape checks on projection, and NaN capture at the first
// instrumented boundary (the incremental compressor and the descriptor
// constructor).
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "circuit/generators.hpp"
#include "mor/compressor.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "sparse/csr.hpp"

namespace pmtbr::mor {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

DescriptorSystem small_sys() {
  circuit::RcLineParams p;
  p.segments = 8;
  return circuit::make_rc_line(p);
}

TEST(PmtbrContract, EmptyBandsThrow) {
  PmtbrOptions opts;
  opts.bands = {};
  EXPECT_THROW(pmtbr(small_sys(), opts), std::invalid_argument);
}

TEST(PmtbrContract, ZeroSamplesThrow) {
  PmtbrOptions opts;
  opts.bands = {Band{1e3, 1e9}};
  opts.num_samples = 0;
  EXPECT_THROW(pmtbr(small_sys(), opts), std::invalid_argument);
}

TEST(PmtbrContract, NegativeTruncationTolThrows) {
  PmtbrOptions opts;
  opts.bands = {Band{1e3, 1e9}};
  opts.truncation_tol = -1e-6;
  EXPECT_THROW(pmtbr(small_sys(), opts), std::invalid_argument);
}

TEST(PmtbrContract, ZeroTruncationTolIsLegal) {
  // tol == 0 means "keep everything" (used with max_order caps); it must
  // not be rejected by the nonnegativity contract.
  PmtbrOptions opts;
  opts.bands = {Band{1e3, 1e9}};
  opts.truncation_tol = 0.0;
  opts.max_order = 3;
  EXPECT_NO_THROW(pmtbr(small_sys(), opts));
}

TEST(PmtbrContract, FrequencySelectiveRejectsEmptyBands) {
  EXPECT_THROW(pmtbr_frequency_selective(small_sys(), {}), std::invalid_argument);
}

TEST(PmtbrContract, WithSamplesRejectsEmptySampleSet) {
  EXPECT_THROW(pmtbr_with_samples(small_sys(), {}, PmtbrOptions{}), std::invalid_argument);
}

TEST(ProjectContract, BasisRowMismatchThrows) {
  const auto sys = small_sys();
  const MatD v(sys.n() + 1, 2, 1.0);
  EXPECT_THROW(project_congruence(sys, v), std::invalid_argument);
}

TEST(ProjectContract, BasisColumnMismatchThrows) {
  const auto sys = small_sys();
  const MatD v(sys.n(), 2, 0.5);
  const MatD w(sys.n(), 3, 0.5);
  EXPECT_THROW(project(sys, v, w), std::invalid_argument);
}

TEST(TbrContract, NegativeOrderThrows) {
  EXPECT_THROW(tbr_error_bound({1.0, 0.5}, -1), std::invalid_argument);
}

TEST(ErrorContract, EmptyFrequencyGridThrows) {
  const auto sys = small_sys();
  EXPECT_THROW(transfer_series(sys, {}), std::invalid_argument);
}

TEST(ErrorContract, EntryIndicesValidated) {
  const auto full = small_sys();
  const auto red = pmtbr_frequency_selective(full, {Band{1e3, 1e9}});
  const std::vector<double> freqs{1e6};
  EXPECT_THROW(entry_error_series(full, red.model.system, freqs, full.num_outputs(), 0, false),
               std::invalid_argument);
  EXPECT_THROW(entry_error_series(full, red.model.system, freqs, 0, -1, false),
               std::invalid_argument);
}

TEST(FiniteContract, CompressorRejectsNanSampleBlock) {
  contracts::ScopedFiniteChecks on(true);
  IncrementalCompressor comp(4);
  MatD block(4, 2, 1.0);
  block(3, 1) = kNan;
  EXPECT_THROW(comp.add_columns(block), std::runtime_error);
}

TEST(FiniteContract, DescriptorConstructorRejectsNanInput) {
  contracts::ScopedFiniteChecks on(true);
  sparse::Triplets<double> t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  const sparse::CsrD eye(t);
  MatD b(2, 1, 1.0);
  b(0, 0) = kNan;
  EXPECT_THROW(DescriptorSystem(eye, eye, b, MatD(1, 2, 1.0)), std::runtime_error);
}

TEST(FiniteContract, ProjectionBasisNanCaught) {
  contracts::ScopedFiniteChecks on(true);
  const auto sys = small_sys();
  MatD v(sys.n(), 2, 0.5);
  v(0, 0) = kNan;
  EXPECT_THROW(project_congruence(sys, v), std::runtime_error);
}

}  // namespace
}  // namespace pmtbr::mor
