// Cross-job caching layer tests (docs/SERVING.md): job fingerprint
// stability, single-flight coalescing of concurrent identical jobs,
// bit-identical cache hits, the shared numeric-factor cache, and the
// move-only admission path. The suite names carry the ReductionService
// prefix so the TSan CI preset picks the concurrency tests up.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "la/ops.hpp"
#include "mor/pmtbr.hpp"
#include "serve/model_cache.hpp"
#include "serve/service.hpp"
#include "sparse/factor_cache.hpp"
#include "util/faultinject.hpp"
#include "util/obs/counters.hpp"

namespace pmtbr::serve {
namespace {

// Memoization is intentionally suspended while fault injection is armed
// (injected failures must replay exactly), so these tests disarm any
// ambient PMTBR_FAULTS configuration for their process.
class CacheTestEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    util::fault::clear();
    sparse::FactorCache::global().clear();
    obs::reset_counters();
  }
};

using ReductionServiceCache = CacheTestEnv;
using ReductionServiceFingerprint = CacheTestEnv;
using ReductionServiceAdmission = CacheTestEnv;

JobRequest mesh_job(const std::string& name, int samples = 12) {
  JobRequest req;
  req.name = name;
  req.system = circuit::make_rc_mesh({.rows = 8, .cols = 8, .num_ports = 2});
  req.options.num_samples = samples;
  return req;
}

const std::string kNetlist =
    "* two-segment RC line\n"
    "R1 in mid 100\n"
    "R2 mid out 100\n"
    "C1 mid 0 1p\n"
    "C2 out 0 1p\n"
    ".port in\n"
    ".end\n";

TEST_F(ReductionServiceFingerprint, StableAcrossReparseSensitiveToValues) {
  auto first = job_from_netlist(kNetlist);
  auto second = job_from_netlist(kNetlist);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  const auto fp1 = job_fingerprint(first.value());
  const auto fp2 = job_fingerprint(second.value());
  ASSERT_TRUE(fp1.has_value());
  ASSERT_TRUE(fp2.has_value());
  // Independent parses of the same text assemble bit-identical systems.
  EXPECT_EQ(*fp1, *fp2);

  // Perturbing one element value must change the key.
  std::string perturbed = kNetlist;
  perturbed.replace(perturbed.find("R1 in mid 100"), 13, "R1 in mid 101");
  auto third = job_from_netlist(perturbed);
  ASSERT_TRUE(third.is_ok());
  const auto fp3 = job_fingerprint(third.value());
  ASSERT_TRUE(fp3.has_value());
  EXPECT_NE(*fp1, *fp3);

  // So must any option that feeds the reduction.
  JobRequest other = first.value();
  other.options.num_samples += 1;
  const auto fp4 = job_fingerprint(other);
  ASSERT_TRUE(fp4.has_value());
  EXPECT_NE(*fp1, *fp4);

  // Scheduling metadata affects when a job runs, never what it computes.
  JobRequest renamed = first.value();
  renamed.name = "different-label";
  renamed.priority = Priority::kHigh;
  const auto fp5 = job_fingerprint(renamed);
  ASSERT_TRUE(fp5.has_value());
  EXPECT_EQ(*fp1, *fp5);

  // A custom weight function has no content identity: uncacheable.
  JobRequest weighted = first.value();
  weighted.options.weight_fn = [](double) { return 1.0; };
  EXPECT_FALSE(job_fingerprint(weighted).has_value());
}

TEST_F(ReductionServiceCache, HitIsBitIdenticalToFreshReduction) {
  JobRequest req = mesh_job("cold");
  const mor::PmtbrResult direct = mor::pmtbr(req.system, req.options);

  ReductionService svc({.runners = 2, .max_queue = 8});
  auto cold = svc.submit(mesh_job("cold"));
  ASSERT_TRUE(cold.is_ok());
  ASSERT_EQ(svc.wait(cold.value()).outcome, JobOutcome::kCompleted);

  auto warm = svc.submit(mesh_job("warm"));
  ASSERT_TRUE(warm.is_ok());
  const JobResult hit = svc.wait(warm.value());
  ASSERT_EQ(hit.outcome, JobOutcome::kCompleted) << hit.status.to_string();

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 2);
  EXPECT_EQ(st.cache_hits, 1);
  EXPECT_EQ(svc.model_cache_stats().hits, 1);

  // The memoized result must be indistinguishable from a fresh computation
  // down to the last bit, not merely within tolerance.
  const mor::DenseSystem& got = hit.reduction.model.system;
  const mor::DenseSystem& want = direct.model.system;
  ASSERT_EQ(got.a().rows(), want.a().rows());
  ASSERT_EQ(got.a().cols(), want.a().cols());
  for (la::index i = 0; i < got.a().rows(); ++i)
    for (la::index j = 0; j < got.a().cols(); ++j) {
      EXPECT_EQ(got.e()(i, j), want.e()(i, j));
      EXPECT_EQ(got.a()(i, j), want.a()(i, j));
    }
  ASSERT_EQ(got.b().rows(), want.b().rows());
  for (la::index i = 0; i < got.b().rows(); ++i)
    for (la::index j = 0; j < got.b().cols(); ++j) EXPECT_EQ(got.b()(i, j), want.b()(i, j));
  for (la::index i = 0; i < got.c().rows(); ++i)
    for (la::index j = 0; j < got.c().cols(); ++j) EXPECT_EQ(got.c()(i, j), want.c()(i, j));
  ASSERT_EQ(hit.reduction.model.singular_values.size(),
            direct.model.singular_values.size());
  for (std::size_t i = 0; i < direct.model.singular_values.size(); ++i)
    EXPECT_EQ(hit.reduction.model.singular_values[i], direct.model.singular_values[i]);
}

TEST_F(ReductionServiceCache, SingleFlightCollapsesConcurrentIdenticalJobs) {
  constexpr int kJobs = 16;
  ReductionService svc({.runners = kJobs, .max_queue = kJobs});
  std::vector<JobId> ids;
  ids.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    auto id = svc.submit(mesh_job("flight-" + std::to_string(i), 24));
    ASSERT_TRUE(id.is_ok());
    ids.push_back(id.value());
  }
  std::vector<JobResult> results;
  results.reserve(kJobs);
  for (const JobId id : ids) results.push_back(svc.wait(id));
  for (const JobResult& r : results)
    ASSERT_EQ(r.outcome, JobOutcome::kCompleted) << r.status.to_string();

  // Exactly one reduction ran: the sample counter saw one job's worth of
  // absorbed samples, every other job was served by the flight or the LRU.
  EXPECT_EQ(obs::counter_value(obs::Counter::kPmtbrSamples), 24);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, kJobs);
  EXPECT_EQ(st.cache_hits, kJobs - 1);

  // All coalesced results are bit-identical to the leader's.
  for (const JobResult& r : results) {
    ASSERT_EQ(r.reduction.model.singular_values.size(),
              results[0].reduction.model.singular_values.size());
    for (std::size_t i = 0; i < results[0].reduction.model.singular_values.size(); ++i)
      EXPECT_EQ(r.reduction.model.singular_values[i],
                results[0].reduction.model.singular_values[i]);
  }
}

TEST_F(ReductionServiceCache, DisabledCacheRunsEveryJob) {
  ReductionService svc({.runners = 1, .max_queue = 4, .model_cache = false});
  for (int i = 0; i < 2; ++i) {
    auto id = svc.submit(mesh_job("nocache"));
    ASSERT_TRUE(id.is_ok());
    ASSERT_EQ(svc.wait(id.value()).outcome, JobOutcome::kCompleted);
  }
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.completed, 2);
  EXPECT_EQ(st.cache_hits, 0);
  const util::CacheStats cs = svc.model_cache_stats();
  EXPECT_EQ(cs.hits, 0);
  EXPECT_EQ(cs.entries, 0);
}

TEST_F(ReductionServiceCache, FactorCacheSharesNumericFactorsAcrossSystems) {
  // Two independently built but bit-identical systems share content and
  // symbolic fingerprints, so the second one's solves replay the first
  // one's numeric factors instead of refactoring.
  const auto sys1 = circuit::make_rc_mesh({.rows = 6, .cols = 6});
  const auto sys2 = circuit::make_rc_mesh({.rows = 6, .cols = 6});
  EXPECT_EQ(sys1.content_fingerprint(), sys2.content_fingerprint());

  const la::MatC rhs = la::to_complex(sys1.b());
  const la::cd shift(0.0, 2e9);
  const la::MatC x1 = sys1.solve_shifted(shift, rhs);
  const std::int64_t refactors_after_first =
      obs::counter_value(obs::Counter::kSparseLuRefactor);
  const la::MatC x2 = sys2.solve_shifted(shift, rhs);
  // sys2 still builds its own symbolic analysis (a one-time full
  // factorization), but the numeric factors replay from the shared cache:
  // no new refactorization happens at the shift.
  EXPECT_EQ(obs::counter_value(obs::Counter::kSparseLuRefactor), refactors_after_first);
  EXPECT_GE(obs::counter_value(obs::Counter::kFactorCacheHit), 1);

  ASSERT_EQ(x1.rows(), x2.rows());
  for (la::index i = 0; i < x1.rows(); ++i)
    for (la::index j = 0; j < x1.cols(); ++j) EXPECT_EQ(x1(i, j), x2(i, j));

  const util::CacheStats st = sparse::FactorCache::global().stats();
  EXPECT_GE(st.entries, 1);
  EXPECT_GT(st.bytes, 0);
}

TEST_F(ReductionServiceAdmission, SubmitMovesRequestWithoutCopyingMatrices) {
  JobRequest req = mesh_job("moved");
  const double* values_before = req.system.a().values().data();
  const std::size_t nnz_before = req.system.a().nnz();
  ASSERT_GT(nnz_before, 0u);

  // Moving the request relocates the handle, not the payload.
  JobRequest moved = std::move(req);
  EXPECT_EQ(moved.system.a().values().data(), values_before);

  // The admission path (submit by value + move into the job record) must
  // preserve that: after submit, the caller's request no longer owns the
  // matrix storage. (libstdc++ leaves a moved-from vector empty.)
  ReductionService svc({.runners = 1, .max_queue = 2});
  auto id = svc.submit(std::move(moved));
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(moved.system.a().nnz(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(svc.wait(id.value()).outcome, JobOutcome::kCompleted);
}

}  // namespace
}  // namespace pmtbr::serve
