// ReductionService contract tests (docs/SERVING.md): admission and
// backpressure, deterministic scheduling order, deadline enforcement at
// dequeue and mid-run, cooperative cancellation of queued and running jobs,
// netlist job construction, and the stats partition invariant.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "circuit/generators.hpp"
#include "mor/pmtbr.hpp"
#include "serve/service.hpp"
#include "util/faultinject.hpp"

namespace pmtbr::serve {
namespace {

using util::ErrorCode;

// Small system + few samples: a job that completes in a few milliseconds.
JobRequest quick_job(const std::string& name, Priority prio = Priority::kNormal) {
  JobRequest req;
  req.name = name;
  req.system = circuit::make_rc_line({.segments = 20});
  req.options.num_samples = 8;
  req.priority = prio;
  return req;
}

// Large mesh + many samples: a job that runs long enough to act as a
// deterministic "runner occupier" while the test manipulates the queue.
JobRequest blocker_job(const std::string& name = "blocker") {
  JobRequest req;
  req.name = name;
  req.system = circuit::make_rc_mesh({.rows = 18, .cols = 18});
  req.options.num_samples = 400;
  req.priority = Priority::kHigh;  // runs before anything queued behind it
  return req;
}

void spin_until_running(const ReductionService& svc, std::int64_t count = 1) {
  while (svc.stats().running < count) std::this_thread::yield();
}

TEST(ReductionService, SubmitWaitMatchesDirectPmtbr) {
  const DescriptorSystem sys = circuit::make_rc_line({.segments = 40});
  mor::PmtbrOptions opts;
  opts.num_samples = 20;
  const mor::PmtbrResult direct = mor::pmtbr(sys, opts);

  ReductionService svc({.runners = 2, .max_queue = 8});
  JobRequest req;
  req.name = "match";
  req.system = sys;
  req.options = opts;
  auto id = svc.submit(std::move(req));
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  const JobResult res = svc.wait(id.value());

  ASSERT_EQ(res.outcome, JobOutcome::kCompleted) << res.status.to_string();
  EXPECT_TRUE(res.status.is_ok());
  EXPECT_GT(res.start_sequence, 0u);
  EXPECT_GE(res.run_seconds, 0.0);
  // The pipeline is deterministic across thread counts and scheduling, so
  // the service-run reduction is bit-identical to the direct call.
  ASSERT_EQ(res.reduction.model.system.a().rows(), direct.model.system.a().rows());
  ASSERT_EQ(res.reduction.model.singular_values.size(),
            direct.model.singular_values.size());
  for (std::size_t i = 0; i < direct.model.singular_values.size(); ++i)
    EXPECT_DOUBLE_EQ(res.reduction.model.singular_values[i],
                     direct.model.singular_values[i]);
}

TEST(ReductionService, AdaptiveMethodRuns) {
  ReductionService svc({.runners = 1, .max_queue = 4});
  JobRequest req;
  req.name = "adaptive";
  req.system = circuit::make_rc_line({.segments = 30});
  req.method = Method::kPmtbrAdaptive;
  req.adaptive = {.initial_samples = 4, .max_samples = 24};
  auto id = svc.submit(std::move(req));
  ASSERT_TRUE(id.is_ok());
  const JobResult res = svc.wait(id.value());
  ASSERT_EQ(res.outcome, JobOutcome::kCompleted) << res.status.to_string();
  EXPECT_GT(res.reduction.model.system.a().rows(), 0);
}

TEST(ReductionService, BackpressureRejectsWithOverloaded) {
  ReductionService svc({.runners = 1, .max_queue = 2});
  auto blocker = svc.submit(blocker_job());
  ASSERT_TRUE(blocker.is_ok());
  spin_until_running(svc);  // queue is now empty, runner busy

  auto q1 = svc.submit(quick_job("q1"));
  auto q2 = svc.submit(quick_job("q2"));
  ASSERT_TRUE(q1.is_ok());
  ASSERT_TRUE(q2.is_ok());

  auto overflow = svc.submit(quick_job("overflow"));
  ASSERT_FALSE(overflow.is_ok());
  EXPECT_EQ(overflow.status().code(), ErrorCode::kOverloaded);
  EXPECT_EQ(svc.stats().rejected, 1);

  // Unblock and drain; the rejected submission must appear in the partition.
  svc.cancel(blocker.value());
  const auto results = svc.drain();
  EXPECT_EQ(results.size(), 3u);  // blocker + q1 + q2; overflow never admitted
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 4);
  EXPECT_EQ(st.submitted,
            st.completed + st.failed + st.cancelled + st.expired + st.rejected);
}

TEST(ReductionService, SchedulesByPriorityThenSubmission) {
  ReductionService svc({.runners = 1, .max_queue = 8});
  auto blocker = svc.submit(blocker_job());
  ASSERT_TRUE(blocker.is_ok());
  spin_until_running(svc);

  auto low = svc.submit(quick_job("low", Priority::kLow));
  auto high = svc.submit(quick_job("high", Priority::kHigh));
  auto normal = svc.submit(quick_job("normal", Priority::kNormal));
  ASSERT_TRUE(low.is_ok());
  ASSERT_TRUE(high.is_ok());
  ASSERT_TRUE(normal.is_ok());

  svc.cancel(blocker.value());
  const JobResult r_low = svc.wait(low.value());
  const JobResult r_high = svc.wait(high.value());
  const JobResult r_normal = svc.wait(normal.value());
  ASSERT_EQ(r_low.outcome, JobOutcome::kCompleted);
  ASSERT_EQ(r_high.outcome, JobOutcome::kCompleted);
  ASSERT_EQ(r_normal.outcome, JobOutcome::kCompleted);
  // Despite submission order low, high, normal the runner starts them in
  // priority order.
  EXPECT_LT(r_high.start_sequence, r_normal.start_sequence);
  EXPECT_LT(r_normal.start_sequence, r_low.start_sequence);
}

TEST(ReductionService, EarlierDeadlineBreaksPriorityTie) {
  ReductionService svc({.runners = 1, .max_queue = 8});
  auto blocker = svc.submit(blocker_job());
  ASSERT_TRUE(blocker.is_ok());
  spin_until_running(svc);

  JobRequest late = quick_job("late");
  late.deadline = std::chrono::minutes(10);
  JobRequest none = quick_job("none");  // no deadline sorts last
  JobRequest soon = quick_job("soon");
  soon.deadline = std::chrono::minutes(1);
  auto id_none = svc.submit(std::move(none));
  auto id_late = svc.submit(std::move(late));
  auto id_soon = svc.submit(std::move(soon));
  ASSERT_TRUE(id_none.is_ok());
  ASSERT_TRUE(id_late.is_ok());
  ASSERT_TRUE(id_soon.is_ok());

  svc.cancel(blocker.value());
  const JobResult r_none = svc.wait(id_none.value());
  const JobResult r_late = svc.wait(id_late.value());
  const JobResult r_soon = svc.wait(id_soon.value());
  ASSERT_EQ(r_soon.outcome, JobOutcome::kCompleted);
  EXPECT_LT(r_soon.start_sequence, r_late.start_sequence);
  EXPECT_LT(r_late.start_sequence, r_none.start_sequence);
}

TEST(ReductionService, DeadlineExpiresWhileQueued) {
  ReductionService svc({.runners = 1, .max_queue = 8});
  auto blocker = svc.submit(blocker_job());
  ASSERT_TRUE(blocker.is_ok());
  spin_until_running(svc);

  JobRequest doomed = quick_job("doomed");
  doomed.deadline = std::chrono::nanoseconds(1);  // expires immediately
  auto id = svc.submit(std::move(doomed));
  ASSERT_TRUE(id.is_ok());
  svc.cancel(blocker.value());

  const JobResult res = svc.wait(id.value());
  EXPECT_EQ(res.outcome, JobOutcome::kExpired);
  EXPECT_EQ(res.status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(res.start_sequence, 0u);  // never started
  EXPECT_EQ(res.run_seconds, 0.0);
  EXPECT_GT(res.queue_seconds, 0.0);
}

TEST(ReductionService, DeadlineExpiresMidRun) {
  ReductionService svc({.runners = 1, .max_queue = 4});
  JobRequest req = blocker_job("deadline-mid-run");
  req.deadline = std::chrono::milliseconds(60);  // starts, then trips mid-run
  auto id = svc.submit(std::move(req));
  ASSERT_TRUE(id.is_ok());
  const JobResult res = svc.wait(id.value());
  EXPECT_EQ(res.outcome, JobOutcome::kExpired);
  EXPECT_EQ(res.status.code(), ErrorCode::kDeadlineExceeded);
}

TEST(ReductionService, CancelQueuedJobNeverRuns) {
  ReductionService svc({.runners = 1, .max_queue = 8});
  auto blocker = svc.submit(blocker_job());
  ASSERT_TRUE(blocker.is_ok());
  spin_until_running(svc);

  auto id = svc.submit(quick_job("queued"));
  ASSERT_TRUE(id.is_ok());
  EXPECT_TRUE(svc.cancel(id.value()));
  const JobResult res = svc.wait(id.value());
  EXPECT_EQ(res.outcome, JobOutcome::kCancelled);
  EXPECT_EQ(res.status.code(), ErrorCode::kCancelled);
  EXPECT_EQ(res.start_sequence, 0u);
  EXPECT_EQ(res.run_seconds, 0.0);
  EXPECT_FALSE(svc.cancel(id.value()));  // already terminal
  svc.cancel(blocker.value());
  svc.drain();
}

TEST(ReductionService, CancelRunningJobStopsCooperatively) {
  ReductionService svc({.runners = 1, .max_queue = 4});
  auto id = svc.submit(blocker_job("cancel-running"));
  ASSERT_TRUE(id.is_ok());
  spin_until_running(svc);
  EXPECT_TRUE(svc.cancel(id.value()));
  const JobResult res = svc.wait(id.value());
  EXPECT_EQ(res.outcome, JobOutcome::kCancelled);
  EXPECT_EQ(res.status.code(), ErrorCode::kCancelled);
  EXPECT_GT(res.start_sequence, 0u);  // it did start
  EXPECT_GT(res.run_seconds, 0.0);
}

TEST(ReductionService, CancelUnknownIdReturnsFalse) {
  ReductionService svc({.runners = 1, .max_queue = 4});
  EXPECT_FALSE(svc.cancel(12345));
}

TEST(ReductionService, FailingJobIsOrdinaryFailedResult) {
  // Arm every solve to fail with no regularization rescue: coverage hits
  // zero, the run throws kCoverageFloor, and the service records kFailed
  // without disturbing anything else.
  util::fault::ScopedFault guard(util::fault::Site::kSpluPivot, 1.0, 7);
  ReductionService svc({.runners = 1, .max_queue = 4});
  JobRequest req = quick_job("doomed");
  req.options.resilience.diag_reg = 0.0;
  auto id = svc.submit(std::move(req));
  ASSERT_TRUE(id.is_ok());
  const JobResult res = svc.wait(id.value());
  EXPECT_EQ(res.outcome, JobOutcome::kFailed);
  EXPECT_EQ(res.status.code(), ErrorCode::kCoverageFloor);

  // The service stays healthy: the next job completes.
  util::fault::clear();
  auto ok = svc.submit(quick_job("healthy"));
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(svc.wait(ok.value()).outcome, JobOutcome::kCompleted);
}

TEST(ReductionService, JobFromNetlistRoundTrips) {
  const std::string text =
      "* two-segment RC line\n"
      "R1 in mid 100\n"
      "R2 mid out 100\n"
      "C1 mid 0 1p\n"
      "C2 out 0 1p\n"
      ".port in\n"
      ".end\n";
  auto req = job_from_netlist(text, {}, "rc2");
  ASSERT_TRUE(req.is_ok()) << req.status().to_string();
  EXPECT_EQ(req.value().name, "rc2");
  EXPECT_EQ(req.value().system.num_inputs(), 1);

  ReductionService svc({.runners = 1, .max_queue = 2});
  auto id = svc.submit(std::move(req).value());
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(svc.wait(id.value()).outcome, JobOutcome::kCompleted);
}

TEST(ReductionService, MalformedNetlistIsInvalidInput) {
  auto bad = job_from_netlist("R1 in out not_a_number\n.port in\n");
  ASSERT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidInput);

  auto portless = job_from_netlist("R1 in 0 100\nC1 in 0 1p\n");
  ASSERT_FALSE(portless.is_ok());
  EXPECT_EQ(portless.status().code(), ErrorCode::kInvalidInput);
}

TEST(ReductionService, StatsPartitionAndServeExtra) {
  ReductionService svc({.runners = 2, .max_queue = 8});
  std::vector<JobId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = svc.submit(quick_job("p" + std::to_string(i)));
    ASSERT_TRUE(id.is_ok());
    ids.push_back(id.value());
  }
  const auto results = svc.drain();
  EXPECT_EQ(results.size(), ids.size());
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 6);
  EXPECT_EQ(st.completed, 6);
  EXPECT_EQ(st.queued, 0);
  EXPECT_EQ(st.running, 0);
  EXPECT_EQ(st.submitted,
            st.completed + st.failed + st.cancelled + st.expired + st.rejected);
  EXPECT_GE(st.run_seconds, 0.0);

  const auto [key, json] = serve_extra(st);
  EXPECT_EQ(key, "serve");
  EXPECT_NE(json.find("\"submitted\""), std::string::npos);
  EXPECT_NE(json.find("\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_seconds\""), std::string::npos);
}

TEST(ReductionService, DestructorCancelsOutstandingJobs) {
  // Scope-exit with a running blocker and queued work behind it: the
  // destructor must cancel everything and join without hanging.
  ReductionService svc({.runners = 1, .max_queue = 8});
  auto blocker = svc.submit(blocker_job("shutdown"));
  ASSERT_TRUE(blocker.is_ok());
  spin_until_running(svc);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(svc.submit(quick_job("q")).is_ok());
}

TEST(ReductionService, InvalidOptionsAreRejected) {
  EXPECT_THROW(ReductionService({.runners = 0}), std::invalid_argument);
  EXPECT_THROW(ReductionService({.runners = 1, .max_queue = 0}), std::invalid_argument);
}

TEST(ReductionService, WaitOnUnknownIdThrows) {
  ReductionService svc({.runners = 1, .max_queue = 2});
  EXPECT_THROW(svc.wait(999), std::invalid_argument);
}

}  // namespace
}  // namespace pmtbr::serve
