// Scheduler stress test (label: stress; run under TSan by the "stress"
// preset in CI). Drives the service with N=200 mixed-priority jobs from
// concurrent submitters while a seeded subset gets cancelled, another
// subset carries already-expired deadlines, and deterministic faults are
// armed on the solve and pool-task sites. Asserts the one invariant that
// matters: every submission is accounted for exactly once —
//   submitted == completed + failed + cancelled + expired + rejected —
// with client-side tallies matching the service's own stats and counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "circuit/generators.hpp"
#include "serve/service.hpp"
#include "util/faultinject.hpp"
#include "util/obs/counters.hpp"
#include "util/rng.hpp"

namespace pmtbr::serve {
namespace {

constexpr int kJobs = 200;
constexpr int kSubmitters = 4;

struct Plan {
  Priority priority = Priority::kNormal;
  bool doomed = false;       // 1ns deadline: must expire at dequeue
  bool cancel_after = false; // cancelled right after submission
  index segments = 16;
  index samples = 8;
};

std::vector<Plan> make_plans(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Plan> plans(kJobs);
  for (auto& p : plans) {
    p.priority = static_cast<Priority>(rng.uniform_int(0, 2));
    p.segments = static_cast<index>(rng.uniform_int(10, 30));
    p.samples = static_cast<index>(rng.uniform_int(6, 12));
    const double roll = rng.uniform();
    // Disjoint by construction: a job is doomed OR cancel-marked OR plain.
    if (roll < 0.10)
      p.doomed = true;
    else if (roll < 0.25)
      p.cancel_after = true;
  }
  return plans;
}

TEST(SchedulerStress, ExactOutcomePartitionUnderChaos) {
  // Mild deterministic chaos: ~2% of solve attempts fail outright and ~2%
  // of pool tasks die before running. Per-sample degradation (retry /
  // drop / reweight) rescues nearly every affected job; whatever still
  // fails must land in the `failed` bucket of the partition, not vanish.
  util::fault::ScopedFault solve_faults(util::fault::Site::kSpluPivot, 0.02, 1234);
  util::fault::ScopedFault pool_faults(util::fault::Site::kPoolTask, 0.02, 99);
  obs::reset_counters();

  const std::vector<Plan> plans = make_plans(0xC0FFEE);
  ReductionService svc({.runners = 3, .max_queue = 32});

  std::mutex admitted_mutex;
  std::map<JobId, int> admitted;  // id -> plan index
  std::atomic<int> submit_attempts{0};
  std::atomic<int> client_rejected{0};
  std::atomic<int> doomed_count{0};

  // Submitters flood a bounded queue faster than 3 runners drain it, so
  // kOverloaded rejections are expected; every rejected job is resubmitted
  // until admitted, so ALL kJobs plans actually flow through the scheduler
  // while backpressure is exercised for real.
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = t; i < kJobs; i += kSubmitters) {
        const Plan& plan = plans[static_cast<std::size_t>(i)];
        for (;;) {
          JobRequest req;
          req.name = "stress-" + std::to_string(i);
          req.system = circuit::make_rc_line({.segments = plan.segments});
          req.options.num_samples = plan.samples;
          req.priority = plan.priority;
          if (plan.doomed) req.deadline = std::chrono::nanoseconds(1);
          auto id = svc.submit(std::move(req));
          submit_attempts.fetch_add(1);
          if (!id.is_ok()) {
            ASSERT_EQ(id.status().code(), util::ErrorCode::kOverloaded);
            client_rejected.fetch_add(1);
            std::this_thread::yield();
            continue;
          }
          if (plan.doomed) doomed_count.fetch_add(1);
          {
            std::lock_guard<std::mutex> lock(admitted_mutex);
            admitted.emplace(id.value(), i);
          }
          if (plan.cancel_after) svc.cancel(id.value());
          break;
        }
      }
    });
  }
  for (auto& t : submitters) t.join();

  const auto results = svc.drain();
  const ServiceStats st = svc.stats();

  // No lost jobs: drain returns exactly the admitted set (all kJobs plans),
  // every result carries a terminal outcome, and the stats partition is
  // exact — rejected resubmission attempts included.
  EXPECT_EQ(admitted.size(), static_cast<std::size_t>(kJobs));
  EXPECT_EQ(results.size(), admitted.size());
  EXPECT_EQ(st.submitted, submit_attempts.load());
  EXPECT_EQ(st.rejected, client_rejected.load());
  EXPECT_EQ(st.submitted,
            st.completed + st.failed + st.cancelled + st.expired + st.rejected);
  EXPECT_EQ(st.queued, 0);
  EXPECT_EQ(st.running, 0);

  std::int64_t completed = 0, failed = 0, cancelled = 0, expired = 0;
  for (const auto& [id, res] : results) {
    ASSERT_TRUE(admitted.count(id));
    const Plan& plan = plans[static_cast<std::size_t>(admitted.at(id))];
    switch (res.outcome) {
      case JobOutcome::kCompleted:
        ++completed;
        EXPECT_TRUE(res.status.is_ok());
        EXPECT_GT(res.start_sequence, 0u);
        EXPECT_FALSE(plan.doomed);
        break;
      case JobOutcome::kFailed:
        ++failed;
        EXPECT_FALSE(res.status.is_ok());
        break;
      case JobOutcome::kCancelled:
        ++cancelled;
        EXPECT_EQ(res.status.code(), util::ErrorCode::kCancelled);
        EXPECT_TRUE(plan.cancel_after);
        break;
      case JobOutcome::kExpired:
        ++expired;
        EXPECT_EQ(res.status.code(), util::ErrorCode::kDeadlineExceeded);
        EXPECT_TRUE(plan.doomed);
        EXPECT_EQ(res.start_sequence, 0u);  // 1ns deadline: expired at dequeue
        break;
      case JobOutcome::kCount:
        FAIL() << "non-terminal outcome leaked from drain()";
    }
  }
  EXPECT_EQ(completed, st.completed);
  EXPECT_EQ(failed, st.failed);
  EXPECT_EQ(cancelled, st.cancelled);
  EXPECT_EQ(expired, st.expired);
  // Every doomed job expires (its deadline predates its dequeue), and
  // nothing else can expire (no other job has a deadline).
  EXPECT_EQ(expired, doomed_count.load());

  // The obs counters mirror the per-service stats (fresh after reset).
  EXPECT_EQ(obs::counter_value(obs::Counter::kServeJobsSubmitted),
            submit_attempts.load());
  EXPECT_EQ(obs::counter_value(obs::Counter::kServeJobsRejected), st.rejected);
  EXPECT_EQ(obs::counter_value(obs::Counter::kServeJobsCompleted), st.completed);
  EXPECT_EQ(obs::counter_value(obs::Counter::kServeJobsFailed), st.failed);
  EXPECT_EQ(obs::counter_value(obs::Counter::kServeJobsCancelled), st.cancelled);
  EXPECT_EQ(obs::counter_value(obs::Counter::kServeJobsExpired), st.expired);
}

TEST(SchedulerStress, ShutdownChurnWithInFlightJobs) {
  // Construct/destroy services with jobs still queued and running; the
  // destructor must account for every admitted job and never hang or leak
  // (TSan/ASan verify the "never" part).
  Rng rng(42);
  for (int round = 0; round < 12; ++round) {
    ReductionService svc({.runners = 2, .max_queue = 16});
    const int jobs = static_cast<int>(rng.uniform_int(1, 12));
    for (int i = 0; i < jobs; ++i) {
      JobRequest req;
      req.name = "churn";
      req.system = circuit::make_rc_line(
          {.segments = static_cast<index>(rng.uniform_int(20, 60))});
      req.options.num_samples = static_cast<index>(rng.uniform_int(8, 32));
      req.priority = static_cast<Priority>(rng.uniform_int(0, 2));
      auto id = svc.submit(std::move(req));
      ASSERT_TRUE(id.is_ok());
    }
    // Destructor runs here with work outstanding.
  }
}

}  // namespace
}  // namespace pmtbr::serve
