// Shared fixtures: seeded random matrices, random stable systems, and
// comparison helpers used across the test suite.
#pragma once

#include <cmath>

#include "la/matrix.hpp"
#include "la/ops.hpp"
#include "util/rng.hpp"

namespace pmtbr::testing {

using la::cd;
using la::index;
using la::MatC;
using la::MatD;

inline MatD random_matrix(index rows, index cols, Rng& rng, double scale = 1.0) {
  MatD m(rows, cols);
  for (index i = 0; i < rows; ++i)
    for (index j = 0; j < cols; ++j) m(i, j) = rng.normal(0.0, scale);
  return m;
}

inline MatC random_complex_matrix(index rows, index cols, Rng& rng, double scale = 1.0) {
  MatC m(rows, cols);
  for (index i = 0; i < rows; ++i)
    for (index j = 0; j < cols; ++j) m(i, j) = cd(rng.normal(0.0, scale), rng.normal(0.0, scale));
  return m;
}

inline MatD random_spd(index n, Rng& rng) {
  const MatD g = random_matrix(n, n, rng);
  MatD s = la::matmul(g, la::transpose(g));
  for (index i = 0; i < n; ++i) s(i, i) += 0.1 * static_cast<double>(n);
  return s;
}

/// Random Hurwitz-stable matrix: A = S - G G^T - margin*I with S skew.
inline MatD random_stable(index n, Rng& rng, double margin = 0.5) {
  const MatD g = random_matrix(n, n, rng, 1.0 / std::sqrt(static_cast<double>(n)));
  const MatD skew_src = random_matrix(n, n, rng);
  MatD a = la::matmul(g, la::transpose(g));
  a *= -1.0;
  for (index i = 0; i < n; ++i) {
    for (index j = 0; j < n; ++j) a(i, j) += 0.5 * (skew_src(i, j) - skew_src(j, i));
    a(i, i) -= margin;
  }
  return a;
}

/// Checks Q^T Q ≈ I.
inline double orthonormality_defect(const MatD& q) {
  const MatD g = la::matmul(la::transpose(q), q);
  double worst = 0;
  for (index i = 0; i < g.rows(); ++i)
    for (index j = 0; j < g.cols(); ++j)
      worst = std::max(worst, std::abs(g(i, j) - (i == j ? 1.0 : 0.0)));
  return worst;
}

}  // namespace pmtbr::testing
