#include "la/schur.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "la/ops.hpp"
#include "helpers.hpp"

namespace pmtbr::la {
namespace {

double unitary_defect(const MatC& q) {
  const MatC g = matmul(adjoint(q), q);
  return max_abs_diff(g, MatC::identity(q.cols()));
}

TEST(Schur, ReconstructsRandomComplex) {
  Rng rng(31);
  const MatC a = testing::random_complex_matrix(8, 8, rng);
  const auto f = schur(a);
  EXPECT_LT(unitary_defect(f.q), 1e-10);
  const MatC recon = matmul(f.q, matmul(f.t, adjoint(f.q)));
  EXPECT_LT(max_abs_diff(recon, a), 1e-9 * std::max(1.0, norm_fro(a)));
  // T strictly upper triangular below diagonal.
  for (index i = 0; i < 8; ++i)
    for (index j = 0; j < i; ++j) EXPECT_EQ(f.t(i, j), cd{0});
}

TEST(Schur, RealMatrixComplexPairs) {
  // Rotation-like matrix has eigenvalues cos±i sin.
  MatD a{{0, -1}, {1, 0}};
  const auto w = eigenvalues(a);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(std::abs(w[0]), 1.0, 1e-12);
  EXPECT_NEAR(w[0].real(), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(w[0].imag()), 1.0, 1e-12);
}

TEST(Schur, TriangularInputUnchangedEigenvalues) {
  MatC a(3, 3);
  a(0, 0) = cd(1, 0);
  a(1, 1) = cd(2, 0);
  a(2, 2) = cd(3, 0);
  a(0, 2) = cd(5, 1);
  const auto w = eigenvalues(a);
  EXPECT_NEAR(w[0].real(), 3.0, 1e-12);
  EXPECT_NEAR(w[2].real(), 1.0, 1e-12);
}

TEST(Schur, EigenvaluesOfSymmetricMatchEigSym) {
  Rng rng(32);
  MatD a = testing::random_matrix(6, 6, rng);
  a += transpose(a);
  const auto w = eigenvalues(a);
  std::vector<double> re;
  for (const auto& v : w) {
    EXPECT_NEAR(v.imag(), 0.0, 1e-9);
    re.push_back(v.real());
  }
  std::sort(re.begin(), re.end());
  // Compare with trace (cheap independent invariant).
  double trace = 0, sum = 0;
  for (index i = 0; i < 6; ++i) trace += a(i, i);
  for (double v : re) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(Eig, RightEigenvectorsSatisfyDefinition) {
  Rng rng(33);
  const MatD a = testing::random_matrix(7, 7, rng);
  const auto e = eig(a);
  const MatC ac = to_complex(a);
  for (index k = 0; k < 7; ++k) {
    std::vector<cd> v(7);
    for (index i = 0; i < 7; ++i) v[static_cast<std::size_t>(i)] = e.vectors(i, k);
    const auto av = matvec(ac, v);
    double worst = 0;
    for (index i = 0; i < 7; ++i)
      worst = std::max(worst,
                       std::abs(av[static_cast<std::size_t>(i)] -
                                e.values[static_cast<std::size_t>(k)] * v[static_cast<std::size_t>(i)]));
    EXPECT_LT(worst, 1e-7 * std::max(1.0, std::abs(e.values[static_cast<std::size_t>(k)])));
  }
}

TEST(Eig, SortedByMagnitude) {
  Rng rng(34);
  const MatD a = testing::random_matrix(9, 9, rng);
  const auto e = eig(a);
  for (std::size_t i = 1; i < e.values.size(); ++i)
    EXPECT_GE(std::abs(e.values[i - 1]), std::abs(e.values[i]) - 1e-14);
}

class SchurSizes : public ::testing::TestWithParam<int> {};

TEST_P(SchurSizes, EigenvalueSumEqualsTrace) {
  const index n = GetParam();
  Rng rng(300 + static_cast<std::uint64_t>(n));
  const MatD a = testing::random_matrix(n, n, rng);
  const auto w = eigenvalues(a);
  cd sum{};
  for (const auto& v : w) sum += v;
  double trace = 0;
  for (index i = 0; i < n; ++i) trace += a(i, i);
  const double nd = static_cast<double>(n);
  EXPECT_NEAR(sum.real(), trace, 1e-8 * std::max(1.0, std::abs(trace)) * nd);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-8 * nd);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SchurSizes, ::testing::Values(1, 2, 3, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace pmtbr::la
