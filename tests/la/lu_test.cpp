#include "la/lu.hpp"

#include <gtest/gtest.h>

#include "la/ops.hpp"
#include "helpers.hpp"

namespace pmtbr::la {
namespace {

TEST(Lu, SolvesKnownSystem) {
  MatD a{{2, 1}, {1, 3}};
  const LuD lu(a);
  const auto x = lu.solve(std::vector<double>{5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotsOnZeroDiagonal) {
  MatD a{{0, 1}, {1, 0}};
  const LuD lu(a);
  const auto x = lu.solve(std::vector<double>{2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, SingularThrows) {
  MatD a{{1, 2}, {2, 4}};
  EXPECT_THROW(LuD{a}, std::runtime_error);
}

TEST(Lu, InverseTimesSelfIsIdentity) {
  Rng rng(5);
  const MatD a = testing::random_matrix(8, 8, rng);
  const LuD lu(a);
  const MatD prod = matmul(a, lu.inverse());
  EXPECT_LT(max_abs_diff(prod, MatD::identity(8)), 1e-10);
}

TEST(Lu, TransposeSolve) {
  Rng rng(6);
  const MatD a = testing::random_matrix(7, 7, rng);
  const LuD lu(a);
  const auto b = rng.normal_vec(7);
  const auto x = lu.solve_transpose(b);
  const auto back = matvec(transpose(a), x);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_NEAR(back[i], b[i], 1e-10);
}

TEST(Lu, ComplexSolve) {
  Rng rng(7);
  const MatC a = testing::random_complex_matrix(6, 6, rng);
  const LuC lu(a);
  std::vector<cd> b(6);
  for (auto& v : b) v = cd(rng.normal(), rng.normal());
  const auto x = lu.solve(b);
  const auto back = matvec(a, x);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(back[i].real(), b[i].real(), 1e-10);
    EXPECT_NEAR(back[i].imag(), b[i].imag(), 1e-10);
  }
}

TEST(Lu, LogAbsDetDiagonal) {
  MatD a{{2, 0}, {0, 8}};
  const LuD lu(a);
  EXPECT_NEAR(lu.log_abs_det(), std::log(16.0), 1e-12);
}

TEST(Lu, MatrixRhs) {
  Rng rng(8);
  const MatD a = testing::random_matrix(5, 5, rng);
  const MatD b = testing::random_matrix(5, 3, rng);
  const MatD x = solve(a, b);
  EXPECT_LT(max_abs_diff(matmul(a, x), b), 1e-10);
}

// Property sweep: residual stays small across sizes.
class LuSizes : public ::testing::TestWithParam<int> {};

TEST_P(LuSizes, ResidualSmall) {
  const index n = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(n));
  const MatD a = testing::random_matrix(n, n, rng);
  const MatD b = testing::random_matrix(n, 2, rng);
  const MatD x = LuD(a).solve(b);
  const double res = max_abs_diff(matmul(a, x), b);
  EXPECT_LT(res, 1e-9 * std::max(1.0, norm_inf(a)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes, ::testing::Values(1, 2, 3, 5, 10, 20, 50, 100));

}  // namespace
}  // namespace pmtbr::la
