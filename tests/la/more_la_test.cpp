// Additional linear-algebra coverage: parameterized property sweeps and
// edge cases for SVD / eig_sym / QR / Schur.
#include <gtest/gtest.h>

#include "la/eig_sym.hpp"
#include "la/ops.hpp"
#include "la/qr.hpp"
#include "la/schur.hpp"
#include "la/svd.hpp"
#include "helpers.hpp"

namespace pmtbr::la {
namespace {

TEST(SvdEdge, OneByOne) {
  MatD a{{-3.0}};
  const auto f = svd(a);
  EXPECT_DOUBLE_EQ(f.s[0], 3.0);
  EXPECT_DOUBLE_EQ(f.u(0, 0) * f.v(0, 0), -1.0);  // sign carried by the vectors
}

TEST(SvdEdge, SingleColumn) {
  MatD a(4, 1);
  a(0, 0) = 3.0;
  a(2, 0) = 4.0;
  const auto f = svd(a);
  EXPECT_NEAR(f.s[0], 5.0, 1e-14);
  EXPECT_NEAR(std::abs(f.u(0, 0)), 0.6, 1e-14);
}

TEST(SvdEdge, ZeroMatrix) {
  MatD a(3, 2);
  const auto f = svd(a);
  EXPECT_DOUBLE_EQ(f.s[0], 0.0);
  EXPECT_DOUBLE_EQ(f.s[1], 0.0);
}

class SvdSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdSizes, ReconstructionAndOrthogonality) {
  const auto [m, n] = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(m * 37 + n));
  const MatD a = testing::random_matrix(m, n, rng);
  const auto f = svd(a);
  const index k = std::min<index>(m, n);
  ASSERT_EQ(static_cast<index>(f.s.size()), k);
  MatD us(m, k);
  for (index i = 0; i < m; ++i)
    for (index j = 0; j < k; ++j) us(i, j) = f.u(i, j) * f.s[static_cast<std::size_t>(j)];
  EXPECT_LT(max_abs_diff(matmul(us, transpose(f.v)), a), 1e-9 * (1.0 + norm_fro(a)));
  EXPECT_LT(testing::orthonormality_defect(f.u), 1e-10);
  EXPECT_LT(testing::orthonormality_defect(f.v), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdSizes,
                         ::testing::Values(std::pair{1, 1}, std::pair{5, 5}, std::pair{20, 3},
                                           std::pair{3, 20}, std::pair{40, 40},
                                           std::pair{60, 10}));

class EigSymSizes : public ::testing::TestWithParam<int> {};

TEST_P(EigSymSizes, OrthogonalityAndResidual) {
  const index n = GetParam();
  Rng rng(2000 + static_cast<std::uint64_t>(n));
  MatD a = testing::random_matrix(n, n, rng);
  a += transpose(a);
  const auto e = eig_sym(a);
  EXPECT_LT(testing::orthonormality_defect(e.vectors), 1e-10);
  // A v_k = w_k v_k for each pair.
  for (index k = 0; k < n; ++k) {
    const auto vk = e.vectors.col(k);
    const auto av = matvec(a, vk);
    double worst = 0;
    for (index i = 0; i < n; ++i)
      worst = std::max(worst, std::abs(av[static_cast<std::size_t>(i)] -
                                       e.values[static_cast<std::size_t>(k)] *
                                           vk[static_cast<std::size_t>(i)]));
    EXPECT_LT(worst, 1e-9 * (1.0 + norm_inf(a)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSymSizes, ::testing::Values(1, 2, 3, 8, 17, 33));

TEST(QrEdge, SingleColumnNormalizes) {
  MatD a(3, 1);
  a(1, 0) = -2.0;
  const auto f = qr(a);
  EXPECT_NEAR(std::abs(f.r(0, 0)), 2.0, 1e-14);
  EXPECT_NEAR(std::abs(f.q(1, 0)), 1.0, 1e-14);
}

TEST(QrEdge, PivotedComplexRank) {
  Rng rng(3001);
  const MatC g = testing::random_complex_matrix(8, 2, rng);
  const MatC a = matmul(g, adjoint(g));  // rank 2 Hermitian
  const auto f = qr_pivoted(a);
  EXPECT_EQ(f.rank, 2);
}

TEST(QrEdge, IdentityIsItsOwnQr) {
  const MatD i3 = MatD::identity(3);
  const auto f = qr(i3);
  EXPECT_LT(max_abs_diff(matmul(f.q, f.r), i3), 1e-14);
}

TEST(SchurEdge, DiagonalMatrixImmediate) {
  MatC a(4, 4);
  for (index i = 0; i < 4; ++i) a(i, i) = cd(static_cast<double>(i) - 2.0, 0.5);
  const auto f = schur(a);
  const MatC recon = matmul(f.q, matmul(f.t, adjoint(f.q)));
  EXPECT_LT(max_abs_diff(recon, a), 1e-12);
}

TEST(SchurEdge, StiffSpectrumConverges) {
  // Eigenvalues spanning 12 decades with clusters — the circuit case that
  // exposed the shift cancellation issue.
  const index n = 24;
  MatD a(n, n);
  Rng rng(3002);
  for (index i = 0; i < n; ++i) a(i, i) = -std::pow(10.0, static_cast<double>(i / 2));
  // Mild nonnormal coupling.
  for (index i = 0; i + 1 < n; ++i) a(i, i + 1) = rng.normal(0.0, 0.1) * std::abs(a(i, i));
  const auto w = eigenvalues(a);
  // All eigenvalues negative real (triangular matrix: they equal the diagonal).
  std::vector<double> got;
  for (const auto& v : w) {
    EXPECT_NEAR(v.imag(), 0.0, 1e-3 * std::abs(v));
    got.push_back(v.real());
  }
  std::sort(got.begin(), got.end());
  EXPECT_NEAR(got.front(), -1e11, 1e3);
}

TEST(SchurEdge, RepeatedEigenvaluesDeflate) {
  // The clustered-eigenvalue case: A = Q D Q^T with D having multiplicity 4.
  const index n = 12;
  Rng rng(3003);
  const auto f = qr(testing::random_matrix(n, n, rng));
  MatD d(n, n);
  for (index i = 0; i < n; ++i) d(i, i) = -1.0 - static_cast<double>(i / 4);
  const MatD a = matmul(f.q, matmul(d, transpose(f.q)));
  const auto w = eigenvalues(a);
  index near_m1 = 0;
  for (const auto& v : w)
    if (std::abs(v - cd(-1.0, 0.0)) < 1e-6) ++near_m1;
  EXPECT_EQ(near_m1, 4);
}

TEST(Ops, RealImagPartsRoundTrip) {
  Rng rng(3004);
  const MatC a = testing::random_complex_matrix(4, 3, rng);
  const MatD re = real_part(a);
  const MatD im = imag_part(a);
  for (index i = 0; i < 4; ++i)
    for (index j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(re(i, j), a(i, j).real());
      EXPECT_DOUBLE_EQ(im(i, j), a(i, j).imag());
    }
}

}  // namespace
}  // namespace pmtbr::la
