#include "la/matrix.hpp"

#include <gtest/gtest.h>

#include "la/ops.hpp"
#include "helpers.hpp"

namespace pmtbr::la {
namespace {

TEST(Matrix, ConstructAndIndex) {
  MatD m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  MatD m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(2, 1), 6);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((MatD{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const MatD i = MatD::identity(3);
  for (index r = 0; r < 3; ++r)
    for (index c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Arithmetic) {
  MatD a{{1, 2}, {3, 4}};
  MatD b{{5, 6}, {7, 8}};
  const MatD c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 6);
  const MatD d = b - a;
  EXPECT_DOUBLE_EQ(d(1, 1), 4);
  const MatD e = a * 2.0;
  EXPECT_DOUBLE_EQ(e(1, 0), 6);
}

TEST(Matrix, ShapeMismatchThrows) {
  MatD a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(Matrix, ColumnsSlice) {
  MatD a{{1, 2, 3}, {4, 5, 6}};
  const MatD s = a.columns(1, 3);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_DOUBLE_EQ(s(1, 0), 5);
  EXPECT_DOUBLE_EQ(s(0, 1), 3);
}

TEST(Matrix, ColRoundTrip) {
  MatD a(3, 2);
  a.set_col(1, {7, 8, 9});
  const auto c = a.col(1);
  EXPECT_DOUBLE_EQ(c[2], 9);
  EXPECT_DOUBLE_EQ(a(0, 1), 7);
}

TEST(Ops, MatmulKnown) {
  MatD a{{1, 2}, {3, 4}};
  MatD b{{5, 6}, {7, 8}};
  const MatD c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Ops, MatmulAssociativityRandom) {
  Rng rng(42);
  const MatD a = testing::random_matrix(4, 5, rng);
  const MatD b = testing::random_matrix(5, 3, rng);
  const MatD c = testing::random_matrix(3, 6, rng);
  const MatD left = matmul(matmul(a, b), c);
  const MatD right = matmul(a, matmul(b, c));
  EXPECT_LT(max_abs_diff(left, right), 1e-12);
}

TEST(Ops, TransposeInvolution) {
  Rng rng(1);
  const MatD a = testing::random_matrix(3, 7, rng);
  EXPECT_LT(max_abs_diff(transpose(transpose(a)), a), 1e-15);
}

TEST(Ops, AdjointConjugates) {
  MatC a(1, 1);
  a(0, 0) = cd(1.0, 2.0);
  const MatC h = adjoint(a);
  EXPECT_DOUBLE_EQ(h(0, 0).real(), 1.0);
  EXPECT_DOUBLE_EQ(h(0, 0).imag(), -2.0);
}

TEST(Ops, NormFro) {
  MatD a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(norm_fro(a), 5.0);
}

TEST(Ops, NormInfIsMaxRowSum) {
  MatD a{{1, -2}, {3, 4}};
  EXPECT_DOUBLE_EQ(norm_inf(a), 7.0);
}

TEST(Ops, DotConjugatesComplex) {
  std::vector<cd> x{cd(0, 1)}, y{cd(0, 1)};
  const cd d = dot(x, y);
  EXPECT_DOUBLE_EQ(d.real(), 1.0);
  EXPECT_DOUBLE_EQ(d.imag(), 0.0);
}

TEST(Ops, RealifyColumnsLayout) {
  MatC z(2, 1);
  z(0, 0) = cd(1, 2);
  z(1, 0) = cd(3, 4);
  const MatD r = realify_columns(z);
  EXPECT_EQ(r.cols(), 2);
  EXPECT_DOUBLE_EQ(r(0, 0), 1);
  EXPECT_DOUBLE_EQ(r(0, 1), 2);
  EXPECT_DOUBLE_EQ(r(1, 0), 3);
  EXPECT_DOUBLE_EQ(r(1, 1), 4);
}

TEST(Ops, HcatShapes) {
  Rng rng(2);
  const MatD a = testing::random_matrix(3, 2, rng);
  const MatD b = testing::random_matrix(3, 4, rng);
  const MatD c = hcat(a, b);
  EXPECT_EQ(c.cols(), 6);
  EXPECT_DOUBLE_EQ(c(1, 1), a(1, 1));
  EXPECT_DOUBLE_EQ(c(2, 5), b(2, 3));
}

TEST(Ops, MatvecMatchesMatmul) {
  Rng rng(3);
  const MatD a = testing::random_matrix(4, 4, rng);
  const auto x = rng.normal_vec(4);
  const auto y = matvec(a, x);
  MatD xm(4, 1);
  xm.set_col(0, x);
  const MatD ym = matmul(a, xm);
  for (index i = 0; i < 4; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], ym(i, 0), 1e-14);
}

}  // namespace
}  // namespace pmtbr::la
