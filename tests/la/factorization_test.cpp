// Cholesky, QR, SVD, and symmetric-eigen tests: known cases plus randomized
// reconstruction properties.
#include <gtest/gtest.h>

#include "la/cholesky.hpp"
#include "la/eig_sym.hpp"
#include "la/ops.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "helpers.hpp"

namespace pmtbr::la {
namespace {

// --- Cholesky ---------------------------------------------------------------

TEST(Cholesky, Known2x2) {
  MatD a{{4, 2}, {2, 5}};
  const MatD l = cholesky(a);
  EXPECT_LT(max_abs_diff(matmul(l, transpose(l)), a), 1e-12);
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
}

TEST(Cholesky, RejectsIndefinite) {
  MatD a{{1, 2}, {2, 1}};
  EXPECT_THROW(cholesky(a), std::runtime_error);
}

TEST(Cholesky, PsdToleratesSemidefinite) {
  // Rank-1 PSD matrix.
  MatD a{{1, 1}, {1, 1}};
  const MatD l = cholesky_psd(a);
  EXPECT_LT(max_abs_diff(matmul(l, transpose(l)), a), 1e-10);
}

TEST(Cholesky, RandomSpdReconstruction) {
  Rng rng(11);
  const MatD a = testing::random_spd(12, rng);
  const MatD l = cholesky(a);
  EXPECT_LT(max_abs_diff(matmul(l, transpose(l)), a), 1e-9 * norm_inf(a));
}

// --- QR ----------------------------------------------------------------------

TEST(Qr, ThinReconstruction) {
  Rng rng(12);
  const MatD a = testing::random_matrix(10, 4, rng);
  const auto f = qr(a);
  EXPECT_EQ(f.q.cols(), 4);
  EXPECT_LT(testing::orthonormality_defect(f.q), 1e-12);
  EXPECT_LT(max_abs_diff(matmul(f.q, f.r), a), 1e-11);
}

TEST(Qr, WideMatrix) {
  Rng rng(13);
  const MatD a = testing::random_matrix(3, 8, rng);
  const auto f = qr(a);
  EXPECT_EQ(f.q.cols(), 3);
  EXPECT_LT(max_abs_diff(matmul(f.q, f.r), a), 1e-11);
}

TEST(Qr, PivotedDetectsRank) {
  Rng rng(14);
  const MatD g = testing::random_matrix(10, 3, rng);
  const MatD a = matmul(g, transpose(g));  // rank 3 in 10x10
  const auto f = qr_pivoted(a);
  EXPECT_EQ(f.rank, 3);
}

TEST(Qr, PivotedReconstructsWithPermutation) {
  Rng rng(15);
  const MatD a = testing::random_matrix(6, 5, rng);
  const auto f = qr_pivoted(a);
  const MatD qr_prod = matmul(f.q, f.r);
  // Column j of Q*R equals column perm[j] of A.
  for (index j = 0; j < a.cols(); ++j)
    for (index i = 0; i < a.rows(); ++i)
      EXPECT_NEAR(qr_prod(i, j), a(i, f.perm[static_cast<std::size_t>(j)]), 1e-11);
}

TEST(Qr, OrthBasisSpansColumnSpace) {
  Rng rng(16);
  const MatD g = testing::random_matrix(8, 2, rng);
  MatD a(8, 4);  // two independent + two dependent columns
  for (index i = 0; i < 8; ++i) {
    a(i, 0) = g(i, 0);
    a(i, 1) = g(i, 1);
    a(i, 2) = g(i, 0) + g(i, 1);
    a(i, 3) = 2.0 * g(i, 0) - g(i, 1);
  }
  const MatD q = orth(a);
  EXPECT_EQ(q.cols(), 2);
  EXPECT_LT(testing::orthonormality_defect(q), 1e-12);
}

TEST(Qr, ComplexThin) {
  Rng rng(17);
  const MatC a = testing::random_complex_matrix(7, 3, rng);
  const auto f = qr(a);
  const MatC prod = matmul(f.q, f.r);
  EXPECT_LT(max_abs_diff(prod, a), 1e-11);
  const MatC g = matmul(adjoint(f.q), f.q);
  EXPECT_LT(max_abs_diff(g, MatC::identity(3)), 1e-12);
}

// --- SVD ----------------------------------------------------------------------

TEST(Svd, KnownDiagonal) {
  MatD a{{3, 0}, {0, -2}};
  const auto f = svd(a);
  ASSERT_EQ(f.s.size(), 2u);
  EXPECT_NEAR(f.s[0], 3.0, 1e-12);
  EXPECT_NEAR(f.s[1], 2.0, 1e-12);
}

TEST(Svd, ReconstructionTall) {
  Rng rng(18);
  const MatD a = testing::random_matrix(12, 5, rng);
  const auto f = svd(a);
  MatD us(12, 5);
  for (index i = 0; i < 12; ++i)
    for (index j = 0; j < 5; ++j) us(i, j) = f.u(i, j) * f.s[static_cast<std::size_t>(j)];
  EXPECT_LT(max_abs_diff(matmul(us, transpose(f.v)), a), 1e-10);
  EXPECT_LT(testing::orthonormality_defect(f.u), 1e-11);
  EXPECT_LT(testing::orthonormality_defect(f.v), 1e-11);
}

TEST(Svd, ReconstructionWide) {
  Rng rng(19);
  const MatD a = testing::random_matrix(4, 9, rng);
  const auto f = svd(a);
  MatD us(4, 4);
  for (index i = 0; i < 4; ++i)
    for (index j = 0; j < 4; ++j) us(i, j) = f.u(i, j) * f.s[static_cast<std::size_t>(j)];
  EXPECT_LT(max_abs_diff(matmul(us, transpose(f.v)), a), 1e-10);
}

TEST(Svd, SingularValuesDescending) {
  Rng rng(20);
  const MatD a = testing::random_matrix(15, 8, rng);
  const auto s = singular_values(a);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GE(s[i - 1], s[i]);
}

TEST(Svd, RankDeficientTailIsZero) {
  Rng rng(21);
  const MatD g = testing::random_matrix(10, 3, rng);
  const MatD a = matmul(g, transpose(g));
  const auto s = singular_values(a);
  for (std::size_t i = 3; i < s.size(); ++i) EXPECT_LT(s[i], 1e-10 * s[0]);
}

TEST(Svd, HighRelativeAccuracyOnGradedMatrix) {
  // Diagonal spanning 12 orders of magnitude: one-sided Jacobi should get
  // every singular value to high *relative* accuracy.
  const index n = 6;
  MatD a(n, n);
  for (index i = 0; i < n; ++i) a(i, i) = std::pow(10.0, -2.0 * static_cast<double>(i));
  const auto s = singular_values(a);
  for (index i = 0; i < n; ++i)
    EXPECT_NEAR(s[static_cast<std::size_t>(i)] / a(i, i), 1.0, 1e-10);
}

TEST(Svd, FrobeniusNormIdentity) {
  Rng rng(22);
  const MatD a = testing::random_matrix(9, 6, rng);
  const auto s = singular_values(a);
  double sum = 0;
  for (double x : s) sum += x * x;
  EXPECT_NEAR(std::sqrt(sum), norm_fro(a), 1e-10);
}

// --- symmetric eigensolver -----------------------------------------------------

TEST(EigSym, Known2x2) {
  MatD a{{2, 1}, {1, 2}};
  const auto e = eig_sym(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
}

TEST(EigSym, ReconstructsRandomSymmetric) {
  Rng rng(23);
  MatD a = testing::random_matrix(10, 10, rng);
  a += transpose(a);
  const auto e = eig_sym(a);
  MatD vl(10, 10);
  for (index i = 0; i < 10; ++i)
    for (index j = 0; j < 10; ++j) vl(i, j) = e.vectors(i, j) * e.values[static_cast<std::size_t>(j)];
  EXPECT_LT(max_abs_diff(matmul(vl, transpose(e.vectors)), a), 1e-9);
  EXPECT_LT(testing::orthonormality_defect(e.vectors), 1e-11);
}

TEST(EigSym, PsdFactorReconstructs) {
  Rng rng(24);
  const MatD g = testing::random_matrix(8, 3, rng);
  const MatD a = matmul(g, transpose(g));
  const MatD l = psd_factor(a);
  EXPECT_EQ(l.cols(), 3);  // rank revealed
  EXPECT_LT(max_abs_diff(matmul(l, transpose(l)), a), 1e-9);
}

TEST(EigSym, TraceMatchesEigenvalueSum) {
  Rng rng(25);
  MatD a = testing::random_matrix(7, 7, rng);
  a += transpose(a);
  const auto e = eig_sym(a);
  double trace = 0, sum = 0;
  for (index i = 0; i < 7; ++i) trace += a(i, i);
  for (double v : e.values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-10);
}

}  // namespace
}  // namespace pmtbr::la
