// Contracts of the blocked dense-kernel layer: GEMM edge cases against the
// scalar reference, blocked compact-WY QR backward error against the
// unblocked reference, TSQR subspace/backward-error/reproducibility, and
// Matrix::resize.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "helpers.hpp"
#include "la/matrix.hpp"
#include "la/ops.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "la/tsqr.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr {
namespace {

using la::cd;
using la::index;
using la::MatC;
using la::MatD;
using testing::orthonormality_defect;
using testing::random_complex_matrix;
using testing::random_matrix;

constexpr double kEps = std::numeric_limits<double>::epsilon();

struct ScopedThreads {
  explicit ScopedThreads(int n) { util::set_global_threads(n); }
  ~ScopedThreads() { util::set_global_threads(util::resolve_num_threads(nullptr)); }
};

double max_abs_diff(const MatD& a, const MatD& b) {
  double worst = 0;
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
  return worst;
}

double max_abs_diff(const MatC& a, const MatC& b) {
  double worst = 0;
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
  return worst;
}

// --- GEMM ------------------------------------------------------------------

TEST(Gemm, MatchesReferenceAcrossTailTileShapes) {
  Rng rng(101);
  // Shapes straddling every blocking boundary: micro-tile tails (mr=4,
  // nr=8), mc/kc/nc block tails, and single-row/column extremes.
  const index shapes[][3] = {{1, 1, 1},   {1, 17, 5},  {17, 1, 5},   {5, 5, 1},
                             {3, 7, 2},   {4, 8, 16},  {37, 29, 53}, {97, 9, 257},
                             {96, 8, 256}, {100, 515, 30}};
  for (const auto& s : shapes) {
    const MatD a = random_matrix(s[0], s[2], rng);
    const MatD b = random_matrix(s[2], s[1], rng);
    const MatD ref = la::matmul_reference(a, b);
    const MatD got = la::matmul(a, b);
    const double tol = 32.0 * kEps * static_cast<double>(s[2] + 1);
    EXPECT_LT(max_abs_diff(got, ref), tol)
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(Gemm, ComplexMatchesReference) {
  Rng rng(103);
  const MatC a = random_complex_matrix(33, 21, rng);
  const MatC b = random_complex_matrix(21, 19, rng);
  EXPECT_LT(max_abs_diff(la::matmul(a, b), la::matmul_reference(a, b)), 1e3 * kEps);
}

TEST(Gemm, InnerDimensionZeroGivesZeroMatrix) {
  const MatD a(5, 0);
  const MatD b(0, 7);
  const MatD c = la::matmul(a, b);
  ASSERT_EQ(c.rows(), 5);
  ASSERT_EQ(c.cols(), 7);
  for (index i = 0; i < c.rows(); ++i)
    for (index j = 0; j < c.cols(); ++j) EXPECT_EQ(c(i, j), 0.0);
}

TEST(Gemm, MatmulIntoRejectsAliasedOutput) {
  Rng rng(107);
  MatD a = random_matrix(6, 6, rng);
  const MatD b = random_matrix(6, 6, rng);
  EXPECT_THROW(la::matmul_into(a, b, a), std::invalid_argument);
}

TEST(Gemm, MatmulAtMatchesMaterializedTranspose) {
  Rng rng(109);
  const MatD a = random_matrix(211, 17, rng);
  const MatD b = random_matrix(211, 23, rng);
  const MatD via_at = la::matmul_at(a, b);
  const MatD via_t = la::matmul_reference(la::transpose(a), b);
  EXPECT_LT(max_abs_diff(via_at, via_t), 1e4 * kEps);

  const MatC ac = random_complex_matrix(64, 9, rng);
  const MatC bc = random_complex_matrix(64, 11, rng);
  // matmul_at is A^H·B for complex operands.
  EXPECT_LT(max_abs_diff(la::matmul_at(ac, bc), la::matmul_reference(la::adjoint(ac), bc)),
            1e4 * kEps);
}

TEST(Gemm, BitIdenticalAcrossThreadCounts) {
  Rng rng(113);
  const MatD a = random_matrix(300, 280, rng);
  const MatD b = random_matrix(280, 290, rng);
  MatD one, four;
  {
    ScopedThreads t(1);
    one = la::matmul(a, b);
  }
  {
    ScopedThreads t(4);
    four = la::matmul(a, b);
  }
  EXPECT_EQ(max_abs_diff(one, four), 0.0);
}

// --- blocked QR ------------------------------------------------------------

TEST(BlockedQr, BackwardErrorAndOrthogonalityMatchReference) {
  Rng rng(211);
  const std::pair<index, index> shapes[] = {
      {160, 96}, {96, 96}, {96, 160} /* wide: k = m < n */, {301, 67}};
  for (const auto& shape : shapes) {
    const index m = shape.first, n = shape.second;
    const MatD a = random_matrix(m, n, rng);
    const auto blocked = la::qr(a);
    const auto ref = la::qr_reference(a);
    ASSERT_EQ(blocked.q.rows(), ref.q.rows());
    ASSERT_EQ(blocked.r.cols(), ref.r.cols());

    const double anorm = la::norm_fro(a);
    const double cn = static_cast<double>(std::max(m, n));
    // ‖A − QR‖ ≤ c·n·ε·‖A‖ for both paths, with the same constant.
    MatD residual = la::matmul(blocked.q, blocked.r);
    residual -= a;
    EXPECT_LT(la::norm_fro(residual), 64.0 * cn * kEps * anorm) << m << "x" << n;
    MatD ref_residual = la::matmul(ref.q, ref.r);
    ref_residual -= a;
    EXPECT_LT(la::norm_fro(ref_residual), 64.0 * cn * kEps * anorm);

    EXPECT_LT(orthonormality_defect(blocked.q), 64.0 * cn * kEps) << m << "x" << n;
    // R factors agree (same Householder phase convention in both paths).
    EXPECT_LT(max_abs_diff(blocked.r, ref.r), 1e4 * cn * kEps * anorm);
  }
}

TEST(BlockedQr, ComplexBackwardError) {
  Rng rng(223);
  const MatC a = random_complex_matrix(150, 80, rng);
  const auto f = la::qr(a);
  MatC residual = la::matmul(f.q, f.r);
  residual -= a;
  EXPECT_LT(la::norm_fro(residual), 1e-12 * la::norm_fro(a));
}

// --- TSQR ------------------------------------------------------------------

TEST(Tsqr, BackwardErrorOrthogonalityAndRMatchFlatQr) {
  Rng rng(307);
  const index m = 3000, n = 24;  // chunk 512 → multiple leaves
  const MatD a = random_matrix(m, n, rng);
  const auto t = la::tsqr(a);
  ASSERT_EQ(t.q.rows(), m);
  ASSERT_EQ(t.q.cols(), n);
  ASSERT_EQ(t.r.rows(), n);

  MatD residual = la::matmul(t.q, t.r);
  residual -= a;
  const double anorm = la::norm_fro(a);
  EXPECT_LT(la::norm_fro(residual), 64.0 * static_cast<double>(m) * kEps * anorm);
  EXPECT_LT(orthonormality_defect(t.q), 1e-13);

  // Same column space as the flat factorization: every singular value of
  // Q_tsqrᵀ·Q_flat is a principal-angle cosine and must be 1.
  const auto flat = la::qr(a);
  const auto s = la::singular_values(la::matmul_at(t.q, flat.q));
  ASSERT_EQ(static_cast<index>(s.size()), n);
  EXPECT_GT(s.back(), 1.0 - 1e-12);
  EXPECT_LT(s.front(), 1.0 + 1e-12);
}

TEST(Tsqr, BitReproducibleAcrossThreadCounts) {
  Rng rng(311);
  const MatD a = random_matrix(2100, 17, rng);
  la::TsqrResult<double> one, four;
  {
    ScopedThreads t(1);
    one = la::tsqr(a);
  }
  {
    ScopedThreads t(4);
    four = la::tsqr(a);
  }
  EXPECT_EQ(max_abs_diff(one.q, four.q), 0.0);
  EXPECT_EQ(max_abs_diff(one.r, four.r), 0.0);
}

TEST(Tsqr, SmallInputFallsBackToFlatQr) {
  Rng rng(313);
  const MatD a = random_matrix(40, 8, rng);  // below 2 leaves → flat path
  const auto t = la::tsqr(a);
  MatD residual = la::matmul(t.q, t.r);
  residual -= a;
  EXPECT_LT(la::norm_fro(residual), 1e-13 * la::norm_fro(a));
  EXPECT_LT(orthonormality_defect(t.q), 1e-13);
}

// --- Matrix::resize --------------------------------------------------------

TEST(Matrix, ResizeReshapesAndZeroes) {
  MatD m(2, 3);
  m(0, 0) = 5.0;
  m(1, 2) = -1.0;
  m.resize(4, 2);
  ASSERT_EQ(m.rows(), 4);
  ASSERT_EQ(m.cols(), 2);
  for (index i = 0; i < 4; ++i)
    for (index j = 0; j < 2; ++j) EXPECT_EQ(m(i, j), 0.0);
  m(3, 1) = 2.0;
  m.resize(1, 1);
  EXPECT_EQ(m(0, 0), 0.0);
}

}  // namespace
}  // namespace pmtbr
