// Precondition and finite-check contracts on the dense kernels: shape
// mismatches throw std::invalid_argument, NaN/Inf inputs are caught at the
// entry points when finite checks are on, and the Matrix constructor
// rejects element counts that overflow the index type.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "la/cholesky.hpp"
#include "la/eig_sym.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/ops.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "helpers.hpp"

namespace pmtbr::la {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(MatrixContract, RejectsNegativeDimensions) {
  EXPECT_THROW(MatD(-1, 3), std::invalid_argument);
  EXPECT_THROW(MatD(3, -1), std::invalid_argument);
}

TEST(MatrixContract, RejectsElementCountOverflow) {
  // Regression: rows*cols used to be computed in `index` before any
  // validation, so two large-but-valid dimensions overflowed into a small
  // or negative count instead of failing loudly.
  const index big = index{1} << 40;
  EXPECT_THROW(MatD(big, big), std::invalid_argument);
  EXPECT_THROW(MatD(std::numeric_limits<index>::max(), 2), std::invalid_argument);
}

TEST(MatrixContract, ZeroDimensionsStayLegal) {
  EXPECT_NO_THROW(MatD(0, 0));
  EXPECT_NO_THROW(MatD(0, index{1} << 40));  // 0 columns of any width is 0 elements
}

TEST(MatmulContract, InnerDimensionMismatchThrows) {
  const MatD a(2, 3, 1.0);
  const MatD b(4, 2, 1.0);
  try {
    matmul(a, b);
    FAIL() << "matmul accepted mismatched inner dimensions";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ops.cpp:"), std::string::npos) << e.what();
  }
}

TEST(MatvecContract, LengthMismatchThrows) {
  const MatD a(2, 3, 1.0);
  EXPECT_THROW(matvec(a, std::vector<double>(4, 1.0)), std::invalid_argument);
}

TEST(LuContract, NonSquareThrows) {
  EXPECT_THROW(LuD(MatD(3, 2, 1.0)), std::invalid_argument);
}

TEST(LuContract, SolveLengthMismatchThrows) {
  const LuD lu(MatD::identity(3));
  EXPECT_THROW(lu.solve(std::vector<double>(2, 1.0)), std::invalid_argument);
  EXPECT_THROW(lu.solve(MatD(2, 1, 1.0)), std::invalid_argument);
}

TEST(CholeskyContract, NonSquareThrows) {
  EXPECT_THROW(cholesky(MatD(2, 3, 1.0)), std::invalid_argument);
  EXPECT_THROW(cholesky_psd(MatD(2, 3, 1.0)), std::invalid_argument);
}

TEST(CholeskyContract, NegativeToleranceThrows) {
  EXPECT_THROW(cholesky_psd(MatD::identity(2), -1e-3), std::invalid_argument);
}

TEST(QrContract, NegativeToleranceThrows) {
  EXPECT_THROW(qr_pivoted(MatD::identity(2), -1.0), std::invalid_argument);
}

TEST(FiniteContract, MatmulCatchesNanWhenEnabled) {
  contracts::ScopedFiniteChecks on(true);
  MatD a = MatD::identity(3);
  a(1, 2) = kNan;
  EXPECT_THROW(matmul(a, MatD::identity(3)), std::runtime_error);
  EXPECT_THROW(matmul(MatD::identity(3), a), std::runtime_error);
}

TEST(FiniteContract, FactorizationsCatchNanWhenEnabled) {
  contracts::ScopedFiniteChecks on(true);
  Rng rng(7);
  MatD a = testing::random_spd(4, rng);
  a(2, 2) = kNan;
  EXPECT_THROW(LuD{a}, std::runtime_error);
  EXPECT_THROW(qr(a), std::runtime_error);
  EXPECT_THROW(svd(a), std::runtime_error);
  EXPECT_THROW(cholesky(a), std::runtime_error);
  a(2, 3) = a(3, 2) = a(2, 2);  // keep it symmetric for eig_sym's contract
  EXPECT_THROW(eig_sym(a), std::runtime_error);
}

TEST(FiniteContract, CleanInputsUnaffectedWhenEnabled) {
  contracts::ScopedFiniteChecks on(true);
  Rng rng(11);
  const MatD a = testing::random_spd(4, rng);
  EXPECT_NO_THROW(LuD{a});
  EXPECT_NO_THROW(cholesky(a));
  EXPECT_NO_THROW(matmul(a, a));
}

TEST(FiniteContract, DisabledChecksLetNanFlowThrough) {
  // With the switch off the scan must not run: matmul on NaN input returns
  // a NaN result rather than throwing.
  contracts::ScopedFiniteChecks off(false);
  MatD a = MatD::identity(2);
  a(0, 0) = kNan;
  MatD prod;
  EXPECT_NO_THROW(prod = matmul(a, MatD::identity(2)));
  EXPECT_FALSE(is_finite(prod));
}

}  // namespace
}  // namespace pmtbr::la
