// Sign-function Lyapunov / Sylvester solver tests: residuals, SPD-ness,
// analytic cases, and the additivity property used in the paper's entropy
// argument (Sec. IV-A).
#include <gtest/gtest.h>

#include "la/eig_sym.hpp"
#include "la/ops.hpp"
#include "lyap/lyapunov.hpp"
#include "lyap/sylvester.hpp"
#include "helpers.hpp"

namespace pmtbr::lyap {
namespace {

using la::index;
using la::MatD;
using pmtbr::Rng;

TEST(Lyapunov, ScalarAnalytic) {
  // a x + x a + q = 0 with a = -2, q = 4  =>  x = 1.
  MatD a{{-2.0}};
  MatD q{{4.0}};
  const MatD x = solve_lyapunov(a, q);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
}

TEST(Lyapunov, DiagonalAnalytic) {
  // For diagonal A, X_ij = -Q_ij / (a_i + a_j).
  MatD a{{-1.0, 0.0}, {0.0, -3.0}};
  MatD q{{2.0, 1.0}, {1.0, 6.0}};
  const MatD x = solve_lyapunov(a, q);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 0.25, 1e-12);
  EXPECT_NEAR(x(1, 1), 1.0, 1e-12);
}

TEST(Lyapunov, ResidualSmallOnRandomStable) {
  Rng rng(51);
  const MatD a = testing::random_stable(15, rng);
  const MatD b = testing::random_matrix(15, 3, rng);
  const MatD q = la::matmul(b, la::transpose(b));
  const MatD x = solve_lyapunov(a, q);
  EXPECT_LT(lyapunov_residual(a, x, q), 1e-8 * (1.0 + la::norm_fro(q)));
}

TEST(Lyapunov, GramianIsPsd) {
  Rng rng(52);
  const MatD a = testing::random_stable(12, rng);
  const MatD b = testing::random_matrix(12, 2, rng);
  const MatD x = controllability_gramian(a, b);
  const auto eig = la::eig_sym(x);
  EXPECT_GE(eig.values.back(), -1e-10 * eig.values.front());
}

TEST(Lyapunov, MatchesTimeDomainIntegralForSymmetric) {
  // For A = -I, X = ∫ e^{-t} BB^T e^{-t} dt = BB^T / 2.
  const index n = 4;
  MatD a(n, n);
  for (index i = 0; i < n; ++i) a(i, i) = -1.0;
  Rng rng(53);
  const MatD b = testing::random_matrix(n, 2, rng);
  const MatD x = controllability_gramian(a, b);
  MatD expected = la::matmul(b, la::transpose(b));
  expected *= 0.5;
  EXPECT_LT(la::max_abs_diff(x, expected), 1e-10);
}

TEST(Lyapunov, ObservabilityViaTranspose) {
  Rng rng(54);
  const MatD a = testing::random_stable(10, rng);
  const MatD c = testing::random_matrix(2, 10, rng);
  const MatD y = observability_gramian(a, c);
  const MatD q = la::matmul(la::transpose(c), c);
  const MatD r = la::matmul(la::transpose(a), y) + la::matmul(y, a) + q;
  EXPECT_LT(la::norm_fro(r), 1e-8 * (1.0 + la::norm_fro(q)));
}

TEST(Lyapunov, GramianAdditivityOverInputs) {
  // Paper Sec. IV-A: X(B1 ∪ B2) = X(B1) + X(B2).
  Rng rng(55);
  const MatD a = testing::random_stable(8, rng);
  const MatD b1 = testing::random_matrix(8, 2, rng);
  const MatD b2 = testing::random_matrix(8, 3, rng);
  const MatD x1 = controllability_gramian(a, b1);
  const MatD x2 = controllability_gramian(a, b2);
  const MatD x12 = controllability_gramian(a, la::hcat(b1, b2));
  EXPECT_LT(la::max_abs_diff(x12, x1 + x2), 1e-8 * (1.0 + la::norm_fro(x12)));
}

TEST(Lyapunov, UnstableThrows) {
  MatD a{{1.0}};  // not Hurwitz
  MatD q{{1.0}};
  EXPECT_THROW(solve_lyapunov(a, q), std::runtime_error);
}

TEST(Sylvester, ScalarAnalytic) {
  // a x + x b + c = 0 with a = -1, b = -3, c = 8  =>  x = 2.
  MatD a{{-1.0}}, b{{-3.0}}, c{{8.0}};
  const MatD x = solve_sylvester(a, b, c);
  EXPECT_NEAR(x(0, 0), 2.0, 1e-12);
}

TEST(Sylvester, ResidualSmallRectangular) {
  Rng rng(56);
  const MatD a = testing::random_stable(7, rng);
  const MatD b = testing::random_stable(5, rng);
  const MatD c = testing::random_matrix(7, 5, rng);
  const MatD x = solve_sylvester(a, b, c);
  EXPECT_LT(sylvester_residual(a, b, c, x), 1e-8 * (1.0 + la::norm_fro(c)));
}

TEST(Sylvester, CrossGramianSisoSquaresToXY) {
  // For SISO systems X_CG^2 = X * Y (paper Sec. V-D).
  Rng rng(57);
  const MatD a = testing::random_stable(6, rng);
  const MatD b = testing::random_matrix(6, 1, rng);
  const MatD c = testing::random_matrix(1, 6, rng);
  const MatD xcg = cross_gramian(a, b, c);
  const MatD x = controllability_gramian(a, b);
  const MatD y = observability_gramian(a, c);
  EXPECT_LT(la::max_abs_diff(la::matmul(xcg, xcg), la::matmul(x, y)),
            1e-7 * (1.0 + la::norm_fro(la::matmul(x, y))));
}

class LyapSizes : public ::testing::TestWithParam<int> {};

TEST_P(LyapSizes, ResidualScalesWithSize) {
  const index n = GetParam();
  Rng rng(600 + static_cast<std::uint64_t>(n));
  const MatD a = testing::random_stable(n, rng);
  const MatD b = testing::random_matrix(n, 2, rng);
  const MatD q = la::matmul(b, la::transpose(b));
  const MatD x = solve_lyapunov(a, q);
  EXPECT_LT(lyapunov_residual(a, x, q), 1e-7 * (1.0 + la::norm_fro(q)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LyapSizes, ::testing::Values(2, 5, 10, 25, 50));

}  // namespace
}  // namespace pmtbr::lyap
