// Contracts on the Lyapunov/Sylvester solvers and residuals: shape and
// option validation throws std::invalid_argument before any arithmetic.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "lyap/lyapunov.hpp"
#include "lyap/sylvester.hpp"
#include "helpers.hpp"

namespace pmtbr::lyap {
namespace {

using la::MatD;
using testing::random_stable;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(LyapunovContract, NonSquareThrows) {
  EXPECT_THROW(solve_lyapunov(MatD(2, 3, 1.0), MatD(2, 2, 1.0)), std::invalid_argument);
}

TEST(LyapunovContract, ShapeMismatchThrows) {
  Rng rng(5);
  const MatD a = random_stable(3, rng);
  EXPECT_THROW(solve_lyapunov(a, MatD(2, 2, 1.0)), std::invalid_argument);
}

TEST(LyapunovContract, BadOptionsThrow) {
  Rng rng(5);
  const MatD a = random_stable(2, rng);
  const MatD q = MatD::identity(2);
  LyapunovOptions opts;
  opts.max_iterations = 0;
  EXPECT_THROW(solve_lyapunov(a, q, opts), std::invalid_argument);
  opts.max_iterations = 50;
  opts.tolerance = 0.0;
  EXPECT_THROW(solve_lyapunov(a, q, opts), std::invalid_argument);
}

TEST(LyapunovContract, ResidualShapeMismatchThrows) {
  const MatD a = MatD::identity(3);
  EXPECT_THROW(lyapunov_residual(a, MatD(2, 2, 1.0), MatD(3, 3, 1.0)), std::invalid_argument);
  EXPECT_THROW(lyapunov_residual(a, MatD(3, 3, 1.0), MatD(3, 2, 1.0)), std::invalid_argument);
}

TEST(LyapunovContract, GramianFactorRowMismatchThrows) {
  Rng rng(9);
  const MatD a = random_stable(3, rng);
  EXPECT_THROW(controllability_gramian(a, MatD(2, 1, 1.0)), std::invalid_argument);
  EXPECT_THROW(observability_gramian(a, MatD(1, 2, 1.0)), std::invalid_argument);
}

TEST(LyapunovContract, NanInputCaughtWhenFiniteChecksOn) {
  contracts::ScopedFiniteChecks on(true);
  Rng rng(13);
  MatD a = random_stable(3, rng);
  a(0, 1) = kNan;
  EXPECT_THROW(solve_lyapunov(a, MatD::identity(3)), std::runtime_error);
}

TEST(SylvesterContract, ShapeMismatchThrows) {
  Rng rng(21);
  const MatD a = random_stable(2, rng);
  const MatD b = random_stable(3, rng);
  EXPECT_THROW(solve_sylvester(a, b, MatD(3, 2, 1.0)), std::invalid_argument);
  EXPECT_THROW(solve_sylvester(MatD(2, 3, 1.0), b, MatD(2, 3, 1.0)), std::invalid_argument);
}

TEST(SylvesterContract, ResidualShapeMismatchThrows) {
  const MatD a = MatD::identity(2);
  const MatD b = MatD::identity(3);
  const MatD c(2, 3, 1.0);
  EXPECT_THROW(sylvester_residual(a, b, c, MatD(3, 3, 1.0)), std::invalid_argument);
  EXPECT_THROW(sylvester_residual(a, b, MatD(3, 2, 1.0), MatD(2, 3, 1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace pmtbr::lyap
