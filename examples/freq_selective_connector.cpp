// Frequency-selective reduction (paper Algorithm 2) on the 18-pin shielded
// connector: focus all modeling effort on the band the application cares
// about, instead of letting a global method spend order on out-of-band
// resonances.
//
//   ./freq_selective_connector [--fmax_ghz=8] [--order=18] [--samples=40]
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "signal/ac.hpp"
#include "util/cli.hpp"

using namespace pmtbr;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double fmax = args.get_double("fmax_ghz", 8.0) * 1e9;

  // Energy coordinates make the one-sided SVD rank directions by physical
  // energy rather than raw voltage/current magnitude (see DESIGN.md).
  const DescriptorSystem sys = to_energy_standard(circuit::make_connector({}));
  std::cout << "connector model: " << sys.n() << " states\n";

  // Band-limited PMTBR: all samples inside [0, fmax].
  mor::PmtbrOptions popts;
  popts.bands = {mor::Band{0.0, fmax}};
  popts.num_samples = args.get_int("samples", 40);
  popts.fixed_order = args.get_int("order", 18);
  const auto pm = mor::pmtbr(sys, popts);

  // Global TBR at substantially higher order for comparison.
  mor::TbrOptions topts;
  topts.fixed_order = args.get_int("tbr_order", 30);
  const auto tb = mor::tbr(sys, topts);

  const auto in_band = mor::linspace_grid(1e8, fmax, 40);
  const auto e_pm = mor::compare_on_grid(sys, pm.model.system, in_band);
  const auto e_tb = mor::compare_on_grid(sys, tb.model.system, in_band);
  std::cout << "in-band max error:  PMTBR(" << pm.model.system.n() << ") = " << e_pm.max_abs
            << "   TBR(" << tb.model.system.n() << ") = " << e_tb.max_abs << '\n';

  // Show a few spot frequencies of the through/crosstalk transfer entry.
  std::cout << "\n  f(GHz)   |H| exact   |H| PMTBR   |H| TBR\n";
  for (const double f : {0.5e9, 2e9, 4e9, 6e9, 0.95 * fmax}) {
    const auto he = signal::ac_sweep(sys, {f}, 1, 0)[0].magnitude;
    const auto hp = signal::ac_sweep(pm.model.system, {f}, 1, 0)[0].magnitude;
    const auto ht = signal::ac_sweep(tb.model.system, {f}, 1, 0)[0].magnitude;
    std::printf("  %6.2f   %9.4g   %9.4g   %9.4g\n", f / 1e9, he, hp, ht);
  }
  std::cout << "\nPMTBR focuses its " << pm.model.system.n()
            << " states on the band of interest; the larger global TBR model spreads\n"
               "effort over the whole axis (the paper's Fig. 11 phenomenon).\n";
  return 0;
}
