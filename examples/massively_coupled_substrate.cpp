// Input-correlated reduction (paper Algorithm 3) of a massively coupled
// substrate network: exploit correlations between port waveforms to get a
// model far smaller than the port count — where PRIMA/PVL are impractical
// (model size >= ports x moments).
//
//   ./massively_coupled_substrate [--grid=16] [--ports=150] [--order=8]
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/input_correlated.hpp"
#include "signal/correlation.hpp"
#include "signal/transient.hpp"
#include "signal/waveform.hpp"
#include "util/cli.hpp"

using namespace pmtbr;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);

  circuit::SubstrateParams sp;
  sp.grid = args.get_int("grid", 16);
  sp.num_ports = args.get_int("ports", 150);
  const DescriptorSystem sys = circuit::make_substrate(sp);
  std::cout << "substrate network: " << sys.n() << " states, " << sys.num_inputs()
            << " ports\n";

  // Stimulus: correlated bulk-current-like pulses (a few global switching
  // sources drive every contact through different gains).
  Rng rng(args.get_seed("seed", 7));
  signal::BulkCurrentSpec bc;
  bc.num_ports = sys.num_inputs();
  bc.num_sources = args.get_int("sources", 5);
  const double t_end = 6e-8;
  const auto bank = signal::make_bulk_currents(bc, t_end, rng);
  const auto samples = signal::sample_waveforms(bank, t_end, 400);
  std::cout << "input ensemble effective rank: " << signal::effective_rank(samples, 1e-6)
            << " (of " << sys.num_inputs() << " ports)\n";

  // Input-correlated PMTBR: the input SVD focuses sampling on directions
  // that actually occur.
  mor::InputCorrelatedOptions ic;
  ic.bands = {mor::Band{0.0, 2e9}};
  ic.num_freq_samples = 12;
  ic.draws_per_frequency = 0;
  ic.fixed_order = args.get_int("order", 8);
  const auto red = mor::input_correlated_tbr(sys, samples, ic);
  std::cout << "reduced model: " << red.model.system.n() << " states  ("
            << sys.n() / red.model.system.n() << "x compression)\n";

  // Validate in the time domain under the trained stimulus class.
  signal::TransientOptions sim;
  sim.t_end = t_end;
  sim.steps = 800;
  const auto in = signal::bank_input(bank);
  const auto full = signal::simulate(sys, in, sim);
  const auto r = signal::simulate(red.model.system, in, sim);
  const auto err = signal::compare_outputs(full, r);
  std::cout << "transient: max error " << err.max_abs << " vs signal peak " << err.max_ref
            << "  (rms " << err.rms << ")\n";
  std::cout << "note: PRIMA matching even one block moment here would need "
            << sys.num_inputs() << " states.\n";
  return 0;
}
