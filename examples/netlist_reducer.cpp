// Command-line model reducer driven by a SPICE-like netlist file: the
// closest thing to "PMTBR as a tool". Reads a netlist, reduces it with the
// requested algorithm, reports accuracy/passivity, and optionally dumps the
// reduced state-space matrices as CSV.
//
//   ./netlist_reducer <netlist-file> [--method=pmtbr|tbr|prima|pvl]
//                     [--order=N] [--tol=1e-8] [--fmax=1e10] [--samples=20]
//                     [--dump=prefix]
//
// With no file argument, a built-in demo RLC netlist is used.
#include <fstream>
#include <iostream>
#include <sstream>

#include "circuit/parser.hpp"
#include "mor/error.hpp"
#include "mor/passivity.hpp"
#include "mor/pmtbr.hpp"
#include "mor/prima.hpp"
#include "mor/pvl.hpp"
#include "mor/tbr.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

using namespace pmtbr;

namespace {

constexpr const char* kDemoNetlist = R"(* demo: two coupled lossy LC tanks behind an RC front end
R1  in   a    25
C1  a    0    2p
L1  a    b    3n
R2  b    c    1
C2  c    0    1p
L2  c    d    2n
K1  L1   L2   0.25
R3  d    0    50
C3  in   0    0.5p
C4  b    0    0.2p
C5  d    0    0.3p
.port in
.end
)";

void dump_matrix(const std::string& path, const la::MatD& m) {
  std::ofstream f(path);
  for (la::index i = 0; i < m.rows(); ++i) {
    for (la::index j = 0; j < m.cols(); ++j) f << (j ? "," : "") << format_double(m(i, j));
    f << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);

  circuit::Netlist nl;
  if (args.positional().empty()) {
    std::cout << "no netlist given; using the built-in demo RLC network\n";
    nl = circuit::parse_netlist_string(kDemoNetlist);
  } else {
    std::ifstream f(args.positional()[0]);
    if (!f) {
      std::cerr << "cannot open " << args.positional()[0] << '\n';
      return 1;
    }
    nl = circuit::parse_netlist(f);
  }
  const DescriptorSystem sys = circuit::assemble_mna(nl);
  std::cout << "parsed: " << nl.num_nodes() << " nodes, " << sys.n() << " states, "
            << sys.num_inputs() << " port(s)\n";

  const std::string method = args.get("method", "pmtbr");
  const double fmax = args.get_double("fmax", 1e10);
  const int order = args.get_int("order", -1);
  mor::ReducedModel model;

  if (method == "pmtbr") {
    mor::PmtbrOptions opts;
    opts.bands = {mor::Band{0.0, fmax}};
    opts.num_samples = args.get_int("samples", 20);
    if (order > 0)
      opts.fixed_order = order;
    else
      opts.truncation_tol = args.get_double("tol", 1e-8);
    model = mor::pmtbr(sys, opts).model;
  } else if (method == "tbr") {
    mor::TbrOptions opts;
    if (order > 0)
      opts.fixed_order = order;
    else
      opts.error_tol = args.get_double("tol", 1e-8);
    model = mor::tbr(sys, opts).model;
  } else if (method == "prima") {
    mor::PrimaOptions opts;
    opts.num_moments = order > 0 ? order : 4;
    model = mor::prima(sys, opts).model;
  } else if (method == "pvl") {
    mor::PvlOptions opts;
    opts.order = order > 0 ? order : 6;
    model = mor::pvl(sys, opts).model;
  } else {
    std::cerr << "unknown --method=" << method << " (pmtbr|tbr|prima|pvl)\n";
    return 1;
  }

  std::cout << method << " reduced model: " << model.system.n() << " states\n";

  const auto grid = mor::logspace_grid(std::max(1e5, fmax * 1e-5), fmax, 40);
  const auto err = mor::compare_on_grid(sys, model.system, grid);
  std::cout << "max relative error on [" << grid.front() << ", " << grid.back()
            << "] Hz: " << err.max_rel << '\n';

  const auto rep = mor::check_passivity(model.system, grid);
  std::cout << "stability: " << (rep.stable ? "stable" : "UNSTABLE")
            << " (pole margin " << rep.min_pole_margin << ")\n"
            << "grid dissipativity: " << (rep.dissipative_on_grid ? "passive" : "NOT passive")
            << " (min eig " << rep.min_dissipation << " @ " << rep.worst_frequency_hz
            << " Hz)\n";

  if (args.has("dump")) {
    const std::string prefix = args.get("dump", "reduced");
    dump_matrix(prefix + "_E.csv", model.system.e());
    dump_matrix(prefix + "_A.csv", model.system.a());
    dump_matrix(prefix + "_B.csv", model.system.b());
    dump_matrix(prefix + "_C.csv", model.system.c());
    std::cout << "wrote " << prefix << "_{E,A,B,C}.csv\n";
  }
  return 0;
}
