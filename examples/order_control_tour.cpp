// Tour of PMTBR's order-control machinery (paper Sec. V-B/C): the
// incremental compressor, trailing singular values as error estimates, the
// adaptive stopping rule, and the comparison against the exact TBR bound.
//
//   ./order_control_tour [--levels=6]
#include <cstdio>
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "util/cli.hpp"

using namespace pmtbr;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  circuit::ClockTreeParams cp;
  cp.levels = args.get_int("levels", 6);
  const DescriptorSystem sys = circuit::make_clock_tree(cp);
  std::cout << "clock tree: " << sys.n() << " states\n\n";

  // 1. Tolerance-driven order selection.
  std::cout << "tolerance-driven order selection (60-sample budget, adaptive 2.5x rule):\n";
  std::cout << "  tolerance  order  samples  realized max-rel-error\n";
  const auto grid = mor::logspace_grid(1e6, 1e10, 25);
  for (const double tol : {1e-2, 1e-4, 1e-6, 1e-8}) {
    mor::PmtbrOptions opts;
    opts.bands = {mor::Band{0.0, 1e10}};
    opts.num_samples = 60;
    opts.truncation_tol = tol;
    opts.adaptive_excess = 2.5;
    const auto res = mor::pmtbr(sys, opts);
    const auto err = mor::compare_on_grid(sys, res.model.system, grid);
    std::printf("  %8.0e  %5td  %7zu  %g\n", tol, res.model.system.n(),
                res.samples_used.size(), err.max_rel);
  }

  // 2. The singular-value "tail" vs the exact TBR bound.
  std::cout << "\nPMTBR tail estimate vs exact Glover bound (both normalized):\n";
  mor::PmtbrOptions opts;
  opts.bands = {mor::Band{0.0, 1e10}};
  opts.num_samples = 50;
  opts.fixed_order = 12;
  const auto res = mor::pmtbr(sys, opts);
  const auto hsv = mor::hankel_singular_values(sys);
  const auto& sv = res.model.singular_values;
  double sv_total = 0;
  for (double s : sv) sv_total += s;
  std::cout << "  order  pmtbr_tail  tbr_bound\n";
  for (la::index q = 2; q <= 12; q += 2) {
    double tail = 0;
    for (std::size_t i = static_cast<std::size_t>(q); i < sv.size(); ++i) tail += sv[i];
    std::printf("  %5td  %10.3e  %9.3e\n", q, tail / sv_total,
                mor::tbr_error_bound(hsv, q) / mor::tbr_error_bound(hsv, 0));
  }
  std::cout << "\nBoth decay together: the sampled spectrum is a usable stand-in for the\n"
               "Hankel spectrum when choosing the model order (paper Sec. V-B).\n";
  return 0;
}
