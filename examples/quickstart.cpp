// Quickstart: build a circuit, reduce it with PMTBR, inspect the error
// estimate, and verify the model in both frequency and time domain.
//
//   ./quickstart [--segments=100] [--order=8] [--samples=20]
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "signal/transient.hpp"
#include "util/cli.hpp"

using namespace pmtbr;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);

  // 1. A circuit model: here a generated RC line; real users would build a
  //    circuit::Netlist element by element and call assemble_mna().
  circuit::RcLineParams lp;
  lp.segments = args.get_int("segments", 100);
  const DescriptorSystem sys = circuit::make_rc_line(lp);
  std::cout << "full model: " << sys.n() << " states, " << sys.num_inputs() << " port(s)\n";

  // 2. Reduce with PMTBR: pick a band of interest, a sample budget, and
  //    either a fixed order or a truncation tolerance.
  mor::PmtbrOptions opts;
  opts.bands = {mor::Band{0.0, 5e9}};
  opts.num_samples = args.get_int("samples", 20);
  if (args.has("order"))
    opts.fixed_order = args.get_int("order", 8);
  else
    opts.truncation_tol = 1e-8;
  const mor::PmtbrResult red = mor::pmtbr(sys, opts);
  std::cout << "reduced model: " << red.model.system.n() << " states\n";

  // 3. The singular values are the error-control handle (paper Sec. V-B):
  std::cout << "leading singular values of ZW:";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, red.model.singular_values.size()); ++i)
    std::cout << ' ' << red.model.singular_values[i];
  std::cout << '\n';

  // 4. Verify in the frequency domain...
  const auto grid = mor::logspace_grid(1e6, 5e9, 30);
  const auto err = mor::compare_on_grid(sys, red.model.system, grid);
  std::cout << "frequency-domain max relative error: " << err.max_rel << '\n';

  // 5. ...and in the time domain with a step input.
  signal::TransientOptions sim;
  sim.t_end = 2e-8;
  sim.steps = 400;
  const auto input = [](double t) { return std::vector<double>{t > 1e-9 ? 1.0 : 0.0}; };
  const auto full = signal::simulate(sys, input, sim);
  const auto reduced = signal::simulate(red.model.system, input, sim);
  const auto terr = signal::compare_outputs(full, reduced);
  std::cout << "transient max error: " << terr.max_abs << " (signal peak " << terr.max_ref
            << ")\n";

  std::cout << "reduced model is " << (red.model.system.is_stable(-1e-9) ? "stable" : "UNSTABLE")
            << '\n';
  return 0;
}
