// End-to-end macromodeling flow: reduce an RC interconnect with PMTBR,
// extract poles/residues, synthesize a Foster RC equivalent circuit, and
// emit it as a SPICE-compatible netlist — the artifact a downstream circuit
// team would actually consume.
//
//   ./macromodel_synthesis [--segments=60] [--order=6] [--out=macromodel.sp]
#include <fstream>
#include <iostream>

#include "circuit/generators.hpp"
#include "circuit/parser.hpp"
#include "circuit/writer.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/synthesis.hpp"
#include "util/cli.hpp"

using namespace pmtbr;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);

  circuit::RcLineParams lp;
  lp.segments = args.get_int("segments", 60);
  const DescriptorSystem full = circuit::make_rc_line(lp);
  std::cout << "full interconnect model: " << full.n() << " states\n";

  // 1. Reduce.
  mor::PmtbrOptions opts;
  opts.bands = {mor::Band{0.0, 2e9}};
  opts.num_samples = 20;
  opts.fixed_order = args.get_int("order", 6);
  const auto red = mor::pmtbr(full, opts);
  std::cout << "PMTBR model: " << red.model.system.n() << " states\n";

  // 2. Poles and residues of the reduced driving-point impedance.
  const auto pr = mor::pole_residue(red.model.system);
  std::cout << "poles (rad/s) and residues:\n";
  for (std::size_t i = 0; i < pr.poles.size(); ++i)
    std::cout << "  p" << i << " = " << pr.poles[i].real() << "    r" << i << " = "
              << pr.residues[i].real() << '\n';

  // 3. Foster synthesis into a parallel-RC chain.
  const auto synth = mor::synthesize_foster_rc(pr);
  std::cout << "synthesized netlist: " << synth.num_nodes() << " nodes, "
            << synth.conductances().size() << " resistors, " << synth.capacitors().size()
            << " capacitors\n";

  // 4. Serialize (and show the netlist text).
  const std::string text = circuit::netlist_to_string(synth, "PMTBR macromodel of RC line");
  std::cout << "\n" << text << "\n";
  if (args.has("out")) {
    std::ofstream f(args.get("out", "macromodel.sp"));
    f << text;
    std::cout << "wrote " << args.get("out", "macromodel.sp") << '\n';
  }

  // 5. Verify the synthesized circuit against the original full model.
  const auto back = circuit::assemble_mna(circuit::parse_netlist_string(text));
  double worst = 0;
  for (const double f : mor::logspace_grid(1e6, 2e9, 25)) {
    const la::cd s(0.0, 2.0 * 3.14159265358979 * f);
    const la::cd hf = full.transfer(s)(0, 0);
    const la::cd hs = back.transfer(s)(0, 0);
    worst = std::max(worst, std::abs(hf - hs) / std::abs(hf));
  }
  std::cout << "synthesized vs. original full model, max relative error: " << worst << '\n';
  return 0;
}
