// ReductionService — the batched, multi-tenant reduction service core
// (docs/SERVING.md).
//
// Accepts concurrent JobRequests behind a bounded admission queue
// (backpressure: submit() returns kOverloaded when full), schedules them by
// (priority desc, deadline asc, submission order) onto a fixed set of
// runner threads, and executes each job through the fault-tolerant sampling
// pipeline with a per-job CancelToken threaded into the mor loops. Within-
// job parallelism rides the shared util::global_pool(), so one service
// instance saturates the machine without oversubscribing it: runners block
// in pmtbr while the pool's workers do the solves.
//
// Lifecycle guarantees:
//  - every admitted job reaches exactly one terminal JobOutcome (no lost
//    jobs), observable via wait()/drain();
//  - cancel() is cooperative: a queued job finalizes immediately, a running
//    job winds down at its next sampling checkpoint;
//  - deadlines are enforced at dequeue (kExpired without running) and
//    mid-run (the token's armed deadline surfaces kDeadlineExceeded, which
//    the service maps to kExpired);
//  - a failing job (coverage floor, bad options, poisoned netlist) is an
//    ordinary kFailed result — it never takes down the batch or the service;
//  - destruction cancels everything outstanding and joins the runners.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/job.hpp"
#include "util/annotations.hpp"
#include "util/fingerprint.hpp"
#include "util/lru.hpp"
#include "util/mutex.hpp"

namespace pmtbr::serve {

class ModelCache;

using JobId = std::uint64_t;

struct ServiceOptions {
  /// Dedicated runner threads, each executing one job at a time. Keep small:
  /// per-job parallelism comes from the shared thread pool, and runners
  /// beyond ~2-4 only add pool contention.
  int runners = 2;
  /// Bounded admission queue: submissions beyond this many queued (not yet
  /// started) jobs are rejected with kOverloaded.
  index max_queue = 64;
  /// Memoize completed reductions by job fingerprint and coalesce
  /// concurrent identical jobs (docs/SERVING.md). Suspended automatically
  /// while fault injection is armed, so injected failures stay exactly
  /// reproducible.
  bool model_cache = true;
  /// Model-cache byte budget; 0 = PMTBR_CACHE_BYTES or 256 MiB. A budget
  /// resolving to 0 disables the cache for this service.
  std::size_t model_cache_bytes = 0;
};

/// Monotonic service totals. The outcome fields partition every terminal
/// job, so after drain():
///   submitted == completed + failed + cancelled + expired + rejected.
/// (`submitted` counts every submit() call, including rejected ones;
/// rejected submissions are terminal immediately.)
struct ServiceStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t expired = 0;
  std::int64_t rejected = 0;
  /// Completed jobs whose result came from the model cache (an LRU hit or
  /// a coalesced in-flight join) instead of a fresh reduction. Always a
  /// subset of `completed` — the partition identity is unchanged.
  std::int64_t cache_hits = 0;
  std::int64_t queued = 0;   // gauge: admitted, not yet started
  std::int64_t running = 0;  // gauge: currently executing
  double queue_seconds = 0.0;  // total admission-to-start (or -terminal) wait
  double run_seconds = 0.0;    // total execution wall time
};

/// ("serve", <json>) manifest extra — the service section of
/// pmtbr-manifest/1 (validated by tools/report_metrics.py).
std::pair<std::string, std::string> serve_extra(const ServiceStats& stats);

class ReductionService {
 public:
  explicit ReductionService(ServiceOptions opts = {});
  ~ReductionService() PMTBR_EXCLUDES(mutex_);

  ReductionService(const ReductionService&) = delete;
  ReductionService& operator=(const ReductionService&) = delete;

  /// Admits a job or rejects it: kOverloaded when the queue is full,
  /// kCancelled when the service is shutting down.
  util::Expected<JobId> submit(JobRequest req) PMTBR_EXCLUDES(mutex_);

  /// Requests cooperative cancellation. Returns true if the job exists and
  /// had not finished; a running job stops at its next sampling checkpoint
  /// (so a true return does not guarantee a kCancelled outcome).
  bool cancel(JobId id) PMTBR_EXCLUDES(mutex_);

  /// Blocks until the job is terminal and returns its result. The id must
  /// come from a successful submit() on this service.
  JobResult wait(JobId id) PMTBR_EXCLUDES(mutex_);

  /// Waits for every admitted job; results ordered by JobId.
  std::vector<std::pair<JobId, JobResult>> drain() PMTBR_EXCLUDES(mutex_);

  ServiceStats stats() const PMTBR_EXCLUDES(mutex_);

  /// Hit/miss/eviction totals of this service's model cache (zeros when
  /// the cache is disabled) — feeds cache_extra() and the bench artifact.
  util::CacheStats model_cache_stats() const;

 private:
  enum class JobState { kQueued, kRunning, kDone };

  // All mutable Job fields are guarded by the service-wide mutex_ while the
  // job is kQueued/kDone; while kRunning, `req`/`result` are owned
  // exclusively by the executing runner (published back under mutex_ at
  // finalize). The token's internals are atomic and lock-free.
  struct Job {
    JobId id = 0;
    JobRequest req;
    util::CancelToken token = util::CancelToken::make();
    std::chrono::steady_clock::time_point submitted_at;
    std::chrono::steady_clock::time_point deadline_at;  // valid iff has_deadline
    bool has_deadline = false;
    JobState state = JobState::kQueued;
    JobResult result;
    // Model-cache key, computed once at submission (immutable afterwards;
    // cacheable is false for weight_fn jobs or a cache-less service).
    bool cacheable = false;
    util::Fingerprint cache_key;
  };

  /// Removes and returns the best queued job: highest priority, then
  /// earliest deadline, then lowest id. Deterministic for a fixed queue.
  std::shared_ptr<Job> pop_best_locked() PMTBR_REQUIRES(mutex_);

  /// Records the terminal state: result fields, stats, obs counters, and
  /// the done notification.
  void finalize_locked(Job& job, JobOutcome outcome, util::Status status,
                       std::chrono::steady_clock::time_point now)
      PMTBR_REQUIRES(mutex_);

  void runner_loop() PMTBR_EXCLUDES(mutex_);

  /// Runs the job's reduction through the model cache: LRU hit, coalesced
  /// join of an identical in-flight job, or a fresh (leader) computation.
  /// Returns true when the result came from the cache. Throws
  /// util::StatusError exactly like a direct reduction would.
  bool execute_job(Job& job) PMTBR_EXCLUDES(mutex_);

  ServiceOptions opts_;
  std::unique_ptr<ModelCache> cache_;  // null when disabled
  mutable util::Mutex mutex_;
  util::ConditionVariable work_cv_;  // queue gained work, or stop
  util::ConditionVariable done_cv_;  // some job reached a terminal state
  JobId next_id_ PMTBR_GUARDED_BY(mutex_) = 1;
  std::uint64_t next_start_seq_ PMTBR_GUARDED_BY(mutex_) = 1;
  bool stop_ PMTBR_GUARDED_BY(mutex_) = false;
  std::map<JobId, std::shared_ptr<Job>> jobs_ PMTBR_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<Job>> queue_ PMTBR_GUARDED_BY(mutex_);
  ServiceStats stats_ PMTBR_GUARDED_BY(mutex_);
  std::vector<std::thread> runners_;
};

}  // namespace pmtbr::serve
