#include "serve/job.hpp"

#include "circuit/parser.hpp"

namespace pmtbr::serve {

util::Expected<JobRequest> job_from_netlist(const std::string& netlist_text,
                                            const mor::PmtbrOptions& options,
                                            const std::string& name) {
  auto sys = circuit::try_assemble_netlist(netlist_text);
  if (!sys.is_ok()) return sys.status();
  JobRequest req;
  req.name = name;
  req.system = std::move(sys).value();
  req.options = options;
  return req;
}

}  // namespace pmtbr::serve
