#include "serve/model_cache.hpp"

#include <sstream>

#include "util/obs/counters.hpp"
#include "util/obs/json.hpp"

namespace pmtbr::serve {

namespace {

std::size_t dense_bytes(const la::MatD& m) { return m.size() * sizeof(double); }

void mix_options(util::FingerprintHasher& h, const mor::PmtbrOptions& opts) {
  h.mix(opts.bands.size());
  for (const mor::Band& band : opts.bands) {
    h.mix_double(band.f_lo);
    h.mix_double(band.f_hi);
  }
  h.mix_i64(static_cast<std::int64_t>(opts.num_samples));
  h.mix_i64(static_cast<std::int64_t>(opts.scheme));
  h.mix_i64(static_cast<std::int64_t>(opts.fixed_order));
  h.mix_double(opts.truncation_tol);
  h.mix_i64(static_cast<std::int64_t>(opts.max_order));
  h.mix_double(opts.adaptive_excess);
  h.mix_i64(static_cast<std::int64_t>(opts.min_samples));
  h.mix_i64(opts.resilience.max_retries);
  h.mix_double(opts.resilience.retry_shift_eps);
  h.mix_double(opts.resilience.diag_reg);
  h.mix_double(opts.resilience.min_coverage);
  h.mix_i64(static_cast<std::int64_t>(opts.compressor));
}

}  // namespace

std::optional<util::Fingerprint> job_fingerprint(const JobRequest& req) {
  // A std::function weight has no content identity: two textually equal
  // lambdas are distinct values, so memoizing across them would be wrong.
  if (req.options.weight_fn) return std::nullopt;
  util::FingerprintHasher h;
  const util::Fingerprint system = req.system.content_fingerprint();
  h.mix(system.hi);
  h.mix(system.lo);
  h.mix_i64(static_cast<std::int64_t>(req.method));
  mix_options(h, req.options);
  if (req.method == Method::kPmtbrAdaptive) {
    h.mix_double(req.adaptive.band.f_lo);
    h.mix_double(req.adaptive.band.f_hi);
    h.mix_i64(static_cast<std::int64_t>(req.adaptive.initial_samples));
    h.mix_i64(static_cast<std::int64_t>(req.adaptive.max_samples));
    h.mix_double(req.adaptive.novelty_tol);
  }
  return h.digest();
}

std::size_t result_bytes(const mor::PmtbrResult& result) {
  const mor::DenseSystem& sys = result.model.system;
  std::size_t bytes = dense_bytes(sys.e()) + dense_bytes(sys.a()) + dense_bytes(sys.b()) +
                      dense_bytes(sys.c()) + dense_bytes(result.model.v) +
                      dense_bytes(result.model.w);
  bytes += result.model.singular_values.size() * sizeof(double);
  bytes += result.hankel_estimates.size() * sizeof(double);
  bytes += result.samples_used.size() * sizeof(mor::FrequencySample);
  bytes += result.degradation.failures.size() * sizeof(mor::SampleFailure);
  return bytes;
}

ModelCache::ModelCache(std::size_t byte_budget)
    : lru_({0, byte_budget > 0 ? byte_budget
                               : util::cache_byte_budget(kDefaultModelCacheBytes)}) {}

ModelCache::ResultPtr ModelCache::lookup(const util::Fingerprint& key) {
  auto hit = lru_.get(key);
  if (hit.has_value()) {
    obs::counter_add(obs::Counter::kModelCacheHit);
    return *hit;
  }
  obs::counter_add(obs::Counter::kModelCacheMiss);
  return nullptr;
}

void ModelCache::insert(const util::Fingerprint& key, ResultPtr result) {
  const std::size_t bytes = result_bytes(*result);
  const util::EvictionReport ev = lru_.put(key, std::move(result), bytes);
  if (!ev.inserted) return;
  obs::counter_add(obs::Counter::kModelCacheBytes,
                   static_cast<std::int64_t>(bytes) - ev.bytes - ev.replaced_bytes);
  if (ev.count > 0) obs::counter_add(obs::Counter::kModelCacheEvict, ev.count);
}

void ModelCache::note_coalesced(std::int64_t n) {
  lru_.add_coalesced(n);
  obs::counter_add(obs::Counter::kModelCacheCoalesced, n);
}

namespace {

void write_layer(obs::JsonWriter& w, const util::CacheStats& st) {
  w.begin_object();
  w.key("hits");
  w.value(st.hits);
  w.key("misses");
  w.value(st.misses);
  w.key("evictions");
  w.value(st.evictions);
  w.key("coalesced");
  w.value(st.coalesced);
  w.key("entries");
  w.value(st.entries);
  w.key("bytes");
  w.value(st.bytes);
  w.end_object();
}

}  // namespace

std::pair<std::string, std::string> cache_extra(const util::CacheStats& model,
                                                const util::CacheStats& factor) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("model");
  write_layer(w, model);
  w.key("factor");
  write_layer(w, factor);
  w.end_object();
  return {"cache", os.str()};
}

}  // namespace pmtbr::serve
