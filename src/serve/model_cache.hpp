// Per-service memoization of completed reductions plus the job
// fingerprinting that keys it (docs/SERVING.md).
//
// A job's fingerprint digests everything that determines its PmtbrResult:
// the system's content fingerprint and the canonicalized options surface.
// Scheduling metadata (name, priority, deadline) and the cancel token are
// excluded — they affect *when* a job runs, never *what* it computes. A
// request carrying a custom weight_fn is uncacheable (std::function has
// no content identity) and reports nullopt.
//
// The cache stores shared_ptr<const PmtbrResult>: a hit deep-copies the
// result into the job, so cached and freshly computed results are
// bit-identical by construction (the stored value IS a completed job's
// result). The embedded SingleFlight gate lets the service coalesce N
// concurrent identical jobs into one reduction.
//
// The byte budget defaults to PMTBR_CACHE_BYTES (k/m/g suffixes) or
// 256 MiB; 0 disables the cache entirely.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "mor/pmtbr.hpp"
#include "serve/job.hpp"
#include "util/fingerprint.hpp"
#include "util/lru.hpp"

namespace pmtbr::serve {

/// Stable job key, or nullopt for uncacheable requests (custom weight_fn).
std::optional<util::Fingerprint> job_fingerprint(const JobRequest& req);

/// Estimated resident size of one cached result (model matrices, bases,
/// samples, spectra).
std::size_t result_bytes(const mor::PmtbrResult& result);

/// Default model-cache byte budget before the PMTBR_CACHE_BYTES override.
inline constexpr std::size_t kDefaultModelCacheBytes = std::size_t{256} << 20;

class ModelCache {
 public:
  using ResultPtr = std::shared_ptr<const mor::PmtbrResult>;
  using FlightGate = util::SingleFlight<util::Fingerprint, ResultPtr, util::FingerprintHash>;

  /// `byte_budget` = 0 resolves PMTBR_CACHE_BYTES (default 256 MiB); an
  /// explicit budget wins over the environment.
  explicit ModelCache(std::size_t byte_budget = 0);

  bool enabled() const { return lru_.enabled(); }

  /// Cached result or nullptr; bumps model_cache_hit/miss counters.
  ResultPtr lookup(const util::Fingerprint& key);

  /// Memoizes a completed result, evicting past the byte budget.
  void insert(const util::Fingerprint& key, ResultPtr result);

  /// Records `n` jobs served by joining an in-flight computation.
  void note_coalesced(std::int64_t n = 1);

  util::CacheStats stats() const { return lru_.stats(); }

  FlightGate& flights() { return flights_; }

 private:
  util::LruCache<util::Fingerprint, ResultPtr, util::FingerprintHash> lru_;
  FlightGate flights_;
};

/// ("cache", <json>) manifest extra: one object per cache layer with
/// hits/misses/evictions/coalesced/entries/bytes — validated by
/// tools/report_metrics.py.
std::pair<std::string, std::string> cache_extra(const util::CacheStats& model,
                                                const util::CacheStats& factor);

}  // namespace pmtbr::serve
