#include "serve/service.hpp"

#include <algorithm>
#include <sstream>

#include "serve/model_cache.hpp"
#include "util/check.hpp"
#include "util/faultinject.hpp"
#include "util/logging.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/json.hpp"
#include "util/obs/trace.hpp"

namespace pmtbr::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(to - from).count();
}

std::int64_t nanos_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
}

obs::Counter outcome_counter(JobOutcome o) {
  switch (o) {
    case JobOutcome::kCompleted: return obs::Counter::kServeJobsCompleted;
    case JobOutcome::kFailed: return obs::Counter::kServeJobsFailed;
    case JobOutcome::kCancelled: return obs::Counter::kServeJobsCancelled;
    case JobOutcome::kExpired: return obs::Counter::kServeJobsExpired;
    case JobOutcome::kCount: break;
  }
  return obs::Counter::kServeJobsFailed;
}

}  // namespace

std::pair<std::string, std::string> serve_extra(const ServiceStats& stats) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("submitted");
  w.value(stats.submitted);
  w.key("completed");
  w.value(stats.completed);
  w.key("failed");
  w.value(stats.failed);
  w.key("cancelled");
  w.value(stats.cancelled);
  w.key("expired");
  w.value(stats.expired);
  w.key("rejected");
  w.value(stats.rejected);
  w.key("cache_hits");
  w.value(stats.cache_hits);
  w.key("queue_seconds");
  w.value(stats.queue_seconds);
  w.key("run_seconds");
  w.value(stats.run_seconds);
  w.end_object();
  return {"serve", os.str()};
}

ReductionService::ReductionService(ServiceOptions opts) : opts_(opts) {
  PMTBR_REQUIRE(opts_.runners >= 1, "service needs at least one runner thread");
  PMTBR_REQUIRE(opts_.max_queue >= 1, "admission queue must hold at least one job");
  if (opts_.model_cache) {
    auto cache = std::make_unique<ModelCache>(opts_.model_cache_bytes);
    // A byte budget resolving to 0 (PMTBR_CACHE_BYTES=0) disables caching.
    if (cache->enabled()) cache_ = std::move(cache);
  }
  runners_.reserve(static_cast<std::size_t>(opts_.runners));
  for (int t = 0; t < opts_.runners; ++t)
    runners_.emplace_back([this] { runner_loop(); });
}

ReductionService::~ReductionService() {
  {
    const auto now = Clock::now();
    util::MutexLock lock(mutex_);
    stop_ = true;
    // Queued jobs finalize as cancelled here; running jobs get a cancel
    // request and wind down at their next sampling checkpoint, after which
    // their runner finalizes them normally.
    for (auto& job : queue_) {
      --stats_.queued;
      finalize_locked(*job, JobOutcome::kCancelled,
                      util::Status(util::ErrorCode::kCancelled, "service shut down"), now);
    }
    queue_.clear();
    for (auto& [id, job] : jobs_)
      if (job->state == JobState::kRunning) job->token.request_cancel();
  }
  work_cv_.notify_all();
  for (auto& t : runners_) t.join();
}

util::Expected<JobId> ReductionService::submit(JobRequest req) {
  const auto now = Clock::now();
  auto job = std::make_shared<Job>();
  job->req = std::move(req);
  job->submitted_at = now;
  if (job->req.deadline.count() > 0) {
    job->has_deadline = true;
    job->deadline_at = now + job->req.deadline;
  }
  // Fingerprint on the submitter thread, outside the service lock — it
  // walks the system matrices once (then memoized inside the descriptor).
  if (cache_ != nullptr) {
    if (const auto key = job_fingerprint(job->req)) {
      job->cacheable = true;
      job->cache_key = *key;
    }
  }

  util::MutexLock lock(mutex_);
  ++stats_.submitted;
  obs::counter_add(obs::Counter::kServeJobsSubmitted);
  if (stop_) {
    ++stats_.rejected;
    obs::counter_add(obs::Counter::kServeJobsRejected);
    return util::Status(util::ErrorCode::kCancelled, "service shutting down");
  }
  if (static_cast<index>(queue_.size()) >= opts_.max_queue) {
    ++stats_.rejected;
    obs::counter_add(obs::Counter::kServeJobsRejected);
    return util::Status(util::ErrorCode::kOverloaded, "admission queue full")
        .with_detail(static_cast<std::ptrdiff_t>(queue_.size()),
                     static_cast<double>(opts_.max_queue));
  }
  const JobId id = next_id_++;
  job->id = id;
  jobs_.emplace(id, job);
  queue_.push_back(std::move(job));
  ++stats_.queued;
  work_cv_.notify_one();
  return id;
}

bool ReductionService::cancel(JobId id) {
  const auto now = Clock::now();
  util::MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.state == JobState::kDone) return false;
  job.token.request_cancel();
  if (job.state == JobState::kQueued) {
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [&](const std::shared_ptr<Job>& q) { return q->id == id; }),
                 queue_.end());
    --stats_.queued;
    finalize_locked(job, JobOutcome::kCancelled,
                    util::Status(util::ErrorCode::kCancelled, "cancelled while queued"), now);
  }
  return true;
}

JobResult ReductionService::wait(JobId id) {
  util::UniqueLock lock(mutex_);
  const auto it = jobs_.find(id);
  PMTBR_REQUIRE(it != jobs_.end(), "wait() on unknown job id");
  const std::shared_ptr<Job> job = it->second;
  while (job->state != JobState::kDone) done_cv_.wait(lock);
  return job->result;
}

std::vector<std::pair<JobId, JobResult>> ReductionService::drain() {
  std::vector<JobId> ids;
  {
    util::MutexLock lock(mutex_);
    ids.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) ids.push_back(id);
  }
  std::vector<std::pair<JobId, JobResult>> out;
  out.reserve(ids.size());
  for (const JobId id : ids) out.emplace_back(id, wait(id));
  return out;
}

ServiceStats ReductionService::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

util::CacheStats ReductionService::model_cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : util::CacheStats{};
}

std::shared_ptr<ReductionService::Job> ReductionService::pop_best_locked() {
  PMTBR_DEBUG_ASSERT(!queue_.empty(), "pop on empty queue");
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    const Job& a = **it;
    const Job& b = **best;
    if (static_cast<int>(a.req.priority) != static_cast<int>(b.req.priority)) {
      if (static_cast<int>(a.req.priority) > static_cast<int>(b.req.priority)) best = it;
      continue;
    }
    // Same priority: earliest deadline first (none sorts last), then
    // submission order via the monotonically assigned id.
    if (a.has_deadline != b.has_deadline) {
      if (a.has_deadline) best = it;
      continue;
    }
    if (a.has_deadline && a.deadline_at != b.deadline_at) {
      if (a.deadline_at < b.deadline_at) best = it;
      continue;
    }
    if (a.id < b.id) best = it;
  }
  std::shared_ptr<Job> job = std::move(*best);
  queue_.erase(best);
  return job;
}

void ReductionService::finalize_locked(Job& job, JobOutcome outcome, util::Status status,
                                       Clock::time_point now) {
  JobResult& r = job.result;
  r.outcome = outcome;
  r.status = std::move(status);
  if (r.start_sequence == 0) {
    // Never started: the whole lifetime was queue wait.
    r.queue_seconds = seconds_between(job.submitted_at, now);
    obs::counter_add(obs::Counter::kServeQueueNanos, nanos_between(job.submitted_at, now));
  }
  job.state = JobState::kDone;
  switch (outcome) {
    case JobOutcome::kCompleted: ++stats_.completed; break;
    case JobOutcome::kFailed: ++stats_.failed; break;
    case JobOutcome::kCancelled: ++stats_.cancelled; break;
    case JobOutcome::kExpired: ++stats_.expired; break;
    case JobOutcome::kCount: break;
  }
  stats_.queue_seconds += r.queue_seconds;
  stats_.run_seconds += r.run_seconds;
  obs::counter_add(outcome_counter(outcome));
  if (outcome != JobOutcome::kCompleted)
    log_debug("serve: job ", job.id, " (", job.req.name, ") -> ", job_outcome_name(outcome),
              " (", r.status.to_string(), ")");
  done_cv_.notify_all();
}

void ReductionService::runner_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      util::UniqueLock lock(mutex_);
      while (job == nullptr) {
        while (!stop_ && queue_.empty()) work_cv_.wait(lock);
        if (queue_.empty()) return;  // stopping and drained
        job = pop_best_locked();
        --stats_.queued;
        const auto now = Clock::now();
        if (job->has_deadline && now >= job->deadline_at) {
          finalize_locked(*job, JobOutcome::kExpired,
                          util::Status(util::ErrorCode::kDeadlineExceeded,
                                       "deadline expired while queued"),
                          now);
          job.reset();
          continue;
        }
        job->state = JobState::kRunning;
        ++stats_.running;
        job->result.start_sequence = next_start_seq_++;
        job->result.queue_seconds = seconds_between(job->submitted_at, now);
        obs::counter_add(obs::Counter::kServeQueueNanos,
                         nanos_between(job->submitted_at, now));
        if (job->has_deadline) job->token.set_deadline(job->deadline_at);
      }
    }

    // Execute outside the lock: the runner owns req/result exclusively
    // while kRunning. Within-job parallelism fans out on the global pool.
    const auto started = Clock::now();
    JobOutcome outcome = JobOutcome::kFailed;
    util::Status status;
    bool from_cache = false;
    {
      PMTBR_TRACE_SCOPE("serve.job");
      try {
        from_cache = execute_job(*job);
        outcome = JobOutcome::kCompleted;
        status = util::Status::ok();
      } catch (const util::StatusError& e) {
        status = e.status();
        // The token distinguishes an explicit cancel from a deadline; any
        // other StatusError (coverage floor, ...) is an ordinary failure.
        outcome = status.code() == util::ErrorCode::kCancelled ? JobOutcome::kCancelled
                  : status.code() == util::ErrorCode::kDeadlineExceeded
                      ? JobOutcome::kExpired
                      : JobOutcome::kFailed;
      } catch (const std::exception& e) {
        status = util::Status(util::ErrorCode::kUnhandledException, e.what());
        outcome = JobOutcome::kFailed;
      }
    }
    const auto finished = Clock::now();
    job->result.run_seconds = seconds_between(started, finished);
    obs::counter_add(obs::Counter::kServeRunNanos, nanos_between(started, finished));

    util::MutexLock lock(mutex_);
    --stats_.running;
    if (from_cache && outcome == JobOutcome::kCompleted) ++stats_.cache_hits;
    finalize_locked(*job, outcome, std::move(status), finished);
  }
}

bool ReductionService::execute_job(Job& job) {
  const auto reduce = [&job] {
    mor::PmtbrOptions options = job.req.options;
    options.cancel = job.token;
    job.result.reduction =
        job.req.method == Method::kPmtbrAdaptive
            ? mor::pmtbr_adaptive(job.req.system, job.req.adaptive, options)
            : mor::pmtbr(job.req.system, options);
  };
  // Fault injection bypasses the cache wholesale: robustness tests assert
  // exact degradation sets, and a memoized result would short-circuit the
  // injected failures they expect.
  if (cache_ == nullptr || !job.cacheable || util::fault::enabled()) {
    reduce();
    return false;
  }
  for (;;) {
    if (ModelCache::ResultPtr hit = cache_->lookup(job.cache_key)) {
      // A hit still honors this job's own cancel/deadline so the outcome
      // partition is indistinguishable from a fresh run's.
      job.token.throw_if_cancelled();
      job.result.reduction = *hit;
      return true;
    }
    bool leader = false;
    auto flight = cache_->flights().begin(job.cache_key, leader);
    if (leader) {
      // Close the lookup->begin race: a previous leader may have published
      // and retired its flight between our miss and our begin().
      if (ModelCache::ResultPtr hit = cache_->lookup(job.cache_key)) {
        cache_->flights().publish(job.cache_key, flight, hit);
        job.token.throw_if_cancelled();
        job.result.reduction = *hit;
        return true;
      }
      try {
        reduce();
      } catch (...) {
        // Abandon the flight: followers wake, retry, and elect a new
        // leader, so one cancelled job never poisons its coalesced peers.
        cache_->flights().publish(job.cache_key, flight, nullptr);
        throw;
      }
      auto published = std::make_shared<const mor::PmtbrResult>(job.result.reduction);
      cache_->insert(job.cache_key, published);
      cache_->flights().publish(job.cache_key, flight, published);
      return false;
    }
    // Follower: join the in-flight computation, polling our own token so
    // this job's cancel/deadline still win over a slow leader.
    const auto value = ModelCache::FlightGate::wait(
        *flight, std::chrono::milliseconds(1), [&job] { return job.token.cancelled(); });
    if (!value.has_value()) {
      job.token.throw_if_cancelled();
    } else if (*value != nullptr) {
      cache_->note_coalesced();
      job.result.reduction = **value;
      return true;
    }
    // Abandoned flight: loop and retry (we may be promoted to leader).
  }
}

}  // namespace pmtbr::serve
