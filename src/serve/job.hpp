// Job vocabulary for the batched reduction service (docs/SERVING.md).
//
// A JobRequest bundles everything one reduction needs — the system (built
// directly or from netlist text), the method and its options, a scheduling
// priority, and an optional deadline relative to submission. A JobResult is
// the job's single terminal record: exactly one outcome, the Status that
// explains it, and the queue/run latencies the obs layer aggregates.
#pragma once

#include <chrono>
#include <string>

#include "circuit/descriptor.hpp"
#include "mor/pmtbr.hpp"
#include "util/status.hpp"

namespace pmtbr::serve {

using la::index;

/// Reduction method the job runs. Both share the sampling pipeline and its
/// degradation / cancellation machinery.
enum class Method {
  kPmtbr,          // fixed sample grid per JobRequest::options
  kPmtbrAdaptive,  // greedy bisection per JobRequest::adaptive
};

/// Scheduling priority; higher runs first. Ties break by earliest deadline,
/// then submission order, so scheduling is deterministic for a fixed queue.
enum class Priority : int { kLow = 0, kNormal = 1, kHigh = 2 };

struct JobRequest {
  std::string name = "job";  // client label, surfaced in logs/manifests
  DescriptorSystem system;
  Method method = Method::kPmtbr;
  mor::PmtbrOptions options;
  mor::AdaptiveOptions adaptive;  // consulted only for kPmtbrAdaptive
  Priority priority = Priority::kNormal;
  /// Deadline relative to submission; zero means none. Enforced both while
  /// queued (the job expires instead of starting) and while running (the
  /// sampling loops poll the armed CancelToken between windows).
  std::chrono::nanoseconds deadline{0};
};

/// Builds a JobRequest from SPICE-like netlist text (circuit::parse +
/// assemble_mna). Malformed or portless netlists come back as
/// kInvalidInput — the caller rejects the job without poisoning the batch.
util::Expected<JobRequest> job_from_netlist(const std::string& netlist_text,
                                            const mor::PmtbrOptions& options = {},
                                            const std::string& name = "netlist");

/// Terminal states. Every admitted job reaches exactly one; rejected
/// submissions never become jobs (submit() returns kOverloaded instead).
enum class JobOutcome : int {
  kCompleted = 0,  // produced a reduction
  kFailed,         // ran and failed (coverage floor, bad options, ...)
  kCancelled,      // cancel() before or during execution
  kExpired,        // deadline passed while queued or mid-run
  kCount           // sentinel; keep last
};

/// Stable snake_case name ("completed", ...), for logs and manifests.
constexpr const char* job_outcome_name(JobOutcome o) noexcept {
  switch (o) {
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kFailed: return "failed";
    case JobOutcome::kCancelled: return "cancelled";
    case JobOutcome::kExpired: return "expired";
    case JobOutcome::kCount: break;
  }
  return "unknown";
}

struct JobResult {
  JobOutcome outcome = JobOutcome::kFailed;
  util::Status status;         // OK for kCompleted; the reason otherwise
  mor::PmtbrResult reduction;  // populated only for kCompleted
  double queue_seconds = 0.0;  // submission -> start (or terminal, if never started)
  double run_seconds = 0.0;    // start -> terminal; 0 when the job never ran
  /// Global start order assigned at dequeue (1, 2, ...); 0 when the job
  /// never started. Lets tests and clients audit scheduling decisions.
  std::uint64_t start_sequence = 0;
};

}  // namespace pmtbr::serve
