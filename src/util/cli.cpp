#include "util/cli.hpp"

#include <cstdint>
#include <stdexcept>

namespace pmtbr {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "1";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool ArgParser::has(const std::string& key) const { return options_.count(key) != 0; }

std::string ArgParser::get(const std::string& key, const std::string& def) const {
  const auto it = options_.find(key);
  return it == options_.end() ? def : it->second;
}

double ArgParser::get_double(const std::string& key, double def) const {
  const auto it = options_.find(key);
  return it == options_.end() ? def : std::stod(it->second);
}

int ArgParser::get_int(const std::string& key, int def) const {
  const auto it = options_.find(key);
  return it == options_.end() ? def : std::stoi(it->second);
}

std::uint64_t ArgParser::get_seed(const std::string& key, std::uint64_t def) const {
  const auto it = options_.find(key);
  return it == options_.end() ? def : std::stoull(it->second);
}

}  // namespace pmtbr
