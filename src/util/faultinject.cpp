#include "util/faultinject.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <mutex>

#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/obs/counters.hpp"

namespace pmtbr::util::fault {

namespace {

struct SiteConfig {
  std::atomic<bool> armed{false};
  // Written only while holding g_config_mutex (or single-threaded test
  // setup); read racily on the query path — acceptable for a test-only
  // feature whose decisions are validated under fixed configs.
  double probability = 1.0;
  std::uint64_t seed = 0;
  std::atomic<std::uint64_t> calls{0};
};

SiteConfig g_sites[kNumSites];
std::atomic<bool> g_any_armed{false};
std::once_flag g_env_once;
util::Mutex g_config_mutex;

void recount_armed_locked() {
  int n = 0;
  for (auto& s : g_sites)
    if (s.armed.load(std::memory_order_relaxed)) ++n;
  g_any_armed.store(n > 0, std::memory_order_release);
}

// splitmix64 — the standard 64-bit finalizer; good avalanche, no state.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

thread_local std::uint64_t tl_key = 0;
thread_local bool tl_has_key = false;

Site parse_site(const std::string& name, bool& ok) {
  ok = true;
  for (int i = 0; i < kNumSites; ++i)
    if (name == site_name(static_cast<Site>(i))) return static_cast<Site>(i);
  ok = false;
  return Site::kCount;
}

std::string configure_impl(const std::string& spec);

void configure_from_env() {
  const char* env = std::getenv("PMTBR_FAULTS");
  if (env == nullptr || *env == '\0') return;
  const std::string err = configure_impl(env);
  // A malformed spec in the environment must not be silently ignored —
  // the whole point is reproducible fault runs. Fail loudly.
  PMTBR_REQUIRE(err.empty(), "invalid PMTBR_FAULTS: " + err);
}

// Every explicit reconfiguration (configure/clear/ScopedFault) must consume
// the env once-flag first: otherwise a lazily deferred PMTBR_FAULTS parse —
// triggered by the first should_fail() — would re-arm sites *behind* an
// explicit configuration that already ran.
void ingest_env() { std::call_once(g_env_once, configure_from_env); }

std::string configure_impl(const std::string& spec) {
  util::MutexLock lock(g_config_mutex);
  for (auto& s : g_sites) s.armed.store(false, std::memory_order_relaxed);

  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    // site[:p=<float>][:seed=<u64>]
    std::size_t colon = entry.find(':');
    const std::string name = entry.substr(0, colon);
    bool ok = false;
    const Site site = parse_site(name, ok);
    if (!ok) return "unknown site '" + name + "'";
    double p = 1.0;
    std::uint64_t seed = 0;
    while (colon != std::string::npos) {
      const std::size_t next = entry.find(':', colon + 1);
      const std::string field =
          entry.substr(colon + 1, (next == std::string::npos ? entry.size() : next) - colon - 1);
      colon = next;
      if (field.rfind("p=", 0) == 0) {
        char* parse_end = nullptr;
        p = std::strtod(field.c_str() + 2, &parse_end);
        if (parse_end == field.c_str() + 2 || *parse_end != '\0' || p < 0.0 || p > 1.0)
          return "bad probability in '" + entry + "'";
      } else if (field.rfind("seed=", 0) == 0) {
        char* parse_end = nullptr;
        seed = std::strtoull(field.c_str() + 5, &parse_end, 10);
        if (parse_end == field.c_str() + 5 || *parse_end != '\0')
          return "bad seed in '" + entry + "'";
      } else {
        return "unknown field '" + field + "' in '" + entry + "'";
      }
    }
    auto& cfg = g_sites[static_cast<int>(site)];
    cfg.probability = p;
    cfg.seed = seed;
    cfg.armed.store(true, std::memory_order_relaxed);
  }
  recount_armed_locked();
  return {};
}

}  // namespace

const char* site_name(Site s) noexcept {
  switch (s) {
    case Site::kSpluPivot: return "splu.pivot";
    case Site::kSpluRefactor: return "splu.refactor";
    case Site::kSvdConverge: return "svd.converge";
    case Site::kEigConverge: return "eig.converge";
    case Site::kPoolTask: return "pool.task";
    case Site::kCount: break;
  }
  return "unknown";
}

bool enabled() noexcept {
  std::call_once(g_env_once, configure_from_env);
  return g_any_armed.load(std::memory_order_acquire);
}

bool decide(double probability, std::uint64_t seed, Site site, std::uint64_t key) noexcept {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  const std::uint64_t h =
      mix(seed ^ mix(static_cast<std::uint64_t>(site) + 1) ^ mix(key));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < probability;
}

std::uint64_t shift_key(double re, double im) noexcept {
  return mix(std::bit_cast<std::uint64_t>(re)) ^ std::bit_cast<std::uint64_t>(im);
}

bool should_fail(Site site, std::uint64_t key) noexcept {
  if (!enabled()) return false;
  auto& cfg = g_sites[static_cast<int>(site)];
  if (!cfg.armed.load(std::memory_order_relaxed)) return false;
  if (!decide(cfg.probability, cfg.seed, site, key)) return false;
  obs::counter_add(obs::Counter::kFaultsInjected);
  return true;
}

bool should_fail(Site site) noexcept {
  if (!enabled()) return false;
  auto& cfg = g_sites[static_cast<int>(site)];
  if (!cfg.armed.load(std::memory_order_relaxed)) return false;
  const std::uint64_t key =
      tl_has_key ? tl_key : cfg.calls.fetch_add(1, std::memory_order_relaxed);
  if (!decide(cfg.probability, cfg.seed, site, key)) return false;
  obs::counter_add(obs::Counter::kFaultsInjected);
  return true;
}

KeyScope::KeyScope(std::uint64_t key) noexcept : prev_(tl_key), had_prev_(tl_has_key) {
  tl_key = key;
  tl_has_key = true;
}

KeyScope::~KeyScope() {
  tl_key = prev_;
  tl_has_key = had_prev_;
}

ScopedFault::ScopedFault(Site site, double probability, std::uint64_t seed) noexcept
    : site_(site) {
  ingest_env();
  util::MutexLock lock(g_config_mutex);
  auto& cfg = g_sites[static_cast<int>(site)];
  prev_armed_ = cfg.armed.load(std::memory_order_relaxed);
  prev_p_ = cfg.probability;
  prev_seed_ = cfg.seed;
  cfg.probability = probability;
  cfg.seed = seed;
  cfg.armed.store(true, std::memory_order_relaxed);
  recount_armed_locked();
}

ScopedFault::~ScopedFault() {
  util::MutexLock lock(g_config_mutex);
  auto& cfg = g_sites[static_cast<int>(site_)];
  cfg.probability = prev_p_;
  cfg.seed = prev_seed_;
  cfg.armed.store(prev_armed_, std::memory_order_relaxed);
  recount_armed_locked();
}

std::string configure(const std::string& spec) {
  ingest_env();
  return configure_impl(spec);
}

void clear() {
  ingest_env();
  util::MutexLock lock(g_config_mutex);
  for (auto& s : g_sites) s.armed.store(false, std::memory_order_relaxed);
  recount_armed_locked();
}

}  // namespace pmtbr::util::fault
