// Shared fixed-size thread pool plus parallel_for / parallel_map helpers —
// the execution layer behind the parallel sampling pipeline.
//
// Design constraints (see docs/PERFORMANCE.md):
//  - Deterministic results: parallel_for chunks an index range dynamically,
//    but every index runs exactly the same computation it would serially and
//    parallel_map stores results by index, so outputs are order-independent.
//  - Nested-safe: a parallel_for issued from inside a pool worker runs
//    inline (serially) on that worker instead of deadlocking on the queue.
//  - Exception-safe: the first exception thrown by any chunk is captured,
//    remaining chunks are abandoned, and the exception is rethrown on the
//    calling thread once all workers have quiesced.
//
// Pool size resolution: PMTBR_NUM_THREADS (positive integer) wins, else
// std::thread::hardware_concurrency(), clamped to >= 1. A size of 1 means
// "no worker threads": every parallel_for runs inline on the caller.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/cancel.hpp"
#include "util/faultinject.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"

namespace pmtbr::util {

using index = std::ptrdiff_t;

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the calling thread participates in every
  /// parallel_for, so `threads` is the total parallelism.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [begin, end), blocking until all complete.
  /// Empty or single-element ranges, a pool of size 1, and nested calls all
  /// run inline on the caller. Must not be called with mutex_ held (the
  /// pool acquires it to enqueue helper tasks).
  void parallel_for(index begin, index end, const std::function<void(index)>& fn)
      PMTBR_EXCLUDES(mutex_);

 private:
  void worker_loop() PMTBR_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  ConditionVariable cv_;
  std::queue<std::function<void()>> tasks_ PMTBR_GUARDED_BY(mutex_);
  bool stop_ PMTBR_GUARDED_BY(mutex_) = false;
};

/// The process-wide pool, created on first use with resolve_num_threads().
ThreadPool& global_pool();

/// Replaces the global pool with one of `threads` total parallelism.
/// Intended for benches and tests sweeping thread counts; must not be called
/// while parallel work is in flight.
void set_global_threads(int threads);

/// PMTBR_NUM_THREADS env override -> hardware_concurrency -> 1.
/// `env_value` is the raw environment string (nullptr = unset); exposed for
/// testing the parsing rules.
int resolve_num_threads(const char* env_value);

/// Convenience: parallel_for over the global pool.
inline void parallel_for(index begin, index end, const std::function<void(index)>& fn) {
  global_pool().parallel_for(begin, end, fn);
}

/// Maps fn over [0, n) on the global pool; results land at their own index,
/// so the output is identical to the serial map regardless of scheduling.
/// R must be default-constructible and movable.
template <typename R, typename F>
std::vector<R> parallel_map(index n, F&& fn) {
  std::vector<R> out(static_cast<std::size_t>(n));
  global_pool().parallel_for(0, n,
                             [&](index i) { out[static_cast<std::size_t>(i)] = fn(i); });
  return out;
}

/// Fault-isolating map: like parallel_map, but each task's outcome lands in
/// its own Expected slot, so one failing task cannot poison its siblings —
/// every index still runs (contrast with parallel_for's abort-on-first-
/// exception semantics, kept for the legacy all-or-nothing path).
///
/// fn may return R or Expected<R>. A StatusError escaping fn becomes that
/// task's Status; any other exception becomes kUnhandledException. The
/// Site::kPoolTask injection point can condemn a task before fn runs
/// (keyed by the task index).
///
/// `cancel` (optional) makes the map cooperatively cancellable: a task that
/// has not started when the token fires is skipped entirely, leaving its
/// default slot (kCancelled, "task never ran"). Tasks already inside fn run
/// to completion — cancellation never corrupts a partial solve. Callers are
/// expected to re-check the token after the map returns and abandon the
/// batch (mor::pmtbr does; see docs/SERVING.md).
template <typename R, typename F>
std::vector<Expected<R>> parallel_try_map(index n, F&& fn,
                                          const CancelToken& cancel = {}) {
  std::vector<Expected<R>> out(static_cast<std::size_t>(n));
  global_pool().parallel_for(0, n, [&](index i) {
    auto& slot = out[static_cast<std::size_t>(i)];
    if (cancel.cancelled()) return;  // slot keeps its default kCancelled
    if (fault::should_fail(fault::Site::kPoolTask, static_cast<std::uint64_t>(i))) {
      slot = Status(ErrorCode::kInjectedFault, "pool.task fault injected");
      return;
    }
    try {
      slot = fn(i);
    } catch (const StatusError& e) {
      slot = e.status();
    } catch (const std::exception& e) {
      slot = Status(ErrorCode::kUnhandledException, e.what());
    }
  });
  return out;
}

}  // namespace pmtbr::util
