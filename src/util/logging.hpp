// Minimal leveled logger writing to stderr.
//
// The library itself logs sparingly (iteration counts, convergence notes at
// Debug); benches and examples use Info for narrative output.
#pragma once

#include <sstream>
#include <string>

namespace pmtbr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace pmtbr
