// Lightweight contract checking used across the library.
//
// PMTBR_REQUIRE(cond, msg) throws std::invalid_argument — for precondition
// violations by the caller (bad dimensions, bad options).
// PMTBR_ENSURE(cond, msg) throws std::runtime_error — for internal failures
// (non-convergence, singular factorization) that the caller may want to
// catch and handle.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pmtbr::detail {

[[noreturn]] inline void fail_require(const char* expr, const std::string& msg,
                                      const char* file, int line) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " (" << msg << ") at " << file << ":" << line;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_ensure(const char* expr, const std::string& msg,
                                     const char* file, int line) {
  std::ostringstream os;
  os << "internal check failed: " << expr << " (" << msg << ") at " << file << ":" << line;
  throw std::runtime_error(os.str());
}

}  // namespace pmtbr::detail

#define PMTBR_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::pmtbr::detail::fail_require(#cond, msg, __FILE__, __LINE__); \
  } while (false)

#define PMTBR_ENSURE(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) ::pmtbr::detail::fail_ensure(#cond, msg, __FILE__, __LINE__); \
  } while (false)
