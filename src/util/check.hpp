// Lightweight contract checking used across the library, in three tiers:
//
// PMTBR_REQUIRE(cond, msg) throws std::invalid_argument — for precondition
// violations by the caller (bad dimensions, bad options). Always on.
// PMTBR_ENSURE(cond, msg) throws std::runtime_error — for internal failures
// (non-convergence, singular factorization) that the caller may want to
// catch and handle. Always on.
// PMTBR_DEBUG_ASSERT(cond, msg) — cheap-to-state but hot-path checks
// (index bounds in inner loops). Compiled out under NDEBUG, so release
// builds pay nothing; debug and sanitizer builds get full checking.
// PMTBR_CHECK_FINITE(obj, msg) throws std::runtime_error if obj contains a
// NaN or infinity. Costs a full scan, so it is gated behind a runtime
// switch whose default comes from the PMTBR_ENABLE_FINITE_CHECKS compile
// definition (CMake option of the same name); tests may flip it at runtime
// via pmtbr::contracts::set_finite_checks_enabled().
#pragma once

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pmtbr::detail {

[[noreturn]] inline void fail_require(const char* expr, const std::string& msg,
                                      const char* file, int line) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " (" << msg << ") at " << file << ":" << line;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_ensure(const char* expr, const std::string& msg,
                                     const char* file, int line) {
  std::ostringstream os;
  os << "internal check failed: " << expr << " (" << msg << ") at " << file << ":" << line;
  throw std::runtime_error(os.str());
}

[[noreturn]] inline void fail_debug_assert(const char* expr, const std::string& msg,
                                           const char* file, int line) {
  std::ostringstream os;
  os << "debug assertion failed: " << expr << " (" << msg << ") at " << file << ":" << line;
  throw std::logic_error(os.str());
}

[[noreturn]] inline void fail_finite(const char* expr, const std::string& msg,
                                     const char* file, int line) {
  std::ostringstream os;
  os << "non-finite value detected: " << expr << " (" << msg << ") at " << file << ":" << line;
  throw std::runtime_error(os.str());
}

}  // namespace pmtbr::detail

namespace pmtbr::contracts {

#ifdef PMTBR_ENABLE_FINITE_CHECKS
inline constexpr bool kFiniteChecksDefault = true;
#else
inline constexpr bool kFiniteChecksDefault = false;
#endif

inline std::atomic<bool>& finite_checks_flag() noexcept {
  static std::atomic<bool> enabled{kFiniteChecksDefault};
  return enabled;
}

inline bool finite_checks_enabled() noexcept {
  return finite_checks_flag().load(std::memory_order_relaxed);
}

inline void set_finite_checks_enabled(bool on) noexcept {
  finite_checks_flag().store(on, std::memory_order_relaxed);
}

/// RAII helper for tests: enable/disable finite checks within a scope.
class ScopedFiniteChecks {
 public:
  explicit ScopedFiniteChecks(bool on) : prev_(finite_checks_enabled()) {
    set_finite_checks_enabled(on);
  }
  ~ScopedFiniteChecks() { set_finite_checks_enabled(prev_); }
  ScopedFiniteChecks(const ScopedFiniteChecks&) = delete;
  ScopedFiniteChecks& operator=(const ScopedFiniteChecks&) = delete;

 private:
  bool prev_;
};

}  // namespace pmtbr::contracts

#define PMTBR_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) ::pmtbr::detail::fail_require(#cond, msg, __FILE__, __LINE__); \
  } while (false)

#define PMTBR_ENSURE(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) ::pmtbr::detail::fail_ensure(#cond, msg, __FILE__, __LINE__); \
  } while (false)

#ifdef NDEBUG
#define PMTBR_DEBUG_ASSERT(cond, msg) \
  do {                                \
  } while (false)
#else
#define PMTBR_DEBUG_ASSERT(cond, msg)                                     \
  do {                                                                    \
    if (!(cond))                                                          \
      ::pmtbr::detail::fail_debug_assert(#cond, msg, __FILE__, __LINE__); \
  } while (false)
#endif

// `is_finite` overloads are found by argument-dependent lookup: each
// container (la::Matrix, la::Vector aliases, sparse::Csr) defines one in
// its own namespace.
#define PMTBR_CHECK_FINITE(obj, msg)                                      \
  do {                                                                    \
    if (::pmtbr::contracts::finite_checks_enabled() && !is_finite(obj))   \
      ::pmtbr::detail::fail_finite(#obj, msg, __FILE__, __LINE__);        \
  } while (false)
