// Seeded random number generation.
//
// Every stochastic component of the library (input dither, correlated draws
// in input-correlated TBR, random test matrices) draws from an explicitly
// seeded Rng so that experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace pmtbr {

/// Deterministic random source wrapping a 64-bit Mersenne twister.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal draw scaled to the given mean / standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Vector of n independent uniform draws in [lo, hi).
  std::vector<double> uniform_vec(std::size_t n, double lo = 0.0, double hi = 1.0);

  /// Vector of n independent normal draws.
  std::vector<double> normal_vec(std::size_t n, double mean = 0.0, double stddev = 1.0);

  /// Fisher–Yates shuffle of indices 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pmtbr
