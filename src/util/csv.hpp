// Tabular output used by the benchmark harness to emit figure data.
//
// Each bench binary prints one or more named series in CSV form to stdout;
// the same writer can mirror the rows into bench/out/*.csv files.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace pmtbr {

/// Streams rows of a table as CSV to stdout and optionally a file.
class CsvWriter {
 public:
  /// Creates a writer emitting to `out`; if `path` is nonempty the rows are
  /// mirrored to that file as well (directories must already exist).
  CsvWriter(std::ostream& out, std::vector<std::string> header,
            const std::string& path = {});

  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

  std::size_t rows_written() const { return rows_; }

 private:
  void emit(const std::string& line);

  std::ostream& out_;
  std::ofstream file_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
};

/// Formats a double with enough digits to round-trip.
std::string format_double(double v);

}  // namespace pmtbr
