// Error taxonomy for the fallible numeric kernels: a lightweight Status /
// Expected<T> pair threaded through sparse LU, the shifted descriptor
// solves, and the la convergence paths.
//
// Policy (docs/ROBUSTNESS.md): exceptions remain reserved for programmer
// errors — contract violations (PMTBR_REQUIRE) and broken internal
// invariants. Everything the *data* can cause (a quadrature shift landing
// on a pole, a degenerate frozen pivot, non-convergence on a pathological
// spectrum, an injected test fault) is an expected, recoverable event and
// travels as a [[nodiscard]] Status so callers must either handle it or
// explicitly convert it back into an exception (value(), or StatusError).
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace pmtbr::util {

/// What went wrong, machine-readably. Names are stable (they appear in
/// logs, manifests and tests); extend at the end, before kCount.
enum class ErrorCode : int {
  kOk = 0,
  kSingularMatrix,       // structurally or numerically singular factorization
  kDegeneratePivot,      // frozen pivot order inadequate for these values
  kNonFinite,            // NaN/Inf encountered in a result
  kNoConvergence,        // iteration budget exhausted
  kInjectedFault,        // deterministic fault injection fired (tests/CI)
  kCoverageFloor,        // surviving-sample quadrature coverage below floor
  kCancelled,            // task never ran (sibling outcome slots) / run cancelled
  kUnhandledException,   // foreign exception captured at a task boundary
  kDeadlineExceeded,     // job deadline passed (serving layer, CancelToken)
  kOverloaded,           // admission queue full; request rejected (backpressure)
  kInvalidInput,         // malformed user input (netlist text, job spec)
  kCount                 // sentinel; keep last
};

/// Stable snake_case name ("singular_matrix", ...).
constexpr const char* error_code_name(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kSingularMatrix: return "singular_matrix";
    case ErrorCode::kDegeneratePivot: return "degenerate_pivot";
    case ErrorCode::kNonFinite: return "non_finite";
    case ErrorCode::kNoConvergence: return "no_convergence";
    case ErrorCode::kInjectedFault: return "injected_fault";
    case ErrorCode::kCoverageFloor: return "coverage_floor";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kUnhandledException: return "unhandled_exception";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInvalidInput: return "invalid_input";
    case ErrorCode::kCount: break;
  }
  return "unknown";
}

/// Success-or-error result. Default-constructed Status is OK; error
/// statuses carry a code, a human message, and an optional numeric detail
/// payload (e.g. kDegeneratePivot records the pivot position and its
/// magnitude).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    PMTBR_REQUIRE(code != ErrorCode::kOk && code != ErrorCode::kCount,
                  "error Status needs a real error code");
  }

  static Status ok() { return Status(); }

  bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Attaches a numeric detail (index + magnitude) to an error status.
  Status&& with_detail(std::ptrdiff_t idx, double value) && {
    detail_index_ = idx;
    detail_value_ = value;
    return std::move(*this);
  }
  /// Detail index (pivot position, sample index, ...); -1 when unset.
  std::ptrdiff_t detail_index() const noexcept { return detail_index_; }
  /// Detail magnitude (pivot magnitude, residual, ...); 0 when unset.
  double detail_value() const noexcept { return detail_value_; }

  /// "degenerate_pivot: <message>" — for logs and exception texts.
  std::string to_string() const {
    if (is_ok()) return "ok";
    std::string s = error_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  std::ptrdiff_t detail_index_ = -1;
  double detail_value_ = 0.0;
};

/// Thrown when a caller converts an error Status back into an exception
/// (legacy throw-on-failure entry points do this). Derives from
/// std::runtime_error so existing catch sites and death tests still match.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Value-or-Status. Default-constructed Expected is the kCancelled error —
/// that makes vector<Expected<T>> outcome slots meaningful for tasks that
/// never ran (see util::parallel_try_map).
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected() : status_(ErrorCode::kCancelled, "task never ran") {}
  Expected(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Expected(Status status) : status_(std::move(status)) {  // NOLINT: implicit by design
    PMTBR_REQUIRE(!status_.is_ok(), "Expected error requires a non-OK status");
  }

  bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// OK on success; the carried error otherwise.
  const Status& status() const noexcept { return status_; }

  /// The value; throws StatusError when holding an error.
  T& value() & {
    if (!is_ok()) throw StatusError(status_);
    return *value_;
  }
  const T& value() const& {
    if (!is_ok()) throw StatusError(status_);
    return *value_;
  }
  T&& value() && {
    if (!is_ok()) throw StatusError(status_);
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds
};

}  // namespace pmtbr::util
