#include "util/csv.hpp"

#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace pmtbr {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header,
                     const std::string& path)
    : out_(out) {
  PMTBR_REQUIRE(!header.empty(), "CSV header must have at least one column");
  cols_ = header.size();
  if (!path.empty()) file_.open(path);
  std::string line;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) line += ',';
    line += header[i];
  }
  emit(line);
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> s;
  s.reserve(values.size());
  for (double v : values) s.push_back(format_double(v));
  row(s);
}

void CsvWriter::row(const std::vector<std::string>& values) {
  PMTBR_REQUIRE(values.size() == cols_, "CSV row width must match header");
  std::string line;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line += ',';
    line += values[i];
  }
  emit(line);
  ++rows_;
}

void CsvWriter::emit(const std::string& line) {
  out_ << line << '\n';
  if (file_.is_open()) file_ << line << '\n';
}

}  // namespace pmtbr
