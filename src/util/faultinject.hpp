// Deterministic fault injection for the sampling pipeline (docs/ROBUSTNESS.md).
//
// Each injection point in the library is a named Site. A site that is not
// armed costs one relaxed atomic load (a global "anything armed?" flag), so
// production runs pay nothing. Arming happens two ways:
//
//  - environment: PMTBR_FAULTS="splu.pivot:p=0.05:seed=7,svd.converge:p=1"
//    parsed once on first query (comma-separated sites; p in [0,1],
//    seed any u64; both optional — p defaults to 1, seed to 0);
//  - programmatic: util::fault::ScopedFault guard(Site::kSpluPivot, 0.25, 7)
//    arms a site for the guard's lifetime and restores the previous config
//    on destruction (tests; not safe concurrently with other guards on the
//    same site).
//
// Decisions are deterministic and thread-schedule independent whenever the
// query carries a key: fire iff hash(seed, site, key) < p. The sampling
// pipeline keys every solve by the originating quadrature shift
// (KeyScope), so "which samples fail" is a pure function of (seed, p,
// sample set) — identical across thread counts and reruns, and computable
// in advance by tests via decide(). Keyless queries fall back to a
// per-site call counter (still reproducible serially, but scheduling-
// dependent under the pool).
//
// Every fired injection bumps obs::Counter::kFaultsInjected so degraded
// runs are visible in manifests.
#pragma once

#include <cstdint>
#include <string>

namespace pmtbr::util::fault {

/// Injection points wired into the library. site_name() gives the stable
/// spelling used by PMTBR_FAULTS.
enum class Site : int {
  kSpluPivot = 0,   // "splu.pivot"    full-factor pivot selection fails
  kSpluRefactor,    // "splu.refactor" frozen-pattern replay rejected
  kSvdConverge,     // "svd.converge"  Jacobi SVD reports no convergence
  kEigConverge,     // "eig.converge"  symmetric eigensolver reports no convergence
  kPoolTask,        // "pool.task"     parallel_try_map task fails before running
  kCount            // sentinel; keep last
};

inline constexpr int kNumSites = static_cast<int>(Site::kCount);

const char* site_name(Site s) noexcept;

/// Fast guard: true when any site is armed (env or scoped). Injection
/// points call this first so the disabled path is a single relaxed load.
bool enabled() noexcept;

/// Should the injection point at `site` fire for `key`? Deterministic in
/// (site config, key). Fires the kFaultsInjected counter when true.
bool should_fail(Site site, std::uint64_t key) noexcept;

/// Keyless variant: uses the thread-local key installed by KeyScope when
/// present, else a per-site call counter.
bool should_fail(Site site) noexcept;

/// Pure decision function (no counters, no global state): would a site
/// armed with (probability, seed) fire for `key`? Exposed so tests can
/// predict exactly which samples an injection sweep will hit.
bool decide(double probability, std::uint64_t seed, Site site, std::uint64_t key) noexcept;

/// Stable key for a complex shift s = re + j*im — the sampling pipeline
/// keys every solve attempt of a sample by the sample's ORIGINAL shift, so
/// retries of a failing sample see the same decision (a sample the
/// injector condemns stays condemned; recovery paths are tested against
/// genuine singularities instead).
std::uint64_t shift_key(double re, double im) noexcept;

/// Installs a thread-local fault key for the current scope; nested scopes
/// stack. Pool workers inherit nothing — key the query explicitly when it
/// crosses threads.
class KeyScope {
 public:
  explicit KeyScope(std::uint64_t key) noexcept;
  ~KeyScope();
  KeyScope(const KeyScope&) = delete;
  KeyScope& operator=(const KeyScope&) = delete;

 private:
  std::uint64_t prev_;
  bool had_prev_;
};

/// Arms `site` with (probability, seed) for this guard's lifetime and
/// restores the previous configuration (including "unarmed") afterwards.
class ScopedFault {
 public:
  ScopedFault(Site site, double probability, std::uint64_t seed = 0) noexcept;
  ~ScopedFault();
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  Site site_;
  bool prev_armed_;
  double prev_p_;
  std::uint64_t prev_seed_;
};

/// Parses a PMTBR_FAULTS spec and arms the named sites (clearing all sites
/// first). Returns an empty string on success, else a diagnostic; unknown
/// sites and malformed fields are errors. Exposed for tests — normal use
/// is automatic via the environment on first query.
std::string configure(const std::string& spec);

/// Disarms every site (tests).
void clear();

}  // namespace pmtbr::util::fault
