// Capacity- and byte-bounded LRU cache plus a single-flight gate — the
// synchronization substrate of the cross-job caching layer
// (docs/SERVING.md).
//
// LruCache is internally synchronized behind a capability-annotated
// util::Mutex, so the cache front-ends (serve/model_cache, sparse/
// factor_cache) expose lock-free-looking APIs without re-deriving the
// locking. Eviction is strict LRU over *unpinned* entries: pinned entries
// are never evicted, so a caller can hold an entry resident across a
// multi-step use without copying it out. Values are expected to be cheap
// handles (shared_ptr to immutable data) — a get() returns a copy that
// stays valid after the entry is evicted.
//
// SingleFlight collapses N concurrent computations of the same key into
// one: the first caller becomes the leader and computes, later callers
// join the flight and wait for the published value. An abandoned flight
// (leader failed or was cancelled) publishes an empty value; joiners then
// retry from the top, so a cancelled leader never propagates its
// cancellation to followers.
//
// The wait is a polling cv wait templated on the duration type, so this
// header stays free of ad-hoc clock usage; callers pick the poll interval
// in whatever units their layer already sanctions.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace pmtbr::util {

/// Monotonic hit/miss/eviction totals plus resident-size gauges; the cache
/// front-ends mirror these into obs counters and the `cache` manifest
/// extra. `coalesced` is fed by the single-flight owner (followers served
/// from a flight instead of the LRU).
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t coalesced = 0;
  std::int64_t entries = 0;  // gauge: resident entries
  std::int64_t bytes = 0;    // gauge: resident payload bytes
};

/// What one put() displaced, so callers can mirror eviction counters and
/// resident-bytes gauges without a second stats round-trip.
struct EvictionReport {
  std::int64_t count = 0;           // entries evicted under the budget
  std::int64_t bytes = 0;           // their payload bytes
  std::int64_t replaced_bytes = 0;  // bytes released by overwriting the same key
  bool inserted = false;
};

/// Byte budget from the environment: PMTBR_CACHE_BYTES accepts a
/// nonnegative integer with an optional k/m/g (KiB/MiB/GiB) suffix; 0
/// disables caching. Unset or malformed values yield `fallback`.
inline std::size_t cache_byte_budget(std::size_t fallback) noexcept {
  const char* env = std::getenv("PMTBR_CACHE_BYTES");
  if (env == nullptr || *env == '\0') return fallback;
  std::size_t value = 0;
  const char* p = env;
  if (*p < '0' || *p > '9') return fallback;
  for (; *p >= '0' && *p <= '9'; ++p) {
    const std::size_t digit = static_cast<std::size_t>(*p - '0');
    if (value > (~std::size_t{0} - digit) / 10) return fallback;  // overflow
    value = value * 10 + digit;
  }
  std::size_t scale = 1;
  if (*p == 'k' || *p == 'K')
    scale = std::size_t{1} << 10;
  else if (*p == 'm' || *p == 'M')
    scale = std::size_t{1} << 20;
  else if (*p == 'g' || *p == 'G')
    scale = std::size_t{1} << 30;
  if (scale > 1) ++p;
  if (*p != '\0') return fallback;  // trailing junk
  if (scale > 1 && value > (~std::size_t{0}) / scale) return fallback;
  return value * scale;
}

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  struct Limits {
    std::size_t max_entries = 0;  // 0 = unbounded count
    std::size_t max_bytes = 0;    // 0 = cache disabled
  };

  explicit LruCache(Limits limits) : limits_(limits) {}

  bool enabled() const noexcept { return limits_.max_bytes > 0; }

  /// Returns a copy of the cached value and refreshes its recency, or
  /// nullopt on a miss. Every call counts as a hit or a miss.
  std::optional<Value> get(const Key& key) PMTBR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    order_.splice(order_.begin(), order_, it->second);  // move to front
    return it->second->value;
  }

  /// Inserts or replaces `key`, charging `bytes` against the budget, then
  /// evicts least-recently-used unpinned entries until the cache fits its
  /// limits again (pinned entries can keep it temporarily over budget). A
  /// disabled cache (max_bytes == 0) ignores the put.
  EvictionReport put(const Key& key, Value value, std::size_t bytes)
      PMTBR_EXCLUDES(mutex_) {
    EvictionReport report;
    if (!enabled()) return report;
    MutexLock lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      bytes_ -= it->second->bytes;
      report.replaced_bytes = static_cast<std::int64_t>(it->second->bytes);
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      bytes_ += bytes;
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.push_front(Entry{key, std::move(value), bytes, 0});
      map_.emplace(key, order_.begin());
      bytes_ += bytes;
    }
    report.inserted = true;
    evict_locked(report);
    stats_.entries = static_cast<std::int64_t>(map_.size());
    stats_.bytes = static_cast<std::int64_t>(bytes_);
    return report;
  }

  /// Marks the entry un-evictable until a matching unpin(). Returns false
  /// for an absent key. Pins nest.
  bool pin(const Key& key) PMTBR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    ++it->second->pins;
    return true;
  }

  bool unpin(const Key& key) PMTBR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end() || it->second->pins == 0) return false;
    --it->second->pins;
    return true;
  }

  void erase(const Key& key) PMTBR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const auto it = map_.find(key);
    if (it == map_.end()) return;
    bytes_ -= it->second->bytes;
    order_.erase(it->second);
    map_.erase(it);
    stats_.entries = static_cast<std::int64_t>(map_.size());
    stats_.bytes = static_cast<std::int64_t>(bytes_);
  }

  /// Drops every entry (pinned included) and the resident gauges; the
  /// monotonic totals survive so long-running stats stay meaningful.
  void clear() PMTBR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    order_.clear();
    map_.clear();
    bytes_ = 0;
    stats_.entries = 0;
    stats_.bytes = 0;
  }

  /// Single-flight owners report followers served from a flight here, so
  /// one stats() call covers both serving paths.
  void add_coalesced(std::int64_t n = 1) PMTBR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    stats_.coalesced += n;
  }

  CacheStats stats() const PMTBR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t bytes = 0;
    int pins = 0;
  };
  using Order = std::list<Entry>;

  bool over_budget_locked() const PMTBR_REQUIRES(mutex_) {
    return (limits_.max_entries > 0 && map_.size() > limits_.max_entries) ||
           bytes_ > limits_.max_bytes;
  }

  void evict_locked(EvictionReport& report) PMTBR_REQUIRES(mutex_) {
    auto it = order_.end();
    while (over_budget_locked() && it != order_.begin()) {
      --it;
      if (it->pins > 0) continue;  // pinned: skip, keep scanning toward MRU
      ++report.count;
      report.bytes += static_cast<std::int64_t>(it->bytes);
      ++stats_.evictions;
      bytes_ -= it->bytes;
      map_.erase(it->key);
      it = order_.erase(it);
    }
  }

  const Limits limits_;
  mutable Mutex mutex_;
  Order order_ PMTBR_GUARDED_BY(mutex_);  // front = most recently used
  std::unordered_map<Key, typename Order::iterator, Hash> map_ PMTBR_GUARDED_BY(mutex_);
  std::size_t bytes_ PMTBR_GUARDED_BY(mutex_) = 0;
  CacheStats stats_ PMTBR_GUARDED_BY(mutex_);
};

/// Collapses concurrent computations of one key into a single execution.
/// Protocol (see serve/service.cpp for the full loop):
///
///   bool leader = false;
///   auto flight = gate.begin(key, leader);
///   if (leader) { value = compute(); gate.publish(key, flight, value); }
///   else if (auto v = SingleFlight::wait(*flight, poll, abort)) use(*v);
///
/// publish() with an empty Value marks the flight abandoned; waiters get
/// the empty value back and are expected to retry begin() (one of them is
/// promoted to leader).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class SingleFlight {
 public:
  struct Flight {
    Mutex mutex;
    ConditionVariable cv;
    bool done PMTBR_GUARDED_BY(mutex) = false;
    Value value PMTBR_GUARDED_BY(mutex){};
  };
  using FlightPtr = std::shared_ptr<Flight>;

  /// Joins the in-progress flight for `key`, or starts one (leader=true;
  /// the leader MUST eventually publish(), or joiners spin on retries).
  FlightPtr begin(const Key& key, bool& leader) PMTBR_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      leader = false;
      return it->second;
    }
    leader = true;
    auto flight = std::make_shared<Flight>();
    inflight_.emplace(key, flight);
    return flight;
  }

  /// Publishes the flight's value (empty = abandoned), wakes every waiter,
  /// and retires the key so the next begin() starts a fresh flight.
  void publish(const Key& key, const FlightPtr& flight, Value value)
      PMTBR_EXCLUDES(mutex_) {
    {
      MutexLock lock(flight->mutex);
      flight->value = std::move(value);
      flight->done = true;
    }
    flight->cv.notify_all();
    MutexLock lock(mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second == flight) inflight_.erase(it);
  }

  /// Blocks until the flight publishes or `abort()` returns true, polling
  /// the predicate every `poll`. Returns the published value (possibly
  /// empty for an abandoned flight) or nullopt when aborted.
  template <typename Duration, typename AbortFn>
  static std::optional<Value> wait(Flight& flight, const Duration& poll, AbortFn abort) {
    UniqueLock lock(flight.mutex);
    while (!flight.done) {
      if (abort()) return std::nullopt;
      flight.cv.wait_for(lock, poll);
    }
    return flight.value;
  }

 private:
  Mutex mutex_;
  std::unordered_map<Key, FlightPtr, Hash> inflight_ PMTBR_GUARDED_BY(mutex_);
};

}  // namespace pmtbr::util
