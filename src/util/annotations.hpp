// Clang thread-safety-analysis attribute macros (no-ops everywhere else).
//
// These wrap the capability attributes documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so that the
// concurrency contracts of this codebase — which mutex guards which state,
// which functions must (or must not) be called with a lock held — are part
// of the type system instead of comments. A clang build configured with
// -DPMTBR_TSA=ON compiles with -Wthread-safety -Werror=thread-safety and
// rejects any access to a PMTBR_GUARDED_BY member without its mutex held;
// GCC builds see empty macros and identical codegen.
//
// The annotated lock types that make the analysis actually fire live in
// util/mutex.hpp (Mutex / MutexLock / UniqueLock); a plain std::mutex is
// invisible to the analysis, so every mutex protecting shared state in
// src/ must be a util::Mutex.
//
// Usage sketch:
//
//   util::Mutex mutex_;
//   int value_ PMTBR_GUARDED_BY(mutex_);
//   void touch() PMTBR_REQUIRES(mutex_);   // caller must hold mutex_
//   void sync()  PMTBR_EXCLUDES(mutex_);   // caller must NOT hold mutex_
//
// PMTBR_NO_THREAD_SAFETY_ANALYSIS is the escape hatch of last resort; the
// analyzer framework (tools/analyze) and review policy require a comment
// justifying every individual use, and docs/CORRECTNESS.md records the
// policy.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define PMTBR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PMTBR_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a capability (a lockable resource) named `x` in
/// diagnostics, e.g. PMTBR_CAPABILITY("mutex").
#define PMTBR_CAPABILITY(x) PMTBR_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (MutexLock / UniqueLock).
#define PMTBR_SCOPED_CAPABILITY PMTBR_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a data member may only be read or written while holding
/// the given capability.
#define PMTBR_GUARDED_BY(x) PMTBR_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the *pointee* of a pointer member is guarded (the pointer
/// itself may be read freely).
#define PMTBR_PT_GUARDED_BY(x) PMTBR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the caller must hold the capability on entry and
/// still holds it on exit.
#define PMTBR_REQUIRES(...) \
  PMTBR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function effect: acquires the capability; it must not be held on entry.
#define PMTBR_ACQUIRE(...) \
  PMTBR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function effect: tries to acquire; first argument is the success value.
#define PMTBR_TRY_ACQUIRE(...) \
  PMTBR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function effect: releases the capability; it must be held on entry.
#define PMTBR_RELEASE(...) \
  PMTBR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function precondition: the capability must NOT be held (deadlock guard
/// for functions that acquire it themselves). Attribute name is the
/// historical "locks_excluded".
#define PMTBR_EXCLUDES(...) PMTBR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return-value annotation: the function returns a reference to the given
/// capability (accessor methods on lock-owning classes).
#define PMTBR_RETURN_CAPABILITY(x) PMTBR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the contract cannot be expressed, and
/// shows up in review via tools/analyze.
#define PMTBR_NO_THREAD_SAFETY_ANALYSIS \
  PMTBR_THREAD_ANNOTATION(no_thread_safety_analysis)
