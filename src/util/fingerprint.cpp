#include "util/fingerprint.hpp"

#include <array>

namespace pmtbr::util {

std::string Fingerprint::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] = kDigits[(hi >> (60 - 4 * i)) & 0xF];
    out[static_cast<std::size_t>(16 + i)] = kDigits[(lo >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

}  // namespace pmtbr::util
