// Process-wide monotonic counters for solver-level observability.
//
// Counters are always on: each increment is a single relaxed atomic
// fetch_add on a cache line nobody spins on, so hot paths (one add per
// factorization / per matmul call, never per element) pay nanoseconds.
// They answer the questions MOR pipelines fail silently on: how many full
// factorizations vs. numeric replays a run performed, whether the symbolic
// cache actually hit, how many sample columns the compressor kept, and how
// much work the thread pool did versus sat idle.
//
// Snapshots are linearizable enough for diagnostics (each counter is read
// atomically; cross-counter skew is bounded by in-flight work) and feed the
// run manifest (manifest.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pmtbr::obs {

enum class Counter : int {
  // sparse LU (src/sparse/splu.cpp)
  kSparseLuFullFactor,     // full Gilbert–Peierls factorizations (incl. symbolic builds)
  kSparseLuRefactor,       // numeric-only replays that succeeded
  kSparseLuRefactorReject, // replays rejected for a degenerate frozen pivot
  // shifted-pencil cache (src/circuit/descriptor.cpp)
  kSymbolicCacheHit,       // solve found the frozen symbolic analysis ready
  kSymbolicCacheMiss,      // solve had to build the symbolic analysis
  kShiftedSolve,           // (sE-A)^{-1} style solves (incl. adjoint/transpose)
  // dense kernels (src/la)
  kGemmFlops,              // 2*m*k*n per matmul call (estimate)
  kGemmCalls,              // blocked-GEMM invocations (matmul/matmul_into/matmul_at)
  kGemmBytes,              // sizeof(T)*(m*k + k*n + m*n) per call (traffic lower bound)
  kQrFactorizations,
  kQrBlockedPanels,        // compact-WY panels factored by the blocked QR
  kTsqrFactorizations,     // tall-skinny QR reduction trees built
  kTsqrLeafBlocks,         // leaf QRs across all TSQR trees
  kQrFlops,                // ~2*m*n*min(m,n) per factorization (estimate)
  kSvdCalls,
  kSvdSweeps,              // one-sided Jacobi sweeps actually performed
  kSvdFlops,               // ~6*m*n(n-1)/2 per sweep (estimate)
  // thread pool (src/util/thread_pool.cpp)
  kPoolParallelFor,        // parallel_for calls that fanned out to the pool
  kPoolInlineFor,          // parallel_for calls that ran inline (small/nested/1-thread)
  kPoolTasksExecuted,      // helper tasks drained by worker threads
  kPoolChunksCaller,       // dynamic chunks claimed by the calling thread
  kPoolChunksWorker,       // dynamic chunks claimed ("stolen") by pool workers
  kPoolIdleNanos,          // total worker wall-time spent blocked on the queue
  // sampling / compression (src/mor)
  kPmtbrSamples,           // frequency samples absorbed into the basis
  kPmtbrAdaptiveStops,     // early stops via the samples >= excess*order rule
  kAdaptiveBisections,     // interval bisections in pmtbr_adaptive
  kCompressorColumnsKept,  // columns that extended the orthonormal basis
  kCompressorColumnsDropped, // columns dropped as numerically dependent
  // AC verification layer (src/signal/ac.cpp)
  kAcSweepPoints,
  // fault injection + graceful degradation (util/faultinject, mor/pmtbr,
  // signal/ac — see docs/ROBUSTNESS.md)
  kFaultsInjected,          // deterministic injections that actually fired
  kPmtbrSampleRetries,      // shifted-solve retries at perturbed shifts
  kPmtbrSamplesDropped,     // samples abandoned after retries + regularization
  kPmtbrSamplesRegularized, // samples rescued by the diagonal-regularization fallback
  kPmtbrWeightReweights,    // windows whose surviving samples absorbed dropped weight
  kAcPointRetries,          // AC sweep points retried at a perturbed frequency
  kAcPointsDropped,         // AC sweep points dropped from the response
  // batched reduction service (src/serve — see docs/SERVING.md)
  kServeJobsSubmitted,      // submit() calls, admitted or rejected
  kServeJobsRejected,       // submissions refused with kOverloaded (backpressure)
  kServeJobsCompleted,      // jobs that produced a reduction
  kServeJobsFailed,         // jobs that ran and failed (coverage floor, ...)
  kServeJobsCancelled,      // jobs cancelled before or during execution
  kServeJobsExpired,        // jobs past their deadline (queued or mid-run)
  kServeQueueNanos,         // total admission-to-start (or -terminal) wait
  kServeRunNanos,           // total execution wall time across jobs
  // cross-job caching layer (serve/model_cache, sparse/factor_cache —
  // see docs/SERVING.md). The *_bytes entries are resident-size gauges
  // (incremented on insert, decremented on evict), not monotonic totals.
  kModelCacheHit,           // completed reductions served from the model LRU
  kModelCacheMiss,          // model-cache lookups that found nothing
  kModelCacheEvict,         // reduced models evicted under the byte budget
  kModelCacheCoalesced,     // jobs served by joining an in-flight identical job
  kModelCacheBytes,         // resident reduced-model payload bytes (gauge)
  kFactorCacheHit,          // shifted solves served from the shared factor LRU
  kFactorCacheMiss,         // factor-cache lookups that found nothing
  kFactorCacheEvict,        // numeric factors evicted under the byte budget
  kFactorCacheBytes,        // resident factor payload bytes (gauge)

  kCount  // sentinel; keep last
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

namespace detail {
// Zero-initialized at static initialization; no constructor ordering hazard.
extern std::array<std::atomic<std::int64_t>, kNumCounters> g_counters;
}  // namespace detail

/// Stable snake_case name used as the manifest JSON key.
const char* counter_name(Counter c) noexcept;

inline void counter_add(Counter c, std::int64_t delta = 1) noexcept {
  detail::g_counters[static_cast<std::size_t>(c)].fetch_add(delta, std::memory_order_relaxed);
}

inline std::int64_t counter_value(Counter c) noexcept {
  return detail::g_counters[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
}

/// Resets every counter to zero (tests and per-run deltas; racing increments
/// from in-flight work land after the reset, which is the desired meaning).
void reset_counters() noexcept;

/// (name, value) for every counter, in enum order.
std::vector<std::pair<std::string, std::int64_t>> counters_snapshot();

}  // namespace pmtbr::obs
