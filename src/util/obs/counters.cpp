#include "util/obs/counters.hpp"

namespace pmtbr::obs {

namespace detail {
std::array<std::atomic<std::int64_t>, kNumCounters> g_counters{};
}  // namespace detail

const char* counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kSparseLuFullFactor: return "sparse_lu_full_factor";
    case Counter::kSparseLuRefactor: return "sparse_lu_refactor";
    case Counter::kSparseLuRefactorReject: return "sparse_lu_refactor_reject";
    case Counter::kSymbolicCacheHit: return "symbolic_cache_hit";
    case Counter::kSymbolicCacheMiss: return "symbolic_cache_miss";
    case Counter::kShiftedSolve: return "shifted_solve";
    case Counter::kGemmFlops: return "gemm_flops";
    case Counter::kGemmCalls: return "gemm_calls";
    case Counter::kGemmBytes: return "gemm_bytes";
    case Counter::kQrFactorizations: return "qr_factorizations";
    case Counter::kQrBlockedPanels: return "qr_blocked_panels";
    case Counter::kTsqrFactorizations: return "tsqr_factorizations";
    case Counter::kTsqrLeafBlocks: return "tsqr_leaf_blocks";
    case Counter::kQrFlops: return "qr_flops";
    case Counter::kSvdCalls: return "svd_calls";
    case Counter::kSvdSweeps: return "svd_sweeps";
    case Counter::kSvdFlops: return "svd_flops";
    case Counter::kPoolParallelFor: return "pool_parallel_for";
    case Counter::kPoolInlineFor: return "pool_inline_for";
    case Counter::kPoolTasksExecuted: return "pool_tasks_executed";
    case Counter::kPoolChunksCaller: return "pool_chunks_caller";
    case Counter::kPoolChunksWorker: return "pool_chunks_worker";
    case Counter::kPoolIdleNanos: return "pool_idle_nanos";
    case Counter::kPmtbrSamples: return "pmtbr_samples";
    case Counter::kPmtbrAdaptiveStops: return "pmtbr_adaptive_stops";
    case Counter::kAdaptiveBisections: return "adaptive_bisections";
    case Counter::kCompressorColumnsKept: return "compressor_columns_kept";
    case Counter::kCompressorColumnsDropped: return "compressor_columns_dropped";
    case Counter::kAcSweepPoints: return "ac_sweep_points";
    case Counter::kFaultsInjected: return "faults_injected";
    case Counter::kPmtbrSampleRetries: return "pmtbr_sample_retries";
    case Counter::kPmtbrSamplesDropped: return "pmtbr_samples_dropped";
    case Counter::kPmtbrSamplesRegularized: return "pmtbr_samples_regularized";
    case Counter::kPmtbrWeightReweights: return "pmtbr_weight_reweights";
    case Counter::kAcPointRetries: return "ac_point_retries";
    case Counter::kAcPointsDropped: return "ac_points_dropped";
    case Counter::kServeJobsSubmitted: return "serve_jobs_submitted";
    case Counter::kServeJobsRejected: return "serve_jobs_rejected";
    case Counter::kServeJobsCompleted: return "serve_jobs_completed";
    case Counter::kServeJobsFailed: return "serve_jobs_failed";
    case Counter::kServeJobsCancelled: return "serve_jobs_cancelled";
    case Counter::kServeJobsExpired: return "serve_jobs_expired";
    case Counter::kServeQueueNanos: return "serve_queue_nanos";
    case Counter::kServeRunNanos: return "serve_run_nanos";
    case Counter::kModelCacheHit: return "model_cache_hit";
    case Counter::kModelCacheMiss: return "model_cache_miss";
    case Counter::kModelCacheEvict: return "model_cache_evict";
    case Counter::kModelCacheCoalesced: return "model_cache_coalesced";
    case Counter::kModelCacheBytes: return "model_cache_bytes";
    case Counter::kFactorCacheHit: return "factor_cache_hit";
    case Counter::kFactorCacheMiss: return "factor_cache_miss";
    case Counter::kFactorCacheEvict: return "factor_cache_evict";
    case Counter::kFactorCacheBytes: return "factor_cache_bytes";
    case Counter::kCount: break;
  }
  return "unknown";
}

void reset_counters() noexcept {
  for (auto& c : detail::g_counters) c.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::int64_t>> counters_snapshot() {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(kNumCounters);
  for (int i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    out.emplace_back(counter_name(c), counter_value(c));
  }
  return out;
}

}  // namespace pmtbr::obs
