#include "util/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace pmtbr::obs {

namespace {

std::atomic<bool> g_trace_enabled{[] {
  const char* v = std::getenv("PMTBR_TRACE");
  return v != nullptr && (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
                          std::strcmp(v, "on") == 0);
}()};

// Full scope path of the current thread; TraceScope appends/truncates.
thread_local std::string tl_path;  // NOLINT(runtime/string)

struct Accum {
  long long count = 0;
  double seconds = 0;
};

util::Mutex g_stats_mutex;
// The registry is reached only through this accessor, whose contract makes
// every caller hold the mutex; the function-local static keeps the usual
// initialization-order safety.
std::map<std::string, Accum>& stats_table() PMTBR_REQUIRES(g_stats_mutex) {
  static std::map<std::string, Accum> table;  // NOLINT: process-lifetime registry
  return table;
}

double now_seconds() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool trace_enabled() noexcept { return g_trace_enabled.load(std::memory_order_relaxed); }

void set_trace_enabled(bool on) noexcept {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

void TraceScope::enter(const char* name) {
  parent_len_ = tl_path.size();
  if (!tl_path.empty()) tl_path += '/';
  tl_path += name;
  start_ = now_seconds();
  active_ = true;
}

void TraceScope::leave() noexcept {
  const double elapsed = now_seconds() - start_;
  try {
    util::MutexLock lock(g_stats_mutex);
    Accum& a = stats_table()[tl_path];
    ++a.count;
    a.seconds += elapsed;
  } catch (...) {
    // Allocation failure while recording a diagnostic: drop the sample.
  }
  tl_path.resize(parent_len_);
}

std::vector<ScopeStat> trace_snapshot() {
  util::MutexLock lock(g_stats_mutex);
  std::vector<ScopeStat> out;
  out.reserve(stats_table().size());
  for (const auto& [path, acc] : stats_table()) out.push_back({path, acc.count, acc.seconds});
  return out;
}

void reset_trace() {
  util::MutexLock lock(g_stats_mutex);
  stats_table().clear();
}

}  // namespace pmtbr::obs
