// Minimal locale-independent JSON emission, shared by the run-manifest
// writer and the bench timing artifacts.
//
// Doubles go through std::to_chars (shortest round-trip form, never
// locale-dependent commas); strings are escaped per RFC 8259. The writer is
// a flat streaming builder with a begin/end scope stack — enough for the
// manifest schema, deliberately not a general JSON library.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pmtbr::obs {

/// RFC 8259 string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Shortest round-trip decimal form via std::to_chars; NaN and infinities
/// (not representable in JSON) are emitted as null.
std::string json_double(double v);

class JsonWriter {
 public:
  /// Writes to `out`; emit exactly one top-level value, then call done().
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value or begin_*().
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  /// Emits a pre-serialized JSON fragment verbatim (caller guarantees
  /// validity) — used to splice caller-provided extra manifest fields.
  void raw(std::string_view json_fragment);

  /// Ends the document with a trailing newline.
  void done();

 private:
  void before_value();

  std::ostream& out_;
  // One frame per open scope: whether a comma is needed before the next
  // element at this level.
  std::vector<bool> needs_comma_{false};
  bool after_key_ = false;
  int indent_ = 0;
  void newline_indent();
};

}  // namespace pmtbr::obs
