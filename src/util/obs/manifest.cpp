#include "util/obs/manifest.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/obs/counters.hpp"
#include "util/obs/json.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"

#ifndef PMTBR_GIT_DESCRIBE
#define PMTBR_GIT_DESCRIBE "unknown"
#endif
#ifndef PMTBR_BUILD_TYPE
#define PMTBR_BUILD_TYPE "unknown"
#endif

namespace pmtbr::obs {

namespace {

void env_entry(JsonWriter& w, const char* name) {
  w.key(name);
  const char* v = std::getenv(name);
  if (v == nullptr) {
    w.null();
  } else {
    w.value(std::string_view(v));
  }
}

}  // namespace

std::string manifest_json(const std::string& name, const ManifestExtras& extra) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("schema");
  w.value("pmtbr-manifest/1");
  w.key("run");
  w.value(name);
  w.key("git_describe");
  w.value(PMTBR_GIT_DESCRIBE);
  w.key("build_type");
  w.value(PMTBR_BUILD_TYPE);
  w.key("threads");
  w.value(static_cast<std::int64_t>(util::global_pool().size()));
  w.key("env");
  w.begin_object();
  env_entry(w, "PMTBR_NUM_THREADS");
  env_entry(w, "PMTBR_TRACE");
  w.end_object();
  w.key("trace_enabled");
  w.value(trace_enabled());

  w.key("extra");
  w.begin_object();
  for (const auto& [k, fragment] : extra) {
    w.key(k);
    w.raw(fragment);
  }
  w.end_object();

  w.key("counters");
  w.begin_object();
  for (const auto& [cname, v] : counters_snapshot()) {
    w.key(cname);
    w.value(v);
  }
  w.end_object();

  w.key("trace");
  w.begin_array();
  for (const auto& s : trace_snapshot()) {
    w.begin_object();
    w.key("path");
    w.value(s.path);
    w.key("count");
    w.value(static_cast<std::int64_t>(s.count));
    w.key("seconds");
    w.value(s.seconds);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  w.done();
  return os.str();
}

bool write_manifest(const std::string& path, const std::string& name,
                    const ManifestExtras& extra) {
  std::ofstream out(path);
  if (!out) return false;
  out << manifest_json(name, extra);
  return static_cast<bool>(out);
}

}  // namespace pmtbr::obs
