// Hierarchical scoped wall-clock tracing, off by default.
//
// PMTBR_TRACE_SCOPE("name") opens a scope whose full path is the
// "/"-joined chain of the scopes enclosing it on the SAME thread
// ("pmtbr/descriptor.factor_shifted/splu.refactor"). On scope exit the
// elapsed wall time is accumulated into a process-wide (path -> count,
// seconds) table that trace_snapshot() reads and the run manifest embeds.
//
// Cost model: tracing is enabled only when the environment sets
// PMTBR_TRACE=1 (or a test calls set_trace_enabled). Disabled, a scope is
// one relaxed atomic load and a branch — cheap enough to leave in solver
// hot paths. Enabled, scope exit takes a short global mutex; scopes are
// placed at solve/factorization granularity, never per matrix element.
//
// Worker threads each carry their own path stack, so a traced region inside
// a parallel_for nests under whatever scope the worker itself opened (its
// chain starts fresh on the worker), while the caller thread's chain nests
// normally. Aggregation is by full path across all threads.
#pragma once

#include <string>
#include <vector>

namespace pmtbr::obs {

/// True when scopes record. Initialized once from PMTBR_TRACE ("1", "true",
/// "on" enable; anything else disables); tests may flip it at runtime.
bool trace_enabled() noexcept;
void set_trace_enabled(bool on) noexcept;

struct ScopeStat {
  std::string path;    // "/"-joined scope chain
  long long count = 0; // times the scope closed
  double seconds = 0;  // total wall time across all closures
};

/// All recorded scope paths, sorted by path.
std::vector<ScopeStat> trace_snapshot();

/// Drops every recorded stat (open scopes still record on exit).
void reset_trace();

class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (trace_enabled()) enter(name);
  }
  ~TraceScope() {
    if (active_) leave();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void enter(const char* name);
  void leave() noexcept;

  bool active_ = false;
  std::size_t parent_len_ = 0;  // thread-local path length to restore
  double start_ = 0.0;          // monotonic seconds at entry
};

}  // namespace pmtbr::obs

#define PMTBR_TRACE_CONCAT2(a, b) a##b
#define PMTBR_TRACE_CONCAT(a, b) PMTBR_TRACE_CONCAT2(a, b)
#define PMTBR_TRACE_SCOPE(name) \
  ::pmtbr::obs::TraceScope PMTBR_TRACE_CONCAT(pmtbr_trace_scope_, __COUNTER__)(name)
