#include "util/obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace pmtbr::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  std::string s(buf, res.ptr);
  // Bare exponent-free integers ("42") are valid JSON numbers, but keeping a
  // decimal point marks the field as floating for schema readers.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

void JsonWriter::newline_indent() {
  out_ << '\n';
  for (int i = 0; i < indent_; ++i) out_ << "  ";
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (needs_comma_.back()) out_ << ',';
  if (needs_comma_.size() > 1) newline_indent();
  needs_comma_.back() = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  ++indent_;
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  needs_comma_.pop_back();
  --indent_;
  newline_indent();
  out_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  ++indent_;
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  needs_comma_.pop_back();
  --indent_;
  newline_indent();
  out_ << ']';
}

void JsonWriter::key(std::string_view k) {
  if (needs_comma_.back()) out_ << ',';
  newline_indent();
  needs_comma_.back() = true;
  out_ << '"' << json_escape(k) << "\": ";
  after_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ << '"' << json_escape(s) << '"';
}

void JsonWriter::value(double v) {
  before_value();
  out_ << json_double(v);
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

void JsonWriter::raw(std::string_view json_fragment) {
  before_value();
  out_ << json_fragment;
}

void JsonWriter::done() { out_ << '\n'; }

}  // namespace pmtbr::obs
