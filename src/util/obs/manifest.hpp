// Per-run manifest: one machine-readable JSON blob capturing everything
// needed to compare two runs of the same workload across commits — build
// identity (git describe), thread configuration, every observability
// counter, and the aggregated trace-scope timings.
//
// Schema "pmtbr-manifest/1" (see docs/OBSERVABILITY.md):
// {
//   "schema": "pmtbr-manifest/1",
//   "run": "<name>",
//   "git_describe": "<git describe --always --dirty | unknown>",
//   "build_type": "<CMAKE_BUILD_TYPE | unknown>",
//   "threads": <resolved pool parallelism>,
//   "env": {"PMTBR_NUM_THREADS": "<raw|unset>", "PMTBR_TRACE": "<raw|unset>"},
//   "trace_enabled": true|false,
//   "extra": { ...caller-supplied key -> JSON fragment... },
//   "counters": {"<counter>": <int>, ...},
//   "trace": [{"path": "...", "count": <int>, "seconds": <float>}, ...]
// }
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace pmtbr::obs {

/// Caller-supplied manifest fields: key plus a pre-serialized JSON value
/// ("42", "\"tag\"", "[1,2]"). Use json_double()/json_escape() to build.
using ManifestExtras = std::vector<std::pair<std::string, std::string>>;

/// Serializes the manifest for run `name` to a string.
std::string manifest_json(const std::string& name, const ManifestExtras& extra = {});

/// Writes manifest_json() to `path`. Returns true on success; failure to
/// write a diagnostic artifact is never fatal to the run.
bool write_manifest(const std::string& path, const std::string& name,
                    const ManifestExtras& extra = {});

}  // namespace pmtbr::obs
