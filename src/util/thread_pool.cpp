#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "util/obs/counters.hpp"

namespace pmtbr::util {

namespace {

// Set while a thread is executing pool work; parallel_for from such a thread
// must run inline or the nested wait could deadlock the queue.
thread_local bool tl_inside_pool_task = false;

// One parallel_for invocation shared by its chunk tasks. `end`, `chunk`
// and `fn` are written once before the job is published to the queue (the
// queue mutex hand-off orders them); only the completion state needs the
// job mutex.
struct ForJob {
  index end = 0;
  index chunk = 1;
  std::atomic<index> next{0};
  const std::function<void(index)>* fn = nullptr;

  Mutex mutex;
  ConditionVariable done_cv;
  int pending_tasks PMTBR_GUARDED_BY(mutex) = 0;
  std::exception_ptr error PMTBR_GUARDED_BY(mutex);
  std::atomic<bool> abort{false};

  // Grabs chunks until the range (or the job, on error) is exhausted.
  void run_chunks() {
    while (!abort.load(std::memory_order_relaxed)) {
      const index lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      // Chunk attribution: pool workers run inside a pool task, the
      // issuing thread does not — the worker share is the "steal" ratio.
      obs::counter_add(tl_inside_pool_task ? obs::Counter::kPoolChunksWorker
                                           : obs::Counter::kPoolChunksCaller);
      const index hi = std::min<index>(lo + chunk, end);
      try {
        for (index i = lo; i < hi; ++i) {
          if (abort.load(std::memory_order_relaxed)) return;
          (*fn)(i);
        }
      } catch (...) {
        MutexLock lock(mutex);
        if (!error) error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(threads, 1) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tl_inside_pool_task = true;
  for (;;) {
    std::function<void()> task;
    {
      const auto idle_from = std::chrono::steady_clock::now();
      UniqueLock lock(mutex_);
      // Guarded reads stay visibly under the lock (no predicate lambda —
      // see util/mutex.hpp on why ConditionVariable has no predicate wait).
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      obs::counter_add(obs::Counter::kPoolIdleNanos,
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - idle_from)
                           .count());
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    obs::counter_add(obs::Counter::kPoolTasksExecuted);
    task();
  }
}

void ThreadPool::parallel_for(index begin, index end, const std::function<void(index)>& fn) {
  if (begin >= end) return;
  const index count = end - begin;
  if (count == 1 || size() == 1 || tl_inside_pool_task) {
    obs::counter_add(obs::Counter::kPoolInlineFor);
    for (index i = begin; i < end; ++i) fn(i);
    return;
  }

  obs::counter_add(obs::Counter::kPoolParallelFor);
  auto job = std::make_shared<ForJob>();
  job->end = count;
  // ~4 chunks per thread balances scheduling overhead against load skew.
  job->chunk = std::max<index>(1, count / (static_cast<index>(size()) * 4));
  const std::function<void(index)> shifted = [&](index i) { fn(begin + i); };
  job->fn = &shifted;

  const int helpers =
      static_cast<int>(std::min<index>(count, static_cast<index>(workers_.size())));
  {
    // pending_tasks is guarded by the job mutex, not the queue mutex; set
    // it before the tasks that decrement it can possibly exist.
    MutexLock jlock(job->mutex);
    job->pending_tasks = helpers;
  }
  {
    MutexLock lock(mutex_);
    for (int t = 0; t < helpers; ++t)
      tasks_.push([job] {
        job->run_chunks();
        MutexLock jlock(job->mutex);
        if (--job->pending_tasks == 0) job->done_cv.notify_all();
      });
  }
  cv_.notify_all();

  job->run_chunks();  // the caller is a full participant

  UniqueLock lock(job->mutex);
  while (job->pending_tasks != 0) job->done_cv.wait(lock);
  if (job->error) std::rethrow_exception(job->error);
}

int resolve_num_threads(const char* env_value) {
  if (env_value != nullptr) {
    char* parse_end = nullptr;
    const long v = std::strtol(env_value, &parse_end, 10);
    if (parse_end != env_value && *parse_end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

Mutex g_pool_mutex;
// NOLINTNEXTLINE: intentional process-lifetime pool
std::unique_ptr<ThreadPool> g_pool PMTBR_GUARDED_BY(g_pool_mutex);

}  // namespace

ThreadPool& global_pool() {
  MutexLock lock(g_pool_mutex);
  if (!g_pool)
    g_pool = std::make_unique<ThreadPool>(resolve_num_threads(std::getenv("PMTBR_NUM_THREADS")));
  return *g_pool;
}

void set_global_threads(int threads) {
  auto fresh = std::make_unique<ThreadPool>(std::max(threads, 1));
  MutexLock lock(g_pool_mutex);
  g_pool = std::move(fresh);
}

}  // namespace pmtbr::util
