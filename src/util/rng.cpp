#include "util/rng.hpp"

#include <numeric>

namespace pmtbr {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

std::vector<double> Rng::uniform_vec(std::size_t n, double lo, double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = uniform(lo, hi);
  return v;
}

std::vector<double> Rng::normal_vec(std::size_t n, double mean, double stddev) {
  std::vector<double> v(n);
  for (auto& x : v) x = normal(mean, stddev);
  return v;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace pmtbr
