// Tiny command-line option parser for the examples and bench binaries.
//
// Accepts `--key=value` and `--flag` arguments; anything else is collected
// as a positional argument.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace pmtbr {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  double get_double(const std::string& key, double def) const;
  int get_int(const std::string& key, int def) const;
  std::uint64_t get_seed(const std::string& key, std::uint64_t def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace pmtbr
