// Cooperative cancellation for long-running reductions (docs/SERVING.md).
//
// A CancelToken is a copyable handle to shared cancellation state. The
// serving layer hands one token to each job; the sampling loops in
// mor::pmtbr / mor::pmtbr_adaptive poll it between windows and abort with
// the matching Status (kCancelled for an explicit request, kDeadlineExceeded
// once the armed deadline passes). util::parallel_try_map also accepts a
// token: tasks that have not started when the token fires are skipped,
// leaving their default Expected slot (kCancelled, "task never ran").
//
// A default-constructed token is inert — it owns no state, never reports
// cancellation, and costs one null-pointer test per poll — so library code
// can poll unconditionally.
//
// Cancellation is strictly cooperative: requesting it never interrupts a
// running solve; the run winds down at the next poll point. Both the flag
// and the deadline live in atomics, so request_cancel() / polls need no
// lock and are safe from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.hpp"

namespace pmtbr::util {

class CancelToken {
 public:
  /// Inert token: never cancelled, no shared state.
  CancelToken() = default;

  /// A token with live shared state; copies observe the same state.
  static CancelToken make() {
    CancelToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  bool valid() const noexcept { return state_ != nullptr; }

  /// Requests cooperative cancellation. Safe from any thread; idempotent.
  /// No-op on an inert token.
  void request_cancel() const noexcept {
    if (state_) state_->cancelled.store(true, std::memory_order_release);
  }

  /// Arms (or re-arms) an absolute deadline; the token reports
  /// kDeadlineExceeded once steady_clock passes it. No-op on an inert token.
  void set_deadline(std::chrono::steady_clock::time_point deadline) const noexcept {
    if (state_)
      state_->deadline_ns.store(deadline.time_since_epoch().count(),
                                std::memory_order_release);
  }

  /// True iff request_cancel() was called (deadline not considered).
  bool cancel_requested() const noexcept {
    return state_ && state_->cancelled.load(std::memory_order_acquire);
  }

  /// True iff a deadline is armed and has passed.
  bool deadline_passed() const noexcept {
    if (!state_) return false;
    const std::int64_t d = state_->deadline_ns.load(std::memory_order_acquire);
    return d != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= d;
  }

  /// True iff the run should stop (explicit request or expired deadline).
  bool cancelled() const noexcept { return cancel_requested() || deadline_passed(); }

  /// OK while live; kCancelled after an explicit request (which wins over a
  /// simultaneously expired deadline); kDeadlineExceeded past the deadline.
  Status check() const {
    if (cancel_requested()) return Status(ErrorCode::kCancelled, "cancellation requested");
    if (deadline_passed())
      return Status(ErrorCode::kDeadlineExceeded, "deadline exceeded");
    return Status::ok();
  }

  /// Poll point for the sampling loops: throws StatusError on cancellation.
  void throw_if_cancelled() const {
    Status st = check();
    if (!st.is_ok()) throw StatusError(std::move(st));
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    // steady_clock rep of the armed deadline; 0 = none. std::chrono here is
    // the deadline's representation, not ad-hoc timing (allowlisted).
    std::atomic<std::int64_t> deadline_ns{0};
  };

  std::shared_ptr<State> state_;
};

}  // namespace pmtbr::util
