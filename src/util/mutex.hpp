// Capability-annotated mutex and scoped-lock types.
//
// Clang's thread-safety analysis only tracks lock state through types that
// carry the capability attributes, so std::mutex / std::lock_guard are
// invisible to it. These thin wrappers add the attributes (util/
// annotations.hpp) at zero runtime cost:
//
//   Mutex       std::mutex with annotated lock()/unlock()/try_lock().
//   MutexLock   lock_guard equivalent: acquires in the constructor,
//               releases in the destructor, cannot be unlocked early.
//   UniqueLock  unique_lock equivalent for condition-variable waits and
//               early unlocks; satisfies BasicLockable so
//               std::condition_variable_any can wait on it directly.
//
// House rules (enforced by the `lock-outside-api` check in tools/analyze):
// library code never calls .lock()/.unlock() on a Mutex directly — locking
// always goes through one of the scoped types so that every acquire has a
// release on every path, and the analysis can see both.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace pmtbr::util {

class PMTBR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PMTBR_ACQUIRE() { m_.lock(); }
  void unlock() PMTBR_RELEASE() { m_.unlock(); }
  bool try_lock() PMTBR_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped exclusive lock, held for the full scope (lock_guard semantics).
class PMTBR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) PMTBR_ACQUIRE(m) : mutex_(m) { mutex_.lock(); }
  ~MutexLock() PMTBR_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped exclusive lock that can be released early and re-acquired, and
/// that condition_variable_any can wait on (it is BasicLockable). The
/// destructor releases only if currently owned — the analysis' scoped-
/// capability model assumes the destructor releases, which matches every
/// sane usage (an early unlock() is visible to the analysis as a release).
class PMTBR_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) PMTBR_ACQUIRE(m) : mutex_(m), owned_(true) {
    mutex_.lock();
  }
  ~UniqueLock() PMTBR_RELEASE() {
    if (owned_) mutex_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() PMTBR_ACQUIRE() {
    mutex_.lock();
    owned_ = true;
  }
  void unlock() PMTBR_RELEASE() {
    owned_ = false;
    mutex_.unlock();
  }
  bool owns_lock() const noexcept { return owned_; }

 private:
  Mutex& mutex_;
  bool owned_;
};

/// Condition variable paired with Mutex/UniqueLock. Predicate-style waits
/// are deliberately absent: a predicate lambda is analyzed as an
/// unannotated function, so reads of guarded state inside it would trip
/// -Wthread-safety. Callers write the standard loop instead, where the
/// guarded reads are visibly under the lock:
///
///   UniqueLock lock(mutex_);
///   while (!ready_) cv_.wait(lock);
class ConditionVariable {
 public:
  /// Atomically releases `lock`, blocks, and re-acquires before returning.
  /// Capability-neutral: the lock is held on entry and on exit, so no
  /// annotation is needed (the release/re-acquire inside
  /// condition_variable_any is invisible to the analysis, which is exactly
  /// the semantics callers rely on).
  void wait(UniqueLock& lock) { cv_.wait(lock); }

  /// Timed wait for polling loops (e.g. the single-flight gate in
  /// util/lru.hpp, whose followers re-check an abort predicate between
  /// waits). Templated on the duration type so callers supply the units
  /// (and so this header stays clock-free); same capability-neutral
  /// contract as wait().
  template <typename Duration>
  std::cv_status wait_for(UniqueLock& lock, const Duration& d) {
    return cv_.wait_for(lock, d);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace pmtbr::util
