// Deterministic 128-bit content fingerprints for cross-job caching
// (docs/SERVING.md).
//
// A Fingerprint is a stable hash of "everything that determines the
// result": the caching layers key reduced models by (system content,
// canonicalized options) and numeric LU factors by (system content,
// frozen pivot order, shift). Two requirements drive the design:
//
//  - determinism across processes and thread schedules: the digest is a
//    pure function of the mixed values and their order, built on the
//    splitmix64 finalizer (the same primitive util/faultinject uses for
//    its keyed decisions) — no pointers, no iteration-order hazards;
//  - structural sensitivity: values are mixed with a running position
//    counter, so permuting inputs or moving a boundary between two mixed
//    spans changes the digest (mix(a), mix(b) != mix(b), mix(a)).
//
// Doubles are hashed by bit pattern (std::bit_cast), so a fingerprint
// match implies bit-identical inputs — the property the bit-identical
// cache-hit guarantee rests on. (+0.0 and -0.0 therefore hash
// differently; that is intentional.)
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace pmtbr::util {

/// splitmix64 — the standard 64-bit finalizer; good avalanche, no state.
inline constexpr std::uint64_t fingerprint_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) noexcept {
    return !(a == b);
  }

  /// 32 lowercase hex digits (hi then lo), for logs and manifests.
  std::string hex() const;
};

/// Hash functor for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& f) const noexcept {
    return static_cast<std::size_t>(f.hi ^ fingerprint_mix(f.lo));
  }
};

/// Order-sensitive streaming hasher producing a Fingerprint. Two lanes are
/// mixed with different tweaks so 128 bits carry more than a repeated
/// 64-bit digest.
class FingerprintHasher {
 public:
  void mix(std::uint64_t v) noexcept {
    h1_ = fingerprint_mix(h1_ ^ v);
    h2_ = fingerprint_mix(h2_ + v + (count_ << 1 | 1));
    ++count_;
  }

  void mix_i64(std::int64_t v) noexcept { mix(static_cast<std::uint64_t>(v)); }
  void mix_double(double v) noexcept { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix_bool(bool v) noexcept { mix(v ? 1u : 0u); }

  /// Mixes a span of integral values (index vectors, enum arrays).
  template <typename Int>
  void mix_ints(const Int* p, std::size_t n) noexcept {
    mix(n);
    for (std::size_t i = 0; i < n; ++i)
      mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(p[i])));
  }
  template <typename Int>
  void mix_ints(const std::vector<Int>& v) noexcept {
    mix_ints(v.data(), v.size());
  }

  void mix_doubles(const double* p, std::size_t n) noexcept {
    mix(n);
    for (std::size_t i = 0; i < n; ++i) mix_double(p[i]);
  }
  void mix_doubles(const std::vector<double>& v) noexcept {
    mix_doubles(v.data(), v.size());
  }

  Fingerprint digest() const noexcept {
    // Final mixes fold the element count into both lanes so an empty
    // hasher and one that mixed a single zero differ.
    return Fingerprint{fingerprint_mix(h1_ ^ count_),
                       fingerprint_mix(h2_ ^ (count_ * 0x9e3779b97f4a7c15ULL))};
  }

 private:
  std::uint64_t h1_ = 0x8f5c'1c47'9f0a'2d3bULL;
  std::uint64_t h2_ = 0x243f'6a88'85a3'08d3ULL;
  std::uint64_t count_ = 0;
};

/// Digest of two fingerprints plus a tag — the factor-cache key combiner
/// (system content, symbolic structure, shift folded in by the caller).
inline Fingerprint fingerprint_combine(const Fingerprint& a, const Fingerprint& b) noexcept {
  FingerprintHasher h;
  h.mix(a.hi);
  h.mix(a.lo);
  h.mix(b.hi);
  h.mix(b.lo);
  return h.digest();
}

}  // namespace pmtbr::util
