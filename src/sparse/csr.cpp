#include "sparse/csr.hpp"

#include <algorithm>
#include <numeric>

namespace pmtbr::sparse {

template <typename T>
Csr<T>::Csr(const Triplets<T>& t) : rows_(t.rows()), cols_(t.cols()) {
  const auto& ti = t.row_idx();
  const auto& tj = t.col_idx();
  const auto& tv = t.values();
  const std::size_t nz = tv.size();

  // Counting sort by row.
  ptr_.assign(static_cast<std::size_t>(rows_) + 1, 0);
  for (std::size_t k = 0; k < nz; ++k) ++ptr_[static_cast<std::size_t>(ti[k]) + 1];
  for (index i = 0; i < rows_; ++i)
    ptr_[static_cast<std::size_t>(i) + 1] += ptr_[static_cast<std::size_t>(i)];

  std::vector<index> tmp_col(nz);
  std::vector<T> tmp_val(nz);
  std::vector<index> next(ptr_.begin(), ptr_.end() - 1);
  for (std::size_t k = 0; k < nz; ++k) {
    const index pos = next[static_cast<std::size_t>(ti[k])]++;
    tmp_col[static_cast<std::size_t>(pos)] = tj[k];
    tmp_val[static_cast<std::size_t>(pos)] = tv[k];
  }

  // Sort each row by column and sum duplicates.
  col_.reserve(nz);
  val_.reserve(nz);
  std::vector<index> new_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<std::size_t> order;
  for (index i = 0; i < rows_; ++i) {
    const index b = ptr_[static_cast<std::size_t>(i)];
    const index e = ptr_[static_cast<std::size_t>(i) + 1];
    order.resize(static_cast<std::size_t>(e - b));
    std::iota(order.begin(), order.end(), static_cast<std::size_t>(b));
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return tmp_col[x] < tmp_col[y]; });
    for (std::size_t k = 0; k < order.size(); ++k) {
      const index c = tmp_col[order[k]];
      const T v = tmp_val[order[k]];
      if (!col_.empty() &&
          static_cast<index>(col_.size()) > new_ptr[static_cast<std::size_t>(i)] &&
          col_.back() == c) {
        val_.back() += v;
      } else {
        col_.push_back(c);
        val_.push_back(v);
      }
    }
    new_ptr[static_cast<std::size_t>(i) + 1] = static_cast<index>(col_.size());
  }
  ptr_ = std::move(new_ptr);
}

template <typename T>
std::vector<T> Csr<T>::matvec(const std::vector<T>& x) const {
  PMTBR_REQUIRE(static_cast<index>(x.size()) == cols_, "matvec size mismatch");
  PMTBR_CHECK_FINITE(*this, "csr matvec matrix");
  PMTBR_CHECK_FINITE(x, "csr matvec vector");
  std::vector<T> y(static_cast<std::size_t>(rows_), T{});
  for (index i = 0; i < rows_; ++i) {
    T acc{};
    for (index k = ptr_[static_cast<std::size_t>(i)]; k < ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      acc += val_[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(col_[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

template <typename T>
std::vector<T> Csr<T>::matvec_transpose(const std::vector<T>& x) const {
  PMTBR_REQUIRE(static_cast<index>(x.size()) == rows_, "matvec_transpose size mismatch");
  PMTBR_CHECK_FINITE(*this, "csr matvec_transpose matrix");
  PMTBR_CHECK_FINITE(x, "csr matvec_transpose vector");
  std::vector<T> y(static_cast<std::size_t>(cols_), T{});
  for (index i = 0; i < rows_; ++i) {
    const T xi = x[static_cast<std::size_t>(i)];
    if (xi == T{}) continue;
    for (index k = ptr_[static_cast<std::size_t>(i)]; k < ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      y[static_cast<std::size_t>(col_[static_cast<std::size_t>(k)])] += val_[static_cast<std::size_t>(k)] * xi;
  }
  return y;
}

template <typename T>
la::Matrix<T> Csr<T>::to_dense() const {
  la::Matrix<T> d(rows_, cols_);
  for (index i = 0; i < rows_; ++i)
    for (index k = ptr_[static_cast<std::size_t>(i)]; k < ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      d(i, col_[static_cast<std::size_t>(k)]) += val_[static_cast<std::size_t>(k)];
  return d;
}

template <typename T>
T Csr<T>::at(index i, index j) const {
  PMTBR_REQUIRE(0 <= i && i < rows_ && 0 <= j && j < cols_, "index out of range");
  for (index k = ptr_[static_cast<std::size_t>(i)]; k < ptr_[static_cast<std::size_t>(i) + 1]; ++k)
    if (col_[static_cast<std::size_t>(k)] == j) return val_[static_cast<std::size_t>(k)];
  return T{};
}

namespace {

// Merges two CSRs over the union pattern row by row, applying a binary op
// on (a_val, b_val) pairs where a missing entry contributes T{}.
template <typename TA, typename TB, typename TO, typename F>
Csr<TO> merge_rows(const Csr<TA>& a, const Csr<TB>& b, F f) {
  PMTBR_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "combine shape mismatch");
  std::vector<index> ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index> col;
  std::vector<TO> val;
  col.reserve(a.nnz() + b.nnz());
  val.reserve(a.nnz() + b.nnz());
  for (index i = 0; i < a.rows(); ++i) {
    index ka = a.row_ptr()[static_cast<std::size_t>(i)];
    const index ea = a.row_ptr()[static_cast<std::size_t>(i) + 1];
    index kb = b.row_ptr()[static_cast<std::size_t>(i)];
    const index eb = b.row_ptr()[static_cast<std::size_t>(i) + 1];
    while (ka < ea || kb < eb) {
      index ca = ka < ea ? a.col_idx()[static_cast<std::size_t>(ka)] : a.cols();
      index cb = kb < eb ? b.col_idx()[static_cast<std::size_t>(kb)] : b.cols();
      if (ca < cb) {
        col.push_back(ca);
        val.push_back(f(a.values()[static_cast<std::size_t>(ka)], TB{}));
        ++ka;
      } else if (cb < ca) {
        col.push_back(cb);
        val.push_back(f(TA{}, b.values()[static_cast<std::size_t>(kb)]));
        ++kb;
      } else {
        col.push_back(ca);
        val.push_back(
            f(a.values()[static_cast<std::size_t>(ka)], b.values()[static_cast<std::size_t>(kb)]));
        ++ka;
        ++kb;
      }
    }
    ptr[static_cast<std::size_t>(i) + 1] = static_cast<index>(col.size());
  }
  return Csr<TO>(a.rows(), a.cols(), std::move(ptr), std::move(col), std::move(val));
}

}  // namespace

template <typename T>
Csr<T> combine(T alpha, const Csr<T>& a, T beta, const Csr<T>& b) {
  return merge_rows<T, T, T>(a, b, [&](T x, T y) { return alpha * x + beta * y; });
}

CsrC shifted_pencil(cd s, const CsrD& e, const CsrD& a) {
  return merge_rows<double, double, cd>(e, a, [&](double x, double y) { return s * x - y; });
}

CsrC to_complex(const CsrD& a) {
  std::vector<cd> v(a.values().begin(), a.values().end());
  return CsrC(a.rows(), a.cols(), a.row_ptr(), a.col_idx(), std::move(v));
}

template class Csr<double>;
template class Csr<cd>;
template Csr<double> combine(double, const Csr<double>&, double, const Csr<double>&);
template Csr<cd> combine(cd, const Csr<cd>&, cd, const Csr<cd>&);
template class Triplets<double>;
template class Triplets<cd>;

}  // namespace pmtbr::sparse
