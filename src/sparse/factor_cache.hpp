// Process-wide LRU of *numeric* sparse LU factors, shared across jobs
// (docs/SERVING.md).
//
// The per-system symbolic cache (circuit/descriptor) already amortizes
// the elimination analysis across shifts of one DescriptorSystem
// instance; this cache extends the idea one level down and across
// instances: two jobs that factor the same pencil content at the same
// shift share the numeric factors themselves, no matter which
// DescriptorSystem object (or which service job) asked first.
//
// Keying: callers digest (system content fingerprint, symbolic-structure
// fingerprint, shift) into one Fingerprint. Including the symbolic
// fingerprint is what keeps cache hits bit-identical — numeric factors
// depend on the frozen pivot order, and two content-identical systems
// whose analyses were built at different representative shifts may carry
// different (each individually valid) pivot orders.
//
// Values are shared_ptr<const SparseLuC>: immutable after construction,
// so handing the same factorization to concurrent solvers is race-free,
// and a handle obtained before eviction stays valid.
//
// The byte budget comes from PMTBR_CACHE_BYTES (k/m/g suffixes; 0
// disables the cache) and defaults to 256 MiB. Callers must not consult
// the cache while fault injection is armed — injected factor failures are
// keyed per solve attempt, and serving cached factors would skip
// injection sites the robustness tests account for exactly.
#pragma once

#include <memory>

#include "sparse/splu.hpp"
#include "util/fingerprint.hpp"
#include "util/lru.hpp"

namespace pmtbr::sparse {

/// Estimated resident size of one cached factorization: numeric payload
/// plus the U diagonal (the shared symbolic pattern is not charged — it
/// lives on regardless via the per-system cache).
std::size_t factor_cache_bytes(const SparseLuC& lu);

class FactorCache {
 public:
  /// The process-wide instance (budget resolved from PMTBR_CACHE_BYTES at
  /// first use, default 256 MiB).
  static FactorCache& global();

  bool enabled() const { return lru_.enabled(); }

  /// Returns the cached factorization or nullptr; bumps the
  /// factor_cache_hit/miss counters.
  std::shared_ptr<const SparseLuC> lookup(const util::Fingerprint& key);

  /// Inserts `lu` under `key`, evicting LRU entries past the byte budget;
  /// mirrors eviction and resident-bytes counters.
  void insert(const util::Fingerprint& key, std::shared_ptr<const SparseLuC> lu);

  util::CacheStats stats() const { return lru_.stats(); }

  /// Drops every cached factor (tests and benches isolating counter
  /// assertions from earlier work in the same process).
  void clear();

 private:
  explicit FactorCache(std::size_t byte_budget);

  util::LruCache<util::Fingerprint, std::shared_ptr<const SparseLuC>, util::FingerprintHash>
      lru_;
};

}  // namespace pmtbr::sparse
