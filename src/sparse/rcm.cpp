#include "sparse/rcm.hpp"

#include <algorithm>
#include <queue>

namespace pmtbr::sparse {

namespace {

// Adjacency of the symmetrized pattern, excluding the diagonal.
std::vector<std::vector<index>> build_adjacency(const CsrD& a) {
  const index n = a.rows();
  std::vector<std::vector<index>> adj(static_cast<std::size_t>(n));
  for (index i = 0; i < n; ++i) {
    for (index k = a.row_ptr()[static_cast<std::size_t>(i)];
         k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const index j = a.col_idx()[static_cast<std::size_t>(k)];
      if (i == j) continue;
      adj[static_cast<std::size_t>(i)].push_back(j);
      adj[static_cast<std::size_t>(j)].push_back(i);
    }
  }
  for (auto& nb : adj) {
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  }
  return adj;
}

}  // namespace

std::vector<index> rcm_ordering(const CsrD& a) {
  PMTBR_REQUIRE(a.rows() == a.cols(), "rcm requires a square matrix");
  const index n = a.rows();
  const auto adj = build_adjacency(a);

  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<index> order;
  order.reserve(static_cast<std::size_t>(n));

  auto degree = [&](index v) { return static_cast<index>(adj[static_cast<std::size_t>(v)].size()); };

  for (index start_scan = 0; static_cast<index>(order.size()) < n; ++start_scan) {
    // Find an unvisited vertex of minimum degree as the component root.
    index root = -1;
    for (index v = 0; v < n; ++v) {
      if (visited[static_cast<std::size_t>(v)]) continue;
      if (root < 0 || degree(v) < degree(root)) root = v;
    }
    PMTBR_ENSURE(root >= 0, "rcm lost track of unvisited vertices");

    // BFS with neighbors sorted by increasing degree (Cuthill–McKee).
    std::queue<index> q;
    q.push(root);
    visited[static_cast<std::size_t>(root)] = 1;
    while (!q.empty()) {
      const index v = q.front();
      q.pop();
      order.push_back(v);
      std::vector<index> nb;
      for (index w : adj[static_cast<std::size_t>(v)])
        if (!visited[static_cast<std::size_t>(w)]) nb.push_back(w);
      std::sort(nb.begin(), nb.end(), [&](index x, index y) { return degree(x) < degree(y); });
      for (index w : nb) {
        visited[static_cast<std::size_t>(w)] = 1;
        q.push(w);
      }
    }
  }

  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<index> invert_permutation(const std::vector<index>& p) {
  std::vector<index> inv(p.size());
  for (std::size_t k = 0; k < p.size(); ++k) inv[static_cast<std::size_t>(p[k])] = static_cast<index>(k);
  return inv;
}

template <typename T>
Csr<T> permute_symmetric(const Csr<T>& a, const std::vector<index>& perm) {
  PMTBR_REQUIRE(static_cast<index>(perm.size()) == a.rows(), "perm length mismatch");
  const auto inv = invert_permutation(perm);
  Triplets<T> t(a.rows(), a.cols());
  for (index i = 0; i < a.rows(); ++i)
    for (index k = a.row_ptr()[static_cast<std::size_t>(i)];
         k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
      t.add(inv[static_cast<std::size_t>(i)],
            inv[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)])],
            a.values()[static_cast<std::size_t>(k)]);
  return Csr<T>(t);
}

template Csr<double> permute_symmetric(const Csr<double>&, const std::vector<index>&);
template Csr<cd> permute_symmetric(const Csr<cd>&, const std::vector<index>&);

}  // namespace pmtbr::sparse
