// Compressed sparse row storage templated on scalar, plus the triplet
// builder used by MNA assembly.
//
// The key composite operation for PMTBR is forming the shifted pencil
// s*E - A as a complex CSR from two real CSRs (shifted_pencil()).
#pragma once

#include <complex>
#include <vector>

#include "la/matrix.hpp"
#include "util/check.hpp"

namespace pmtbr::sparse {

using la::cd;
using la::index;

/// Coordinate-format builder; duplicate entries are summed on conversion.
template <typename T>
class Triplets {
 public:
  Triplets(index rows, index cols) : rows_(rows), cols_(cols) {}

  /// Pre-sizes the entry arrays; assembly loops with a known nnz estimate
  /// avoid the repeated small reallocations that dominate large builds.
  void reserve(std::size_t entries) {
    i_.reserve(entries);
    j_.reserve(entries);
    v_.reserve(entries);
  }

  void add(index i, index j, T v) {
    PMTBR_REQUIRE(0 <= i && i < rows_ && 0 <= j && j < cols_, "triplet out of range");
    if (v == T{}) return;
    i_.push_back(i);
    j_.push_back(j);
    v_.push_back(v);
  }

  index rows() const { return rows_; }
  index cols() const { return cols_; }
  std::size_t nnz() const { return v_.size(); }

  const std::vector<index>& row_idx() const { return i_; }
  const std::vector<index>& col_idx() const { return j_; }
  const std::vector<T>& values() const { return v_; }

 private:
  index rows_, cols_;
  std::vector<index> i_, j_;
  std::vector<T> v_;
};

template <typename T>
class Csr {
 public:
  Csr() = default;
  explicit Csr(const Triplets<T>& t);
  Csr(index rows, index cols, std::vector<index> ptr, std::vector<index> col, std::vector<T> val)
      : rows_(rows), cols_(cols), ptr_(std::move(ptr)), col_(std::move(col)), val_(std::move(val)) {}

  index rows() const { return rows_; }
  index cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  const std::vector<index>& row_ptr() const { return ptr_; }
  const std::vector<index>& col_idx() const { return col_; }
  const std::vector<T>& values() const { return val_; }
  std::vector<T>& values() { return val_; }

  /// y = A x.
  std::vector<T> matvec(const std::vector<T>& x) const;

  /// y = A^T x (no conjugation).
  std::vector<T> matvec_transpose(const std::vector<T>& x) const;

  /// Dense densification (small matrices / tests only).
  la::Matrix<T> to_dense() const;

  /// Entry lookup (linear scan of the row; for tests).
  T at(index i, index j) const;

 private:
  index rows_ = 0, cols_ = 0;
  std::vector<index> ptr_;
  std::vector<index> col_;
  std::vector<T> val_;
};

using CsrD = Csr<double>;
using CsrC = Csr<cd>;

/// alpha*A + beta*B over the union sparsity pattern.
template <typename T>
Csr<T> combine(T alpha, const Csr<T>& a, T beta, const Csr<T>& b);

/// Complex pencil s*E - A from two real matrices — the PMTBR shifted system.
CsrC shifted_pencil(cd s, const CsrD& e, const CsrD& a);

/// Complex copy of a real sparse matrix.
CsrC to_complex(const CsrD& a);

// Make the la:: scalar/vector/matrix overloads part of this namespace's
// overload set so unqualified is_finite() (as expanded by
// PMTBR_CHECK_FINITE) resolves for every argument type.
using la::is_finite;

/// Finiteness scan over the stored values (backing PMTBR_CHECK_FINITE).
template <typename T>
bool is_finite(const Csr<T>& a) {
  return la::is_finite(a.values());
}

}  // namespace pmtbr::sparse
