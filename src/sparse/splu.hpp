// Sparse LU factorization (Gilbert–Peierls left-looking, partial pivoting)
// templated on scalar, with optional symmetric fill-reducing pre-ordering.
//
// This is the workhorse behind every shifted solve (s_k E - A)^{-1} B in
// PMTBR, the transient integrator, and AC sweeps. Factoring many pencils
// with an identical pattern reuses one precomputed RCM ordering.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "sparse/csr.hpp"

namespace pmtbr::sparse {

template <typename T>
class SparseLu {
 public:
  /// Factors A (square). If `perm` is nonempty it is applied symmetrically
  /// (rows and columns) before factorization; partial pivoting still
  /// permutes rows within the factorization for stability.
  explicit SparseLu(const Csr<T>& a, std::vector<index> perm = {});

  index n() const { return n_; }
  std::size_t nnz_factors() const { return l_val_.size() + u_val_.size(); }

  /// Solves A x = b.
  std::vector<T> solve(std::vector<T> b) const;

  /// Solves A^T x = b (plain transpose; for complex adjoint use
  /// solve_adjoint).
  std::vector<T> solve_transpose(std::vector<T> b) const;

  /// Solves A^H x = b (conjugate transpose).
  std::vector<T> solve_adjoint(const std::vector<T>& b) const;

  /// Column-wise solve A X = B for a dense right-hand side.
  la::Matrix<T> solve(const la::Matrix<T>& b) const;

 private:
  void factor(const Csr<T>& a);

  index n_ = 0;
  std::vector<index> q_;     // symmetric pre-permutation (possibly identity)
  std::vector<index> pinv_;  // pinv_[permuted-row] = pivot position
  std::vector<index> prow_;  // prow_[pivot position] = permuted-row

  // L (unit diagonal implicit) and U in compressed column form, pivot-row
  // indexed: L rows are pivot positions > column, U rows are <= column.
  std::vector<index> l_ptr_, l_row_;
  std::vector<T> l_val_;
  std::vector<index> u_ptr_, u_row_;
  std::vector<T> u_val_;
  std::vector<T> u_diag_;
};

using SparseLuD = SparseLu<double>;
using SparseLuC = SparseLu<cd>;

}  // namespace pmtbr::sparse
