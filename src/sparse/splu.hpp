// Sparse LU factorization (Gilbert–Peierls left-looking, partial pivoting)
// templated on scalar, with optional symmetric fill-reducing pre-ordering —
// split into a reusable symbolic analysis and a cheap numeric phase.
//
// This is the workhorse behind every shifted solve (s_k E - A)^{-1} B in
// PMTBR, the transient integrator, and AC sweeps. All shifted pencils
// s_k E - A share one sparsity pattern (shifted_pencil() emits the union
// pattern for every s), so the expensive per-column reachability DFS, the
// pivot sequence, and the L/U fill patterns are computed once (SymbolicLu)
// and every further shift is a numeric-only replay (SparseLu::try_refactor)
// that touches each stored nonzero exactly once.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "la/matrix.hpp"
#include "sparse/csr.hpp"
#include "util/fingerprint.hpp"
#include "util/status.hpp"

namespace pmtbr::sparse {

/// Tunables for the numeric factorization phases.
struct SolveOptions {
  /// Acceptance floor for replaying a frozen pivot order on new values: a
  /// frozen pivot whose magnitude falls below `refactor_pivot_tol` times
  /// the best candidate a fresh factorization could have picked for that
  /// column is rejected as degenerate (kDegeneratePivot, detail = pivot
  /// position + magnitude) and the caller should full-factor instead.
  /// The default keeps the historical hard-coded value; raise it to trade
  /// replay speed for pivot quality, lower it to accept shakier replays.
  double refactor_pivot_tol = 1e-10;
};

namespace detail {

// Frozen elimination structure shared by a symbolic analysis and every
// numeric factorization replayed from it. Immutable after construction.
template <typename T>
struct LuPattern {
  index n = 0;
  std::vector<index> q;     // symmetric pre-permutation (possibly identity)
  std::vector<index> pinv;  // pinv[permuted-row] = pivot position
  std::vector<index> prow;  // prow[pivot position] = permuted-row

  // L (unit diagonal implicit) and U in compressed column form, pivot-row
  // indexed: L rows are pivot positions > column, U rows are < column and
  // stored in elimination (topological) order.
  std::vector<index> l_ptr, l_row;
  std::vector<index> u_ptr, u_row;

  // Scatter map for numeric refactorization: per permuted column j, the
  // pivot-position destination and CSR value slot of each entry of A.
  std::vector<index> a_ptr, a_pos, a_slot;
  std::size_t a_nnz = 0;
};

}  // namespace detail

template <typename T>
class SparseLu;

/// Reusable symbolic factorization: runs one full Gilbert–Peierls pass on a
/// representative matrix and freezes its elimination structure. Safe to
/// share (const) across threads; numeric factorizations for any matrix with
/// the SAME CSR layout are then obtained via SparseLu::try_refactor.
template <typename T>
class SymbolicLu {
 public:
  /// Analyzes `representative` (square). `perm` as in SparseLu.
  explicit SymbolicLu(const Csr<T>& representative, std::vector<index> perm = {});

  index n() const { return pattern_->n; }
  std::size_t nnz_factors() const {
    return pattern_->l_row.size() + pattern_->u_row.size() +
           static_cast<std::size_t>(pattern_->n);
  }

  /// Content hash of the frozen elimination structure: pre-permutation and
  /// pivot order. Together with the source matrix's own content these
  /// determine the entire fill pattern, so replays from two analyses with
  /// equal fingerprints (over the same matrix) produce bit-identical
  /// factors — the property the cross-job factor cache keys on
  /// (sparse/factor_cache.hpp).
  util::Fingerprint fingerprint() const {
    util::FingerprintHasher h;
    h.mix_i64(static_cast<std::int64_t>(pattern_->n));
    h.mix_ints(pattern_->q);
    h.mix_ints(pattern_->pinv);
    return h.digest();
  }

 private:
  friend class SparseLu<T>;
  explicit SymbolicLu(std::shared_ptr<const detail::LuPattern<T>> pattern)
      : pattern_(std::move(pattern)) {}

  std::shared_ptr<const detail::LuPattern<T>> pattern_;
};

template <typename T>
class SparseLu {
 public:
  /// Factors A (square) from scratch. If `perm` is nonempty it is applied
  /// symmetrically (rows and columns) before factorization; partial
  /// pivoting still permutes rows within the factorization for stability.
  /// Throws util::StatusError on a singular matrix — prefer factor() where
  /// singularity is an expected, recoverable event (e.g. a quadrature shift
  /// landing on a pole).
  explicit SparseLu(const Csr<T>& a, std::vector<index> perm = {});

  /// Non-throwing full factorization: kSingularMatrix (detail = failing
  /// column + best candidate magnitude) when no viable pivot exists,
  /// kInjectedFault under the splu.pivot injection site.
  static util::Expected<SparseLu> factor(const Csr<T>& a, std::vector<index> perm = {});

  /// Numeric-only refactorization of `a` against a frozen symbolic
  /// analysis. `a` must have the same CSR layout (row_ptr/col_idx) as the
  /// symbolic representative. Returns nullopt when the frozen pivot order
  /// is numerically inadequate for these values (degenerate pivot); the
  /// caller should fall back to a full factorization with fresh pivoting.
  /// The replay is deterministic: identical inputs give bit-identical
  /// factors on every thread.
  static std::optional<SparseLu> try_refactor(const SymbolicLu<T>& symbolic, const Csr<T>& a);

  /// Status-carrying replay: kDegeneratePivot (detail = pivot position +
  /// magnitude) when the frozen pivot falls below opts.refactor_pivot_tol
  /// relative to the column's best candidate, kInjectedFault under the
  /// splu.refactor injection site.
  static util::Expected<SparseLu> refactor(const SymbolicLu<T>& symbolic, const Csr<T>& a,
                                           const SolveOptions& opts = {});

  index n() const { return pattern_->n; }
  std::size_t nnz_factors() const { return l_val_.size() + u_val_.size(); }

  /// The elimination structure of this factorization, shareable for
  /// numeric-only refactorization of further same-pattern matrices.
  SymbolicLu<T> symbolic() const;

  /// Solves A x = b.
  std::vector<T> solve(std::vector<T> b) const;

  /// Solves A^T x = b (plain transpose; for complex adjoint use
  /// solve_adjoint).
  std::vector<T> solve_transpose(std::vector<T> b) const;

  /// Solves A^H x = b (conjugate transpose).
  std::vector<T> solve_adjoint(const std::vector<T>& b) const;

  /// Column-wise solve A X = B for a dense right-hand side; columns are
  /// independent and fan out across the shared thread pool.
  la::Matrix<T> solve(const la::Matrix<T>& b) const;

 private:
  friend class SymbolicLu<T>;
  SparseLu() = default;
  util::Status factor(const Csr<T>& a, detail::LuPattern<T>& pat);
  util::Status refactor(const Csr<T>& a, const SolveOptions& opts);

  std::shared_ptr<const detail::LuPattern<T>> pattern_;
  std::vector<T> l_val_;
  std::vector<T> u_val_;
  std::vector<T> u_diag_;
};

using SparseLuD = SparseLu<double>;
using SparseLuC = SparseLu<cd>;
using SymbolicLuD = SymbolicLu<double>;
using SymbolicLuC = SymbolicLu<cd>;

}  // namespace pmtbr::sparse
