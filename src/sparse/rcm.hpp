// Reverse Cuthill–McKee fill-reducing ordering.
//
// Circuit MNA matrices from grids/trees have small graph bandwidth under
// RCM, which keeps the Gilbert–Peierls LU fill (and hence the cost of the
// many shifted solves in PMTBR) near-linear.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace pmtbr::sparse {

/// RCM permutation of the symmetrized pattern of A (pattern of A + A^T).
/// Returns perm such that the reordered matrix is B(i,j) = A(perm[i], perm[j]).
std::vector<index> rcm_ordering(const CsrD& a);

/// Inverse of a permutation.
std::vector<index> invert_permutation(const std::vector<index>& p);

/// Symmetric permutation B = A(perm, perm).
template <typename T>
Csr<T> permute_symmetric(const Csr<T>& a, const std::vector<index>& perm);

}  // namespace pmtbr::sparse
