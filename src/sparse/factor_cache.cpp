#include "sparse/factor_cache.hpp"

#include "util/obs/counters.hpp"

namespace pmtbr::sparse {

namespace {
constexpr std::size_t kDefaultFactorCacheBytes = std::size_t{256} << 20;  // 256 MiB
}  // namespace

std::size_t factor_cache_bytes(const SparseLuC& lu) {
  return (lu.nnz_factors() + static_cast<std::size_t>(lu.n())) * sizeof(la::cd);
}

FactorCache::FactorCache(std::size_t byte_budget) : lru_({0, byte_budget}) {}

FactorCache& FactorCache::global() {
  static FactorCache cache(util::cache_byte_budget(kDefaultFactorCacheBytes));
  return cache;
}

std::shared_ptr<const SparseLuC> FactorCache::lookup(const util::Fingerprint& key) {
  auto hit = lru_.get(key);
  if (hit.has_value()) {
    obs::counter_add(obs::Counter::kFactorCacheHit);
    return *hit;
  }
  obs::counter_add(obs::Counter::kFactorCacheMiss);
  return nullptr;
}

void FactorCache::insert(const util::Fingerprint& key, std::shared_ptr<const SparseLuC> lu) {
  const std::size_t bytes = factor_cache_bytes(*lu);
  const util::EvictionReport ev = lru_.put(key, std::move(lu), bytes);
  if (!ev.inserted) return;
  obs::counter_add(obs::Counter::kFactorCacheBytes,
                   static_cast<std::int64_t>(bytes) - ev.bytes - ev.replaced_bytes);
  if (ev.count > 0) obs::counter_add(obs::Counter::kFactorCacheEvict, ev.count);
}

void FactorCache::clear() {
  const util::CacheStats st = lru_.stats();
  lru_.clear();
  obs::counter_add(obs::Counter::kFactorCacheBytes, -st.bytes);
}

}  // namespace pmtbr::sparse
