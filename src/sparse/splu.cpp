#include "sparse/splu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/faultinject.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::sparse {

namespace {

// Compressed-sparse-column view of a CSR matrix after a symmetric
// permutation: column j holds rows of A(q, q)(:, j). `slot` remembers the
// originating CSR value slot of each entry so a numeric refactorization can
// scatter straight from a same-pattern matrix's value array.
template <typename T>
struct Csc {
  std::vector<index> ptr, row, slot;
  std::vector<T> val;
};

template <typename T>
Csc<T> to_permuted_csc(const Csr<T>& a, const std::vector<index>& q) {
  const index n = a.rows();
  const auto inv = [&] {
    std::vector<index> v(static_cast<std::size_t>(n));
    for (index k = 0; k < n; ++k) v[static_cast<std::size_t>(q[static_cast<std::size_t>(k)])] = k;
    return v;
  }();

  Csc<T> c;
  c.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index i = 0; i < n; ++i)
    for (index k = a.row_ptr()[static_cast<std::size_t>(i)];
         k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
      ++c.ptr[static_cast<std::size_t>(
                  inv[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)])]) +
              1];
  for (index j = 0; j < n; ++j)
    c.ptr[static_cast<std::size_t>(j) + 1] += c.ptr[static_cast<std::size_t>(j)];
  c.row.resize(a.nnz());
  c.slot.resize(a.nnz());
  c.val.resize(a.nnz());
  std::vector<index> next(c.ptr.begin(), c.ptr.end() - 1);
  for (index i = 0; i < n; ++i) {
    const index pi = inv[static_cast<std::size_t>(i)];
    for (index k = a.row_ptr()[static_cast<std::size_t>(i)];
         k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const index pj = inv[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)])];
      const index pos = next[static_cast<std::size_t>(pj)]++;
      c.row[static_cast<std::size_t>(pos)] = pi;
      c.slot[static_cast<std::size_t>(pos)] = k;
      c.val[static_cast<std::size_t>(pos)] = a.values()[static_cast<std::size_t>(k)];
    }
  }
  return c;
}

constexpr double kPivotThreshold = 1e-3;  // prefer the diagonal when viable

std::vector<index> identity_perm(index n) {
  std::vector<index> q(static_cast<std::size_t>(n));
  std::iota(q.begin(), q.end(), index{0});
  return q;
}

}  // namespace

template <typename T>
SparseLu<T>::SparseLu(const Csr<T>& a, std::vector<index> perm) {
  auto lu = factor(a, std::move(perm));
  if (!lu.is_ok()) throw util::StatusError(lu.status());
  *this = std::move(lu).value();
}

template <typename T>
util::Expected<SparseLu<T>> SparseLu<T>::factor(const Csr<T>& a, std::vector<index> perm) {
  PMTBR_REQUIRE(a.rows() == a.cols(), "sparse LU requires a square matrix");
  PMTBR_CHECK_FINITE(a, "sparse LU input matrix");
  auto pattern = std::make_shared<detail::LuPattern<T>>();
  pattern->n = a.rows();
  if (perm.empty()) {
    pattern->q = identity_perm(a.rows());
  } else {
    PMTBR_REQUIRE(static_cast<index>(perm.size()) == a.rows(), "perm length mismatch");
    pattern->q = std::move(perm);
  }
  SparseLu<T> lu;
  util::Status st = lu.factor(a, *pattern);
  if (!st.is_ok()) return std::move(st);
  lu.pattern_ = std::move(pattern);
  return lu;
}

template <typename T>
SymbolicLu<T>::SymbolicLu(const Csr<T>& representative, std::vector<index> perm) {
  const SparseLu<T> lu(representative, std::move(perm));
  pattern_ = lu.pattern_;
}

template <typename T>
SymbolicLu<T> SparseLu<T>::symbolic() const {
  SymbolicLu<T> s(pattern_);
  return s;
}

template <typename T>
std::optional<SparseLu<T>> SparseLu<T>::try_refactor(const SymbolicLu<T>& symbolic,
                                                     const Csr<T>& a) {
  auto lu = refactor(symbolic, a);
  if (!lu.is_ok()) return std::nullopt;
  return std::move(lu).value();
}

template <typename T>
util::Expected<SparseLu<T>> SparseLu<T>::refactor(const SymbolicLu<T>& symbolic, const Csr<T>& a,
                                                  const SolveOptions& opts) {
  PMTBR_REQUIRE(a.rows() == a.cols() && a.rows() == symbolic.n(),
                "refactor matrix size mismatch");
  PMTBR_REQUIRE(a.nnz() == symbolic.pattern_->a_nnz, "refactor matrix pattern mismatch");
  PMTBR_CHECK_FINITE(a, "sparse LU refactor input matrix");
  PMTBR_TRACE_SCOPE("splu.refactor");
  SparseLu<T> lu;
  lu.pattern_ = symbolic.pattern_;
  util::Status st = lu.refactor(a, opts);
  if (!st.is_ok()) {
    obs::counter_add(obs::Counter::kSparseLuRefactorReject);
    return std::move(st);
  }
  obs::counter_add(obs::Counter::kSparseLuRefactor);
  return lu;
}

template <typename T>
util::Status SparseLu<T>::factor(const Csr<T>& a, detail::LuPattern<T>& pat) {
  PMTBR_TRACE_SCOPE("splu.full_factor");
  obs::counter_add(obs::Counter::kSparseLuFullFactor);
  if (util::fault::should_fail(util::fault::Site::kSpluPivot))
    return util::Status(util::ErrorCode::kInjectedFault, "splu.pivot fault injected");
  const Csc<T> ap = to_permuted_csc(a, pat.q);
  const index n = pat.n;

  pat.pinv.assign(static_cast<std::size_t>(n), -1);
  pat.prow.assign(static_cast<std::size_t>(n), -1);
  pat.l_ptr.assign(1, 0);
  pat.u_ptr.assign(1, 0);
  u_diag_.assign(static_cast<std::size_t>(n), T{});

  std::vector<T> x(static_cast<std::size_t>(n), T{});
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  std::vector<index> pattern;      // reach of column j, topological order
  std::vector<index> dfs_stack, pos_stack;

  for (index j = 0; j < n; ++j) {
    // --- symbolic: reach of Ap(:,j) through the L graph -----------------
    pattern.clear();
    for (index k = ap.ptr[static_cast<std::size_t>(j)]; k < ap.ptr[static_cast<std::size_t>(j) + 1];
         ++k) {
      index start = ap.row[static_cast<std::size_t>(k)];
      if (mark[static_cast<std::size_t>(start)]) continue;
      dfs_stack.assign(1, start);
      pos_stack.assign(1, 0);
      mark[static_cast<std::size_t>(start)] = 1;
      while (!dfs_stack.empty()) {
        const index v = dfs_stack.back();
        const index kp = pat.pinv[static_cast<std::size_t>(v)];
        bool descended = false;
        if (kp >= 0) {
          index& p = pos_stack.back();
          const index lb = pat.l_ptr[static_cast<std::size_t>(kp)];
          const index le = pat.l_ptr[static_cast<std::size_t>(kp) + 1];
          while (lb + p < le) {
            const index child = pat.l_row[static_cast<std::size_t>(lb + p)];
            ++p;
            if (!mark[static_cast<std::size_t>(child)]) {
              mark[static_cast<std::size_t>(child)] = 1;
              dfs_stack.push_back(child);
              pos_stack.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          pattern.push_back(v);
          dfs_stack.pop_back();
          pos_stack.pop_back();
        }
      }
    }
    // pattern is in postorder; reverse gives topological order.
    std::reverse(pattern.begin(), pattern.end());

    // --- numeric: scatter column j and eliminate ------------------------
    for (index k = ap.ptr[static_cast<std::size_t>(j)]; k < ap.ptr[static_cast<std::size_t>(j) + 1];
         ++k)
      x[static_cast<std::size_t>(ap.row[static_cast<std::size_t>(k)])] =
          ap.val[static_cast<std::size_t>(k)];

    for (index v : pattern) {
      const index kp = pat.pinv[static_cast<std::size_t>(v)];
      if (kp < 0) continue;
      const T xv = x[static_cast<std::size_t>(v)];
      if (xv == T{}) continue;
      for (index k = pat.l_ptr[static_cast<std::size_t>(kp)];
           k < pat.l_ptr[static_cast<std::size_t>(kp) + 1]; ++k)
        x[static_cast<std::size_t>(pat.l_row[static_cast<std::size_t>(k)])] -=
            l_val_[static_cast<std::size_t>(k)] * xv;
    }

    // --- pivot selection -------------------------------------------------
    index pivot = -1;
    double best = 0;
    double diag_mag = -1;
    for (index v : pattern) {
      if (pat.pinv[static_cast<std::size_t>(v)] >= 0) continue;
      const double m = std::abs(la::cd(x[static_cast<std::size_t>(v)]));
      if (v == j) diag_mag = m;
      if (m > best) {
        best = m;
        pivot = v;
      }
    }
    if (!(pivot >= 0 && best > 0))
      return util::Status(util::ErrorCode::kSingularMatrix,
                          "structurally or numerically singular matrix")
          .with_detail(j, best);
    if (diag_mag >= kPivotThreshold * best) pivot = j;

    pat.pinv[static_cast<std::size_t>(pivot)] = j;
    pat.prow[static_cast<std::size_t>(j)] = pivot;
    const T piv = x[static_cast<std::size_t>(pivot)];
    u_diag_[static_cast<std::size_t>(j)] = piv;

    // --- gather U(:,j) (pivotal rows) and L(:,j) (non-pivotal rows) ------
    // Exact-zero L entries are kept: the frozen pattern must cover every
    // structurally reachable position so a numeric replay at other values
    // (where they are generally nonzero) stays correct.
    for (index v : pattern) {
      const index kp = pat.pinv[static_cast<std::size_t>(v)];
      if (v == pivot) {
        // pivot handled via u_diag_
      } else if (kp >= 0 && kp < j) {
        pat.u_row.push_back(kp);
        u_val_.push_back(x[static_cast<std::size_t>(v)]);
      } else {
        pat.l_row.push_back(v);  // permuted-row index; remapped after factor
        l_val_.push_back(x[static_cast<std::size_t>(v)] / piv);
      }
      x[static_cast<std::size_t>(v)] = T{};
      mark[static_cast<std::size_t>(v)] = 0;
    }
    pat.l_ptr.push_back(static_cast<index>(pat.l_row.size()));
    pat.u_ptr.push_back(static_cast<index>(pat.u_row.size()));
  }

  // Remap L row indices from permuted-row space to pivot positions so the
  // triangular solves are direct.
  for (auto& r : pat.l_row) r = pat.pinv[static_cast<std::size_t>(r)];

  // Scatter map in pivot-position space for numeric refactorization.
  pat.a_ptr = ap.ptr;
  pat.a_nnz = a.nnz();
  pat.a_pos.resize(a.nnz());
  pat.a_slot = ap.slot;
  for (std::size_t t = 0; t < a.nnz(); ++t)
    pat.a_pos[t] = pat.pinv[static_cast<std::size_t>(ap.row[t])];
  return {};
}

template <typename T>
util::Status SparseLu<T>::refactor(const Csr<T>& a, const SolveOptions& opts) {
  if (util::fault::should_fail(util::fault::Site::kSpluRefactor))
    return util::Status(util::ErrorCode::kInjectedFault, "splu.refactor fault injected");
  const auto& pat = *pattern_;
  const index n = pat.n;
  const auto& vals = a.values();

  l_val_.assign(pat.l_row.size(), T{});
  u_val_.assign(pat.u_row.size(), T{});
  u_diag_.assign(static_cast<std::size_t>(n), T{});

  // Dense workspace in pivot-position space; zero between columns.
  std::vector<T> x(static_cast<std::size_t>(n), T{});

  for (index j = 0; j < n; ++j) {
    for (index t = pat.a_ptr[static_cast<std::size_t>(j)];
         t < pat.a_ptr[static_cast<std::size_t>(j) + 1]; ++t)
      x[static_cast<std::size_t>(pat.a_pos[static_cast<std::size_t>(t)])] =
          vals[static_cast<std::size_t>(pat.a_slot[static_cast<std::size_t>(t)])];

    // Eliminate along the frozen U pattern (stored in elimination order).
    for (index t = pat.u_ptr[static_cast<std::size_t>(j)];
         t < pat.u_ptr[static_cast<std::size_t>(j) + 1]; ++t) {
      const index kp = pat.u_row[static_cast<std::size_t>(t)];
      const T xv = x[static_cast<std::size_t>(kp)];
      u_val_[static_cast<std::size_t>(t)] = xv;
      if (xv == T{}) continue;
      for (index p = pat.l_ptr[static_cast<std::size_t>(kp)];
           p < pat.l_ptr[static_cast<std::size_t>(kp) + 1]; ++p)
        x[static_cast<std::size_t>(pat.l_row[static_cast<std::size_t>(p)])] -=
            l_val_[static_cast<std::size_t>(p)] * xv;
    }

    // The pivot row is frozen at position j; accept it only if it is not
    // degenerate relative to the candidates a fresh factorization could
    // have picked for this column.
    const T piv = x[static_cast<std::size_t>(j)];
    const double piv_mag = std::abs(la::cd(piv));
    double best = piv_mag;
    for (index p = pat.l_ptr[static_cast<std::size_t>(j)];
         p < pat.l_ptr[static_cast<std::size_t>(j) + 1]; ++p)
      best = std::max(best,
                      std::abs(la::cd(x[static_cast<std::size_t>(
                          pat.l_row[static_cast<std::size_t>(p)])])));
    if (!(piv_mag > 0) || piv_mag < opts.refactor_pivot_tol * best)
      return util::Status(util::ErrorCode::kDegeneratePivot,
                          "frozen pivot order numerically inadequate for these values")
          .with_detail(j, piv_mag);
    u_diag_[static_cast<std::size_t>(j)] = piv;

    for (index p = pat.l_ptr[static_cast<std::size_t>(j)];
         p < pat.l_ptr[static_cast<std::size_t>(j) + 1]; ++p) {
      const index r = pat.l_row[static_cast<std::size_t>(p)];
      l_val_[static_cast<std::size_t>(p)] = x[static_cast<std::size_t>(r)] / piv;
      x[static_cast<std::size_t>(r)] = T{};
    }
    for (index t = pat.u_ptr[static_cast<std::size_t>(j)];
         t < pat.u_ptr[static_cast<std::size_t>(j) + 1]; ++t)
      x[static_cast<std::size_t>(pat.u_row[static_cast<std::size_t>(t)])] = T{};
    x[static_cast<std::size_t>(j)] = T{};
  }
  return {};
}

template <typename T>
std::vector<T> SparseLu<T>::solve(std::vector<T> b) const {
  const auto& pat = *pattern_;
  const index n = pat.n;
  PMTBR_REQUIRE(static_cast<index>(b.size()) == n, "rhs length mismatch");
  // y[k] = b[q[prow[k]]]  (apply symmetric perm then pivot perm).
  std::vector<T> y(static_cast<std::size_t>(n));
  for (index k = 0; k < n; ++k)
    y[static_cast<std::size_t>(k)] = b[static_cast<std::size_t>(
        pat.q[static_cast<std::size_t>(pat.prow[static_cast<std::size_t>(k)])])];
  // L forward (unit diagonal).
  for (index k = 0; k < n; ++k) {
    const T t = y[static_cast<std::size_t>(k)];
    if (t == T{}) continue;
    for (index p = pat.l_ptr[static_cast<std::size_t>(k)];
         p < pat.l_ptr[static_cast<std::size_t>(k) + 1]; ++p)
      y[static_cast<std::size_t>(pat.l_row[static_cast<std::size_t>(p)])] -=
          l_val_[static_cast<std::size_t>(p)] * t;
  }
  // U backward.
  for (index k = n - 1; k >= 0; --k) {
    const T t = y[static_cast<std::size_t>(k)] / u_diag_[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(k)] = t;
    if (t == T{}) continue;
    for (index p = pat.u_ptr[static_cast<std::size_t>(k)];
         p < pat.u_ptr[static_cast<std::size_t>(k) + 1]; ++p)
      y[static_cast<std::size_t>(pat.u_row[static_cast<std::size_t>(p)])] -=
          u_val_[static_cast<std::size_t>(p)] * t;
  }
  // x[q[j]] = y[j].
  std::vector<T> out(static_cast<std::size_t>(n));
  for (index jj = 0; jj < n; ++jj)
    out[static_cast<std::size_t>(pat.q[static_cast<std::size_t>(jj)])] =
        y[static_cast<std::size_t>(jj)];
  return out;
}

template <typename T>
std::vector<T> SparseLu<T>::solve_transpose(std::vector<T> b) const {
  const auto& pat = *pattern_;
  const index n = pat.n;
  PMTBR_REQUIRE(static_cast<index>(b.size()) == n, "rhs length mismatch");
  // bp[j] = b[q[j]].
  std::vector<T> w(static_cast<std::size_t>(n));
  for (index jj = 0; jj < n; ++jj)
    w[static_cast<std::size_t>(jj)] =
        b[static_cast<std::size_t>(pat.q[static_cast<std::size_t>(jj)])];
  // U^T forward: column j of U is row j of U^T.
  for (index jj = 0; jj < n; ++jj) {
    T acc = w[static_cast<std::size_t>(jj)];
    for (index p = pat.u_ptr[static_cast<std::size_t>(jj)];
         p < pat.u_ptr[static_cast<std::size_t>(jj) + 1]; ++p)
      acc -= u_val_[static_cast<std::size_t>(p)] *
             w[static_cast<std::size_t>(pat.u_row[static_cast<std::size_t>(p)])];
    w[static_cast<std::size_t>(jj)] = acc / u_diag_[static_cast<std::size_t>(jj)];
  }
  // L^T backward (unit diagonal).
  for (index jj = n - 1; jj >= 0; --jj) {
    T acc = w[static_cast<std::size_t>(jj)];
    for (index p = pat.l_ptr[static_cast<std::size_t>(jj)];
         p < pat.l_ptr[static_cast<std::size_t>(jj) + 1]; ++p)
      acc -= l_val_[static_cast<std::size_t>(p)] *
             w[static_cast<std::size_t>(pat.l_row[static_cast<std::size_t>(p)])];
    w[static_cast<std::size_t>(jj)] = acc;
  }
  // x[q[prow[k]]] = w[k].
  std::vector<T> out(static_cast<std::size_t>(n));
  for (index k = 0; k < n; ++k)
    out[static_cast<std::size_t>(
        pat.q[static_cast<std::size_t>(pat.prow[static_cast<std::size_t>(k)])])] =
        w[static_cast<std::size_t>(k)];
  return out;
}

template <typename T>
std::vector<T> SparseLu<T>::solve_adjoint(const std::vector<T>& b) const {
  if constexpr (std::is_same_v<T, cd>) {
    std::vector<T> bc(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) bc[i] = std::conj(b[i]);
    auto y = solve_transpose(std::move(bc));
    for (auto& v : y) v = std::conj(v);
    return y;
  } else {
    return solve_transpose(b);
  }
}

template <typename T>
la::Matrix<T> SparseLu<T>::solve(const la::Matrix<T>& b) const {
  PMTBR_REQUIRE(b.rows() == pattern_->n, "rhs row mismatch");
  la::Matrix<T> x(b.rows(), b.cols());
  util::parallel_for(0, b.cols(), [&](index j) { x.set_col(j, solve(b.col(j))); });
  return x;
}

template class SparseLu<double>;
template class SparseLu<cd>;
template class SymbolicLu<double>;
template class SymbolicLu<cd>;

}  // namespace pmtbr::sparse
