#include "sparse/splu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pmtbr::sparse {

namespace {

// Compressed-sparse-column view of a CSR matrix after a symmetric
// permutation: column j holds rows of A(q, q)(:, j).
template <typename T>
struct Csc {
  std::vector<index> ptr, row;
  std::vector<T> val;
};

template <typename T>
Csc<T> to_permuted_csc(const Csr<T>& a, const std::vector<index>& q) {
  const index n = a.rows();
  const auto inv = [&] {
    std::vector<index> v(static_cast<std::size_t>(n));
    for (index k = 0; k < n; ++k) v[static_cast<std::size_t>(q[static_cast<std::size_t>(k)])] = k;
    return v;
  }();

  Csc<T> c;
  c.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index i = 0; i < n; ++i)
    for (index k = a.row_ptr()[static_cast<std::size_t>(i)];
         k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
      ++c.ptr[static_cast<std::size_t>(
                  inv[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)])]) +
              1];
  for (index j = 0; j < n; ++j)
    c.ptr[static_cast<std::size_t>(j) + 1] += c.ptr[static_cast<std::size_t>(j)];
  c.row.resize(a.nnz());
  c.val.resize(a.nnz());
  std::vector<index> next(c.ptr.begin(), c.ptr.end() - 1);
  for (index i = 0; i < n; ++i) {
    const index pi = inv[static_cast<std::size_t>(i)];
    for (index k = a.row_ptr()[static_cast<std::size_t>(i)];
         k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const index pj = inv[static_cast<std::size_t>(a.col_idx()[static_cast<std::size_t>(k)])];
      const index pos = next[static_cast<std::size_t>(pj)]++;
      c.row[static_cast<std::size_t>(pos)] = pi;
      c.val[static_cast<std::size_t>(pos)] = a.values()[static_cast<std::size_t>(k)];
    }
  }
  return c;
}

constexpr double kPivotThreshold = 1e-3;  // prefer the diagonal when viable

}  // namespace

template <typename T>
SparseLu<T>::SparseLu(const Csr<T>& a, std::vector<index> perm) {
  PMTBR_REQUIRE(a.rows() == a.cols(), "sparse LU requires a square matrix");
  PMTBR_CHECK_FINITE(a, "sparse LU input matrix");
  n_ = a.rows();
  if (perm.empty()) {
    q_.resize(static_cast<std::size_t>(n_));
    std::iota(q_.begin(), q_.end(), index{0});
  } else {
    PMTBR_REQUIRE(static_cast<index>(perm.size()) == n_, "perm length mismatch");
    q_ = std::move(perm);
  }
  factor(a);
}

template <typename T>
void SparseLu<T>::factor(const Csr<T>& a) {
  const Csc<T> ap = to_permuted_csc(a, q_);
  const index n = n_;

  pinv_.assign(static_cast<std::size_t>(n), -1);
  prow_.assign(static_cast<std::size_t>(n), -1);
  l_ptr_.assign(1, 0);
  u_ptr_.assign(1, 0);
  u_diag_.assign(static_cast<std::size_t>(n), T{});

  std::vector<T> x(static_cast<std::size_t>(n), T{});
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  std::vector<index> pattern;      // reach of column j, topological order
  std::vector<index> dfs_stack, pos_stack;

  for (index j = 0; j < n; ++j) {
    // --- symbolic: reach of Ap(:,j) through the L graph -----------------
    pattern.clear();
    for (index k = ap.ptr[static_cast<std::size_t>(j)]; k < ap.ptr[static_cast<std::size_t>(j) + 1];
         ++k) {
      index start = ap.row[static_cast<std::size_t>(k)];
      if (mark[static_cast<std::size_t>(start)]) continue;
      dfs_stack.assign(1, start);
      pos_stack.assign(1, 0);
      mark[static_cast<std::size_t>(start)] = 1;
      while (!dfs_stack.empty()) {
        const index v = dfs_stack.back();
        const index kp = pinv_[static_cast<std::size_t>(v)];
        bool descended = false;
        if (kp >= 0) {
          index& p = pos_stack.back();
          const index lb = l_ptr_[static_cast<std::size_t>(kp)];
          const index le = l_ptr_[static_cast<std::size_t>(kp) + 1];
          while (lb + p < le) {
            const index child = l_row_[static_cast<std::size_t>(lb + p)];
            ++p;
            if (!mark[static_cast<std::size_t>(child)]) {
              mark[static_cast<std::size_t>(child)] = 1;
              dfs_stack.push_back(child);
              pos_stack.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          pattern.push_back(v);
          dfs_stack.pop_back();
          pos_stack.pop_back();
        }
      }
    }
    // pattern is in postorder; reverse gives topological order.
    std::reverse(pattern.begin(), pattern.end());

    // --- numeric: scatter column j and eliminate ------------------------
    for (index k = ap.ptr[static_cast<std::size_t>(j)]; k < ap.ptr[static_cast<std::size_t>(j) + 1];
         ++k)
      x[static_cast<std::size_t>(ap.row[static_cast<std::size_t>(k)])] =
          ap.val[static_cast<std::size_t>(k)];

    for (index v : pattern) {
      const index kp = pinv_[static_cast<std::size_t>(v)];
      if (kp < 0) continue;
      const T xv = x[static_cast<std::size_t>(v)];
      if (xv == T{}) continue;
      for (index k = l_ptr_[static_cast<std::size_t>(kp)];
           k < l_ptr_[static_cast<std::size_t>(kp) + 1]; ++k)
        x[static_cast<std::size_t>(l_row_[static_cast<std::size_t>(k)])] -=
            l_val_[static_cast<std::size_t>(k)] * xv;
    }

    // --- pivot selection -------------------------------------------------
    index pivot = -1;
    double best = 0;
    double diag_mag = -1;
    for (index v : pattern) {
      if (pinv_[static_cast<std::size_t>(v)] >= 0) continue;
      const double m = std::abs(la::cd(x[static_cast<std::size_t>(v)]));
      if (v == j) diag_mag = m;
      if (m > best) {
        best = m;
        pivot = v;
      }
    }
    PMTBR_ENSURE(pivot >= 0 && best > 0, "structurally or numerically singular matrix");
    if (diag_mag >= kPivotThreshold * best) pivot = j;

    pinv_[static_cast<std::size_t>(pivot)] = j;
    prow_[static_cast<std::size_t>(j)] = pivot;
    const T piv = x[static_cast<std::size_t>(pivot)];
    u_diag_[static_cast<std::size_t>(j)] = piv;

    // --- gather U(:,j) (pivotal rows) and L(:,j) (non-pivotal rows) ------
    for (index v : pattern) {
      const index kp = pinv_[static_cast<std::size_t>(v)];
      if (v == pivot) {
        // pivot handled via u_diag_
      } else if (kp >= 0 && kp < j) {
        u_row_.push_back(kp);
        u_val_.push_back(x[static_cast<std::size_t>(v)]);
      } else {
        const T lv = x[static_cast<std::size_t>(v)] / piv;
        if (lv != T{}) {
          l_row_.push_back(v);  // permuted-row index; remapped after factor
          l_val_.push_back(lv);
        }
      }
      x[static_cast<std::size_t>(v)] = T{};
      mark[static_cast<std::size_t>(v)] = 0;
    }
    l_ptr_.push_back(static_cast<index>(l_row_.size()));
    u_ptr_.push_back(static_cast<index>(u_row_.size()));
  }

  // Remap L row indices from permuted-row space to pivot positions so the
  // triangular solves are direct.
  for (auto& r : l_row_) r = pinv_[static_cast<std::size_t>(r)];
}

template <typename T>
std::vector<T> SparseLu<T>::solve(std::vector<T> b) const {
  PMTBR_REQUIRE(static_cast<index>(b.size()) == n_, "rhs length mismatch");
  // y[k] = b[q[prow[k]]]  (apply symmetric perm then pivot perm).
  std::vector<T> y(static_cast<std::size_t>(n_));
  for (index k = 0; k < n_; ++k)
    y[static_cast<std::size_t>(k)] =
        b[static_cast<std::size_t>(q_[static_cast<std::size_t>(prow_[static_cast<std::size_t>(k)])])];
  // L forward (unit diagonal).
  for (index k = 0; k < n_; ++k) {
    const T t = y[static_cast<std::size_t>(k)];
    if (t == T{}) continue;
    for (index p = l_ptr_[static_cast<std::size_t>(k)]; p < l_ptr_[static_cast<std::size_t>(k) + 1];
         ++p)
      y[static_cast<std::size_t>(l_row_[static_cast<std::size_t>(p)])] -=
          l_val_[static_cast<std::size_t>(p)] * t;
  }
  // U backward.
  for (index k = n_ - 1; k >= 0; --k) {
    const T t = y[static_cast<std::size_t>(k)] / u_diag_[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(k)] = t;
    if (t == T{}) continue;
    for (index p = u_ptr_[static_cast<std::size_t>(k)]; p < u_ptr_[static_cast<std::size_t>(k) + 1];
         ++p)
      y[static_cast<std::size_t>(u_row_[static_cast<std::size_t>(p)])] -=
          u_val_[static_cast<std::size_t>(p)] * t;
  }
  // x[q[j]] = y[j].
  std::vector<T> out(static_cast<std::size_t>(n_));
  for (index jj = 0; jj < n_; ++jj)
    out[static_cast<std::size_t>(q_[static_cast<std::size_t>(jj)])] = y[static_cast<std::size_t>(jj)];
  return out;
}

template <typename T>
std::vector<T> SparseLu<T>::solve_transpose(std::vector<T> b) const {
  PMTBR_REQUIRE(static_cast<index>(b.size()) == n_, "rhs length mismatch");
  // bp[j] = b[q[j]].
  std::vector<T> w(static_cast<std::size_t>(n_));
  for (index jj = 0; jj < n_; ++jj)
    w[static_cast<std::size_t>(jj)] = b[static_cast<std::size_t>(q_[static_cast<std::size_t>(jj)])];
  // U^T forward: column j of U is row j of U^T.
  for (index jj = 0; jj < n_; ++jj) {
    T acc = w[static_cast<std::size_t>(jj)];
    for (index p = u_ptr_[static_cast<std::size_t>(jj)];
         p < u_ptr_[static_cast<std::size_t>(jj) + 1]; ++p)
      acc -= u_val_[static_cast<std::size_t>(p)] *
             w[static_cast<std::size_t>(u_row_[static_cast<std::size_t>(p)])];
    w[static_cast<std::size_t>(jj)] = acc / u_diag_[static_cast<std::size_t>(jj)];
  }
  // L^T backward (unit diagonal).
  for (index jj = n_ - 1; jj >= 0; --jj) {
    T acc = w[static_cast<std::size_t>(jj)];
    for (index p = l_ptr_[static_cast<std::size_t>(jj)];
         p < l_ptr_[static_cast<std::size_t>(jj) + 1]; ++p)
      acc -= l_val_[static_cast<std::size_t>(p)] *
             w[static_cast<std::size_t>(l_row_[static_cast<std::size_t>(p)])];
    w[static_cast<std::size_t>(jj)] = acc;
  }
  // x[q[prow[k]]] = w[k].
  std::vector<T> out(static_cast<std::size_t>(n_));
  for (index k = 0; k < n_; ++k)
    out[static_cast<std::size_t>(
        q_[static_cast<std::size_t>(prow_[static_cast<std::size_t>(k)])])] =
        w[static_cast<std::size_t>(k)];
  return out;
}

template <typename T>
std::vector<T> SparseLu<T>::solve_adjoint(const std::vector<T>& b) const {
  if constexpr (std::is_same_v<T, cd>) {
    std::vector<T> bc(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) bc[i] = std::conj(b[i]);
    auto y = solve_transpose(std::move(bc));
    for (auto& v : y) v = std::conj(v);
    return y;
  } else {
    return solve_transpose(b);
  }
}

template <typename T>
la::Matrix<T> SparseLu<T>::solve(const la::Matrix<T>& b) const {
  PMTBR_REQUIRE(b.rows() == n_, "rhs row mismatch");
  la::Matrix<T> x(b.rows(), b.cols());
  for (index j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col(j)));
  return x;
}

template class SparseLu<double>;
template class SparseLu<cd>;

}  // namespace pmtbr::sparse
