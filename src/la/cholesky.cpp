#include "la/cholesky.hpp"

#include <algorithm>
#include <cmath>

namespace pmtbr::la {

namespace {

MatD cholesky_impl(const MatD& a, bool strict, double rel_tol) {
  PMTBR_REQUIRE(a.rows() == a.cols(), "cholesky requires square matrix");
  const index n = a.rows();
  MatD l(n, n);
  double max_diag = 0;
  for (index i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(a(i, i)));
  const double floor = rel_tol * std::max(max_diag, 1e-300);

  for (index j = 0; j < n; ++j) {
    double d = a(j, j);
    for (index k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= floor) {
      PMTBR_ENSURE(!strict && d > -std::sqrt(rel_tol) * std::max(max_diag, 1.0),
                   "matrix not positive definite in cholesky");
      // Semidefinite case: treat this direction as absent.
      l(j, j) = 0;
      continue;
    }
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    for (index i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (index k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

}  // namespace

MatD cholesky(const MatD& a) {
  PMTBR_CHECK_FINITE(a, "cholesky input matrix");
  return cholesky_impl(a, /*strict=*/true, 1e-300);
}

MatD cholesky_psd(const MatD& a, double rel_tol) {
  PMTBR_REQUIRE(rel_tol >= 0, "cholesky_psd tolerance must be nonnegative");
  PMTBR_CHECK_FINITE(a, "cholesky_psd input matrix");
  return cholesky_impl(a, /*strict=*/false, rel_tol);
}

}  // namespace pmtbr::la
