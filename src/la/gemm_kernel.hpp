// Register-tiled, cache-blocked GEMM core (the BLIS/GotoBLAS loop nest),
// shared by la::matmul, the blocked QR trailing update, and the TSQR
// compressor path.
//
// Layout of the nest, outermost first:
//
//   jc over nc columns of B/C   (B column block fits L3)
//   pc over kc rows of B        (packed B panel fits L2; C accumulates
//                                across pc blocks IN ORDER, so results are
//                                independent of how the inner loops are
//                                scheduled across threads)
//   ic over mc rows of A        (packed A block fits L1/L2)
//   jr over nr columns          (one packed B micro-panel)
//   ir over mr rows             (one packed A micro-panel)
//   microkernel: mr×nr register tile accumulating over kc
//
// Packing reads A and B through arbitrary (row, col) strides, so transposed
// and conjugate-transposed operands cost nothing extra — `matmul_at` and the
// compressor's Qᵀ·B products never materialize a transpose. Edge tiles are
// zero-padded in the packed buffers; the microkernel is unconditional and
// only the C write-back is masked.
//
// Parallelism: the jr strip loop of each (pc, ic) block fans out on the
// shared pool. Only disjoint C tiles are written concurrently and the pc
// accumulation order is fixed, so results are bit-identical for every
// thread count. Packed buffers are allocated by the caller (never inside a
// parallel body — see the alloc-in-parallel analyzer check).
//
// Blocking parameters target the generic x86-64 baseline; configure with
// -DPMTBR_NATIVE=ON (-march=native) to let the compiler widen the
// microkernel to the host's vector ISA. See docs/PERFORMANCE.md.
#pragma once

#include <complex>
#include <vector>

#include "la/matrix.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::la::detail {

/// How the computed product lands in C.
enum class GemmAcc {
  kSet,  // C  = A·B
  kAdd,  // C += A·B
  kSub,  // C -= A·B
};

template <typename T>
struct GemmBlocking {
  static constexpr index mr = 4;    // register tile rows
  static constexpr index nr = 8;    // register tile cols
  static constexpr index mc = 96;   // A block rows   (multiple of mr)
  static constexpr index kc = 256;  // shared K block
  static constexpr index nc = 512;  // B block cols   (multiple of nr)
};

// Complex scalars are twice the width and the multiply is four flops, so
// the register tile halves in each direction.
template <>
struct GemmBlocking<cd> {
  static constexpr index mr = 2;
  static constexpr index nr = 4;
  static constexpr index mc = 64;
  static constexpr index kc = 128;
  static constexpr index nc = 256;
};

template <bool Conj, typename T>
inline T conj_if(const T& x) {
  if constexpr (Conj && std::is_same_v<T, cd>) {
    return std::conj(x);
  } else {
    return x;
  }
}

/// Packs the mb×kb block of A (element (i,k) at a[i*rs + k*cs]) into
/// mr-row micro-panels: ap[t*mr*kb + k*mr + r] = A(t*mr + r, k), zero-padded
/// to a whole tile in the row direction.
template <typename T, bool Conj>
void pack_a_block(const T* a, index rs, index cs, index mb, index kb, T* ap) {
  constexpr index mr = GemmBlocking<T>::mr;
  for (index t = 0; t < mb; t += mr) {
    const index me = std::min<index>(mr, mb - t);
    T* dst = ap + t * kb;
    for (index k = 0; k < kb; ++k) {
      const T* src = a + t * rs + k * cs;
      index r = 0;
      for (; r < me; ++r) dst[k * mr + r] = conj_if<Conj>(src[r * rs]);
      for (; r < mr; ++r) dst[k * mr + r] = T{};
    }
  }
}

/// Packs the kb×nb block of B (element (k,j) at b[k*rs + j*cs]) into
/// nr-column micro-panels: bp[t*nr*kb + k*nr + c] = B(k, t*nr + c),
/// zero-padded to a whole tile in the column direction.
template <typename T>
void pack_b_block(const T* b, index rs, index cs, index kb, index nb, T* bp) {
  constexpr index nr = GemmBlocking<T>::nr;
  for (index t = 0; t < nb; t += nr) {
    const index ne = std::min<index>(nr, nb - t);
    T* dst = bp + t * kb;
    for (index k = 0; k < kb; ++k) {
      const T* src = b + k * rs + t * cs;
      index c = 0;
      for (; c < ne; ++c) dst[k * nr + c] = src[c * cs];
      for (; c < nr; ++c) dst[k * nr + c] = T{};
    }
  }
}

/// mr×nr register-tile microkernel over a kb-deep packed panel pair. The
/// accumulator lives in registers; only the masked write-back touches C.
template <typename T>
void micro_kernel(index kb, const T* __restrict__ ap, const T* __restrict__ bp, T* c, index ldc,
                  index me, index ne, GemmAcc mode) {
  constexpr index mr = GemmBlocking<T>::mr;
  constexpr index nr = GemmBlocking<T>::nr;
  T acc[mr][nr] = {};
  for (index k = 0; k < kb; ++k) {
    const T* __restrict__ a = ap + k * mr;
    const T* __restrict__ b = bp + k * nr;
    for (index r = 0; r < mr; ++r) {
      const T av = a[r];
      for (index j = 0; j < nr; ++j) acc[r][j] += av * b[j];
    }
  }
  switch (mode) {
    case GemmAcc::kSet:
      for (index r = 0; r < me; ++r)
        for (index j = 0; j < ne; ++j) c[r * ldc + j] = acc[r][j];
      break;
    case GemmAcc::kAdd:
      for (index r = 0; r < me; ++r)
        for (index j = 0; j < ne; ++j) c[r * ldc + j] += acc[r][j];
      break;
    case GemmAcc::kSub:
      for (index r = 0; r < me; ++r)
        for (index j = 0; j < ne; ++j) c[r * ldc + j] -= acc[r][j];
      break;
  }
}

/// One packed-A × packed-B macrokernel: the mb×nb C block at `c`. `strip`
/// selects a single jr strip (for pool fan-out) or -1 for all strips.
template <typename T>
void macro_kernel(index mb, index nb, index kb, const T* ap, const T* bp, T* c, index ldc,
                  GemmAcc mode, index strip = -1) {
  constexpr index mr = GemmBlocking<T>::mr;
  constexpr index nr = GemmBlocking<T>::nr;
  const index j0 = strip < 0 ? 0 : strip * nr;
  const index j1 = strip < 0 ? nb : std::min<index>(j0 + nr, nb);
  for (index jr = j0; jr < j1; jr += nr) {
    const index ne = std::min<index>(nr, nb - jr);
    for (index ir = 0; ir < mb; ir += mr) {
      const index me = std::min<index>(mr, mb - ir);
      micro_kernel(kb, ap + ir * kb, bp + jr * kb, c + ir * ldc + jr, ldc, me, ne, mode);
    }
  }
}

// Function multiversioning: the macrokernel is compiled once per x86-64
// micro-architecture level (v4 = AVX-512, v3 = AVX2+FMA, baseline SSE2)
// and glibc's ifunc machinery binds the widest clone the host supports at
// load time — one portable binary, native-width kernels. `flatten` pulls
// micro_kernel into each clone so the register tile is vectorized at that
// clone's width. Builds that already target a wide ISA (-march=native via
// PMTBR_NATIVE) skip the clones: the whole TU is compiled for the host.
// TSan builds must also skip them: the ifunc resolver fires during
// relocation, before the tsan runtime initializes its thread state, and
// the instrumented dispatch segfaults inside libtsan (gcc 12, glibc 2.36).
#if defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__AVX2__) && !defined(__SANITIZE_THREAD__)
#define PMTBR_KERNEL_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default"), flatten, unused))
#else
#define PMTBR_KERNEL_CLONES __attribute__((unused))
#endif

PMTBR_KERNEL_CLONES
static void macro_kernel_isa(index mb, index nb, index kb, const double* ap, const double* bp,
                             double* c, index ldc, GemmAcc mode, index strip) {
  macro_kernel<double>(mb, nb, kb, ap, bp, c, ldc, mode, strip);
}

PMTBR_KERNEL_CLONES
static void macro_kernel_isa(index mb, index nb, index kb, const cd* ap, const cd* bp, cd* c,
                             index ldc, GemmAcc mode, index strip) {
  macro_kernel<cd>(mb, nb, kb, ap, bp, c, ldc, mode, strip);
}

// Flop count below which a product is not worth scheduling on the pool
// (shared with la::matmul's legacy threshold).
inline constexpr double kGemmParallelFlops = 1 << 18;

/// Blocked GEMM over strided operands: C(m×n, row-major with leading
/// dimension ldc) op= A(m×k, element (i,l) at a[i*a_rs + l*a_cs], optionally
/// conjugated) · B(k×n, element (l,j) at b[l*b_rs + j*b_cs]).
///
/// C must not alias A or B (packing would read half-updated values).
/// Deterministic: bit-identical results for every pool size.
template <typename T, bool ConjA = false>
void gemm(index m, index n, index k, const T* a, index a_rs, index a_cs, const T* b, index b_rs,
          index b_cs, T* c, index ldc, GemmAcc mode) {
  using B = GemmBlocking<T>;
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (mode == GemmAcc::kSet)
      for (index i = 0; i < m; ++i)
        for (index j = 0; j < n; ++j) c[i * ldc + j] = T{};
    return;
  }

  // Packed panels are reused across the whole nest; they are allocated here
  // on the calling thread, never inside the parallel strips.
  std::vector<T> ap(static_cast<std::size_t>(std::min(B::mc, ((m + B::mr - 1) / B::mr) * B::mr) *
                                             std::min(B::kc, k)));
  std::vector<T> bp(static_cast<std::size_t>(std::min(B::kc, k) *
                                             std::min(B::nc, ((n + B::nr - 1) / B::nr) * B::nr)));

  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  const bool parallel = flops >= kGemmParallelFlops && util::global_pool().size() > 1;

  for (index jc = 0; jc < n; jc += B::nc) {
    const index nb = std::min<index>(B::nc, n - jc);
    for (index pc = 0; pc < k; pc += B::kc) {
      const index kb = std::min<index>(B::kc, k - pc);
      // First K block honours the caller's mode; later blocks accumulate
      // into it (or keep subtracting, for kSub).
      const GemmAcc block_mode = pc == 0 ? mode : (mode == GemmAcc::kSub ? GemmAcc::kSub
                                                                         : GemmAcc::kAdd);
      pack_b_block(b + pc * b_rs + jc * b_cs, b_rs, b_cs, kb, nb, bp.data());
      for (index ic = 0; ic < m; ic += B::mc) {
        const index mb = std::min<index>(B::mc, m - ic);
        pack_a_block<T, ConjA>(a + ic * a_rs + pc * a_cs, a_rs, a_cs, mb, kb, ap.data());
        T* cblk = c + ic * ldc + jc;
        const index strips = (nb + B::nr - 1) / B::nr;
        if (parallel && strips > 1) {
          util::parallel_for(0, strips, [&](index s) {
            macro_kernel_isa(mb, nb, kb, ap.data(), bp.data(), cblk, ldc, block_mode, s);
          });
        } else {
          macro_kernel_isa(mb, nb, kb, ap.data(), bp.data(), cblk, ldc, block_mode, index{-1});
        }
      }
    }
  }
}

/// Convenience wrapper over whole row-major matrices: C op= A·B.
template <typename T>
void gemm_matrices(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c, GemmAcc mode) {
  gemm<T, false>(a.rows(), b.cols(), a.cols(), a.data(), a.cols(), 1, b.data(), b.cols(), 1,
                 c.data(), c.cols(), mode);
}

}  // namespace pmtbr::la::detail
