#include "la/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/obs/counters.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::la {

namespace {

// Flop count below which a product is not worth scheduling on the pool.
constexpr double kParallelMatmulFlops = 1 << 18;

// Rows of C computed per scheduled unit: large enough that each unit does
// meaningful work, small enough to load-balance tall-skinny products.
constexpr index kMatmulRowPanel = 16;

}  // namespace

template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  PMTBR_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  PMTBR_CHECK_FINITE(a, "matmul lhs");
  PMTBR_CHECK_FINITE(b, "matmul rhs");
  Matrix<T> c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in row-major storage.
  // Each row of C depends only on one row of A, so row panels fan out
  // across the pool with no shared writes; per-row arithmetic is identical
  // to the serial loop, keeping results bit-identical.
  const auto row_panel = [&](index i0, index i1) {
    for (index i = i0; i < i1; ++i) {
      T* ci = c.row_ptr(i);
      for (index k = 0; k < a.cols(); ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        const T* bk = b.row_ptr(k);
        for (index j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
      }
    }
  };
  const double flops = static_cast<double>(a.rows()) * static_cast<double>(a.cols()) *
                       static_cast<double>(b.cols());
  // Multiply-add pair per (i,k,j) triple; zero-skips make this an upper
  // bound, which is the useful direction for a cost estimate.
  obs::counter_add(obs::Counter::kGemmFlops, static_cast<std::int64_t>(2.0 * flops));
  if (flops < kParallelMatmulFlops || a.rows() < 2 * kMatmulRowPanel) {
    row_panel(0, a.rows());
    return c;
  }
  const index panels = (a.rows() + kMatmulRowPanel - 1) / kMatmulRowPanel;
  util::parallel_for(0, panels, [&](index p) {
    const index i0 = p * kMatmulRowPanel;
    row_panel(i0, std::min<index>(i0 + kMatmulRowPanel, a.rows()));
  });
  return c;
}

template <typename T>
std::vector<T> matvec(const Matrix<T>& a, const std::vector<T>& x) {
  PMTBR_REQUIRE(a.cols() == static_cast<index>(x.size()), "matvec shape mismatch");
  PMTBR_CHECK_FINITE(a, "matvec matrix");
  PMTBR_CHECK_FINITE(x, "matvec vector");
  std::vector<T> y(static_cast<std::size_t>(a.rows()), T{});
  for (index i = 0; i < a.rows(); ++i) {
    const T* ai = a.row_ptr(i);
    T acc{};
    for (index j = 0; j < a.cols(); ++j) acc += ai[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

template <typename T>
Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

MatC adjoint(const MatC& a) {
  MatC t(a.cols(), a.rows());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) t(j, i) = std::conj(a(i, j));
  return t;
}

MatD adjoint(const MatD& a) { return transpose(a); }

template <typename T>
double norm_fro(const Matrix<T>& a) {
  double s = 0;
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) s += std::norm(cd(a(i, j)));
  return std::sqrt(s);
}

template <typename T>
double norm_inf(const Matrix<T>& a) {
  double best = 0;
  for (index i = 0; i < a.rows(); ++i) {
    double s = 0;
    for (index j = 0; j < a.cols(); ++j) s += std::abs(cd(a(i, j)));
    best = std::max(best, s);
  }
  return best;
}

template <typename T>
double norm2(const std::vector<T>& v) {
  double s = 0;
  for (const auto& x : v) s += std::norm(cd(x));
  return std::sqrt(s);
}

template <typename T>
T dot(const std::vector<T>& a, const std::vector<T>& b) {
  PMTBR_REQUIRE(a.size() == b.size(), "dot length mismatch");
  T acc{};
  for (std::size_t k = 0; k < a.size(); ++k) {
    if constexpr (std::is_same_v<T, cd>) {
      acc += std::conj(a[k]) * b[k];
    } else {
      acc += a[k] * b[k];
    }
  }
  return acc;
}

MatC to_complex(const MatD& a) {
  MatC c(a.rows(), a.cols());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) c(i, j) = cd(a(i, j), 0.0);
  return c;
}

MatD real_part(const MatC& a) {
  MatD r(a.rows(), a.cols());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) r(i, j) = a(i, j).real();
  return r;
}

MatD imag_part(const MatC& a) {
  MatD r(a.rows(), a.cols());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) r(i, j) = a(i, j).imag();
  return r;
}

MatD realify_columns(const MatC& a) {
  MatD r(a.rows(), 2 * a.cols());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) {
      r(i, 2 * j) = a(i, j).real();
      r(i, 2 * j + 1) = a(i, j).imag();
    }
  return r;
}

template <typename T>
Matrix<T> hcat(const Matrix<T>& a, const Matrix<T>& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  PMTBR_REQUIRE(a.rows() == b.rows(), "hcat row mismatch");
  Matrix<T> c(a.rows(), a.cols() + b.cols());
  for (index i = 0; i < a.rows(); ++i) {
    for (index j = 0; j < a.cols(); ++j) c(i, j) = a(i, j);
    for (index j = 0; j < b.cols(); ++j) c(i, a.cols() + j) = b(i, j);
  }
  return c;
}

template <typename T>
double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  PMTBR_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  double best = 0;
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) best = std::max(best, std::abs(cd(a(i, j)) - cd(b(i, j))));
  return best;
}

// Explicit instantiations for the two supported scalars.
template Matrix<double> matmul(const Matrix<double>&, const Matrix<double>&);
template Matrix<cd> matmul(const Matrix<cd>&, const Matrix<cd>&);
template std::vector<double> matvec(const Matrix<double>&, const std::vector<double>&);
template std::vector<cd> matvec(const Matrix<cd>&, const std::vector<cd>&);
template Matrix<double> transpose(const Matrix<double>&);
template Matrix<cd> transpose(const Matrix<cd>&);
template double norm_fro(const Matrix<double>&);
template double norm_fro(const Matrix<cd>&);
template double norm_inf(const Matrix<double>&);
template double norm_inf(const Matrix<cd>&);
template double norm2(const std::vector<double>&);
template double norm2(const std::vector<cd>&);
template double dot(const std::vector<double>&, const std::vector<double>&);
template cd dot(const std::vector<cd>&, const std::vector<cd>&);
template Matrix<double> hcat(const Matrix<double>&, const Matrix<double>&);
template Matrix<cd> hcat(const Matrix<cd>&, const Matrix<cd>&);
template double max_abs_diff(const Matrix<double>&, const Matrix<double>&);
template double max_abs_diff(const Matrix<cd>&, const Matrix<cd>&);

}  // namespace pmtbr::la
