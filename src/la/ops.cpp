#include "la/ops.hpp"

#include <algorithm>
#include <cmath>

#include "la/gemm_kernel.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::la {

namespace {

// Below this flop count the blocked kernel's packing overhead is not paid
// back; the plain i-k-j loop runs instead.
constexpr double kBlockedGemmFlops = 2.0 * 24 * 24 * 24;

// Square tile edge for the blocked transpose: 32×32 doubles = two 8 KB
// stripes, comfortably L1-resident for source and destination at once.
constexpr index kTransposeTile = 32;

template <typename T>
void record_gemm(index m, index n, index k) {
  obs::counter_add(obs::Counter::kGemmCalls);
  obs::counter_add(obs::Counter::kGemmFlops,
                   static_cast<std::int64_t>(2.0 * static_cast<double>(m) *
                                             static_cast<double>(n) * static_cast<double>(k)));
  obs::counter_add(
      obs::Counter::kGemmBytes,
      static_cast<std::int64_t>(sizeof(T)) *
          static_cast<std::int64_t>(static_cast<double>(m) * static_cast<double>(k) +
                                    static_cast<double>(k) * static_cast<double>(n) +
                                    static_cast<double>(m) * static_cast<double>(n)));
}

// Seed scalar loop: i-k-j keeps the inner loop contiguous in row-major
// storage; exact zeros are skipped (changes no bits of the result).
template <typename T>
void matmul_scalar(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c) {
  for (index i = 0; i < a.rows(); ++i) {
    T* ci = c.row_ptr(i);
    for (index k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      if (aik == T{}) continue;
      const T* bk = b.row_ptr(k);
      for (index j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
}

}  // namespace

template <typename T>
void matmul_into(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c) {
  PMTBR_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  PMTBR_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(), "matmul output shape mismatch");
  PMTBR_REQUIRE(c.data() != a.data() && c.data() != b.data(),
                "matmul output must not alias an operand");
  PMTBR_CHECK_FINITE(a, "matmul lhs");
  PMTBR_CHECK_FINITE(b, "matmul rhs");
  record_gemm<T>(a.rows(), b.cols(), a.cols());
  const double flops = 2.0 * static_cast<double>(a.rows()) * static_cast<double>(a.cols()) *
                       static_cast<double>(b.cols());
  if (flops < kBlockedGemmFlops) {
    // The output may hold stale values; the scalar loop accumulates.
    for (index i = 0; i < c.rows(); ++i) {
      T* ci = c.row_ptr(i);
      for (index j = 0; j < c.cols(); ++j) ci[j] = T{};
    }
    matmul_scalar(a, b, c);
    return;
  }
  PMTBR_TRACE_SCOPE("la.gemm");
  detail::gemm_matrices(a, b, c, detail::GemmAcc::kSet);
}

template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  PMTBR_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix<T> c(a.rows(), b.cols());
  matmul_into(a, b, c);
  return c;
}

template <typename T>
Matrix<T> matmul_at(const Matrix<T>& a, const Matrix<T>& b) {
  PMTBR_REQUIRE(a.rows() == b.rows(), "matmul_at shape mismatch");
  PMTBR_CHECK_FINITE(a, "matmul_at lhs");
  PMTBR_CHECK_FINITE(b, "matmul_at rhs");
  const index m = a.cols(), n = b.cols(), k = a.rows();
  Matrix<T> c(m, n);
  record_gemm<T>(m, n, k);
  PMTBR_TRACE_SCOPE("la.gemm");
  // A^H is read in place: row i of the product walks column i of A, so the
  // packing strides are swapped (row stride 1, column stride a.cols()).
  detail::gemm<T, true>(m, n, k, a.data(), 1, a.cols(), b.data(), b.cols(), 1, c.data(),
                        c.cols(), detail::GemmAcc::kSet);
  return c;
}

template <typename T>
Matrix<T> matmul_reference(const Matrix<T>& a, const Matrix<T>& b) {
  PMTBR_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  Matrix<T> c(a.rows(), b.cols());
  matmul_scalar(a, b, c);
  return c;
}

template <typename T>
std::vector<T> matvec(const Matrix<T>& a, const std::vector<T>& x) {
  PMTBR_REQUIRE(a.cols() == static_cast<index>(x.size()), "matvec shape mismatch");
  PMTBR_CHECK_FINITE(a, "matvec matrix");
  PMTBR_CHECK_FINITE(x, "matvec vector");
  std::vector<T> y(static_cast<std::size_t>(a.rows()), T{});
  for (index i = 0; i < a.rows(); ++i) {
    const T* ai = a.row_ptr(i);
    T acc{};
    for (index j = 0; j < a.cols(); ++j) acc += ai[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

namespace {

// Out-of-place transpose in square tiles: both the source rows and the
// destination rows of one tile stay cache-resident, where the element-wise
// loop pays a cache miss per destination element on tall matrices.
template <typename T, bool Conj>
Matrix<T> transpose_blocked(const Matrix<T>& a) {
  const index m = a.rows(), n = a.cols();
  Matrix<T> t(n, m);
  for (index i0 = 0; i0 < m; i0 += kTransposeTile) {
    const index i1 = std::min<index>(i0 + kTransposeTile, m);
    for (index j0 = 0; j0 < n; j0 += kTransposeTile) {
      const index j1 = std::min<index>(j0 + kTransposeTile, n);
      for (index i = i0; i < i1; ++i) {
        const T* src = a.row_ptr(i);
        for (index j = j0; j < j1; ++j) t(j, i) = detail::conj_if<Conj>(src[j]);
      }
    }
  }
  return t;
}

}  // namespace

template <typename T>
Matrix<T> transpose(const Matrix<T>& a) {
  return transpose_blocked<T, false>(a);
}

MatC adjoint(const MatC& a) { return transpose_blocked<cd, true>(a); }

MatD adjoint(const MatD& a) { return transpose(a); }

template <typename T>
double norm_fro(const Matrix<T>& a) {
  double s = 0;
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) s += std::norm(cd(a(i, j)));
  return std::sqrt(s);
}

template <typename T>
double norm_inf(const Matrix<T>& a) {
  double best = 0;
  for (index i = 0; i < a.rows(); ++i) {
    double s = 0;
    for (index j = 0; j < a.cols(); ++j) s += std::abs(cd(a(i, j)));
    best = std::max(best, s);
  }
  return best;
}

template <typename T>
double norm2(const std::vector<T>& v) {
  double s = 0;
  for (const auto& x : v) s += std::norm(cd(x));
  return std::sqrt(s);
}

template <typename T>
T dot(const std::vector<T>& a, const std::vector<T>& b) {
  PMTBR_REQUIRE(a.size() == b.size(), "dot length mismatch");
  T acc{};
  for (std::size_t k = 0; k < a.size(); ++k) {
    if constexpr (std::is_same_v<T, cd>) {
      acc += std::conj(a[k]) * b[k];
    } else {
      acc += a[k] * b[k];
    }
  }
  return acc;
}

MatC to_complex(const MatD& a) {
  MatC c(a.rows(), a.cols());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) c(i, j) = cd(a(i, j), 0.0);
  return c;
}

MatD real_part(const MatC& a) {
  MatD r(a.rows(), a.cols());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) r(i, j) = a(i, j).real();
  return r;
}

MatD imag_part(const MatC& a) {
  MatD r(a.rows(), a.cols());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) r(i, j) = a(i, j).imag();
  return r;
}

MatD realify_columns(const MatC& a) {
  MatD r(a.rows(), 2 * a.cols());
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) {
      r(i, 2 * j) = a(i, j).real();
      r(i, 2 * j + 1) = a(i, j).imag();
    }
  return r;
}

template <typename T>
Matrix<T> hcat(const Matrix<T>& a, const Matrix<T>& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  PMTBR_REQUIRE(a.rows() == b.rows(), "hcat row mismatch");
  Matrix<T> c(a.rows(), a.cols() + b.cols());
  for (index i = 0; i < a.rows(); ++i) {
    for (index j = 0; j < a.cols(); ++j) c(i, j) = a(i, j);
    for (index j = 0; j < b.cols(); ++j) c(i, a.cols() + j) = b(i, j);
  }
  return c;
}

template <typename T>
double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b) {
  PMTBR_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  double best = 0;
  for (index i = 0; i < a.rows(); ++i)
    for (index j = 0; j < a.cols(); ++j) best = std::max(best, std::abs(cd(a(i, j)) - cd(b(i, j))));
  return best;
}

// Explicit instantiations for the two supported scalars.
template Matrix<double> matmul(const Matrix<double>&, const Matrix<double>&);
template Matrix<cd> matmul(const Matrix<cd>&, const Matrix<cd>&);
template void matmul_into(const Matrix<double>&, const Matrix<double>&, Matrix<double>&);
template void matmul_into(const Matrix<cd>&, const Matrix<cd>&, Matrix<cd>&);
template Matrix<double> matmul_at(const Matrix<double>&, const Matrix<double>&);
template Matrix<cd> matmul_at(const Matrix<cd>&, const Matrix<cd>&);
template Matrix<double> matmul_reference(const Matrix<double>&, const Matrix<double>&);
template Matrix<cd> matmul_reference(const Matrix<cd>&, const Matrix<cd>&);
template std::vector<double> matvec(const Matrix<double>&, const std::vector<double>&);
template std::vector<cd> matvec(const Matrix<cd>&, const std::vector<cd>&);
template Matrix<double> transpose(const Matrix<double>&);
template Matrix<cd> transpose(const Matrix<cd>&);
template double norm_fro(const Matrix<double>&);
template double norm_fro(const Matrix<cd>&);
template double norm_inf(const Matrix<double>&);
template double norm_inf(const Matrix<cd>&);
template double norm2(const std::vector<double>&);
template double norm2(const std::vector<cd>&);
template double dot(const std::vector<double>&, const std::vector<double>&);
template cd dot(const std::vector<cd>&, const std::vector<cd>&);
template Matrix<double> hcat(const Matrix<double>&, const Matrix<double>&);
template Matrix<cd> hcat(const Matrix<cd>&, const Matrix<cd>&);
template double max_abs_diff(const Matrix<double>&, const Matrix<double>&);
template double max_abs_diff(const Matrix<cd>&, const Matrix<cd>&);

}  // namespace pmtbr::la
