#include "la/lu.hpp"

#include <cmath>
#include <limits>

namespace pmtbr::la {

template <typename T>
Lu<T>::Lu(Matrix<T> a) {
  auto lu = factor(std::move(a));
  if (!lu.is_ok()) throw util::StatusError(lu.status());
  *this = std::move(lu).value();
}

template <typename T>
util::Expected<Lu<T>> Lu<T>::factor(Matrix<T> a) {
  Lu<T> lu;
  util::Status st = lu.factorize(std::move(a));
  if (!st.is_ok()) return std::move(st);
  return lu;
}

template <typename T>
util::Status Lu<T>::factorize(Matrix<T> a) {
  lu_ = std::move(a);
  PMTBR_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  PMTBR_CHECK_FINITE(lu_, "LU input matrix");
  const index n = lu_.rows();
  piv_.resize(static_cast<std::size_t>(n));
  for (index k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    index p = k;
    double best = std::abs(cd(lu_(k, k)));
    for (index i = k + 1; i < n; ++i) {
      const double v = std::abs(cd(lu_(i, k)));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    piv_[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      ++swaps_;
      for (index j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
    }
    const T pivot = lu_(k, k);
    if (!(std::abs(cd(pivot)) > 0))
      return util::Status(util::ErrorCode::kSingularMatrix,
                          "singular matrix in LU factorization")
          .with_detail(k, 0.0);
    const T inv_pivot = T{1} / pivot;
    for (index i = k + 1; i < n; ++i) {
      const T lik = lu_(i, k) * inv_pivot;
      lu_(i, k) = lik;
      if (lik == T{}) continue;
      const T* rk = lu_.row_ptr(k);
      T* ri = lu_.row_ptr(i);
      for (index j = k + 1; j < n; ++j) ri[j] -= lik * rk[j];
    }
  }
  return {};
}

template <typename T>
std::vector<T> Lu<T>::solve(std::vector<T> b) const {
  const index n = lu_.rows();
  PMTBR_REQUIRE(static_cast<index>(b.size()) == n, "rhs length mismatch");
  for (index k = 0; k < n; ++k) {
    const index p = piv_[static_cast<std::size_t>(k)];
    if (p != k) std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(p)]);
  }
  // Ly = Pb (unit lower triangular).
  for (index i = 1; i < n; ++i) {
    T acc = b[static_cast<std::size_t>(i)];
    const T* ri = lu_.row_ptr(i);
    for (index j = 0; j < i; ++j) acc -= ri[j] * b[static_cast<std::size_t>(j)];
    b[static_cast<std::size_t>(i)] = acc;
  }
  // Ux = y.
  for (index i = n - 1; i >= 0; --i) {
    T acc = b[static_cast<std::size_t>(i)];
    const T* ri = lu_.row_ptr(i);
    for (index j = i + 1; j < n; ++j) acc -= ri[j] * b[static_cast<std::size_t>(j)];
    b[static_cast<std::size_t>(i)] = acc / ri[i];
  }
  return b;
}

template <typename T>
Matrix<T> Lu<T>::solve(const Matrix<T>& b) const {
  PMTBR_REQUIRE(b.rows() == lu_.rows(), "rhs row mismatch");
  Matrix<T> x(b.rows(), b.cols());
  for (index j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col(j)));
  return x;
}

template <typename T>
std::vector<T> Lu<T>::solve_transpose(std::vector<T> b) const {
  const index n = lu_.rows();
  PMTBR_REQUIRE(static_cast<index>(b.size()) == n, "rhs length mismatch");
  // A^T = U^T L^T P, so solve U^T y = b, L^T z = y, then x = P^T z.
  for (index i = 0; i < n; ++i) {
    T acc = b[static_cast<std::size_t>(i)];
    for (index j = 0; j < i; ++j) acc -= lu_(j, i) * b[static_cast<std::size_t>(j)];
    b[static_cast<std::size_t>(i)] = acc / lu_(i, i);
  }
  for (index i = n - 1; i >= 0; --i) {
    T acc = b[static_cast<std::size_t>(i)];
    for (index j = i + 1; j < n; ++j) acc -= lu_(j, i) * b[static_cast<std::size_t>(j)];
    b[static_cast<std::size_t>(i)] = acc;
  }
  for (index k = n - 1; k >= 0; --k) {
    const index p = piv_[static_cast<std::size_t>(k)];
    if (p != k) std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(p)]);
  }
  return b;
}

template <typename T>
Matrix<T> Lu<T>::inverse() const {
  return solve(Matrix<T>::identity(lu_.rows()));
}

template <typename T>
double Lu<T>::log_abs_det() const {
  double s = 0;
  for (index i = 0; i < lu_.rows(); ++i) s += std::log(std::abs(cd(lu_(i, i))));
  return s;
}

template <typename T>
Matrix<T> solve(const Matrix<T>& a, const Matrix<T>& b) {
  return Lu<T>(a).solve(b);
}

template class Lu<double>;
template class Lu<cd>;
template Matrix<double> solve(const Matrix<double>&, const Matrix<double>&);
template Matrix<cd> solve(const Matrix<cd>&, const Matrix<cd>&);

}  // namespace pmtbr::la
