#include "la/tsqr.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "la/gemm_kernel.hpp"
#include "la/qr.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::la {

namespace {

// Leaf height: tall enough that the n×n combine QRs are amortized against
// the leaf work, and a pure function of the shape (determinism).
index tsqr_chunk_rows(index m, index n) {
  return std::min<index>(std::max<index>(index{512}, 4 * n), m);
}

}  // namespace

template <typename T>
TsqrResult<T> tsqr(const Matrix<T>& a) {
  PMTBR_CHECK_FINITE(a, "tsqr input matrix");
  const index m = a.rows(), n = a.cols();

  const index chunk = m > 0 ? tsqr_chunk_rows(m, n) : index{1};
  const index leaves = std::max<index>(1, m / chunk);  // tail joins the last leaf
  if (leaves < 2) {
    auto f = qr(a);
    return TsqrResult<T>{std::move(f.q), std::move(f.r)};
  }

  PMTBR_TRACE_SCOPE("la.tsqr");
  obs::counter_add(obs::Counter::kTsqrFactorizations);
  obs::counter_add(obs::Counter::kTsqrLeafBlocks, leaves);

  // Fixed leaf row ranges: [start[i], start[i+1]).
  std::vector<index> start(static_cast<std::size_t>(leaves) + 1);
  for (index i = 0; i < leaves; ++i) start[static_cast<std::size_t>(i)] = i * chunk;
  start[static_cast<std::size_t>(leaves)] = m;

  // Leaf QRs run concurrently; every leaf has ≥ chunk ≥ 4n rows, so each
  // R factor is a full n×n triangle.
  std::vector<Matrix<T>> leaf_q(static_cast<std::size_t>(leaves));
  std::vector<Matrix<T>> cur(static_cast<std::size_t>(leaves));
  util::parallel_for(0, leaves, [&](index i) {
    auto f = qr(a.rows_range(start[static_cast<std::size_t>(i)],
                             start[static_cast<std::size_t>(i) + 1]));
    leaf_q[static_cast<std::size_t>(i)] = std::move(f.q);
    cur[static_cast<std::size_t>(i)] = std::move(f.r);
  });

  // Pairwise reduction: combine (0,1), (2,3), ...; an odd trailing R passes
  // through unchanged. Each level's combine Q factors (2n×n) are kept for
  // the coefficient back-propagation.
  std::vector<std::vector<Matrix<T>>> level_q;
  std::vector<index> level_count;
  while (static_cast<index>(cur.size()) > 1) {
    const index cnt = static_cast<index>(cur.size());
    const index pairs = cnt / 2;
    std::vector<Matrix<T>> next(static_cast<std::size_t>((cnt + 1) / 2));
    std::vector<Matrix<T>> qs(static_cast<std::size_t>(pairs));
    // Stacked pair inputs are built (and allocated) serially; only the
    // combine factorizations fan out.
    std::vector<Matrix<T>> stacks(static_cast<std::size_t>(pairs));
    for (index p = 0; p < pairs; ++p) {
      Matrix<T> s(2 * n, n);
      const Matrix<T>& top = cur[static_cast<std::size_t>(2 * p)];
      const Matrix<T>& bot = cur[static_cast<std::size_t>(2 * p + 1)];
      for (index i = 0; i < n; ++i)
        for (index j = i; j < n; ++j) {
          s(i, j) = top(i, j);
          s(n + i, j) = bot(i, j);
        }
      stacks[static_cast<std::size_t>(p)] = std::move(s);
    }
    util::parallel_for(0, pairs, [&](index p) {
      auto f = qr(stacks[static_cast<std::size_t>(p)]);
      qs[static_cast<std::size_t>(p)] = std::move(f.q);
      next[static_cast<std::size_t>(p)] = std::move(f.r);
    });
    if (cnt % 2) next[static_cast<std::size_t>(pairs)] = std::move(cur[static_cast<std::size_t>(cnt - 1)]);
    level_count.push_back(cnt);
    level_q.push_back(std::move(qs));
    cur = std::move(next);
  }

  TsqrResult<T> out;
  out.r = std::move(cur[0]);

  // Coefficient back-propagation: the root's coefficient is I; each
  // combine's children receive the halves of its Q factor times the
  // parent's coefficient. Small n×n products — done serially.
  std::vector<Matrix<T>> coeff;
  coeff.push_back(Matrix<T>::identity(n));
  for (index lv = static_cast<index>(level_q.size()) - 1; lv >= 0; --lv) {
    const index cnt = level_count[static_cast<std::size_t>(lv)];
    const index pairs = static_cast<index>(level_q[static_cast<std::size_t>(lv)].size());
    std::vector<Matrix<T>> child(static_cast<std::size_t>(cnt));
    for (index p = 0; p < pairs; ++p) {
      const Matrix<T>& qp = level_q[static_cast<std::size_t>(lv)][static_cast<std::size_t>(p)];
      const Matrix<T>& c = coeff[static_cast<std::size_t>(p)];
      Matrix<T> top(n, n), bot(n, n);
      detail::gemm<T, false>(n, n, n, qp.data(), n, 1, c.data(), n, 1, top.data(), n,
                             detail::GemmAcc::kSet);
      detail::gemm<T, false>(n, n, n, qp.data() + n * n, n, 1, c.data(), n, 1, bot.data(), n,
                             detail::GemmAcc::kSet);
      child[static_cast<std::size_t>(2 * p)] = std::move(top);
      child[static_cast<std::size_t>(2 * p + 1)] = std::move(bot);
    }
    if (cnt % 2) child[static_cast<std::size_t>(cnt - 1)] = std::move(coeff[static_cast<std::size_t>(pairs)]);
    coeff = std::move(child);
  }

  // Explicit Q: each leaf's rows are Q_leaf_i · C_i, written into disjoint
  // row ranges concurrently.
  out.q = Matrix<T>(m, n);
  util::parallel_for(0, leaves, [&](index i) {
    const index r0 = start[static_cast<std::size_t>(i)];
    const index rows = start[static_cast<std::size_t>(i) + 1] - r0;
    detail::gemm<T, false>(rows, n, n, leaf_q[static_cast<std::size_t>(i)].data(), n, 1,
                           coeff[static_cast<std::size_t>(i)].data(), n, 1,
                           out.q.data() + r0 * n, n, detail::GemmAcc::kSet);
  });
  return out;
}

template TsqrResult<double> tsqr(const Matrix<double>&);
template TsqrResult<cd> tsqr(const Matrix<cd>&);

}  // namespace pmtbr::la
