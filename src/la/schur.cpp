#include "la/schur.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "la/ops.hpp"

namespace pmtbr::la {

namespace {

// Reduces A to upper Hessenberg form H = Q^H A Q, accumulating Q.
void hessenberg(MatC& a, MatC& q) {
  const index n = a.rows();
  q = MatC::identity(n);
  for (index k = 0; k < n - 2; ++k) {
    // Householder on column k, rows k+1..n-1.
    double xnorm = 0;
    for (index i = k + 1; i < n; ++i) xnorm += std::norm(a(i, k));
    xnorm = std::sqrt(xnorm);
    if (xnorm == 0) continue;
    std::vector<cd> v(static_cast<std::size_t>(n - k - 1));
    for (index i = k + 1; i < n; ++i) v[static_cast<std::size_t>(i - k - 1)] = a(i, k);
    const cd alpha = v[0];
    const double aabs = std::abs(alpha);
    const cd phase = aabs > 0 ? alpha / aabs : cd{1};
    v[0] = alpha + phase * xnorm;
    const double vnorm2 = 2.0 * xnorm * xnorm + 2.0 * aabs * xnorm;
    if (vnorm2 == 0) continue;
    const double beta = 2.0 / vnorm2;

    // A <- P A (rows k+1..n-1)
    for (index j = 0; j < n; ++j) {
      cd s{};
      for (index i = k + 1; i < n; ++i)
        s += std::conj(v[static_cast<std::size_t>(i - k - 1)]) * a(i, j);
      s *= beta;
      for (index i = k + 1; i < n; ++i) a(i, j) -= v[static_cast<std::size_t>(i - k - 1)] * s;
    }
    // A <- A P (cols k+1..n-1)
    for (index i = 0; i < n; ++i) {
      cd s{};
      for (index j = k + 1; j < n; ++j) s += a(i, j) * v[static_cast<std::size_t>(j - k - 1)];
      s *= beta;
      for (index j = k + 1; j < n; ++j)
        a(i, j) -= s * std::conj(v[static_cast<std::size_t>(j - k - 1)]);
    }
    // Q <- Q P
    for (index i = 0; i < n; ++i) {
      cd s{};
      for (index j = k + 1; j < n; ++j) s += q(i, j) * v[static_cast<std::size_t>(j - k - 1)];
      s *= beta;
      for (index j = k + 1; j < n; ++j)
        q(i, j) -= s * std::conj(v[static_cast<std::size_t>(j - k - 1)]);
    }
  }
}

// Complex Givens rotation zeroing b: [c, s; -conj(s), c] with c real.
void givens(cd a, cd b, double& c, cd& s) {
  const double na = std::abs(a), nb = std::abs(b);
  if (nb == 0) {
    c = 1;
    s = cd{0};
    return;
  }
  const double r = std::hypot(na, nb);
  c = na / r;
  if (na == 0) {
    // a == 0: rotate b straight into the diagonal.
    s = std::conj(b) / std::abs(b);
  } else {
    s = (a / na) * std::conj(b) / r;
  }
}

// Shifted QR iteration on the Hessenberg matrix h (in place), accumulating
// transformations into q. Returns false on non-convergence.
bool qr_iterate(MatC& h, MatC& q) {
  const index n = h.rows();
  const double eps = std::numeric_limits<double>::epsilon();
  // A slightly relaxed deflation threshold (20·eps relative) avoids the
  // near-stationary subdiagonals that arise for eigenvalue clusters of high
  // multiplicity (e.g. symmetric tree circuits); the eigenvalue
  // perturbation this introduces is still O(20·eps)·||H||.
  const double defl = 20.0 * eps;
  index hi = n - 1;
  int iter_since_deflate = 0;
  const int max_iter = 120;

  while (hi > 0) {
    // Deflation scan.
    index lo = hi;
    while (lo > 0) {
      const double sub = std::abs(h(lo, lo - 1));
      const double scale = std::abs(h(lo - 1, lo - 1)) + std::abs(h(lo, lo));
      if (sub <= defl * std::max(scale, 1e-300)) {
        h(lo, lo - 1) = cd{0};
        break;
      }
      --lo;
    }
    if (lo == hi) {
      --hi;
      iter_since_deflate = 0;
      continue;
    }

    if (++iter_since_deflate > max_iter) return false;

    // Wilkinson shift from the trailing 2x2 block, computed in the
    // cancellation-free form mu = a22 - q / (d ± sqrt(d² + q)) with
    // d = (a11 - a22)/2, q = a12·a21 (avoids forming tr² - 4·det, which
    // cancels catastrophically for equal diagonals of large magnitude).
    const cd a11 = h(hi - 1, hi - 1), a12 = h(hi - 1, hi), a21 = h(hi, hi - 1), a22 = h(hi, hi);
    const cd d2 = 0.5 * (a11 - a22);
    const cd qp = a12 * a21;
    cd mu = a22;
    if (qp != cd{0} || d2 != cd{0}) {
      const cd root = std::sqrt(d2 * d2 + qp);
      const cd denom = (std::abs(d2 + root) >= std::abs(d2 - root)) ? d2 + root : d2 - root;
      if (denom != cd{0}) mu = a22 - qp / denom;
    }
    if (iter_since_deflate % 16 == 0 && iter_since_deflate > 0) {
      // Exceptional shift to break symmetry-induced stalls (LAPACK-style:
      // built from the stalled subdiagonal itself).
      const cd extra = (hi >= 2) ? h(hi - 1, hi - 2) : cd{0};
      mu = a22 + cd{1.5 * (std::abs(h(hi, hi - 1)) + std::abs(extra)), 0.0};
    }

    // One explicit shifted QR sweep on the active window lo..hi:
    //   H - mu I = G_lo^H ... G_{hi-1}^H R,   H <- R G_lo^H ... G_{hi-1}^H + mu I.
    for (index k = lo; k <= hi; ++k) h(k, k) -= mu;

    std::vector<double> cs(static_cast<std::size_t>(hi - lo));
    std::vector<cd> sn(static_cast<std::size_t>(hi - lo));
    // Left factor: zero the subdiagonal, producing R in place.
    for (index k = lo; k < hi; ++k) {
      double c;
      cd s;
      givens(h(k, k), h(k + 1, k), c, s);
      cs[static_cast<std::size_t>(k - lo)] = c;
      sn[static_cast<std::size_t>(k - lo)] = s;
      for (index j = k; j < h.cols(); ++j) {
        const cd hkj = h(k, j), hk1j = h(k + 1, j);
        h(k, j) = c * hkj + s * hk1j;
        h(k + 1, j) = -std::conj(s) * hkj + c * hk1j;
      }
      h(k + 1, k) = cd{0};
    }
    // Right factor: H <- R G^H, restoring Hessenberg form; accumulate Q.
    for (index k = lo; k < hi; ++k) {
      const double c = cs[static_cast<std::size_t>(k - lo)];
      const cd s = sn[static_cast<std::size_t>(k - lo)];
      for (index i = 0; i <= k + 1; ++i) {
        const cd hik = h(i, k), hik1 = h(i, k + 1);
        h(i, k) = c * hik + std::conj(s) * hik1;
        h(i, k + 1) = -s * hik + c * hik1;
      }
      for (index i = 0; i < q.rows(); ++i) {
        const cd qik = q(i, k), qik1 = q(i, k + 1);
        q(i, k) = c * qik + std::conj(s) * qik1;
        q(i, k + 1) = -s * qik + c * qik1;
      }
    }
    for (index k = lo; k <= hi; ++k) h(k, k) += mu;
  }
  return true;
}

}  // namespace

SchurResult schur(const MatC& a_in) {
  PMTBR_REQUIRE(a_in.rows() == a_in.cols(), "schur requires square matrix");
  PMTBR_CHECK_FINITE(a_in, "schur input matrix");
  const index n = a_in.rows();
  SchurResult out;
  if (n == 0) return out;
  out.t = a_in;
  if (n == 1) {
    out.q = MatC::identity(1);
    return out;
  }
  hessenberg(out.t, out.q);
  PMTBR_ENSURE(qr_iterate(out.t, out.q), "QR iteration failed to converge");
  // Clean the (numerically zero) subdiagonal part.
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < i; ++j) out.t(i, j) = cd{0};
  return out;
}

std::vector<cd> eigenvalues(const MatC& a) {
  const auto sr = schur(a);
  std::vector<cd> w(static_cast<std::size_t>(a.rows()));
  for (index i = 0; i < a.rows(); ++i) w[static_cast<std::size_t>(i)] = sr.t(i, i);
  std::sort(w.begin(), w.end(), [](cd x, cd y) { return std::abs(x) > std::abs(y); });
  return w;
}

std::vector<cd> eigenvalues(const MatD& a) { return eigenvalues(to_complex(a)); }

EigResult eig(const MatC& a) {
  const index n = a.rows();
  const auto sr = schur(a);
  const double tnorm = std::max(norm_fro(sr.t), 1e-300);
  const double eps = std::numeric_limits<double>::epsilon();

  // Right eigenvector of T for eigenvalue T(k,k) via back-substitution, then
  // rotate back with Q.
  MatC vecs(n, n);
  for (index k = 0; k < n; ++k) {
    std::vector<cd> y(static_cast<std::size_t>(n), cd{0});
    y[static_cast<std::size_t>(k)] = cd{1};
    const cd lam = sr.t(k, k);
    for (index i = k - 1; i >= 0; --i) {
      cd rhs{};
      for (index j = i + 1; j <= k; ++j) rhs += sr.t(i, j) * y[static_cast<std::size_t>(j)];
      cd denom = sr.t(i, i) - lam;
      if (std::abs(denom) < eps * tnorm) denom = cd{eps * tnorm};
      y[static_cast<std::size_t>(i)] = -rhs / denom;
    }
    // x = Q y, normalized.
    double nrm2 = 0;
    for (index j = 0; j <= k; ++j) nrm2 += std::norm(y[static_cast<std::size_t>(j)]);
    const double inv = 1.0 / std::sqrt(std::max(nrm2, 1e-300));
    for (index i = 0; i < n; ++i) {
      cd acc{};
      for (index j = 0; j <= k; ++j) acc += sr.q(i, j) * y[static_cast<std::size_t>(j)];
      vecs(i, k) = acc * inv;
    }
  }

  // Sort by descending eigenvalue magnitude.
  std::vector<index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index{0});
  std::sort(order.begin(), order.end(), [&](index i, index j) {
    return std::abs(sr.t(i, i)) > std::abs(sr.t(j, j));
  });

  EigResult out;
  out.values.resize(static_cast<std::size_t>(n));
  out.vectors = MatC(n, n);
  for (index j = 0; j < n; ++j) {
    const index src = order[static_cast<std::size_t>(j)];
    out.values[static_cast<std::size_t>(j)] = sr.t(src, src);
    for (index i = 0; i < n; ++i) out.vectors(i, j) = vecs(i, src);
  }
  return out;
}

EigResult eig(const MatD& a) { return eig(to_complex(a)); }

}  // namespace pmtbr::la
