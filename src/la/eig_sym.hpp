// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Used to factor Gramians (which are symmetric PSD) as X = V Λ V^T in the
// TBR baseline and to validate sign-function Lyapunov solutions.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "util/status.hpp"

namespace pmtbr::la {

struct EigSymResult {
  std::vector<double> values;  // descending
  MatD vectors;                // columns are eigenvectors, A = V diag(w) V^T
};

/// Eigendecomposition of a symmetric matrix (symmetry enforced by averaging
/// A and A^T, which also absorbs round-off asymmetry from upstream).
EigSymResult eig_sym(const MatD& a);

/// Status-carrying eigendecomposition: kNoConvergence if the cyclic Jacobi
/// sweep budget is exhausted before the off-diagonal mass settles
/// (eig_sym() silently returns the approximation instead), kInjectedFault
/// under the eig.converge site.
util::Expected<EigSymResult> try_eig_sym(const MatD& a);

/// Factor of a symmetric PSD matrix: L with A ≈ L L^T, L = V_+ sqrt(Λ_+)
/// keeping eigenvalues above rel_tol * λ_max. L has one column per retained
/// eigenvalue (possibly fewer than n).
MatD psd_factor(const MatD& a, double rel_tol = 1e-14);

}  // namespace pmtbr::la
