#include "la/eig_sym.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/faultinject.hpp"

namespace pmtbr::la {

namespace {

EigSymResult eig_sym_impl(const MatD& a_in, bool* converged) {
  const index n = a_in.rows();
  MatD a(n, n);
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < n; ++j) a(i, j) = 0.5 * (a_in(i, j) + a_in(j, i));
  MatD v = MatD::identity(n);

  const double eps = std::numeric_limits<double>::epsilon();
  constexpr int kMaxSweeps = 100;
  if (converged) *converged = false;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0;
    for (index i = 0; i < n; ++i)
      for (index j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    double diag = 0;
    for (index i = 0; i < n; ++i) diag += a(i, i) * a(i, i);
    if (off <= eps * eps * std::max(diag, 1e-300)) {
      if (converged) *converged = true;
      break;
    }

    for (index p = 0; p < n - 1; ++p) {
      for (index q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double app = a(p, p), aqq = a(q, q);
        if (std::abs(apq) <= eps * (std::abs(app) + std::abs(aqq))) continue;
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // Update A = J^T A J over rows/columns p, q.
        for (index k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (index k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (index k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index{0});
  std::sort(order.begin(), order.end(), [&](index i, index j) { return a(i, i) > a(j, j); });

  EigSymResult out;
  out.values.resize(static_cast<std::size_t>(n));
  out.vectors = MatD(n, n);
  for (index j = 0; j < n; ++j) {
    const index src = order[static_cast<std::size_t>(j)];
    out.values[static_cast<std::size_t>(j)] = a(src, src);
    for (index i = 0; i < n; ++i) out.vectors(i, j) = v(i, src);
  }
  return out;
}

}  // namespace

EigSymResult eig_sym(const MatD& a_in) {
  PMTBR_REQUIRE(a_in.rows() == a_in.cols(), "eig_sym requires square matrix");
  PMTBR_CHECK_FINITE(a_in, "eig_sym input matrix");
  return eig_sym_impl(a_in, nullptr);
}

util::Expected<EigSymResult> try_eig_sym(const MatD& a_in) {
  PMTBR_REQUIRE(a_in.rows() == a_in.cols(), "eig_sym requires square matrix");
  PMTBR_CHECK_FINITE(a_in, "eig_sym input matrix");
  if (util::fault::should_fail(util::fault::Site::kEigConverge))
    return util::Status(util::ErrorCode::kInjectedFault, "eig.converge fault injected");
  bool converged = false;
  EigSymResult out = eig_sym_impl(a_in, &converged);
  if (!converged)
    return util::Status(util::ErrorCode::kNoConvergence,
                        "cyclic Jacobi eigensolver exhausted its sweep budget");
  return out;
}

MatD psd_factor(const MatD& a, double rel_tol) {
  const auto eig = eig_sym(a);
  const index n = a.rows();
  const double lmax = eig.values.empty() ? 0.0 : std::max(eig.values.front(), 0.0);
  index r = 0;
  for (index j = 0; j < n; ++j)
    if (eig.values[static_cast<std::size_t>(j)] > rel_tol * std::max(lmax, 1e-300)) ++r;
  r = std::max<index>(r, 1);
  MatD l(n, r);
  for (index j = 0; j < r; ++j) {
    const double w = std::sqrt(std::max(eig.values[static_cast<std::size_t>(j)], 0.0));
    for (index i = 0; i < n; ++i) l(i, j) = eig.vectors(i, j) * w;
  }
  return l;
}

}  // namespace pmtbr::la
