#include "la/qr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"

namespace pmtbr::la {

namespace {

// Applies a Householder reflector stored in v (v[0..m-j)) to columns [j, n)
// of the working matrix rows [j, m).
template <typename T>
void apply_reflector(Matrix<T>& a, index j0, index col0, const std::vector<T>& v, double beta) {
  const index m = a.rows(), n = a.cols();
  for (index j = col0; j < n; ++j) {
    T s{};
    for (index i = j0; i < m; ++i) {
      if constexpr (std::is_same_v<T, cd>) {
        s += std::conj(v[static_cast<std::size_t>(i - j0)]) * a(i, j);
      } else {
        s += v[static_cast<std::size_t>(i - j0)] * a(i, j);
      }
    }
    s *= T{beta};
    for (index i = j0; i < m; ++i) a(i, j) -= v[static_cast<std::size_t>(i - j0)] * s;
  }
}

template <typename T>
QrResult<T> qr_impl(Matrix<T> a, bool pivot, double rel_tol) {
  PMTBR_TRACE_SCOPE("la.qr");
  const index m = a.rows(), n = a.cols();
  const index k = std::min(m, n);
  obs::counter_add(obs::Counter::kQrFactorizations);
  // Householder QR: ~2mnk flops for R plus the same again for thin Q.
  obs::counter_add(obs::Counter::kQrFlops,
                   static_cast<std::int64_t>(4.0 * static_cast<double>(m) *
                                             static_cast<double>(n) * static_cast<double>(k)));
  QrResult<T> out;
  out.perm.resize(static_cast<std::size_t>(n));
  std::iota(out.perm.begin(), out.perm.end(), index{0});

  std::vector<double> colnorm2(static_cast<std::size_t>(n), 0.0);
  if (pivot) {
    for (index j = 0; j < n; ++j) {
      double s = 0;
      for (index i = 0; i < m; ++i) s += std::norm(cd(a(i, j)));
      colnorm2[static_cast<std::size_t>(j)] = s;
    }
  }

  std::vector<std::vector<T>> reflectors;
  std::vector<double> betas;
  reflectors.reserve(static_cast<std::size_t>(k));

  for (index j = 0; j < k; ++j) {
    if (pivot) {
      index p = j;
      double best = colnorm2[static_cast<std::size_t>(j)];
      for (index c = j + 1; c < n; ++c)
        if (colnorm2[static_cast<std::size_t>(c)] > best) {
          best = colnorm2[static_cast<std::size_t>(c)];
          p = c;
        }
      if (p != j) {
        for (index i = 0; i < m; ++i) std::swap(a(i, j), a(i, p));
        std::swap(colnorm2[static_cast<std::size_t>(j)], colnorm2[static_cast<std::size_t>(p)]);
        std::swap(out.perm[static_cast<std::size_t>(j)], out.perm[static_cast<std::size_t>(p)]);
      }
    }

    // Build the Householder vector for column j.
    std::vector<T> v(static_cast<std::size_t>(m - j));
    double xnorm = 0;
    for (index i = j; i < m; ++i) {
      v[static_cast<std::size_t>(i - j)] = a(i, j);
      xnorm += std::norm(cd(a(i, j)));
    }
    xnorm = std::sqrt(xnorm);
    double beta = 0.0;
    if (xnorm > 0) {
      T alpha = v[0];
      const double aabs = std::abs(cd(alpha));
      // phase = alpha/|alpha| (or 1 if alpha==0) so the pivot becomes real.
      T phase = aabs > 0 ? alpha * T{1.0 / aabs} : T{1};
      const T vhead = alpha + phase * T{xnorm};
      v[0] = vhead;
      double vnorm2 = std::norm(cd(vhead)) + xnorm * xnorm - aabs * aabs;
      if (vnorm2 > 0) {
        beta = 2.0 / vnorm2;
        apply_reflector(a, j, j, v, beta);
      }
    }
    reflectors.push_back(std::move(v));
    betas.push_back(beta);

    if (pivot) {
      for (index c = j + 1; c < n; ++c)
        colnorm2[static_cast<std::size_t>(c)] -= std::norm(cd(a(j, c)));
    }
  }

  out.r = Matrix<T>(k, n);
  for (index i = 0; i < k; ++i)
    for (index j = i; j < n; ++j) out.r(i, j) = a(i, j);

  // Accumulate thin Q by applying the reflectors to the first k columns of I.
  Matrix<T> q(m, k);
  for (index j = 0; j < k; ++j) q(j, j) = T{1};
  for (index j = k - 1; j >= 0; --j) {
    if (betas[static_cast<std::size_t>(j)] == 0.0) continue;
    apply_reflector(q, j, 0, reflectors[static_cast<std::size_t>(j)],
                    betas[static_cast<std::size_t>(j)]);
  }
  out.q = std::move(q);

  if (pivot) {
    const double r00 = std::abs(cd(out.r(0, 0)));
    index r = 0;
    for (index i = 0; i < k; ++i)
      if (std::abs(cd(out.r(i, i))) > rel_tol * r00) ++r;
    out.rank = r;
  } else {
    out.rank = k;
  }
  return out;
}

}  // namespace

template <typename T>
QrResult<T> qr(const Matrix<T>& a) {
  PMTBR_CHECK_FINITE(a, "qr input matrix");
  return qr_impl(a, /*pivot=*/false, 0.0);
}

template <typename T>
QrResult<T> qr_pivoted(const Matrix<T>& a, double rel_tol) {
  PMTBR_REQUIRE(rel_tol >= 0, "qr_pivoted tolerance must be nonnegative");
  PMTBR_CHECK_FINITE(a, "qr_pivoted input matrix");
  return qr_impl(a, /*pivot=*/true, rel_tol);
}

template <typename T>
Matrix<T> orth(const Matrix<T>& a, double rel_tol) {
  auto f = qr_pivoted(a, rel_tol);
  return f.q.columns(0, std::max<index>(f.rank, 1));
}

template QrResult<double> qr(const Matrix<double>&);
template QrResult<cd> qr(const Matrix<cd>&);
template QrResult<double> qr_pivoted(const Matrix<double>&, double);
template QrResult<cd> qr_pivoted(const Matrix<cd>&, double);
template Matrix<double> orth(const Matrix<double>&, double);
template Matrix<cd> orth(const Matrix<cd>&, double);

}  // namespace pmtbr::la
