#include "la/qr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "la/gemm_kernel.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"

namespace pmtbr::la {

namespace {

// Below this min(m, n) the compact-WY machinery costs more than it saves
// and the unblocked loop runs instead.
constexpr index kQrBlockMin = 48;

// Panel width for the blocked factorization. 32 columns keep the panel
// L1/L2-resident while the GEMM trailing update does the bulk of the flops.
constexpr index kQrPanel = 32;

// Row-sweep core of a Householder application to the rows×nc block at `a`
// (leading dimension lda): s = beta·(vᴴ·block) accumulated row by row, then
// block ← block − v·s. Row order makes every inner loop a contiguous SIMD
// pass across the columns (the matrices are row-major), and the i-ascending
// accumulation matches the old column-order dots bit for bit. Multiversioned
// like the GEMM macrokernel so the sweep runs at native vector width.
PMTBR_KERNEL_CLONES
static void reflector_sweep(index rows, index nc, index lda, double* a, const double* v,
                            double beta, double* s) {
  for (index j = 0; j < nc; ++j) s[j] = 0.0;
  for (index i = 0; i < rows; ++i) {
    const double vi = v[i];
    const double* row = a + i * lda;
    for (index j = 0; j < nc; ++j) s[j] += vi * row[j];
  }
  for (index j = 0; j < nc; ++j) s[j] *= beta;
  for (index i = 0; i < rows; ++i) {
    const double vi = v[i];
    double* row = a + i * lda;
    for (index j = 0; j < nc; ++j) row[j] -= vi * s[j];
  }
}

PMTBR_KERNEL_CLONES
static void reflector_sweep(index rows, index nc, index lda, cd* a, const cd* v, double beta,
                            cd* s) {
  for (index j = 0; j < nc; ++j) s[j] = cd{};
  for (index i = 0; i < rows; ++i) {
    const cd vi = std::conj(v[i]);
    const cd* row = a + i * lda;
    for (index j = 0; j < nc; ++j) s[j] += vi * row[j];
  }
  for (index j = 0; j < nc; ++j) s[j] *= beta;
  for (index i = 0; i < rows; ++i) {
    const cd vi = v[i];
    cd* row = a + i * lda;
    for (index j = 0; j < nc; ++j) row[j] -= vi * s[j];
  }
}

// Applies a Householder reflector stored in v (v[0..m-j)) to columns [col0, n)
// of the working matrix rows [j0, m). `scratch` must hold n - col0 entries.
template <typename T>
void apply_reflector(Matrix<T>& a, index j0, index col0, const std::vector<T>& v, double beta,
                     std::vector<T>& scratch) {
  const index nc = a.cols() - col0;
  if (nc <= 0) return;
  reflector_sweep(a.rows() - j0, nc, a.cols(), &a(j0, col0), v.data(), beta, scratch.data());
}

template <typename T>
QrResult<T> qr_impl(Matrix<T> a, bool pivot, double rel_tol) {
  PMTBR_TRACE_SCOPE("la.qr");
  const index m = a.rows(), n = a.cols();
  const index k = std::min(m, n);
  obs::counter_add(obs::Counter::kQrFactorizations);
  // Householder QR: ~2mnk flops for R plus the same again for thin Q.
  obs::counter_add(obs::Counter::kQrFlops,
                   static_cast<std::int64_t>(4.0 * static_cast<double>(m) *
                                             static_cast<double>(n) * static_cast<double>(k)));
  QrResult<T> out;
  out.perm.resize(static_cast<std::size_t>(n));
  std::iota(out.perm.begin(), out.perm.end(), index{0});

  std::vector<double> colnorm2(static_cast<std::size_t>(n), 0.0);
  if (pivot) {
    for (index j = 0; j < n; ++j) {
      double s = 0;
      for (index i = 0; i < m; ++i) s += std::norm(cd(a(i, j)));
      colnorm2[static_cast<std::size_t>(j)] = s;
    }
  }

  std::vector<std::vector<T>> reflectors;
  std::vector<double> betas;
  reflectors.reserve(static_cast<std::size_t>(k));
  std::vector<T> scratch(static_cast<std::size_t>(n));

  for (index j = 0; j < k; ++j) {
    if (pivot) {
      index p = j;
      double best = colnorm2[static_cast<std::size_t>(j)];
      for (index c = j + 1; c < n; ++c)
        if (colnorm2[static_cast<std::size_t>(c)] > best) {
          best = colnorm2[static_cast<std::size_t>(c)];
          p = c;
        }
      if (p != j) {
        for (index i = 0; i < m; ++i) std::swap(a(i, j), a(i, p));
        std::swap(colnorm2[static_cast<std::size_t>(j)], colnorm2[static_cast<std::size_t>(p)]);
        std::swap(out.perm[static_cast<std::size_t>(j)], out.perm[static_cast<std::size_t>(p)]);
      }
    }

    // Build the Householder vector for column j.
    std::vector<T> v(static_cast<std::size_t>(m - j));
    double xnorm = 0;
    for (index i = j; i < m; ++i) {
      v[static_cast<std::size_t>(i - j)] = a(i, j);
      xnorm += std::norm(cd(a(i, j)));
    }
    xnorm = std::sqrt(xnorm);
    double beta = 0.0;
    if (xnorm > 0) {
      T alpha = v[0];
      const double aabs = std::abs(cd(alpha));
      // phase = alpha/|alpha| (or 1 if alpha==0) so the pivot becomes real.
      T phase = aabs > 0 ? alpha * T{1.0 / aabs} : T{1};
      const T vhead = alpha + phase * T{xnorm};
      v[0] = vhead;
      double vnorm2 = std::norm(cd(vhead)) + xnorm * xnorm - aabs * aabs;
      if (vnorm2 > 0) {
        beta = 2.0 / vnorm2;
        apply_reflector(a, j, j, v, beta, scratch);
      }
    }
    reflectors.push_back(std::move(v));
    betas.push_back(beta);

    if (pivot) {
      for (index c = j + 1; c < n; ++c)
        colnorm2[static_cast<std::size_t>(c)] -= std::norm(cd(a(j, c)));
    }
  }

  out.r = Matrix<T>(k, n);
  for (index i = 0; i < k; ++i)
    for (index j = i; j < n; ++j) out.r(i, j) = a(i, j);

  // Accumulate thin Q by applying the reflectors to the first k columns of I.
  Matrix<T> q(m, k);
  for (index j = 0; j < k; ++j) q(j, j) = T{1};
  for (index j = k - 1; j >= 0; --j) {
    if (betas[static_cast<std::size_t>(j)] == 0.0) continue;
    apply_reflector(q, j, 0, reflectors[static_cast<std::size_t>(j)],
                    betas[static_cast<std::size_t>(j)], scratch);
  }
  out.q = std::move(q);

  if (pivot) {
    const double r00 = std::abs(cd(out.r(0, 0)));
    index r = 0;
    for (index i = 0; i < k; ++i)
      if (std::abs(cd(out.r(i, i))) > rel_tol * r00) ++r;
    out.rank = r;
  } else {
    out.rank = k;
  }
  return out;
}

// Blocked Householder QR with the compact-WY representation: each kQrPanel
// column panel is factored by the unblocked loop, its reflectors are
// aggregated into Q_panel = I − V·T·Vᴴ (the LAPACK larft recurrence), and
// the trailing matrix is updated with three GEMMs instead of jb rank-1
// sweeps:  C ← Q_panelᴴ·C = C − V·(Tᴴ·(Vᴴ·C)).  Thin Q is accumulated by
// applying the panels to I in reverse, again through GEMM.
//
// V is stored as a unit lower-trapezoidal m−j0 × jb matrix (explicit zeros
// above the unit "diagonal"), so the kernel's strided packing can read it
// plainly and V·X / Vᴴ·X need no triangular special-casing.
template <typename T>
QrResult<T> qr_blocked(Matrix<T> a) {
  PMTBR_TRACE_SCOPE("la.qr");
  const index m = a.rows(), n = a.cols();
  const index k = std::min(m, n);
  obs::counter_add(obs::Counter::kQrFactorizations);
  obs::counter_add(obs::Counter::kQrFlops,
                   static_cast<std::int64_t>(4.0 * static_cast<double>(m) *
                                             static_cast<double>(n) * static_cast<double>(k)));

  std::vector<Matrix<T>> panel_v;
  std::vector<Matrix<T>> panel_t;
  panel_v.reserve(static_cast<std::size_t>((k + kQrPanel - 1) / kQrPanel));
  panel_t.reserve(panel_v.capacity());

  for (index j0 = 0; j0 < k; j0 += kQrPanel) {
    const index jb = std::min<index>(kQrPanel, k - j0);
    const index mj = m - j0;
    obs::counter_add(obs::Counter::kQrBlockedPanels);

    // --- panel factorization: unblocked Householder on columns [j0, j0+jb)
    Matrix<T> v(mj, jb);
    std::vector<double> betas(static_cast<std::size_t>(jb), 0.0);
    std::vector<T> hv(static_cast<std::size_t>(mj));
    std::vector<T> pscratch(static_cast<std::size_t>(jb));
    for (index jj = 0; jj < jb; ++jj) {
      const index col = j0 + jj;
      double xnorm2 = 0;
      for (index i = col; i < m; ++i) xnorm2 += std::norm(cd(a(i, col)));
      const double xnorm = std::sqrt(xnorm2);
      if (xnorm > 0) {
        const T alpha = a(col, col);
        const double aabs = std::abs(cd(alpha));
        // phase = alpha/|alpha| (or 1 if alpha==0) so the pivot becomes real.
        const T phase = aabs > 0 ? alpha * T{1.0 / aabs} : T{1};
        const T vhead = alpha + phase * T{xnorm};
        const double vnorm2 = std::norm(cd(vhead)) + xnorm2 - aabs * aabs;
        if (vnorm2 > 0) {
          const double beta = 2.0 / vnorm2;
          betas[static_cast<std::size_t>(jj)] = beta;
          // Build the reflector contiguously (from the pre-application
          // column), apply it to the panel with the row sweep, then stash it
          // in the unit-lower-trapezoidal V for the WY update.
          hv[0] = vhead;
          for (index i = col + 1; i < m; ++i) hv[static_cast<std::size_t>(i - col)] = a(i, col);
          reflector_sweep(m - col, j0 + jb - col, n, &a(col, col), hv.data(), beta,
                          pscratch.data());
          for (index i = col; i < m; ++i) v(i - j0, jj) = hv[static_cast<std::size_t>(i - col)];
        }
      }
    }

    // --- T factor (larft forward/columnwise recurrence):
    //     T(jj,jj) = beta_jj;  T(0:jj, jj) = −beta_jj · T(0:jj,0:jj) · (Vᴴ v_jj)
    Matrix<T> t(jb, jb);
    for (index jj = 0; jj < jb; ++jj) {
      const double beta = betas[static_cast<std::size_t>(jj)];
      t(jj, jj) = T{beta};
      if (beta == 0.0 || jj == 0) continue;
      std::vector<T> w(static_cast<std::size_t>(jj), T{});
      for (index c = 0; c < jj; ++c) {
        T s{};
        for (index i = jj; i < mj; ++i) {  // v_jj is zero above row jj
          if constexpr (std::is_same_v<T, cd>) {
            s += std::conj(v(i, c)) * v(i, jj);
          } else {
            s += v(i, c) * v(i, jj);
          }
        }
        w[static_cast<std::size_t>(c)] = s;
      }
      for (index r = 0; r < jj; ++r) {
        T s{};
        for (index c = r; c < jj; ++c) s += t(r, c) * w[static_cast<std::size_t>(c)];
        t(r, jj) = T{-beta} * s;
      }
    }

    // --- trailing update: C(j0:m, j0+jb:n) ← C − V·(Tᴴ·(Vᴴ·C))
    const index ntrail = n - (j0 + jb);
    if (ntrail > 0) {
      Matrix<T> w(jb, ntrail);
      detail::gemm<T, true>(jb, ntrail, mj, v.data(), 1, jb, &a(j0, j0 + jb), n, 1, w.data(),
                            ntrail, detail::GemmAcc::kSet);
      Matrix<T> w2(jb, ntrail);
      for (index r = 0; r < jb; ++r) {
        T* w2r = w2.row_ptr(r);
        for (index c = 0; c <= r; ++c) {  // Tᴴ is lower triangular
          T tc;
          if constexpr (std::is_same_v<T, cd>) {
            tc = std::conj(t(c, r));
          } else {
            tc = t(c, r);
          }
          const T* wc = w.row_ptr(c);
          for (index j = 0; j < ntrail; ++j) w2r[j] += tc * wc[j];
        }
      }
      detail::gemm<T, false>(mj, ntrail, jb, v.data(), jb, 1, w2.data(), ntrail, 1,
                             &a(j0, j0 + jb), n, detail::GemmAcc::kSub);
    }

    panel_v.push_back(std::move(v));
    panel_t.push_back(std::move(t));
  }

  QrResult<T> out;
  out.perm.resize(static_cast<std::size_t>(n));
  std::iota(out.perm.begin(), out.perm.end(), index{0});
  out.r = Matrix<T>(k, n);
  for (index i = 0; i < k; ++i)
    for (index j = i; j < n; ++j) out.r(i, j) = a(i, j);

  // Thin Q: apply the panels to the first k columns of I in reverse order,
  // q ← Q_panel·q = q − V·(T·(Vᴴ·q)) restricted to rows [j0, m).
  Matrix<T> q(m, k);
  for (index j = 0; j < k; ++j) q(j, j) = T{1};
  for (index p = static_cast<index>(panel_v.size()) - 1; p >= 0; --p) {
    const Matrix<T>& v = panel_v[static_cast<std::size_t>(p)];
    const Matrix<T>& t = panel_t[static_cast<std::size_t>(p)];
    const index j0 = p * kQrPanel;
    const index jb = v.cols();
    const index mj = m - j0;
    Matrix<T> w(jb, k);
    detail::gemm<T, true>(jb, k, mj, v.data(), 1, jb, &q(j0, 0), k, 1, w.data(), k,
                          detail::GemmAcc::kSet);
    Matrix<T> w2(jb, k);
    for (index r = 0; r < jb; ++r) {
      T* w2r = w2.row_ptr(r);
      for (index c = r; c < jb; ++c) {  // T is upper triangular
        const T tc = t(r, c);
        const T* wc = w.row_ptr(c);
        for (index j = 0; j < k; ++j) w2r[j] += tc * wc[j];
      }
    }
    detail::gemm<T, false>(mj, k, jb, v.data(), jb, 1, w2.data(), k, 1, &q(j0, 0), k,
                           detail::GemmAcc::kSub);
  }
  out.q = std::move(q);
  out.rank = k;
  return out;
}

}  // namespace

template <typename T>
QrResult<T> qr(const Matrix<T>& a) {
  PMTBR_CHECK_FINITE(a, "qr input matrix");
  if (std::min(a.rows(), a.cols()) >= kQrBlockMin) return qr_blocked(a);
  return qr_impl(a, /*pivot=*/false, 0.0);
}

template <typename T>
QrResult<T> qr_reference(const Matrix<T>& a) {
  PMTBR_CHECK_FINITE(a, "qr input matrix");
  return qr_impl(a, /*pivot=*/false, 0.0);
}

template <typename T>
QrResult<T> qr_pivoted(const Matrix<T>& a, double rel_tol) {
  PMTBR_REQUIRE(rel_tol >= 0, "qr_pivoted tolerance must be nonnegative");
  PMTBR_CHECK_FINITE(a, "qr_pivoted input matrix");
  return qr_impl(a, /*pivot=*/true, rel_tol);
}

template <typename T>
Matrix<T> orth(const Matrix<T>& a, double rel_tol) {
  auto f = qr_pivoted(a, rel_tol);
  return f.q.columns(0, std::max<index>(f.rank, 1));
}

template QrResult<double> qr(const Matrix<double>&);
template QrResult<cd> qr(const Matrix<cd>&);
template QrResult<double> qr_reference(const Matrix<double>&);
template QrResult<cd> qr_reference(const Matrix<cd>&);
template QrResult<double> qr_pivoted(const Matrix<double>&, double);
template QrResult<cd> qr_pivoted(const Matrix<cd>&, double);
template Matrix<double> orth(const Matrix<double>&, double);
template Matrix<cd> orth(const Matrix<cd>&, double);

}  // namespace pmtbr::la
