// Communication-avoiding tall-skinny QR (TSQR).
//
// The m×n input (m ≫ n) is split into fixed row chunks; each chunk gets an
// independent leaf QR, and the stacked n×n R factors are reduced pairwise
// until one R remains. Back-propagating the combine Q factors yields an
// n×n coefficient per leaf, and Q = diag(Q_leaf_i) · [C_i] lands each
// leaf's rows with one small GEMM.
//
// The leaf boundaries and the reduction-tree shape are functions of (m, n)
// only — never of the pool size — so the factorization is bit-identical
// for every thread count (the determinism contract the compressor relies
// on, see tests/mor/determinism_test.cpp).
#pragma once

#include "la/matrix.hpp"

namespace pmtbr::la {

template <typename T>
struct TsqrResult {
  Matrix<T> q;  // m×k with orthonormal columns, k = min(m, n)
  Matrix<T> r;  // k×n upper triangular
};

/// Thin QR via the leaf/pairwise reduction tree. Falls back to the blocked
/// in-core factorization (la::qr) when the matrix is too short for at least
/// two leaves, so it is safe to call for any shape.
template <typename T>
TsqrResult<T> tsqr(const Matrix<T>& a);

}  // namespace pmtbr::la
