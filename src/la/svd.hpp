// Singular value decomposition via one-sided Jacobi rotations.
//
// One-sided Jacobi is unconditionally convergent and computes small
// singular values with high relative accuracy — which is exactly what
// PMTBR's order-control needs, since truncation decisions are made on
// trailing singular values many orders of magnitude below the leading one.
//
// Complex sample matrices are handled upstream by realification
// (la::realify_columns), which is equivalent to including conjugate
// sample pairs (paper Algorithm 1, step 5).
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "util/status.hpp"

namespace pmtbr::la {

struct SvdResult {
  MatD u;               // m×k, orthonormal columns
  std::vector<double> s;  // k singular values, descending
  MatD v;               // n×k, orthonormal columns; A = U diag(S) V^T
};

/// Thin SVD of an m×n real matrix (any shape), k = min(m, n).
SvdResult svd(const MatD& a);

/// Status-carrying SVD: kNoConvergence if the Jacobi sweep budget is
/// exhausted (practically impossible; svd() silently returns the usable
/// approximation instead), kInjectedFault under the svd.converge site.
util::Expected<SvdResult> try_svd(const MatD& a);

/// Singular values only (still O(mn^2) but skips accumulating V).
std::vector<double> singular_values(const MatD& a);

}  // namespace pmtbr::la
