// BLAS-like dense kernels: products, transposes, norms, real/complex
// conversion helpers. All free functions over la::Matrix.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pmtbr::la {

// --- products -------------------------------------------------------------

/// C = A * B. Register-tiled, cache-blocked kernel (la/gemm_kernel.hpp);
/// bit-identical for every thread count.
template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b);

/// C = A * B into a preallocated C (shape-checked). C must not alias A or
/// B — the blocked kernel packs operand panels while C is being written.
template <typename T>
void matmul_into(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c);

/// C = A^H * B (conjugate-transpose for complex, transpose for real)
/// without materializing the transpose: the kernel's packing reads A
/// through swapped strides.
template <typename T>
Matrix<T> matmul_at(const Matrix<T>& a, const Matrix<T>& b);

/// The seed scalar i-k-j triple loop, kept as the comparison baseline for
/// tests (bitwise-independent oracle) and bench_kernels speedup records.
template <typename T>
Matrix<T> matmul_reference(const Matrix<T>& a, const Matrix<T>& b);

/// y = A * x.
template <typename T>
std::vector<T> matvec(const Matrix<T>& a, const std::vector<T>& x);

/// A^T (plain transpose, no conjugation). Cache-blocked: source and
/// destination are walked in tiles so tall matrices do not thrash.
template <typename T>
Matrix<T> transpose(const Matrix<T>& a);

/// A^H for complex, A^T for real.
MatC adjoint(const MatC& a);
MatD adjoint(const MatD& a);

// --- norms and reductions ---------------------------------------------------

template <typename T>
double norm_fro(const Matrix<T>& a);

template <typename T>
double norm_inf(const Matrix<T>& a);  // max row sum

template <typename T>
double norm2(const std::vector<T>& v);  // Euclidean

template <typename T>
T dot(const std::vector<T>& a, const std::vector<T>& b);  // conjugating for complex

// --- conversions ------------------------------------------------------------

MatC to_complex(const MatD& a);
MatD real_part(const MatC& a);
MatD imag_part(const MatC& a);

/// [Re(A) | Im(A)] as a real matrix with twice the columns — the standard
/// realification of conjugate-pair frequency samples.
MatD realify_columns(const MatC& a);

// --- assembly helpers ---------------------------------------------------------

/// Horizontal concatenation [A | B].
template <typename T>
Matrix<T> hcat(const Matrix<T>& a, const Matrix<T>& b);

/// Maximum absolute difference between two matrices (shape-checked).
template <typename T>
double max_abs_diff(const Matrix<T>& a, const Matrix<T>& b);

}  // namespace pmtbr::la
