// Cholesky factorization of symmetric positive-(semi)definite matrices.
//
// The TBR baseline factors Gramians X = L L^T; Gramians from the sign
// iteration can be slightly indefinite at round-off level, so a
// semidefinite-tolerant variant is provided that zero-clamps tiny negative
// pivots instead of failing.
#pragma once

#include "la/matrix.hpp"

namespace pmtbr::la {

/// Strict Cholesky A = L L^T; throws if A is not numerically SPD.
MatD cholesky(const MatD& a);

/// Semidefinite-tolerant factorization A ≈ L L^T for symmetric PSD A with
/// round-off-level negative eigenvalues. Columns with pivot below
/// rel_tol * max_diag are zeroed. Returns a full n×n lower-triangular L
/// (possibly with zero columns).
MatD cholesky_psd(const MatD& a, double rel_tol = 1e-13);

}  // namespace pmtbr::la
