// Complex Schur decomposition A = Q T Q^H via Householder Hessenberg
// reduction followed by shifted QR iteration with deflation.
//
// A single-shift *complex* QR iteration handles real nonsymmetric matrices
// too (the Schur form simply comes out complex), avoiding the considerably
// trickier real Francis double-shift. Used for pole/stability analysis of
// reduced models and the compressed cross-Gramian eigenproblem (Sec. V-D).
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pmtbr::la {

struct SchurResult {
  MatC t;  // upper triangular
  MatC q;  // unitary, A = Q T Q^H
};

/// Complex Schur decomposition; throws on QR-iteration non-convergence.
SchurResult schur(const MatC& a);

/// Eigenvalues of a general complex matrix (diag of the Schur T),
/// sorted by descending magnitude.
std::vector<cd> eigenvalues(const MatC& a);

/// Eigenvalues of a general real matrix.
std::vector<cd> eigenvalues(const MatD& a);

struct EigResult {
  std::vector<cd> values;  // descending |λ|
  MatC vectors;            // right eigenvectors as columns (unit norm)
};

/// Full eigendecomposition of a general (diagonalizable) matrix via Schur +
/// triangular back-substitution. Near-defective matrices yield vectors that
/// solve a slightly perturbed problem, as in standard LAPACK practice.
EigResult eig(const MatC& a);
EigResult eig(const MatD& a);

}  // namespace pmtbr::la
