// Dense matrix and vector types, templated on scalar (double or
// std::complex<double>), row-major storage.
//
// These are deliberately small value types: algorithms live in free
// functions (la/ops.hpp, la/lu.hpp, ...) rather than member functions, so
// the type stays stable while the algorithm library grows.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace pmtbr::la {

using cd = std::complex<double>;
using index = std::ptrdiff_t;

namespace detail {

/// Validates a (rows, cols) pair and returns the element count in
/// std::size_t. Ordered so the product is never formed in `index`: huge
/// but individually-valid dimensions would overflow ptrdiff_t (UB) before
/// any PMTBR_REQUIRE could fire.
inline std::size_t checked_element_count(index rows, index cols) {
  PMTBR_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be nonnegative");
  const auto r = static_cast<std::size_t>(rows);
  const auto c = static_cast<std::size_t>(cols);
  PMTBR_REQUIRE(c == 0 || r <= static_cast<std::size_t>(std::numeric_limits<index>::max()) / c,
                "matrix element count overflows index");
  return r * c;
}

}  // namespace detail

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(index rows, index cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(detail::checked_element_count(rows, cols), fill) {}

  /// Row-major initializer: Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = static_cast<index>(rows.size());
    cols_ = rows_ ? static_cast<index>(rows.begin()->size()) : 0;
    data_.reserve(static_cast<std::size_t>(rows_ * cols_));
    for (const auto& r : rows) {
      PMTBR_REQUIRE(static_cast<index>(r.size()) == cols_, "ragged initializer list");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  static Matrix identity(index n) {
    Matrix m(n, n);
    for (index i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  /// Reshape in place to rows×cols with every element zeroed. Reuses the
  /// existing allocation when capacity suffices, so per-block workspace
  /// matrices (mor/compressor.hpp) stop paying an allocation per call.
  void resize(index rows, index cols) {
    const std::size_t count = detail::checked_element_count(rows, cols);
    rows_ = rows;
    cols_ = cols;
    data_.assign(count, T{});
  }

  index rows() const { return rows_; }
  index cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  std::size_t size() const { return data_.size(); }

  T& operator()(index i, index j) {
    PMTBR_DEBUG_ASSERT(0 <= i && i < rows_ && 0 <= j && j < cols_, "matrix index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  const T& operator()(index i, index j) const {
    PMTBR_DEBUG_ASSERT(0 <= i && i < rows_ && 0 <= j && j < cols_, "matrix index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T* row_ptr(index i) {
    PMTBR_DEBUG_ASSERT(0 <= i && i < rows_, "row index out of range");
    return data_.data() + i * cols_;
  }
  const T* row_ptr(index i) const {
    PMTBR_DEBUG_ASSERT(0 <= i && i < rows_, "row index out of range");
    return data_.data() + i * cols_;
  }

  /// Columns [c0, c1) as a new matrix.
  Matrix columns(index c0, index c1) const {
    PMTBR_REQUIRE(0 <= c0 && c0 <= c1 && c1 <= cols_, "column range out of bounds");
    Matrix out(rows_, c1 - c0);
    for (index i = 0; i < rows_; ++i)
      for (index j = c0; j < c1; ++j) out(i, j - c0) = (*this)(i, j);
    return out;
  }

  /// Rows [r0, r1) as a new matrix.
  Matrix rows_range(index r0, index r1) const {
    PMTBR_REQUIRE(0 <= r0 && r0 <= r1 && r1 <= rows_, "row range out of bounds");
    Matrix out(r1 - r0, cols_);
    for (index i = r0; i < r1; ++i)
      for (index j = 0; j < cols_; ++j) out(i - r0, j) = (*this)(i, j);
    return out;
  }

  std::vector<T> col(index j) const {
    std::vector<T> v(static_cast<std::size_t>(rows_));
    for (index i = 0; i < rows_; ++i) v[static_cast<std::size_t>(i)] = (*this)(i, j);
    return v;
  }

  void set_col(index j, const std::vector<T>& v) {
    PMTBR_REQUIRE(static_cast<index>(v.size()) == rows_, "column length mismatch");
    for (index i = 0; i < rows_; ++i) (*this)(i, j) = v[static_cast<std::size_t>(i)];
  }

  Matrix& operator+=(const Matrix& o) {
    PMTBR_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +=");
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += o.data_[k];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    PMTBR_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -=");
    for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= o.data_[k];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& x : data_) x *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

 private:
  index rows_ = 0;
  index cols_ = 0;
  std::vector<T> data_;
};

using MatD = Matrix<double>;
using MatC = Matrix<cd>;
using VecD = std::vector<double>;
using VecC = std::vector<cd>;

// --- finiteness scans (backing PMTBR_CHECK_FINITE, found by ADL) -----------

inline bool is_finite(double x) { return std::isfinite(x); }
inline bool is_finite(cd x) { return std::isfinite(x.real()) && std::isfinite(x.imag()); }

template <typename T>
bool is_finite(const Matrix<T>& a) {
  const T* p = a.data();
  const std::size_t n = a.size();
  for (std::size_t k = 0; k < n; ++k)
    if (!is_finite(p[k])) return false;
  return true;
}

template <typename T>
bool is_finite(const std::vector<T>& v) {
  for (const auto& x : v)
    if (!is_finite(x)) return false;
  return true;
}

}  // namespace pmtbr::la
