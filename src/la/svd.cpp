#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "la/ops.hpp"
#include "util/faultinject.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"

namespace pmtbr::la {

namespace {

constexpr int kMaxSweeps = 60;

// One-sided Jacobi on a tall (m >= n) matrix g; v accumulates the right
// rotations when non-null. Returns false when the sweep budget is
// exhausted before the rotations settle.
bool jacobi_onesided(MatD& g, MatD* v) {
  const index m = g.rows(), n = g.cols();
  const double eps = std::numeric_limits<double>::epsilon();

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    obs::counter_add(obs::Counter::kSvdSweeps);
    // Each of the n(n-1)/2 column pairs costs ~6m flops (Gram + rotation).
    obs::counter_add(obs::Counter::kSvdFlops,
                     static_cast<std::int64_t>(3.0 * static_cast<double>(m) *
                                               static_cast<double>(n) *
                                               static_cast<double>(n - 1)));
    bool rotated = false;
    for (index p = 0; p < n - 1; ++p) {
      for (index q = p + 1; q < n; ++q) {
        // Gram entries of the (p,q) column pair.
        double app = 0, aqq = 0, apq = 0;
        for (index i = 0; i < m; ++i) {
          const double gp = g(i, p), gq = g(i, q);
          app += gp * gp;
          aqq += gq * gq;
          apq += gp * gq;
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) continue;
        rotated = true;
        // Classic Jacobi rotation annihilating the off-diagonal Gram entry.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (index i = 0; i < m; ++i) {
          const double gp = g(i, p), gq = g(i, q);
          g(i, p) = c * gp - s * gq;
          g(i, q) = s * gp + c * gq;
        }
        if (v) {
          for (index i = 0; i < n; ++i) {
            const double vp = (*v)(i, p), vq = (*v)(i, q);
            (*v)(i, p) = c * vp - s * vq;
            (*v)(i, q) = s * vp + c * vq;
          }
        }
      }
    }
    if (!rotated) return true;
  }
  // Non-convergence after kMaxSweeps sweeps is practically impossible for
  // Jacobi; if it happens the result is still a usable approximation.
  return false;
}

SvdResult svd_tall(const MatD& a, bool want_vectors, bool* converged = nullptr) {
  PMTBR_TRACE_SCOPE("la.svd");
  obs::counter_add(obs::Counter::kSvdCalls);
  const index m = a.rows(), n = a.cols();
  MatD g = a;
  MatD v = MatD::identity(n);
  const bool ok = jacobi_onesided(g, want_vectors ? &v : nullptr);
  if (converged) *converged = ok;

  // Column norms are the singular values.
  std::vector<double> s(static_cast<std::size_t>(n));
  for (index j = 0; j < n; ++j) {
    double nrm = 0;
    for (index i = 0; i < m; ++i) nrm += g(i, j) * g(i, j);
    s[static_cast<std::size_t>(j)] = std::sqrt(nrm);
  }

  // Sort descending.
  std::vector<index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index{0});
  std::sort(order.begin(), order.end(), [&](index i, index j) {
    return s[static_cast<std::size_t>(i)] > s[static_cast<std::size_t>(j)];
  });

  SvdResult out;
  out.s.resize(static_cast<std::size_t>(n));
  out.u = MatD(m, n);
  if (want_vectors) out.v = MatD(n, n);
  for (index j = 0; j < n; ++j) {
    const index src = order[static_cast<std::size_t>(j)];
    const double sj = s[static_cast<std::size_t>(src)];
    out.s[static_cast<std::size_t>(j)] = sj;
    const double inv = sj > 0 ? 1.0 / sj : 0.0;
    for (index i = 0; i < m; ++i) out.u(i, j) = g(i, src) * inv;
    if (want_vectors)
      for (index i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }
  return out;
}

}  // namespace

SvdResult svd(const MatD& a) {
  PMTBR_REQUIRE(!a.empty(), "svd of empty matrix");
  PMTBR_CHECK_FINITE(a, "svd input matrix");
  if (a.rows() >= a.cols()) return svd_tall(a, true);
  // Wide: factor A^T = U S V^T  =>  A = V S U^T.
  SvdResult t = svd_tall(transpose(a), true);
  SvdResult out;
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.s = std::move(t.s);
  return out;
}

util::Expected<SvdResult> try_svd(const MatD& a) {
  PMTBR_REQUIRE(!a.empty(), "svd of empty matrix");
  PMTBR_CHECK_FINITE(a, "svd input matrix");
  if (util::fault::should_fail(util::fault::Site::kSvdConverge))
    return util::Status(util::ErrorCode::kInjectedFault, "svd.converge fault injected");
  bool converged = false;
  SvdResult out;
  if (a.rows() >= a.cols()) {
    out = svd_tall(a, true, &converged);
  } else {
    SvdResult t = svd_tall(transpose(a), true, &converged);
    out.u = std::move(t.v);
    out.v = std::move(t.u);
    out.s = std::move(t.s);
  }
  if (!converged)
    return util::Status(util::ErrorCode::kNoConvergence,
                        "one-sided Jacobi SVD exhausted its sweep budget");
  return out;
}

std::vector<double> singular_values(const MatD& a) {
  PMTBR_REQUIRE(!a.empty(), "svd of empty matrix");
  PMTBR_CHECK_FINITE(a, "singular_values input matrix");
  if (a.rows() >= a.cols()) return svd_tall(a, false).s;
  return svd_tall(transpose(a), false).s;
}

}  // namespace pmtbr::la
