// Dense LU factorization with partial pivoting, templated on scalar.
//
// Used for: reduced-model transfer functions, the matrix-sign Lyapunov
// iteration (repeated inversion), and as the reference solver the sparse LU
// is validated against.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "util/status.hpp"

namespace pmtbr::la {

template <typename T>
class Lu {
 public:
  /// Factors PA = LU with partial pivoting. Throws util::StatusError (a
  /// std::runtime_error) if the matrix is numerically singular.
  explicit Lu(Matrix<T> a);

  /// Non-throwing factorization: kSingularMatrix (detail = failing step)
  /// when a zero pivot column is hit.
  static util::Expected<Lu> factor(Matrix<T> a);

  index n() const { return lu_.rows(); }

  /// Solves A x = b.
  std::vector<T> solve(std::vector<T> b) const;

  /// Solves A X = B column-by-column.
  Matrix<T> solve(const Matrix<T>& b) const;

  /// Solves A^T x = b (plain transpose, no conjugation).
  std::vector<T> solve_transpose(std::vector<T> b) const;

  /// A^{-1} (dense; used by the sign iteration).
  Matrix<T> inverse() const;

  /// log|det A| — used for determinant-based scaling in the sign iteration.
  double log_abs_det() const;

  /// Number of row swaps performed (parity of the permutation).
  int swap_count() const { return swaps_; }

 private:
  Lu() = default;
  util::Status factorize(Matrix<T> a);

  Matrix<T> lu_;
  std::vector<index> piv_;  // piv_[k] = row swapped with k at step k
  int swaps_ = 0;
};

using LuD = Lu<double>;
using LuC = Lu<cd>;

/// Convenience: solve A X = B in one call.
template <typename T>
Matrix<T> solve(const Matrix<T>& a, const Matrix<T>& b);

}  // namespace pmtbr::la
