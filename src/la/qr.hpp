// Householder QR factorization (real and complex), with optional column
// pivoting for rank-revealing use.
//
// PMTBR's on-the-fly order control (paper Sec. V-C) uses the pivoted QR as
// the cheap rank-revealing factorization in place of repeated SVDs.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pmtbr::la {

template <typename T>
struct QrResult {
  Matrix<T> q;               // m×k with orthonormal columns (thin), k = min(m,n)
  Matrix<T> r;               // k×n upper triangular (column-permuted if pivoted)
  std::vector<index> perm;   // column permutation; r applies to A(:,perm)
  index rank = 0;            // numerical rank estimate (pivoted only; else k)
};

/// Thin QR of an m×n matrix (m >= n is typical; m < n allowed). Large
/// factorizations take the blocked compact-WY path (panel Householder
/// factorization + GEMM trailing updates); small ones the unblocked loop.
template <typename T>
QrResult<T> qr(const Matrix<T>& a);

/// The seed unblocked Householder loop, kept as the comparison oracle for
/// the blocked path's backward-error tests and bench_kernels records.
template <typename T>
QrResult<T> qr_reference(const Matrix<T>& a);

/// Column-pivoted thin QR; `rank` counts diagonal entries of R above
/// rel_tol * |R(0,0)|.
template <typename T>
QrResult<T> qr_pivoted(const Matrix<T>& a, double rel_tol = 1e-12);

/// Orthonormal basis of the column space of A: the first `rank` columns of
/// the pivoted Q.
template <typename T>
Matrix<T> orth(const Matrix<T>& a, double rel_tol = 1e-12);

using QrD = QrResult<double>;
using QrC = QrResult<cd>;

}  // namespace pmtbr::la
