#include "signal/subspace.hpp"

#include <algorithm>
#include <cmath>

#include "la/ops.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"

namespace pmtbr::signal {

std::vector<double> principal_angles(const la::MatD& a, const la::MatD& b) {
  PMTBR_REQUIRE(a.rows() == b.rows(), "subspaces must live in the same space");
  const la::MatD qa = la::orth(a);
  const la::MatD qb = la::orth(b);
  auto s = la::singular_values(la::matmul_at(qa, qb));
  std::vector<double> angles;
  angles.reserve(s.size());
  // cos θ_i are the singular values of Qa^T Qb; clamp for round-off.
  for (const double c : s) angles.push_back(std::acos(std::clamp(c, -1.0, 1.0)));
  std::sort(angles.begin(), angles.end());
  return angles;
}

double subspace_angle(const la::MatD& a, const la::MatD& b) {
  const auto angles = principal_angles(a, b);
  PMTBR_ENSURE(!angles.empty(), "empty subspaces");
  // The angle between a smaller and larger subspace is governed by the
  // smaller dimension: take the largest of the min(dim) angles.
  const std::size_t k = std::min<std::size_t>(
      angles.size(), static_cast<std::size_t>(std::min(a.cols(), b.cols())));
  return angles[k - 1];
}

}  // namespace pmtbr::signal
