// Trapezoidal-rule transient simulation of descriptor systems (sparse full
// models) and dense reduced models, with waveform-bank inputs.
//
// This is the engine behind the time-domain comparisons of Figs. 13–15:
// simulate the full network and the reduced models under identical
// (dithered) stimuli and compare port outputs.
#pragma once

#include <functional>
#include <vector>

#include "circuit/descriptor.hpp"
#include "mor/state_space.hpp"
#include "signal/waveform.hpp"

namespace pmtbr::signal {

using InputFunction = std::function<std::vector<double>(double t)>;

struct TransientOptions {
  double t_end = 1e-7;
  la::index steps = 1000;
};

struct TransientResult {
  std::vector<double> times;
  la::MatD outputs;  // steps+1 rows × num_outputs columns
};

/// Trapezoidal integration of E dx/dt = A x + B u(t), x(0) = 0.
TransientResult simulate(const DescriptorSystem& sys, const InputFunction& u,
                         const TransientOptions& opts);

/// Same for a dense reduced model.
TransientResult simulate(const mor::DenseSystem& sys, const InputFunction& u,
                         const TransientOptions& opts);

/// Adapts a waveform bank (one per input) into an InputFunction.
InputFunction bank_input(const std::vector<Waveform>& bank);

/// Max and RMS difference between two output matrices, over all ports and
/// steps (grids must match).
struct OutputError {
  double max_abs = 0.0;
  double rms = 0.0;
  double max_ref = 0.0;  // max |reference| for normalization
};
OutputError compare_outputs(const TransientResult& ref, const TransientResult& test);

}  // namespace pmtbr::signal
