#include "signal/correlation.hpp"

#include "la/ops.hpp"
#include "la/svd.hpp"

namespace pmtbr::signal {

MatD correlation_matrix(const MatD& samples) {
  PMTBR_REQUIRE(samples.cols() >= 1, "need at least one sample");
  MatD k = la::matmul(samples, la::transpose(samples));
  k *= 1.0 / static_cast<double>(samples.cols());
  return k;
}

std::vector<double> correlation_spectrum(const MatD& samples) {
  auto s = la::singular_values(samples);
  for (auto& v : s) v = v * v / static_cast<double>(samples.cols());
  return s;
}

la::index effective_rank(const MatD& samples, double tol) {
  const auto spec = correlation_spectrum(samples);
  if (spec.empty() || spec.front() <= 0) return 0;
  la::index r = 0;
  for (const double v : spec)
    if (v > tol * spec.front()) ++r;
  return r;
}

}  // namespace pmtbr::signal
