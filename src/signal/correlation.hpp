// Empirical input-correlation estimation (paper Sec. IV-C): from waveform
// samples to the correlation matrix K and its spectrum.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "signal/waveform.hpp"

namespace pmtbr::signal {

/// K = U U^T / N for a p×N sample matrix.
MatD correlation_matrix(const MatD& samples);

/// Eigenvalues of K (descending) — equivalently S_K^2 / N from the SVD of
/// the sample matrix; their decay is what input-correlated TBR exploits.
std::vector<double> correlation_spectrum(const MatD& samples);

/// Effective rank: number of correlation eigenvalues above tol·λ_max.
la::index effective_rank(const MatD& samples, double tol = 1e-6);

}  // namespace pmtbr::signal
