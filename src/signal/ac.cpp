#include "signal/ac.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/faultinject.hpp"
#include "util/logging.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::signal {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Per-point degradation policy: a failed transfer evaluation is retried at
// relatively perturbed frequencies f·(1+εk) before the point is dropped
// from the sweep (docs/ROBUSTNESS.md).
constexpr int kAcMaxRetries = 2;
constexpr double kAcRetryEps = 1e-6;

// Hook for warming per-system caches before the parallel fan-out: sparse
// descriptor systems freeze their shifted-pencil pivot order here so every
// pool thread refactors deterministically; dense models need nothing. The
// first preparable grid point seeds the ordering — if none works the
// per-point evaluations fail individually and the sweep degrades to empty.
void warm(const DescriptorSystem& sys, const std::vector<double>& freqs) {
  for (const double f : freqs) {
    util::fault::KeyScope key(util::fault::shift_key(0.0, kTwoPi * f));
    if (sys.try_prepare_shifted(la::cd(0.0, kTwoPi * f)).is_ok()) return;
  }
}
void warm(const mor::DenseSystem&, const std::vector<double>&) {}

util::Expected<la::cd> eval(const DescriptorSystem& sys, la::cd s, la::index out_idx,
                            la::index in_idx) {
  auto h = sys.try_transfer(s);
  if (!h.is_ok()) return h.status();
  return h.value()(out_idx, in_idx);
}

util::Expected<la::cd> eval(const mor::DenseSystem& sys, la::cd s, la::index out_idx,
                            la::index in_idx) {
  try {
    return sys.transfer(s)(out_idx, in_idx);
  } catch (const util::StatusError& e) {  // dense pencil exactly singular
    return e.status();
  }
}

// One grid point with its retry ladder. All attempts run under a fault key
// derived from the ORIGINAL frequency, so injected decisions condemn the
// point deterministically while genuine pole hits recover via the
// perturbed re-evaluations.
template <typename System>
util::Expected<AcPoint> try_ac_point(const System& sys, double f, la::index out_idx,
                                     la::index in_idx) {
  util::fault::KeyScope key(util::fault::shift_key(0.0, kTwoPi * f));
  util::Status last;
  for (int attempt = 0; attempt <= kAcMaxRetries; ++attempt) {
    double fk = f;
    if (attempt > 0) {
      const double eps = kAcRetryEps * static_cast<double>(attempt);
      fk = (f == 0.0) ? eps : f * (1.0 + eps);
      obs::counter_add(obs::Counter::kAcPointRetries);
    }
    auto h = eval(sys, la::cd(0.0, kTwoPi * fk), out_idx, in_idx);
    if (h.is_ok()) return AcPoint{f, std::abs(h.value()), std::arg(h.value())};
    last = h.status();
  }
  return last;
}

template <typename System>
std::vector<AcPoint> sweep_impl(const System& sys, const std::vector<double>& freqs,
                                la::index out_idx, la::index in_idx) {
  PMTBR_REQUIRE(out_idx < sys.num_outputs() && in_idx < sys.num_inputs(),
                "transfer entry out of range");
  if (freqs.empty()) return {};
  PMTBR_TRACE_SCOPE("ac.sweep");
  obs::counter_add(obs::Counter::kAcSweepPoints, static_cast<std::int64_t>(freqs.size()));
  warm(sys, freqs);
  // Every grid point is an independent shifted solve; fan them out into
  // per-point outcome slots so one failed point cannot poison the rest,
  // then keep the survivors in grid order.
  auto outcomes =
      util::parallel_try_map<AcPoint>(static_cast<la::index>(freqs.size()), [&](la::index k) {
        return try_ac_point(sys, freqs[static_cast<std::size_t>(k)], out_idx, in_idx);
      });
  std::vector<AcPoint> out;
  out.reserve(outcomes.size());
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    if (outcomes[k].is_ok()) {
      out.push_back(outcomes[k].value());
    } else {
      obs::counter_add(obs::Counter::kAcPointsDropped);
      log_debug("ac_sweep: dropped point at ", freqs[k], " Hz (",
                outcomes[k].status().to_string(), ")");
    }
  }
  return out;
}

}  // namespace

std::vector<AcPoint> ac_sweep(const DescriptorSystem& sys, const std::vector<double>& freqs,
                              la::index out_idx, la::index in_idx) {
  return sweep_impl(sys, freqs, out_idx, in_idx);
}

std::vector<AcPoint> ac_sweep(const mor::DenseSystem& sys, const std::vector<double>& freqs,
                              la::index out_idx, la::index in_idx) {
  return sweep_impl(sys, freqs, out_idx, in_idx);
}

}  // namespace pmtbr::signal
