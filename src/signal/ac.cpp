#include "signal/ac.hpp"

#include <cmath>
#include <numbers>

namespace pmtbr::signal {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

template <typename System>
std::vector<AcPoint> sweep_impl(const System& sys, const std::vector<double>& freqs,
                                la::index out_idx, la::index in_idx) {
  PMTBR_REQUIRE(out_idx < sys.num_outputs() && in_idx < sys.num_inputs(),
                "transfer entry out of range");
  std::vector<AcPoint> out;
  out.reserve(freqs.size());
  for (const double f : freqs) {
    const la::cd h = sys.transfer(la::cd(0.0, kTwoPi * f))(out_idx, in_idx);
    out.push_back({f, std::abs(h), std::arg(h)});
  }
  return out;
}

}  // namespace

std::vector<AcPoint> ac_sweep(const DescriptorSystem& sys, const std::vector<double>& freqs,
                              la::index out_idx, la::index in_idx) {
  return sweep_impl(sys, freqs, out_idx, in_idx);
}

std::vector<AcPoint> ac_sweep(const mor::DenseSystem& sys, const std::vector<double>& freqs,
                              la::index out_idx, la::index in_idx) {
  return sweep_impl(sys, freqs, out_idx, in_idx);
}

}  // namespace pmtbr::signal
