#include "signal/ac.hpp"

#include <cmath>
#include <numbers>

#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::signal {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Hook for warming per-system caches before the parallel fan-out: sparse
// descriptor systems freeze their shifted-pencil pivot order here so every
// pool thread refactors deterministically; dense models need nothing.
void warm(const DescriptorSystem& sys, double f_hz) {
  sys.prepare_shifted(la::cd(0.0, kTwoPi * f_hz));
}
void warm(const mor::DenseSystem&, double) {}

template <typename System>
std::vector<AcPoint> sweep_impl(const System& sys, const std::vector<double>& freqs,
                                la::index out_idx, la::index in_idx) {
  PMTBR_REQUIRE(out_idx < sys.num_outputs() && in_idx < sys.num_inputs(),
                "transfer entry out of range");
  if (freqs.empty()) return {};
  PMTBR_TRACE_SCOPE("ac.sweep");
  obs::counter_add(obs::Counter::kAcSweepPoints, static_cast<std::int64_t>(freqs.size()));
  warm(sys, freqs.front());
  // Every grid point is an independent shifted solve; fan them out and
  // store each result at its own index.
  return util::parallel_map<AcPoint>(static_cast<la::index>(freqs.size()), [&](la::index k) {
    const double f = freqs[static_cast<std::size_t>(k)];
    const la::cd h = sys.transfer(la::cd(0.0, kTwoPi * f))(out_idx, in_idx);
    return AcPoint{f, std::abs(h), std::arg(h)};
  });
}

}  // namespace

std::vector<AcPoint> ac_sweep(const DescriptorSystem& sys, const std::vector<double>& freqs,
                              la::index out_idx, la::index in_idx) {
  return sweep_impl(sys, freqs, out_idx, in_idx);
}

std::vector<AcPoint> ac_sweep(const mor::DenseSystem& sys, const std::vector<double>& freqs,
                              la::index out_idx, la::index in_idx) {
  return sweep_impl(sys, freqs, out_idx, in_idx);
}

}  // namespace pmtbr::signal
