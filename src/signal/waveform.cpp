#include "signal/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace pmtbr::signal {

Waveform::Waveform(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  PMTBR_REQUIRE(times_.size() == values_.size() && !times_.empty(),
                "waveform needs matching, nonempty time/value arrays");
  PMTBR_REQUIRE(std::is_sorted(times_.begin(), times_.end()), "times must be ascending");
}

double Waveform::value(double t) const {
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  if (span <= 0) return values_[hi];
  const double a = (t - times_[lo]) / span;
  return values_[lo] + a * (values_[hi] - values_[lo]);
}

Waveform make_square_wave(const SquareWaveSpec& spec, double t_end, Rng& rng) {
  PMTBR_REQUIRE(spec.period > 0 && t_end > 0, "period and t_end must be positive");
  PMTBR_REQUIRE(spec.rise_time > 0 && spec.rise_time < 0.25 * spec.period,
                "rise time must be positive and well below the period");
  std::vector<double> t{0.0}, v{0.0};
  double cycle_start = spec.phase;
  // Skip whole cycles that end before t = 0.
  while (cycle_start + spec.period < 0) cycle_start += spec.period;

  const auto dither = [&] { return spec.dither_fraction * spec.period * rng.uniform(-0.5, 0.5); };
  while (cycle_start < t_end) {
    const double rise_at = cycle_start + dither();
    const double fall_at = cycle_start + spec.duty * spec.period + dither();
    if (rise_at >= t.back() && rise_at < t_end) {
      t.push_back(rise_at);
      v.push_back(0.0);
      t.push_back(rise_at + spec.rise_time);
      v.push_back(spec.amplitude);
    }
    if (fall_at > t.back() && fall_at < t_end) {
      t.push_back(fall_at);
      v.push_back(spec.amplitude);
      t.push_back(fall_at + spec.rise_time);
      v.push_back(0.0);
    }
    cycle_start += spec.period;
  }
  t.push_back(t_end + spec.period);
  v.push_back(v.back());
  return Waveform(std::move(t), std::move(v));
}

std::vector<Waveform> make_square_bank(const SquareWaveSpec& spec, double t_end,
                                       const std::vector<double>& phases, Rng& rng) {
  std::vector<Waveform> bank;
  bank.reserve(phases.size());
  for (const double ph : phases) {
    SquareWaveSpec s = spec;
    s.phase = ph;
    bank.push_back(make_square_wave(s, t_end, rng));
  }
  return bank;
}

std::vector<Waveform> make_bulk_currents(const BulkCurrentSpec& spec, double t_end, Rng& rng) {
  PMTBR_REQUIRE(spec.num_ports >= 1 && spec.num_sources >= 1, "need ports and sources");
  // Global switching events: one pulse per source per clock cycle, with a
  // source-specific offset within the cycle plus small jitter.
  const index cycles = std::max<index>(1, static_cast<index>(t_end / spec.clock_period));
  std::vector<std::vector<double>> event_times(static_cast<std::size_t>(spec.num_sources));
  for (index s = 0; s < spec.num_sources; ++s) {
    const double offset = rng.uniform(0.0, spec.clock_period);
    for (index c = 0; c < cycles; ++c) {
      const double jitter = spec.jitter_fraction * spec.clock_period * rng.uniform(-0.5, 0.5);
      event_times[static_cast<std::size_t>(s)].push_back(
          static_cast<double>(c) * spec.clock_period + offset + jitter);
    }
  }
  // Port gains: sparse-ish random mixture of sources.
  MatD gains(spec.num_ports, spec.num_sources);
  for (index p = 0; p < spec.num_ports; ++p)
    for (index s = 0; s < spec.num_sources; ++s)
      gains(p, s) = rng.normal() * (rng.uniform() < 0.6 ? 1.0 : 0.1);

  // Build each port waveform as a sum of triangular pulses at the source
  // events, scaled by the port's gain — evaluated on a shared uniform grid
  // so the piecewise-linear representation stays simple.
  const index grid_n = std::max<index>(256, cycles * 64);
  std::vector<double> grid(static_cast<std::size_t>(grid_n));
  for (index k = 0; k < grid_n; ++k)
    grid[static_cast<std::size_t>(k)] = t_end * static_cast<double>(k) / static_cast<double>(grid_n - 1);

  const auto pulse = [&](double t, double center) {
    const double d = std::abs(t - center) / spec.pulse_width;
    return d >= 1.0 ? 0.0 : (1.0 - d);
  };

  std::vector<Waveform> bank;
  bank.reserve(static_cast<std::size_t>(spec.num_ports));
  for (index p = 0; p < spec.num_ports; ++p) {
    std::vector<double> vals(static_cast<std::size_t>(grid_n), 0.0);
    for (index s = 0; s < spec.num_sources; ++s) {
      const double g = gains(p, s) * spec.amplitude;
      if (g == 0) continue;
      for (const double ev : event_times[static_cast<std::size_t>(s)]) {
        // Only touch grid points near the event.
        const double lo = ev - spec.pulse_width, hi = ev + spec.pulse_width;
        const index k0 = std::max<index>(
            0, static_cast<index>(lo / t_end * static_cast<double>(grid_n - 1)) - 1);
        const index k1 = std::min<index>(
            grid_n - 1, static_cast<index>(hi / t_end * static_cast<double>(grid_n - 1)) + 1);
        for (index k = k0; k <= k1; ++k)
          vals[static_cast<std::size_t>(k)] += g * pulse(grid[static_cast<std::size_t>(k)], ev);
      }
    }
    bank.emplace_back(grid, std::move(vals));
  }
  return bank;
}

MatD sample_waveforms(const std::vector<Waveform>& bank, double t_end, index num_samples) {
  PMTBR_REQUIRE(!bank.empty() && num_samples >= 1, "need waveforms and samples");
  MatD u(static_cast<index>(bank.size()), num_samples);
  for (index l = 0; l < num_samples; ++l) {
    const double t = t_end * (static_cast<double>(l) + 0.5) / static_cast<double>(num_samples);
    for (index k = 0; k < static_cast<index>(bank.size()); ++k)
      u(k, l) = bank[static_cast<std::size_t>(k)].value(t);
  }
  return u;
}

}  // namespace pmtbr::signal
