// Principal angles between subspaces, used to measure convergence of the
// PMTBR projection subspace to the exact TBR eigenspace (paper Fig. 6).
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pmtbr::signal {

/// Principal angles (radians, ascending) between span(a) and span(b);
/// columns need not be orthonormal (orthonormalized internally).
std::vector<double> principal_angles(const la::MatD& a, const la::MatD& b);

/// Largest principal angle between span(a) and span(b) — the "angle between
/// subspaces". For a single vector vs. a subspace this is the angle between
/// the vector and its projection.
double subspace_angle(const la::MatD& a, const la::MatD& b);

}  // namespace pmtbr::signal
