// AC sweep: transfer-function magnitude/phase series over a frequency grid,
// for full and reduced models — the data behind Fig. 11's transfer-function
// overlay.
#pragma once

#include <vector>

#include "circuit/descriptor.hpp"
#include "mor/state_space.hpp"

namespace pmtbr::signal {

struct AcPoint {
  double f_hz = 0.0;
  double magnitude = 0.0;  // |H(j2πf)| of the selected entry
  double phase_rad = 0.0;
};

/// Sweep of transfer-function entry (out_idx, in_idx).
std::vector<AcPoint> ac_sweep(const DescriptorSystem& sys, const std::vector<double>& freqs,
                              la::index out_idx = 0, la::index in_idx = 0);
std::vector<AcPoint> ac_sweep(const mor::DenseSystem& sys, const std::vector<double>& freqs,
                              la::index out_idx = 0, la::index in_idx = 0);

}  // namespace pmtbr::signal
