// Waveform generators for the input-correlated experiments (paper Sec.
// VI-C): square waves with dithered edge timings, correlated pulse trains
// mimicking MOS bulk currents, and a piecewise-linear waveform type used by
// the transient engine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace pmtbr::signal {

using la::index;
using la::MatD;

/// Square wave with finite rise/fall and per-edge timing dither (paper
/// Fig. 12: "timings randomly dithered about 10% of the period").
struct SquareWaveSpec {
  double period = 1e-8;
  double amplitude = 1.0;
  double rise_time = 2e-10;
  double duty = 0.5;
  double dither_fraction = 0.1;  // edge jitter as a fraction of the period
  double phase = 0.0;            // constant offset, in seconds
};

/// A sampled waveform: value(t) by linear interpolation, constant outside
/// the sample range.
class Waveform {
 public:
  Waveform() = default;
  Waveform(std::vector<double> times, std::vector<double> values);

  double value(double t) const;
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

/// One realization of a dithered square wave covering [0, t_end].
Waveform make_square_wave(const SquareWaveSpec& spec, double t_end, Rng& rng);

/// A bank of dithered square waves sharing a common clock (correlated
/// inputs): all waves have the spec's period; per-wave phases are drawn
/// from `phases` (seconds). Each edge gets independent dither.
std::vector<Waveform> make_square_bank(const SquareWaveSpec& spec, double t_end,
                                       const std::vector<double>& phases, Rng& rng);

/// Correlated pulse-train bank mimicking MOS bulk currents: `num_sources`
/// global switching events drive all ports through a random (seeded) gain
/// pattern, giving an input ensemble of numerical rank ≈ num_sources.
struct BulkCurrentSpec {
  index num_ports = 150;
  index num_sources = 5;
  double clock_period = 1e-8;
  double pulse_width = 5e-10;
  double amplitude = 1e-4;
  double jitter_fraction = 0.05;
};
std::vector<Waveform> make_bulk_currents(const BulkCurrentSpec& spec, double t_end, Rng& rng);

/// Samples a waveform bank into the p×N matrix consumed by
/// mor::input_correlated_tbr (column l = all port values at time t_l).
MatD sample_waveforms(const std::vector<Waveform>& bank, double t_end, index num_samples);

}  // namespace pmtbr::signal
