#include "signal/transient.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "la/ops.hpp"
#include "sparse/splu.hpp"

namespace pmtbr::signal {

using la::index;
using la::MatD;

// Trapezoidal rule:
//   (E/h - A/2) x_{k+1} = (E/h + A/2) x_k + B (u_k + u_{k+1}) / 2.
TransientResult simulate(const DescriptorSystem& sys, const InputFunction& u,
                         const TransientOptions& opts) {
  PMTBR_REQUIRE(opts.steps >= 1 && opts.t_end > 0, "bad transient options");
  const index n = sys.n();
  const double h = opts.t_end / static_cast<double>(opts.steps);

  const sparse::CsrD lhs = sparse::combine(1.0 / h, sys.e(), -0.5, sys.a());
  const sparse::CsrD rhs_mat = sparse::combine(1.0 / h, sys.e(), 0.5, sys.a());
  const sparse::SparseLuD lu(lhs, sys.ordering());

  TransientResult out;
  out.times.resize(static_cast<std::size_t>(opts.steps) + 1);
  out.outputs = MatD(opts.steps + 1, sys.num_outputs());

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> uk = u(0.0);
  PMTBR_REQUIRE(static_cast<index>(uk.size()) == sys.num_inputs(), "input size mismatch");

  const auto record = [&](index step) {
    for (index o = 0; o < sys.num_outputs(); ++o) {
      double acc = 0;
      for (index j = 0; j < n; ++j) acc += sys.c()(o, j) * x[static_cast<std::size_t>(j)];
      out.outputs(step, o) = acc;
    }
  };
  out.times[0] = 0.0;
  record(0);

  for (index k = 0; k < opts.steps; ++k) {
    const double t1 = static_cast<double>(k + 1) * h;
    const std::vector<double> u1 = u(t1);
    std::vector<double> rhs = rhs_mat.matvec(x);
    for (index i = 0; i < n; ++i) {
      double acc = 0;
      for (index j = 0; j < sys.num_inputs(); ++j)
        acc += sys.b()(i, j) * 0.5 *
               (uk[static_cast<std::size_t>(j)] + u1[static_cast<std::size_t>(j)]);
      rhs[static_cast<std::size_t>(i)] += acc;
    }
    x = lu.solve(std::move(rhs));
    uk = u1;
    out.times[static_cast<std::size_t>(k) + 1] = t1;
    record(k + 1);
  }
  return out;
}

TransientResult simulate(const mor::DenseSystem& sys, const InputFunction& u,
                         const TransientOptions& opts) {
  PMTBR_REQUIRE(opts.steps >= 1 && opts.t_end > 0, "bad transient options");
  const index n = sys.n();
  const double h = opts.t_end / static_cast<double>(opts.steps);

  MatD lhs(n, n), rhs_mat(n, n);
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < n; ++j) {
      lhs(i, j) = sys.e()(i, j) / h - 0.5 * sys.a()(i, j);
      rhs_mat(i, j) = sys.e()(i, j) / h + 0.5 * sys.a()(i, j);
    }
  const la::LuD lu(lhs);

  TransientResult out;
  out.times.resize(static_cast<std::size_t>(opts.steps) + 1);
  out.outputs = MatD(opts.steps + 1, sys.num_outputs());

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> uk = u(0.0);
  PMTBR_REQUIRE(static_cast<index>(uk.size()) == sys.num_inputs(), "input size mismatch");

  const auto record = [&](index step) {
    for (index o = 0; o < sys.num_outputs(); ++o) {
      double acc = 0;
      for (index j = 0; j < n; ++j) acc += sys.c()(o, j) * x[static_cast<std::size_t>(j)];
      out.outputs(step, o) = acc;
    }
  };
  out.times[0] = 0.0;
  record(0);

  for (index k = 0; k < opts.steps; ++k) {
    const double t1 = static_cast<double>(k + 1) * h;
    const std::vector<double> u1 = u(t1);
    std::vector<double> rhs = la::matvec(rhs_mat, x);
    for (index i = 0; i < n; ++i) {
      double acc = 0;
      for (index j = 0; j < sys.num_inputs(); ++j)
        acc += sys.b()(i, j) * 0.5 *
               (uk[static_cast<std::size_t>(j)] + u1[static_cast<std::size_t>(j)]);
      rhs[static_cast<std::size_t>(i)] += acc;
    }
    x = lu.solve(std::move(rhs));
    uk = u1;
    out.times[static_cast<std::size_t>(k) + 1] = t1;
    record(k + 1);
  }
  return out;
}

InputFunction bank_input(const std::vector<Waveform>& bank) {
  return [bank](double t) {
    std::vector<double> u(bank.size());
    for (std::size_t k = 0; k < bank.size(); ++k) u[k] = bank[k].value(t);
    return u;
  };
}

OutputError compare_outputs(const TransientResult& ref, const TransientResult& test) {
  PMTBR_REQUIRE(ref.outputs.rows() == test.outputs.rows() &&
                    ref.outputs.cols() == test.outputs.cols(),
                "output grids must match");
  OutputError e;
  double sum = 0;
  for (index i = 0; i < ref.outputs.rows(); ++i)
    for (index j = 0; j < ref.outputs.cols(); ++j) {
      const double d = std::abs(ref.outputs(i, j) - test.outputs(i, j));
      e.max_abs = std::max(e.max_abs, d);
      e.max_ref = std::max(e.max_ref, std::abs(ref.outputs(i, j)));
      sum += d * d;
    }
  e.rms = std::sqrt(sum / static_cast<double>(ref.outputs.size()));
  return e;
}

}  // namespace pmtbr::signal
