#include "mor/state_space.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "la/ops.hpp"
#include "la/schur.hpp"

namespace pmtbr::mor {

DenseSystem::DenseSystem(MatD e, MatD a, MatD b, MatD c)
    : e_(std::move(e)), a_(std::move(a)), b_(std::move(b)), c_(std::move(c)) {
  PMTBR_REQUIRE(a_.rows() == a_.cols(), "A must be square");
  PMTBR_REQUIRE(e_.rows() == a_.rows() && e_.cols() == a_.cols(), "E shape mismatch");
  PMTBR_REQUIRE(b_.rows() == a_.rows(), "B row mismatch");
  PMTBR_REQUIRE(c_.cols() == a_.rows(), "C column mismatch");
}

DenseSystem DenseSystem::standard(MatD a, MatD b, MatD c) {
  MatD e = MatD::identity(a.rows());
  return DenseSystem(std::move(e), std::move(a), std::move(b), std::move(c));
}

MatC DenseSystem::transfer(cd s) const {
  const index n = a_.rows();
  MatC pencil(n, n);
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < n; ++j) pencil(i, j) = s * e_(i, j) - a_(i, j);
  const la::LuC lu(pencil);
  return la::matmul(la::to_complex(c_), lu.solve(la::to_complex(b_)));
}

std::vector<cd> DenseSystem::poles() const {
  // Generalized eigenvalues via E^{-1} A (reduced E is small and, for every
  // algorithm here, nonsingular by construction of the projection bases).
  const la::LuD lu(e_);
  return la::eigenvalues(lu.solve(a_));
}

bool DenseSystem::is_stable(double margin) const {
  for (const cd p : poles())
    if (p.real() > -margin) return false;
  return true;
}

MatD sparse_times_dense(const sparse::CsrD& m, const MatD& v) {
  PMTBR_REQUIRE(m.cols() == v.rows(), "sparse*dense shape mismatch");
  MatD out(m.rows(), v.cols());
  for (index i = 0; i < m.rows(); ++i) {
    for (index k = m.row_ptr()[static_cast<std::size_t>(i)];
         k < m.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const double val = m.values()[static_cast<std::size_t>(k)];
      const index col = m.col_idx()[static_cast<std::size_t>(k)];
      for (index j = 0; j < v.cols(); ++j) out(i, j) += val * v(col, j);
    }
  }
  return out;
}

DenseSystem project(const DescriptorSystem& sys, const MatD& v, const MatD& w) {
  PMTBR_REQUIRE(v.rows() == sys.n() && w.rows() == sys.n(), "basis row mismatch");
  PMTBR_REQUIRE(v.cols() == w.cols(), "basis column mismatch");
  PMTBR_CHECK_FINITE(v, "projection basis V");
  PMTBR_CHECK_FINITE(w, "projection basis W");
  // Wᵀ·X products read W transposed in place (matmul_at) — no materialized
  // transpose, and the blocked kernel handles the tall-times-skinny shapes.
  MatD er = la::matmul_at(w, sparse_times_dense(sys.e(), v));
  MatD ar = la::matmul_at(w, sparse_times_dense(sys.a(), v));
  MatD br = la::matmul_at(w, sys.b());
  MatD cr = la::matmul(sys.c(), v);
  return DenseSystem(std::move(er), std::move(ar), std::move(br), std::move(cr));
}

DenseSystem project_congruence(const DescriptorSystem& sys, const MatD& v) {
  return project(sys, v, v);
}

}  // namespace pmtbr::mor
