#include "mor/mpproj.hpp"

#include "la/ops.hpp"

namespace pmtbr::mor {

MpprojResult mpproj(const DescriptorSystem& sys, const std::vector<FrequencySample>& samples,
                    const MpprojOptions& opts) {
  PMTBR_REQUIRE(!samples.empty(), "need at least one frequency sample");
  PMTBR_REQUIRE(opts.deflation_tol > 0, "deflation_tol must be positive");
  PMTBR_CHECK_FINITE(sys.b(), "mpproj input matrix B");
  const index n = sys.n();
  std::vector<std::vector<double>> basis;

  for (const auto& fs : samples) {
    if (opts.max_order > 0 && static_cast<index>(basis.size()) >= opts.max_order) break;
    const la::MatC z = sys.solve_shifted(fs.s, la::to_complex(sys.b()));
    const MatD block =
        (std::abs(fs.s.imag()) == 0.0) ? la::real_part(z) : la::realify_columns(z);
    for (index j = 0; j < block.cols(); ++j) {
      if (opts.max_order > 0 && static_cast<index>(basis.size()) >= opts.max_order) break;
      auto v = block.col(j);
      const double vnorm = la::norm2(v);
      if (vnorm == 0) continue;
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& q : basis) {
          double d = 0;
          for (index i = 0; i < n; ++i)
            d += q[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
          for (index i = 0; i < n; ++i)
            v[static_cast<std::size_t>(i)] -= d * q[static_cast<std::size_t>(i)];
        }
      }
      const double beta = la::norm2(v);
      if (beta <= opts.deflation_tol * vnorm) continue;
      for (auto& x : v) x /= beta;
      basis.push_back(std::move(v));
    }
  }

  PMTBR_ENSURE(!basis.empty(), "mpproj produced an empty basis");
  MatD v(n, static_cast<index>(basis.size()));
  for (index j = 0; j < v.cols(); ++j) v.set_col(j, basis[static_cast<std::size_t>(j)]);

  MpprojResult out;
  out.model.v = v;
  out.model.w = v;
  out.model.system = project_congruence(sys, v);
  return out;
}

}  // namespace pmtbr::mor
