#include "mor/mpproj.hpp"

#include <cmath>
#include <vector>

#include "la/gemm_kernel.hpp"
#include "la/ops.hpp"

namespace pmtbr::mor {

MpprojResult mpproj(const DescriptorSystem& sys, const std::vector<FrequencySample>& samples,
                    const MpprojOptions& opts) {
  PMTBR_REQUIRE(!samples.empty(), "need at least one frequency sample");
  PMTBR_REQUIRE(opts.deflation_tol > 0, "deflation_tol must be positive");
  PMTBR_CHECK_FINITE(sys.b(), "mpproj input matrix B");
  const index n = sys.n();
  // Basis stored TRANSPOSED (row l = l-th direction): each sample block is
  // projected against the whole basis with two GEMM passes; only the
  // within-block orthogonalization and deflation decisions stay per-column.
  std::vector<double> basis_t;
  index rank = 0;

  for (const auto& fs : samples) {
    if (opts.max_order > 0 && rank >= opts.max_order) break;
    const la::MatC z = sys.solve_shifted(fs.s, la::to_complex(sys.b()));
    MatD block =
        (std::abs(fs.s.imag()) == 0.0) ? la::real_part(z) : la::realify_columns(z);
    const index k = block.cols();

    // Deflation thresholds come from the PRE-projection column norms.
    std::vector<double> vnorms(static_cast<std::size_t>(k));
    for (index j = 0; j < k; ++j) vnorms[static_cast<std::size_t>(j)] = la::norm2(block.col(j));

    if (rank > 0) {
      MatD proj(rank, k);
      for (int pass = 0; pass < 2; ++pass) {
        la::detail::gemm<double, false>(rank, k, n, basis_t.data(), n, 1, block.data(), k, 1,
                                        proj.data(), k, la::detail::GemmAcc::kSet);
        la::detail::gemm<double, false>(n, k, rank, basis_t.data(), 1, n, proj.data(), k, 1,
                                        block.data(), k, la::detail::GemmAcc::kSub);
      }
    }

    const index block_start = rank;
    for (index j = 0; j < k; ++j) {
      if (opts.max_order > 0 && rank >= opts.max_order) break;
      const double vnorm = vnorms[static_cast<std::size_t>(j)];
      if (vnorm == 0) continue;
      auto v = block.col(j);
      // Orthogonalize against the directions this same block introduced.
      for (int pass = 0; pass < 2; ++pass) {
        for (index l = block_start; l < rank; ++l) {
          const double* q = basis_t.data() + static_cast<std::size_t>(l * n);
          double d = 0;
          for (index i = 0; i < n; ++i) d += q[i] * v[static_cast<std::size_t>(i)];
          for (index i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] -= d * q[i];
        }
      }
      const double beta = la::norm2(v);
      if (beta <= opts.deflation_tol * vnorm) continue;
      for (auto& x : v) x /= beta;
      basis_t.insert(basis_t.end(), v.begin(), v.end());
      ++rank;
    }
  }

  PMTBR_ENSURE(rank > 0, "mpproj produced an empty basis");
  MatD v(n, rank);
  for (index j = 0; j < rank; ++j)
    for (index i = 0; i < n; ++i) v(i, j) = basis_t[static_cast<std::size_t>(j * n + i)];

  MpprojResult out;
  out.model.v = v;
  out.model.w = v;
  out.model.system = project_congruence(sys, v);
  return out;
}

}  // namespace pmtbr::mor
