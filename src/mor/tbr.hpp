// Exact truncated balanced realization (square-root method) — the baseline
// PMTBR is measured against, plus Hankel singular values and the Glover
// error bound 2·Σ tail.
//
// Gramians come from the sign-function Lyapunov solver, factors from the
// symmetric eigensolver; the balancing projection is the standard
// V = Lx V_svd Σ^{-1/2}, W = Ly U_svd Σ^{-1/2}. Requires nonsingular E
// (converted to standard form); all bundled generators satisfy this —
// handling singular E painlessly is precisely PMTBR's advantage
// (paper Sec. V-A).
#pragma once

#include <vector>

#include "lyap/lyapunov.hpp"
#include "mor/state_space.hpp"

namespace pmtbr::mor {

struct TbrOptions {
  index fixed_order = -1;   // if > 0, wins over error_tol
  double error_tol = 0.0;   // pick smallest order with 2·Σ_{i>q} σ_i <= error_tol·(2·Σσ)
  lyap::LyapunovOptions lyapunov{};
};

struct TbrResult {
  ReducedModel model;
  std::vector<double> hsv;   // all Hankel singular values, descending
  double error_bound = 0.0;  // 2·Σ_{i>q} σ_i at the chosen order
};

/// Balanced truncation of a descriptor system (E must be invertible).
TbrResult tbr(const DescriptorSystem& sys, const TbrOptions& opts = {});

/// Balanced truncation of dense standard-form matrices.
TbrResult tbr_dense(const MatD& a, const MatD& b, const MatD& c, const TbrOptions& opts = {});

/// Nested re-truncation: the square-root balancing bases are ordered by
/// Hankel singular value, so the order-q TBR model is the projection onto
/// the first q columns of a higher-order result's bases. Lets order sweeps
/// reuse one Gramian computation.
TbrResult tbr_truncate(const DescriptorSystem& sys, const TbrResult& full, index order);

/// Hankel singular values only.
std::vector<double> hankel_singular_values(const DescriptorSystem& sys,
                                           const lyap::LyapunovOptions& opts = {});

/// Glover bound 2·Σ_{i>order} σ_i.
double tbr_error_bound(const std::vector<double>& hsv, index order);

}  // namespace pmtbr::mor
