// Input-correlated TBR (paper Algorithm 3): exploits correlation between
// port waveforms to reduce massively coupled networks far below the port
// count.
//
// Given samples of the input waveforms (matrix U, one column per time
// sample), the input correlation K = U U^T / N is factored by SVD and the
// PMTBR sample vectors are drawn as z = (sE - A)^{-1} B V_K r with
// r ~ N(0, S_K^2 / N) — so sampling effort concentrates on input directions
// that actually occur. A deterministic variant uses the whole scaled
// direction block B V_K S_K/√N at every frequency point.
#pragma once

#include <cstdint>

#include "mor/sampling.hpp"
#include "mor/state_space.hpp"

namespace pmtbr::mor {

struct InputCorrelatedOptions {
  std::vector<Band> bands{Band{}};
  index num_freq_samples = 20;
  SamplingScheme scheme = SamplingScheme::kUniform;

  /// Random draws per frequency point (Algorithm 3 as published); set
  /// draws_per_frequency = 0 for the deterministic blocked variant.
  index draws_per_frequency = 2;
  std::uint64_t seed = 1234;

  /// Input directions with singular value below this (relative to the
  /// largest) are dropped from V_K.
  double input_rank_tol = 1e-6;

  index fixed_order = -1;
  double truncation_tol = 1e-3;  // the paper's Fig. 13 setting
  index max_order = -1;
};

struct InputCorrelatedResult {
  ReducedModel model;
  std::vector<double> input_singular_values;  // S_K of the waveform matrix
  index input_rank = 0;                       // directions retained
  std::vector<double> hankel_estimates;       // squared ZW singular values
};

/// `input_samples` is p×N: one column per sampled instant of the p port
/// waveforms (see signal::sample_waveforms).
InputCorrelatedResult input_correlated_tbr(const DescriptorSystem& sys,
                                           const MatD& input_samples,
                                           const InputCorrelatedOptions& opts = {});

}  // namespace pmtbr::mor
