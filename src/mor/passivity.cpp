#include "mor/passivity.hpp"

#include <cmath>
#include <numbers>

#include "la/eig_sym.hpp"
#include "la/ops.hpp"

namespace pmtbr::mor {

PassivityReport check_passivity(const DenseSystem& sys, const std::vector<double>& grid_hz) {
  PMTBR_REQUIRE(sys.num_inputs() == sys.num_outputs(),
                "passivity check needs a square transfer function");
  PassivityReport rep;

  double max_re = -1e300;
  for (const auto& p : sys.poles()) max_re = std::max(max_re, p.real());
  rep.min_pole_margin = -max_re;
  rep.stable = max_re < 0.0;

  rep.min_dissipation = 1e300;
  rep.dissipative_on_grid = true;
  for (const double f : grid_hz) {
    const la::MatC h = sys.transfer(la::cd(0.0, 2.0 * std::numbers::pi * f));
    // Hermitian part as a real symmetric matrix of twice the size:
    // for M = (H + H^H)/2 = S + jT (S sym, T skew), eig(M) = eig([[S,-T],[T,S]]).
    const la::index p = h.rows();
    la::MatD big(2 * p, 2 * p);
    for (la::index i = 0; i < p; ++i)
      for (la::index j = 0; j < p; ++j) {
        const double s = 0.5 * (h(i, j).real() + h(j, i).real());
        const double t = 0.5 * (h(i, j).imag() - h(j, i).imag());
        big(i, j) = s;
        big(p + i, p + j) = s;
        big(i, p + j) = -t;
        big(p + i, j) = t;
      }
    const auto eig = la::eig_sym(big);
    const double lmin = eig.values.back();
    if (lmin < rep.min_dissipation) {
      rep.min_dissipation = lmin;
      rep.worst_frequency_hz = f;
    }
  }
  // Tolerance scaled by the transfer function magnitude encountered.
  if (rep.min_dissipation < 0.0) rep.dissipative_on_grid = false;
  return rep;
}

bool is_structurally_passive(const DescriptorSystem& sys, double tol) {
  PMTBR_REQUIRE(tol >= 0, "tolerance must be nonnegative");
  const la::MatD e = sys.e().to_dense();
  if (la::max_abs_diff(e, la::transpose(e)) > tol * (1.0 + la::norm_inf(e))) return false;
  const auto eig_e = la::eig_sym(e);
  if (eig_e.values.back() < -tol * std::max(eig_e.values.front(), 1.0)) return false;

  la::MatD sa = sys.a().to_dense();
  sa += la::transpose(sys.a().to_dense());
  const auto eig_a = la::eig_sym(sa);
  if (eig_a.values.front() > tol * std::max(std::abs(eig_a.values.back()), 1.0)) return false;

  return la::max_abs_diff(sys.b(), la::transpose(sys.c())) <=
         tol * (1.0 + la::norm_inf(sys.b()));
}

}  // namespace pmtbr::mor
