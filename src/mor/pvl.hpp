// PVL — Padé via Lanczos (Feldmann & Freund), the paper's second
// Krylov-subspace baseline. SISO: a nonsymmetric two-sided Lanczos
// iteration on K = (s0 E − A)^{-1} E with starting vectors
// r = (s0 E − A)^{-1} b and c matches 2q transfer-function moments about s0
// with a q-state model.
//
// The reduced model is returned in descriptor form E_r = T, A_r = s0 T − I,
// B_r = ||r|| e1, C_r = c^T V, which reproduces the Padé approximant
// H_q(s) = c^T V (I + (s − s0) T)^{-1} W^T r.
#pragma once

#include "mor/state_space.hpp"

namespace pmtbr::mor {

struct PvlOptions {
  index order = 10;          // Lanczos steps == model order
  double s0 = 0.0;           // real expansion point (rad/s)
  double breakdown_tol = 1e-13;
};

struct PvlResult {
  ReducedModel model;
  index steps_completed = 0;  // < order on (near-)breakdown
};

/// PVL reduction of a SISO descriptor system; requires (s0 E - A)
/// nonsingular. Throws if the system is not SISO.
PvlResult pvl(const DescriptorSystem& sys, const PvlOptions& opts = {});

}  // namespace pmtbr::mor
