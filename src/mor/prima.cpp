#include "mor/prima.hpp"

#include <cmath>
#include <vector>

#include "la/gemm_kernel.hpp"
#include "la/ops.hpp"
#include "sparse/splu.hpp"
#include "util/logging.hpp"

namespace pmtbr::mor {

PrimaResult prima(const DescriptorSystem& sys, const PrimaOptions& opts) {
  PMTBR_REQUIRE(opts.num_moments >= 1, "need at least one block moment");
  PMTBR_REQUIRE(opts.deflation_tol > 0, "deflation_tol must be positive");
  PMTBR_REQUIRE(sys.n() > 0, "prima needs a nonempty system");
  PMTBR_CHECK_FINITE(sys.b(), "prima input matrix B");
  const index n = sys.n();
  const index p = sys.num_inputs();

  // Factor (s0 E - A) once; the Krylov operator is (s0 E - A)^{-1} E.
  const sparse::CsrD pencil = [&] {
    if (opts.s0 == 0.0) {
      sparse::CsrD neg_a = sys.a();
      for (auto& v : neg_a.values()) v = -v;
      return neg_a;
    }
    return sparse::combine(opts.s0, sys.e(), -1.0, sys.a());
  }();
  const sparse::SparseLuD lu(pencil, sys.ordering());

  // Block Arnoldi with deflation. The committed basis is stored TRANSPOSED
  // (row l = l-th orthonormal direction, contiguous) so each new moment
  // block is projected against all of it with two GEMM passes; only the
  // within-block orthogonalization and the deflation decisions stay
  // per-column.
  std::vector<double> basis_t;
  index rank = 0;
  MatD block = lu.solve(sys.b());  // R0 = (s0 E - A)^{-1} B

  for (index moment = 0; moment < opts.num_moments; ++moment) {
    const index k = block.cols();
    // Deflation thresholds come from the PRE-projection column norms.
    std::vector<double> vnorms(static_cast<std::size_t>(k));
    for (index j = 0; j < k; ++j) vnorms[static_cast<std::size_t>(j)] = la::norm2(block.col(j));

    // Two passes of block classical Gram–Schmidt against the committed
    // basis: proj = Q·B, B ← B − Qᵀ·proj.
    if (rank > 0) {
      MatD proj(rank, k);
      for (int pass = 0; pass < 2; ++pass) {
        la::detail::gemm<double, false>(rank, k, n, basis_t.data(), n, 1, block.data(), k, 1,
                                        proj.data(), k, la::detail::GemmAcc::kSet);
        la::detail::gemm<double, false>(n, k, rank, basis_t.data(), 1, n, proj.data(), k, 1,
                                        block.data(), k, la::detail::GemmAcc::kSub);
      }
    }

    std::vector<std::vector<double>> accepted;
    for (index j = 0; j < k; ++j) {
      const double vnorm = vnorms[static_cast<std::size_t>(j)];
      if (vnorm == 0) continue;
      auto v = block.col(j);
      // Within-block orthogonalization against this moment's survivors.
      for (int pass = 0; pass < 2; ++pass) {
        for (const auto& q : accepted) {
          double d = 0;
          for (index i = 0; i < n; ++i)
            d += q[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
          for (index i = 0; i < n; ++i)
            v[static_cast<std::size_t>(i)] -= d * q[static_cast<std::size_t>(i)];
        }
      }
      const double beta = la::norm2(v);
      if (beta <= opts.deflation_tol * vnorm) continue;  // deflated direction
      for (auto& x : v) x /= beta;
      accepted.push_back(std::move(v));
    }
    if (moment + 1 < opts.num_moments) {
      // Next block: (s0 E - A)^{-1} E * (current accepted block). Build it
      // before the accepted vectors are moved into the basis.
      if (accepted.empty()) break;  // fully deflated: Krylov space exhausted
      MatD cur(n, static_cast<index>(accepted.size()));
      for (index j = 0; j < cur.cols(); ++j)
        cur.set_col(j, accepted[static_cast<std::size_t>(j)]);
      block = lu.solve(sparse_times_dense(sys.e(), cur));
    }
    for (auto& q : accepted) {
      basis_t.insert(basis_t.end(), q.begin(), q.end());
      ++rank;
    }
  }

  PMTBR_ENSURE(rank > 0, "PRIMA produced an empty basis");
  MatD v(n, rank);
  for (index j = 0; j < rank; ++j)
    for (index i = 0; i < n; ++i) v(i, j) = basis_t[static_cast<std::size_t>(j * n + i)];
  log_debug("prima: basis size ", v.cols(), " (", opts.num_moments, " moments x ", p, " ports)");

  PrimaResult out;
  out.model.v = v;
  out.model.w = v;
  out.model.system = project_congruence(sys, v);
  return out;
}

}  // namespace pmtbr::mor
