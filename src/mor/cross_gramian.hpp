// Cross-Gramian PMTBR (paper Sec. V-D): two-sided sampled reduction for
// nonsymmetric systems using one matrix instead of two Gramians.
//
// Controllability-side samples z^R = (sE - A)^{-1} B and observability-side
// samples z^L = (sE - A)^{-T} C^T are compressed into a joint orthonormal
// basis Q; the n×n eigenproblem of Z^L (Z^R)^T collapses to the small
// problem R^R (R^L)^T y = λ y with Z^R = Q R^R, Z^L = Q R^L exactly as the
// paper proposes. Projection uses the dominant right/left eigenvectors.
#pragma once

#include "mor/sampling.hpp"
#include "mor/state_space.hpp"

namespace pmtbr::mor {

struct CrossGramianOptions {
  std::vector<Band> bands{Band{}};
  index num_samples = 30;
  SamplingScheme scheme = SamplingScheme::kUniform;

  index fixed_order = -1;
  double truncation_tol = 1e-8;  // on |λ| tail of the compressed spectrum
  index max_order = -1;
};

struct CrossGramianResult {
  ReducedModel model;
  std::vector<la::cd> eigenvalue_estimates;  // of the sampled cross-Gramian
};

CrossGramianResult cross_gramian_pmtbr(const DescriptorSystem& sys,
                                       const CrossGramianOptions& opts = {});

}  // namespace pmtbr::mor
