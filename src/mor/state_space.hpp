// Dense state-space models (the output type of every reduction algorithm)
// and the projection operation that produces them from sparse descriptor
// systems.
#pragma once

#include <vector>

#include "circuit/descriptor.hpp"
#include "la/matrix.hpp"

namespace pmtbr::mor {

using la::cd;
using la::index;
using la::MatC;
using la::MatD;

/// Small dense descriptor model  E dz/dt = A z + B u, y = C z.
class DenseSystem {
 public:
  DenseSystem() = default;
  DenseSystem(MatD e, MatD a, MatD b, MatD c);

  /// E = I convenience constructor.
  static DenseSystem standard(MatD a, MatD b, MatD c);

  index n() const { return a_.rows(); }
  index num_inputs() const { return b_.cols(); }
  index num_outputs() const { return c_.rows(); }

  const MatD& e() const { return e_; }
  const MatD& a() const { return a_; }
  const MatD& b() const { return b_; }
  const MatD& c() const { return c_; }

  /// H(s) = C (sE - A)^{-1} B.
  MatC transfer(cd s) const;

  /// Generalized eigenvalues of (A, E) — the model's poles.
  std::vector<cd> poles() const;

  /// True if all poles have strictly negative real part.
  bool is_stable(double margin = 0.0) const;

 private:
  MatD e_, a_, b_, c_;
};

/// Result of any projection-based reduction.
struct ReducedModel {
  DenseSystem system;
  MatD v;                               // right projection basis (n×q)
  MatD w;                               // left projection basis (n×q); == v for congruence
  std::vector<double> singular_values;  // method-specific spectrum (may be longer than q)
};

/// Petrov–Galerkin projection of a sparse descriptor system:
///   Er = W^T E V, Ar = W^T A V, Br = W^T B, Cr = C V.
DenseSystem project(const DescriptorSystem& sys, const MatD& v, const MatD& w);

/// Galerkin (congruence) projection, W = V — preserves passivity for
/// RLC-MNA structure (paper Sec. V-E).
DenseSystem project_congruence(const DescriptorSystem& sys, const MatD& v);

/// Sparse E*V / A*V products used by project(); exposed for reuse.
MatD sparse_times_dense(const sparse::CsrD& m, const MatD& v);

}  // namespace pmtbr::mor
