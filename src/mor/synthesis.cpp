#include "mor/synthesis.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "la/ops.hpp"
#include "la/schur.hpp"

namespace pmtbr::mor {

PoleResidue pole_residue(const DenseSystem& sys, index out_idx, index in_idx) {
  PMTBR_REQUIRE(out_idx < sys.num_outputs() && in_idx < sys.num_inputs(),
                "transfer entry out of range");
  const index n = sys.n();
  // Standard form: Ad = E^{-1} A, bd = E^{-1} b.
  const la::LuD lue(sys.e());
  const MatD ad = lue.solve(sys.a());
  const auto bd = lue.solve(sys.b().col(in_idx));

  const la::EigResult right = la::eig(ad);
  const la::EigResult left = la::eig(la::transpose(ad));

  // Match left eigenvectors to right ones by eigenvalue (both sorted by
  // descending magnitude, but conjugate pairs can be permuted).
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  PoleResidue out;
  const double scale = std::abs(right.values.empty() ? cd{1} : right.values.front());

  for (index k = 0; k < n; ++k) {
    const cd lam = right.values[static_cast<std::size_t>(k)];
    index match = -1;
    double best = 1e300;
    for (index j = 0; j < n; ++j) {
      if (used[static_cast<std::size_t>(j)]) continue;
      const double d = std::abs(left.values[static_cast<std::size_t>(j)] - lam);
      if (d < best) {
        best = d;
        match = j;
      }
    }
    PMTBR_ENSURE(match >= 0 && best <= 1e-6 * std::max(scale, 1e-300),
                 "left/right eigenvalue sets do not match (defective system?)");
    used[static_cast<std::size_t>(match)] = 1;

    // r = (c^T v)(w^T b) / (w^T v).
    cd cv{}, wb{}, wv{};
    for (index i = 0; i < n; ++i) {
      cv += cd(sys.c()(out_idx, i)) * right.vectors(i, k);
      wb += left.vectors(i, match) * cd(bd[static_cast<std::size_t>(i)]);
      wv += left.vectors(i, match) * right.vectors(i, k);
    }
    PMTBR_ENSURE(std::abs(wv) > 1e-12, "ill-conditioned eigenvector pairing in pole_residue");
    out.poles.push_back(lam);
    out.residues.push_back(cv * wb / wv);
  }
  return out;
}

cd evaluate(const PoleResidue& pr, cd s) {
  cd acc{};
  for (std::size_t i = 0; i < pr.poles.size(); ++i) acc += pr.residues[i] / (s - pr.poles[i]);
  return acc;
}

circuit::Netlist synthesize_foster_rc(const PoleResidue& pr, const FosterOptions& opts) {
  PMTBR_REQUIRE(!pr.poles.empty(), "no poles to synthesize");
  double rmax = 0;
  for (const auto& r : pr.residues) rmax = std::max(rmax, std::abs(r));

  struct Term {
    double p, r;
  };
  std::vector<Term> terms;
  for (std::size_t i = 0; i < pr.poles.size(); ++i) {
    const cd lam = pr.poles[i];
    const cd res = pr.residues[i];
    if (std::abs(res) <= opts.residue_tol * std::max(rmax, 1e-300)) continue;  // negligible
    if (std::abs(lam.imag()) > opts.imag_tol * std::abs(lam))
      throw std::invalid_argument("complex pole: not an RC driving-point impedance");
    if (lam.real() >= 0)
      throw std::invalid_argument("unstable or integrating pole in RC synthesis");
    if (res.real() <= 0 || std::abs(res.imag()) > opts.imag_tol * std::abs(res))
      throw std::invalid_argument("non-positive residue: not an RC driving-point impedance");
    terms.push_back({-lam.real(), res.real()});
  }
  PMTBR_REQUIRE(!terms.empty(), "all residues negligible; nothing to synthesize");

  // Series chain of parallel RC blocks: Z_i(s) = r/(s+p) = (1/C)/(s + 1/(RC))
  // with C = 1/r, R = r/p.
  circuit::Netlist nl;
  index prev = nl.add_node();
  nl.add_port(prev);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const index next = (i + 1 == terms.size()) ? 0 : nl.add_node();
    const double cval = 1.0 / terms[i].r;
    const double rval = terms[i].r / terms[i].p;
    if (next == 0) {
      nl.add_capacitor(prev, 0, cval);
      nl.add_resistor(prev, 0, rval);
    } else {
      nl.add_capacitor(prev, next, cval);
      nl.add_resistor(prev, next, rval);
    }
    prev = next;
  }
  return nl;
}

}  // namespace pmtbr::mor
