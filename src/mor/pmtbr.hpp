// PMTBR — Poor Man's TBR (paper Algorithm 1) and its frequency-selective
// variant (Algorithm 2).
//
// Samples z_k = (s_k E - A)^{-1} B at quadrature points on the imaginary
// axis, accumulates the weighted sample matrix Z W, and projects onto its
// dominant left singular subspace. The singular values of Z W estimate the
// square roots of the Hankel singular values (X_hat = Z W^2 Z^H), and drive
// both order control and error estimation.
//
// Complex samples are realified ([Re z | Im z]), which is exactly
// equivalent to including the conjugate sample pair as Algorithm 1 does.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mor/compressor.hpp"
#include "mor/sampling.hpp"
#include "mor/state_space.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace pmtbr::mor {

/// Per-sample degradation policy (docs/ROBUSTNESS.md). PMTBR's statistical
/// interpretation tolerates losing individual quadrature samples, so a
/// failed shifted solve is retried, regularized, and finally dropped with
/// its weight redistributed — the run only fails when surviving coverage
/// falls below `min_coverage`.
struct ResilienceOptions {
  /// Retries per failed sample at relatively perturbed shifts s·(1+εk).
  int max_retries = 2;
  /// Relative shift perturbation ε per retry step.
  double retry_shift_eps = 1e-6;
  /// Relative diagonal regularization for the last-resort fallback solve at
  /// the original shift (0 disables the fallback).
  double diag_reg = 1e-8;
  /// Minimum surviving fraction of attempted quadrature weight; below this
  /// the run throws util::StatusError(kCoverageFloor).
  double min_coverage = 0.5;
};

/// What graceful degradation actually did during a run — mirrored into the
/// pmtbr-manifest/1 "degradation" extra (degradation_extra()).
struct SampleFailure {
  index sample = -1;      // index into the effective sample list
  util::Status status;    // final status after retries + regularization
  int retries = 0;        // perturbed-shift attempts made for this sample
};

struct DegradeReport {
  index samples_attempted = 0;
  index samples_ok = 0;
  index samples_dropped = 0;
  index retries = 0;      // total perturbed-shift retry attempts
  index regularized = 0;  // samples rescued by diagonal regularization
  index reweights = 0;    // windows that redistributed dropped weight
  double coverage = 1.0;  // surviving / attempted quadrature weight
  std::vector<SampleFailure> failures;

  bool degraded() const { return samples_dropped > 0 || retries > 0 || regularized > 0; }
};

/// ("degradation", <json>) entry for obs::ManifestExtras, so benches and
/// tests can surface degraded runs in MANIFEST_*.json.
std::pair<std::string, std::string> degradation_extra(const DegradeReport& report);

struct PmtbrOptions {
  /// Frequency band(s) of interest. One band = plain PMTBR over a finite
  /// bandwidth; several bands = frequency-selective TBR (Algorithm 2).
  std::vector<Band> bands{Band{}};
  index num_samples = 30;
  SamplingScheme scheme = SamplingScheme::kUniform;

  /// Order selection: if fixed_order > 0 it wins; otherwise the smallest
  /// order whose trailing singular-value sum is below truncation_tol * σ1.
  index fixed_order = -1;
  double truncation_tol = 1e-8;
  index max_order = -1;  // optional cap (< 0: none)

  /// Adaptive sampling (on-the-fly order control, Sec. V-C): stop adding
  /// samples once the sample count exceeds `adaptive_excess` times the
  /// order estimate. 0 disables adaptation (all samples used).
  double adaptive_excess = 0.0;
  index min_samples = 4;

  /// Optional frequency weighting w(f) (paper Eq. 18): multiplies each
  /// sample's quadrature weight, biasing the Gramian — and hence the
  /// retained directions — toward frequencies where w is large. The
  /// identity weighting reproduces the finite-bandwidth Gramian.
  std::function<double(double f_hz)> weight_fn;

  /// Per-sample failure handling (retry / regularize / drop / floor).
  ResilienceOptions resilience;

  /// Sample-matrix absorption path (kBlocked default; kReference is the
  /// per-column oracle). Both yield the same subspace; the differential
  /// suite asserts end-to-end agreement through the service path.
  CompressorMode compressor = CompressorMode::kBlocked;

  /// Cooperative cancellation (docs/SERVING.md): polled between sampling
  /// windows / absorptions; a fired token aborts the run with
  /// StatusError(kCancelled or kDeadlineExceeded) before any result or
  /// degradation report is produced. The default token is inert.
  util::CancelToken cancel;
};

struct PmtbrResult {
  ReducedModel model;
  std::vector<FrequencySample> samples_used;
  /// Estimated Hankel singular values: squares of the ZW singular values
  /// (with the 1/2π Parseval factor folded into the weights).
  std::vector<double> hankel_estimates;
  /// Per-sample outcomes: retries, regularizations, drops, reweights.
  DegradeReport degradation;
};

/// PMTBR with automatically generated samples per `opts`.
PmtbrResult pmtbr(const DescriptorSystem& sys, const PmtbrOptions& opts = {});

/// PMTBR on caller-provided samples (points anywhere in the closed right
/// half-plane; weights as in Eq. 10).
PmtbrResult pmtbr_with_samples(const DescriptorSystem& sys,
                               const std::vector<FrequencySample>& samples,
                               const PmtbrOptions& opts = {});

/// Adaptive bisection sampling (paper Sec. V-B): starts from a coarse
/// uniform grid on the band and repeatedly bisects the interval whose
/// midpoint sample contributes the largest new direction (residual after
/// projection onto the current basis), until the residual falls below
/// `novelty_tol` (relative to the largest sample norm seen) or the budget
/// is exhausted. Weights follow the local sampling density.
struct AdaptiveOptions {
  Band band{};
  index initial_samples = 4;
  index max_samples = 64;
  double novelty_tol = 1e-7;
};
PmtbrResult pmtbr_adaptive(const DescriptorSystem& sys, const AdaptiveOptions& aopts,
                           const PmtbrOptions& opts = {});

/// Order sweep sharing one sampling + compression pass: returns one result
/// per requested order (clamped to the available rank). Far cheaper than
/// calling pmtbr_with_samples per order in benches and studies. Only the
/// resilience / compressor / cancel fields of `opts` apply (order selection
/// comes from `orders`).
std::vector<PmtbrResult> pmtbr_order_sweep(const DescriptorSystem& sys,
                                           const std::vector<FrequencySample>& samples,
                                           const std::vector<index>& orders,
                                           const PmtbrOptions& opts = {});

/// Convenience alias emphasizing Algorithm 2 usage.
inline PmtbrResult pmtbr_frequency_selective(const DescriptorSystem& sys,
                                             const std::vector<Band>& bands,
                                             PmtbrOptions opts = {}) {
  PMTBR_REQUIRE(!bands.empty(), "need at least one frequency band");
  opts.bands = bands;
  return pmtbr(sys, opts);
}

}  // namespace pmtbr::mor
