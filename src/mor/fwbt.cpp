#include "mor/fwbt.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "la/eig_sym.hpp"
#include "la/ops.hpp"
#include "la/svd.hpp"
#include "util/logging.hpp"

namespace pmtbr::mor {

namespace {

// Controllability Gramian block of the cascade u -> W_i -> G:
//   d/dt [x; xw] = [[A, B Cw], [0, Aw]] [x; xw] + [B Dw; Bw] u.
MatD weighted_controllability(const MatD& a, const MatD& b, const DenseSystem& w,
                              const lyap::LyapunovOptions& lopts) {
  const index n = a.rows(), nw = w.n();
  MatD a_aug(n + nw, n + nw);
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < n; ++j) a_aug(i, j) = a(i, j);
  const MatD bcw = la::matmul(b, w.c());
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < nw; ++j) a_aug(i, n + j) = bcw(i, j);
  for (index i = 0; i < nw; ++i)
    for (index j = 0; j < nw; ++j) a_aug(n + i, n + j) = w.a()(i, j);

  MatD b_aug(n + nw, w.num_inputs());
  // D of the Butterworth weights is zero; support general D anyway.
  for (index i = 0; i < nw; ++i)
    for (index j = 0; j < w.num_inputs(); ++j) b_aug(n + i, j) = w.b()(i, j);

  const MatD p_aug = lyap::controllability_gramian(a_aug, b_aug, lopts);
  MatD p(n, n);
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < n; ++j) p(i, j) = p_aug(i, j);
  return p;
}

// Observability Gramian block of the cascade G -> W_o:
//   states [x; xo], d/dt xo = Ao xo + Bo C x, z = Do C x + Co xo.
MatD weighted_observability(const MatD& a, const MatD& c, const DenseSystem& w,
                            const lyap::LyapunovOptions& lopts) {
  const index n = a.rows(), nw = w.n();
  MatD a_aug(n + nw, n + nw);
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < n; ++j) a_aug(i, j) = a(i, j);
  const MatD boc = la::matmul(w.b(), c);
  for (index i = 0; i < nw; ++i)
    for (index j = 0; j < n; ++j) a_aug(n + i, j) = boc(i, j);
  for (index i = 0; i < nw; ++i)
    for (index j = 0; j < nw; ++j) a_aug(n + i, n + j) = w.a()(i, j);

  MatD c_aug(w.num_outputs(), n + nw);
  for (index i = 0; i < w.num_outputs(); ++i)
    for (index j = 0; j < nw; ++j) c_aug(i, n + j) = w.c()(i, j);

  const MatD q_aug = lyap::observability_gramian(a_aug, c_aug, lopts);
  MatD q(n, n);
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < n; ++j) q(i, j) = q_aug(i, j);
  return q;
}

}  // namespace

FwbtResult fwbt(const DescriptorSystem& sys, const std::optional<DenseSystem>& input_weight,
                const std::optional<DenseSystem>& output_weight, const FwbtOptions& opts) {
  PMTBR_REQUIRE(sys.n() > 0, "fwbt needs a nonempty system");
  PMTBR_REQUIRE(opts.error_tol >= 0, "error_tol must be nonnegative");
  const DenseStandard d = to_dense_standard(sys);
  PMTBR_CHECK_FINITE(d.a, "fwbt standard-form A");
  PMTBR_CHECK_FINITE(d.b, "fwbt standard-form B");
  PMTBR_CHECK_FINITE(d.c, "fwbt standard-form C");

  if (input_weight) {
    PMTBR_REQUIRE(input_weight->num_outputs() == sys.num_inputs(),
                  "input weight outputs must match plant inputs");
    PMTBR_REQUIRE(la::max_abs_diff(input_weight->e(), MatD::identity(input_weight->n())) == 0.0,
                  "weights must be in standard form (E = I)");
  }
  if (output_weight) {
    PMTBR_REQUIRE(output_weight->num_inputs() == sys.num_outputs(),
                  "output weight inputs must match plant outputs");
    PMTBR_REQUIRE(la::max_abs_diff(output_weight->e(), MatD::identity(output_weight->n())) == 0.0,
                  "weights must be in standard form (E = I)");
  }

  const MatD p = input_weight
                     ? weighted_controllability(d.a, d.b, *input_weight, opts.lyapunov)
                     : lyap::controllability_gramian(d.a, d.b, opts.lyapunov);
  const MatD q = output_weight
                     ? weighted_observability(d.a, d.c, *output_weight, opts.lyapunov)
                     : lyap::observability_gramian(d.a, d.c, opts.lyapunov);

  const MatD lp = la::psd_factor(p);
  const MatD lq = la::psd_factor(q);
  const la::SvdResult f = la::svd(la::matmul_at(lq, lp));

  FwbtResult out;
  out.weighted_hsv = f.s;

  const double s1 = f.s.empty() ? 0.0 : f.s.front();
  index max_usable = 0;
  for (const double s : f.s)
    if (s > 1e-13 * s1) ++max_usable;
  max_usable = std::max<index>(max_usable, 1);

  index order;
  if (opts.fixed_order > 0) {
    order = std::min<index>(opts.fixed_order, max_usable);
  } else {
    double total = 0;
    for (const double s : f.s) total += s;
    double tail = total;
    order = 0;
    while (order < max_usable && tail > opts.error_tol * total) {
      tail -= f.s[static_cast<std::size_t>(order)];
      ++order;
    }
    order = std::max<index>(order, 1);
  }

  MatD v(d.a.rows(), order), w(d.a.rows(), order);
  for (index j = 0; j < order; ++j) {
    const double is = 1.0 / std::sqrt(f.s[static_cast<std::size_t>(j)]);
    for (index i = 0; i < d.a.rows(); ++i) {
      double accv = 0, accw = 0;
      for (index l = 0; l < lp.cols(); ++l) accv += lp(i, l) * f.v(l, j);
      for (index l = 0; l < lq.cols(); ++l) accw += lq(i, l) * f.u(l, j);
      v(i, j) = accv * is;
      w(i, j) = accw * is;
    }
  }

  out.model.v = v;
  out.model.w = w;
  out.model.singular_values = f.s;
  MatD ar = la::matmul_at(w, la::matmul(d.a, v));
  MatD br = la::matmul_at(w, d.b);
  MatD cr = la::matmul(d.c, v);
  out.model.system = DenseSystem::standard(std::move(ar), std::move(br), std::move(cr));
  if (!out.model.system.is_stable())
    log_warn("fwbt: reduced model is unstable (Enns' method carries no stability guarantee)");
  return out;
}

DenseSystem butterworth_lowpass(index order, double f_cutoff_hz, index channels) {
  PMTBR_REQUIRE(order >= 1 && order <= 10, "filter order must be in [1, 10]");
  PMTBR_REQUIRE(f_cutoff_hz > 0 && channels >= 1, "need positive cutoff and channels");
  const double wc = 2.0 * std::numbers::pi * f_cutoff_hz;

  // Normalized prototype (cutoff 1 rad/s): coefficients stay O(1), which
  // keeps the companion matrix well-conditioned at any order. The physical
  // filter is recovered by the scaling A = wc A', B = wc B', C = C'.
  std::vector<std::complex<double>> coeff{1.0};
  for (index k = 1; k <= order; ++k) {
    const double theta =
        std::numbers::pi * (2.0 * static_cast<double>(k) + static_cast<double>(order) - 1.0) /
        (2.0 * static_cast<double>(order));
    const std::complex<double> pk(std::cos(theta), std::sin(theta));
    std::vector<std::complex<double>> next(coeff.size() + 1, 0.0);
    for (std::size_t i = 0; i < coeff.size(); ++i) {
      next[i + 1] += coeff[i];        // s * coeff
      next[i] -= pk * coeff[i];       // -p_k * coeff
    }
    coeff = std::move(next);
  }
  // coeff[i] multiplies s^i; coeff[order] == 1; imaginary parts cancel.
  std::vector<double> den(static_cast<std::size_t>(order) + 1);
  for (std::size_t i = 0; i < coeff.size(); ++i) den[i] = coeff[i].real();

  // Controllable canonical form per channel, frequency-scaled by wc.
  const index n = order * channels;
  MatD a(n, n), b(n, channels), c(channels, n);
  for (index ch = 0; ch < channels; ++ch) {
    const index off = ch * order;
    for (index i = 0; i + 1 < order; ++i) a(off + i, off + i + 1) = wc;
    for (index j = 0; j < order; ++j)
      a(off + order - 1, off + j) = -wc * den[static_cast<std::size_t>(j)];
    b(off + order - 1, ch) = wc;
    c(ch, off) = den[0];  // dc gain 1 (den[0] == 1 for Butterworth)
  }
  return DenseSystem::standard(std::move(a), std::move(b), std::move(c));
}

}  // namespace pmtbr::mor
