#include "mor/input_correlated.hpp"

#include <cmath>
#include <numbers>

#include "la/ops.hpp"
#include "la/svd.hpp"
#include "mor/compressor.hpp"
#include "util/rng.hpp"

namespace pmtbr::mor {

InputCorrelatedResult input_correlated_tbr(const DescriptorSystem& sys, const MatD& input_samples,
                                           const InputCorrelatedOptions& opts) {
  PMTBR_REQUIRE(input_samples.rows() == sys.num_inputs(),
                "input sample rows must equal the port count");
  PMTBR_REQUIRE(input_samples.cols() >= 1, "need at least one input sample");

  // Step 1: SVD of the waveform sample matrix; K = U U^T / N = V_K (S_K^2/N) V_K^T.
  const la::SvdResult f = la::svd(input_samples);
  const double nsamp = static_cast<double>(input_samples.cols());

  InputCorrelatedResult out;
  out.input_singular_values = f.s;
  index r = 0;
  const double s1 = f.s.empty() ? 0.0 : f.s.front();
  for (const double s : f.s)
    if (s > opts.input_rank_tol * s1) ++r;
  r = std::max<index>(r, 1);
  out.input_rank = r;

  // Scaled direction matrix D = V_K diag(S_K)/sqrt(N): E[D g (D g)^T] = K.
  MatD dir(input_samples.rows(), r);
  for (index j = 0; j < r; ++j) {
    const double scale = f.s[static_cast<std::size_t>(j)] / std::sqrt(nsamp);
    for (index i = 0; i < input_samples.rows(); ++i) dir(i, j) = f.u(i, j) * scale;
  }
  const MatD bdir = la::matmul(sys.b(), dir);  // n×r

  const auto freq = sample_bands(opts.bands, opts.num_freq_samples, opts.scheme);
  IncrementalCompressor comp(sys.n());
  Rng rng(opts.seed);

  for (const auto& fs : freq) {
    // Conjugate-pair weighting as in pmtbr.cpp: jω samples count twice.
    const double scale = std::abs(fs.s.imag()) == 0.0
                             ? std::sqrt(fs.weight / (2.0 * std::numbers::pi))
                             : std::sqrt(fs.weight / std::numbers::pi);
    la::MatC rhs;
    if (opts.draws_per_frequency > 0) {
      // Algorithm 3: random draws r ~ N(0, I) in the scaled direction space.
      MatD draws(r, opts.draws_per_frequency);
      for (index j = 0; j < opts.draws_per_frequency; ++j)
        for (index i = 0; i < r; ++i) draws(i, j) = rng.normal();
      rhs = la::to_complex(la::matmul(bdir, draws));
    } else {
      // Deterministic blocked variant: all scaled directions at once.
      rhs = la::to_complex(bdir);
    }
    const la::MatC z = sys.solve_shifted(fs.s, rhs);
    MatD block = (std::abs(fs.s.imag()) == 0.0) ? la::real_part(z) : la::realify_columns(z);
    block *= scale;
    comp.add_columns(block);
  }

  index order = opts.fixed_order > 0 ? std::min<index>(opts.fixed_order, comp.rank())
                                     : comp.order_for_tolerance(opts.truncation_tol);
  if (opts.max_order > 0) order = std::min(order, opts.max_order);
  order = std::max<index>(order, 1);

  const MatD v = comp.basis(order);
  out.model.v = v;
  out.model.w = v;
  out.model.system = project_congruence(sys, v);
  out.model.singular_values = comp.singular_values();
  for (const double s : out.model.singular_values) out.hankel_estimates.push_back(s * s);
  return out;
}

}  // namespace pmtbr::mor
