#include "mor/pmtbr.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "la/ops.hpp"
#include "mor/compressor.hpp"
#include "util/logging.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::mor {

namespace {

// Weighted, realified sample block for one frequency point.
MatD sample_block(const DescriptorSystem& sys, const FrequencySample& fs) {
  PMTBR_TRACE_SCOPE("pmtbr.sample_block");
  const la::MatC z = sys.solve_shifted(fs.s, la::to_complex(sys.b()));
  // Fold in the Parseval 1/(2π) so ZW^2Z^H approximates the true Gramian.
  // A sample at +jω implicitly carries its conjugate pair at -jω (the
  // realified columns span both), so it gets twice the weight.
  if (std::abs(fs.s.imag()) == 0.0) {
    MatD block = la::real_part(z);
    block *= std::sqrt(fs.weight / (2.0 * std::numbers::pi));
    return block;
  }
  MatD block = la::realify_columns(z);
  block *= std::sqrt(fs.weight / std::numbers::pi);
  return block;
}

index choose_order(const IncrementalCompressor& comp, const PmtbrOptions& opts) {
  index order = opts.fixed_order > 0 ? std::min<index>(opts.fixed_order, comp.rank())
                                     : comp.order_for_tolerance(opts.truncation_tol);
  if (opts.max_order > 0) order = std::min(order, opts.max_order);
  return std::max<index>(order, 1);
}

// Applies the optional frequency weighting and drops fully suppressed
// samples — the deterministic serial prologue shared by both pipelines.
std::vector<FrequencySample> effective_samples(const std::vector<FrequencySample>& samples,
                                               const PmtbrOptions& opts) {
  std::vector<FrequencySample> eff;
  eff.reserve(samples.size());
  for (FrequencySample fs : samples) {
    if (opts.weight_fn) {
      const double f_hz = fs.s.imag() / (2.0 * std::numbers::pi);
      const double w = opts.weight_fn(f_hz);
      PMTBR_REQUIRE(w >= 0.0, "frequency weighting must be nonnegative");
      fs.weight *= w;
      if (fs.weight == 0.0) continue;  // fully suppressed sample
    }
    eff.push_back(fs);
  }
  return eff;
}

}  // namespace

PmtbrResult pmtbr_with_samples(const DescriptorSystem& sys,
                               const std::vector<FrequencySample>& samples,
                               const PmtbrOptions& opts) {
  PMTBR_REQUIRE(!samples.empty(), "need at least one frequency sample");
  PMTBR_TRACE_SCOPE("pmtbr");
  IncrementalCompressor comp(sys.n());
  PmtbrResult out;

  const std::vector<FrequencySample> eff = effective_samples(samples, opts);
  if (!eff.empty()) {
    // Freeze the pencil's pivot order before fanning out so every thread
    // refactors against the same symbolic analysis — results are then
    // bit-identical to a serial run regardless of scheduling.
    sys.prepare_shifted(eff.front().s);

    // Sample solves run on the pool in windows; absorption (and with it
    // the adaptive stopping decision) is committed strictly in sample
    // order. Without adaptive stopping one window covers everything; with
    // it, small windows bound the wasted solves past the stopping point.
    const bool adaptive = opts.adaptive_excess > 0;
    const auto total = static_cast<index>(eff.size());
    const index window =
        adaptive ? std::max<index>(index{1}, 2 * util::global_pool().size()) : total;
    bool stopped = false;
    for (index base = 0; base < total && !stopped; base += window) {
      const index count = std::min<index>(window, total - base);
      const auto blocks = util::parallel_map<MatD>(
          count, [&](index i) { return sample_block(sys, eff[static_cast<std::size_t>(base + i)]); });
      for (index k = 0; k < count; ++k) {
        comp.add_columns(blocks[static_cast<std::size_t>(k)]);
        obs::counter_add(obs::Counter::kPmtbrSamples);
        out.samples_used.push_back(eff[static_cast<std::size_t>(base + k)]);

        if (adaptive && static_cast<index>(out.samples_used.size()) >= opts.min_samples) {
          // Stop when the sample count comfortably exceeds the order
          // estimate (the paper's "samples in excess of the model order"
          // criterion).
          const index est = comp.order_for_tolerance(opts.truncation_tol);
          if (static_cast<double>(out.samples_used.size()) >=
              opts.adaptive_excess * static_cast<double>(est)) {
            log_debug("pmtbr: adaptive stop after ", out.samples_used.size(), " samples (order ~",
                      est, ")");
            obs::counter_add(obs::Counter::kPmtbrAdaptiveStops);
            stopped = true;
            break;
          }
        }
      }
    }
  }

  const index order = choose_order(comp, opts);
  MatD v = comp.basis(order);

  out.model.v = v;
  out.model.w = v;
  out.model.system = project_congruence(sys, v);
  out.model.singular_values = comp.singular_values();
  out.hankel_estimates.reserve(out.model.singular_values.size());
  for (const double s : out.model.singular_values)
    out.hankel_estimates.push_back(s * s);
  return out;
}

PmtbrResult pmtbr_adaptive(const DescriptorSystem& sys, const AdaptiveOptions& aopts,
                           const PmtbrOptions& opts) {
  PMTBR_REQUIRE(aopts.initial_samples >= 2, "need at least two initial samples");
  PMTBR_REQUIRE(aopts.max_samples >= aopts.initial_samples, "budget below initial samples");
  PMTBR_TRACE_SCOPE("pmtbr_adaptive");

  IncrementalCompressor comp(sys.n());
  PmtbrResult out;

  // Novelty of a sample: residual norm of its block after projection onto
  // the basis as it stood before the block — reported directly by the
  // compressor from its Gram–Schmidt coefficients, so no extra projection
  // products are needed.
  struct Interval {
    double f_lo, f_hi;
    double score;  // novelty of the sample that created it
  };
  std::vector<Interval> intervals;
  double max_block_norm = 0.0;

  const auto absorb = [&](double f_hz, double width_hz) {
    FrequencySample fs{cd(0.0, 2.0 * std::numbers::pi * f_hz), 2.0 * std::numbers::pi * width_hz};
    MatD block = sample_block(sys, fs);
    max_block_norm = std::max(max_block_norm, la::norm_fro(block));
    const double res = comp.add_columns(block);
    obs::counter_add(obs::Counter::kPmtbrSamples);
    out.samples_used.push_back(fs);
    return res;
  };

  // Coarse initialization (uniform midpoints).
  const double width =
      (aopts.band.f_hi - aopts.band.f_lo) / static_cast<double>(aopts.initial_samples);
  double prev_edge = aopts.band.f_lo;
  for (index k = 0; k < aopts.initial_samples; ++k) {
    const double f = aopts.band.f_lo + (static_cast<double>(k) + 0.5) * width;
    const double res = absorb(f, width);
    intervals.push_back({prev_edge, prev_edge + width, res});
    prev_edge += width;
  }

  // Greedy bisection.
  while (static_cast<index>(out.samples_used.size()) < aopts.max_samples) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < intervals.size(); ++i)
      if (intervals[i].score > intervals[best].score) best = i;
    if (intervals[best].score <= aopts.novelty_tol * std::max(max_block_norm, 1e-300)) break;

    obs::counter_add(obs::Counter::kAdaptiveBisections);
    const Interval iv = intervals[best];
    const double mid = 0.5 * (iv.f_lo + iv.f_hi);
    const double child_w = 0.5 * (iv.f_hi - iv.f_lo);
    const double res = absorb(0.5 * (iv.f_lo + mid), child_w);
    const double res2 = absorb(0.5 * (mid + iv.f_hi), child_w);
    intervals[best] = {iv.f_lo, mid, res};
    intervals.push_back({mid, iv.f_hi, res2});
    log_debug("pmtbr_adaptive: bisected [", iv.f_lo, ", ", iv.f_hi, "], residuals ", res, ", ",
              res2);
  }

  const index order = choose_order(comp, opts);
  MatD v = comp.basis(order);
  out.model.v = v;
  out.model.w = v;
  out.model.system = project_congruence(sys, v);
  out.model.singular_values = comp.singular_values();
  for (const double s : out.model.singular_values) out.hankel_estimates.push_back(s * s);
  return out;
}

std::vector<PmtbrResult> pmtbr_order_sweep(const DescriptorSystem& sys,
                                           const std::vector<FrequencySample>& samples,
                                           const std::vector<index>& orders) {
  PMTBR_REQUIRE(!samples.empty(), "need at least one frequency sample");
  PMTBR_REQUIRE(!orders.empty(), "need at least one order");
  PMTBR_TRACE_SCOPE("pmtbr_order_sweep");
  IncrementalCompressor comp(sys.n());
  sys.prepare_shifted(samples.front().s);
  const auto blocks = util::parallel_map<MatD>(
      static_cast<index>(samples.size()),
      [&](index i) { return sample_block(sys, samples[static_cast<std::size_t>(i)]); });
  for (const auto& block : blocks) {
    comp.add_columns(block);
    obs::counter_add(obs::Counter::kPmtbrSamples);
  }

  std::vector<PmtbrResult> out;
  out.reserve(orders.size());
  for (const index order : orders) {
    PmtbrResult res;
    res.samples_used = samples;
    const index q = std::max<index>(1, std::min<index>(order, comp.rank()));
    MatD v = comp.basis(q);
    res.model.v = v;
    res.model.w = v;
    res.model.system = project_congruence(sys, v);
    res.model.singular_values = comp.singular_values();
    for (const double s : res.model.singular_values) res.hankel_estimates.push_back(s * s);
    out.push_back(std::move(res));
  }
  return out;
}

PmtbrResult pmtbr(const DescriptorSystem& sys, const PmtbrOptions& opts) {
  PMTBR_REQUIRE(sys.n() > 0, "pmtbr needs a nonempty system");
  PMTBR_REQUIRE(!opts.bands.empty(), "pmtbr needs at least one frequency band");
  PMTBR_REQUIRE(opts.num_samples >= 1, "pmtbr needs at least one sample");
  PMTBR_REQUIRE(opts.truncation_tol >= 0, "truncation_tol must be nonnegative");
  const auto samples = sample_bands(opts.bands, opts.num_samples, opts.scheme);
  return pmtbr_with_samples(sys, samples, opts);
}

}  // namespace pmtbr::mor
