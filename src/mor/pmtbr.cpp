#include "mor/pmtbr.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "la/ops.hpp"
#include "mor/compressor.hpp"
#include "util/faultinject.hpp"
#include "util/logging.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/json.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr::mor {

namespace {

// Fold in the Parseval 1/(2π) so ZW^2Z^H approximates the true Gramian.
// A sample at +jω implicitly carries its conjugate pair at -jω (the
// realified columns span both), so it gets twice the weight.
MatD weight_block(const la::MatC& z, const FrequencySample& fs) {
  if (std::abs(fs.s.imag()) == 0.0) {
    MatD block = la::real_part(z);
    block *= std::sqrt(fs.weight / (2.0 * std::numbers::pi));
    return block;
  }
  MatD block = la::realify_columns(z);
  block *= std::sqrt(fs.weight / std::numbers::pi);
  return block;
}

// One sample's solve with the full degradation ladder: base solve, then
// bounded retries at relatively perturbed shifts s·(1+εk), then one
// diagonally regularized solve back at the original shift. `status` is OK
// iff `block` is valid. Every attempt runs under a fault key derived from
// the ORIGINAL shift, so injected decisions are a pure function of the
// sample — a condemned sample stays condemned across retries (guaranteeing
// deterministic drops), while genuine near-singularities recover via the
// perturbed shifts.
struct SampleOutcome {
  MatD block;
  util::Status status;
  int retries = 0;
  bool regularized = false;
};

SampleOutcome try_sample_block(const DescriptorSystem& sys, const FrequencySample& fs,
                               const ResilienceOptions& res) {
  PMTBR_TRACE_SCOPE("pmtbr.sample_block");
  util::fault::KeyScope key(util::fault::shift_key(fs.s.real(), fs.s.imag()));
  SampleOutcome out;
  for (int attempt = 0; attempt <= res.max_retries; ++attempt) {
    cd s = fs.s;
    if (attempt > 0) {
      const double scale = 1.0 + res.retry_shift_eps * static_cast<double>(attempt);
      // A DC sample has nothing to scale; nudge it off the origin instead.
      s = (s == cd(0.0)) ? cd(res.retry_shift_eps * static_cast<double>(attempt), 0.0)
                         : s * scale;
      ++out.retries;
      obs::counter_add(obs::Counter::kPmtbrSampleRetries);
    }
    auto z = sys.try_solve_shifted(s, la::to_complex(sys.b()));
    if (z.is_ok()) {
      out.block = weight_block(z.value(), fs);
      out.status = util::Status::ok();
      return out;
    }
    out.status = z.status();
  }
  if (res.diag_reg > 0.0) {
    auto z = sys.try_solve_shifted(fs.s, la::to_complex(sys.b()), res.diag_reg);
    if (z.is_ok()) {
      out.block = weight_block(z.value(), fs);
      out.status = util::Status::ok();
      out.regularized = true;
      obs::counter_add(obs::Counter::kPmtbrSamplesRegularized);
      return out;
    }
    out.status = z.status();
  }
  return out;
}

// Degradation bookkeeping threaded through the windowed sampling loop.
struct DegradeState {
  DegradeReport report;
  double carried = 0.0;      // weight of windows that lost every sample
  double attempted_w = 0.0;  // total quadrature weight attempted
  double surviving_w = 0.0;  // total quadrature weight that produced a block
};

// Classifies one window's outcomes, records drops, and redistributes the
// lost quadrature weight (plus any carried weight from wholly failed
// earlier windows) over the window's survivors by scaling their blocks.
// Returns the in-window indices of the survivors, in sample order. A clean
// window with nothing carried is left bit-exact — no scaling is applied.
std::vector<index> degrade_window(std::vector<util::Expected<SampleOutcome>>& outcomes,
                                  const std::vector<FrequencySample>& eff, index base,
                                  DegradeState& st) {
  auto& r = st.report;
  double window_weight = 0.0, surviving_weight = 0.0;
  bool any_failed = false;
  std::vector<index> ok;
  ok.reserve(outcomes.size());
  for (index k = 0; k < static_cast<index>(outcomes.size()); ++k) {
    const FrequencySample& fs = eff[static_cast<std::size_t>(base + k)];
    auto& slot = outcomes[static_cast<std::size_t>(k)];
    ++r.samples_attempted;
    window_weight += fs.weight;
    // A task-level failure (pool.task injection, foreign exception) never
    // ran the retry ladder; a solver-level failure carries its ladder stats
    // inside the outcome.
    const util::Status& status = slot.is_ok() ? slot.value().status : slot.status();
    const int retries = slot.is_ok() ? slot.value().retries : 0;
    r.retries += retries;
    if (status.is_ok()) {
      ++r.samples_ok;
      if (slot.value().regularized) ++r.regularized;
      surviving_weight += fs.weight;
      ok.push_back(k);
    } else {
      any_failed = true;
      ++r.samples_dropped;
      obs::counter_add(obs::Counter::kPmtbrSamplesDropped);
      r.failures.push_back({base + k, status, retries});
      log_debug("pmtbr: dropped sample ", base + k, " (", status.to_string(), ")");
    }
  }
  st.attempted_w += window_weight;
  st.surviving_w += surviving_weight;
  if (ok.empty()) {
    st.carried += window_weight;
    return ok;
  }
  if ((any_failed || st.carried > 0.0) && surviving_weight > 0.0) {
    const double factor = (window_weight + st.carried) / surviving_weight;
    st.carried = 0.0;
    const double scale = std::sqrt(factor);
    for (index k : ok) outcomes[static_cast<std::size_t>(k)].value().block *= scale;
    ++r.reweights;
    obs::counter_add(obs::Counter::kPmtbrWeightReweights);
  }
  return ok;
}

// Coverage floor: the run is only allowed to degrade so far. Throws when
// every sample was lost or the surviving quadrature weight dropped below
// the configured fraction of what was attempted.
void enforce_coverage_floor(DegradeState& st, const ResilienceOptions& res) {
  auto& r = st.report;
  r.coverage = st.attempted_w > 0.0 ? st.surviving_w / st.attempted_w : 1.0;
  if (r.samples_attempted == 0) return;
  if (r.samples_ok == 0 || r.coverage < res.min_coverage) {
    std::ostringstream msg;
    msg << "surviving sample coverage " << r.coverage << " below floor " << res.min_coverage
        << " (" << r.samples_dropped << " of " << r.samples_attempted << " samples dropped)";
    throw util::StatusError(util::Status(util::ErrorCode::kCoverageFloor, msg.str()));
  }
}

// Freezes the pencil's pivot order from the first sample whose pencil
// actually factors, skipping shifts that sit on a pole (or are condemned
// by fault injection). Throws kCoverageFloor when no sample works at all.
void prepare_resilient(const DescriptorSystem& sys, const std::vector<FrequencySample>& eff) {
  util::Status last;
  for (const FrequencySample& fs : eff) {
    util::fault::KeyScope key(util::fault::shift_key(fs.s.real(), fs.s.imag()));
    util::Status st = sys.try_prepare_shifted(fs.s);
    if (st.is_ok()) return;
    last = std::move(st);
  }
  throw util::StatusError(util::Status(
      util::ErrorCode::kCoverageFloor,
      "no sample shift yields a factorable pencil: " + last.to_string()));
}

index choose_order(const IncrementalCompressor& comp, const PmtbrOptions& opts) {
  index order = opts.fixed_order > 0 ? std::min<index>(opts.fixed_order, comp.rank())
                                     : comp.order_for_tolerance(opts.truncation_tol);
  if (opts.max_order > 0) order = std::min(order, opts.max_order);
  return std::max<index>(order, 1);
}

// Applies the optional frequency weighting and drops fully suppressed
// samples — the deterministic serial prologue shared by both pipelines.
std::vector<FrequencySample> effective_samples(const std::vector<FrequencySample>& samples,
                                               const PmtbrOptions& opts) {
  std::vector<FrequencySample> eff;
  eff.reserve(samples.size());
  for (FrequencySample fs : samples) {
    if (opts.weight_fn) {
      const double f_hz = fs.s.imag() / (2.0 * std::numbers::pi);
      const double w = opts.weight_fn(f_hz);
      PMTBR_REQUIRE(w >= 0.0, "frequency weighting must be nonnegative");
      fs.weight *= w;
      if (fs.weight == 0.0) continue;  // fully suppressed sample
    }
    eff.push_back(fs);
  }
  return eff;
}

}  // namespace

std::pair<std::string, std::string> degradation_extra(const DegradeReport& report) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("samples_attempted");
  w.value(static_cast<std::int64_t>(report.samples_attempted));
  w.key("samples_ok");
  w.value(static_cast<std::int64_t>(report.samples_ok));
  w.key("samples_dropped");
  w.value(static_cast<std::int64_t>(report.samples_dropped));
  w.key("retries");
  w.value(static_cast<std::int64_t>(report.retries));
  w.key("regularized");
  w.value(static_cast<std::int64_t>(report.regularized));
  w.key("reweights");
  w.value(static_cast<std::int64_t>(report.reweights));
  w.key("coverage");
  w.value(report.coverage);
  w.key("failures");
  w.begin_array();
  for (const SampleFailure& f : report.failures) {
    w.begin_object();
    w.key("sample");
    w.value(static_cast<std::int64_t>(f.sample));
    w.key("code");
    w.value(util::error_code_name(f.status.code()));
    w.key("retries");
    w.value(f.retries);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return {"degradation", os.str()};
}

PmtbrResult pmtbr_with_samples(const DescriptorSystem& sys,
                               const std::vector<FrequencySample>& samples,
                               const PmtbrOptions& opts) {
  PMTBR_REQUIRE(!samples.empty(), "need at least one frequency sample");
  PMTBR_TRACE_SCOPE("pmtbr");
  IncrementalCompressor comp(sys.n(), 1e-13, opts.compressor);
  PmtbrResult out;
  DegradeState st;

  const std::vector<FrequencySample> eff = effective_samples(samples, opts);
  if (!eff.empty()) {
    // Freeze the pencil's pivot order before fanning out so every thread
    // refactors against the same symbolic analysis — results are then
    // bit-identical to a serial run regardless of scheduling. The first
    // factorable sample seeds the ordering (shifts on a pole are skipped).
    prepare_resilient(sys, eff);

    // Sample solves run on the pool in windows; absorption (and with it
    // the adaptive stopping decision) is committed strictly in sample
    // order. Without adaptive stopping one window covers everything; with
    // it, small windows bound the wasted solves past the stopping point.
    const bool adaptive = opts.adaptive_excess > 0;
    const auto total = static_cast<index>(eff.size());
    const index window =
        adaptive ? std::max<index>(index{1}, 2 * util::global_pool().size()) : total;
    bool stopped = false;
    for (index base = 0; base < total && !stopped; base += window) {
      // Cancellation checkpoint: abort between windows (and, via the token
      // handed to parallel_try_map, skip not-yet-started tasks inside the
      // window) before any degradation bookkeeping or absorption happens —
      // a cancelled run produces no result and no partial report.
      opts.cancel.throw_if_cancelled();
      const index count = std::min<index>(window, total - base);
      auto outcomes = util::parallel_try_map<SampleOutcome>(
          count,
          [&](index i) {
            return try_sample_block(sys, eff[static_cast<std::size_t>(base + i)],
                                    opts.resilience);
          },
          opts.cancel);
      opts.cancel.throw_if_cancelled();
      const std::vector<index> survivors = degrade_window(outcomes, eff, base, st);
      for (index k : survivors) {
        comp.add_columns(outcomes[static_cast<std::size_t>(k)].value().block);
        obs::counter_add(obs::Counter::kPmtbrSamples);
        out.samples_used.push_back(eff[static_cast<std::size_t>(base + k)]);

        if (adaptive && static_cast<index>(out.samples_used.size()) >= opts.min_samples) {
          // Stop when the sample count comfortably exceeds the order
          // estimate (the paper's "samples in excess of the model order"
          // criterion).
          const index est = comp.order_for_tolerance(opts.truncation_tol);
          if (static_cast<double>(out.samples_used.size()) >=
              opts.adaptive_excess * static_cast<double>(est)) {
            log_debug("pmtbr: adaptive stop after ", out.samples_used.size(), " samples (order ~",
                      est, ")");
            obs::counter_add(obs::Counter::kPmtbrAdaptiveStops);
            stopped = true;
            break;
          }
        }
      }
    }
    enforce_coverage_floor(st, opts.resilience);
  }
  out.degradation = std::move(st.report);

  const index order = choose_order(comp, opts);
  {
    PMTBR_TRACE_SCOPE("pmtbr.project");
    MatD v = comp.basis(order);
    out.model.v = v;
    out.model.w = v;
    out.model.system = project_congruence(sys, v);
  }
  out.model.singular_values = comp.singular_values();
  out.hankel_estimates.reserve(out.model.singular_values.size());
  for (const double s : out.model.singular_values)
    out.hankel_estimates.push_back(s * s);
  return out;
}

PmtbrResult pmtbr_adaptive(const DescriptorSystem& sys, const AdaptiveOptions& aopts,
                           const PmtbrOptions& opts) {
  PMTBR_REQUIRE(aopts.initial_samples >= 2, "need at least two initial samples");
  PMTBR_REQUIRE(aopts.max_samples >= aopts.initial_samples, "budget below initial samples");
  PMTBR_TRACE_SCOPE("pmtbr_adaptive");

  IncrementalCompressor comp(sys.n(), 1e-13, opts.compressor);
  PmtbrResult out;
  DegradeState st;

  // Novelty of a sample: residual norm of its block after projection onto
  // the basis as it stood before the block — reported directly by the
  // compressor from its Gram–Schmidt coefficients, so no extra projection
  // products are needed.
  struct Interval {
    double f_lo, f_hi;
    double score;  // novelty of the sample that created it
  };
  std::vector<Interval> intervals;
  double max_block_norm = 0.0;

  const auto absorb = [&](double f_hz, double width_hz) {
    // Cancellation checkpoint: the bisection loop is serial, so between-
    // absorption polls bound the overrun to one shifted solve.
    opts.cancel.throw_if_cancelled();
    FrequencySample fs{cd(0.0, 2.0 * std::numbers::pi * f_hz), 2.0 * std::numbers::pi * width_hz};
    ++st.report.samples_attempted;
    st.attempted_w += fs.weight;
    SampleOutcome oc = try_sample_block(sys, fs, opts.resilience);
    st.report.retries += oc.retries;
    if (!oc.status.is_ok()) {
      // A dropped sample contributes zero novelty, so its interval is not
      // bisected further; the density-based weights need no redistribution.
      ++st.report.samples_dropped;
      obs::counter_add(obs::Counter::kPmtbrSamplesDropped);
      st.report.failures.push_back({st.report.samples_attempted - 1, oc.status, oc.retries});
      log_debug("pmtbr_adaptive: dropped sample at ", f_hz, " Hz (", oc.status.to_string(), ")");
      return 0.0;
    }
    ++st.report.samples_ok;
    if (oc.regularized) ++st.report.regularized;
    st.surviving_w += fs.weight;
    max_block_norm = std::max(max_block_norm, la::norm_fro(oc.block));
    const double res = comp.add_columns(oc.block);
    obs::counter_add(obs::Counter::kPmtbrSamples);
    out.samples_used.push_back(fs);
    return res;
  };

  // Coarse initialization (uniform midpoints).
  const double width =
      (aopts.band.f_hi - aopts.band.f_lo) / static_cast<double>(aopts.initial_samples);
  double prev_edge = aopts.band.f_lo;
  for (index k = 0; k < aopts.initial_samples; ++k) {
    const double f = aopts.band.f_lo + (static_cast<double>(k) + 0.5) * width;
    const double res = absorb(f, width);
    intervals.push_back({prev_edge, prev_edge + width, res});
    prev_edge += width;
  }

  // Greedy bisection.
  while (static_cast<index>(out.samples_used.size()) < aopts.max_samples) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < intervals.size(); ++i)
      if (intervals[i].score > intervals[best].score) best = i;
    if (intervals[best].score <= aopts.novelty_tol * std::max(max_block_norm, 1e-300)) break;

    obs::counter_add(obs::Counter::kAdaptiveBisections);
    const Interval iv = intervals[best];
    const double mid = 0.5 * (iv.f_lo + iv.f_hi);
    const double child_w = 0.5 * (iv.f_hi - iv.f_lo);
    const double res = absorb(0.5 * (iv.f_lo + mid), child_w);
    const double res2 = absorb(0.5 * (mid + iv.f_hi), child_w);
    intervals[best] = {iv.f_lo, mid, res};
    intervals.push_back({mid, iv.f_hi, res2});
    log_debug("pmtbr_adaptive: bisected [", iv.f_lo, ", ", iv.f_hi, "], residuals ", res, ", ",
              res2);
  }

  enforce_coverage_floor(st, opts.resilience);
  out.degradation = std::move(st.report);

  const index order = choose_order(comp, opts);
  {
    PMTBR_TRACE_SCOPE("pmtbr.project");
    MatD v = comp.basis(order);
    out.model.v = v;
    out.model.w = v;
    out.model.system = project_congruence(sys, v);
  }
  out.model.singular_values = comp.singular_values();
  for (const double s : out.model.singular_values) out.hankel_estimates.push_back(s * s);
  return out;
}

std::vector<PmtbrResult> pmtbr_order_sweep(const DescriptorSystem& sys,
                                           const std::vector<FrequencySample>& samples,
                                           const std::vector<index>& orders,
                                           const PmtbrOptions& opts) {
  PMTBR_REQUIRE(!samples.empty(), "need at least one frequency sample");
  PMTBR_REQUIRE(!orders.empty(), "need at least one order");
  PMTBR_TRACE_SCOPE("pmtbr_order_sweep");
  IncrementalCompressor comp(sys.n(), 1e-13, opts.compressor);
  const ResilienceOptions& resilience = opts.resilience;
  DegradeState st;
  opts.cancel.throw_if_cancelled();
  prepare_resilient(sys, samples);
  auto outcomes = util::parallel_try_map<SampleOutcome>(
      static_cast<index>(samples.size()),
      [&](index i) {
        return try_sample_block(sys, samples[static_cast<std::size_t>(i)], resilience);
      },
      opts.cancel);
  opts.cancel.throw_if_cancelled();
  const std::vector<index> survivors = degrade_window(outcomes, samples, 0, st);
  std::vector<FrequencySample> used;
  used.reserve(survivors.size());
  for (index k : survivors) {
    comp.add_columns(outcomes[static_cast<std::size_t>(k)].value().block);
    obs::counter_add(obs::Counter::kPmtbrSamples);
    used.push_back(samples[static_cast<std::size_t>(k)]);
  }
  enforce_coverage_floor(st, resilience);

  std::vector<PmtbrResult> out;
  out.reserve(orders.size());
  for (const index order : orders) {
    PmtbrResult res;
    res.samples_used = used;
    res.degradation = st.report;
    const index q = std::max<index>(1, std::min<index>(order, comp.rank()));
    PMTBR_TRACE_SCOPE("pmtbr.project");
    MatD v = comp.basis(q);
    res.model.v = v;
    res.model.w = v;
    res.model.system = project_congruence(sys, v);
    res.model.singular_values = comp.singular_values();
    for (const double s : res.model.singular_values) res.hankel_estimates.push_back(s * s);
    out.push_back(std::move(res));
  }
  return out;
}

PmtbrResult pmtbr(const DescriptorSystem& sys, const PmtbrOptions& opts) {
  PMTBR_REQUIRE(sys.n() > 0, "pmtbr needs a nonempty system");
  PMTBR_REQUIRE(!opts.bands.empty(), "pmtbr needs at least one frequency band");
  PMTBR_REQUIRE(opts.num_samples >= 1, "pmtbr needs at least one sample");
  PMTBR_REQUIRE(opts.truncation_tol >= 0, "truncation_tol must be nonnegative");
  const auto samples = sample_bands(opts.bands, opts.num_samples, opts.scheme);
  return pmtbr_with_samples(sys, samples, opts);
}

}  // namespace pmtbr::mor
