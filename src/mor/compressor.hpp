// Incremental sample-matrix compressor for on-the-fly order control
// (paper Sec. V-C).
//
// Maintains a growing factorization  Z_(i) W = Q R  with Q orthonormal so
// that absorbing a new sample block costs O(n·k·rank) GEMM flops instead
// of a fresh SVD of everything, and the singular values of Z_(i) W are
// recovered from the small rank×m matrix R. This plays the role the paper
// assigns to updatable rank-revealing factorizations (RRQR/UTV): cheap
// trailing-singular-value estimates after every sample, plus an
// orthonormal basis for the dominant subspace.
//
// Two absorption paths:
//  - kBlocked (default): two passes of block classical Gram–Schmidt
//    against the existing basis (three GEMMs per pass), then a TSQR of the
//    n×k residual block and an SVD of its small k×k R factor to decide
//    which new directions survive drop_tol. One factorization per block
//    instead of per column.
//  - kReference: the seed per-column modified Gram–Schmidt loop, kept as
//    the comparison oracle for tests and bench_kernels.
//
// Both paths are deterministic for any thread count: the blocked path's
// GEMM and TSQR building blocks are bit-reproducible by construction.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pmtbr::mor {

using la::index;
using la::MatD;

enum class CompressorMode {
  kBlocked,    // block Gram–Schmidt + TSQR + small SVD
  kReference,  // seed per-column modified Gram–Schmidt
};

class IncrementalCompressor {
 public:
  /// `n` is the state dimension; `drop_tol` is the relative norm below which
  /// a new direction adds nothing to Q.
  explicit IncrementalCompressor(index n, double drop_tol = 1e-13,
                                 CompressorMode mode = CompressorMode::kBlocked);

  /// Absorbs the columns of `block` (already weight-scaled by the caller).
  /// Returns the Frobenius norm of the block's component orthogonal to the
  /// basis as it stood BEFORE the call — the "novelty" of the block, free
  /// of charge from the Gram–Schmidt projection (adaptive sampling used
  /// to recompute this with two n×k products per sample).
  double add_columns(const MatD& block);

  index n() const { return n_; }
  index rank() const { return rank_; }
  index columns_absorbed() const { return m_; }

  /// Singular values of the absorbed matrix, descending (length = rank()).
  std::vector<double> singular_values() const;

  /// Orthonormal basis for the dominant `order`-dimensional left singular
  /// subspace (order clamped to rank()).
  MatD basis(index order) const;

  /// Smallest order q whose trailing singular-value sum satisfies
  /// sum_{i>q} σ_i <= tol * σ_1 — the paper's "small tail" criterion.
  index order_for_tolerance(double tol) const;

 private:
  /// Per-block scratch reused across add_columns calls; Matrix::resize
  /// keeps the allocations once they have grown to the working size.
  struct Workspace {
    MatD resid;  // n×k working copy of the block (residual after projection)
    MatD proj;   // rank×k Gram–Schmidt coefficients of one pass
    MatD coeff;  // rank×k accumulated coefficients over both passes
  };

  double add_block(const MatD& block);

  /// Seed path: returns the squared norm of v's component orthogonal to the
  /// first `basis_rank` basis directions (the basis size before the
  /// enclosing add_columns call started).
  double add_column(std::vector<double> v, index basis_rank);

  const double* basis_row(index l) const {
    return basis_t_.data() + static_cast<std::size_t>(l * n_);
  }
  MatD r_dense() const;

  index n_;
  double drop_tol_;
  CompressorMode mode_;
  index m_ = 0;     // columns absorbed
  index rank_ = 0;  // basis directions kept
  // Basis stored TRANSPOSED: row l (contiguous, length n) is the l-th
  // orthonormal direction, so appending a direction appends n values and
  // the GEMM projections read it without materializing a transpose.
  std::vector<double> basis_t_;
  std::vector<std::vector<double>> r_cols_;  // R columns (length = rank at insertion)
  Workspace ws_;
};

}  // namespace pmtbr::mor
