// Incremental sample-matrix compressor for on-the-fly order control
// (paper Sec. V-C).
//
// Maintains a growing factorization  Z_(i) W = Q R  with Q orthonormal
// (modified Gram–Schmidt with reorthogonalization) so that absorbing a new
// sample block costs O(n·k) instead of a fresh SVD of everything, and the
// singular values of Z_(i) W are recovered from the small k×m matrix R.
// This plays the role the paper assigns to updatable rank-revealing
// factorizations (RRQR/UTV): cheap trailing-singular-value estimates after
// every sample, plus an orthonormal basis for the dominant subspace.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pmtbr::mor {

using la::index;
using la::MatD;

class IncrementalCompressor {
 public:
  /// `n` is the state dimension; `drop_tol` is the relative norm below which
  /// a new column adds no new direction to Q.
  explicit IncrementalCompressor(index n, double drop_tol = 1e-13);

  /// Absorbs the columns of `block` (already weight-scaled by the caller).
  /// Returns the Frobenius norm of the block's component orthogonal to the
  /// basis as it stood BEFORE the call — the "novelty" of the block, free
  /// of charge from the Gram–Schmidt coefficients (adaptive sampling used
  /// to recompute this with two n×k products per sample).
  double add_columns(const MatD& block);

  index n() const { return n_; }
  index rank() const { return static_cast<index>(q_cols_.size()); }
  index columns_absorbed() const { return m_; }

  /// Singular values of the absorbed matrix, descending (length = rank()).
  std::vector<double> singular_values() const;

  /// Orthonormal basis for the dominant `order`-dimensional left singular
  /// subspace (order clamped to rank()).
  MatD basis(index order) const;

  /// Smallest order q whose trailing singular-value sum satisfies
  /// sum_{i>q} σ_i <= tol * σ_1 — the paper's "small tail" criterion.
  index order_for_tolerance(double tol) const;

 private:
  /// Returns the squared norm of v's component orthogonal to the first
  /// `basis_rank` basis columns (the basis size before the enclosing
  /// add_columns call started).
  double add_column(std::vector<double> v, index basis_rank);
  MatD r_dense() const;

  index n_;
  double drop_tol_;
  index m_ = 0;                                  // columns absorbed
  std::vector<std::vector<double>> q_cols_;      // orthonormal basis columns (length n)
  std::vector<std::vector<double>> r_cols_;      // R columns (length = rank at insertion)
};

}  // namespace pmtbr::mor
