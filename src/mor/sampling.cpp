#include "mor/sampling.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace pmtbr::mor {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

void gauss_legendre(index n, std::vector<double>& nodes, std::vector<double>& weights) {
  PMTBR_REQUIRE(n >= 1, "need at least one node");
  nodes.resize(static_cast<std::size_t>(n));
  weights.resize(static_cast<std::size_t>(n));
  for (index i = 0; i < n; ++i) {
    // Chebyshev-based initial guess, then Newton on P_n.
    double x = std::cos(std::numbers::pi * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double dp = 0;
    for (int it = 0; it < 100; ++it) {
      // Evaluate P_n(x) and P_n'(x) by recurrence.
      double p0 = 1.0, p1 = x;
      for (index k = 2; k <= n; ++k) {
        const double pk = ((2.0 * static_cast<double>(k) - 1.0) * x * p1 -
                           (static_cast<double>(k) - 1.0) * p0) /
                          static_cast<double>(k);
        p0 = p1;
        p1 = pk;
      }
      const double pn = (n == 1) ? x : p1;
      const double pn1 = (n == 1) ? 1.0 : p0;
      dp = static_cast<double>(n) * (x * pn - pn1) / (x * x - 1.0);
      const double dx = pn / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    nodes[static_cast<std::size_t>(i)] = x;
    weights[static_cast<std::size_t>(i)] = 2.0 / ((1.0 - x * x) * dp * dp);
  }
}

std::vector<FrequencySample> sample_band(const Band& band, index count, SamplingScheme scheme) {
  PMTBR_REQUIRE(count >= 1, "need at least one sample");
  PMTBR_REQUIRE(band.f_hi > band.f_lo && band.f_lo >= 0, "band must satisfy 0 <= f_lo < f_hi");
  std::vector<FrequencySample> out;
  out.reserve(static_cast<std::size_t>(count));

  switch (scheme) {
    case SamplingScheme::kUniform: {
      // Rectangle rule: midpoint samples, equal weights spanning the band.
      const double df = (band.f_hi - band.f_lo) / static_cast<double>(count);
      for (index k = 0; k < count; ++k) {
        const double f = band.f_lo + (static_cast<double>(k) + 0.5) * df;
        out.push_back({cd(0.0, kTwoPi * f), kTwoPi * df});
      }
      break;
    }
    case SamplingScheme::kLogarithmic: {
      const double f_lo = std::max(band.f_lo, band.f_hi * 1e-6);
      const double l0 = std::log(f_lo), l1 = std::log(band.f_hi);
      const double dl = (l1 - l0) / static_cast<double>(count);
      for (index k = 0; k < count; ++k) {
        const double lf = l0 + (static_cast<double>(k) + 0.5) * dl;
        const double f = std::exp(lf);
        // d omega = 2*pi*f d(log f): weight by the local bin width.
        out.push_back({cd(0.0, kTwoPi * f), kTwoPi * f * dl});
      }
      break;
    }
    case SamplingScheme::kGaussLegendre: {
      std::vector<double> x, w;
      gauss_legendre(count, x, w);
      const double half = 0.5 * (band.f_hi - band.f_lo);
      const double mid = 0.5 * (band.f_hi + band.f_lo);
      for (index k = 0; k < count; ++k) {
        const double f = mid + half * x[static_cast<std::size_t>(k)];
        out.push_back({cd(0.0, kTwoPi * f), kTwoPi * half * w[static_cast<std::size_t>(k)]});
      }
      break;
    }
  }
  return out;
}

std::vector<FrequencySample> sample_bands(const std::vector<Band>& bands, index count,
                                          SamplingScheme scheme) {
  PMTBR_REQUIRE(!bands.empty(), "need at least one band");
  PMTBR_REQUIRE(count >= static_cast<index>(bands.size()), "need at least one sample per band");
  double total = 0;
  for (const auto& b : bands) total += b.f_hi - b.f_lo;

  std::vector<FrequencySample> out;
  index assigned = 0;
  for (std::size_t k = 0; k < bands.size(); ++k) {
    index nk;
    if (k + 1 == bands.size()) {
      nk = count - assigned;
    } else {
      nk = std::max<index>(
          1, static_cast<index>(std::round(static_cast<double>(count) *
                                           (bands[k].f_hi - bands[k].f_lo) / total)));
      nk = std::min(nk, count - assigned - static_cast<index>(bands.size() - k - 1));
    }
    assigned += nk;
    const auto part = sample_band(bands[k], nk, scheme);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace pmtbr::mor
