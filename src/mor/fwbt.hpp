// Frequency-weighted balanced truncation (Enns' method) — the classical
// answer to band-focused reduction that the paper argues against for
// narrowband use (Sec. IV-B: "construction and merging of such auxiliary
// systems is not desirable"). Implemented as a baseline so the
// frequency-selective PMTBR comparison can be made directly.
//
// Given stable weights W_i(s), W_o(s), Enns builds the Gramians of the
// cascades G·W_i and W_o·G and balances the original system with the
// corresponding diagonal blocks. No global error bound survives the
// weighting; stability of the reduced model is likewise not guaranteed in
// general (both facts are part of the paper's argument).
#pragma once

#include <optional>

#include "lyap/lyapunov.hpp"
#include "mor/state_space.hpp"

namespace pmtbr::mor {

struct FwbtOptions {
  index fixed_order = -1;
  double error_tol = 0.0;  // on the weighted singular-value tail
  lyap::LyapunovOptions lyapunov{};
};

struct FwbtResult {
  ReducedModel model;
  std::vector<double> weighted_hsv;
};

/// Weighted balanced truncation of a descriptor system (E invertible).
/// Either weight may be empty (std::nullopt == identity). Weights must be
/// stable dense systems with E = I; the input weight needs as many outputs
/// as the plant has inputs, the output weight as many inputs as the plant
/// has outputs.
FwbtResult fwbt(const DescriptorSystem& sys, const std::optional<DenseSystem>& input_weight,
                const std::optional<DenseSystem>& output_weight, const FwbtOptions& opts = {});

/// MIMO Butterworth low-pass weight: `channels` identical uncoupled
/// filters of the given order and -3 dB cutoff, unit dc gain (D = 0).
DenseSystem butterworth_lowpass(index order, double f_cutoff_hz, index channels);

}  // namespace pmtbr::mor
