// Plain multipoint rational projection (MPPROJ): the same frequency samples
// PMTBR uses, but every (numerically independent) sample column enters the
// projection basis in arrival order — no SVD weighting or truncation.
//
// This is the baseline of paper Fig. 10: PMTBR's advantage over MPPROJ is
// exactly its ability to prune redundant directions.
#pragma once

#include "mor/sampling.hpp"
#include "mor/state_space.hpp"

namespace pmtbr::mor {

struct MpprojOptions {
  index max_order = -1;        // stop after this many basis columns (< 0: no cap)
  double deflation_tol = 1e-10;
};

struct MpprojResult {
  ReducedModel model;
};

/// Multipoint projection over explicit samples (weights ignored — MPPROJ
/// has no quadrature interpretation).
MpprojResult mpproj(const DescriptorSystem& sys, const std::vector<FrequencySample>& samples,
                    const MpprojOptions& opts = {});

}  // namespace pmtbr::mor
