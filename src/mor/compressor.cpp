#include "mor/compressor.hpp"

#include <algorithm>
#include <cmath>

#include "la/gemm_kernel.hpp"
#include "la/ops.hpp"
#include "la/svd.hpp"
#include "la/tsqr.hpp"
#include "util/check.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"

namespace pmtbr::mor {

IncrementalCompressor::IncrementalCompressor(index n, double drop_tol, CompressorMode mode)
    : n_(n), drop_tol_(drop_tol), mode_(mode) {
  PMTBR_REQUIRE(n >= 1, "state dimension must be positive");
  PMTBR_REQUIRE(drop_tol > 0 && drop_tol < 1, "drop_tol must be in (0, 1)");
}

double IncrementalCompressor::add_columns(const MatD& block) {
  PMTBR_REQUIRE(block.rows() == n_, "block row mismatch");
  PMTBR_CHECK_FINITE(block, "compressor sample block");
  PMTBR_TRACE_SCOPE("compressor.add_columns");
  if (block.cols() == 0) return 0.0;
  if (mode_ == CompressorMode::kBlocked) return add_block(block);
  const index basis_rank = rank_;
  double res_sq = 0.0;
  for (index j = 0; j < block.cols(); ++j) res_sq += add_column(block.col(j), basis_rank);
  return std::sqrt(res_sq);
}

double IncrementalCompressor::add_block(const MatD& block) {
  const index k = block.cols();
  const index br = rank_;

  // Drop threshold reference: the largest original column norm.
  double vmax = 0.0;
  for (index j = 0; j < k; ++j) {
    double s = 0.0;
    for (index i = 0; i < n_; ++i) s += block(i, j) * block(i, j);
    vmax = std::max(vmax, s);
  }
  vmax = std::sqrt(vmax);

  // Two passes of block classical Gram–Schmidt against the existing basis:
  //   C += Q·B,  B ← B − Qᵀ·C   (Q = basis rows, rank×n)
  // The second pass mops up the O(ε·κ) re-projection error, matching the
  // seed path's reorthogonalization.
  ws_.resid.resize(n_, k);
  for (index i = 0; i < n_; ++i) {
    const double* src = block.row_ptr(i);
    double* dst = ws_.resid.row_ptr(i);
    for (index j = 0; j < k; ++j) dst[j] = src[j];
  }
  ws_.coeff.resize(std::max<index>(br, 1), k);
  if (br > 0) {
    ws_.proj.resize(br, k);
    for (int pass = 0; pass < 2; ++pass) {
      la::detail::gemm<double, false>(br, k, n_, basis_t_.data(), n_, 1, ws_.resid.data(), k, 1,
                                      ws_.proj.data(), k, la::detail::GemmAcc::kSet);
      la::detail::gemm<double, false>(n_, k, br, basis_t_.data(), 1, n_, ws_.proj.data(), k, 1,
                                      ws_.resid.data(), k, la::detail::GemmAcc::kSub);
      ws_.coeff += ws_.proj;
    }
  }
  const double res = la::norm_fro(ws_.resid);

  // TSQR of the residual block, then an SVD of its small R factor: the
  // residual's left singular directions above drop_tol become new basis
  // rows, everything below is deflated. When the whole residual is already
  // below the drop threshold no singular value can survive (σ_max ≤ ‖resid‖_F),
  // so fully-deflated blocks — the common case late in a sampling sweep —
  // skip the factorization outright.
  index kept = 0;
  la::SvdResult sub;
  MatD qres;
  const double thresh = drop_tol_ * std::max(vmax, 1e-300);
  if (br < n_ && res > thresh) {
    auto f = la::tsqr(ws_.resid);
    qres = std::move(f.q);
    sub = la::svd(f.r);
    const index max_new = std::min<index>(n_ - br, static_cast<index>(sub.s.size()));
    while (kept < max_new && sub.s[static_cast<std::size_t>(kept)] > thresh) ++kept;
  }

  if (kept > 0) {
    // New directions, stored transposed: rows = (Q_res · U_kept)ᵀ = U_keptᵀ · Q_resᵀ.
    const index kr = qres.cols();
    const index old = static_cast<index>(basis_t_.size());
    basis_t_.resize(static_cast<std::size_t>(old + kept * n_));
    double* nd = basis_t_.data() + old;
    la::detail::gemm<double, false>(kept, n_, kr, sub.u.data(), 1, sub.u.cols(), qres.data(), 1,
                                    kr, nd, n_, la::detail::GemmAcc::kSet);
    // The block residual is only ε·‖resid‖-orthogonal to the basis, so a
    // kept direction with σ_i near drop_tol·vmax can overlap the old basis
    // by ε·‖resid‖/σ_i — far above ε. Re-orthogonalize the kept directions
    // (two CGS passes against the old basis, then MGS among themselves) so
    // Q stays orthonormal to machine precision; without this the R-based
    // singular-value tail is inflated by the double-counted components.
    if (br > 0) {
      MatD c1(kept, br);
      for (int pass = 0; pass < 2; ++pass) {
        la::detail::gemm<double, false>(kept, br, n_, nd, n_, 1, basis_t_.data(), 1, n_,
                                        c1.data(), br, la::detail::GemmAcc::kSet);
        la::detail::gemm<double, false>(kept, n_, br, c1.data(), br, 1, basis_t_.data(), n_, 1,
                                        nd, n_, la::detail::GemmAcc::kSub);
      }
    }
    for (index l = 0; l < kept; ++l) {
      double* vl = nd + l * n_;
      for (int pass = 0; pass < 2; ++pass) {
        for (index r = 0; r < l; ++r) {
          const double* vr = nd + r * n_;
          double d = 0;
          for (index i = 0; i < n_; ++i) d += vr[i] * vl[i];
          for (index i = 0; i < n_; ++i) vl[i] -= d * vr[i];
        }
      }
      double nrm = 0;
      for (index i = 0; i < n_; ++i) nrm += vl[i] * vl[i];
      nrm = std::sqrt(nrm);
      if (nrm > 0) {
        const double inv = 1.0 / nrm;
        for (index i = 0; i < n_; ++i) vl[i] *= inv;
      }
    }
    rank_ += kept;
  }
  obs::counter_add(obs::Counter::kCompressorColumnsKept, kept);
  obs::counter_add(obs::Counter::kCompressorColumnsDropped, k - kept);

  // R bookkeeping: block column j carries its coefficients along the
  // pre-existing basis plus Σ·Vᵀ along the kept new directions (the
  // deflated component is dropped, exactly like the seed path drops the
  // residual of a rejected column).
  for (index j = 0; j < k; ++j) {
    std::vector<double> col(static_cast<std::size_t>(br + kept));
    for (index i = 0; i < br; ++i) col[static_cast<std::size_t>(i)] = ws_.coeff(i, j);
    for (index i = 0; i < kept; ++i)
      col[static_cast<std::size_t>(br + i)] =
          sub.s[static_cast<std::size_t>(i)] * sub.v(j, i);
    r_cols_.push_back(std::move(col));
  }
  m_ += k;
  return res;
}

double IncrementalCompressor::add_column(std::vector<double> v, index basis_rank) {
  const double vnorm = la::norm2(v);
  std::vector<double> h;
  h.reserve(static_cast<std::size_t>(rank_) + 1);

  // Two passes of modified Gram–Schmidt for numerical orthogonality.
  std::vector<double> coeffs(static_cast<std::size_t>(rank_), 0.0);
  for (int pass = 0; pass < 2; ++pass) {
    for (index l = 0; l < rank_; ++l) {
      const double* qk = basis_row(l);
      double d = 0;
      for (index i = 0; i < n_; ++i) d += qk[i] * v[static_cast<std::size_t>(i)];
      coeffs[static_cast<std::size_t>(l)] += d;
      for (index i = 0; i < n_; ++i) v[static_cast<std::size_t>(i)] -= d * qk[i];
    }
  }
  h.assign(coeffs.begin(), coeffs.end());

  const double beta = la::norm2(v);
  // Component outside the pre-block basis: the final residual plus the
  // coefficients along directions this same block introduced.
  double res_sq = beta * beta;
  for (std::size_t l = static_cast<std::size_t>(basis_rank); l < coeffs.size(); ++l)
    res_sq += coeffs[l] * coeffs[l];

  if (beta > drop_tol_ * std::max(vnorm, 1e-300) && rank_ < n_) {
    for (auto& x : v) x /= beta;
    basis_t_.insert(basis_t_.end(), v.begin(), v.end());
    ++rank_;
    h.push_back(beta);
    obs::counter_add(obs::Counter::kCompressorColumnsKept);
  } else {
    obs::counter_add(obs::Counter::kCompressorColumnsDropped);
  }
  r_cols_.push_back(std::move(h));
  ++m_;
  return res_sq;
}

MatD IncrementalCompressor::r_dense() const {
  const index k = rank_;
  MatD r(std::max<index>(k, 1), std::max<index>(m_, 1));
  for (index j = 0; j < m_; ++j) {
    const auto& col = r_cols_[static_cast<std::size_t>(j)];
    for (std::size_t i = 0; i < col.size(); ++i) r(static_cast<index>(i), j) = col[i];
  }
  return r;
}

std::vector<double> IncrementalCompressor::singular_values() const {
  if (m_ == 0 || rank_ == 0) return {};
  auto s = la::singular_values(r_dense());
  s.resize(static_cast<std::size_t>(std::min<index>(rank_, m_)));
  return s;
}

MatD IncrementalCompressor::basis(index order) const {
  PMTBR_REQUIRE(order >= 1, "order must be positive");
  PMTBR_ENSURE(rank_ > 0, "no columns absorbed");
  const index k = rank_;
  const index q = std::min(order, std::min<index>(k, m_));
  const auto f = la::svd(r_dense());  // R = U S V^T; left vectors rotate Q
  MatD out(n_, q);
  // out = basisᵀ · U(:, 0:q): the basis rows are read through swapped
  // strides, the leading q columns of U through its full row stride.
  la::detail::gemm<double, false>(n_, q, k, basis_t_.data(), 1, n_, f.u.data(), f.u.cols(), 1,
                                  out.data(), q, la::detail::GemmAcc::kSet);
  return out;
}

index IncrementalCompressor::order_for_tolerance(double tol) const {
  const auto s = singular_values();
  if (s.empty()) return 0;
  const double s1 = s.front();
  if (s1 <= 0) return 1;
  double tail = 0;
  for (double x : s) tail += x;
  index q = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (tail <= tol * s1) break;
    tail -= s[i];
    ++q;
  }
  return std::max<index>(q, 1);
}

}  // namespace pmtbr::mor
