#include "mor/compressor.hpp"

#include <algorithm>
#include <cmath>

#include "la/ops.hpp"
#include "la/svd.hpp"
#include "util/check.hpp"
#include "util/obs/counters.hpp"

namespace pmtbr::mor {

IncrementalCompressor::IncrementalCompressor(index n, double drop_tol)
    : n_(n), drop_tol_(drop_tol) {
  PMTBR_REQUIRE(n >= 1, "state dimension must be positive");
  PMTBR_REQUIRE(drop_tol > 0 && drop_tol < 1, "drop_tol must be in (0, 1)");
}

double IncrementalCompressor::add_columns(const MatD& block) {
  PMTBR_REQUIRE(block.rows() == n_, "block row mismatch");
  PMTBR_CHECK_FINITE(block, "compressor sample block");
  const index basis_rank = rank();
  double res_sq = 0.0;
  for (index j = 0; j < block.cols(); ++j) res_sq += add_column(block.col(j), basis_rank);
  return std::sqrt(res_sq);
}

double IncrementalCompressor::add_column(std::vector<double> v, index basis_rank) {
  const double vnorm = la::norm2(v);
  std::vector<double> h;
  h.reserve(q_cols_.size() + 1);

  // Two passes of modified Gram–Schmidt for numerical orthogonality.
  std::vector<double> coeffs(q_cols_.size(), 0.0);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t k = 0; k < q_cols_.size(); ++k) {
      const auto& qk = q_cols_[k];
      double d = 0;
      for (index i = 0; i < n_; ++i)
        d += qk[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
      coeffs[k] += d;
      for (index i = 0; i < n_; ++i)
        v[static_cast<std::size_t>(i)] -= d * qk[static_cast<std::size_t>(i)];
    }
  }
  h.assign(coeffs.begin(), coeffs.end());

  const double beta = la::norm2(v);
  // Component outside the pre-block basis: the final residual plus the
  // coefficients along directions this same block introduced.
  double res_sq = beta * beta;
  for (std::size_t k = static_cast<std::size_t>(basis_rank); k < coeffs.size(); ++k)
    res_sq += coeffs[k] * coeffs[k];

  if (beta > drop_tol_ * std::max(vnorm, 1e-300) && rank() < n_) {
    for (auto& x : v) x /= beta;
    q_cols_.push_back(std::move(v));
    h.push_back(beta);
    obs::counter_add(obs::Counter::kCompressorColumnsKept);
  } else {
    obs::counter_add(obs::Counter::kCompressorColumnsDropped);
  }
  r_cols_.push_back(std::move(h));
  ++m_;
  return res_sq;
}

MatD IncrementalCompressor::r_dense() const {
  const index k = rank();
  MatD r(std::max<index>(k, 1), std::max<index>(m_, 1));
  for (index j = 0; j < m_; ++j) {
    const auto& col = r_cols_[static_cast<std::size_t>(j)];
    for (std::size_t i = 0; i < col.size(); ++i) r(static_cast<index>(i), j) = col[i];
  }
  return r;
}

std::vector<double> IncrementalCompressor::singular_values() const {
  if (m_ == 0 || rank() == 0) return {};
  auto s = la::singular_values(r_dense());
  s.resize(static_cast<std::size_t>(std::min<index>(rank(), m_)));
  return s;
}

MatD IncrementalCompressor::basis(index order) const {
  PMTBR_REQUIRE(order >= 1, "order must be positive");
  PMTBR_ENSURE(rank() > 0, "no columns absorbed");
  const index k = rank();
  const index q = std::min(order, std::min<index>(k, m_));
  const auto f = la::svd(r_dense());  // R = U S V^T; left vectors rotate Q
  MatD out(n_, q);
  for (index j = 0; j < q; ++j)
    for (index i = 0; i < n_; ++i) {
      double acc = 0;
      for (index l = 0; l < k; ++l)
        acc += q_cols_[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)] * f.u(l, j);
      out(i, j) = acc;
    }
  return out;
}

index IncrementalCompressor::order_for_tolerance(double tol) const {
  const auto s = singular_values();
  if (s.empty()) return 0;
  const double s1 = s.front();
  if (s1 <= 0) return 1;
  double tail = 0;
  for (double x : s) tail += x;
  index q = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (tail <= tol * s1) break;
    tail -= s[i];
    ++q;
  }
  return std::max<index>(q, 1);
}

}  // namespace pmtbr::mor
