#include "mor/error.hpp"

#include <cmath>
#include <numbers>

#include "la/ops.hpp"

namespace pmtbr::mor {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

std::vector<double> linspace_grid(double f_lo, double f_hi, index count) {
  PMTBR_REQUIRE(count >= 2 && f_hi > f_lo, "bad grid spec");
  std::vector<double> g(static_cast<std::size_t>(count));
  for (index k = 0; k < count; ++k)
    g[static_cast<std::size_t>(k)] =
        f_lo + (f_hi - f_lo) * static_cast<double>(k) / static_cast<double>(count - 1);
  return g;
}

std::vector<double> logspace_grid(double f_lo, double f_hi, index count) {
  PMTBR_REQUIRE(count >= 2 && f_hi > f_lo && f_lo > 0, "bad log grid spec");
  std::vector<double> g(static_cast<std::size_t>(count));
  const double l0 = std::log(f_lo), l1 = std::log(f_hi);
  for (index k = 0; k < count; ++k)
    g[static_cast<std::size_t>(k)] =
        std::exp(l0 + (l1 - l0) * static_cast<double>(k) / static_cast<double>(count - 1));
  return g;
}

std::vector<MatC> transfer_series(const DescriptorSystem& sys, const std::vector<double>& freqs) {
  PMTBR_REQUIRE(!freqs.empty(), "empty frequency grid");
  std::vector<MatC> out;
  out.reserve(freqs.size());
  for (const double f : freqs) out.push_back(sys.transfer(cd(0.0, kTwoPi * f)));
  return out;
}

std::vector<MatC> transfer_series(const DenseSystem& sys, const std::vector<double>& freqs) {
  PMTBR_REQUIRE(!freqs.empty(), "empty frequency grid");
  std::vector<MatC> out;
  out.reserve(freqs.size());
  for (const double f : freqs) out.push_back(sys.transfer(cd(0.0, kTwoPi * f)));
  return out;
}

ErrorStats compare_on_grid(const DescriptorSystem& full, const DenseSystem& reduced,
                           const std::vector<double>& freqs) {
  PMTBR_REQUIRE(!freqs.empty(), "empty frequency grid");
  PMTBR_REQUIRE(full.num_inputs() == reduced.num_inputs() &&
                    full.num_outputs() == reduced.num_outputs(),
                "port mismatch between full and reduced models");
  ErrorStats st;
  double sum_sq = 0;
  for (const double f : freqs) {
    const cd s(0.0, kTwoPi * f);
    const MatC hf = full.transfer(s);
    const MatC hr = reduced.transfer(s);
    MatC diff = hf;
    diff -= hr;
    const double err = la::norm_fro(diff);
    const double ref = la::norm_fro(hf);
    st.max_abs = std::max(st.max_abs, err);
    st.h_inf_scale = std::max(st.h_inf_scale, ref);
    if (ref > 0) st.max_rel = std::max(st.max_rel, err / ref);
    sum_sq += err * err;
  }
  st.rms_abs = std::sqrt(sum_sq / static_cast<double>(freqs.size()));
  return st;
}

std::vector<double> entry_error_series(const DescriptorSystem& full, const DenseSystem& reduced,
                                       const std::vector<double>& freqs, index out_idx,
                                       index in_idx, bool real_part_only) {
  PMTBR_REQUIRE(!freqs.empty(), "empty frequency grid");
  PMTBR_REQUIRE(0 <= out_idx && out_idx < full.num_outputs(), "output index out of range");
  PMTBR_REQUIRE(0 <= in_idx && in_idx < full.num_inputs(), "input index out of range");
  std::vector<double> out;
  out.reserve(freqs.size());
  for (const double f : freqs) {
    const cd s(0.0, kTwoPi * f);
    const cd hf = full.transfer(s)(out_idx, in_idx);
    const cd hr = reduced.transfer(s)(out_idx, in_idx);
    out.push_back(real_part_only ? std::abs(hf.real() - hr.real()) : std::abs(hf - hr));
  }
  return out;
}

}  // namespace pmtbr::mor
