#include "mor/tbr.hpp"

#include <algorithm>
#include <cmath>

#include "la/eig_sym.hpp"
#include "la/ops.hpp"
#include "la/svd.hpp"
#include "util/logging.hpp"

namespace pmtbr::mor {

namespace {

TbrResult tbr_standard(const MatD& a, const MatD& b, const MatD& c, const TbrOptions& opts) {
  const MatD x = lyap::controllability_gramian(a, b, opts.lyapunov);
  const MatD y = lyap::observability_gramian(a, c, opts.lyapunov);
  const MatD lx = la::psd_factor(x);
  const MatD ly = la::psd_factor(y);

  // Ly^T Lx = U Σ V^T; Σ are the Hankel singular values.
  const la::SvdResult f = la::svd(la::matmul_at(ly, lx));

  TbrResult out;
  out.hsv = f.s;

  // The balancing transform needs σ^{-1/2}: cap the order where σ becomes
  // numerically zero relative to σ1.
  const double s1 = f.s.empty() ? 0.0 : f.s.front();
  index max_usable = 0;
  for (const double s : f.s)
    if (s > 1e-13 * s1) ++max_usable;
  max_usable = std::max<index>(max_usable, 1);

  index order;
  if (opts.fixed_order > 0) {
    order = std::min<index>(opts.fixed_order, max_usable);
    if (order < opts.fixed_order)
      log_warn("tbr: requested order ", opts.fixed_order, " capped to ", order,
               " by numerically zero Hankel singular values");
  } else {
    double total = 0;
    for (const double s : f.s) total += s;
    double tail = total;
    order = 0;
    while (order < max_usable && tail > opts.error_tol * total) {
      tail -= f.s[static_cast<std::size_t>(order)];
      ++order;
    }
    order = std::max<index>(order, 1);
  }

  const index q = order;
  MatD v(a.rows(), q), w(a.rows(), q);
  for (index j = 0; j < q; ++j) {
    const double is = 1.0 / std::sqrt(f.s[static_cast<std::size_t>(j)]);
    for (index i = 0; i < a.rows(); ++i) {
      double accv = 0, accw = 0;
      for (index l = 0; l < lx.cols(); ++l) accv += lx(i, l) * f.v(l, j);
      for (index l = 0; l < ly.cols(); ++l) accw += ly(i, l) * f.u(l, j);
      v(i, j) = accv * is;
      w(i, j) = accw * is;
    }
  }

  out.model.v = v;
  out.model.w = w;
  MatD ar = la::matmul_at(w, la::matmul(a, v));
  MatD br = la::matmul_at(w, b);
  MatD cr = la::matmul(c, v);
  out.model.system = DenseSystem::standard(std::move(ar), std::move(br), std::move(cr));
  out.model.singular_values = f.s;
  out.error_bound = tbr_error_bound(out.hsv, q);
  return out;
}

}  // namespace

TbrResult tbr(const DescriptorSystem& sys, const TbrOptions& opts) {
  const DenseStandard d = to_dense_standard(sys);
  return tbr_standard(d.a, d.b, d.c, opts);
}

TbrResult tbr_dense(const MatD& a, const MatD& b, const MatD& c, const TbrOptions& opts) {
  return tbr_standard(a, b, c, opts);
}

TbrResult tbr_truncate(const DescriptorSystem& sys, const TbrResult& full, index order) {
  PMTBR_REQUIRE(order >= 1 && order <= full.model.v.cols(),
                "truncation order must be in [1, order of the given result]");
  TbrResult out;
  out.hsv = full.hsv;
  out.model.v = full.model.v.columns(0, order);
  out.model.w = full.model.w.columns(0, order);
  out.model.singular_values = full.model.singular_values;
  // Project the dense standard form, exactly as tbr() does (the balancing
  // bases satisfy W^T V = I in those coordinates).
  const DenseStandard d = to_dense_standard(sys);
  MatD ar = la::matmul_at(out.model.w, la::matmul(d.a, out.model.v));
  MatD br = la::matmul_at(out.model.w, d.b);
  MatD cr = la::matmul(d.c, out.model.v);
  out.model.system = DenseSystem::standard(std::move(ar), std::move(br), std::move(cr));
  out.error_bound = tbr_error_bound(full.hsv, order);
  return out;
}

std::vector<double> hankel_singular_values(const DescriptorSystem& sys,
                                           const lyap::LyapunovOptions& opts) {
  const DenseStandard d = to_dense_standard(sys);
  const MatD x = lyap::controllability_gramian(d.a, d.b, opts);
  const MatD y = lyap::observability_gramian(d.a, d.c, opts);
  const MatD lx = la::psd_factor(x);
  const MatD ly = la::psd_factor(y);
  auto s = la::singular_values(la::matmul_at(ly, lx));
  const std::size_t n = static_cast<std::size_t>(sys.n());
  if (s.size() < n) s.resize(n, 0.0);  // rank-deficient factors: pad with zeros
  return s;
}

double tbr_error_bound(const std::vector<double>& hsv, index order) {
  PMTBR_REQUIRE(order >= 0, "order must be nonnegative");
  double bound = 0;
  for (std::size_t i = static_cast<std::size_t>(order); i < hsv.size(); ++i)
    bound += hsv[i];
  return 2.0 * bound;
}

}  // namespace pmtbr::mor
