// Reduced-model realization: pole/residue extraction and Foster RC
// synthesis back into a netlist — the downstream step a circuit user needs
// to consume a reduced macromodel in a SPICE-class simulator.
//
// Foster synthesis is exact for SISO driving-point impedances with simple
// real negative poles and positive residues — which every passive RC
// driving point (and every congruence-reduced model of one) satisfies.
#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "mor/state_space.hpp"

namespace pmtbr::mor {

struct PoleResidue {
  std::vector<cd> poles;     // λ_i
  std::vector<cd> residues;  // r_i with H(s) ≈ Σ r_i / (s - λ_i)
};

/// Partial-fraction form of one transfer entry of a dense model (simple
/// poles assumed; near-defective systems yield inaccurate residues).
PoleResidue pole_residue(const DenseSystem& sys, index out_idx = 0, index in_idx = 0);

/// Evaluates a pole/residue model at s (for validation).
cd evaluate(const PoleResidue& pr, cd s);

struct FosterOptions {
  double imag_tol = 1e-6;      // |Im λ| <= tol*|λ| counts as a real pole
  double residue_tol = 1e-12;  // drop residues below tol * max residue
};

/// Synthesizes a series chain of parallel-RC blocks realizing the
/// driving-point impedance Σ r_i/(s + p_i): each term maps to
/// C = 1/r, R = r/p (p = -λ > 0, r > 0). Throws std::invalid_argument if
/// any retained pole is complex, unstable, or has a non-positive residue —
/// i.e. if the function is not an RC driving-point impedance.
circuit::Netlist synthesize_foster_rc(const PoleResidue& pr, const FosterOptions& opts = {});

}  // namespace pmtbr::mor
