// Frequency-domain error metrics between a full descriptor system and a
// reduced dense model, evaluated over a frequency grid — the measurement
// layer behind every accuracy figure in the paper.
#pragma once

#include <vector>

#include "mor/state_space.hpp"

namespace pmtbr::mor {

/// Evaluation grid in Hz.
std::vector<double> linspace_grid(double f_lo, double f_hi, index count);
std::vector<double> logspace_grid(double f_lo, double f_hi, index count);

/// H(s) at each grid frequency (s = j2πf).
std::vector<MatC> transfer_series(const DescriptorSystem& sys, const std::vector<double>& freqs);
std::vector<MatC> transfer_series(const DenseSystem& sys, const std::vector<double>& freqs);

struct ErrorStats {
  double max_abs = 0.0;   // max over grid of ||H_full - H_red||_F
  double max_rel = 0.0;   // max over grid of ||ΔH||_F / ||H_full||_F
  double rms_abs = 0.0;
  double h_inf_scale = 0.0;  // max over grid of ||H_full||_F (for normalizing)
};

ErrorStats compare_on_grid(const DescriptorSystem& full, const DenseSystem& reduced,
                           const std::vector<double>& freqs);

/// Error of a single transfer-function entry (out_idx, in_idx), as used by
/// the spiral-inductor resistance comparison (Fig. 7): value evaluated is
/// Re or |·| of the entry per `real_part_only`.
std::vector<double> entry_error_series(const DescriptorSystem& full, const DenseSystem& reduced,
                                       const std::vector<double>& freqs, index out_idx,
                                       index in_idx, bool real_part_only);

}  // namespace pmtbr::mor
