// PRIMA: passive reduced-order interconnect macromodeling (block Arnoldi
// moment matching + congruence projection) — the paper's main
// Krylov-subspace baseline.
//
// The reduced model matches `num_moments` block moments of the transfer
// function about the expansion point s0, so its order is (up to deflation)
// num_moments × num_ports — the port-count blowup that motivates the
// input-correlated variant of PMTBR (paper Sec. IV-C).
#pragma once

#include "mor/state_space.hpp"

namespace pmtbr::mor {

struct PrimaOptions {
  index num_moments = 2;   // block Krylov iterations
  double s0 = 0.0;         // real expansion point (rad/s)
  double deflation_tol = 1e-10;
};

struct PrimaResult {
  ReducedModel model;
};

/// PRIMA reduction; requires (s0 E - A) nonsingular.
PrimaResult prima(const DescriptorSystem& sys, const PrimaOptions& opts = {});

}  // namespace pmtbr::mor
