#include "mor/cross_gramian.hpp"

#include <cmath>
#include <numbers>

#include "la/ops.hpp"
#include "la/qr.hpp"
#include "la/schur.hpp"

namespace pmtbr::mor {

namespace {

// Realification for the *bilinear* (not sesquilinear) sampled cross-Gramian:
// the ±ω pair contributes 2 Re(z^R (z^L)^T) = Re(z^R) Re(z^L)^T - Im(z^R) Im(z^L)^T,
// so the imaginary columns on the L side carry a minus sign.
MatD realify_bilinear(const la::MatC& z, bool negate_imag) {
  MatD out(z.rows(), 2 * z.cols());
  const double flip = negate_imag ? -1.0 : 1.0;
  for (index i = 0; i < z.rows(); ++i)
    for (index j = 0; j < z.cols(); ++j) {
      out(i, 2 * j) = z(i, j).real();
      out(i, 2 * j + 1) = flip * z(i, j).imag();
    }
  return out;
}

// Real orthonormal basis spanning the invariant subspace of the first q
// (complex) eigenvector columns.
MatD realify_eigvecs(const la::MatC& vecs, index q) {
  MatD stacked(vecs.rows(), 2 * q);
  for (index j = 0; j < q; ++j)
    for (index i = 0; i < vecs.rows(); ++i) {
      stacked(i, 2 * j) = vecs(i, j).real();
      stacked(i, 2 * j + 1) = vecs(i, j).imag();
    }
  auto f = la::qr_pivoted(stacked, 1e-10);
  const index keep = std::min<index>(std::max<index>(f.rank, 1), q);
  return f.q.columns(0, keep);
}

}  // namespace

CrossGramianResult cross_gramian_pmtbr(const DescriptorSystem& sys,
                                       const CrossGramianOptions& opts) {
  PMTBR_REQUIRE(sys.num_inputs() == sys.num_outputs(),
                "cross-Gramian requires #inputs == #outputs");
  PMTBR_REQUIRE(!opts.bands.empty(), "cross-Gramian needs at least one frequency band");
  PMTBR_REQUIRE(opts.num_samples >= 1, "cross-Gramian needs at least one sample");
  PMTBR_REQUIRE(opts.truncation_tol >= 0, "truncation_tol must be nonnegative");
  const auto samples = sample_bands(opts.bands, opts.num_samples, opts.scheme);

  // Collect weighted controllability- and observability-side sample blocks.
  MatD zr(sys.n(), 0), zl(sys.n(), 0);
  const la::MatC bc = la::to_complex(sys.b());
  const la::MatC ct = la::to_complex(la::transpose(sys.c()));
  for (const auto& fs : samples) {
    const double scale = std::abs(fs.s.imag()) == 0.0
                             ? std::sqrt(fs.weight / (2.0 * std::numbers::pi))
                             : std::sqrt(fs.weight / std::numbers::pi);
    la::MatC r = sys.solve_shifted(fs.s, bc);
    la::MatC l = sys.solve_shifted_transpose(fs.s, ct);
    MatD rb = realify_bilinear(r, false);
    MatD lb = realify_bilinear(l, true);
    rb *= scale;
    lb *= scale;
    zr = la::hcat(zr, rb);
    zl = la::hcat(zl, lb);
  }

  // Joint orthonormal basis Q of [Z^R | Z^L]; compress the eigenproblem.
  const MatD q = la::orth(la::hcat(zr, zl), 1e-12);
  const MatD rr = la::matmul_at(q, zr);
  const MatD rl = la::matmul_at(q, zl);
  const MatD m = la::matmul(rr, la::transpose(rl));  // k×k, nonsymmetric

  const la::EigResult er = la::eig(m);   // sorted by descending |λ|
  const la::EigResult el = la::eig(la::transpose(m));

  CrossGramianResult out;
  out.eigenvalue_estimates = er.values;

  index order;
  if (opts.fixed_order > 0) {
    order = std::min<index>(opts.fixed_order, m.rows());
  } else {
    const double l1 = std::abs(er.values.empty() ? la::cd{0} : er.values.front());
    double tail = 0;
    for (const auto& v : er.values) tail += std::abs(v);
    order = 0;
    while (order < m.rows() && tail > opts.truncation_tol * std::max(l1, 1e-300)) {
      tail -= std::abs(er.values[static_cast<std::size_t>(order)]);
      ++order;
    }
    order = std::max<index>(order, 1);
  }
  if (opts.max_order > 0) order = std::min(order, opts.max_order);

  MatD xr = realify_eigvecs(er.vectors, order);
  MatD yl = realify_eigvecs(el.vectors, order);
  // Conjugate-pair deduplication can leave the two sides with slightly
  // different column counts; a Petrov–Galerkin projection needs them equal.
  const index common = std::min(xr.cols(), yl.cols());
  xr = xr.columns(0, common);
  yl = yl.columns(0, common);
  const MatD v = la::matmul(q, xr);
  const MatD w = la::matmul(q, yl);

  out.model.v = v;
  out.model.w = w;
  out.model.system = project(sys, v, w);
  for (const auto& lam : er.values) out.model.singular_values.push_back(std::abs(lam));
  return out;
}

}  // namespace pmtbr::mor
