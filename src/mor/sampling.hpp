// Frequency sampling schemes and quadrature weights for the sampled-Gramian
// integral (paper Eq. 8/10).
//
// Every (points, weights) pair implicitly defines a frequency weighting
// w(ω) (paper Sec. IV-B): uniform sampling over a band approximates the
// finite-bandwidth Gramian; multiple bands give the frequency-selective
// variant (Algorithm 2).
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace pmtbr::mor {

using la::cd;
using la::index;

/// One quadrature node s = jω with weight w (the √w scaling is applied by
/// the algorithms when forming ZW).
struct FrequencySample {
  cd s;
  double weight = 1.0;
};

/// A frequency band [f_lo, f_hi] in Hz (converted to rad/s internally).
struct Band {
  double f_lo = 0.0;
  double f_hi = 1e9;
};

enum class SamplingScheme {
  kUniform,        // rectangle rule, equally spaced in f
  kLogarithmic,    // equally spaced in log f (f_lo clamped above 0)
  kGaussLegendre,  // Gauss–Legendre nodes/weights mapped onto the band
};

/// `count` samples on a single band.
std::vector<FrequencySample> sample_band(const Band& band, index count, SamplingScheme scheme);

/// Samples distributed over several bands proportionally to bandwidth
/// (at least one sample per band) — Algorithm 2's point selection.
std::vector<FrequencySample> sample_bands(const std::vector<Band>& bands, index count,
                                          SamplingScheme scheme);

/// Gauss–Legendre nodes and weights on [-1, 1] (Newton on Legendre
/// polynomials; exposed for tests).
void gauss_legendre(index n, std::vector<double>& nodes, std::vector<double>& weights);

}  // namespace pmtbr::mor
