// Passivity and stability verification for reduced models (paper Sec. V-E).
//
// Congruence projection of a PRIMA-form MNA system is passive by
// construction; these checks verify the property numerically — for models
// produced by non-congruence methods (TBR, cross-Gramian, PVL) they report
// whether the usual sufficient conditions hold on a frequency grid.
#pragma once

#include <vector>

#include "mor/state_space.hpp"

namespace pmtbr::mor {

struct PassivityReport {
  bool stable = false;            // all poles strictly in the open left half-plane
  bool dissipative_on_grid = false;  // Re{H(jω)} ⪰ 0 (as a Hermitian form) at every grid point
  double min_pole_margin = 0.0;   // -max Re(pole)
  double min_dissipation = 0.0;   // min over grid of λ_min(H + H^H)/2
  double worst_frequency_hz = 0.0;
};

/// Checks an immittance-form model (inputs = port currents, outputs = port
/// voltages or vice versa): passivity requires H(jω) + H(jω)^H ⪰ 0.
PassivityReport check_passivity(const DenseSystem& sys, const std::vector<double>& grid_hz);

/// Structural passivity of a descriptor system: E = E^T ⪰ 0 and
/// A + A^T ⪯ 0 with B = C^T (the PRIMA-form sufficient condition that
/// congruence projection preserves). Evaluated via dense symmetric
/// eigenvalues — intended for reduced or test-sized systems.
bool is_structurally_passive(const DescriptorSystem& sys, double tol = 1e-9);

}  // namespace pmtbr::mor
