#include "mor/pvl.hpp"

#include <cmath>

#include "la/ops.hpp"
#include "sparse/splu.hpp"
#include "util/logging.hpp"

namespace pmtbr::mor {

// Derivation: with K = (s0 E - A)^{-1} E and r = (s0 E - A)^{-1} b,
//   H(s) = c^T (I + (s - s0) K)^{-1} r.
// Two-sided Lanczos builds V spanning K_q(K, r) and W spanning K_q(K^T, c)
// with W^T V = D (diagonal). The oblique projection
//   H_q(s) = (c^T V) (D + (s - s0) W^T K V)^{-1} (W^T r)
// matches 2q moments about s0; in descriptor form
//   E_r = W^T K V,  A_r = s0 E_r - D,  B_r = W^T r = beta1*delta1*e1,
//   C_r = c^T V.
PvlResult pvl(const DescriptorSystem& sys, const PvlOptions& opts) {
  PMTBR_REQUIRE(sys.num_inputs() == 1 && sys.num_outputs() == 1, "pvl handles SISO systems");
  PMTBR_REQUIRE(opts.order >= 1, "order must be positive");
  PMTBR_REQUIRE(opts.breakdown_tol > 0, "breakdown_tol must be positive");
  PMTBR_CHECK_FINITE(sys.b(), "pvl input matrix B");
  PMTBR_CHECK_FINITE(sys.c(), "pvl output matrix C");
  const index n = sys.n();

  const sparse::CsrD pencil = [&] {
    if (opts.s0 == 0.0) {
      sparse::CsrD neg_a = sys.a();
      for (auto& v : neg_a.values()) v = -v;
      return neg_a;
    }
    return sparse::combine(opts.s0, sys.e(), -1.0, sys.a());
  }();
  const sparse::SparseLuD lu(pencil, sys.ordering());

  const auto dotv = [n](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0;
    for (index i = 0; i < n; ++i)
      s += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
    return s;
  };

  // Start vectors: v1 ∝ r, w1 ∝ c^T.
  std::vector<double> v = lu.solve(sys.b().col(0));
  std::vector<double> w(static_cast<std::size_t>(n));
  for (index i = 0; i < n; ++i) w[static_cast<std::size_t>(i)] = sys.c()(0, i);
  const double beta1 = la::norm2(v);
  const double wnorm = la::norm2(w);
  PMTBR_ENSURE(beta1 > 0 && wnorm > 0, "zero start vector in PVL");
  for (auto& x : v) x /= beta1;
  for (auto& x : w) x /= wnorm;

  std::vector<std::vector<double>> vs{v}, ws{w};
  std::vector<std::vector<double>> kvs;  // K v_k, pre-orthogonalization
  std::vector<double> deltas;

  // Two-sided Lanczos with full rebiorthogonalization (robust at library
  // scale; exact-arithmetic T is tridiagonal, we form it exactly below).
  while (static_cast<index>(vs.size()) <= opts.order) {
    const std::size_t k = vs.size() - 1;
    const double delta = dotv(ws[k], vs[k]);
    if (std::abs(delta) < opts.breakdown_tol) {
      log_debug("pvl: serious breakdown at step ", k);
      vs.pop_back();
      ws.pop_back();
      break;
    }
    deltas.push_back(delta);

    std::vector<double> kv = lu.solve(sys.e().matvec(vs[k]));
    kvs.push_back(kv);
    if (static_cast<index>(vs.size()) == opts.order) break;  // basis complete

    std::vector<double> kw = sys.e().matvec_transpose(lu.solve_transpose(ws[k]));
    for (std::size_t j = 0; j < vs.size(); ++j) {
      const double dj = deltas[j];
      const double a = dotv(ws[j], kv) / dj;
      const double b = dotv(vs[j], kw) / dj;
      for (index i = 0; i < n; ++i) {
        kv[static_cast<std::size_t>(i)] -= a * vs[j][static_cast<std::size_t>(i)];
        kw[static_cast<std::size_t>(i)] -= b * ws[j][static_cast<std::size_t>(i)];
      }
    }
    const double nv = la::norm2(kv);
    const double nw = la::norm2(kw);
    if (nv < opts.breakdown_tol || nw < opts.breakdown_tol) {
      log_debug("pvl: Krylov space exhausted after ", vs.size(), " steps");
      break;
    }
    for (auto& x : kv) x /= nv;
    for (auto& x : kw) x /= nw;
    vs.push_back(std::move(kv));
    ws.push_back(std::move(kw));
  }

  const index q = static_cast<index>(vs.size());
  PMTBR_ENSURE(q >= 1, "PVL broke down before producing a model");

  // T = W^T K V (exactly, from the saved K v_j), D = diag(deltas).
  MatD t(q, q);
  for (index i = 0; i < q; ++i)
    for (index j = 0; j < q; ++j)
      t(i, j) = dotv(ws[static_cast<std::size_t>(i)], kvs[static_cast<std::size_t>(j)]);

  MatD er = t;
  MatD ar(q, q);
  for (index i = 0; i < q; ++i)
    for (index j = 0; j < q; ++j)
      ar(i, j) = opts.s0 * t(i, j) - (i == j ? deltas[static_cast<std::size_t>(i)] : 0.0);
  MatD br(q, 1);
  br(0, 0) = beta1 * deltas[0];
  MatD cr(1, q);
  for (index j = 0; j < q; ++j) {
    double acc = 0;
    for (index i = 0; i < n; ++i)
      acc += sys.c()(0, i) * vs[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
    cr(0, j) = acc;
  }

  PvlResult out;
  out.steps_completed = q;
  MatD vmat(n, q), wmat(n, q);
  for (index j = 0; j < q; ++j) {
    vmat.set_col(j, vs[static_cast<std::size_t>(j)]);
    wmat.set_col(j, ws[static_cast<std::size_t>(j)]);
  }
  out.model.v = std::move(vmat);
  out.model.w = std::move(wmat);
  out.model.system = DenseSystem(std::move(er), std::move(ar), std::move(br), std::move(cr));
  return out;
}

}  // namespace pmtbr::mor
