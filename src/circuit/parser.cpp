#include "circuit/parser.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace pmtbr::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void parse_error(int line, const std::string& msg) {
  throw std::invalid_argument("netlist parse error at line " + std::to_string(line) + ": " + msg);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '*' || tok[0] == ';') break;  // trailing comment
    out.push_back(tok);
  }
  return out;
}

}  // namespace

double parse_value(const std::string& token) {
  PMTBR_REQUIRE(!token.empty(), "empty value token");
  std::size_t pos = 0;
  double base = 0;
  try {
    base = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed value '" + token + "'");
  }
  const std::string suffix = lower(token.substr(pos));
  if (suffix.empty()) return base;
  // "meg" must be matched before "m".
  static const std::map<std::string, double> scale{
      {"f", 1e-15}, {"p", 1e-12}, {"n", 1e-9}, {"u", 1e-6}, {"m", 1e-3},
      {"k", 1e3},   {"meg", 1e6}, {"g", 1e9},  {"t", 1e12}};
  // Accept trailing unit letters after the scale (e.g. "1kohm", "2pf").
  for (const auto& [suf, mult] : std::map<std::string, double>{{"meg", 1e6}}) {
    if (suffix.rfind(suf, 0) == 0) return base * mult;
  }
  const auto it = scale.find(suffix.substr(0, 1));
  if (it != scale.end()) return base * it->second;
  throw std::invalid_argument("unknown value suffix '" + suffix + "' in '" + token + "'");
}

Netlist parse_netlist(std::istream& in) {
  Netlist nl;
  std::map<std::string, la::index> nodes{{"0", 0}, {"gnd", 0}};
  std::map<std::string, la::index> inductors;  // card name -> inductor index
  std::map<std::string, double> inductances;   // card name -> value
  struct PendingMutual {
    std::string l1, l2;
    double k;
    int line;
  };
  std::vector<PendingMutual> mutuals;

  const auto node_id = [&](const std::string& name) {
    const std::string key = lower(name);
    const auto it = nodes.find(key);
    if (it != nodes.end()) return it->second;
    const la::index id = nl.add_node();
    nodes.emplace(key, id);
    return id;
  };

  std::string line;
  int lineno = 0;
  bool ended = false;
  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (ended) parse_error(lineno, "content after .end");
    const std::string head = lower(toks[0]);

    if (head == ".end") {
      ended = true;
      continue;
    }
    if (head == ".port") {
      if (toks.size() != 2) parse_error(lineno, ".port expects one node");
      const auto n = node_id(toks[1]);
      if (n == 0) parse_error(lineno, "port cannot be at ground");
      nl.add_port(n);
      continue;
    }
    if (head[0] == '.') parse_error(lineno, "unknown directive '" + toks[0] + "'");

    switch (head[0]) {
      case 'r':
      case 'c':
      case 'l': {
        if (toks.size() != 4) parse_error(lineno, "element expects: name n1 n2 value");
        const auto n1 = node_id(toks[1]);
        const auto n2 = node_id(toks[2]);
        double v = 0;
        try {
          v = parse_value(toks[3]);
        } catch (const std::exception& e) {
          parse_error(lineno, e.what());
        }
        try {
          if (head[0] == 'r') {
            nl.add_resistor(n1, n2, v);
          } else if (head[0] == 'c') {
            nl.add_capacitor(n1, n2, v);
          } else {
            const auto idx = nl.add_inductor(n1, n2, v);
            const std::string key = lower(toks[0]);
            if (!inductors.emplace(key, idx).second)
              parse_error(lineno, "duplicate inductor name '" + toks[0] + "'");
            inductances.emplace(key, v);
          }
        } catch (const std::exception& e) {
          parse_error(lineno, e.what());
        }
        break;
      }
      case 'k': {
        if (toks.size() != 4) parse_error(lineno, "K expects: name L1 L2 k");
        double k = 0;
        try {
          k = parse_value(toks[3]);
        } catch (const std::exception& e) {
          parse_error(lineno, e.what());
        }
        if (!(std::abs(k) < 1.0)) parse_error(lineno, "coupling coefficient must satisfy |k| < 1");
        mutuals.push_back({lower(toks[1]), lower(toks[2]), k, lineno});
        break;
      }
      default:
        parse_error(lineno, "unknown card '" + toks[0] + "'");
    }
  }

  // Resolve mutual couplings after all inductors are known.
  for (const auto& m : mutuals) {
    const auto i1 = inductors.find(m.l1);
    const auto i2 = inductors.find(m.l2);
    if (i1 == inductors.end() || i2 == inductors.end())
      parse_error(m.line, "mutual references unknown inductor");
    const double mval = m.k * std::sqrt(inductances.at(m.l1) * inductances.at(m.l2));
    try {
      nl.add_mutual(i1->second, i2->second, mval);
    } catch (const std::exception& e) {
      parse_error(m.line, e.what());
    }
  }
  return nl;
}

Netlist parse_netlist_string(const std::string& text) {
  std::istringstream is(text);
  return parse_netlist(is);
}

util::Expected<DescriptorSystem> try_assemble_netlist(const std::string& text) {
  Netlist nl;
  try {
    nl = parse_netlist_string(text);
  } catch (const std::exception& e) {
    return util::Status(util::ErrorCode::kInvalidInput, e.what());
  }
  if (nl.num_ports() == 0)
    return util::Status(util::ErrorCode::kInvalidInput,
                        "netlist defines no ports (.port card required)");
  if (nl.num_nodes() == 0)
    return util::Status(util::ErrorCode::kInvalidInput, "netlist defines no nodes");
  try {
    return assemble_mna(nl);
  } catch (const std::exception& e) {
    return util::Status(util::ErrorCode::kInvalidInput, e.what());
  }
}

}  // namespace pmtbr::circuit
