#include "circuit/descriptor.hpp"

#include <cmath>
#include <utility>

#include "la/cholesky.hpp"
#include "la/lu.hpp"
#include "la/ops.hpp"
#include "sparse/factor_cache.hpp"
#include "sparse/rcm.hpp"
#include "sparse/splu.hpp"
#include "util/faultinject.hpp"
#include "util/obs/counters.hpp"
#include "util/obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace pmtbr {

using la::cd;
using la::index;
using la::MatC;
using la::MatD;

DescriptorSystem::DescriptorSystem(sparse::CsrD e, sparse::CsrD a, MatD b, MatD c)
    : e_(std::move(e)), a_(std::move(a)), b_(std::move(b)), c_(std::move(c)) {
  PMTBR_REQUIRE(e_.rows() == e_.cols() && a_.rows() == a_.cols(), "E, A must be square");
  PMTBR_REQUIRE(e_.rows() == a_.rows(), "E, A size mismatch");
  PMTBR_REQUIRE(b_.rows() == e_.rows(), "B row count must equal state count");
  PMTBR_REQUIRE(c_.cols() == e_.rows(), "C column count must equal state count");
  PMTBR_CHECK_FINITE(e_, "descriptor E matrix");
  PMTBR_CHECK_FINITE(a_, "descriptor A matrix");
  PMTBR_CHECK_FINITE(b_, "descriptor B matrix");
  PMTBR_CHECK_FINITE(c_, "descriptor C matrix");
}

DescriptorSystem DescriptorSystem::with_ports(const std::vector<index>& cols,
                                              bool restrict_outputs) const {
  MatD b(n(), static_cast<index>(cols.size()));
  for (index j = 0; j < static_cast<index>(cols.size()); ++j) {
    PMTBR_REQUIRE(cols[static_cast<std::size_t>(j)] < num_inputs(), "port index out of range");
    b.set_col(j, b_.col(cols[static_cast<std::size_t>(j)]));
  }
  MatD c = c_;
  if (restrict_outputs) {
    c = MatD(static_cast<index>(cols.size()), n());
    for (index i = 0; i < static_cast<index>(cols.size()); ++i) {
      PMTBR_REQUIRE(cols[static_cast<std::size_t>(i)] < num_outputs(), "port index out of range");
      const double* src = c_.row_ptr(cols[static_cast<std::size_t>(i)]);
      std::copy(src, src + n(), c.row_ptr(i));
    }
  }
  return DescriptorSystem(e_, a_, std::move(b), std::move(c));
}

const std::vector<index>& DescriptorSystem::ordering() const {
  Cache& cache = *cache_;
  util::MutexLock lock(cache.mutex);
  return ordering_locked(cache);
}

const std::vector<index>& DescriptorSystem::ordering_locked(Cache& cache) const {
  if (!cache.ordering) {
    const sparse::CsrD pattern = sparse::combine(1.0, e_, 1.0, a_);
    cache.ordering = std::make_shared<const std::vector<index>>(sparse::rcm_ordering(pattern));
  }
  return *cache.ordering;
}

std::shared_ptr<const sparse::SymbolicLuC> DescriptorSystem::symbolic_for(cd s) const {
  auto sym = try_symbolic_for(s);
  if (!sym.is_ok()) throw util::StatusError(sym.status());
  return std::move(sym).value();
}

util::Expected<std::shared_ptr<const sparse::SymbolicLuC>> DescriptorSystem::try_symbolic_for(
    cd s) const {
  Cache& cache = *cache_;
  util::MutexLock lock(cache.mutex);
  if (!cache.symbolic) {
    // Build from the pencil at this shift; concurrent first callers
    // serialize here so exactly one symbolic analysis is ever built.
    obs::counter_add(obs::Counter::kSymbolicCacheMiss);
    const std::vector<index> perm = ordering_locked(cache);
    auto lu = sparse::SparseLuC::factor(sparse::shifted_pencil(s, e_, a_), perm);
    if (!lu.is_ok()) return lu.status();
    cache.symbolic = std::make_shared<const sparse::SymbolicLuC>(lu.value().symbolic());
  } else {
    obs::counter_add(obs::Counter::kSymbolicCacheHit);
  }
  return cache.symbolic;
}

void DescriptorSystem::prepare_shifted(cd s) const { symbolic_for(s); }

namespace {

void mix_csr(util::FingerprintHasher& h, const sparse::CsrD& m) {
  h.mix_i64(static_cast<std::int64_t>(m.rows()));
  h.mix_i64(static_cast<std::int64_t>(m.cols()));
  h.mix_ints(m.row_ptr());
  h.mix_ints(m.col_idx());
  h.mix_doubles(m.values());
}

void mix_dense(util::FingerprintHasher& h, const MatD& m) {
  h.mix_i64(static_cast<std::int64_t>(m.rows()));
  h.mix_i64(static_cast<std::int64_t>(m.cols()));
  h.mix_doubles(m.data(), m.size());
}

}  // namespace

util::Fingerprint DescriptorSystem::content_fingerprint() const {
  Cache& cache = *cache_;
  util::MutexLock lock(cache.mutex);
  if (!cache.fingerprint) {
    util::FingerprintHasher h;
    mix_csr(h, e_);
    mix_csr(h, a_);
    mix_dense(h, b_);
    mix_dense(h, c_);
    cache.fingerprint = std::make_shared<const util::Fingerprint>(h.digest());
  }
  return *cache.fingerprint;
}

util::Status DescriptorSystem::try_prepare_shifted(cd s) const {
  auto sym = try_symbolic_for(s);
  if (!sym.is_ok()) return sym.status();
  return {};
}

namespace {

// δ = rel · max|entry|, added to the pencil's existing diagonal slots only
// (pattern-preserving; rows with no structural diagonal are left alone).
void regularize_diagonal(sparse::CsrC& m, double rel) {
  double max_abs = 0.0;
  for (const cd& v : m.values()) max_abs = std::max(max_abs, std::abs(v));
  const cd delta(rel * max_abs, 0.0);
  for (index i = 0; i < m.rows(); ++i)
    for (index k = m.row_ptr()[static_cast<std::size_t>(i)];
         k < m.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
      if (m.col_idx()[static_cast<std::size_t>(k)] == i)
        m.values()[static_cast<std::size_t>(k)] += delta;
}

}  // namespace

sparse::SparseLuC DescriptorSystem::factor_shifted(cd s) const {
  auto lu = try_factor_shifted(s, 0.0);
  if (!lu.is_ok()) throw util::StatusError(lu.status());
  return std::move(lu).value();
}

util::Expected<sparse::SparseLuC> DescriptorSystem::try_factor_shifted(cd s,
                                                                       double diag_reg) const {
  auto sym = try_symbolic_for(s);
  if (!sym.is_ok()) return sym.status();
  return numeric_factor(*sym.value(), s, diag_reg);
}

util::Expected<sparse::SparseLuC> DescriptorSystem::numeric_factor(
    const sparse::SymbolicLuC& symbolic, cd s, double diag_reg) const {
  PMTBR_TRACE_SCOPE("descriptor.factor_shifted");
  sparse::CsrC pencil = sparse::shifted_pencil(s, e_, a_);
  if (diag_reg > 0.0) regularize_diagonal(pencil, diag_reg);
  auto lu = sparse::SparseLuC::refactor(symbolic, pencil);
  if (lu.is_ok()) return lu;
  // Frozen pivot order degenerate at this shift: full factorization with
  // fresh pivoting (deterministic — depends only on the pencil values).
  return sparse::SparseLuC::factor(pencil, ordering());
}

util::Expected<std::shared_ptr<const sparse::SparseLuC>> DescriptorSystem::try_shared_factor(
    cd s, double diag_reg) const {
  auto sym = try_symbolic_for(s);
  if (!sym.is_ok()) return sym.status();
  sparse::FactorCache& cache = sparse::FactorCache::global();
  // Regularized factors are one-off rescues; injected faults are keyed per
  // solve attempt, so serving cached factors under an armed injector would
  // skip failure sites the robustness suite accounts for exactly.
  const bool cacheable = !(diag_reg > 0.0) && cache.enabled() && !util::fault::enabled();
  if (!cacheable) {
    auto lu = numeric_factor(*sym.value(), s, diag_reg);
    if (!lu.is_ok()) return lu.status();
    return std::make_shared<const sparse::SparseLuC>(std::move(lu).value());
  }
  util::FingerprintHasher h;
  const util::Fingerprint content = content_fingerprint();
  const util::Fingerprint structure = sym.value()->fingerprint();
  h.mix(content.hi);
  h.mix(content.lo);
  h.mix(structure.hi);
  h.mix(structure.lo);
  h.mix_double(s.real());
  h.mix_double(s.imag());
  const util::Fingerprint key = h.digest();
  if (auto hit = cache.lookup(key)) return hit;
  auto lu = numeric_factor(*sym.value(), s, diag_reg);
  if (!lu.is_ok()) return lu.status();
  auto shared = std::make_shared<const sparse::SparseLuC>(std::move(lu).value());
  cache.insert(key, shared);
  return shared;
}

MatC DescriptorSystem::solve_shifted(cd s, const MatC& rhs) const {
  auto x = try_solve_shifted(s, rhs);
  if (!x.is_ok()) throw util::StatusError(x.status());
  return std::move(x).value();
}

util::Expected<MatC> DescriptorSystem::try_solve_shifted(cd s, const MatC& rhs,
                                                         double diag_reg) const {
  PMTBR_TRACE_SCOPE("descriptor.solve_shifted");
  obs::counter_add(obs::Counter::kShiftedSolve);
  auto lu = try_shared_factor(s, diag_reg);
  if (!lu.is_ok()) return lu.status();
  return lu.value()->solve(rhs);
}

util::Expected<MatC> DescriptorSystem::try_transfer(cd s, double diag_reg) const {
  auto x = try_solve_shifted(s, la::to_complex(b_), diag_reg);
  if (!x.is_ok()) return x.status();
  return la::matmul(la::to_complex(c_), x.value());
}

MatC DescriptorSystem::solve_shifted_adjoint(cd s, const MatC& rhs) const {
  PMTBR_TRACE_SCOPE("descriptor.solve_shifted_adjoint");
  obs::counter_add(obs::Counter::kShiftedSolve);
  auto shared = try_shared_factor(s, 0.0);
  if (!shared.is_ok()) throw util::StatusError(shared.status());
  const sparse::SparseLuC& lu = *shared.value();
  MatC x(rhs.rows(), rhs.cols());
  util::parallel_for(0, rhs.cols(),
                     [&](index j) { x.set_col(j, lu.solve_adjoint(rhs.col(j))); });
  return x;
}

MatC DescriptorSystem::solve_shifted_transpose(cd s, const MatC& rhs) const {
  PMTBR_TRACE_SCOPE("descriptor.solve_shifted_transpose");
  obs::counter_add(obs::Counter::kShiftedSolve);
  auto shared = try_shared_factor(s, 0.0);
  if (!shared.is_ok()) throw util::StatusError(shared.status());
  const sparse::SparseLuC& lu = *shared.value();
  MatC x(rhs.rows(), rhs.cols());
  util::parallel_for(0, rhs.cols(),
                     [&](index j) { x.set_col(j, lu.solve_transpose(rhs.col(j))); });
  return x;
}

MatC DescriptorSystem::transfer(cd s) const {
  const MatC x = solve_shifted(s, la::to_complex(b_));
  return la::matmul(la::to_complex(c_), x);
}

DenseStandard to_dense_standard(const DescriptorSystem& sys) {
  const MatD e = sys.e().to_dense();
  const la::LuD lu(e);  // throws if E is singular
  DenseStandard out;
  out.a = lu.solve(sys.a().to_dense());
  out.b = lu.solve(sys.b());
  out.c = sys.c();
  return out;
}

DescriptorSystem to_symmetric_standard(const DescriptorSystem& sys) {
  const index n = sys.n();
  // Extract the diagonal of E and verify there is nothing off-diagonal.
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  const auto& e = sys.e();
  for (index i = 0; i < n; ++i)
    for (index k = e.row_ptr()[static_cast<std::size_t>(i)];
         k < e.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const index j = e.col_idx()[static_cast<std::size_t>(k)];
      const double v = e.values()[static_cast<std::size_t>(k)];
      PMTBR_REQUIRE(i == j || v == 0.0, "to_symmetric_standard requires diagonal E");
      if (i == j) d[static_cast<std::size_t>(i)] += v;
    }
  std::vector<double> s(static_cast<std::size_t>(n));  // E^{-1/2} diagonal
  for (index i = 0; i < n; ++i) {
    PMTBR_REQUIRE(d[static_cast<std::size_t>(i)] > 0.0,
                  "to_symmetric_standard requires positive diagonal E");
    s[static_cast<std::size_t>(i)] = 1.0 / std::sqrt(d[static_cast<std::size_t>(i)]);
  }

  sparse::Triplets<double> ta(n, n), te(n, n);
  te.reserve(static_cast<std::size_t>(n));
  ta.reserve(sys.a().nnz());
  const auto& a = sys.a();
  for (index i = 0; i < n; ++i) {
    te.add(i, i, 1.0);
    for (index k = a.row_ptr()[static_cast<std::size_t>(i)];
         k < a.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const index j = a.col_idx()[static_cast<std::size_t>(k)];
      ta.add(i, j,
             s[static_cast<std::size_t>(i)] * a.values()[static_cast<std::size_t>(k)] *
                 s[static_cast<std::size_t>(j)]);
    }
  }
  MatD b(n, sys.num_inputs());
  for (index i = 0; i < n; ++i)
    for (index j = 0; j < sys.num_inputs(); ++j)
      b(i, j) = s[static_cast<std::size_t>(i)] * sys.b()(i, j);
  MatD c(sys.num_outputs(), n);
  for (index i = 0; i < sys.num_outputs(); ++i)
    for (index j = 0; j < n; ++j) c(i, j) = sys.c()(i, j) * s[static_cast<std::size_t>(j)];
  return DescriptorSystem(sparse::CsrD(te), sparse::CsrD(ta), std::move(b), std::move(c));
}

DescriptorSystem to_energy_standard(const DescriptorSystem& sys) {
  // Fast path: diagonal E.
  {
    bool diagonal = true;
    const auto& e = sys.e();
    for (index i = 0; i < sys.n() && diagonal; ++i)
      for (index k = e.row_ptr()[static_cast<std::size_t>(i)];
           k < e.row_ptr()[static_cast<std::size_t>(i) + 1]; ++k)
        if (e.col_idx()[static_cast<std::size_t>(k)] != i &&
            e.values()[static_cast<std::size_t>(k)] != 0.0)
          diagonal = false;
    if (diagonal) return to_symmetric_standard(sys);
  }

  const MatD e = sys.e().to_dense();
  const MatD l = la::cholesky(e);  // throws if E is not SPD
  const la::LuD lul(l);

  const auto linv = [&](const MatD& m) {  // L^{-1} m
    MatD out(m.rows(), m.cols());
    for (index j = 0; j < m.cols(); ++j) out.set_col(j, lul.solve(m.col(j)));
    return out;
  };
  // Ã = L^{-1} A L^{-T} computed as transpose(L^{-1} transpose(L^{-1} A)).
  const MatD atil = la::transpose(linv(la::transpose(linv(sys.a().to_dense()))));
  const MatD btil = linv(sys.b());
  const MatD ctil = la::transpose(linv(la::transpose(sys.c())));
  return from_dense(atil, btil, ctil);
}

DescriptorSystem from_dense(const MatD& a, const MatD& b, const MatD& c) {
  const index n = a.rows();
  sparse::Triplets<double> te(n, n), ta(n, n);
  te.reserve(static_cast<std::size_t>(n));
  ta.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (index i = 0; i < n; ++i) {
    te.add(i, i, 1.0);
    for (index j = 0; j < n; ++j) ta.add(i, j, a(i, j));
  }
  return DescriptorSystem(sparse::CsrD(te), sparse::CsrD(ta), b, c);
}

}  // namespace pmtbr
