// Sparse descriptor state-space system E dx/dt = A x + B u, y = C x — the
// common currency between the circuit substrate and the MOR algorithms.
//
// E is allowed to be singular (standard for MNA); everything PMTBR needs is
// the shifted solve (sE - A)^{-1}, which stays well-posed as long as the
// pencil is regular. Because shifted_pencil() emits the union pattern of E
// and A for every shift, one symbolic LU analysis (pivot order + fill
// pattern) serves all shifts: the first solve performs the full
// Gilbert–Peierls factorization and every further shift is a cheap numeric
// refactorization. Both the RCM ordering and the symbolic analysis are
// cached behind a mutex, so concurrent solve_shifted calls from the thread
// pool are safe.
#pragma once

#include <memory>
#include <vector>

#include "la/matrix.hpp"
#include "sparse/csr.hpp"
#include "sparse/splu.hpp"
#include "util/annotations.hpp"
#include "util/fingerprint.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"

namespace pmtbr {

class DescriptorSystem {
 public:
  DescriptorSystem() = default;
  DescriptorSystem(sparse::CsrD e, sparse::CsrD a, la::MatD b, la::MatD c);

  la::index n() const { return e_.rows(); }          // states
  la::index num_inputs() const { return b_.cols(); }
  la::index num_outputs() const { return c_.rows(); }

  const sparse::CsrD& e() const { return e_; }
  const sparse::CsrD& a() const { return a_; }
  const la::MatD& b() const { return b_; }
  const la::MatD& c() const { return c_; }

  /// Restrict to a subset of input columns (paper Sec. IV-A: entropy grows
  /// with added inputs). Outputs are restricted to the matching rows when
  /// the system is reciprocal (C = B^T); pass restrict_outputs=false to keep
  /// all outputs.
  DescriptorSystem with_ports(const std::vector<la::index>& cols,
                              bool restrict_outputs = true) const;

  /// X = (sE - A)^{-1} R for a dense complex right-hand side.
  la::MatC solve_shifted(la::cd s, const la::MatC& rhs) const;

  /// X = (sE - A)^{-H} R (adjoint solve; observability-side samples).
  la::MatC solve_shifted_adjoint(la::cd s, const la::MatC& rhs) const;

  /// X = (sE - A)^{-T} R (plain transpose solve; cross-Gramian samples).
  la::MatC solve_shifted_transpose(la::cd s, const la::MatC& rhs) const;

  /// Transfer function H(s) = C (sE - A)^{-1} B.
  la::MatC transfer(la::cd s) const;

  /// Fill-reducing ordering of the union pattern, computed lazily and
  /// cached; safe to call concurrently.
  const std::vector<la::index>& ordering() const;

  /// Ensures the cached symbolic factorization of the sE - A pencil exists,
  /// building it from the pencil at shift `s` if not. Parallel drivers call
  /// this with their first shift before fanning out, so the frozen pivot
  /// order — and therefore every result — is independent of thread
  /// scheduling and identical to a serial run.
  void prepare_shifted(la::cd s) const;

  // Non-throwing variants for the fault-tolerant sampling pipeline
  // (docs/ROBUSTNESS.md): every data-caused failure — a singular pencil at
  // this shift, a degenerate frozen pivot, an injected test fault — travels
  // as a Status instead of an exception, so callers can retry, regularize,
  // or drop the sample.
  //
  // `diag_reg` is a RELATIVE diagonal regularization: when positive,
  // δ = diag_reg · max|pencil entry| is added to the pencil's existing
  // diagonal slots before factoring (pattern-preserving). It is the
  // last-resort fallback for a shift landing exactly on a pole; the
  // perturbation it introduces is O(diag_reg) relative, so keep it tiny.

  /// Status-carrying prepare_shifted: ensures the symbolic cache exists.
  util::Status try_prepare_shifted(la::cd s) const;

  /// X = (sE - A)^{-1} R, Status-carrying.
  util::Expected<la::MatC> try_solve_shifted(la::cd s, const la::MatC& rhs,
                                             double diag_reg = 0.0) const;

  /// H(s) = C (sE - A)^{-1} B, Status-carrying.
  util::Expected<la::MatC> try_transfer(la::cd s, double diag_reg = 0.0) const;

  /// Deterministic 128-bit hash of the system's content: the sparsity
  /// patterns AND values of E and A plus the dense B and C entries
  /// (dimensions included; name-like metadata is none of this class's
  /// business). Computed lazily and cached alongside the symbolic
  /// analysis, so copies of a system share it. Equal fingerprints mean
  /// bit-identical matrices — the keying ground truth for the cross-job
  /// model and factor caches (docs/SERVING.md).
  util::Fingerprint content_fingerprint() const;

 private:
  /// Shared lazily-computed state. Held behind one shared_ptr so copies of
  /// a system (which share the same E/A) also share the caches, and so the
  /// class stays copyable despite owning a mutex. Both cached fields are
  /// set-once shared_ptrs to const data: the mutex guards the pointer
  /// installation; the pointees are immutable, so references handed out
  /// after unlock stay valid and race-free.
  struct Cache {
    util::Mutex mutex;
    std::shared_ptr<const std::vector<la::index>> ordering PMTBR_GUARDED_BY(mutex);
    std::shared_ptr<const sparse::SymbolicLuC> symbolic PMTBR_GUARDED_BY(mutex);
    std::shared_ptr<const util::Fingerprint> fingerprint PMTBR_GUARDED_BY(mutex);
  };

  /// Builds (first call) or reads the cached RCM ordering. The caller must
  /// hold `cache.mutex` — enforced at compile time under -Wthread-safety.
  const std::vector<la::index>& ordering_locked(Cache& cache) const
      PMTBR_REQUIRES(cache.mutex);
  std::shared_ptr<const sparse::SymbolicLuC> symbolic_for(la::cd s) const;
  util::Expected<std::shared_ptr<const sparse::SymbolicLuC>> try_symbolic_for(la::cd s) const;
  sparse::SparseLuC factor_shifted(la::cd s) const;
  util::Expected<sparse::SparseLuC> try_factor_shifted(la::cd s, double diag_reg) const;
  /// Numeric phase against an already-resolved symbolic analysis (replay,
  /// full-factor fallback on a degenerate frozen pivot).
  util::Expected<sparse::SparseLuC> numeric_factor(const sparse::SymbolicLuC& symbolic,
                                                   la::cd s, double diag_reg) const;
  /// Factorization for solves, consulting the process-wide factor cache
  /// (sparse/factor_cache) when eligible: diag_reg == 0, cache enabled,
  /// fault injection disarmed. Exactly one try_symbolic_for lookup either
  /// way, so the symbolic hit/miss counters are unaffected by caching.
  util::Expected<std::shared_ptr<const sparse::SparseLuC>> try_shared_factor(
      la::cd s, double diag_reg) const;

  sparse::CsrD e_, a_;
  la::MatD b_, c_;
  mutable std::shared_ptr<Cache> cache_ = std::make_shared<Cache>();
};

/// Dense standard-form copy (Ad = E^{-1}A, Bd = E^{-1}B): requires E
/// invertible; used by the exact-TBR baseline and small-system tests.
struct DenseStandard {
  la::MatD a, b, c;
};
DenseStandard to_dense_standard(const DescriptorSystem& sys);

/// Wrap dense standard-form matrices (E = I) as a descriptor system.
DescriptorSystem from_dense(const la::MatD& a, const la::MatD& b, const la::MatD& c);

/// Symmetry-preserving standard form for systems with *diagonal* SPD E
/// (e.g. RC networks with grounded capacitors): x̃ = E^{1/2} x gives
/// Ã = E^{-1/2} A E^{-1/2}, B̃ = E^{-1/2} B, C̃ = C E^{-1/2}, Ẽ = I.
/// In these coordinates a reciprocal RC network satisfies Ã = Ã^T,
/// C̃ = B̃^T, so the controllability and observability Gramians coincide
/// and the PMTBR singular values estimate the Hankel singular values
/// directly (paper Sec. III-A). Throws if E is not diagonal positive.
DescriptorSystem to_symmetric_standard(const DescriptorSystem& sys);

/// Energy coordinates for general SPD E (RLC MNA with grounded caps and a
/// positive-definite inductance matrix): factors E = L L^T (dense Cholesky,
/// O(n^3) — fine at reduced-bench scale) and transforms x̃ = L^T x, so the
/// Euclidean norm of the transformed state equals the physical energy norm
/// x^T E x. One-sided PMTBR's SVD then ranks sample directions by energy
/// instead of by raw voltage/current magnitudes, which is decisive on RLC
/// systems where the two state families have wildly different scales.
/// Dispatches to the sparse-preserving diagonal path when E is diagonal.
DescriptorSystem to_energy_standard(const DescriptorSystem& sys);

}  // namespace pmtbr
