// Netlist serialization — the inverse of circuit/parser.hpp. Emits R/C/L/K
// and .port cards that parse_netlist() reads back verbatim, enabling
// synthesized macromodels to be handed to any SPICE-class tool.
#pragma once

#include <ostream>
#include <string>

#include "circuit/netlist.hpp"

namespace pmtbr::circuit {

/// Writes the netlist as parser-compatible cards. `title` becomes the
/// leading comment line.
void write_netlist(const Netlist& nl, std::ostream& out,
                   const std::string& title = "pmtbr synthesized netlist");

/// Convenience: serialize to a string.
std::string netlist_to_string(const Netlist& nl,
                              const std::string& title = "pmtbr synthesized netlist");

}  // namespace pmtbr::circuit
