// SPICE-like netlist text parser.
//
// Supported cards (case-insensitive, '*' or ';' comments, blank lines ok):
//   R<name> n1 n2 value          resistor (ohms)
//   C<name> n1 n2 value          capacitor (farads)
//   L<name> n1 n2 value          inductor (henries)
//   K<name> Lname1 Lname2 k      mutual coupling, M = k*sqrt(L1*L2), |k|<1
//   .port n                      current-injection port at node n
//   .end                         optional terminator
//
// Node names are arbitrary tokens; "0" and "gnd" are ground. Values accept
// engineering suffixes f p n u m k meg g t (e.g. 1.5p, 2MEG).
#pragma once

#include <istream>
#include <string>

#include "circuit/netlist.hpp"
#include "util/status.hpp"

namespace pmtbr::circuit {

/// Parses a netlist from a stream; throws std::invalid_argument with a
/// line-numbered message on malformed input.
Netlist parse_netlist(std::istream& in);

/// Convenience: parse from a string.
Netlist parse_netlist_string(const std::string& text);

/// Parses one engineering-notation value ("1.5p", "2MEG", "4.7"); throws on
/// malformed input. Exposed for tests.
double parse_value(const std::string& token);

/// Status-carrying parse + MNA assembly for serving-layer job construction
/// (docs/SERVING.md): netlist text arrives from untrusted clients, so
/// malformed cards and portless netlists travel as kInvalidInput instead of
/// exceptions — the service rejects the job without touching the batch.
util::Expected<DescriptorSystem> try_assemble_netlist(const std::string& text);

}  // namespace pmtbr::circuit
