#include "circuit/writer.hpp"

#include <cmath>
#include <sstream>

#include "util/csv.hpp"

namespace pmtbr::circuit {

void write_netlist(const Netlist& nl, std::ostream& out, const std::string& title) {
  out << "* " << title << '\n';
  int idx = 1;
  for (const auto& g : nl.conductances())
    out << 'R' << idx++ << ' ' << g.n1 << ' ' << g.n2 << ' ' << format_double(1.0 / g.value)
        << '\n';
  idx = 1;
  for (const auto& c : nl.capacitors())
    out << 'C' << idx++ << ' ' << c.n1 << ' ' << c.n2 << ' ' << format_double(c.value) << '\n';
  idx = 1;
  for (const auto& l : nl.inductors())
    out << 'L' << idx++ << ' ' << l.n1 << ' ' << l.n2 << ' ' << format_double(l.value) << '\n';
  idx = 1;
  for (const auto& m : nl.mutuals()) {
    const double l1 = nl.inductors()[static_cast<std::size_t>(m.l1)].value;
    const double l2 = nl.inductors()[static_cast<std::size_t>(m.l2)].value;
    const double k = m.m / std::sqrt(l1 * l2);
    out << 'K' << idx++ << " L" << (m.l1 + 1) << " L" << (m.l2 + 1) << ' ' << format_double(k)
        << '\n';
  }
  for (const auto p : nl.ports()) out << ".port " << p << '\n';
  out << ".end\n";
}

std::string netlist_to_string(const Netlist& nl, const std::string& title) {
  std::ostringstream os;
  write_netlist(nl, os, title);
  return os.str();
}

}  // namespace pmtbr::circuit
