// Parameterized generators for the seven benchmark circuits of the paper's
// evaluation section (Sec. VI). Each returns an assembled descriptor system;
// DESIGN.md documents how each stands in for the paper's extracted netlist.
//
// All generators build circuits whose E matrix is nonsingular (every node
// carries a grounded capacitor, inductance matrices are strictly diagonally
// dominant), so the exact-TBR baseline is applicable; PMTBR itself never
// needs this.
#pragma once

#include <cstdint>

#include "circuit/descriptor.hpp"
#include "circuit/netlist.hpp"

namespace pmtbr::circuit {

/// Uniform RC line: `segments` series resistors, grounded capacitor at each
/// internal node. Port at the driven end; optionally one at the far end.
struct RcLineParams {
  index segments = 50;
  double r_per_segment = 10.0;     // ohms
  double c_per_segment = 1e-13;    // farads
  bool far_end_port = false;
};
DescriptorSystem make_rc_line(const RcLineParams& p = {});

/// rows×cols RC mesh (Fig. 3): neighbor resistors, grounded capacitor at
/// every node, `num_ports` ports placed with uniform stride over the nodes.
struct RcMeshParams {
  index rows = 12;
  index cols = 12;
  index num_ports = 4;
  double r = 100.0;
  double c = 1e-13;
  /// Per-node resistance to ground (substrate-style): gives the mesh many
  /// comparable local relaxation modes, so the Hankel spectrum broadens
  /// with port count (the Fig. 3 phenomenon).
  double r_ground = 2000.0;
};
DescriptorSystem make_rc_mesh(const RcMeshParams& p = {});

/// Binary RC clock distribution tree (Figs. 5, 6): `levels` levels of
/// branching wire segments, larger sink capacitance at the leaves, driver
/// port at the root. SISO and finite-bandwidth to a good approximation.
struct ClockTreeParams {
  index levels = 7;
  double segment_r = 25.0;
  double segment_c = 2e-14;
  double leaf_load_c = 2e-13;
};
DescriptorSystem make_clock_tree(const ClockTreeParams& p = {});

/// Bus of `lines` coupled RC lines (Figs. 12–14): each line `segments` long,
/// neighbor lines coupled capacitively; one port at each line's near end.
struct MultiportRcParams {
  index lines = 32;
  index segments = 6;
  double r_per_segment = 50.0;
  double c_ground = 2e-14;
  double c_coupling = 1e-14;
};
DescriptorSystem make_multiport_rc(const MultiportRcParams& p = {});

/// On-chip spiral inductor (Figs. 7–9): series R–L ladder with inter-turn
/// mutual coupling decaying quadratically with turn distance, oxide
/// capacitance and substrate loss at each junction. One port (impedance).
struct SpiralParams {
  index turns = 30;
  double r_per_turn = 2.5;         // realistic on-chip Q (~5-15)
  double l_per_turn = 3e-10;
  double coupling = 0.25;          // M_ij = coupling * L / |i-j|^2
  double c_oxide = 4e-15;
  double r_substrate = 1500.0;
};
DescriptorSystem make_spiral(const SpiralParams& p = {});

/// PEEC-style lumped RLC resonator chain (Fig. 10): `sections` series R–L
/// segments with grounded capacitors whose values vary along the chain,
/// producing many sharp in-band resonances. SISO.
struct PeecParams {
  index sections = 40;
  double base_l = 1e-9;
  double base_c = 1e-12;
  double loss_r = 0.05;            // small series loss => high Q
  double variation = 0.6;          // per-section LC spread (log scale)
  std::uint64_t seed = 7;
};
DescriptorSystem make_peec(const PeecParams& p = {});

/// 18-pin shielded connector (Fig. 11): per-pin lumped transmission line
/// sections with (weak, shielded) neighbor-pin capacitive and inductive
/// coupling; ports at pin 0 near end (drive), pin 0 far end (through) and
/// pin 1 far end (crosstalk).
struct ConnectorParams {
  index pins = 18;
  index sections = 6;
  double section_l = 1.2e-9;
  double section_r = 0.4;
  double section_c = 4e-13;
  double coupling_c = 2e-14;       // shielded pins: weak coupling
  double coupling_k = 0.05;        // mutual = k * L between neighbor pins
  double termination_r = 400.0;    // lightly damped far-end termination

  /// Shield-cavity resonances: high-Q series-RLC branches on the ported
  /// pins, tuned above the 0-8 GHz band of interest. These are the large
  /// out-of-band features that trap global TBR effort in Fig. 11.
  bool cavity_branches = true;
  double cavity_f_lo = 1.0e10;
  double cavity_f_hi = 1.8e10;
  double cavity_l = 5e-10;
  double cavity_r = 0.05;          // series loss => Q in the hundreds
};
DescriptorSystem make_connector(const ConnectorParams& p = {});

/// Substrate coupling network (Figs. 15, 16): grid×grid resistive bulk mesh
/// with vertical RC to the backplane; `num_ports` contact nodes selected
/// with a seeded shuffle.
struct SubstrateParams {
  index grid = 16;
  index num_ports = 150;
  double r_lateral = 50.0;
  double r_vertical = 2000.0;
  double c_vertical = 5e-14;
  std::uint64_t seed = 11;
};
DescriptorSystem make_substrate(const SubstrateParams& p = {});

}  // namespace pmtbr::circuit
