// Linear circuit netlist: resistors, capacitors, (mutually coupled)
// inductors, and current-injection ports.
//
// Node 0 is ground. Ports are defined at a node against ground: the port
// input is an injected current, the port output is the node voltage — the
// impedance-parameter convention used throughout the paper's examples,
// which yields the reciprocal structure C = B^T for RC(L) networks.
#pragma once

#include <vector>

#include "circuit/descriptor.hpp"

namespace pmtbr::circuit {

using la::index;

class Netlist {
 public:
  Netlist() = default;

  /// Creates a new node and returns its id (>= 1; 0 is ground).
  index add_node();

  /// Ensures node ids up to `node` exist (convenience for grid generators).
  void ensure_node(index node);

  void add_resistor(index n1, index n2, double ohms);
  void add_conductance(index n1, index n2, double siemens);
  void add_capacitor(index n1, index n2, double farads);

  /// Returns the inductor's index for mutual coupling.
  index add_inductor(index n1, index n2, double henries);

  /// Mutual inductance between two previously added inductors. The assembled
  /// inductance matrix must stay positive definite (checked downstream by
  /// passivity tests, not here).
  void add_mutual(index l1, index l2, double henries);

  /// Current-injection port at `node` (against ground); port order is the
  /// order of addition.
  void add_port(index node);

  index num_nodes() const { return num_nodes_; }       // excluding ground
  index num_inductors() const { return static_cast<index>(inductors_.size()); }
  index num_ports() const { return static_cast<index>(ports_.size()); }

  struct TwoTerminal {
    index n1, n2;
    double value;
  };
  struct Mutual {
    index l1, l2;
    double m;
  };

  const std::vector<TwoTerminal>& conductances() const { return conductances_; }
  const std::vector<TwoTerminal>& capacitors() const { return capacitors_; }
  const std::vector<TwoTerminal>& inductors() const { return inductors_; }
  const std::vector<Mutual>& mutuals() const { return mutuals_; }
  const std::vector<index>& ports() const { return ports_; }

 private:
  void check_node(index node) const;

  index num_nodes_ = 0;
  std::vector<TwoTerminal> conductances_;  // stored as conductance values
  std::vector<TwoTerminal> capacitors_;
  std::vector<TwoTerminal> inductors_;
  std::vector<Mutual> mutuals_;
  std::vector<index> ports_;
};

/// Assembles the netlist into PRIMA-form MNA:
///   E = [[Ccap, 0], [0, L]],  A = -[[G, Einc], [-Einc^T, 0]],
///   states = [node voltages; inductor currents], B = C^T from the ports.
/// E + E^T >= 0 and -(A + A^T) >= 0 hold by construction, which is what
/// congruence-projection passivity arguments rely on (paper Sec. V-E).
DescriptorSystem assemble_mna(const Netlist& nl);

}  // namespace pmtbr::circuit
