#include "circuit/netlist.hpp"

#include <algorithm>

namespace pmtbr::circuit {

void Netlist::check_node(index node) const {
  PMTBR_REQUIRE(0 <= node && node <= num_nodes_, "node id out of range (use add_node)");
}

index Netlist::add_node() { return ++num_nodes_; }

void Netlist::ensure_node(index node) {
  PMTBR_REQUIRE(node >= 0, "node id must be nonnegative");
  num_nodes_ = std::max(num_nodes_, node);
}

void Netlist::add_resistor(index n1, index n2, double ohms) {
  PMTBR_REQUIRE(ohms > 0, "resistance must be positive");
  add_conductance(n1, n2, 1.0 / ohms);
}

void Netlist::add_conductance(index n1, index n2, double siemens) {
  check_node(n1);
  check_node(n2);
  PMTBR_REQUIRE(siemens > 0, "conductance must be positive");
  PMTBR_REQUIRE(n1 != n2, "element terminals must differ");
  conductances_.push_back({n1, n2, siemens});
}

void Netlist::add_capacitor(index n1, index n2, double farads) {
  check_node(n1);
  check_node(n2);
  PMTBR_REQUIRE(farads > 0, "capacitance must be positive");
  PMTBR_REQUIRE(n1 != n2, "element terminals must differ");
  capacitors_.push_back({n1, n2, farads});
}

index Netlist::add_inductor(index n1, index n2, double henries) {
  check_node(n1);
  check_node(n2);
  PMTBR_REQUIRE(henries > 0, "inductance must be positive");
  PMTBR_REQUIRE(n1 != n2, "element terminals must differ");
  inductors_.push_back({n1, n2, henries});
  return static_cast<index>(inductors_.size()) - 1;
}

void Netlist::add_mutual(index l1, index l2, double m) {
  PMTBR_REQUIRE(0 <= l1 && l1 < num_inductors() && 0 <= l2 && l2 < num_inductors(),
                "mutual references unknown inductor");
  PMTBR_REQUIRE(l1 != l2, "mutual must couple two distinct inductors");
  mutuals_.push_back({l1, l2, m});
}

void Netlist::add_port(index node) {
  check_node(node);
  PMTBR_REQUIRE(node != 0, "port cannot be at ground");
  ports_.push_back(node);
}

DescriptorSystem assemble_mna(const Netlist& nl) {
  const index nv = nl.num_nodes();
  const index nl_count = nl.num_inductors();
  const index n = nv + nl_count;
  const index p = nl.num_ports();
  PMTBR_REQUIRE(nv > 0, "netlist has no nodes");
  PMTBR_REQUIRE(p > 0, "netlist has no ports");

  sparse::Triplets<double> te(n, n), ta(n, n);

  // Stamp a two-terminal admittance-like element into a matrix block.
  const auto stamp = [](sparse::Triplets<double>& t, index n1, index n2, double v) {
    if (n1 > 0) t.add(n1 - 1, n1 - 1, v);
    if (n2 > 0) t.add(n2 - 1, n2 - 1, v);
    if (n1 > 0 && n2 > 0) {
      t.add(n1 - 1, n2 - 1, -v);
      t.add(n2 - 1, n1 - 1, -v);
    }
  };

  for (const auto& g : nl.conductances()) stamp(ta, g.n1, g.n2, -g.value);  // A = -G
  for (const auto& c : nl.capacitors()) stamp(te, c.n1, c.n2, c.value);

  // Inductor branch equations: L di/dt = v(n1) - v(n2); KCL gets -i at n1, +i at n2.
  for (index k = 0; k < nl_count; ++k) {
    const auto& l = nl.inductors()[static_cast<std::size_t>(k)];
    te.add(nv + k, nv + k, l.value);
    if (l.n1 > 0) {
      ta.add(l.n1 - 1, nv + k, -1.0);  // KCL: current leaves n1
      ta.add(nv + k, l.n1 - 1, 1.0);   // branch: +v(n1)
    }
    if (l.n2 > 0) {
      ta.add(l.n2 - 1, nv + k, 1.0);
      ta.add(nv + k, l.n2 - 1, -1.0);
    }
  }
  for (const auto& m : nl.mutuals()) {
    te.add(nv + m.l1, nv + m.l2, m.m);
    te.add(nv + m.l2, nv + m.l1, m.m);
  }

  la::MatD b(n, p);
  la::MatD c(p, n);
  for (index j = 0; j < p; ++j) {
    const index node = nl.ports()[static_cast<std::size_t>(j)];
    b(node - 1, j) = 1.0;
    c(j, node - 1) = 1.0;
  }

  return DescriptorSystem(sparse::CsrD(te), sparse::CsrD(ta), std::move(b), std::move(c));
}

}  // namespace pmtbr::circuit
