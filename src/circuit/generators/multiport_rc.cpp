#include "circuit/generators.hpp"

namespace pmtbr::circuit {

DescriptorSystem make_multiport_rc(const MultiportRcParams& p) {
  PMTBR_REQUIRE(p.lines >= 2 && p.segments >= 1, "need >= 2 lines, >= 1 segment");
  Netlist nl;
  // node(line, seg) for seg in [0, segments]; seg 0 is the driven end.
  std::vector<std::vector<index>> node(static_cast<std::size_t>(p.lines));
  for (index l = 0; l < p.lines; ++l) {
    node[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(p.segments) + 1);
    for (index s = 0; s <= p.segments; ++s)
      node[static_cast<std::size_t>(l)][static_cast<std::size_t>(s)] = nl.add_node();
  }

  for (index l = 0; l < p.lines; ++l) {
    const auto& ln = node[static_cast<std::size_t>(l)];
    nl.add_port(ln[0]);
    nl.add_capacitor(ln[0], 0, p.c_ground);
    // Weak dc leak so G is nonsingular.
    nl.add_resistor(ln[0], 0, 1e6 * p.r_per_segment);
    for (index s = 0; s < p.segments; ++s) {
      nl.add_resistor(ln[static_cast<std::size_t>(s)], ln[static_cast<std::size_t>(s) + 1],
                      p.r_per_segment);
      nl.add_capacitor(ln[static_cast<std::size_t>(s) + 1], 0, p.c_ground);
    }
  }
  // Neighbor-line coupling capacitors along the full length.
  for (index l = 0; l + 1 < p.lines; ++l) {
    for (index s = 1; s <= p.segments; ++s) {
      nl.add_capacitor(node[static_cast<std::size_t>(l)][static_cast<std::size_t>(s)],
                       node[static_cast<std::size_t>(l) + 1][static_cast<std::size_t>(s)],
                       p.c_coupling);
    }
  }
  return assemble_mna(nl);
}

}  // namespace pmtbr::circuit
