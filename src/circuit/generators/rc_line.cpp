#include "circuit/generators.hpp"

namespace pmtbr::circuit {

DescriptorSystem make_rc_line(const RcLineParams& p) {
  PMTBR_REQUIRE(p.segments >= 1, "rc_line needs at least one segment");
  Netlist nl;
  index prev = nl.add_node();
  nl.add_port(prev);
  nl.add_capacitor(prev, 0, p.c_per_segment);
  for (index k = 0; k < p.segments; ++k) {
    const index next = nl.add_node();
    nl.add_resistor(prev, next, p.r_per_segment);
    nl.add_capacitor(next, 0, p.c_per_segment);
    prev = next;
  }
  if (p.far_end_port) nl.add_port(prev);
  // Weak dc leak so the conductance matrix is nonsingular (PRIMA expands
  // about s0 = 0 and needs an invertible A).
  nl.add_resistor(prev, 0, 1e6 * p.r_per_segment);
  return assemble_mna(nl);
}

}  // namespace pmtbr::circuit
