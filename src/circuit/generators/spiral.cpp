#include "circuit/generators.hpp"

#include <cmath>

namespace pmtbr::circuit {

DescriptorSystem make_spiral(const SpiralParams& p) {
  PMTBR_REQUIRE(p.turns >= 2, "spiral needs at least two turns");
  // coupling/|i-j|^2 summed over all neighbors must stay below 1 for the
  // inductance matrix to remain strictly diagonally dominant (passive).
  PMTBR_REQUIRE(p.coupling >= 0 && p.coupling < 0.3, "coupling must be in [0, 0.3)");

  Netlist nl;
  // Junction nodes 1..turns+1; the port drives node 1, the far end returns
  // to ground through the last junction's substrate path.
  std::vector<index> junction(static_cast<std::size_t>(p.turns) + 1);
  for (auto& j : junction) j = nl.add_node();
  nl.add_port(junction[0]);

  std::vector<index> coil(static_cast<std::size_t>(p.turns));
  for (index t = 0; t < p.turns; ++t) {
    // Each turn: series R then L between consecutive junctions. An internal
    // node splits the R and L parts of the segment.
    const index mid = nl.add_node();
    nl.add_resistor(junction[static_cast<std::size_t>(t)], mid, p.r_per_turn);
    coil[static_cast<std::size_t>(t)] =
        nl.add_inductor(mid, junction[static_cast<std::size_t>(t) + 1], p.l_per_turn);
    // The internal node needs a (small) grounded capacitor so E stays
    // nonsingular; physically this is distributed oxide capacitance.
    nl.add_capacitor(mid, 0, 0.2 * p.c_oxide);
  }
  // Inter-turn magnetic coupling with quadratic distance decay.
  for (index i = 0; i < p.turns; ++i)
    for (index j = i + 1; j < p.turns; ++j) {
      const double d = static_cast<double>(j - i);
      nl.add_mutual(coil[static_cast<std::size_t>(i)], coil[static_cast<std::size_t>(j)],
                    p.coupling * p.l_per_turn / (d * d));
    }
  // Oxide capacitance and substrate loss at each junction.
  for (index t = 0; t <= p.turns; ++t) {
    nl.add_capacitor(junction[static_cast<std::size_t>(t)], 0, p.c_oxide);
    nl.add_resistor(junction[static_cast<std::size_t>(t)], 0, p.r_substrate);
  }
  // Far end of the coil tied to ground through a contact resistance.
  nl.add_resistor(junction[static_cast<std::size_t>(p.turns)], 0, 2.0 * p.r_per_turn);
  return assemble_mna(nl);
}

}  // namespace pmtbr::circuit
