#include "circuit/generators.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace pmtbr::circuit {

DescriptorSystem make_peec(const PeecParams& p) {
  PMTBR_REQUIRE(p.sections >= 2, "peec chain needs at least two sections");
  Rng rng(p.seed);

  Netlist nl;
  // Chain of nodes joined by lossy inductive segments; each node carries a
  // grounded capacitor. The per-section L and C values are spread over a
  // log range (seeded), which scatters many distinct high-Q resonances
  // across the band — the feature of the PEEC example that makes naive
  // quadrature hard (paper Sec. VI-A3).
  index prev = nl.add_node();
  nl.add_port(prev);
  nl.add_capacitor(prev, 0, p.base_c);
  nl.add_resistor(prev, 0, 1e5);  // weak dc reference

  for (index s = 0; s < p.sections; ++s) {
    const double spread_l = std::exp(p.variation * rng.uniform(-1.0, 1.0));
    const double spread_c = std::exp(p.variation * rng.uniform(-1.0, 1.0));
    const index mid = nl.add_node();
    const index next = nl.add_node();
    nl.add_resistor(prev, mid, p.loss_r);
    nl.add_inductor(mid, next, p.base_l * spread_l);
    nl.add_capacitor(mid, 0, 0.05 * p.base_c);
    nl.add_capacitor(next, 0, p.base_c * spread_c);
    prev = next;
  }
  // Light resistive termination keeps the dc operating point defined while
  // preserving sharp resonances.
  nl.add_resistor(prev, 0, 2e3);
  return assemble_mna(nl);
}

}  // namespace pmtbr::circuit
