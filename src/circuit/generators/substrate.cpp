#include "circuit/generators.hpp"

#include "util/rng.hpp"

namespace pmtbr::circuit {

DescriptorSystem make_substrate(const SubstrateParams& p) {
  const index n = p.grid * p.grid;
  PMTBR_REQUIRE(p.grid >= 2, "substrate grid must be at least 2x2");
  PMTBR_REQUIRE(p.num_ports >= 1 && p.num_ports <= n, "port count must be in [1, grid^2]");

  Netlist nl;
  nl.ensure_node(n);
  const auto id = [&](index r, index c) { return 1 + r * p.grid + c; };

  for (index r = 0; r < p.grid; ++r) {
    for (index c = 0; c < p.grid; ++c) {
      // Lateral bulk resistance to grid neighbors.
      if (c + 1 < p.grid) nl.add_resistor(id(r, c), id(r, c + 1), p.r_lateral);
      if (r + 1 < p.grid) nl.add_resistor(id(r, c), id(r + 1, c), p.r_lateral);
      // Vertical path to the grounded backplane: R parallel C.
      nl.add_resistor(id(r, c), 0, p.r_vertical);
      nl.add_capacitor(id(r, c), 0, p.c_vertical);
    }
  }

  // Contact (port) nodes: seeded shuffle, first num_ports entries.
  Rng rng(p.seed);
  const auto perm = rng.permutation(static_cast<std::size_t>(n));
  for (index k = 0; k < p.num_ports; ++k)
    nl.add_port(1 + static_cast<index>(perm[static_cast<std::size_t>(k)]));

  return assemble_mna(nl);
}

}  // namespace pmtbr::circuit
