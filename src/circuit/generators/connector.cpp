#include "circuit/generators.hpp"

namespace pmtbr::circuit {

DescriptorSystem make_connector(const ConnectorParams& p) {
  PMTBR_REQUIRE(p.pins >= 2 && p.sections >= 2, "need >= 2 pins and >= 2 sections");
  PMTBR_REQUIRE(p.coupling_k >= 0 && p.coupling_k < 0.5, "coupling_k must be in [0, 0.5)");

  Netlist nl;
  // node(pin, s) for s in [0, sections]; s = 0 is the near (board) end.
  std::vector<std::vector<index>> node(static_cast<std::size_t>(p.pins));
  std::vector<std::vector<index>> coil(static_cast<std::size_t>(p.pins));
  for (index pin = 0; pin < p.pins; ++pin) {
    auto& nn = node[static_cast<std::size_t>(pin)];
    nn.resize(static_cast<std::size_t>(p.sections) + 1);
    for (index s = 0; s <= p.sections; ++s) nn[static_cast<std::size_t>(s)] = nl.add_node();

    auto& cc = coil[static_cast<std::size_t>(pin)];
    cc.resize(static_cast<std::size_t>(p.sections));
    nl.add_capacitor(nn[0], 0, 0.5 * p.section_c);
    for (index s = 0; s < p.sections; ++s) {
      // Section: series R then L, shunt C to the shield (ground) at the far
      // node. The internal R|L split node carries a small shunt C so the
      // capacitance matrix stays nonsingular.
      const index mid = nl.add_node();
      nl.add_resistor(nn[static_cast<std::size_t>(s)], mid, p.section_r);
      cc[static_cast<std::size_t>(s)] =
          nl.add_inductor(mid, nn[static_cast<std::size_t>(s) + 1], p.section_l);
      nl.add_capacitor(mid, 0, 0.05 * p.section_c);
      nl.add_capacitor(nn[static_cast<std::size_t>(s) + 1], 0, p.section_c);
    }
    // Weak far-end termination (open pins in the measurement fixture).
    nl.add_resistor(nn[static_cast<std::size_t>(p.sections)], 0, p.termination_r);
    nl.add_resistor(nn[0], 0, p.termination_r);
  }

  // Neighbor-pin coupling: capacitive at matching section nodes, inductive
  // between matching section coils.
  for (index pin = 0; pin + 1 < p.pins; ++pin) {
    for (index s = 1; s <= p.sections; ++s)
      nl.add_capacitor(node[static_cast<std::size_t>(pin)][static_cast<std::size_t>(s)],
                       node[static_cast<std::size_t>(pin) + 1][static_cast<std::size_t>(s)],
                       p.coupling_c);
    for (index s = 0; s < p.sections; ++s)
      nl.add_mutual(coil[static_cast<std::size_t>(pin)][static_cast<std::size_t>(s)],
                    coil[static_cast<std::size_t>(pin) + 1][static_cast<std::size_t>(s)],
                    p.coupling_k * p.section_l);
  }

  // Shield-cavity branches: series R-L-C to ground at every section node of
  // the two ported pins, tuned log-spaced across [cavity_f_lo, cavity_f_hi].
  if (p.cavity_branches) {
    const index branches = 2 * p.sections;
    index bidx = 0;
    for (const index pin : {la::index{0}, la::index{1}}) {
      for (index s = 1; s <= p.sections; ++s, ++bidx) {
        const double frac = static_cast<double>(bidx) / static_cast<double>(branches - 1);
        const double f0 = p.cavity_f_lo * std::pow(p.cavity_f_hi / p.cavity_f_lo, frac);
        const double w0 = 2.0 * 3.14159265358979323846 * f0;
        const double cav_c = 1.0 / (w0 * w0 * p.cavity_l);
        const index m1 = nl.add_node();
        const index m2 = nl.add_node();
        nl.add_resistor(node[static_cast<std::size_t>(pin)][static_cast<std::size_t>(s)], m1,
                        p.cavity_r);
        nl.add_inductor(m1, m2, p.cavity_l);
        nl.add_capacitor(m2, 0, cav_c);
        // Tiny shunt keeps the capacitance matrix nonsingular at m1.
        nl.add_capacitor(m1, 0, 1e-17);
      }
    }
  }

  // Ports: drive pin 0 near end, observe pin 0 far end (through path with
  // transmission-line resonances) and the adjacent pin's far end (near-end
  // crosstalk path).
  nl.add_port(node[0][0]);
  nl.add_port(node[0][static_cast<std::size_t>(p.sections)]);
  nl.add_port(node[1][static_cast<std::size_t>(p.sections)]);
  return assemble_mna(nl);
}

}  // namespace pmtbr::circuit
