#include "circuit/generators.hpp"

namespace pmtbr::circuit {

DescriptorSystem make_clock_tree(const ClockTreeParams& p) {
  PMTBR_REQUIRE(p.levels >= 1 && p.levels <= 12, "levels must be in [1, 12]");
  Netlist nl;
  const index root = nl.add_node();
  nl.add_port(root);
  nl.add_capacitor(root, 0, p.segment_c);

  // Breadth-first construction of a binary tree of wire segments; wire
  // width (hence R, C per segment) tapers with depth as in sized clock
  // trees: upstream segments are wider (lower R, higher C).
  std::vector<index> frontier{root};
  for (index level = 1; level <= p.levels; ++level) {
    const double scale = static_cast<double>(level);
    const double r = p.segment_r * scale;
    const double c = p.segment_c / scale;
    std::vector<index> next;
    next.reserve(frontier.size() * 2);
    for (const index parent : frontier) {
      for (int child = 0; child < 2; ++child) {
        const index node = nl.add_node();
        nl.add_resistor(parent, node, r);
        nl.add_capacitor(node, 0, c);
        if (level == p.levels) nl.add_capacitor(node, 0, p.leaf_load_c);
        next.push_back(node);
      }
    }
    frontier = std::move(next);
  }
  // Weak dc path to ground at the root (driver output resistance).
  nl.add_resistor(root, 0, 50.0 * p.segment_r);
  return assemble_mna(nl);
}

}  // namespace pmtbr::circuit
