#include "circuit/generators.hpp"

namespace pmtbr::circuit {

DescriptorSystem make_rc_mesh(const RcMeshParams& p) {
  PMTBR_REQUIRE(p.rows >= 2 && p.cols >= 2, "mesh must be at least 2x2");
  PMTBR_REQUIRE(p.num_ports >= 1 && p.num_ports <= p.rows * p.cols,
                "port count must be in [1, rows*cols]");
  Netlist nl;
  const index n = p.rows * p.cols;
  nl.ensure_node(n);  // nodes 1..n, node id = 1 + r*cols + c

  const auto id = [&](index r, index c) { return 1 + r * p.cols + c; };
  for (index r = 0; r < p.rows; ++r) {
    for (index c = 0; c < p.cols; ++c) {
      nl.add_capacitor(id(r, c), 0, p.c);
      nl.add_resistor(id(r, c), 0, p.r_ground);
      if (c + 1 < p.cols) nl.add_resistor(id(r, c), id(r, c + 1), p.r);
      if (r + 1 < p.rows) nl.add_resistor(id(r, c), id(r + 1, c), p.r);
    }
  }

  // Uniform-stride port placement over the node list.
  for (index k = 0; k < p.num_ports; ++k) {
    const index node = 1 + (k * n) / p.num_ports;
    nl.add_port(node);
  }
  return assemble_mna(nl);
}

}  // namespace pmtbr::circuit
