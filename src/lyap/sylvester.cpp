#include "lyap/sylvester.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "la/ops.hpp"

namespace pmtbr::lyap {

using la::index;
using la::MatD;

MatD solve_sylvester(const MatD& a, const MatD& b, const MatD& c, const SylvesterOptions& opts) {
  PMTBR_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols(), "A, B must be square");
  PMTBR_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(), "C shape mismatch");
  PMTBR_REQUIRE(opts.max_iterations > 0, "max_iterations must be positive");
  PMTBR_REQUIRE(opts.tolerance > 0, "tolerance must be positive");
  PMTBR_CHECK_FINITE(a, "sylvester A matrix");
  PMTBR_CHECK_FINITE(b, "sylvester B matrix");
  PMTBR_CHECK_FINITE(c, "sylvester C matrix");
  const index n = a.rows(), m = b.rows();

  // Sign iteration on Z = [[A, C], [0, -B]]; sign(Z) = [[-I, 2X], [0, I]].
  MatD ak = a, bk = b, ck = c;
  for (int it = 0; it < opts.max_iterations; ++it) {
    const la::LuD lua(ak);
    const la::LuD lub(bk);
    const double s = std::exp(-(lua.log_abs_det() + lub.log_abs_det()) /
                              static_cast<double>(n + m));
    const MatD ainv = lua.inverse();
    const MatD binv = lub.inverse();

    const MatD t = la::matmul(ainv, la::matmul(ck, binv));
    for (index i = 0; i < n; ++i)
      for (index j = 0; j < m; ++j) ck(i, j) = 0.5 * (s * ck(i, j) + t(i, j) / s);

    double delta = 0, scale = 0;
    for (index i = 0; i < n; ++i)
      for (index j = 0; j < n; ++j) {
        const double next = 0.5 * (s * ak(i, j) + ainv(i, j) / s);
        const double target = (i == j) ? -1.0 : 0.0;
        delta += (next - target) * (next - target);
        scale += next * next;
        ak(i, j) = next;
      }
    for (index i = 0; i < m; ++i)
      for (index j = 0; j < m; ++j) {
        const double next = 0.5 * (s * bk(i, j) + binv(i, j) / s);
        const double target = (i == j) ? -1.0 : 0.0;
        delta += (next - target) * (next - target);
        scale += next * next;
        bk(i, j) = next;
      }
    if (std::sqrt(delta) <= opts.tolerance * std::sqrt(std::max(scale, 1.0))) {
      MatD x = ck;
      x *= 0.5;
      return x;
    }
  }
  PMTBR_ENSURE(false, "Sylvester sign iteration did not converge");
}

MatD cross_gramian(const MatD& a, const MatD& b, const MatD& c, const SylvesterOptions& opts) {
  PMTBR_REQUIRE(b.cols() == c.rows(), "cross-Gramian needs #inputs == #outputs");
  return solve_sylvester(a, a, la::matmul(b, c), opts);
}

double sylvester_residual(const MatD& a, const MatD& b, const MatD& c, const MatD& x) {
  PMTBR_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols(), "A, B must be square");
  PMTBR_REQUIRE(x.rows() == a.rows() && x.cols() == b.rows(), "X shape mismatch");
  PMTBR_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(), "C shape mismatch");
  MatD r = la::matmul(a, x) + la::matmul(x, b) + c;
  return la::norm_fro(r);
}

}  // namespace pmtbr::lyap
