// Dense Lyapunov solvers via the matrix sign function (Roberts iteration
// with determinant scaling).
//
// Solves A X + X A^T + Q = 0 for stable A using only LU inversions:
//   A_{k+1} = (c A_k + A_k^{-1}/c) / 2,   Q_{k+1} = (c Q_k + A_k^{-1} Q_k A_k^{-T}/c) / 2,
// with c = exp(-log|det A_k| / n); at convergence X = Q_inf / 2.
//
// This gives the exact-TBR baseline its Gramians without a real-Schur
// implementation (DESIGN.md decision 1). Cost is O(n^3) per iteration and
// convergence is quadratic; circuit matrices here converge in 10–25 steps.
#pragma once

#include "la/matrix.hpp"

namespace pmtbr::lyap {

struct LyapunovOptions {
  int max_iterations = 100;
  double tolerance = 1e-12;  // relative ||A_k + I|| convergence threshold
};

/// Solves A X + X A^T + Q = 0 (continuous-time controllability form) for
/// Hurwitz-stable A and symmetric PSD Q. Throws on non-convergence.
la::MatD solve_lyapunov(const la::MatD& a, const la::MatD& q,
                        const LyapunovOptions& opts = {});

/// Controllability Gramian: A X + X A^T + B B^T = 0.
la::MatD controllability_gramian(const la::MatD& a, const la::MatD& b,
                                 const LyapunovOptions& opts = {});

/// Observability Gramian: A^T Y + Y A + C^T C = 0.
la::MatD observability_gramian(const la::MatD& a, const la::MatD& c,
                               const LyapunovOptions& opts = {});

/// Residual ||A X + X A^T + Q||_F — used by tests and diagnostics.
double lyapunov_residual(const la::MatD& a, const la::MatD& x, const la::MatD& q);

}  // namespace pmtbr::lyap
