#include "lyap/lyapunov.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "la/ops.hpp"

namespace pmtbr::lyap {

using la::index;
using la::MatD;

MatD solve_lyapunov(const MatD& a, const MatD& q, const LyapunovOptions& opts) {
  PMTBR_REQUIRE(a.rows() == a.cols(), "A must be square");
  PMTBR_REQUIRE(q.rows() == a.rows() && q.cols() == a.cols(), "Q shape mismatch");
  PMTBR_REQUIRE(opts.max_iterations > 0, "max_iterations must be positive");
  PMTBR_REQUIRE(opts.tolerance > 0, "tolerance must be positive");
  PMTBR_CHECK_FINITE(a, "lyapunov A matrix");
  PMTBR_CHECK_FINITE(q, "lyapunov Q matrix");
  const index n = a.rows();

  MatD ak = a;
  MatD qk = q;
  for (int it = 0; it < opts.max_iterations; ++it) {
    const la::LuD lu(ak);
    // Determinant scaling accelerates the sign iteration dramatically for
    // stiff circuit time constants.
    const double c = std::exp(-lu.log_abs_det() / static_cast<double>(n));
    const MatD ainv = lu.inverse();

    // Q_{k+1} = (c Q_k + A^{-1} Q_k A^{-T} / c) / 2.
    const MatD t = la::matmul(ainv, la::matmul(qk, la::transpose(ainv)));
    for (index i = 0; i < n; ++i)
      for (index j = 0; j < n; ++j) qk(i, j) = 0.5 * (c * qk(i, j) + t(i, j) / c);

    // A_{k+1} = (c A_k + A_k^{-1} / c) / 2 and convergence check against -I
    // (A is Hurwitz, so sign(A) = -I).
    double delta = 0, scale = 0;
    for (index i = 0; i < n; ++i)
      for (index j = 0; j < n; ++j) {
        const double next = 0.5 * (c * ak(i, j) + ainv(i, j) / c);
        const double target = (i == j) ? -1.0 : 0.0;
        delta += (next - target) * (next - target);
        scale += next * next;
        ak(i, j) = next;
      }
    if (std::sqrt(delta) <= opts.tolerance * std::sqrt(std::max(scale, 1.0))) {
      MatD x = qk;
      x *= 0.5;
      // Symmetrize round-off.
      for (index i = 0; i < n; ++i)
        for (index j = i + 1; j < n; ++j) {
          const double s = 0.5 * (x(i, j) + x(j, i));
          x(i, j) = s;
          x(j, i) = s;
        }
      return x;
    }
  }
  PMTBR_ENSURE(false, "sign iteration did not converge (is A Hurwitz-stable?)");
}

MatD controllability_gramian(const MatD& a, const MatD& b, const LyapunovOptions& opts) {
  PMTBR_REQUIRE(b.rows() == a.rows(), "B row count must match A");
  return solve_lyapunov(a, la::matmul(b, la::transpose(b)), opts);
}

MatD observability_gramian(const MatD& a, const MatD& c, const LyapunovOptions& opts) {
  PMTBR_REQUIRE(c.cols() == a.rows(), "C column count must match A");
  return solve_lyapunov(la::transpose(a), la::matmul(la::transpose(c), c), opts);
}

double lyapunov_residual(const MatD& a, const MatD& x, const MatD& q) {
  PMTBR_REQUIRE(a.rows() == a.cols(), "A must be square");
  PMTBR_REQUIRE(x.rows() == a.rows() && x.cols() == a.rows(), "X shape mismatch");
  PMTBR_REQUIRE(q.rows() == a.rows() && q.cols() == a.rows(), "Q shape mismatch");
  const MatD ax = la::matmul(a, x);
  MatD r = ax + la::transpose(ax) + q;
  return la::norm_fro(r);
}

}  // namespace pmtbr::lyap
