// Dense Sylvester solver via the matrix sign function, used for the exact
// cross-Gramian baseline (paper Sec. V-D): A X_CG + X_CG A + B C = 0.
#pragma once

#include "la/matrix.hpp"

namespace pmtbr::lyap {

struct SylvesterOptions {
  int max_iterations = 100;
  double tolerance = 1e-12;
};

/// Solves A X + X B + C = 0 for Hurwitz-stable A and B (possibly different
/// sizes: A is n×n, B is m×m, C and X are n×m). Throws on non-convergence.
la::MatD solve_sylvester(const la::MatD& a, const la::MatD& b, const la::MatD& c,
                         const SylvesterOptions& opts = {});

/// Cross-Gramian: A X + X A + B C = 0 for a square system (p inputs = q
/// outputs so that B*C is n×n).
la::MatD cross_gramian(const la::MatD& a, const la::MatD& b, const la::MatD& c,
                       const SylvesterOptions& opts = {});

/// Residual ||A X + X B + C||_F.
double sylvester_residual(const la::MatD& a, const la::MatD& b, const la::MatD& c,
                          const la::MatD& x);

}  // namespace pmtbr::lyap
