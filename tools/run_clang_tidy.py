#!/usr/bin/env python3
"""Parallel clang-tidy driver for the pmtbr tree.

Runs clang-tidy (configured by the repo's .clang-tidy) over every
translation unit found in the compile database, restricted to the source
roots given on the command line. Exit status is nonzero if any file
produced a diagnostic, which makes it usable both from the CMake `lint`
target and from CI.

Usage:  python3 tools/run_clang_tidy.py [--clang-tidy BIN] -p BUILD_DIR [roots...]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys
from pathlib import Path


def load_compile_db(build_dir: Path) -> list[Path]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        sys.exit(
            f"error: {db_path} not found — configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo CMakeLists does "
            "this by default)"
        )
    entries = json.loads(db_path.read_text())
    return [Path(e["file"]).resolve() for e in entries]


def tidy_one(clang_tidy: str, build_dir: Path, src: Path) -> tuple[Path, int, str]:
    try:
        proc = subprocess.run(
            [clang_tidy, "--quiet", "-p", str(build_dir), str(src)],
            capture_output=True,
            text=True,
        )
    except FileNotFoundError:
        sys.exit(f"error: `{clang_tidy}` not found on PATH — install clang-tidy "
                 "or pass --clang-tidy /path/to/clang-tidy")
    # clang-tidy prints "N warnings generated" chatter on stderr even when
    # clean; diagnostics proper go to stdout.
    return src, proc.returncode, proc.stdout.strip()


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--clang-tidy", default="clang-tidy", help="clang-tidy binary")
    ap.add_argument("-p", dest="build_dir", required=True, type=Path,
                    help="build directory containing compile_commands.json")
    ap.add_argument("roots", nargs="*", type=Path,
                    help="restrict to files under these directories (default: all)")
    ap.add_argument("-j", dest="jobs", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args()

    roots = [r.resolve() for r in args.roots]
    files = load_compile_db(args.build_dir)
    if roots:
        files = [f for f in files
                 if any(f.is_relative_to(r) for r in roots)]
    if not files:
        sys.exit("error: no translation units matched the given roots")

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [pool.submit(tidy_one, args.clang_tidy, args.build_dir, f)
                   for f in sorted(files)]
        for fut in concurrent.futures.as_completed(futures):
            src, rc, out = fut.result()
            if rc != 0 or out:
                failed += 1
                print(f"--- {src}")
                if out:
                    print(out)
    print(f"run_clang_tidy: {len(files)} files, {failed} with diagnostics.")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
