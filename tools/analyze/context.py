"""Analysis context: file discovery, caching, and finding construction.

The context owns everything checks share — the repo root findings key
against, the file set (from the compile database when available, a
directory walk otherwise), cached raw/cleaned text per file, and the
optional libclang handle. Checks stay pure functions of the context.
"""

from __future__ import annotations

from pathlib import Path

from analyze import clangast, compiledb, lexer
from analyze.findings import Finding

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}
HEADER_SUFFIXES = {".hpp", ".h"}


class Context:
    def __init__(self, repo_root: Path, roots: list[Path],
                 compile_db: Path | None = None):
        self.repo_root = repo_root.resolve()
        self.roots = [r.resolve() for r in roots]
        self.tus: list[compiledb.TranslationUnit] = []
        if compile_db is not None:
            self.tus = compiledb.load(compile_db)
        self.files = self._discover()
        self._text: dict[Path, str] = {}
        self._clean: dict[Path, str] = {}

    # --- file discovery -----------------------------------------------------

    def _discover(self) -> list[Path]:
        files: set[Path] = set()
        for root in self.roots:
            if root.is_file():
                files.add(root.resolve())
                continue
            if self.tus:
                # Sources come from the compile database (what the build
                # actually compiles); headers from the tree, since they
                # have no TU entries of their own.
                files.update(t.file for t in self.tus
                             if t.file.is_relative_to(root) and t.file.exists())
                files.update(p.resolve() for p in root.rglob("*")
                             if p.suffix in HEADER_SUFFIXES)
            else:
                files.update(p.resolve() for p in root.rglob("*")
                             if p.suffix in CPP_SUFFIXES)
        return sorted(files)

    # --- cached file access -------------------------------------------------

    def text(self, path: Path) -> str:
        path = path.resolve()
        if path not in self._text:
            self._text[path] = path.read_text(errors="replace")
        return self._text[path]

    def clean_text(self, path: Path) -> str:
        """Comment/literal-stripped text, line structure preserved."""
        path = path.resolve()
        if path not in self._clean:
            self._clean[path] = lexer.clean_text(self.text(path))
        return self._clean[path]

    def clean_lines(self, path: Path) -> list[str]:
        return self.clean_text(path).split("\n")

    # --- scoping helpers ----------------------------------------------------

    def rel(self, path: Path) -> str:
        return path.resolve().relative_to(self.repo_root).as_posix()

    def cpp_files(self, under: str | None = None) -> list[Path]:
        """All discovered files, optionally restricted to a repo-relative
        prefix such as "src/" or "src/la/"."""
        if under is None:
            return list(self.files)
        prefix = under.rstrip("/") + "/"
        return [f for f in self.files if self.rel(f).startswith(prefix)]

    def src_root(self) -> Path | None:
        """The scanned root that holds the library tree (contains la/)."""
        for root in self.roots:
            base = root if root.is_dir() else root.parent
            if (base / "la").is_dir() or base.name == "la":
                return base if (base / "la").is_dir() else base.parent
        return None

    def scanned_rel_roots(self) -> list[str]:
        out = []
        for root in self.roots:
            try:
                out.append(root.relative_to(self.repo_root).as_posix())
            except ValueError:
                pass
        return out

    # --- libclang (optional) ------------------------------------------------

    def ast_available(self) -> bool:
        return bool(self.tus) and clangast.available()

    def parse_tu(self, path: Path):
        """libclang TU for `path` (must be a compile-database source);
        None when the AST backend is unavailable."""
        if not self.ast_available():
            return None
        path = path.resolve()
        for tu in self.tus:
            if tu.file == path:
                return clangast.parse(tu.file, tu.args)
        return None

    # --- findings -----------------------------------------------------------

    def finding(self, check: str, path: Path, line_no: int, token: str,
                message: str) -> Finding:
        return Finding(check, path, line_no, token, message, self.repo_root)
