"""Optional libclang backend.

When the ``clang`` Python bindings and a loadable ``libclang`` shared
library are present, checks can parse translation units with the exact
flags recorded in the compile database and refine their token-level
findings on the real AST. When either piece is missing — the common case
on minimal CI images — ``available()`` returns False and every check runs
its tokenizer fallback, which is the fully supported baseline.

The loader is defensive on purpose: any failure (missing module, missing
shared object, ABI mismatch, parse error) downgrades to the fallback
instead of failing the lint run.
"""

from __future__ import annotations

import glob
from pathlib import Path

_STATE: dict = {"probed": False, "index": None, "cindex": None}

_LIBCLANG_GLOBS = [
    "/usr/lib/llvm-*/lib/libclang.so*",
    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
    "/usr/local/lib/libclang.so*",
]


def _probe():
    if _STATE["probed"]:
        return
    _STATE["probed"] = True
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return
    try:
        index = cindex.Index.create()
    except Exception:
        # Default library lookup failed; try well-known locations.
        index = None
        for pattern in _LIBCLANG_GLOBS:
            for candidate in sorted(glob.glob(pattern), reverse=True):
                try:
                    cindex.Config.loaded = False
                    cindex.Config.set_library_file(candidate)
                    index = cindex.Index.create()
                    break
                except Exception:
                    continue
            if index is not None:
                break
        if index is None:
            return
    _STATE["index"] = index
    _STATE["cindex"] = cindex


def available() -> bool:
    _probe()
    return _STATE["index"] is not None


def cindex():
    """The clang.cindex module, or None."""
    _probe()
    return _STATE["cindex"]


def parse(file: Path, args: list[str]):
    """Parses `file` with compile-database `args`; None on any failure.

    `args` is the full recorded command line; the compiler executable and
    -c/-o pairs are stripped since libclang supplies its own driver.
    """
    _probe()
    if _STATE["index"] is None:
        return None
    clean_args: list[str] = []
    skip_next = False
    for i, a in enumerate(args):
        if skip_next:
            skip_next = False
            continue
        if i == 0 and not a.startswith("-"):
            continue  # compiler executable
        if a in ("-c", str(file)):
            continue
        if a == "-o":
            skip_next = True
            continue
        clean_args.append(a)
    try:
        return _STATE["index"].parse(str(file), args=clean_args)
    except Exception:
        return None


def member_calls(tu, names: set[str]):
    """Yields (cursor, object_type_spelling) for member calls named in
    `names` within the translation unit. Helper for type-aware checks."""
    mod = _STATE["cindex"]
    if tu is None or mod is None:
        return
    kind = mod.CursorKind.CXX_METHOD
    call = mod.CursorKind.CALL_EXPR
    member_ref = mod.CursorKind.MEMBER_REF_EXPR
    for cursor in tu.cursor.walk_preorder():
        if cursor.kind == call and cursor.spelling in names:
            obj_type = ""
            for child in cursor.get_children():
                if child.kind == member_ref:
                    for sub in child.get_children():
                        obj_type = sub.type.spelling
                        break
                    break
            ref = cursor.referenced
            if ref is not None and ref.kind == kind:
                yield cursor, obj_type
