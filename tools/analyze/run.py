#!/usr/bin/env python3
"""Launcher: python3 tools/analyze/run.py [roots...] [-p BUILDDIR]."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analyze.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
