"""Minimal C++ lexical cleanup for regex/token-based checks.

``clean_text`` removes comments and the contents of string/char literals
while preserving the line structure exactly, so downstream regexes see
only code and reported line numbers stay accurate. This is deliberately a
lexer, not a parser: block comments and literals spanning lines are
handled; raw strings get a best-effort treatment (the ``R"delim(...)``
form with an empty delimiter).
"""

from __future__ import annotations


def clean_text(text: str) -> str:
    """Returns `text` with comments removed and literal contents blanked.

    Newlines are preserved (including those inside removed block comments)
    so ``clean_text(t).splitlines()[i]`` lines up with the original file.
    String/char literals keep their quotes but lose their contents.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_end = ""

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""

        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                # Raw string? Look back for R / u8R / LR / uR / UR.
                j = i - 1
                prefix = ""
                while j >= 0 and text[j] in "uU8LR" and len(prefix) < 3:
                    prefix = text[j] + prefix
                    j -= 1
                glued_to_identifier = j >= 0 and (text[j].isalnum() or text[j] == "_")
                if prefix.endswith("R") and not glued_to_identifier:
                    # R"delim( ... )delim"
                    k = text.find("(", i + 1)
                    if k != -1:
                        delim = text[i + 1 : k]
                        raw_end = ")" + delim + '"'
                        state = "raw_string"
                        out.append('"')
                        i += 1
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                out.append("\n")
                state = "code"
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append("\n")
            i += 1
        elif state == "string":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                out.append('"')
                state = "code"
            elif c == "\n":  # unterminated; keep line structure
                out.append("\n")
                state = "code"
            i += 1
        elif state == "char":
            if c == "\\":
                i += 2
                continue
            if c == "'":
                out.append("'")
                state = "code"
            elif c == "\n":
                out.append("\n")
                state = "code"
            i += 1
        else:  # raw_string
            if text.startswith(raw_end, i):
                out.append('"')
                i += len(raw_end)
                state = "code"
                continue
            if c == "\n":
                out.append("\n")
            i += 1

    return "".join(out)


def clean_lines(text: str) -> list[str]:
    """Comment/literal-stripped lines, 1:1 with the original file's lines."""
    return clean_text(text).split("\n")


def line_of(text: str, pos: int) -> int:
    """1-based line number of character offset `pos` in `text`."""
    return text.count("\n", 0, pos) + 1


def matching_brace(text: str, open_pos: int) -> int:
    """Offset of the brace/paren/bracket matching the one at `open_pos`.

    `text` must already be comment/literal-clean. Returns -1 when
    unbalanced (truncated file); callers treat that as "no body found".
    """
    pairs = {"{": "}", "(": ")", "[": "]"}
    opener = text[open_pos]
    closer = pairs[opener]
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == opener:
            depth += 1
        elif c == closer:
            depth -= 1
            if depth == 0:
                return i
    return -1
