"""compile_commands.json loading.

The compile database is the source of truth for which translation units
are part of the build (dead files are not analyzed) and for the exact
flags each TU compiles with, which the optional libclang backend reuses.
"""

from __future__ import annotations

import json
import shlex
from pathlib import Path


class TranslationUnit:
    def __init__(self, file: Path, args: list[str], directory: Path):
        self.file = file
        self.args = args
        self.directory = directory


def _resolve(path: Path) -> Path:
    """Accepts a build directory or a direct path to the JSON file."""
    if path.is_dir():
        return path / "compile_commands.json"
    return path


def load(path: Path) -> list[TranslationUnit]:
    db_path = _resolve(path)
    if not db_path.exists():
        raise FileNotFoundError(
            f"{db_path} not found — configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo CMakeLists does "
            "this by default)")
    out: list[TranslationUnit] = []
    for entry in json.loads(db_path.read_text()):
        directory = Path(entry.get("directory", "."))
        file = Path(entry["file"])
        if not file.is_absolute():
            file = directory / file
        if "arguments" in entry:
            args = list(entry["arguments"])
        else:
            args = shlex.split(entry.get("command", ""))
        out.append(TranslationUnit(file.resolve(), args, directory))
    return out
