"""Check plugin registry.

A check registers itself at import time:

    from analyze import registry

    @registry.register(
        "my-check",
        "one-line description shown by --list-checks")
    def run(ctx):
        return [ctx.finding("my-check", path, line, token, message), ...]

The function receives an ``analyze.context.Context`` and returns a list of
``analyze.findings.Finding``. Checks decide their own file scope through
the context helpers (``ctx.cpp_files()``, ``ctx.rel()``); the driver only
orchestrates and applies the allowlist. ``analyze.checks`` imports every
bundled check module, so adding a file there (plus one import) is the
whole recipe for a new check — see docs/CORRECTNESS.md.
"""

from __future__ import annotations

from typing import Callable


class Check:
    def __init__(self, name: str, description: str, fn: Callable):
        self.name = name
        self.description = description
        self.fn = fn


_REGISTRY: dict[str, Check] = {}


def register(name: str, description: str):
    def deco(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"duplicate check name: {name}")
        _REGISTRY[name] = Check(name, description, fn)
        return fn

    return deco


def all_checks() -> dict[str, Check]:
    """Registered checks, sorted by name. Importing analyze.checks first
    is the caller's job (the CLI does it)."""
    return dict(sorted(_REGISTRY.items()))
