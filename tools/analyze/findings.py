"""Finding and allowlist handling shared by every check.

A finding is identified by ``check:file:token`` — the same key format the
legacy lint used, so the existing ``tools/lint_allowlist.txt`` carries over
unchanged. The allowlist is strict in both directions: an unsuppressed
finding fails the run, and so does an allowlist entry that no longer
matches any finding (scoped to the roots and checks that actually ran, so
a partial run cannot false-alarm on the rest of the file).
"""

from __future__ import annotations

from pathlib import Path


class Finding:
    """One diagnostic, keyed for allowlisting by (check, file, token)."""

    def __init__(self, check: str, path: Path, line_no: int, token: str,
                 message: str, repo_root: Path):
        self.check = check
        self.path = path
        self.line_no = line_no
        self.token = token
        self.message = message
        self.repo_root = repo_root

    def rel(self) -> str:
        return self.path.resolve().relative_to(self.repo_root).as_posix()

    def key(self) -> str:
        return f"{self.check}:{self.rel()}:{self.token}"

    def __str__(self) -> str:
        return f"{self.rel()}:{self.line_no}: [{self.check}] {self.message}"


class Allowlist:
    """``check:file:token`` suppression file with strict staleness."""

    def __init__(self, path: Path):
        self.path = path
        self.entries: set[str] = set()
        if path.exists():
            for raw in path.read_text().splitlines():
                line = raw.split("#", 1)[0].strip()
                if line:
                    self.entries.add(line)

    def split(self, findings: list[Finding]) -> tuple[list[Finding], set[str]]:
        """Returns (visible findings, used entries)."""
        used: set[str] = set()
        visible: list[Finding] = []
        for f in findings:
            if f.key() in self.entries:
                used.add(f.key())
            else:
                visible.append(f)
        return visible, used

    def stale(self, used: set[str], scanned_rel_roots: list[str],
              ran_checks: set[str]) -> set[str]:
        """Entries that matched nothing, restricted to what this run could
        have matched: the file must lie under a scanned root and the check
        must have run."""

        def in_scope(entry: str) -> bool:
            parts = entry.split(":")
            if len(parts) < 3:
                return True  # malformed: always report so it gets fixed
            check, path = parts[0], parts[1]
            if check not in ran_checks:
                return False
            return any(path == p or path.startswith(p.rstrip("/") + "/")
                       for p in scanned_rel_roots)

        return {e for e in self.entries - used if in_scope(e)}
