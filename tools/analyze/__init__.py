"""pmtbr static-analysis framework.

A plugin-registry analyzer for the project's C++ tree, driven by the CMake
compile database. Each check is a small module under ``analyze/checks/``
registered by name; the driver (``analyze.cli``) loads the translation-unit
list from ``compile_commands.json`` (falling back to a directory walk),
runs every check, applies the shared ``check:file:token`` allowlist, and
fails on new findings *and* on stale allowlist entries.

Entry points:
  python3 tools/analyze/run.py [roots...] [-p BUILDDIR]
  python3 tools/analyze       (directory execution)
  tools/lint_numerics.py      (deprecated shim, same behavior)

When the libclang Python bindings are importable, checks may refine their
findings on the AST (``analyze.clangast``); otherwise every check runs on
the built-in comment/string-stripping tokenizer, which is the fully
supported baseline.
"""

__all__ = ["cli", "context", "findings", "registry"]
