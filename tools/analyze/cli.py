"""Driver: load checks, run them over the tree, apply the allowlist.

Exit status is 1 when there are unsuppressed findings OR stale allowlist
entries, 0 when clean — same contract the legacy lint had, now covering
nine checks.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from analyze import clangast, registry
from analyze.context import Context
from analyze.findings import Allowlist

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_ALLOWLIST = REPO_ROOT / "tools" / "lint_allowlist.txt"


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="analyze",
        description="pmtbr plugin-based static analyzer "
                    "(compile_commands-driven; libclang when available)")
    ap.add_argument("roots", nargs="*", type=Path,
                    help="files or directories to scan (default: src)")
    ap.add_argument("-p", "--compile-commands", type=Path, default=None,
                    help="build directory or compile_commands.json; scopes "
                         "sources to the actual build and feeds libclang")
    ap.add_argument("--allowlist", type=Path, default=DEFAULT_ALLOWLIST,
                    help="suppression file (check:file:token per line)")
    ap.add_argument("--checks", default=None,
                    help="comma-separated subset of checks to run")
    ap.add_argument("--list-checks", action="store_true",
                    help="print registered checks and exit")
    ap.add_argument("--repo-root", type=Path, default=REPO_ROOT,
                    help=argparse.SUPPRESS)  # for the unit tests
    return ap


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    import analyze.checks  # noqa: F401  (registers the bundled checks)

    checks = registry.all_checks()
    if args.list_checks:
        for name, check in checks.items():
            print(f"{name:20s} {check.description}")
        return 0

    if args.checks is not None:
        wanted = {c.strip() for c in args.checks.split(",") if c.strip()}
        unknown = wanted - checks.keys()
        if unknown:
            print(f"analyze: unknown check(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        checks = {n: c for n, c in checks.items() if n in wanted}

    repo_root = args.repo_root.resolve()
    roots = [r if r.is_absolute() else repo_root / r for r in args.roots]
    if not roots:
        roots = [repo_root / "src"]

    started = time.monotonic()
    try:
        ctx = Context(repo_root, roots, compile_db=args.compile_commands)
    except FileNotFoundError as e:
        print(f"analyze: error: {e}", file=sys.stderr)
        return 2

    findings = []
    for check in checks.values():
        findings.extend(check.fn(ctx))
    findings.sort(key=lambda f: (f.rel(), f.line_no, f.check))

    allow = Allowlist(args.allowlist)
    visible, used = allow.split(findings)
    stale = allow.stale(used, ctx.scanned_rel_roots(), set(checks))

    for f in visible:
        print(f, file=sys.stderr)
    for s in sorted(stale):
        print(f"stale allowlist entry (no longer matches anything): {s}",
              file=sys.stderr)

    elapsed = time.monotonic() - started
    backend = "libclang" if ctx.ast_available() else "tokenizer"
    if visible or stale:
        print(
            f"\nanalyze: {len(visible)} finding(s), {len(stale)} stale "
            "allowlist entr(y/ies). Fix them or add a justified line to "
            f"{args.allowlist.name}.",
            file=sys.stderr)
        return 1
    print(f"analyze: clean ({len(ctx.files)} files, {len(checks)} checks, "
          f"{len(used)} allowlisted, {backend} backend, {elapsed:.1f}s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
