"""Directory/module execution: python3 tools/analyze  or  python3 -m analyze."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analyze.cli import main  # noqa: E402

sys.exit(main())
