"""narrowing-index: int-typed loop/index arithmetic over matrix extents.

The hot paths in la/ and sparse/ index with ``la::index`` (ptrdiff_t).
A loop counter declared ``int`` bounded by ``.rows()``/``.cols()``/
``.size()``/``nnz()`` — or a ``static_cast<int>`` of such an extent —
truncates above 2^31 elements and, worse, mixes signedness in the
comparison. Constant-bounded ``int`` counters (sweep limits etc.) are
fine and not flagged.
"""

from __future__ import annotations

import re

from analyze import lexer, registry

SCOPES = ("src/la/", "src/sparse/")

EXTENT_RE = r"(?:\.rows\s*\(\)|\.cols\s*\(\)|\.size\s*\(\)|\bnnz\s*\(\)|\brows_\b|\bcols_\b)"

# for (int i = ...; <cond mentioning an extent>; ...)
FOR_INT_RE = re.compile(
    r"\bfor\s*\(\s*(?:unsigned\s+int|unsigned|int|short|long)\s+(\w+)\s*[=:]"
    r"[^;{]*;[^;{]*" + EXTENT_RE)

# static_cast<int>(expr-with-extent)
NARROW_CAST_RE = re.compile(
    r"static_cast<\s*(?:unsigned\s+int|unsigned|int|short)\s*>\s*\(")


@registry.register(
    "narrowing-index",
    "int/size_t narrowing in loop/index arithmetic of la/ and sparse/")
def run(ctx):
    out = []
    extent = re.compile(EXTENT_RE)
    for path in ctx.cpp_files():
        rel = ctx.rel(path)
        if not any(rel.startswith(s) for s in SCOPES):
            continue
        clean = ctx.clean_text(path)
        for m in FOR_INT_RE.finditer(clean):
            line = lexer.line_of(clean, m.start())
            out.append(ctx.finding(
                "narrowing-index", path, line, m.group(1),
                f"`int {m.group(1)}` loop counter bounded by a matrix "
                "extent — use la::index (ptrdiff_t) so the comparison "
                "neither narrows nor mixes signedness"))
        for m in NARROW_CAST_RE.finditer(clean):
            close = lexer.matching_brace(clean, m.end() - 1)
            if close == -1:
                continue
            arg = clean[m.end():close]
            if not extent.search(arg):
                continue
            token = re.sub(r"\s+", " ", clean[m.start():close + 1])[:60]
            line = lexer.line_of(clean, m.start())
            out.append(ctx.finding(
                "narrowing-index", path, line, "static_cast<int>",
                f"`{token}`: narrowing a matrix extent to int — keep it "
                "in la::index/std::size_t through the arithmetic"))
    return out
