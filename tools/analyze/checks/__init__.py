"""Bundled checks. Importing this package registers every check.

To add a check: create a module here with a function decorated by
``registry.register("name", "description")`` and import it below. Keys in
tools/lint_allowlist.txt use the registered name.
"""

from analyze.checks import (  # noqa: F401
    abs_squared,
    alloc_in_parallel,
    counter_discipline,
    discarded_status,
    float_eq,
    lock_outside_api,
    missing_guard,
    narrowing_index,
    raw_chrono,
    raw_data_access,
)
