"""raw-data-access: raw buffer indexing outside the owning container.

``data_[`` / ``val_[`` / ``ptr_[`` / ``col_[`` bypass every shape check;
each raw member may only be indexed inside the file(s) that own it.
"""

from __future__ import annotations

import re

from analyze import registry

RAW_MEMBER_OWNERS = {
    "data_": {"src/la/matrix.hpp"},
    "val_": {"src/sparse/csr.hpp", "src/sparse/csr.cpp"},
    "ptr_": {"src/sparse/csr.hpp", "src/sparse/csr.cpp"},
    "col_": {"src/sparse/csr.hpp", "src/sparse/csr.cpp"},
}

RAW_MEMBER_RE = re.compile(r"\b(data_|val_|ptr_|col_)\s*\[")


@registry.register(
    "raw-data-access",
    "raw data_[]/val_[]/ptr_[]/col_[] indexing outside the owning container")
def run(ctx):
    out = []
    for path in ctx.cpp_files():
        rel = ctx.rel(path)
        for i, line in enumerate(ctx.clean_lines(path), 1):
            for m in RAW_MEMBER_RE.finditer(line):
                member = m.group(1)
                if rel in RAW_MEMBER_OWNERS.get(member, set()):
                    continue
                out.append(ctx.finding(
                    "raw-data-access", path, i, member,
                    f"raw `{member}[...]` access outside the owning class "
                    "(use the shape-checked accessors)"))
    return out
