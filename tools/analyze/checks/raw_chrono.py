"""raw-chrono: std::chrono timing in src/ outside the observability layer.

Ad-hoc clocks bypass the scoped tracing that feeds the run manifest, so
their numbers never reach bench_out/MANIFEST_*.json. Use
PMTBR_TRACE_SCOPE (or util::Timer at a bench boundary) and allowlist the
few sanctioned uses.
"""

from __future__ import annotations

import re

from analyze import registry

# The trace layer itself owns the clock; everything else in src/ must time
# through PMTBR_TRACE_SCOPE so the numbers land in the run manifest.
CHRONO_EXEMPT_PREFIXES = ("src/util/obs/",)

RAW_CHRONO_RE = re.compile(r"\bstd::chrono\b")


@registry.register(
    "raw-chrono",
    "std::chrono timing in src/ bypassing the trace layer")
def run(ctx):
    out = []
    for path in ctx.cpp_files(under="src"):
        rel = ctx.rel(path)
        if any(rel.startswith(p) for p in CHRONO_EXEMPT_PREFIXES):
            continue
        for i, line in enumerate(ctx.clean_lines(path), 1):
            if RAW_CHRONO_RE.search(line):
                out.append(ctx.finding(
                    "raw-chrono", path, i, "std::chrono",
                    "raw `std::chrono` timing bypasses the trace layer — "
                    "use PMTBR_TRACE_SCOPE (util/obs/trace.hpp) so the "
                    "timing reaches the run manifest, or allowlist a "
                    "sanctioned use"))
    return out
