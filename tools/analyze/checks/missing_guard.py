"""missing-guard: public matrix-taking free functions without contracts.

Public free functions declared in la/ops.hpp, lyap/*.hpp and mor/*.hpp
that take matrix/vector arguments must state a PMTBR_REQUIRE /
PMTBR_CHECK_FINITE contract in their definition (or delegate immediately
to a guarded implementation).
"""

from __future__ import annotations

import re
from pathlib import Path

from analyze import registry

GUARDED_HEADER_GLOBS = ["la/ops.hpp", "lyap/*.hpp", "mor/*.hpp"]

# Free-function declaration in a header: return type, name, ( ... ) ;
DECL_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?"
    r"(?:[A-Za-z_][\w:<>,\s*&]*?)\s+"
    r"([a-z_][a-z0-9_]*)\s*\(",
    re.MULTILINE,
)

MATRIXLIKE_RE = re.compile(r"\b(Matrix|MatD|MatC|Csr|CsrD|CsrC|VecD|VecC|std::vector)\b")
CONTRACT_RE = re.compile(r"\bPMTBR_(REQUIRE|ENSURE|CHECK_FINITE|DEBUG_ASSERT)\b")

# Function bodies may delegate immediately to a guarded implementation; a
# single call-through line also counts (the contract lives one level down,
# which the lint verifies for that function separately when it is public).
CALL_THROUGH_RE = re.compile(r"^\s*return\s+[a-z_][\w:]*\s*\(")


def strip_class_bodies(code: str) -> str:
    """Blanks out class/struct bodies: the guard check covers free functions
    only (members state their contracts against their own invariants)."""
    out = list(code)
    for m in re.finditer(r"\b(?:class|struct)\s+\w+[^;{]*\{", code):
        depth = 0
        i = m.end() - 1
        while i < len(code):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        for k in range(m.end(), min(i, len(code))):
            if out[k] != "\n":
                out[k] = " "
    return "".join(out)


def find_public_functions(code: str) -> list[str]:
    """Names of matrix-taking free functions declared in cleaned header
    text (class bodies already stripped by the caller)."""
    out = []
    for m in DECL_RE.finditer(code):
        name = m.group(1)
        tail = code[m.end(): m.end() + 400]
        params = tail.split(")")[0]
        if MATRIXLIKE_RE.search(params) or MATRIXLIKE_RE.search(
            code[max(0, m.start() - 120): m.start()]
        ):
            out.append(name)
    return out


def function_has_contract(cpp_text: str, name: str) -> bool | None:
    """True/False if the definition was found, None if not found."""
    pat = re.compile(
        r"^(?:[A-Za-z_][\w:<>,\s*&]*\s+)?(?:[\w:]+::)?" + re.escape(name) + r"\s*\(",
        re.MULTILINE,
    )
    for m in pat.finditer(cpp_text):
        # Walk to the opening brace of the body.
        depth = 0
        i = m.end() - 1
        while i < len(cpp_text):
            ch = cpp_text[i]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(cpp_text) and cpp_text[j] in " \tconstexprnoexcept\n":
            j += 1
        if j >= len(cpp_text) or cpp_text[j] != "{":
            continue  # declaration, not definition
        body_end = j
        depth = 0
        while body_end < len(cpp_text):
            if cpp_text[body_end] == "{":
                depth += 1
            elif cpp_text[body_end] == "}":
                depth -= 1
                if depth == 0:
                    break
            body_end += 1
        body = cpp_text[j:body_end]
        head = "\n".join(body.splitlines()[:40])
        if CONTRACT_RE.search(head):
            return True
        if CALL_THROUGH_RE.search(body.strip("{} \n")):
            return True
        return False
    return None


@registry.register(
    "missing-guard",
    "public matrix-taking free functions whose definitions state no contract")
def run(ctx):
    src_root = ctx.src_root()
    if src_root is None:
        return []
    out = []
    headers: list[Path] = []
    for pattern in GUARDED_HEADER_GLOBS:
        headers.extend(sorted(src_root.glob(pattern)))
    for header in headers:
        cpp = header.with_suffix(".cpp")
        cpp_text = cpp.read_text() if cpp.exists() else ""
        header_text = ctx.text(header)
        code = strip_class_bodies(ctx.clean_text(header))
        for name in find_public_functions(code):
            has = function_has_contract(cpp_text, name)
            if has is None:
                has = function_has_contract(header_text, name)
            if has is False:
                line_no = next(
                    (i for i, l in enumerate(header_text.splitlines(), 1)
                     if re.search(rf"\b{re.escape(name)}\s*\(", l)),
                    1,
                )
                out.append(ctx.finding(
                    "missing-guard", header, line_no, name,
                    f"public function `{name}` takes matrix/vector "
                    "arguments but its definition states no "
                    "PMTBR_REQUIRE/PMTBR_CHECK_FINITE contract"))
    return out
