"""alloc-in-parallel: heap allocation inside parallel_for/parallel_map
lambda bodies.

The sampling pipeline's scaling is dominated by what each worker does per
index; a heap allocation (or container growth) inside the body serializes
workers on the allocator lock and poisons the thread sweep. Per-index
temporaries belong outside the lambda (hoisted, or per-thread), and
results land in pre-sized storage — which is exactly how parallel_map is
built. Sanctioned exceptions are allowlisted with a justification.

The check finds each ``parallel_for(...)`` / ``parallel_map<...>(...)`` /
``parallel_try_map<...>(...)`` call in src/, brace-matches the lambda
argument's body, and flags allocation expressions inside it — including
``Matrix`` declarations, whose storage is a heap-backed vector (the GEMM /
TSQR kernels pack into caller-allocated buffers for exactly this reason).
"""

from __future__ import annotations

import re

from analyze import lexer, registry

CALL_RE = re.compile(r"\bparallel_(?:for|map|try_map)\b")

ALLOC_RES = [
    (re.compile(r"\bnew\b(?!\s*\()"), "new"),
    (re.compile(r"\bnew\s*\("), "new"),
    (re.compile(r"\bstd::make_unique\b|\bmake_unique\b"), "make_unique"),
    (re.compile(r"\bstd::make_shared\b|\bmake_shared\b"), "make_shared"),
    (re.compile(r"\b(?:std::)?malloc\s*\("), "malloc"),
    (re.compile(r"\b(?:std::)?calloc\s*\("), "calloc"),
    (re.compile(r"\b(?:std::)?realloc\s*\("), "realloc"),
    (re.compile(r"\.\s*resize\s*\("), "resize"),
    (re.compile(r"\.\s*reserve\s*\("), "reserve"),
    (re.compile(r"\.\s*push_back\s*\("), "push_back"),
    (re.compile(r"\.\s*emplace_back\s*\("), "emplace_back"),
    # A Matrix object owns a heap vector, so declaring one per index is an
    # allocation too. References (Matrix<T>& / const MatD&) bind existing
    # storage and do not match: the type must be followed by whitespace and
    # a declarator, not by &/*.
    (re.compile(r"\b(?:la::)?(?:Matrix\s*<[^<>;(){}&]*>|MatD|MatC)\s+[A-Za-z_]\w*\s*[({=;]"),
     "matrix-decl"),
]

# The pool implementation itself allocates (job state, queued
# std::functions) — that is setup cost outside the per-index body.
OWNER_FILES = {"src/util/thread_pool.hpp", "src/util/thread_pool.cpp"}


def _lambda_bodies(clean: str) -> list[tuple[int, int]]:
    """(start, end) offsets of every lambda body passed to a parallel_for
    or parallel_map call in comment-stripped text."""
    bodies = []
    for m in CALL_RE.finditer(clean):
        # Opening paren of the call (skips template args like <MatD>).
        call_open = clean.find("(", m.end())
        if call_open == -1:
            continue
        call_close = lexer.matching_brace(clean, call_open)
        if call_close == -1:
            continue
        # Lambdas among the call arguments: capture list at paren depth 1.
        pos = call_open + 1
        while pos < call_close:
            c = clean[pos]
            if c == "[":
                cap_close = lexer.matching_brace(clean, pos)
                if cap_close == -1:
                    break
                body_open = clean.find("{", cap_close)
                if body_open == -1 or body_open > call_close:
                    break
                body_close = lexer.matching_brace(clean, body_open)
                if body_close == -1:
                    break
                bodies.append((body_open, body_close))
                pos = body_close + 1
            elif c in "({":
                skip = lexer.matching_brace(clean, pos)
                if skip == -1:
                    break
                pos = skip + 1
            else:
                pos += 1
    return bodies


@registry.register(
    "alloc-in-parallel",
    "heap allocation / container growth inside parallel_for|map bodies")
def run(ctx):
    out = []
    for path in ctx.cpp_files(under="src"):
        if ctx.rel(path) in OWNER_FILES:
            continue
        clean = ctx.clean_text(path)
        if "parallel_" not in clean:
            continue
        for start, end in _lambda_bodies(clean):
            body = clean[start:end]
            for pat, token in ALLOC_RES:
                for m in pat.finditer(body):
                    line = lexer.line_of(clean, start + m.start())
                    out.append(ctx.finding(
                        "alloc-in-parallel", path, line, token,
                        f"`{token}` inside a parallel_for/parallel_map "
                        "body — per-index heap traffic serializes workers "
                        "on the allocator; hoist the allocation or "
                        "allowlist with a justification"))
    return out
