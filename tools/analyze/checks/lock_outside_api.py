"""lock-outside-api: direct .lock()/.unlock() outside the locking API.

All locking in src/ goes through the scoped types in util/mutex.hpp
(MutexLock / UniqueLock), so every acquire provably has a release on every
path and clang's thread-safety analysis can see both. A direct
``m.lock()`` / ``m.unlock()`` / ``m.try_lock()`` call anywhere else is a
hole in that contract — including on a raw std::mutex, which the analysis
cannot track at all.

When the libclang backend is available the finding set is refined to
member calls whose object is a mutex-like type; the tokenizer fallback
flags every member call with these names (the names are specific enough
that anything matching deserves a look, and sanctioned uses are
allowlisted like any other finding).
"""

from __future__ import annotations

import re

from analyze import clangast, registry

# The annotated wrappers are the one place allowed to touch the raw
# locking primitives.
OWNER_FILES = {"src/util/mutex.hpp"}

LOCK_CALL_RE = re.compile(r"(?:\.|->)\s*(lock|unlock|try_lock)\s*\(")

MUTEX_TYPE_RE = re.compile(r"(Mutex|mutex|UniqueLock|unique_lock)")


def _ast_confirms(ctx, path) -> set[int] | None:
    """Line numbers of mutex-typed lock member calls per the AST, or None
    when the AST backend cannot answer (fallback keeps every finding)."""
    tu = ctx.parse_tu(path)
    if tu is None:
        return None
    lines: set[int] = set()
    try:
        for cursor, obj_type in clangast.member_calls(
                tu, {"lock", "unlock", "try_lock"}):
            if MUTEX_TYPE_RE.search(obj_type or ""):
                lines.add(cursor.location.line)
    except Exception:
        return None
    return lines


@registry.register(
    "lock-outside-api",
    "direct .lock()/.unlock()/.try_lock() calls outside util/mutex.hpp")
def run(ctx):
    out = []
    for path in ctx.cpp_files(under="src"):
        rel = ctx.rel(path)
        if rel in OWNER_FILES:
            continue
        hits = []
        for i, line in enumerate(ctx.clean_lines(path), 1):
            for m in LOCK_CALL_RE.finditer(line):
                hits.append((i, m.group(1)))
        if not hits:
            continue
        confirmed = _ast_confirms(ctx, path)
        for i, name in hits:
            if confirmed is not None and i not in confirmed:
                continue
            out.append(ctx.finding(
                "lock-outside-api", path, i, name,
                f"direct `.{name}()` call outside util/mutex.hpp — lock "
                "through util::MutexLock/UniqueLock so the acquire/release "
                "pair is scoped and visible to -Wthread-safety"))
    return out
