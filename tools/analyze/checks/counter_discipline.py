"""counter-discipline: obs counter writes must go through the helpers.

The observability counters are relaxed atomics behind
``obs::counter_add`` / ``counter_value`` (src/util/obs/counters.hpp). Two
bypasses are flagged:

1. touching the raw ``g_counters`` array anywhere outside its owning
   files — that skips the enum-keyed API and its memory-order policy;
2. atomic read-modify-write calls (``fetch_add`` etc.) in src/ without an
   explicit ``std::memory_order`` argument. The implicit default is
   seq_cst, which silently puts a full fence in a hot path; every RMW in
   library code states its ordering on purpose.
"""

from __future__ import annotations

import re

from analyze import registry

OWNER_FILES = {"src/util/obs/counters.hpp", "src/util/obs/counters.cpp"}

RAW_COUNTERS_RE = re.compile(r"\bg_counters\b")

RMW_RE = re.compile(
    r"\.\s*(fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|exchange)"
    r"\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)")


@registry.register(
    "counter-discipline",
    "obs counter writes bypassing the relaxed-atomic helpers")
def run(ctx):
    out = []
    for path in ctx.cpp_files(under="src"):
        rel = ctx.rel(path)
        for i, line in enumerate(ctx.clean_lines(path), 1):
            if rel not in OWNER_FILES:
                for _ in RAW_COUNTERS_RE.finditer(line):
                    out.append(ctx.finding(
                        "counter-discipline", path, i, "g_counters",
                        "raw `g_counters` access outside "
                        "src/util/obs/counters.* — go through "
                        "obs::counter_add/counter_value"))
            for m in RMW_RE.finditer(line):
                if "memory_order" in m.group(2):
                    continue
                out.append(ctx.finding(
                    "counter-discipline", path, i, m.group(1),
                    f"`{m.group(1)}` without an explicit std::memory_order "
                    "— the seq_cst default is a full fence; state the "
                    "ordering (relaxed for counters) or allowlist"))
    return out
