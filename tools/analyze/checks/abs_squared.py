"""abs-squared: |x| * |x| or pow(|x|, 2) where std::norm is meant.

std::norm computes the squared magnitude directly, exactly for complex
arguments, and skips the sqrt.
"""

from __future__ import annotations

import re

from analyze import registry

ABS_SQUARED_RES = [
    re.compile(r"std::abs\s*\(([^()]*(?:\([^()]*\))?[^()]*)\)\s*\*\s*std::abs\s*\(\1\)"),
    re.compile(r"std::pow\s*\(\s*std::abs\s*\([^;]*?,\s*2(?:\.0)?\s*\)"),
]


@registry.register(
    "abs-squared",
    "std::abs(x)*std::abs(x) / pow(abs(x),2) where std::norm is exact")
def run(ctx):
    out = []
    for path in ctx.cpp_files():
        for i, line in enumerate(ctx.clean_lines(path), 1):
            for pat in ABS_SQUARED_RES:
                for m in pat.finditer(line):
                    token = re.sub(r"\s+", " ", m.group(0).strip())
                    out.append(ctx.finding(
                        "abs-squared", path, i, token,
                        f"`{token}`: squared magnitude — use std::norm, "
                        "which is exact for complex arguments and skips "
                        "the sqrt"))
    return out
