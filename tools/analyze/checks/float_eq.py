"""float-eq: exact ==/!= on floating-point values.

Exact-zero skip optimizations are legitimate but must be allowlisted so
each one is a recorded decision, not an accident.
"""

from __future__ import annotations

import re

from analyze import registry

FLOAT_EQ_PATTERNS = [
    # == / != against a float literal: 0.0, 1.5, 1e-9, .5
    re.compile(r"[=!]=\s*[-+]?(?:\d+\.\d*|\.\d+|\d+(?:\.\d*)?[eE][-+]?\d+)"),
    re.compile(r"(?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+)\s*[=!]="),
    # |x| == ... (comparing a magnitude exactly)
    re.compile(r"std::abs\s*\([^()]*\)\s*[=!]="),
]
# `x == T{}` / `x == cd{0}` exact-zero skips: flagged too — cheap to
# allowlist, dangerous to let slip in unnoticed in a convergence loop.
FLOAT_EQ_ZEROINIT = re.compile(r"[=!]=\s*(?:T\{\}|cd\{0\}|la::cd\{0\})")


@registry.register(
    "float-eq",
    "exact ==/!= floating-point comparisons (allowlist records each one)")
def run(ctx):
    out = []
    for path in ctx.cpp_files():
        for i, line in enumerate(ctx.clean_lines(path), 1):
            hits = []
            for pat in FLOAT_EQ_PATTERNS:
                hits.extend(m.group(0) for m in pat.finditer(line))
            hits.extend(m.group(0) for m in FLOAT_EQ_ZEROINIT.finditer(line))
            for h in hits:
                token = re.sub(r"\s+", " ", h.strip())
                out.append(ctx.finding(
                    "float-eq", path, i, token,
                    f"exact floating-point comparison `{token}` — use a "
                    "tolerance, or allowlist if the exact compare is "
                    "intentional"))
    return out
