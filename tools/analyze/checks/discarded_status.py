"""discarded-status: a try_*() / parallel_try_map() result thrown away.

The fallible kernels (docs/ROBUSTNESS.md) return ``[[nodiscard]]``
Status / Expected values, and the compiler warns on a plainly discarded
call. But the warning is easy to lose behind a cast or an older
toolchain, and review comments about "you dropped the Status" deserve
automation. This check flags statement-position calls to the ``try_``
family and ``parallel_try_map`` whose result is not consumed: the call
starts its statement, and the previous statement fragment does not end in
something (``=``, ``return``, ``(``, an operator, ...) that would consume
the value.

Tokenizer-only by design — the pattern is syntactic enough that the AST
adds nothing. ``try_lock`` belongs to lock-outside-api and is excluded.
"""

from __future__ import annotations

import re

from analyze import registry

# A statement that *begins* with a fallible call: optional object/namespace
# chain, then the function name, then '(' or an explicit template argument
# list ('<' for parallel_try_map<T>).
CALL_RE = re.compile(
    r"^(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*"
    r"(try_[a-z]\w*|parallel_try_map)\s*[<(]")

EXCLUDED = {"try_lock"}

# If the previous statement fragment ends with one of these, the call on
# this line is consumed by it (assignment, return, condition, argument,
# initializer, operator chain, ...).
CONSUMING_TAIL_RE = re.compile(
    r"(?:[=(,\[!<>+\-*/%&|^?:]|\breturn|\bco_return|&&|\|\|)\s*$")


@registry.register(
    "discarded-status",
    "statement-position try_*() / parallel_try_map() call whose "
    "Status/Expected result is discarded")
def run(ctx):
    out = []
    for path in ctx.cpp_files(under="src"):
        prev_fragment = ""
        for i, line in enumerate(ctx.clean_lines(path), 1):
            stripped = line.strip()
            if not stripped:
                continue
            m = CALL_RE.match(stripped)
            if m and m.group(1) not in EXCLUDED:
                if not CONSUMING_TAIL_RE.search(prev_fragment):
                    out.append(ctx.finding(
                        "discarded-status", path, i, m.group(1),
                        f"result of `{m.group(1)}()` is discarded — a "
                        "dropped Status/Expected silently swallows the "
                        "failure; assign it, branch on it, or convert it "
                        "via .value()"))
            prev_fragment = stripped
    return out
