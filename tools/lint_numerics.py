#!/usr/bin/env python3
"""DEPRECATED: thin shim over the plugin analyzer in tools/analyze/.

The numerics lint grew into a compile_commands-driven check framework;
this entry point survives so existing docs, CI recipes and muscle memory
keep working. It forwards its arguments unchanged — the five original
checks (raw-data-access, float-eq, missing-guard, abs-squared,
raw-chrono) run along with the newer concurrency/perf checks, against the
same tools/lint_allowlist.txt.

Prefer:  python3 tools/analyze/run.py [roots...] [-p BUILDDIR]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analyze.cli import main  # noqa: E402

if __name__ == "__main__":
    print("note: tools/lint_numerics.py is deprecated — it now forwards to "
          "the plugin analyzer (tools/analyze/run.py).", file=sys.stderr)
    sys.exit(main())
