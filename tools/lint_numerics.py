#!/usr/bin/env python3
"""Project-specific numerics lint for the pmtbr codebase.

Five checks, each targeting a hazard class that has historically produced
silent numerical corruption (or unobservable behavior) in hand-rolled
linear algebra:

  raw-data-access     `data_[`, `val_[`, `ptr_[`, `col_[` touched outside the
                      file that owns the container. Raw buffer indexing
                      bypasses every shape check; it is only allowed inside
                      the owning class.
  float-eq            `==`/`!=` against floating-point literals or between
                      obviously floating expressions. Exact-zero skip
                      optimizations are legitimate but must be allowlisted
                      so each one is a recorded decision, not an accident.
  missing-guard       public free functions declared in la/ops.hpp, lyap/*.hpp
                      and mor/*.hpp taking matrix/vector arguments whose
                      definitions never state a PMTBR_REQUIRE /
                      PMTBR_CHECK_FINITE contract.
  abs-squared         |x| * |x| or pow(|x|, 2) — squaring a magnitude that
                      std::norm computes directly (and more accurately for
                      complex arguments).
  raw-chrono          `std::chrono` timing in src/ outside the observability
                      layer (src/util/obs/). Ad-hoc clocks bypass the scoped
                      tracing that feeds the run manifest, so their numbers
                      never reach bench_out/MANIFEST_*.json. Use
                      PMTBR_TRACE_SCOPE (or util::Timer at a bench boundary)
                      and allowlist the few sanctioned uses.

Findings are suppressed by tools/lint_allowlist.txt: one `check:file:token`
per line, `#` comments allowed. `file` is relative to the repo root; `token`
is the offending function name (missing-guard) or the exact matched text
(other checks). Run:  python3 tools/lint_numerics.py src
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ALLOWLIST_PATH = REPO_ROOT / "tools" / "lint_allowlist.txt"

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

# --- finding -----------------------------------------------------------------


class Finding:
    def __init__(self, check: str, path: Path, line_no: int, token: str, message: str):
        self.check = check
        self.path = path
        self.line_no = line_no
        self.token = token
        self.message = message

    def key(self) -> str:
        rel = self.path.resolve().relative_to(REPO_ROOT)
        return f"{self.check}:{rel.as_posix()}:{self.token}"

    def __str__(self) -> str:
        rel = self.path.resolve().relative_to(REPO_ROOT)
        return f"{rel.as_posix()}:{self.line_no}: [{self.check}] {self.message}"


def load_allowlist() -> set[str]:
    entries: set[str] = set()
    if not ALLOWLIST_PATH.exists():
        return entries
    for raw in ALLOWLIST_PATH.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            entries.add(line)
    return entries


def strip_comments(line: str) -> str:
    """Removes // comments and string literals so regexes see only code."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return re.sub(r"//.*", "", line)


# --- check 1: raw data_ access outside the owning file ----------------------

# Owner files for each raw-buffer member. Anywhere else, indexing these
# members directly is a layering violation.
RAW_MEMBER_OWNERS = {
    "data_": {"src/la/matrix.hpp"},
    "val_": {"src/sparse/csr.hpp", "src/sparse/csr.cpp"},
    "ptr_": {"src/sparse/csr.hpp", "src/sparse/csr.cpp"},
    "col_": {"src/sparse/csr.hpp", "src/sparse/csr.cpp"},
}

RAW_MEMBER_RE = re.compile(r"\b(data_|val_|ptr_|col_)\s*\[")


def check_raw_data_access(path: Path, lines: list[str]) -> list[Finding]:
    rel = path.resolve().relative_to(REPO_ROOT).as_posix()
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comments(line)
        for m in RAW_MEMBER_RE.finditer(code):
            member = m.group(1)
            if rel in RAW_MEMBER_OWNERS.get(member, set()):
                continue
            out.append(
                Finding(
                    "raw-data-access", path, i, member,
                    f"raw `{member}[...]` access outside the owning class "
                    "(use the shape-checked accessors)",
                )
            )
    return out


# --- check 2: floating-point == / != ----------------------------------------

FLOAT_EQ_PATTERNS = [
    # == / != against a float literal: 0.0, 1.5, 1e-9, .5
    re.compile(r"[=!]=\s*[-+]?(?:\d+\.\d*|\.\d+|\d+(?:\.\d*)?[eE][-+]?\d+)"),
    re.compile(r"(?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+)\s*[=!]="),
    # |x| == ... (comparing a magnitude exactly)
    re.compile(r"std::abs\s*\([^()]*\)\s*[=!]="),
]
# `x == T{}` / `x == cd{0}` exact-zero skips: flagged too — cheap to
# allowlist, dangerous to let slip in unnoticed in a convergence loop.
FLOAT_EQ_ZEROINIT = re.compile(r"[=!]=\s*(?:T\{\}|cd\{0\}|la::cd\{0\})")


def check_float_eq(path: Path, lines: list[str]) -> list[Finding]:
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comments(line)
        hits = []
        for pat in FLOAT_EQ_PATTERNS:
            hits.extend(m.group(0) for m in pat.finditer(code))
        hits.extend(m.group(0) for m in FLOAT_EQ_ZEROINIT.finditer(code))
        for h in hits:
            token = re.sub(r"\s+", " ", h.strip())
            out.append(
                Finding(
                    "float-eq", path, i, token,
                    f"exact floating-point comparison `{token}` — use a tolerance, "
                    "or allowlist if the exact compare is intentional",
                )
            )
    return out


# --- check 3: public free functions without contracts ------------------------

GUARDED_HEADER_GLOBS = ["la/ops.hpp", "lyap/*.hpp", "mor/*.hpp"]

# Free-function declaration in a header: return type, name, ( ... ) ;
DECL_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?"
    r"(?:[A-Za-z_][\w:<>,\s*&]*?)\s+"
    r"([a-z_][a-z0-9_]*)\s*\(",
    re.MULTILINE,
)

MATRIXLIKE_RE = re.compile(r"\b(Matrix|MatD|MatC|Csr|CsrD|CsrC|VecD|VecC|std::vector)\b")
CONTRACT_RE = re.compile(r"\bPMTBR_(REQUIRE|ENSURE|CHECK_FINITE|DEBUG_ASSERT)\b")

# Function bodies may delegate immediately to a guarded implementation; a
# single call-through line also counts (the contract lives one level down,
# which the lint verifies for that function separately when it is public).
CALL_THROUGH_RE = re.compile(r"^\s*return\s+[a-z_][\w:]*\s*\(")


def strip_class_bodies(code: str) -> str:
    """Blanks out class/struct bodies: the guard check covers free functions
    only (members state their contracts against their own invariants)."""
    out = list(code)
    for m in re.finditer(r"\b(?:class|struct)\s+\w+[^;{]*\{", code):
        depth = 0
        i = m.end() - 1
        while i < len(code):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        for k in range(m.end(), min(i, len(code))):
            if out[k] != "\n":
                out[k] = " "
    return "".join(out)


def find_public_functions(header: Path) -> list[tuple[str, str]]:
    """Returns (name, declaration-line) for matrix-taking free functions."""
    text = header.read_text()
    # Strip comment lines to avoid matching prose.
    code = "\n".join(strip_comments(l) for l in text.splitlines())
    code = strip_class_bodies(code)
    out = []
    for m in DECL_RE.finditer(code):
        name = m.group(1)
        # Capture through to the closing paren for parameter inspection.
        tail = code[m.end(): m.end() + 400]
        params = tail.split(")")[0]
        decl_line = code[m.start(): m.end()] + params + ")"
        if MATRIXLIKE_RE.search(params) or MATRIXLIKE_RE.search(
            code[max(0, m.start() - 120): m.start()]
        ):
            out.append((name, decl_line))
    return out


def function_has_contract(cpp_text: str, name: str) -> bool | None:
    """True/False if the definition was found, None if not found."""
    # Definition: name( ... ) { at statement level (not a call: preceded by
    # a type or qualified name, and followed eventually by '{').
    pat = re.compile(
        r"^(?:[A-Za-z_][\w:<>,\s*&]*\s+)?(?:[\w:]+::)?" + re.escape(name) + r"\s*\(",
        re.MULTILINE,
    )
    for m in pat.finditer(cpp_text):
        # Walk to the opening brace of the body.
        depth = 0
        i = m.end() - 1
        while i < len(cpp_text):
            ch = cpp_text[i]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(cpp_text) and cpp_text[j] in " \tconstexprnoexcept\n":
            j += 1
        if j >= len(cpp_text) or cpp_text[j] != "{":
            continue  # declaration, not definition
        # Scan the body (max ~40 lines) for a contract macro.
        body_end = j
        depth = 0
        while body_end < len(cpp_text):
            if cpp_text[body_end] == "{":
                depth += 1
            elif cpp_text[body_end] == "}":
                depth -= 1
                if depth == 0:
                    break
            body_end += 1
        body = cpp_text[j:body_end]
        head = "\n".join(body.splitlines()[:40])
        if CONTRACT_RE.search(head):
            return True
        if CALL_THROUGH_RE.search(body.strip("{} \n")):
            return True
        return False
    return None


def check_missing_guards(src_root: Path) -> list[Finding]:
    out = []
    headers: list[Path] = []
    for pattern in GUARDED_HEADER_GLOBS:
        headers.extend(sorted(src_root.glob(pattern)))
    for header in headers:
        cpp = header.with_suffix(".cpp")
        cpp_text = cpp.read_text() if cpp.exists() else ""
        header_text = header.read_text()
        for name, _decl in find_public_functions(header):
            has = function_has_contract(cpp_text, name)
            if has is None:
                has = function_has_contract(header_text, name)
            if has is False:
                line_no = next(
                    (i for i, l in enumerate(header_text.splitlines(), 1)
                     if re.search(rf"\b{re.escape(name)}\s*\(", l)),
                    1,
                )
                out.append(
                    Finding(
                        "missing-guard", header, line_no, name,
                        f"public function `{name}` takes matrix/vector arguments but "
                        "its definition states no PMTBR_REQUIRE/PMTBR_CHECK_FINITE "
                        "contract",
                    )
                )
    return out


# --- check 4: abs() squared where std::norm is meant -------------------------

ABS_SQUARED_RES = [
    re.compile(r"std::abs\s*\(([^()]*(?:\([^()]*\))?[^()]*)\)\s*\*\s*std::abs\s*\(\1\)"),
    re.compile(r"std::pow\s*\(\s*std::abs\s*\([^;]*?,\s*2(?:\.0)?\s*\)"),
]


def check_abs_squared(path: Path, lines: list[str]) -> list[Finding]:
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comments(line)
        for pat in ABS_SQUARED_RES:
            for m in pat.finditer(code):
                token = re.sub(r"\s+", " ", m.group(0).strip())
                out.append(
                    Finding(
                        "abs-squared", path, i, token,
                        f"`{token}`: squared magnitude — use std::norm, which is "
                        "exact for complex arguments and skips the sqrt",
                    )
                )
    return out


# --- check 5: raw std::chrono timing outside the observability layer ---------

# The trace layer itself owns the clock; everything else in src/ must time
# through PMTBR_TRACE_SCOPE so the numbers land in the run manifest.
CHRONO_EXEMPT_PREFIXES = ("src/util/obs/",)

RAW_CHRONO_RE = re.compile(r"\bstd::chrono\b")


def check_raw_chrono(path: Path, lines: list[str]) -> list[Finding]:
    rel = path.resolve().relative_to(REPO_ROOT).as_posix()
    if not rel.startswith("src/"):
        return []
    if any(rel.startswith(p) for p in CHRONO_EXEMPT_PREFIXES):
        return []
    out = []
    for i, line in enumerate(lines, 1):
        code = strip_comments(line)
        if RAW_CHRONO_RE.search(code):
            out.append(
                Finding(
                    "raw-chrono", path, i, "std::chrono",
                    "raw `std::chrono` timing bypasses the trace layer — use "
                    "PMTBR_TRACE_SCOPE (util/obs/trace.hpp) so the timing "
                    "reaches the run manifest, or allowlist a sanctioned use",
                )
            )
    return out


# --- driver ------------------------------------------------------------------


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv[1:]] or [REPO_ROOT / "src"]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(p for p in sorted(root.rglob("*")) if p.suffix in CPP_SUFFIXES)

    findings: list[Finding] = []
    for path in files:
        lines = path.read_text().splitlines()
        findings.extend(check_raw_data_access(path, lines))
        findings.extend(check_float_eq(path, lines))
        findings.extend(check_abs_squared(path, lines))
        findings.extend(check_raw_chrono(path, lines))
    for root in roots:
        src_root = root if root.is_dir() else root.parent
        if (src_root / "la").is_dir() or src_root.name == "la":
            findings.extend(check_missing_guards(src_root))
            break

    allow = load_allowlist()
    used: set[str] = set()
    visible = []
    for f in findings:
        if f.key() in allow:
            used.add(f.key())
            continue
        visible.append(f)

    # Only entries whose file lies under a scanned root can be judged stale:
    # a scoped run (e.g. on one subdirectory) must not false-alarm on the
    # rest of the allowlist.
    scanned_prefixes = []
    for root in roots:
        resolved = root.resolve()
        try:
            scanned_prefixes.append(resolved.relative_to(REPO_ROOT).as_posix())
        except ValueError:
            pass
    def in_scope(entry: str) -> bool:
        parts = entry.split(":")
        if len(parts) < 2:
            return True
        path = parts[1]
        return any(path == p or path.startswith(p.rstrip("/") + "/")
                   for p in scanned_prefixes)
    stale = {e for e in allow - used if in_scope(e)}
    for f in visible:
        print(f, file=sys.stderr)
    if stale:
        for s in sorted(stale):
            print(f"stale allowlist entry (no longer matches anything): {s}",
                  file=sys.stderr)
    if visible or stale:
        print(
            f"\nlint_numerics: {len(visible)} finding(s), {len(stale)} stale "
            "allowlist entr(y/ies). Fix them or add a justified line to "
            "tools/lint_allowlist.txt.",
            file=sys.stderr,
        )
        return 1
    print(f"lint_numerics: clean ({len(files)} files, {len(allow)} allowlisted).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
