#!/usr/bin/env python3
"""Render and diff the observability artifacts the benches drop in bench_out/.

Two artifact kinds (both emitted through src/util/obs/json.cpp):

  MANIFEST_<name>.json   schema "pmtbr-manifest/1": build identity, thread
                         configuration, every solver counter, aggregated
                         trace-scope timings (docs/OBSERVABILITY.md).
  BENCH_<name>.json      wall-clock timing records written by
                         bench::write_timing_json.

Usage:
  python3 tools/report_metrics.py show bench_out/MANIFEST_cost_scaling.json ...
  python3 tools/report_metrics.py diff OLD.json NEW.json
  python3 tools/report_metrics.py validate bench_out/*.json

`show` prints one table per file; `diff` prints counter / timing deltas
between two runs of the same workload (old vs. new); `validate` just checks
schema conformance and exits nonzero on any violation — CI uses this to
guarantee every bench produced a parseable manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

MANIFEST_SCHEMA = "pmtbr-manifest/1"

MANIFEST_REQUIRED = {
    "schema": str,
    "run": str,
    "git_describe": str,
    "build_type": str,
    "threads": int,
    "env": dict,
    "trace_enabled": bool,
    "extra": dict,
    "counters": dict,
    "trace": list,
}

# Optional "degradation" extra (mor::degradation_extra, docs/ROBUSTNESS.md):
# per-run graceful-degradation stats. When present it must carry the full
# field set so retry/drop/reweight counts are auditable.
DEGRADATION_COUNTS = ("samples_attempted", "samples_ok", "samples_dropped",
                      "retries", "regularized", "reweights")


def validate_degradation(deg) -> list[str]:
    errors = []
    if not isinstance(deg, dict):
        return ["extra 'degradation' must be an object"]
    for key in DEGRADATION_COUNTS:
        if not isinstance(deg.get(key), int) or deg.get(key) < 0:
            errors.append(f"degradation.{key} must be a nonnegative integer")
    cov = deg.get("coverage")
    if not isinstance(cov, (int, float)) or not 0.0 <= cov <= 1.0:
        errors.append("degradation.coverage must be a number in [0, 1]")
    failures = deg.get("failures")
    if not isinstance(failures, list):
        errors.append("degradation.failures must be an array")
    else:
        for i, f in enumerate(failures):
            if not isinstance(f, dict) or not {"sample", "code", "retries"} <= f.keys():
                errors.append(f"degradation.failures[{i}] lacks sample/code/retries")
        if isinstance(deg.get("samples_dropped"), int) \
                and len(failures) < deg["samples_dropped"]:
            errors.append("degradation.failures records fewer entries than samples_dropped")
    return errors


# "serve" manifest extra (serve::serve_extra, docs/SERVING.md): monotonic
# service totals whose outcome fields partition every submission.
SERVE_COUNTS = ("submitted", "completed", "failed", "cancelled", "expired",
                "rejected")
SERVE_SECONDS = ("queue_seconds", "run_seconds")


def validate_serve_extra(serve) -> list[str]:
    errors = []
    if not isinstance(serve, dict):
        return ["extra 'serve' must be an object"]
    for key in SERVE_COUNTS:
        if not isinstance(serve.get(key), int) or serve.get(key) < 0:
            errors.append(f"serve.{key} must be a nonnegative integer")
    for key in SERVE_SECONDS:
        v = serve.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            errors.append(f"serve.{key} must be a nonnegative number")
    # cache_hits is optional (older artifacts predate the model cache) but
    # when present it must be a subset of completed — hits are completions
    # served from the cache, never a new outcome class.
    hits = serve.get("cache_hits")
    if hits is not None and (not isinstance(hits, int) or hits < 0):
        errors.append("serve.cache_hits must be a nonnegative integer")
    if not errors:
        terminal = sum(serve[k] for k in SERVE_COUNTS[1:])
        if serve["submitted"] != terminal:
            errors.append("serve outcome fields do not partition 'submitted'")
        if isinstance(hits, int) and hits > serve["completed"]:
            errors.append("serve.cache_hits exceeds 'completed'")
    return errors


# "cache" manifest extra (serve::cache_extra, docs/SERVING.md): one stats
# object per cache layer (model-result LRU, shared numeric-factor LRU).
CACHE_LAYERS = ("model", "factor")
CACHE_COUNTS = ("hits", "misses", "evictions", "coalesced", "entries", "bytes")


def validate_cache_extra(cache) -> list[str]:
    if not isinstance(cache, dict):
        return ["extra 'cache' must be an object"]
    errors = []
    for layer in CACHE_LAYERS:
        obj = cache.get(layer)
        if not isinstance(obj, dict):
            errors.append(f"cache.{layer} must be an object")
            continue
        for key in CACHE_COUNTS:
            if not isinstance(obj.get(key), int) or obj.get(key) < 0:
                errors.append(f"cache.{layer}.{key} must be a nonnegative integer")
    return errors


def validate_percentiles(prefix: str, obj) -> list[str]:
    if not isinstance(obj, dict):
        return [f"{prefix} must be an object"]
    errors = []
    for key in ("p50", "p99"):
        v = obj.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            errors.append(f"{prefix}.{key} must be a nonnegative number")
    return errors


# "serve" array in a timing artifact (bench_serve_throughput): one entry per
# runner-count sweep point with throughput and latency percentiles.
def validate_serve_sweep(sweep) -> list[str]:
    if not isinstance(sweep, list):
        return ["'serve' must be an array of sweep points"]
    errors = []
    for i, pt in enumerate(sweep):
        if not isinstance(pt, dict):
            errors.append(f"serve[{i}] must be an object")
            continue
        for key in ("runners", "jobs"):
            if not isinstance(pt.get(key), int) or pt.get(key) < 0:
                errors.append(f"serve[{i}].{key} must be a nonnegative integer")
        jps = pt.get("jobs_per_second")
        if not isinstance(jps, (int, float)) or isinstance(jps, bool) or jps < 0:
            errors.append(f"serve[{i}].jobs_per_second must be a nonnegative number")
        for section in ("queue_seconds", "run_seconds"):
            errors.extend(validate_percentiles(f"serve[{i}].{section}",
                                               pt.get(section)))
        outcomes = pt.get("outcomes")
        if not isinstance(outcomes, dict) or not all(
                isinstance(outcomes.get(k), int) and outcomes[k] >= 0
                for k in SERVE_COUNTS[1:]):
            errors.append(f"serve[{i}].outcomes lacks nonnegative "
                          f"{'/'.join(SERVE_COUNTS[1:])}")
    return errors


# "repeated_workload" object in a timing artifact (bench_serve_throughput):
# warm-vs-cold throughput of one repeated job set through the model cache.
def validate_repeated_workload(rep) -> list[str]:
    if not isinstance(rep, dict):
        return ["'repeated_workload' must be an object"]
    errors = []
    for key in ("jobs_per_wave", "warm_waves", "cache_hits"):
        if not isinstance(rep.get(key), int) or rep.get(key) < 0:
            errors.append(f"repeated_workload.{key} must be a nonnegative integer")
    for phase in ("cold", "warm"):
        obj = rep.get(phase)
        if not isinstance(obj, dict):
            errors.append(f"repeated_workload.{phase} must be an object")
            continue
        for key in ("wall_seconds", "jobs_per_second"):
            v = obj.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                errors.append(f"repeated_workload.{phase}.{key} must be a "
                              "nonnegative number")
    return errors


def fail(msg: str) -> None:
    print(f"report_metrics: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: unreadable or invalid JSON ({e})")
    if not isinstance(data, dict):
        fail(f"{path}: top-level JSON value must be an object")
    return data


def is_manifest(data: dict) -> bool:
    return "schema" in data


def validate_manifest(path: Path, data: dict) -> list[str]:
    errors = []
    if data.get("schema") != MANIFEST_SCHEMA:
        errors.append(f"schema is {data.get('schema')!r}, expected {MANIFEST_SCHEMA!r}")
    for key, typ in MANIFEST_REQUIRED.items():
        if key not in data:
            errors.append(f"missing required key {key!r}")
        elif not isinstance(data[key], typ):
            errors.append(f"key {key!r} has type {type(data[key]).__name__}, "
                          f"expected {typ.__name__}")
    for name, value in data.get("counters", {}).items():
        if not isinstance(value, int):
            errors.append(f"counter {name!r} is not an integer")
    for i, scope in enumerate(data.get("trace", [])):
        if not isinstance(scope, dict) or not {"path", "count", "seconds"} <= scope.keys():
            errors.append(f"trace[{i}] lacks path/count/seconds")
    extra = data.get("extra")
    if isinstance(extra, dict) and "degradation" in extra:
        errors.extend(validate_degradation(extra["degradation"]))
    if isinstance(extra, dict) and "serve" in extra:
        errors.extend(validate_serve_extra(extra["serve"]))
    if isinstance(extra, dict) and "cache" in extra:
        errors.extend(validate_cache_extra(extra["cache"]))
    return [f"{path}: {e}" for e in errors]


def validate_timing(path: Path, data: dict) -> list[str]:
    errors = []
    if not isinstance(data.get("bench"), str):
        errors.append("missing 'bench' name")
    records = data.get("records")
    if not isinstance(records, list):
        errors.append("missing 'records' array")
    else:
        for i, r in enumerate(records):
            if not isinstance(r, dict) or "label" not in r or "wall_seconds" not in r:
                errors.append(f"records[{i}] lacks label/wall_seconds")
            elif "gflops" in r and (not isinstance(r["gflops"], (int, float))
                                    or isinstance(r["gflops"], bool) or r["gflops"] < 0):
                errors.append(f"records[{i}].gflops must be a nonnegative number")
    if "serve" in data:
        errors.extend(validate_serve_sweep(data["serve"]))
    if "repeated_workload" in data:
        errors.extend(validate_repeated_workload(data["repeated_workload"]))
    return [f"{path}: {e}" for e in errors]


def validate(path: Path, data: dict) -> list[str]:
    return validate_manifest(path, data) if is_manifest(data) else validate_timing(path, data)


# --- rendering ---------------------------------------------------------------


def show_manifest(data: dict) -> None:
    print(f"run: {data['run']}   git: {data['git_describe']}   "
          f"build: {data['build_type']}   threads: {data['threads']}")
    env = ", ".join(f"{k}={v}" for k, v in data["env"].items() if v is not None) or "(default)"
    print(f"env: {env}   trace_enabled: {data['trace_enabled']}")
    if data["extra"]:
        print("extra: " + ", ".join(f"{k}={v}" for k, v in data["extra"].items()
                                    if k != "cache"))
    cache = data["extra"].get("cache") if isinstance(data.get("extra"), dict) else None
    if isinstance(cache, dict):
        for layer in CACHE_LAYERS:
            st = cache.get(layer, {})
            print(f"cache {layer}: " + "  ".join(
                f"{k}={st.get(k, 0):,}" for k in CACHE_COUNTS))
    nonzero = {k: v for k, v in data["counters"].items() if v != 0}
    if nonzero:
        width = max(len(k) for k in nonzero)
        print("counters (nonzero):")
        for name, value in sorted(nonzero.items()):
            print(f"  {name:<{width}}  {value:>14,}")
    else:
        print("counters: all zero")
    if data["trace"]:
        print("trace scopes (by total seconds):")
        scopes = sorted(data["trace"], key=lambda s: -s["seconds"])
        width = max(len(s["path"]) for s in scopes)
        for s in scopes:
            per = s["seconds"] / s["count"] if s["count"] else 0.0
            print(f"  {s['path']:<{width}}  {s['seconds']:>10.4f}s  "
                  f"x{s['count']:<8}  {per * 1e3:>10.4f} ms/call")
    elif data["trace_enabled"]:
        print("trace: enabled, no scopes closed")


def show_timing(data: dict) -> None:
    print(f"bench: {data['bench']}")
    for r in data["records"]:
        extras = "  ".join(f"{k}={r[k]}" for k in ("n", "samples", "threads") if k in r)
        if r.get("gflops"):
            extras += f"  {r['gflops']:.2f} GF/s"
        print(f"  {r['label']:<40}  {r['wall_seconds']:>10.4f}s  {extras}")
    for pt in data.get("serve", []):
        q, rn = pt["queue_seconds"], pt["run_seconds"]
        print(f"  serve runners={pt['runners']}: {pt['jobs_per_second']:.2f} jobs/s  "
              f"queue p50/p99 {q['p50'] * 1e3:.2f}/{q['p99'] * 1e3:.2f} ms  "
              f"run p50/p99 {rn['p50'] * 1e3:.2f}/{rn['p99'] * 1e3:.2f} ms")
    rep = data.get("repeated_workload")
    if rep:
        cold, warm = rep["cold"], rep["warm"]
        speedup = (warm["jobs_per_second"] / cold["jobs_per_second"]
                   if cold["jobs_per_second"] else 0.0)
        print(f"  repeated workload ({rep['jobs_per_wave']} jobs x "
              f"{rep['warm_waves']} warm waves): "
              f"cold {cold['jobs_per_second']:.2f} jobs/s  "
              f"warm {warm['jobs_per_second']:.2f} jobs/s  "
              f"({speedup:.1f}x, {rep['cache_hits']} cache hits)")


def cmd_show(paths: list[Path]) -> int:
    for i, path in enumerate(paths):
        data = load(path)
        errors = validate(path, data)
        if errors:
            for e in errors:
                print(e, file=sys.stderr)
            return 1
        if i:
            print()
        print(f"== {path}")
        show_manifest(data) if is_manifest(data) else show_timing(data)
    return 0


# --- diffing -----------------------------------------------------------------


def fmt_delta(old: float, new: float) -> str:
    if old == 0:
        return "(new)" if new != 0 else ""
    return f"{(new - old) / old * 100.0:+.1f}%"


def diff_manifests(old: dict, new: dict) -> None:
    for field in ("run", "git_describe", "build_type", "threads"):
        if old[field] != new[field]:
            print(f"{field}: {old[field]} -> {new[field]}")
    names = sorted(set(old["counters"]) | set(new["counters"]))
    rows = []
    for name in names:
        a, b = old["counters"].get(name, 0), new["counters"].get(name, 0)
        if a or b:
            rows.append((name, a, b))
    if rows:
        width = max(len(r[0]) for r in rows)
        print("counters:")
        for name, a, b in rows:
            marker = "" if a == b else "  <- changed"
            print(f"  {name:<{width}}  {a:>14,}  {b:>14,}  {fmt_delta(a, b):>8}{marker}")
    old_trace = {s["path"]: s for s in old["trace"]}
    new_trace = {s["path"]: s for s in new["trace"]}
    paths = sorted(set(old_trace) | set(new_trace))
    if paths:
        width = max(len(p) for p in paths)
        print("trace seconds:")
        for p in paths:
            a = old_trace.get(p, {}).get("seconds", 0.0)
            b = new_trace.get(p, {}).get("seconds", 0.0)
            print(f"  {p:<{width}}  {a:>10.4f}  {b:>10.4f}  {fmt_delta(a, b):>8}")


def diff_timings(old: dict, new: dict) -> None:
    old_rec = {r["label"]: r for r in old["records"]}
    new_rec = {r["label"]: r for r in new["records"]}
    labels = sorted(set(old_rec) | set(new_rec))
    width = max(len(l) for l in labels) if labels else 0
    for label in labels:
        a = old_rec.get(label, {}).get("wall_seconds", 0.0)
        b = new_rec.get(label, {}).get("wall_seconds", 0.0)
        print(f"  {label:<{width}}  {a:>10.4f}s  {b:>10.4f}s  {fmt_delta(a, b):>8}")
    if "repeated_workload" in old or "repeated_workload" in new:
        for phase in ("cold", "warm"):
            a = old.get("repeated_workload", {}).get(phase, {}).get("jobs_per_second", 0.0)
            b = new.get("repeated_workload", {}).get(phase, {}).get("jobs_per_second", 0.0)
            label = f"repeated_workload.{phase} jobs/s"
            print(f"  {label:<{width}}  {a:>10.2f}   {b:>10.2f}   {fmt_delta(a, b):>8}")


def cmd_diff(old_path: Path, new_path: Path) -> int:
    old, new = load(old_path), load(new_path)
    errors = validate(old_path, old) + validate(new_path, new)
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    if is_manifest(old) != is_manifest(new):
        fail("cannot diff a manifest against a timing artifact")
    print(f"== {old_path} -> {new_path}")
    diff_manifests(old, new) if is_manifest(old) else diff_timings(old, new)
    return 0


def cmd_validate(paths: list[Path]) -> int:
    errors = []
    for path in paths:
        errors.extend(validate(path, load(path)))
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"report_metrics: {len(errors)} schema violation(s)", file=sys.stderr)
        return 1
    print(f"report_metrics: {len(paths)} artifact(s) valid")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_show = sub.add_parser("show", help="render manifests / timing artifacts")
    p_show.add_argument("files", nargs="+", type=Path)
    p_diff = sub.add_parser("diff", help="diff two runs of the same workload")
    p_diff.add_argument("old", type=Path)
    p_diff.add_argument("new", type=Path)
    p_val = sub.add_parser("validate", help="schema-check artifacts, exit nonzero on violation")
    p_val.add_argument("files", nargs="+", type=Path)
    args = parser.parse_args(argv[1:])
    if args.cmd == "show":
        return cmd_show(args.files)
    if args.cmd == "diff":
        return cmd_diff(args.old, args.new)
    return cmd_validate(args.files)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
