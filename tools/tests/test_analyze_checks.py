#!/usr/bin/env python3
"""Unit tests for the analyzer check plugins (tools/analyze/checks/).

Each test builds a throwaway mini-repo in a temp directory with the same
src/ layout the real checks scope on, runs one check through the normal
Context, and asserts on the finding keys. Run directly or via ctest
(AnalyzeChecks.UnitTests).
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import analyze.checks  # noqa: F401  (registers everything)
from analyze import lexer, registry
from analyze.context import Context


def make_repo(tmp: Path, files: dict[str, str]) -> Path:
    for rel, text in files.items():
        p = tmp / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
    return tmp


def run_check(repo: Path, name: str, roots=("src",)):
    ctx = Context(repo, [repo / r for r in roots])
    return registry.all_checks()[name].fn(ctx)


class LexerTest(unittest.TestCase):
    def test_line_comment_stripped(self):
        self.assertEqual(lexer.clean_text("a; // x.lock()\nb;"), "a; \nb;")

    def test_block_comment_preserves_lines(self):
        out = lexer.clean_text("a;/* one\n two */b;")
        self.assertEqual(out, "a;\nb;")
        self.assertEqual(out.count("\n"), 1)

    def test_string_contents_blanked(self):
        self.assertEqual(lexer.clean_text('f("x.lock()");'), 'f("");')

    def test_escaped_quote_in_string(self):
        self.assertEqual(lexer.clean_text(r'f("a\"b"); g();'), 'f(""); g();')

    def test_char_literal(self):
        self.assertEqual(lexer.clean_text("c = '\\n'; d;"), "c = ''; d;")

    def test_raw_string(self):
        # Contents blanked; the R prefix survives as plain text.
        self.assertEqual(lexer.clean_text('s = R"(lock())"; t;'), 's = R""; t;')

    def test_identifier_ending_in_r_is_not_raw_prefix(self):
        self.assertEqual(lexer.clean_text('LOGR"x"; y;'), 'LOGR""; y;')

    def test_matching_brace(self):
        text = "f(a, [&](int i) { g({1, 2}); })"
        open_brace = text.index("{")
        close = lexer.matching_brace(text, open_brace)
        self.assertEqual(text[close], "}")
        self.assertEqual(text[close + 1], ")")  # lambda body ends before the call's ')'


class RawDataAccessTest(unittest.TestCase):
    def test_outside_owner_flagged_inside_not(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/matrix.hpp": "T& at(i) { return data_[i]; }\n",
                "src/mor/bad.cpp": "double v = m.data_[3];\n",
            })
            keys = [f.key() for f in run_check(repo, "raw-data-access")]
            self.assertEqual(keys, ["raw-data-access:src/mor/bad.cpp:data_"])

    def test_commented_use_not_flagged(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/mor/ok.cpp": "// data_[i] is owned by Matrix\nint x;\n",
            })
            self.assertEqual(run_check(repo, "raw-data-access"), [])


class FloatEqTest(unittest.TestCase):
    def test_literal_compare_flagged(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/x.cpp": "if (w == 0.0) skip();\nif (v != T{}) f();\n",
            })
            keys = sorted(f.key() for f in run_check(repo, "float-eq"))
            self.assertEqual(keys, [
                "float-eq:src/la/x.cpp:!= T{}",
                "float-eq:src/la/x.cpp:== 0.0",
            ])

    def test_integer_compare_not_flagged(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/x.cpp": "if (n == 0) return;\n",
            })
            self.assertEqual(run_check(repo, "float-eq"), [])


class AbsSquaredTest(unittest.TestCase):
    def test_abs_times_abs_flagged(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/x.cpp": "double p = std::abs(z) * std::abs(z);\n",
            })
            found = run_check(repo, "abs-squared")
            self.assertEqual(len(found), 1)
            self.assertIn("std::norm", found[0].message)


class RawChronoTest(unittest.TestCase):
    def test_src_flagged_obs_exempt_tests_ignored(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/mor/t.cpp": "auto t0 = std::chrono::steady_clock::now();\n",
                "src/util/obs/trace.cpp": "std::chrono::steady_clock::now();\n",
                "tests/x.cpp": "std::chrono::seconds(1);\n",
            })
            ctx = Context(repo, [repo / "src", repo / "tests"])
            found = registry.all_checks()["raw-chrono"].fn(ctx)
            self.assertEqual([f.key() for f in found],
                             ["raw-chrono:src/mor/t.cpp:std::chrono"])


class MissingGuardTest(unittest.TestCase):
    HEADER = "MatD solve_thing(const MatD& a);\n"

    def test_unguarded_definition_flagged(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/placeholder.hpp": "",
                "src/la/ops.hpp": self.HEADER,
                "src/la/ops.cpp":
                    "MatD solve_thing(const MatD& a) {\n  return a;\n}\n",
            })
            (repo / "src/la").mkdir(exist_ok=True)
            keys = [f.key() for f in run_check(repo, "missing-guard")]
            self.assertEqual(keys, ["missing-guard:src/la/ops.hpp:solve_thing"])

    def test_guarded_definition_clean(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/ops.hpp": self.HEADER,
                "src/la/ops.cpp":
                    "MatD solve_thing(const MatD& a) {\n"
                    "  PMTBR_REQUIRE(a.rows() > 0, \"empty\");\n"
                    "  return a;\n}\n",
            })
            self.assertEqual(run_check(repo, "missing-guard"), [])


class LockOutsideApiTest(unittest.TestCase):
    def test_direct_lock_flagged(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/mor/bad.cpp": "void f() {\n  mu_.lock();\n  mu_.unlock();\n}\n",
            })
            keys = sorted(f.key() for f in run_check(repo, "lock-outside-api"))
            self.assertEqual(keys, [
                "lock-outside-api:src/mor/bad.cpp:lock",
                "lock-outside-api:src/mor/bad.cpp:unlock",
            ])

    def test_owner_and_scoped_usage_clean(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/util/mutex.hpp": "void lock() { m_.lock(); }\n",
                "src/mor/ok.cpp":
                    "void f() {\n  util::MutexLock lock(mu_);\n"
                    "  if (l.owns_lock()) g();\n}\n",
            })
            self.assertEqual(run_check(repo, "lock-outside-api"), [])


class AllocInParallelTest(unittest.TestCase):
    def test_alloc_inside_lambda_flagged(self):
        code = (
            "void f() {\n"
            "  util::parallel_for(0, n, [&](index i) {\n"
            "    auto p = std::make_shared<Block>(i);\n"
            "    out.push_back(*p);\n"
            "  });\n"
            "}\n")
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/mor/bad.cpp": code})
            found = run_check(repo, "alloc-in-parallel")
            self.assertEqual(sorted(f.token for f in found),
                             ["make_shared", "push_back"])
            self.assertEqual([f.line_no for f in sorted(found, key=lambda x: x.line_no)],
                             [3, 4])

    def test_alloc_outside_lambda_clean(self):
        code = (
            "void f() {\n"
            "  auto buf = std::make_shared<Buf>();  // hoisted: fine\n"
            "  util::parallel_map<MatD>(n, [&](index i) {\n"
            "    return sample_block(sys, s[i]);\n"
            "  });\n"
            "}\n")
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/mor/ok.cpp": code})
            self.assertEqual(run_check(repo, "alloc-in-parallel"), [])

    def test_pool_implementation_exempt(self):
        code = "void q() { tasks_.push([job] { job->run(); }); }\n"
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/util/thread_pool.cpp": code})
            self.assertEqual(run_check(repo, "alloc-in-parallel"), [])

    def test_try_map_body_covered(self):
        code = (
            "void f() {\n"
            "  auto outcomes = util::parallel_try_map<Outcome>(count, [&](index i) {\n"
            "    auto buf = std::make_unique<Buf>();\n"
            "    return sample(sys, eff[i], *buf);\n"
            "  });\n"
            "}\n")
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/mor/bad.cpp": code})
            found = run_check(repo, "alloc-in-parallel")
            self.assertEqual([f.token for f in found], ["make_unique"])
            self.assertEqual(found[0].line_no, 3)

    def test_matrix_declaration_inside_body_flagged(self):
        code = (
            "void f() {\n"
            "  util::parallel_for(0, leaves, [&](index i) {\n"
            "    Matrix<T> s(2 * n, n);\n"
            "    MatD w(jb, ntrail);\n"
            "    combine(s, w);\n"
            "  });\n"
            "}\n")
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/la/bad.cpp": code})
            found = run_check(repo, "alloc-in-parallel")
            self.assertEqual([f.token for f in found], ["matrix-decl", "matrix-decl"])
            self.assertEqual([f.line_no for f in found], [3, 4])

    def test_matrix_reference_binding_clean(self):
        code = (
            "void f() {\n"
            "  util::parallel_for(0, pairs, [&](index p) {\n"
            "    const Matrix<T>& top = stacks[p];\n"
            "    la::MatD* out = &slots[p];\n"
            "    factor(top, out);\n"
            "  });\n"
            "}\n")
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/la/ok.cpp": code})
            self.assertEqual(run_check(repo, "alloc-in-parallel"), [])


class CounterDisciplineTest(unittest.TestCase):
    def test_raw_array_and_default_ordering_flagged(self):
        code = ("void f() {\n"
                "  obs::detail::g_counters[0].fetch_add(1);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/mor/bad.cpp": code})
            tokens = sorted(f.token for f in run_check(repo, "counter-discipline"))
            self.assertEqual(tokens, ["fetch_add", "g_counters"])

    def test_relaxed_helper_clean(self):
        code = ("inline void counter_add(Counter c, long d) {\n"
                "  g_counters[i].fetch_add(d, std::memory_order_relaxed);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/util/obs/counters.hpp": code})
            self.assertEqual(run_check(repo, "counter-discipline"), [])


class NarrowingIndexTest(unittest.TestCase):
    def test_int_loop_over_extent_flagged(self):
        code = ("void f(const MatD& m) {\n"
                "  for (int i = 0; i < m.rows(); ++i) g(i);\n"
                "}\n")
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/la/bad.cpp": code})
            found = run_check(repo, "narrowing-index")
            self.assertEqual([f.token for f in found], ["i"])
            self.assertEqual(found[0].line_no, 2)

    def test_constant_bound_clean(self):
        code = "void f() { for (int sweep = 0; sweep < kMaxSweeps; ++sweep) g(); }\n"
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/la/ok.cpp": code})
            self.assertEqual(run_check(repo, "narrowing-index"), [])

    def test_narrowing_cast_flagged_only_in_scope(self):
        code = "int n = static_cast<int>(v.size());\n"
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/sparse/bad.cpp": code,
                "src/util/ok.cpp": code,  # util/ is out of scope
            })
            keys = [f.key() for f in run_check(repo, "narrowing-index")]
            self.assertEqual(
                keys, ["narrowing-index:src/sparse/bad.cpp:static_cast<int>"])


class DiscardedStatusTest(unittest.TestCase):
    def test_statement_position_call_flagged(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/mor/bad.cpp": (
                    "void f(Sys& sys) {\n"
                    "  sys.try_prepare_shifted(s);\n"
                    "  util::parallel_try_map<int>(n, fn);\n"
                    "}\n"),
            })
            keys = sorted(f.key() for f in run_check(repo, "discarded-status"))
            self.assertEqual(keys, [
                "discarded-status:src/mor/bad.cpp:parallel_try_map",
                "discarded-status:src/mor/bad.cpp:try_prepare_shifted",
            ])

    def test_consumed_results_clean(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/mor/ok.cpp": (
                    "void f(Sys& sys) {\n"
                    "  auto st = sys.try_prepare_shifted(s);\n"
                    "  if (st.is_ok()) return;\n"
                    "  return\n"
                    "      try_solve(s);\n"
                    "  slot =\n"
                    "      try_solve(s);\n"
                    "  use(\n"
                    "      try_solve(s));\n"
                    "  m.try_lock();\n"  # lock-outside-api's domain
                    "}\n"),
            })
            self.assertEqual(run_check(repo, "discarded-status"), [])


class RegistryTest(unittest.TestCase):
    def test_all_checks_registered(self):
        names = set(registry.all_checks())
        self.assertEqual(names, {
            "raw-data-access", "float-eq", "missing-guard", "abs-squared",
            "raw-chrono", "lock-outside-api", "alloc-in-parallel",
            "counter-discipline", "narrowing-index", "discarded-status",
        })


if __name__ == "__main__":
    unittest.main()
