#!/usr/bin/env python3
"""Unit tests for the analyzer driver: allowlist strictness, compile-DB
file discovery, and CLI exit codes. Companion to test_analyze_checks.py;
run directly or via ctest (AnalyzeDriver.UnitTests)."""

from __future__ import annotations

import io
import json
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from analyze import cli, compiledb
from analyze.context import Context
from analyze.findings import Allowlist, Finding


def make_repo(tmp: Path, files: dict[str, str]) -> Path:
    for rel, text in files.items():
        p = tmp / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
    return tmp


def finding(repo: Path, check: str, rel: str, token: str) -> Finding:
    return Finding(check, repo / rel, 1, token, "msg", repo)


class AllowlistTest(unittest.TestCase):
    def test_split_suppresses_exact_key(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "allow.txt": "float-eq:src/la/x.cpp:== 0.0  # justified\n",
                "src/la/x.cpp": "",
            })
            allow = Allowlist(repo / "allow.txt")
            hit = finding(repo, "float-eq", "src/la/x.cpp", "== 0.0")
            miss = finding(repo, "float-eq", "src/la/x.cpp", "!= 1.0")
            visible, used = allow.split([hit, miss])
            self.assertEqual(visible, [miss])
            self.assertEqual(used, {"float-eq:src/la/x.cpp:== 0.0"})

    def test_stale_entry_reported_when_in_scope(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "allow.txt": "float-eq:src/la/gone.cpp:== 0.0\n",
            })
            allow = Allowlist(repo / "allow.txt")
            stale = allow.stale(set(), ["src"], {"float-eq"})
            self.assertEqual(stale, {"float-eq:src/la/gone.cpp:== 0.0"})

    def test_stale_scoped_to_ran_checks_and_roots(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "allow.txt":
                    "float-eq:src/la/gone.cpp:== 0.0\n"
                    "raw-chrono:src/mor/gone.cpp:std::chrono\n"
                    "float-eq:bench/gone.cpp:== 0.0\n",
            })
            allow = Allowlist(repo / "allow.txt")
            # Only float-eq ran, only src/ scanned: the raw-chrono entry and
            # the bench/ entry must not false-alarm.
            stale = allow.stale(set(), ["src"], {"float-eq"})
            self.assertEqual(stale, {"float-eq:src/la/gone.cpp:== 0.0"})

    def test_malformed_entry_always_reported(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"allow.txt": "not-a-valid-entry\n"})
            allow = Allowlist(repo / "allow.txt")
            self.assertEqual(allow.stale(set(), [], set()),
                             {"not-a-valid-entry"})

    def test_comments_and_blanks_ignored(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "allow.txt": "# header comment\n\nfloat-eq:src/x.cpp:== 0.0\n",
            })
            self.assertEqual(len(Allowlist(repo / "allow.txt").entries), 1)


class CompileDbTest(unittest.TestCase):
    def _write_db(self, repo: Path, entries) -> Path:
        build = repo / "build"
        build.mkdir()
        (build / "compile_commands.json").write_text(json.dumps(entries))
        return build

    def test_sources_come_from_db_headers_from_tree(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/in_build.cpp": "int a;\n",
                "src/la/dead_code.cpp": "int b;\n",
                "src/la/header.hpp": "int c;\n",
            })
            build = self._write_db(repo, [{
                "directory": str(repo / "build"),
                "file": str(repo / "src/la/in_build.cpp"),
                "command": "c++ -c ../src/la/in_build.cpp",
            }])
            ctx = Context(repo, [repo / "src"], compile_db=build)
            rels = [ctx.rel(f) for f in ctx.files]
            self.assertIn("src/la/in_build.cpp", rels)
            self.assertIn("src/la/header.hpp", rels)
            self.assertNotIn("src/la/dead_code.cpp", rels)

    def test_accepts_build_dir_or_json_path(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/a.cpp": ""})
            build = self._write_db(repo, [{
                "directory": str(repo / "build"),
                "file": str(repo / "src/a.cpp"),
                "arguments": ["c++", "-c", "src/a.cpp"],
            }])
            from_dir = compiledb.load(build)
            from_json = compiledb.load(build / "compile_commands.json")
            self.assertEqual([t.file for t in from_dir],
                             [t.file for t in from_json])
            self.assertEqual(from_dir[0].args, ["c++", "-c", "src/a.cpp"])

    def test_missing_db_raises_with_hint(self):
        with tempfile.TemporaryDirectory() as d:
            with self.assertRaises(FileNotFoundError) as caught:
                compiledb.load(Path(d))
            self.assertIn("CMAKE_EXPORT_COMPILE_COMMANDS", str(caught.exception))


class CliTest(unittest.TestCase):
    def _run(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            code = cli.main(argv)
        return code, out.getvalue(), err.getvalue()

    def test_clean_run_exits_zero(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/ok.cpp": "void f() { g(); }\n",
                "allow.txt": "",
            })
            code, out, err = self._run(
                ["src", "--repo-root", str(repo),
                 "--allowlist", str(repo / "allow.txt")])
            self.assertEqual(code, 0, err)
            self.assertIn("analyze: clean", out)

    def test_finding_exits_one(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/bad.cpp": "if (w == 0.0) skip();\n",
                "allow.txt": "",
            })
            code, _, err = self._run(
                ["src", "--repo-root", str(repo),
                 "--allowlist", str(repo / "allow.txt")])
            self.assertEqual(code, 1)
            self.assertIn("[float-eq]", err)

    def test_allowlisted_finding_is_clean(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/bad.cpp": "if (w == 0.0) skip();\n",
                "allow.txt": "float-eq:src/la/bad.cpp:== 0.0\n",
            })
            code, out, err = self._run(
                ["src", "--repo-root", str(repo),
                 "--allowlist", str(repo / "allow.txt")])
            self.assertEqual(code, 0, err)
            self.assertIn("1 allowlisted", out)

    def test_stale_allowlist_exits_one(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/ok.cpp": "void f();\n",
                "allow.txt": "float-eq:src/la/gone.cpp:== 0.0\n",
            })
            code, _, err = self._run(
                ["src", "--repo-root", str(repo),
                 "--allowlist", str(repo / "allow.txt")])
            self.assertEqual(code, 1)
            self.assertIn("stale allowlist entry", err)

    def test_checks_subset_limits_staleness(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {
                "src/la/ok.cpp": "void f();\n",
                # Stale float-eq entry, but only raw-chrono runs.
                "allow.txt": "float-eq:src/la/gone.cpp:== 0.0\n",
            })
            code, out, err = self._run(
                ["src", "--checks", "raw-chrono", "--repo-root", str(repo),
                 "--allowlist", str(repo / "allow.txt")])
            self.assertEqual(code, 0, err)
            self.assertIn("1 checks", out)

    def test_unknown_check_exits_two(self):
        code, _, err = self._run(["--checks", "no-such-check"])
        self.assertEqual(code, 2)
        self.assertIn("unknown check", err)

    def test_list_checks(self):
        code, out, _ = self._run(["--list-checks"])
        self.assertEqual(code, 0)
        for name in ("float-eq", "lock-outside-api", "narrowing-index"):
            self.assertIn(name, out)

    def test_missing_compile_db_exits_two(self):
        with tempfile.TemporaryDirectory() as d:
            repo = make_repo(Path(d), {"src/a.cpp": ""})
            code, _, err = self._run(
                ["src", "-p", str(repo / "no-such-build"),
                 "--repo-root", str(repo),
                 "--allowlist", str(repo / "allow.txt")])
            self.assertEqual(code, 2)
            self.assertIn("analyze: error", err)


if __name__ == "__main__":
    unittest.main()
