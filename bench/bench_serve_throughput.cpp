// Serving-layer throughput bench: a fixed batch of generator-built
// reduction jobs pushed through ReductionService at several runner counts.
// Reports jobs/sec and p50/p99 queue/run latency per sweep point.
//
// Artifacts: bench_out/BENCH_serve_throughput.json carries the standard
// timing records plus a "serve" array (one entry per runner count) with
// jobs_per_second, latency percentiles, and the outcome partition;
// MANIFEST_serve_throughput.json carries the serve_extra() section from the
// last sweep. Both are validated by tools/report_metrics.py in CI.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuit/generators.hpp"
#include "serve/model_cache.hpp"
#include "serve/service.hpp"
#include "sparse/factor_cache.hpp"
#include "util/obs/counters.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace pmtbr;
using la::index;

constexpr int kBatch = 40;

serve::JobRequest make_job(Rng& rng, int i) {
  serve::JobRequest req;
  req.name = "bench-" + std::to_string(i);
  req.system = circuit::make_rc_line(
      {.segments = static_cast<index>(rng.uniform_int(30, 90))});
  req.options.num_samples = static_cast<index>(rng.uniform_int(12, 32));
  req.priority = static_cast<serve::Priority>(rng.uniform_int(0, 2));
  return req;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct SweepPoint {
  int runners = 0;
  int jobs = 0;
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  double queue_p50 = 0.0, queue_p99 = 0.0;
  double run_p50 = 0.0, run_p99 = 0.0;
  serve::ServiceStats stats;
};

SweepPoint run_sweep(int runners) {
  // Rebuild the batch per sweep so every runner count reduces the same set
  // of systems (the rng stream is a pure function of the seed). Each sweep
  // gets a fresh service (fresh model cache) and a cold factor cache, so
  // runner counts stay comparable.
  sparse::FactorCache::global().clear();
  Rng rng(7);
  serve::ReductionService svc({.runners = runners, .max_queue = kBatch});
  WallTimer timer;
  std::vector<serve::JobId> ids;
  ids.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    auto id = svc.submit(make_job(rng, i));
    if (id.is_ok()) ids.push_back(id.value());
  }
  const auto results = svc.drain();
  SweepPoint pt;
  pt.runners = runners;
  pt.jobs = static_cast<int>(ids.size());
  pt.wall_seconds = timer.seconds();
  pt.jobs_per_second =
      pt.wall_seconds > 0 ? static_cast<double>(pt.jobs) / pt.wall_seconds : 0.0;
  std::vector<double> queue_lat, run_lat;
  for (const auto& [id, res] : results) {
    queue_lat.push_back(res.queue_seconds);
    run_lat.push_back(res.run_seconds);
  }
  pt.queue_p50 = percentile(queue_lat, 0.50);
  pt.queue_p99 = percentile(queue_lat, 0.99);
  pt.run_p50 = percentile(run_lat, 0.50);
  pt.run_p99 = percentile(run_lat, 0.99);
  pt.stats = svc.stats();
  return pt;
}

// Warm-vs-cold phase for the cross-job caching layer (docs/SERVING.md):
// one service reduces a wave of distinct jobs cold, then the identical
// wave again several times. Warm waves are served by the model cache, so
// warm jobs/sec should beat cold by a wide margin.
struct RepeatedWorkload {
  int jobs_per_wave = 0;
  int warm_waves = 0;
  double cold_wall_seconds = 0.0;
  double warm_wall_seconds = 0.0;
  double cold_jobs_per_second = 0.0;
  double warm_jobs_per_second = 0.0;
  serve::ServiceStats stats;
  util::CacheStats model;
  util::CacheStats factor;
};

RepeatedWorkload run_repeated_workload() {
  constexpr int kWave = 12;
  constexpr int kWarmWaves = 3;
  sparse::FactorCache::global().clear();
  serve::ReductionService svc({.runners = 4, .max_queue = kWave});

  // Deterministic, index-distinct jobs: every wave resubmits bit-identical
  // requests, so wave 2+ hits the model cache populated by wave 1.
  const auto wave = [&svc] {
    WallTimer timer;
    std::vector<serve::JobId> ids;
    ids.reserve(kWave);
    for (int i = 0; i < kWave; ++i) {
      serve::JobRequest req;
      req.name = "repeat-" + std::to_string(i);
      req.system = circuit::make_rc_line({.segments = static_cast<index>(40 + 5 * i)});
      req.options.num_samples = 16;
      auto id = svc.submit(std::move(req));
      if (id.is_ok()) ids.push_back(id.value());
    }
    for (const auto id : ids) (void)svc.wait(id);
    return timer.seconds();
  };

  RepeatedWorkload rep;
  rep.jobs_per_wave = kWave;
  rep.warm_waves = kWarmWaves;
  rep.cold_wall_seconds = wave();
  for (int w = 0; w < kWarmWaves; ++w) rep.warm_wall_seconds += wave();
  rep.cold_jobs_per_second =
      rep.cold_wall_seconds > 0 ? kWave / rep.cold_wall_seconds : 0.0;
  rep.warm_jobs_per_second =
      rep.warm_wall_seconds > 0 ? kWarmWaves * kWave / rep.warm_wall_seconds : 0.0;
  rep.stats = svc.stats();
  rep.model = svc.model_cache_stats();
  rep.factor = sparse::FactorCache::global().stats();
  return rep;
}

std::string write_artifact(const std::vector<SweepPoint>& sweep,
                           const RepeatedWorkload& rep) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return {};
  const std::string path = "bench_out/BENCH_serve_throughput.json";
  std::ofstream out(path);
  if (!out) return {};
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("bench");
  w.value("serve_throughput");
  w.key("records");
  w.begin_array();
  for (const auto& pt : sweep) {
    w.begin_object();
    w.key("label");
    w.value("serve_runners=" + std::to_string(pt.runners));
    w.key("wall_seconds");
    w.value(pt.wall_seconds);
    w.key("n");
    w.value(static_cast<std::int64_t>(pt.jobs));
    w.key("samples");
    w.value(std::int64_t{0});
    w.key("threads");
    w.value(pt.runners);
    w.key("gflops");
    w.value(0.0);
    w.end_object();
  }
  w.end_array();
  w.key("serve");
  w.begin_array();
  for (const auto& pt : sweep) {
    w.begin_object();
    w.key("runners");
    w.value(pt.runners);
    w.key("jobs");
    w.value(pt.jobs);
    w.key("jobs_per_second");
    w.value(pt.jobs_per_second);
    w.key("queue_seconds");
    w.begin_object();
    w.key("p50");
    w.value(pt.queue_p50);
    w.key("p99");
    w.value(pt.queue_p99);
    w.end_object();
    w.key("run_seconds");
    w.begin_object();
    w.key("p50");
    w.value(pt.run_p50);
    w.key("p99");
    w.value(pt.run_p99);
    w.end_object();
    w.key("outcomes");
    w.begin_object();
    w.key("completed");
    w.value(pt.stats.completed);
    w.key("failed");
    w.value(pt.stats.failed);
    w.key("cancelled");
    w.value(pt.stats.cancelled);
    w.key("expired");
    w.value(pt.stats.expired);
    w.key("rejected");
    w.value(pt.stats.rejected);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("repeated_workload");
  w.begin_object();
  w.key("jobs_per_wave");
  w.value(rep.jobs_per_wave);
  w.key("warm_waves");
  w.value(rep.warm_waves);
  w.key("cold");
  w.begin_object();
  w.key("wall_seconds");
  w.value(rep.cold_wall_seconds);
  w.key("jobs_per_second");
  w.value(rep.cold_jobs_per_second);
  w.end_object();
  w.key("warm");
  w.begin_object();
  w.key("wall_seconds");
  w.value(rep.warm_wall_seconds);
  w.key("jobs_per_second");
  w.value(rep.warm_jobs_per_second);
  w.end_object();
  w.key("cache_hits");
  w.value(rep.stats.cache_hits);
  w.end_object();
  w.end_object();
  w.done();
  return path;
}

}  // namespace

int main() {
  bench::banner("serve_throughput",
                "batched reduction service: jobs/sec and latency percentiles "
                "vs. runner count");
  obs::reset_counters();

  std::vector<SweepPoint> sweep;
  std::cout << "runners,jobs,wall_seconds,jobs_per_sec,queue_p50,queue_p99,"
               "run_p50,run_p99,completed\n";
  for (const int runners : {1, 2, 4}) {
    const SweepPoint pt = run_sweep(runners);
    sweep.push_back(pt);
    std::cout << pt.runners << "," << pt.jobs << "," << pt.wall_seconds << ","
              << pt.jobs_per_second << "," << pt.queue_p50 << "," << pt.queue_p99
              << "," << pt.run_p50 << "," << pt.run_p99 << ","
              << pt.stats.completed << "\n";
  }

  const RepeatedWorkload rep = run_repeated_workload();
  std::cout << "repeated_workload: cold " << rep.cold_jobs_per_second
            << " jobs/sec, warm " << rep.warm_jobs_per_second << " jobs/sec, "
            << rep.stats.cache_hits << " cache hits\n";

  const std::string artifact = write_artifact(sweep, rep);
  if (!artifact.empty()) bench::note("timing artifact: " + artifact);
  bench::write_run_manifest("serve_throughput",
                            {serve::serve_extra(rep.stats),
                             serve::cache_extra(rep.model, rep.factor)});
  return 0;
}
