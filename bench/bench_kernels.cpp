// Kernel-level perf records for the blocked dense layer: GEMM (blocked vs.
// the seed scalar triple loop), blocked compact-WY QR vs. the unblocked
// reference, TSQR vs. flat QR, and the compressor's blocked block path vs.
// its per-column reference mode.
//
// All dense-kernel records are single-threaded so the numbers isolate the
// kernel (register tiling, packing, ISA dispatch) from thread scaling,
// which bench_cost_scaling sweeps separately. Output goes to
// bench_out/BENCH_kernels.json (with achieved GFLOP/s where a flop count
// is well-defined) plus the usual run manifest with the gemm_flops /
// gemm_bytes counters; CI's perf-smoke job validates both artifacts.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "la/matrix.hpp"
#include "la/ops.hpp"
#include "la/qr.hpp"
#include "la/tsqr.hpp"
#include "mor/compressor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace pmtbr;
using la::cd;
using la::index;
using la::MatC;
using la::MatD;

MatD random_mat(Rng& rng, index m, index n) {
  MatD a(m, n);
  for (index i = 0; i < m; ++i)
    for (index j = 0; j < n; ++j) a(i, j) = rng.normal();
  return a;
}

MatC random_cmat(Rng& rng, index m, index n) {
  MatC a(m, n);
  for (index i = 0; i < m; ++i)
    for (index j = 0; j < n; ++j) a(i, j) = cd(rng.normal(), rng.normal());
  return a;
}

/// Best-of-`reps` wall time of `fn` after one untimed warmup run.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

void gemm_records(std::vector<bench::TimingRecord>& records) {
  Rng rng(7);
  for (const index n : {index{128}, index{256}, index{512}}) {
    const int reps = n <= 128 ? 5 : (n <= 256 ? 3 : 2);
    const MatD a = random_mat(rng, n, n);
    const MatD b = random_mat(rng, n, n);
    const double dn = static_cast<double>(n);
    const double flops = 2.0 * dn * dn * dn;
    const double t_ref = best_seconds(reps, [&] { la::matmul_reference(a, b); });
    const double t_blk = best_seconds(reps, [&] { la::matmul(a, b); });
    records.push_back({"gemm_double_reference_n=" + std::to_string(n), t_ref, n, 0, 1,
                       flops / t_ref / 1e9});
    records.push_back({"gemm_double_blocked_n=" + std::to_string(n), t_blk, n, 0, 1,
                       flops / t_blk / 1e9});
    bench::note("gemm double n=" + std::to_string(n) + ": blocked " +
                std::to_string(flops / t_blk / 1e9) + " GF/s, reference " +
                std::to_string(flops / t_ref / 1e9) + " GF/s (" +
                std::to_string(t_ref / t_blk) + "x)");

    const MatC ac = random_cmat(rng, n, n);
    const MatC bc = random_cmat(rng, n, n);
    const double cflops = 8.0 * dn * dn * dn;  // real flops
    const double tc_ref = best_seconds(std::max(1, reps - 1), [&] { la::matmul_reference(ac, bc); });
    const double tc_blk = best_seconds(reps, [&] { la::matmul(ac, bc); });
    records.push_back({"gemm_complex_reference_n=" + std::to_string(n), tc_ref, n, 0, 1,
                       cflops / tc_ref / 1e9});
    records.push_back({"gemm_complex_blocked_n=" + std::to_string(n), tc_blk, n, 0, 1,
                       cflops / tc_blk / 1e9});
    bench::note("gemm complex n=" + std::to_string(n) + ": blocked " +
                std::to_string(cflops / tc_blk / 1e9) + " GF/s, reference " +
                std::to_string(cflops / tc_ref / 1e9) + " GF/s (" +
                std::to_string(tc_ref / tc_blk) + "x)");
  }
}

void qr_records(std::vector<bench::TimingRecord>& records) {
  Rng rng(11);
  const index m = 768, n = 384;
  const MatD a = random_mat(rng, m, n);
  // Factorization-only flop count (2n^2(m - n/3)); thin-Q accumulation adds
  // a comparable amount, so the GFLOP/s figures understate both paths
  // equally and the ratio stays meaningful.
  const double dm = static_cast<double>(m), dn = static_cast<double>(n);
  const double flops = 2.0 * dn * dn * (dm - dn / 3.0);
  const double t_ref = best_seconds(2, [&] { la::qr_reference(a); });
  const double t_blk = best_seconds(3, [&] { la::qr(a); });
  records.push_back({"qr_double_reference_768x384", t_ref, m, 0, 1, flops / t_ref / 1e9});
  records.push_back({"qr_double_blocked_768x384", t_blk, m, 0, 1, flops / t_blk / 1e9});
  bench::note("qr 768x384: blocked " + std::to_string(t_blk) + " s, reference " +
              std::to_string(t_ref) + " s (" + std::to_string(t_ref / t_blk) + "x)");
}

void tsqr_records(std::vector<bench::TimingRecord>& records) {
  Rng rng(13);
  const index m = 8192, n = 32;
  const MatD a = random_mat(rng, m, n);
  // n < the blocked-QR threshold, so la::qr is the flat unblocked loop here
  // and the pair isolates what the tree reduction buys on tall-skinny shapes.
  const double t_flat = best_seconds(2, [&] { la::qr(a); });
  const double t_tsqr = best_seconds(3, [&] { la::tsqr(a); });
  records.push_back({"qr_flat_8192x32", t_flat, m, 0, 1});
  records.push_back({"tsqr_8192x32", t_tsqr, m, 0, 1});
  bench::note("tsqr 8192x32: " + std::to_string(t_tsqr) + " s vs flat qr " +
              std::to_string(t_flat) + " s (" + std::to_string(t_flat / t_tsqr) + "x)");
}

void compressor_records(std::vector<bench::TimingRecord>& records) {
  // Stream shaped like a PMTBR sampling sweep: a few novel blocks saturate
  // the reachable subspace, then a long tail of samples that are linear
  // combinations of columns the basis already spans, with novelty far below
  // the drop tolerance — the fast-HSV-decay regime the compressor exists
  // for (paper Fig. 5 in miniature).
  const index n = 4000, block_cols = 16, num_blocks = 24, novel_blocks = 3;
  const double drop_tol = 1e-6;
  Rng rng(17);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  std::vector<MatD> blocks;
  for (index bidx = 0; bidx < novel_blocks; ++bidx) {
    MatD blk = random_mat(rng, n, block_cols);
    for (index i = 0; i < n; ++i)
      for (index j = 0; j < block_cols; ++j) blk(i, j) *= scale;
    blocks.push_back(std::move(blk));
  }
  for (index bidx = novel_blocks; bidx < num_blocks; ++bidx) {
    MatD blk(n, block_cols);
    for (index j = 0; j < block_cols; ++j) {
      for (index pool = 0; pool < novel_blocks; ++pool) {
        const MatD& pb = blocks[static_cast<std::size_t>(pool)];
        for (index c = 0; c < pb.cols(); ++c) {
          const double w = rng.normal();
          for (index i = 0; i < n; ++i) blk(i, j) += w * pb(i, c);
        }
      }
      for (index i = 0; i < n; ++i) blk(i, j) += 1e-8 * scale * rng.normal();
    }
    blocks.push_back(std::move(blk));
  }
  const auto run = [&](mor::CompressorMode mode) {
    mor::IncrementalCompressor comp(n, drop_tol, mode);
    for (const auto& blk : blocks) comp.add_columns(blk);
    return comp.rank();
  };
  const double t_ref = best_seconds(2, [&] { run(mor::CompressorMode::kReference); });
  const double t_blk = best_seconds(2, [&] { run(mor::CompressorMode::kBlocked); });
  const long cols = static_cast<long>(block_cols * num_blocks);
  records.push_back({"compression_reference", t_ref, n, cols, 1});
  records.push_back({"compression_blocked", t_blk, n, cols, 1});
  bench::note("compression n=" + std::to_string(n) + " cols=" + std::to_string(cols) +
              ": blocked " + std::to_string(t_blk) + " s, reference " + std::to_string(t_ref) +
              " s (" + std::to_string(t_ref / t_blk) + "x)");
}

}  // namespace

int main() {
  pmtbr::bench::banner("kernels",
                       "dense-kernel GFLOP/s: blocked GEMM/QR/TSQR and compressor block path "
                       "vs. their scalar references (single thread)");
  pmtbr::util::set_global_threads(1);

  std::vector<pmtbr::bench::TimingRecord> records;
  gemm_records(records);
  qr_records(records);
  tsqr_records(records);
  compressor_records(records);

  const std::string json = pmtbr::bench::write_timing_json("kernels", records);
  if (!json.empty()) pmtbr::bench::note("timing JSON: " + json);
  pmtbr::bench::write_run_manifest("kernels");
  return 0;
}
