// Fig. 16 reproduction: normalized error estimate (trailing singular-value
// sum from Algorithm 3) vs model order for a 1000-port substrate network.
//
// Paper shape: a steep initial decay — ~30 states suffice for high
// accuracy, a >30x compression of a network whose port count alone would
// force 1000+ states in moment-matching methods.
#include <cmath>
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/input_correlated.hpp"
#include "signal/correlation.hpp"
#include "signal/waveform.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

int main() {
  bench::banner("Fig. 16", "Error estimate vs order for the 1000-port substrate network");

  circuit::SubstrateParams sp;
  sp.grid = 33;  // 1089 states
  sp.num_ports = 1000;
  const auto sys = circuit::make_substrate(sp);
  bench::note("states = " + std::to_string(sys.n()) +
              ", ports = " + std::to_string(sys.num_inputs()));

  Rng rng(27182);
  signal::BulkCurrentSpec bc;
  bc.num_ports = sys.num_inputs();
  bc.num_sources = 8;
  bc.clock_period = 1e-8;
  const double t_end = 6e-8;
  const auto bank = signal::make_bulk_currents(bc, t_end, rng);
  const auto samples = signal::sample_waveforms(bank, t_end, 400);

  mor::InputCorrelatedOptions ic;
  ic.bands = {mor::Band{0.0, 2e9}};
  ic.num_freq_samples = 20;
  ic.draws_per_frequency = 0;
  ic.fixed_order = 40;  // we want the singular-value profile
  const auto icr = mor::input_correlated_tbr(sys, samples, ic);

  // Normalized trailing-sum error estimate as a function of model order.
  const auto& sv = icr.model.singular_values;
  double total = 0;
  for (const double s : sv) total += s;

  CsvWriter csv(std::cout, {"model_order", "normalized_error_estimate"},
                bench::out_path("fig16_substrate1000"));
  double tail = total;
  for (index q = 0; q <= std::min<index>(60, static_cast<index>(sv.size())); ++q) {
    csv.row({static_cast<double>(q), tail / total});
    if (q < static_cast<index>(sv.size())) tail -= sv[static_cast<std::size_t>(q)];
  }

  index q_hi = 0;
  double t2 = total;
  while (q_hi < static_cast<index>(sv.size()) && t2 > 1e-6 * total) {
    t2 -= sv[static_cast<std::size_t>(q_hi)];
    ++q_hi;
  }
  bench::note("order for 1e-6 estimate = " + std::to_string(q_hi) + " (compression " +
              std::to_string(sys.n() / std::max<index>(q_hi, 1)) + "x vs states, " +
              std::to_string(sys.num_inputs() / std::max<index>(q_hi, 1)) + "x vs ports)");
  bench::write_run_manifest("fig16_substrate1000");
  return 0;
}
