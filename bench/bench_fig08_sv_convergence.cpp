// Fig. 8 reproduction: convergence of the five largest singular values of
// ZW as the number of frequency samples grows (spiral inductor, crude
// uniform "rectangle rule" sampling as in the paper).
//
// Paper shape: the largest five singular values have mostly converged by
// ~100 sample points.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/pmtbr.hpp"
#include "bench_common.hpp"

using namespace pmtbr;

int main() {
  bench::banner("Fig. 8", "Top-5 singular values of ZW vs number of samples (spiral inductor)");

  circuit::SpiralParams sp;
  sp.turns = 30;
  const auto sys = circuit::make_spiral(sp);

  CsvWriter csv(std::cout, {"num_samples", "sv1", "sv2", "sv3", "sv4", "sv5"},
                bench::out_path("fig08_sv_convergence"));
  for (const la::index ns : {5, 10, 15, 20, 30, 40, 50, 60, 80, 100, 120}) {
    mor::PmtbrOptions opts;
    opts.bands = {mor::Band{0.0, 5e10}};
    opts.scheme = mor::SamplingScheme::kUniform;  // the paper's rectangle rule
    opts.num_samples = ns;
    opts.fixed_order = 1;  // basis unused; we want the spectrum only
    const auto res = mor::pmtbr(sys, opts);
    std::vector<double> row{static_cast<double>(ns)};
    for (std::size_t i = 0; i < 5; ++i)
      row.push_back(i < res.model.singular_values.size() ? res.model.singular_values[i] : 0.0);
    csv.row(row);
  }
  bench::write_run_manifest("fig08_sv_convergence");
  return 0;
}
