// Fig. 11 reproduction: transfer-function magnitude of the 18-pin shielded
// connector — exact, TBR order 30, and frequency-selective PMTBR order 18
// built only from 0–8 GHz samples.
//
// Paper shape: PMTBR(18) tracks the exact response inside 0–8 GHz; the
// larger global TBR(30) model instead spends its effort on the large
// out-of-band (shield-cavity) features around 10–18 GHz and misses the band
// of interest. TBR needs ~40 states before the band looks right.
//
// Both methods run in energy coordinates (x̃ = E^{1/2}x): the SVD direction
// selection of one-sided PMTBR is coordinate-dependent, and the energy norm
// is the physically meaningful one for RLC state vectors (DESIGN.md).
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "signal/ac.hpp"
#include "bench_common.hpp"

using namespace pmtbr;

int main() {
  bench::banner("Fig. 11",
                "Connector transfer function: exact vs TBR(30) vs band-limited PMTBR(18)");

  circuit::ConnectorParams cp;  // 18 pins, 6 sections, shield-cavity branches
  const auto sys = to_energy_standard(circuit::make_connector(cp));
  bench::note("states = " + std::to_string(sys.n()));

  const mor::Band focus{0.0, 8e9};

  mor::PmtbrOptions popts;
  popts.bands = {focus};
  popts.num_samples = 40;
  popts.fixed_order = 18;
  const auto pm = mor::pmtbr(sys, popts);

  mor::TbrOptions topts;
  topts.fixed_order = 40;
  const auto tb40 = mor::tbr(sys, topts);
  const auto tb30 = mor::tbr_truncate(sys, tb40, 30);

  const auto grid = mor::linspace_grid(1e8, 2e10, 80);
  const auto exact = signal::ac_sweep(sys, grid, 1, 0);
  const auto ac_pm = signal::ac_sweep(pm.model.system, grid, 1, 0);
  const auto ac_tb = signal::ac_sweep(tb30.model.system, grid, 1, 0);

  CsvWriter csv(std::cout, {"f_hz", "mag_exact", "mag_tbr30", "mag_pmtbr18"},
                bench::out_path("fig11_freq_selective"));
  for (std::size_t i = 0; i < grid.size(); ++i)
    csv.row({grid[i], exact[i].magnitude, ac_tb[i].magnitude, ac_pm[i].magnitude});

  // Headline: in-band error of each model across a TBR order sweep.
  const auto in_grid = mor::linspace_grid(1e8, 8e9, 40);
  const auto e_pm = mor::compare_on_grid(sys, pm.model.system, in_grid);
  bench::note("in-band (0-8GHz) max rel error: PMTBR(18) = " + format_double(e_pm.max_rel));
  for (const la::index q : {18, 24, 30, 40}) {
    const auto tb = mor::tbr_truncate(sys, tb40, q);
    const auto e = mor::compare_on_grid(sys, tb.model.system, in_grid);
    bench::note("in-band max rel error: TBR(" + std::to_string(q) +
                ") = " + format_double(e.max_rel));
  }
  bench::write_run_manifest("fig11_freq_selective");
  return 0;
}
