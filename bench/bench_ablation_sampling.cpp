// Ablation A1: how the sampling scheme (uniform / logarithmic /
// Gauss–Legendre) affects PMTBR accuracy at a fixed order and sample
// budget, on the spiral inductor and the PEEC resonator chain.
//
// DESIGN.md decision: every (points, weights) pair implicitly defines a
// frequency weighting; schemes matched to where the system has structure
// win.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

namespace {

double run(const DescriptorSystem& sys, mor::SamplingScheme scheme, const mor::Band& band,
           index samples, index order, const std::vector<double>& grid) {
  mor::PmtbrOptions opts;
  opts.bands = {band};
  opts.scheme = scheme;
  opts.num_samples = samples;
  opts.fixed_order = order;
  const auto res = mor::pmtbr(sys, opts);
  const auto err = mor::compare_on_grid(sys, res.model.system, grid);
  return err.max_abs / err.h_inf_scale;
}

}  // namespace

int main() {
  bench::banner("Ablation A1", "Sampling scheme vs model error (fixed order and budget)");

  struct Case {
    std::string name;
    DescriptorSystem sys;
    mor::Band band;
    std::vector<double> grid;
    index order;
  };
  circuit::SpiralParams sp;
  sp.turns = 30;
  circuit::PeecParams pp;
  pp.sections = 40;
  std::vector<Case> cases;
  cases.push_back({"spiral", circuit::make_spiral(sp), {0.0, 5e10},
                   mor::logspace_grid(1e8, 5e10, 40), 8});
  cases.push_back({"peec", circuit::make_peec(pp), {0.0, 1e9},
                   mor::linspace_grid(1e6, 1e9, 40), 16});

  CsvWriter csv(std::cout,
                {"case", "num_samples", "err_uniform", "err_log", "err_gauss_legendre"},
                bench::out_path("ablation_sampling"));
  for (const auto& c : cases) {
    for (const index ns : {10, 20, 40}) {
      const double eu = run(c.sys, mor::SamplingScheme::kUniform, c.band, ns, c.order, c.grid);
      mor::Band logband{std::max(c.band.f_lo, c.band.f_hi * 1e-5), c.band.f_hi};
      const double el = run(c.sys, mor::SamplingScheme::kLogarithmic, logband, ns, c.order, c.grid);
      const double eg =
          run(c.sys, mor::SamplingScheme::kGaussLegendre, c.band, ns, c.order, c.grid);
      csv.row({c.name, format_double(static_cast<double>(ns)), format_double(eu),
               format_double(el), format_double(eg)});
    }
  }
  bench::write_run_manifest("ablation_sampling");
  return 0;
}
