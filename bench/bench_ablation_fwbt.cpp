// Ablation A6 (paper Sec. IV-B): frequency-selective PMTBR vs the classical
// alternative it argues against — Enns frequency-weighted balanced
// truncation with explicit Butterworth weighting systems.
//
// The claim: PMTBR achieves the band-focused accuracy "merely by selection
// of sampling points" while FWBT must build and reduce a composite system
// (here: plant order + 2 x filter order x ports extra states in the
// Lyapunov solves) and loses the error bound anyway.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/fwbt.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "util/timer.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

int main() {
  bench::banner("Ablation A6", "Frequency-selective PMTBR vs Enns FWBT (connector slice)");

  circuit::ConnectorParams cp;
  cp.pins = 6;
  cp.sections = 4;
  const auto sys = to_energy_standard(circuit::make_connector(cp));
  bench::note("states = " + std::to_string(sys.n()));

  const double f_band = 6e9;
  const mor::Band band{0.0, f_band};
  const auto grid = mor::linspace_grid(1e8, f_band, 40);

  CsvWriter csv(std::cout, {"order", "err_tbr", "err_fwbt", "err_fs_pmtbr"},
                bench::out_path("ablation_fwbt"));
  double t_fwbt = 0, t_pmtbr = 0;
  for (const index q : {8, 12, 16, 20, 24}) {
    WallTimer timer;
    mor::TbrOptions topts;
    topts.fixed_order = q;
    const auto plain = mor::tbr(sys, topts);

    timer.reset();
    mor::FwbtOptions fopts;
    fopts.fixed_order = q;
    const auto wi = mor::butterworth_lowpass(3, f_band, static_cast<index>(sys.num_inputs()));
    const auto wo = mor::butterworth_lowpass(3, f_band, static_cast<index>(sys.num_outputs()));
    const auto weighted = mor::fwbt(sys, wi, wo, fopts);
    t_fwbt += timer.seconds();

    timer.reset();
    mor::PmtbrOptions popts;
    popts.bands = {band};
    popts.num_samples = 30;
    popts.fixed_order = q;
    const auto pm = mor::pmtbr(sys, popts);
    t_pmtbr += timer.seconds();

    const auto e_t = mor::compare_on_grid(sys, plain.model.system, grid);
    const auto e_f = mor::compare_on_grid(sys, weighted.model.system, grid);
    const auto e_p = mor::compare_on_grid(sys, pm.model.system, grid);
    csv.row(std::vector<double>{static_cast<double>(q), e_t.max_rel, e_f.max_rel, e_p.max_rel});
  }
  bench::note("wall time over the sweep: FWBT " + format_double(t_fwbt) + " s, PMTBR " +
              format_double(t_pmtbr) + " s");
  bench::write_run_manifest("ablation_fwbt");
  return 0;
}
