// Ablation A4: stochastic Algorithm 3 (random draws r ~ N(0, S_K^2/N)) vs
// the deterministic blocked variant (all scaled input directions at every
// frequency point), as a function of draw budget.
//
// Finding recorded in DESIGN.md/EXPERIMENTS.md: the Monte Carlo variant
// converges to the blocked variant's accuracy roughly like 1/sqrt(draws);
// the blocked variant is the default for the figure benches.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/input_correlated.hpp"
#include "signal/transient.hpp"
#include "signal/waveform.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

int main() {
  bench::banner("Ablation A4", "Random-draw vs deterministic input-correlated PMTBR");

  circuit::MultiportRcParams mp;
  mp.lines = 16;
  mp.segments = 5;
  const auto sys = circuit::make_multiport_rc(mp);

  signal::SquareWaveSpec spec;
  spec.period = 6e-9;
  spec.rise_time = 3e-10;
  spec.dither_fraction = 0.1;
  const double t_end = 3e-8;
  std::vector<double> phases;
  for (index k = 0; k < 16; ++k) phases.push_back(static_cast<double>(k % 3) * 1.1e-9);
  Rng rng(606);
  const auto bank = signal::make_square_bank(spec, t_end, phases, rng);
  const auto samples = signal::sample_waveforms(bank, t_end, 300);

  signal::TransientOptions sim;
  sim.t_end = t_end;
  sim.steps = 600;
  const auto in = signal::bank_input(bank);
  const auto full = signal::simulate(sys, in, sim);

  const auto run = [&](index draws, std::uint64_t seed) {
    mor::InputCorrelatedOptions ic;
    ic.bands = {mor::Band{0.0, 2e9}};
    ic.num_freq_samples = 12;
    ic.draws_per_frequency = draws;
    ic.fixed_order = 10;
    ic.seed = seed;
    const auto r = mor::input_correlated_tbr(sys, samples, ic);
    const auto red = signal::simulate(r.model.system, in, sim);
    return signal::compare_outputs(full, red).rms;
  };

  CsvWriter csv(std::cout, {"draws_per_frequency", "rms_error"},
                bench::out_path("ablation_draws"));
  csv.row({0.0, run(0, 1)});  // deterministic blocked variant
  for (const index d : {1, 2, 4, 8, 16}) csv.row({static_cast<double>(d), run(d, 17)});
  bench::write_run_manifest("ablation_draws");
  return 0;
}
