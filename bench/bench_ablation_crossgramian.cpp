// Ablation A3 (paper Sec. V-D): one-sided PMTBR vs the cross-Gramian
// two-sided variant on a nonsymmetric RLC system, at equal order.
//
// Expectation: on symmetric (RC, SISO) systems the two coincide; on
// nonsymmetric systems the cross-Gramian variant folds observability
// information into the projection and can win at small orders.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/cross_gramian.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

int main() {
  bench::banner("Ablation A3", "One-sided PMTBR vs cross-Gramian PMTBR (connector slice)");

  circuit::ConnectorParams cp;
  cp.pins = 6;
  cp.sections = 4;
  cp.cavity_branches = false;  // isolate the one- vs two-sided question
  const auto sys = to_energy_standard(circuit::make_connector(cp));
  bench::note("states = " + std::to_string(sys.n()));

  const mor::Band band{0.0, 6e9};
  const auto grid = mor::linspace_grid(1e8, 6e9, 40);

  CsvWriter csv(std::cout, {"order", "err_one_sided", "err_cross_gramian"},
                bench::out_path("ablation_crossgramian"));
  for (const index q : {8, 12, 16, 20, 24}) {
    mor::PmtbrOptions po;
    po.bands = {band};
    po.num_samples = 30;
    po.fixed_order = q;
    const auto one = mor::pmtbr(sys, po);

    mor::CrossGramianOptions co;
    co.bands = {band};
    co.num_samples = 30;
    co.fixed_order = q;
    const auto two = mor::cross_gramian_pmtbr(sys, co);

    const auto e1 = mor::compare_on_grid(sys, one.model.system, grid);
    const auto e2 = mor::compare_on_grid(sys, two.model.system, grid);
    csv.row({static_cast<double>(q), e1.max_rel, e2.max_rel});
  }
  bench::write_run_manifest("ablation_crossgramian");
  return 0;
}
