// Fig. 9 reproduction: true admittance transfer-function error vs model
// order, together with the singular-value error estimate, for PMTBR models
// built from 100 sample points (spiral inductor).
//
// Paper shape: the estimates track the true error closely for the orders
// whose singular values are well converged; beyond order ~10-12 both
// saturate near numerical noise.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "bench_common.hpp"

using namespace pmtbr;

int main() {
  bench::banner("Fig. 9",
                "True error vs order and singular-value error estimate (spiral, 100 samples)");

  circuit::SpiralParams sp;
  sp.turns = 30;
  const auto sys = to_energy_standard(circuit::make_spiral(sp));
  const auto grid = mor::linspace_grid(5e8, 5e10, 40);

  // One sampling pass at 100 points; models of every order reuse it.
  const auto samples = mor::sample_band(mor::Band{0.0, 5e10}, 100, mor::SamplingScheme::kUniform);

  std::vector<la::index> orders;
  for (la::index q = 2; q <= 16; ++q) orders.push_back(q);
  const auto sweep = mor::pmtbr_order_sweep(sys, samples, orders);

  CsvWriter csv(std::cout, {"order", "true_error", "sv_estimate"},
                bench::out_path("fig09_error_estimate"));
  for (std::size_t i = 0; i < orders.size(); ++i) {
    const auto& res = sweep[i];
    const la::index q = orders[i];
    const auto err = mor::compare_on_grid(sys, res.model.system, grid);
    // Error estimate: the first truncated singular value (normalized like
    // the observed H-infinity error).
    const double est = q < static_cast<la::index>(res.model.singular_values.size())
                           ? res.model.singular_values[static_cast<std::size_t>(q)] /
                                 res.model.singular_values[0]
                           : 0.0;
    csv.row({static_cast<double>(q), err.max_abs / err.h_inf_scale, est});
  }
  bench::write_run_manifest("fig09_error_estimate");
  return 0;
}
