// Fig. 5 reproduction: Hankel singular values of an RC clock-distribution
// tree — exact (from Gramians) vs estimated by PMTBR from 50 sample points.
//
// Paper shape: the estimates are not exact but follow the exact values'
// trend while decreasing rapidly over many orders of magnitude; the tail is
// underestimated (finite-bandwidth effect).
#include <cmath>
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "bench_common.hpp"

using namespace pmtbr;

int main() {
  bench::banner("Fig. 5",
                "Exact vs PMTBR-estimated Hankel singular values, RC clock tree (50 samples)");

  circuit::ClockTreeParams p;
  p.levels = 7;
  // Symmetric coordinates: singular values of ZW estimate the HSVs directly
  // (paper Sec. III-A).
  const auto sys = to_symmetric_standard(circuit::make_clock_tree(p));
  bench::note("states = " + std::to_string(sys.n()));

  const auto exact = mor::hankel_singular_values(sys);

  mor::PmtbrOptions opts;
  opts.bands = {mor::Band{1e4, 1e13}};
  opts.scheme = mor::SamplingScheme::kLogarithmic;
  opts.num_samples = 50;
  const auto res = mor::pmtbr(sys, opts);

  CsvWriter csv(std::cout, {"index", "hsv_exact", "hsv_pmtbr_estimate"},
                bench::out_path("fig05_hsv_convergence"));
  const std::size_t rows = std::min<std::size_t>(exact.size(), res.hankel_estimates.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(rows, 40); ++i)
    csv.row({static_cast<double>(i + 1), exact[i], res.hankel_estimates[i]});

  // Headline: decades of decay captured by the estimates.
  double decades = 0;
  for (std::size_t i = 0; i < rows; ++i)
    if (res.hankel_estimates[i] > 0)
      decades = std::log10(res.hankel_estimates[0] / res.hankel_estimates[i]);
  bench::note("estimate decay spans " + std::to_string(decades) + " decades");
  // Per-sample degradation stats (retries/drops/reweights — all zero on a
  // clean run) travel with the manifest so PMTBR_FAULTS sweeps are auditable
  // via report_metrics.py.
  bench::write_run_manifest("fig05_hsv_convergence",
                            {mor::degradation_extra(res.degradation)});
  return 0;
}
