// Fig. 3 reproduction: TBR error bound (2·Σ tail of Hankel singular values)
// for a 12×12 RC mesh as a function of the number of input ports.
//
// Paper shape: the order needed for a given accuracy grows with the port
// count; for 64 inputs even 20% error needs ≥ 40 states.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/tbr.hpp"
#include "bench_common.hpp"

using namespace pmtbr;

int main() {
  bench::banner("Fig. 3", "TBR error bound vs model order for a 12x12 RC mesh, varying #inputs");

  const std::vector<la::index> port_counts{4, 8, 16, 32, 64};
  std::vector<std::vector<double>> hsvs;
  for (const auto p : port_counts) {
    circuit::RcMeshParams mp;
    mp.rows = 12;
    mp.cols = 12;
    mp.num_ports = p;
    hsvs.push_back(mor::hankel_singular_values(circuit::make_rc_mesh(mp)));
  }

  // Normalized error bound (relative to twice the full HSV sum, i.e. the
  // order-0 bound) so curves for different port counts are comparable.
  CsvWriter csv(std::cout,
                {"order", "bound_p4", "bound_p8", "bound_p16", "bound_p32", "bound_p64"},
                bench::out_path("fig03_mesh_ports"));
  for (la::index q = 0; q <= 80; q += 2) {
    std::vector<double> row{static_cast<double>(q)};
    for (const auto& hsv : hsvs)
      row.push_back(mor::tbr_error_bound(hsv, q) / mor::tbr_error_bound(hsv, 0));
    csv.row(row);
  }

  // Headline numbers: order needed for a 20% relative bound.
  for (std::size_t i = 0; i < port_counts.size(); ++i) {
    la::index q = 0;
    const double total = mor::tbr_error_bound(hsvs[i], 0);
    while (q < static_cast<la::index>(hsvs[i].size()) &&
           mor::tbr_error_bound(hsvs[i], q) > 0.2 * total)
      ++q;
    bench::note("ports=" + std::to_string(port_counts[i]) +
                ": order for 20% bound = " + std::to_string(q));
  }
  bench::write_run_manifest("fig03_mesh_ports");
  return 0;
}
