// Fig. 6 reproduction: angle between the exact TBR second principal vector
// and the leading 4-dimensional PMTBR singular subspace, as a function of
// the number of sample points.
//
// Paper shape: the angle decreases with samples, then levels out — the
// plateau reflects the system's response outside the sampled bandwidth.
#include <iostream>

#include "circuit/generators.hpp"
#include "la/matrix.hpp"
#include "mor/pmtbr.hpp"
#include "mor/tbr.hpp"
#include "signal/subspace.hpp"
#include "bench_common.hpp"

using namespace pmtbr;

int main() {
  bench::banner("Fig. 6",
                "Angle between exact 2nd principal vector and PMTBR leading 4-subspace");

  circuit::ClockTreeParams p;
  p.levels = 7;
  const auto sys = to_symmetric_standard(circuit::make_clock_tree(p));

  mor::TbrOptions topts;
  topts.fixed_order = 8;
  const auto exact = mor::tbr(sys, topts);
  // Second principal vector of the exact balanced realization, estimated
  // within the leading PMTBR subspace.
  la::MatD v2(sys.n(), 1);
  for (la::index i = 0; i < sys.n(); ++i) v2(i, 0) = exact.model.v(i, 1);

  CsvWriter csv(std::cout, {"num_samples", "angle_rad"},
                bench::out_path("fig06_subspace_angle"));
  for (const la::index ns : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96}) {
    mor::PmtbrOptions opts;
    opts.bands = {mor::Band{0.0, 5e10}};  // finite bandwidth: the plateau
    opts.num_samples = ns;
    opts.fixed_order = 8;
    const auto res = mor::pmtbr(sys, opts);
    csv.row({static_cast<double>(ns), signal::subspace_angle(v2, res.model.v)});
  }
  bench::note("the floor is the finite-bandwidth plateau the paper describes:");
  bench::note("the system responds outside the sampled band, so the angle cannot reach zero");
  bench::write_run_manifest("fig06_subspace_angle");
  return 0;
}
