// Fig. 12 reproduction: an ensemble of square-wave input samples with edge
// timings dithered by ~10% of the period — the stimulus class used for the
// input-correlated RC experiment.
#include <iostream>

#include "signal/waveform.hpp"
#include "bench_common.hpp"

using namespace pmtbr;

int main() {
  bench::banner("Fig. 12", "Dithered square-wave samples for one input of the RC network");

  signal::SquareWaveSpec spec;
  spec.period = 1e-8;
  spec.rise_time = 4e-10;
  spec.dither_fraction = 0.1;
  const double t_end = 4e-8;

  Rng rng(2026);
  std::vector<signal::Waveform> realizations;
  for (int k = 0; k < 4; ++k) realizations.push_back(signal::make_square_wave(spec, t_end, rng));

  CsvWriter csv(std::cout, {"t_ns", "sample1", "sample2", "sample3", "sample4"},
                bench::out_path("fig12_waveforms"));
  const int npts = 200;
  for (int i = 0; i <= npts; ++i) {
    const double t = t_end * i / npts;
    std::vector<double> row{t * 1e9};
    for (const auto& w : realizations) row.push_back(w.value(t));
    csv.row(row);
  }
  bench::note("seed = 2026; dither = 10% of period");
  bench::write_run_manifest("fig12_waveforms");
  return 0;
}
