// Ablation A2: on-the-fly order control (paper Sec. V-C) — how the SVD
// truncation tolerance maps to selected order and realized error, and what
// the adaptive sample-count stopping rule saves.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

int main() {
  bench::banner("Ablation A2", "Truncation tolerance -> order & error; adaptive stopping");

  circuit::ClockTreeParams p;
  p.levels = 7;
  const auto sys = circuit::make_clock_tree(p);
  const auto grid = mor::logspace_grid(1e6, 1e10, 30);

  CsvWriter csv(std::cout, {"tolerance", "selected_order", "max_rel_error", "samples_used"},
                bench::out_path("ablation_ordercontrol"));
  for (const double tol : {1e-2, 1e-4, 1e-6, 1e-8, 1e-10}) {
    mor::PmtbrOptions opts;
    opts.bands = {mor::Band{0.0, 1e10}};
    opts.num_samples = 60;
    opts.truncation_tol = tol;
    opts.adaptive_excess = 2.5;  // stop once samples > 2.5x the order estimate
    const auto res = mor::pmtbr(sys, opts);
    const auto err = mor::compare_on_grid(sys, res.model.system, grid);
    csv.row({tol, static_cast<double>(res.model.system.n()), err.max_rel,
             static_cast<double>(res.samples_used.size())});
  }
  bench::note("tighter tolerance -> larger order and smaller realized error;");
  bench::note("the adaptive rule keeps sample count ~2.5x the selected order");
  bench::write_run_manifest("ablation_ordercontrol");
  return 0;
}
