// Fig. 13 reproduction: transient output of the 32-port RC network under
// dithered square-wave inputs — full model vs 15-state input-correlated
// PMTBR vs 15-state plain TBR.
//
// Paper shape: the 15-state input-correlated model tracks the full output;
// the 15-state TBR model is visibly wrong (TBR needs ~45 states here, and
// PRIMA at one matched moment would already need 32 states).
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/input_correlated.hpp"
#include "mor/tbr.hpp"
#include "signal/transient.hpp"
#include "signal/waveform.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

int main() {
  bench::banner("Fig. 13",
                "32-port RC transient: full vs input-correlated PMTBR(15) vs TBR(15)");

  circuit::MultiportRcParams mp;  // 32 lines
  const auto sys = circuit::make_multiport_rc(mp);
  bench::note("states = " + std::to_string(sys.n()) +
              ", ports = " + std::to_string(sys.num_inputs()));

  // Stimulus class: square waves sharing one clock, four phase groups, 10%
  // dither (paper Fig. 12).
  signal::SquareWaveSpec spec;
  spec.period = 8e-9;
  spec.rise_time = 3e-10;
  spec.dither_fraction = 0.1;
  const double t_end = 4e-8;
  std::vector<double> phases;
  for (index k = 0; k < 32; ++k) phases.push_back(static_cast<double>(k % 4) * 1.3e-9);
  Rng rng(4242);
  const auto bank = signal::make_square_bank(spec, t_end, phases, rng);
  const auto samples = signal::sample_waveforms(bank, t_end, 400);

  mor::InputCorrelatedOptions ic;
  ic.bands = {mor::Band{0.0, 1.5e9}};
  ic.num_freq_samples = 15;
  ic.draws_per_frequency = 0;  // deterministic blocked variant (see DESIGN.md)
  ic.truncation_tol = 1e-3;    // the paper's setting
  ic.fixed_order = 15;
  const auto icr = mor::input_correlated_tbr(sys, samples, ic);
  bench::note("input effective rank = " + std::to_string(icr.input_rank));

  mor::TbrOptions topts;
  topts.fixed_order = 15;
  const auto tbr15 = mor::tbr(sys, topts);

  signal::TransientOptions sim;
  sim.t_end = t_end;
  sim.steps = 800;
  const auto in = signal::bank_input(bank);
  const auto full = signal::simulate(sys, in, sim);
  const auto r_ic = signal::simulate(icr.model.system, in, sim);
  const auto r_tb = signal::simulate(tbr15.model.system, in, sim);

  // Output port 0 trace (the figure's panel).
  CsvWriter csv(std::cout, {"t_ns", "full", "ic_pmtbr_15", "tbr_15"},
                bench::out_path("fig13_correlated_rc"));
  for (index k = 0; k <= sim.steps; k += 8)
    csv.row({full.times[static_cast<std::size_t>(k)] * 1e9, full.outputs(k, 0),
             r_ic.outputs(k, 0), r_tb.outputs(k, 0)});

  const auto e_ic = signal::compare_outputs(full, r_ic);
  const auto e_tb = signal::compare_outputs(full, r_tb);
  bench::note("all-port rms error: IC-PMTBR(15) = " + format_double(e_ic.rms) +
              ", TBR(15) = " + format_double(e_tb.rms));

  // Headline: TBR order needed to match the IC model's accuracy.
  for (const index q : {25, 35, 45}) {
    mor::TbrOptions t2;
    t2.fixed_order = q;
    const auto tb = mor::tbr(sys, t2);
    const auto r = signal::simulate(tb.model.system, in, sim);
    const auto e = signal::compare_outputs(full, r);
    bench::note("TBR(" + std::to_string(q) + ") rms = " + format_double(e.rms));
  }
  bench::write_run_manifest("fig13_correlated_rc");
  return 0;
}
