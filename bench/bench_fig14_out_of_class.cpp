// Fig. 14 reproduction: the same 15-state input-correlated model as
// Fig. 13, driven with square waves whose phase relation is completely
// re-randomized (outside the trained input class).
//
// Paper shape: accuracy of the input-correlated reduction degrades
// noticeably; without information about input correlation there is no
// advantage over TBR.
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/input_correlated.hpp"
#include "signal/transient.hpp"
#include "signal/waveform.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

int main() {
  bench::banner("Fig. 14", "Input-correlated model driven outside its trained input class");

  circuit::MultiportRcParams mp;
  const auto sys = circuit::make_multiport_rc(mp);

  signal::SquareWaveSpec spec;
  spec.period = 8e-9;
  spec.rise_time = 3e-10;
  spec.dither_fraction = 0.1;
  const double t_end = 4e-8;

  // Trained class (as Fig. 13): four phase groups.
  std::vector<double> phases_in;
  for (index k = 0; k < 32; ++k) phases_in.push_back(static_cast<double>(k % 4) * 1.3e-9);
  Rng rng_train(4242);
  const auto bank_train = signal::make_square_bank(spec, t_end, phases_in, rng_train);
  const auto samples = signal::sample_waveforms(bank_train, t_end, 400);

  mor::InputCorrelatedOptions ic;
  ic.bands = {mor::Band{0.0, 1.5e9}};
  ic.num_freq_samples = 15;
  ic.draws_per_frequency = 0;
  ic.truncation_tol = 1e-3;
  ic.fixed_order = 15;
  const auto icr = mor::input_correlated_tbr(sys, samples, ic);

  // Out-of-class stimulus: phases re-drawn uniformly over the period.
  Rng rng_phase(99);
  std::vector<double> phases_out;
  for (index k = 0; k < 32; ++k) phases_out.push_back(rng_phase.uniform(0.0, spec.period));
  Rng rng_wave(4243);
  const auto bank_out = signal::make_square_bank(spec, t_end, phases_out, rng_wave);

  signal::TransientOptions sim;
  sim.t_end = t_end;
  sim.steps = 800;
  const auto full_in = signal::simulate(sys, signal::bank_input(bank_train), sim);
  const auto red_in = signal::simulate(icr.model.system, signal::bank_input(bank_train), sim);
  const auto full_out = signal::simulate(sys, signal::bank_input(bank_out), sim);
  const auto red_out = signal::simulate(icr.model.system, signal::bank_input(bank_out), sim);

  CsvWriter csv(std::cout, {"t_ns", "full_outclass", "ic_pmtbr_15_outclass"},
                bench::out_path("fig14_out_of_class"));
  for (index k = 0; k <= sim.steps; k += 8)
    csv.row({full_out.times[static_cast<std::size_t>(k)] * 1e9, full_out.outputs(k, 0),
             red_out.outputs(k, 0)});

  const auto e_in = signal::compare_outputs(full_in, red_in);
  const auto e_out = signal::compare_outputs(full_out, red_out);
  bench::note("rms error in-class = " + format_double(e_in.rms) +
              ", out-of-class = " + format_double(e_out.rms) + " (degradation x" +
              format_double(e_out.rms / std::max(e_in.rms, 1e-300)) + ")");
  bench::write_run_manifest("fig14_out_of_class");
  return 0;
}
