// Shared plumbing for the figure-regeneration benches: banner, CSV output
// mirrored to bench/out/, and small formatting helpers.
//
// Every bench binary prints the series of one paper figure as CSV rows so
// EXPERIMENTS.md can quote them directly.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace pmtbr::bench {

/// Creates bench/out (relative to the current working directory) and
/// returns the CSV path for this bench, or "" if the directory cannot be
/// created (output then goes to stdout only).
inline std::string out_path(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return {};
  return "bench_out/" + name + ".csv";
}

inline void banner(const std::string& experiment, const std::string& description) {
  std::cout << "# ================================================================\n"
            << "# " << experiment << "\n"
            << "# " << description << "\n"
            << "# ================================================================\n";
}

inline void note(const std::string& text) { std::cout << "# " << text << "\n"; }

/// One machine-readable timing measurement. `label` distinguishes runs of
/// the same bench (e.g. "pmtbr_threads=4"); `n` is the state count and
/// `samples` the number of frequency samples (0 when not applicable).
struct TimingRecord {
  std::string label;
  double wall_seconds = 0.0;
  long n = 0;
  long samples = 0;
  int threads = 1;
};

/// Writes bench_out/BENCH_<name>.json with the given records, so CI and
/// scripts can diff timings without parsing human-oriented stdout. Returns
/// the path written, or "" on failure (the bench still ran; only the
/// artifact is missing).
inline std::string write_timing_json(const std::string& name,
                                     const std::vector<TimingRecord>& records) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return {};
  const std::string path = "bench_out/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) return {};
  std::ostringstream body;
  body.precision(9);
  body << "{\n  \"bench\": \"" << name << "\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    body << "    {\"label\": \"" << r.label << "\", \"wall_seconds\": " << r.wall_seconds
         << ", \"n\": " << r.n << ", \"samples\": " << r.samples
         << ", \"threads\": " << r.threads << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  body << "  ]\n}\n";
  out << body.str();
  return path;
}

}  // namespace pmtbr::bench
