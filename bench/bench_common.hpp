// Shared plumbing for the figure-regeneration benches: banner, CSV output
// mirrored to bench/out/, and small formatting helpers.
//
// Every bench binary prints the series of one paper figure as CSV rows so
// EXPERIMENTS.md can quote them directly.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/obs/json.hpp"
#include "util/obs/manifest.hpp"

namespace pmtbr::bench {

/// Creates bench/out (relative to the current working directory) and
/// returns the CSV path for this bench, or "" if the directory cannot be
/// created (output then goes to stdout only).
inline std::string out_path(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return {};
  return "bench_out/" + name + ".csv";
}

inline void banner(const std::string& experiment, const std::string& description) {
  std::cout << "# ================================================================\n"
            << "# " << experiment << "\n"
            << "# " << description << "\n"
            << "# ================================================================\n";
}

inline void note(const std::string& text) { std::cout << "# " << text << "\n"; }

/// One machine-readable timing measurement. `label` distinguishes runs of
/// the same bench (e.g. "pmtbr_threads=4"); `n` is the state count and
/// `samples` the number of frequency samples (0 when not applicable).
struct TimingRecord {
  std::string label;
  double wall_seconds = 0.0;
  long n = 0;
  long samples = 0;
  int threads = 1;
  double gflops = 0.0;  // achieved GFLOP/s, 0 when the record has no flop count
};

/// Writes bench_out/BENCH_<name>.json with the given records, so CI and
/// scripts can diff timings without parsing human-oriented stdout. Returns
/// the path written, or "" on failure (the bench still ran; only the
/// artifact is missing). Serialization goes through obs::JsonWriter — the
/// same locale-independent, escaped emitter the run manifest uses.
inline std::string write_timing_json(const std::string& name,
                                     const std::vector<TimingRecord>& records) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return {};
  const std::string path = "bench_out/BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) return {};
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("bench");
  w.value(name);
  w.key("records");
  w.begin_array();
  for (const auto& r : records) {
    w.begin_object();
    w.key("label");
    w.value(r.label);
    w.key("wall_seconds");
    w.value(r.wall_seconds);
    w.key("n");
    w.value(static_cast<std::int64_t>(r.n));
    w.key("samples");
    w.value(static_cast<std::int64_t>(r.samples));
    w.key("threads");
    w.value(static_cast<std::int64_t>(r.threads));
    w.key("gflops");
    w.value(r.gflops);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.done();
  return path;
}

/// Writes bench_out/MANIFEST_<name>.json — the per-run observability
/// manifest (counters, trace timings, build identity) every bench emits
/// next to its CSV. Returns the path, or "" on failure.
inline std::string write_run_manifest(const std::string& name,
                                      const obs::ManifestExtras& extra = {}) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return {};
  const std::string path = "bench_out/MANIFEST_" + name + ".json";
  if (!obs::write_manifest(path, name, extra)) return {};
  std::cout << "# manifest: " << path << "\n";
  return path;
}

}  // namespace pmtbr::bench
