// Shared plumbing for the figure-regeneration benches: banner, CSV output
// mirrored to bench/out/, and small formatting helpers.
//
// Every bench binary prints the series of one paper figure as CSV rows so
// EXPERIMENTS.md can quote them directly.
#pragma once

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "util/csv.hpp"

namespace pmtbr::bench {

/// Creates bench/out (relative to the current working directory) and
/// returns the CSV path for this bench, or "" if the directory cannot be
/// created (output then goes to stdout only).
inline std::string out_path(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return {};
  return "bench_out/" + name + ".csv";
}

inline void banner(const std::string& experiment, const std::string& description) {
  std::cout << "# ================================================================\n"
            << "# " << experiment << "\n"
            << "# " << description << "\n"
            << "# ================================================================\n";
}

inline void note(const std::string& text) { std::cout << "# " << text << "\n"; }

}  // namespace pmtbr::bench
