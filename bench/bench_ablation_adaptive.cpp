// Ablation A5 (paper Sec. V-B): adaptive bisection point selection vs
// uniform sampling at equal sample budgets, on the resonant PEEC chain —
// where naive uniform quadrature struggles (paper Sec. V-C's high-Q
// discussion).
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "bench_common.hpp"

using namespace pmtbr;
using la::index;

int main() {
  bench::banner("Ablation A5", "Adaptive bisection vs uniform sampling (PEEC chain)");

  circuit::PeecParams pp;
  pp.sections = 20;
  pp.loss_r = 0.01;    // very high Q: sharp in-band resonances
  pp.variation = 0.8;
  const auto sys = to_energy_standard(circuit::make_peec(pp));
  const mor::Band band{0.0, 1e9};
  const auto grid = mor::linspace_grid(1e6, 1e9, 80);
  const index order = 16;

  CsvWriter csv(std::cout, {"samples", "err_uniform", "err_adaptive"},
                bench::out_path("ablation_adaptive"));
  for (const index budget : {5, 6, 8, 12, 16, 24}) {
    mor::PmtbrOptions uopts;
    uopts.bands = {band};
    uopts.num_samples = budget;
    uopts.fixed_order = order;
    const auto uni = mor::pmtbr(sys, uopts);

    mor::AdaptiveOptions aopts;
    aopts.band = band;
    aopts.initial_samples = 4;
    aopts.max_samples = budget;
    aopts.novelty_tol = 0.0;  // spend the full budget
    mor::PmtbrOptions popts;
    popts.fixed_order = order;
    const auto ada = mor::pmtbr_adaptive(sys, aopts, popts);

    const auto eu = mor::compare_on_grid(sys, uni.model.system, grid);
    const auto ea = mor::compare_on_grid(sys, ada.model.system, grid);
    csv.row({static_cast<double>(budget), eu.max_abs / eu.h_inf_scale,
             ea.max_abs / ea.h_inf_scale});
  }
  bench::note("finding: adaptive placement pays off at very tight budgets (resonances");
  bench::note("missed by a coarse grid); with a modest uniform budget the two converge —");
  bench::note("consistent with the paper's remark that point selection was not problematic");
  bench::write_run_manifest("ablation_adaptive");
  return 0;
}
