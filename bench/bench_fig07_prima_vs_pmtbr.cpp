// Fig. 7 reproduction: worst-case error in the spiral inductor's input
// resistance Re{Z(jω)} for PRIMA and PMTBR models of increasing order.
//
// Paper shape: PMTBR (30 samples) is more accurate than PRIMA at every
// order and converges faster; PRIMA needs far more vectors for 1% accuracy
// in the resistance.
#include <algorithm>
#include <iostream>

#include "circuit/generators.hpp"
#include "mor/error.hpp"
#include "mor/pmtbr.hpp"
#include "mor/prima.hpp"
#include "mor/pvl.hpp"
#include "bench_common.hpp"

using namespace pmtbr;

int main() {
  bench::banner("Fig. 7", "Error in Re{Z} vs model order: PRIMA vs PMTBR (spiral inductor)");

  circuit::SpiralParams sp;
  sp.turns = 30;
  const auto sys = circuit::make_spiral(sp);
  // PRIMA projects by congruence in MNA coordinates (passivity); PMTBR runs
  // in energy coordinates (DESIGN.md). Transfer functions are identical in
  // both coordinate systems.
  const auto esys = to_energy_standard(sys);
  bench::note("states = " + std::to_string(sys.n()));

  const auto grid = mor::logspace_grid(1e8, 5e10, 40);
  // Reference resistance scale for relative errors.
  double r_scale = 0;
  for (const double f : grid)
    r_scale = std::max(r_scale,
                       std::abs(sys.transfer(la::cd(0.0, 2 * 3.141592653589793 * f))(0, 0).real()));

  const auto worst = [&](const DescriptorSystem& full, const mor::DenseSystem& red) {
    const auto series = mor::entry_error_series(full, red, grid, 0, 0, /*real_part_only=*/true);
    return *std::max_element(series.begin(), series.end()) / r_scale;
  };

  const auto samples = mor::sample_band(mor::Band{0.0, 5e10}, 30, mor::SamplingScheme::kUniform);
  std::vector<la::index> orders;
  for (la::index q = 2; q <= 24; q += 2) orders.push_back(q);
  const auto sweep = mor::pmtbr_order_sweep(esys, samples, orders);

  CsvWriter csv(std::cout, {"order", "err_prima", "err_pvl", "err_pmtbr"},
                bench::out_path("fig07_prima_vs_pmtbr"));
  for (std::size_t i = 0; i < orders.size(); ++i) {
    mor::PrimaOptions popts;
    popts.num_moments = orders[i];  // SISO: order == #moments
    const auto pr = mor::prima(sys, popts);
    mor::PvlOptions vopts;
    vopts.order = orders[i];
    const auto pv = mor::pvl(sys, vopts);
    csv.row({static_cast<double>(orders[i]), worst(sys, pr.model.system),
             worst(sys, pv.model.system), worst(esys, sweep[i].model.system)});
  }
  bench::note("PVL matches 2q moments per q states (Padé), so it converges faster than");
  bench::note("PRIMA at low orders; PMTBR still wins once redundancy pruning matters");
  bench::write_run_manifest("fig07_prima_vs_pmtbr");
  return 0;
}
